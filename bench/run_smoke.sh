#!/bin/sh
# Smoke test for the resilience layer: run a tiny sweep to completion,
# re-run it with an injected fail-stop crash partway through, resume from
# the journal, and check that the resumed output is byte-identical to the
# uninterrupted run.  Also checks the exit-code contract for bad input.
#
# Usage: bench/run_smoke.sh   (from the repo root; builds ckptwf first)
set -eu

cd "$(dirname "$0")/.."
dune build bin/ckptwf.exe
CKPTWF=_build/default/bin/ckptwf.exe

TMP=$(mktemp -d "${TMPDIR:-/tmp}/ckptwf-smoke.XXXXXX")
trap 'rm -rf "$TMP"' EXIT INT TERM

SWEEP="--workflow montage --tasks 40 --seed 3 --processors 4 --method pathapprox --csv"

echo "smoke: uninterrupted sweep"
$CKPTWF sweep $SWEEP > "$TMP/reference.csv"

echo "smoke: sweep with injected fail-stop crash after 2 cells"
status=0
$CKPTWF sweep $SWEEP --journal "$TMP/sweep.journal" --fail-after 2 \
  > "$TMP/crashed.csv" 2> "$TMP/crashed.err" || status=$?
if [ "$status" -ne 1 ]; then
  echo "smoke: FAIL injected crash should exit 1, got $status" >&2
  exit 1
fi
if [ ! -s "$TMP/sweep.journal" ]; then
  echo "smoke: FAIL journal is empty after the crash" >&2
  exit 1
fi

echo "smoke: resume from the journal"
$CKPTWF sweep $SWEEP --journal "$TMP/sweep.journal" --resume \
  > "$TMP/resumed.csv" 2> "$TMP/resumed.err"
grep -q "2 cell(s) reused" "$TMP/resumed.err" || {
  echo "smoke: FAIL resume did not reuse the journaled cells:" >&2
  cat "$TMP/resumed.err" >&2
  exit 1
}
if ! diff -u "$TMP/reference.csv" "$TMP/resumed.csv"; then
  echo "smoke: FAIL resumed sweep differs from the uninterrupted run" >&2
  exit 1
fi

echo "smoke: parallel sweep matches the sequential output byte for byte"
$CKPTWF sweep $SWEEP --jobs 4 > "$TMP/parallel.csv"
if ! diff -u "$TMP/reference.csv" "$TMP/parallel.csv"; then
  echo "smoke: FAIL sweep output depends on --jobs" >&2
  exit 1
fi

echo "smoke: parallel sweep with injected crash, then parallel resume"
status=0
$CKPTWF sweep $SWEEP --jobs 2 --journal "$TMP/par.journal" --fail-after 2 \
  > /dev/null 2> /dev/null || status=$?
if [ "$status" -ne 1 ]; then
  echo "smoke: FAIL injected parallel crash should exit 1, got $status" >&2
  exit 1
fi
if [ ! -s "$TMP/par.journal" ]; then
  echo "smoke: FAIL journal is empty after the parallel crash" >&2
  exit 1
fi
$CKPTWF sweep $SWEEP --jobs 4 --journal "$TMP/par.journal" --resume \
  > "$TMP/par-resumed.csv" 2> "$TMP/par-resumed.err"
grep -q "cell(s) reused" "$TMP/par-resumed.err" || {
  echo "smoke: FAIL parallel resume did not reuse journaled cells:" >&2
  cat "$TMP/par-resumed.err" >&2
  exit 1
}
if ! diff -u "$TMP/reference.csv" "$TMP/par-resumed.csv"; then
  echo "smoke: FAIL parallel resumed sweep differs from the uninterrupted run" >&2
  exit 1
fi

echo "smoke: malformed DAX exits 2 with a one-line diagnostic"
printf 'this is not a DAX file' > "$TMP/garbage.dax"
status=0
$CKPTWF schedule --dax "$TMP/garbage.dax" > /dev/null 2> "$TMP/garbage.err" || status=$?
if [ "$status" -ne 2 ]; then
  echo "smoke: FAIL malformed DAX should exit 2, got $status" >&2
  exit 1
fi
if [ "$(wc -l < "$TMP/garbage.err")" -ne 1 ]; then
  echo "smoke: FAIL diagnostic should be one line:" >&2
  cat "$TMP/garbage.err" >&2
  exit 1
fi

echo "smoke: deadline cutoff reports partial trial count"
$CKPTWF simulate --workflow montage --tasks 40 --seed 3 --processors 4 \
  --trials 1000000 --deadline 0.2 > "$TMP/deadline.out"
grep -q "deadline hit" "$TMP/deadline.out" || {
  echo "smoke: FAIL simulate did not report the deadline cutoff" >&2
  exit 1
}

echo "smoke: OK"
