(* Benchmark harness.

   Two parts:

   1. Bechamel micro-benchmarks — one Test.make per paper artefact
      (Figures 5/6/7 pipelines, the Section VI-B estimators) plus the
      core algorithms (recognition, Algorithm 1, Algorithm 2, one
      simulation trial).

   2. Regeneration of every figure's data series: for each workflow
      family (Figure 5 GENOME, Figure 6 MONTAGE, Figure 7 LIGO), all
      paper sizes, processor counts and failure probabilities across
      the CCR sweep, printing the relative expected makespans of
      CKPTALL and CKPTNONE over CKPTSOME; and the Section VI-B
      estimator-accuracy table.

   Run with: dune exec bench/main.exe
   (pass --quick for a single representative row set per figure;
   --jobs N fans figure cells and Monte-Carlo trials over N worker
   domains, 0 meaning all available, without changing any output;
   --json FILE writes the Monte-Carlo throughput record to FILE;
   --mc-only, --plan-only and --sweep-only run just that benchmark
   and exit)

   The figure series and the accuracy table — the long-running parts —
   are crash-tolerant: with --journal FILE every completed cell is
   recorded through Ckpt_resilience.Journal, and --resume replays
   recorded cells verbatim instead of recomputing them, so a killed
   regeneration run picks up where it left off with identical output.
   Micro-benchmarks and ablations are cheap and always re-run. *)

open Bechamel
open Toolkit
module Dag = Ckpt_dag.Dag
module Recognize = Ckpt_mspg.Recognize
module Platform = Ckpt_platform.Platform
module Spec = Ckpt_workflows.Spec
module Allocate = Ckpt_core.Allocate
module Schedule = Ckpt_core.Schedule
module Placement = Ckpt_core.Placement
module Strategy = Ckpt_core.Strategy
module Pipeline = Ckpt_core.Pipeline
module Evaluator = Ckpt_eval.Evaluator
module Runner = Ckpt_sim.Runner
module Journal = Ckpt_resilience.Journal
module Rerror = Ckpt_resilience.Error
module Pool = Ckpt_parallel.Pool

(* [cell journal key line] replays a journaled line or computes,
   journals and returns a fresh one — the unit of crash tolerance. *)
let cell journal key compute =
  match Option.bind journal (fun j -> Journal.find j key) with
  | Some stored -> stored
  | None ->
      let line = compute () in
      Option.iter (fun j -> Journal.append j ~key ~value:line) journal;
      line

(* ------------------------------------------------------------------ *)
(* Part 1: Bechamel micro-benchmarks                                   *)
(* ------------------------------------------------------------------ *)

let pipeline_test name kind =
  let dag = Spec.generate kind ~seed:1 ~tasks:300 () in
  Test.make ~name
    (Staged.stage (fun () ->
         let setup = Pipeline.prepare ~dag ~processors:35 ~pfail:0.001 ~ccr:0.01 () in
         Pipeline.compare_strategies setup))

let estimator_tests () =
  let dag = Spec.generate Spec.Ligo ~seed:1 ~tasks:300 () in
  let setup = Pipeline.prepare ~dag ~processors:35 ~pfail:0.001 ~ccr:0.01 () in
  let plan = Pipeline.plan setup Strategy.Ckpt_some in
  let pd = Option.get plan.Strategy.prob_dag in
  [
    Test.make ~name:"vi-b/pathapprox"
      (Staged.stage (fun () -> Ckpt_eval.Pathapprox.estimate pd));
    Test.make ~name:"vi-b/dodin" (Staged.stage (fun () -> Ckpt_eval.Dodin.estimate pd));
    Test.make ~name:"vi-b/normal" (Staged.stage (fun () -> Ckpt_eval.Sculli.estimate pd));
    Test.make ~name:"vi-b/montecarlo-1k"
      (Staged.stage (fun () -> Ckpt_eval.Montecarlo.estimate ~trials:1000 pd));
  ]

let extension_tests () =
  let dag = Spec.generate Spec.Genome ~seed:1 ~tasks:300 () in
  let setup = Pipeline.prepare ~dag ~processors:35 ~pfail:0.001 ~ccr:0.1 () in
  let plan = Pipeline.plan setup Strategy.Ckpt_some in
  [
    Test.make ~name:"ext/exact-sp-eval"
      (Staged.stage (fun () -> Strategy.exact_expected_makespan plan));
    Test.make ~name:"ext/contention-trial"
      (Staged.stage (fun () -> Ckpt_sim.Contention.simulate ~trials:1 plan));
  ]

let algorithm_tests () =
  let montage = Spec.generate Spec.Montage ~seed:1 ~tasks:300 () in
  let genome = Spec.generate Spec.Genome ~seed:1 ~tasks:1000 () in
  let genome_mspg =
    match Recognize.of_dag_completed genome with Ok (m, _) -> m | Error e -> failwith e
  in
  let schedule = Allocate.run genome_mspg ~processors:61 in
  let platform = Platform.make ~processors:61 ~lambda:1e-5 ~bandwidth:1e7 in
  let big_chain =
    Array.fold_left
      (fun acc sc ->
        if Ckpt_core.Superchain.n_tasks sc > Ckpt_core.Superchain.n_tasks acc then sc
        else acc)
      schedule.Schedule.superchains.(0) schedule.Schedule.superchains
  in
  let some_plan = Strategy.plan Strategy.Ckpt_some ~raw:genome ~schedule ~platform in
  [
    Test.make ~name:"alg/recognize-montage-300"
      (Staged.stage (fun () -> Recognize.of_dag_completed montage));
    Test.make ~name:"alg1/allocate-genome-1000"
      (Staged.stage (fun () -> Allocate.run genome_mspg ~processors:61));
    Test.make ~name:"alg2/placement-dp"
      (Staged.stage (fun () ->
           Placement.optimal_positions platform schedule.Schedule.dag big_chain));
    Test.make ~name:"sim/genome-1000-trial"
      (Staged.stage (fun () -> Runner.simulated_expected_makespan ~trials:1 some_plan));
  ]

let run_benchmarks () =
  let tests =
    Test.make_grouped ~name:"ckptwf"
      ([
         pipeline_test "fig5/genome-pipeline" Spec.Genome;
         pipeline_test "fig6/montage-pipeline" Spec.Montage;
         pipeline_test "fig7/ligo-pipeline" Spec.Ligo;
       ]
      @ estimator_tests () @ algorithm_tests () @ extension_tests ())
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns = match Analyze.OLS.estimates ols with Some (t :: _) -> t | _ -> nan in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  Printf.printf "== micro-benchmarks (time per run) ==\n";
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.2f ns" ns
      in
      Printf.printf "  %-34s %s\n" name pretty)
    rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 2: figure series                                               *)
(* ------------------------------------------------------------------ *)

let logspace lo hi n =
  List.init n (fun i ->
      let t = float_of_int i /. float_of_int (n - 1) in
      10. ** (log10 lo +. (t *. (log10 hi -. log10 lo))))

let paper_grid =
  [ (50, [ 3; 5; 7; 10 ]); (300, [ 18; 35; 52; 70 ]); (1000, [ 61; 123; 184; 245 ]) ]

let pfails = [ 0.01; 0.001; 0.0001 ]

let ccrs_for = function
  | Spec.Genome -> logspace 1e-4 1e-2 7
  | Spec.Montage | Spec.Ligo | Spec.Cybershake | Spec.Sipht -> logspace 1e-3 1. 7

let figure_series ?journal ?(jobs = 1) fig kind =
  Printf.printf "== Figure %s: %s — relative expected makespan vs CCR ==\n" fig
    (String.uppercase_ascii (Spec.name kind));
  Printf.printf "%-8s %5s %4s %7s %8s | %8s %9s %6s\n" "workflow" "n" "p" "pfail" "ccr"
    "relALL" "relNONE" "ckpts";
  let journal_mutex = Mutex.create () in
  List.iter
    (fun (tasks, procs) ->
      (* the workflow and its M-SPG are rebuilt only when some cell of
         this size group actually needs computing (resume skips them) *)
      let prepared =
        lazy
          (let dag = Spec.generate kind ~seed:1 ~tasks () in
           let n = Dag.n_tasks dag in
           let mean_weight = Dag.total_weight dag /. float_of_int n in
           let mspg =
             match Recognize.of_dag dag with
             | Ok m -> m
             | Error _ -> (
                 match Recognize.of_dag_completed dag with
                 | Ok (m, _) -> m
                 | Error e -> failwith e)
           in
           (dag, n, mean_weight, mspg))
      in
      List.iter
        (fun p ->
          (* the schedule does not depend on pfail or CCR: build once *)
          let schedule =
            lazy
              (let _, _, _, mspg = Lazy.force prepared in
               Allocate.run mspg ~processors:p)
          in
          (* one (pfail, ccr) grid cell per array slot, journal looked
             up sequentially; only the missing cells are computed, fanned
             over [jobs] domains, and rows print in grid order at the
             end — so stdout does not depend on [jobs] *)
          let cells =
            Array.of_list
              (List.concat_map
                 (fun pfail -> List.map (fun ccr -> (pfail, ccr)) (ccrs_for kind))
                 pfails)
          in
          let key_of (pfail, ccr) =
            Printf.sprintf "bench|fig=%s|wf=%s|tasks=%d|p=%d|pfail=%g|ccr=%.17g" fig
              (Spec.name kind) tasks p pfail ccr
          in
          let stored =
            Array.map
              (fun c -> Option.bind journal (fun j -> Journal.find j (key_of c)))
              cells
          in
          let compute (pfail, ccr) =
            let dag, n, mean_weight, _ = Lazy.force prepared in
            let total_data = Dag.total_data dag in
            let total_weight = Dag.total_weight dag in
            let lambda = Platform.lambda_of_pfail ~pfail ~mean_weight in
            let bandwidth = Platform.bandwidth_for_ccr ~ccr ~total_data ~total_weight in
            let platform = Platform.make ~processors:p ~lambda ~bandwidth in
            let schedule = Lazy.force schedule in
            let plan k = Strategy.plan k ~raw:dag ~schedule ~platform in
            let some = plan Strategy.Ckpt_some in
            let em_some = Strategy.expected_makespan some in
            let em_all = Strategy.expected_makespan (plan Strategy.Ckpt_all) in
            let em_none = Strategy.expected_makespan (plan Strategy.Ckpt_none) in
            Printf.sprintf "%-8s %5d %4d %7g %8.5f | %8.4f %9.4f %6d" (Spec.name kind) n
              p pfail ccr (em_all /. em_some) (em_none /. em_some)
              some.Strategy.checkpoint_count
          in
          let rows =
            if Array.for_all Option.is_some stored then Array.map Option.get stored
            else begin
              (* force the shared lazies before entering the parallel
                 region: concurrent Lazy.force is not domain-safe *)
              ignore (Lazy.force prepared);
              ignore (Lazy.force schedule);
              Pool.map_shared ~jobs (Array.length cells) (fun i ->
                  match stored.(i) with
                  | Some line -> line
                  | None ->
                      let line = compute cells.(i) in
                      Option.iter
                        (fun j ->
                          Mutex.lock journal_mutex;
                          Fun.protect
                            ~finally:(fun () -> Mutex.unlock journal_mutex)
                            (fun () -> Journal.append j ~key:(key_of cells.(i)) ~value:line))
                        journal;
                      line)
            end
          in
          Array.iter print_endline rows)
        procs)
    paper_grid;
  print_newline ()

let accuracy_table ?journal () =
  Printf.printf "== Section VI-B: estimator accuracy vs Monte Carlo ground truth ==\n";
  let trials = 50_000 in
  Printf.printf "%-10s %-12s %12s %9s\n" "workflow" "method" "estimate" "error";
  List.iter
    (fun kind ->
      let plan =
        lazy
          (let dag = Spec.generate kind ~seed:1 ~tasks:300 () in
           let setup = Pipeline.prepare ~dag ~processors:35 ~pfail:0.001 ~ccr:0.01 () in
           Pipeline.plan setup Strategy.Ckpt_some)
      in
      (* the ground truth is journaled as a machine value of its own so
         resumed runs can compute estimator errors without redoing the
         50k-trial Monte Carlo *)
      let truth =
        lazy
          (let key = Printf.sprintf "bench|acc-truth|wf=%s|trials=%d" (Spec.name kind) trials in
           float_of_string
             (cell journal key (fun () ->
                  Printf.sprintf "%.17g"
                    (Strategy.expected_makespan
                       ~method_:(Evaluator.Montecarlo { trials; seed = 1 })
                       (Lazy.force plan)))))
      in
      let acc_cell method_name compute =
        let key = Printf.sprintf "bench|acc|wf=%s|m=%s|trials=%d" (Spec.name kind) method_name trials in
        print_endline (cell journal key compute)
      in
      acc_cell "montecarlo" (fun () ->
          Printf.sprintf "%-10s %-12s %12.2f %9s" (Spec.name kind) "montecarlo"
            (Lazy.force truth) "--");
      List.iter
        (fun m ->
          acc_cell (Evaluator.name m) (fun () ->
              let truth = Lazy.force truth in
              let v = Strategy.expected_makespan ~method_:m (Lazy.force plan) in
              Printf.sprintf "%-10s %-12s %12.2f %+8.3f%%" (Spec.name kind)
                (Evaluator.name m) v
                ((v -. truth) /. truth *. 100.)))
        Evaluator.all_fast;
      acc_cell "exact-sp" (fun () ->
          match Strategy.exact_expected_makespan (Lazy.force plan) with
          | Some v ->
              let truth = Lazy.force truth in
              Printf.sprintf "%-10s %-12s %12.2f %+8.3f%%" (Spec.name kind) "exact-sp" v
                ((v -. truth) /. truth *. 100.)
          | None ->
              Printf.sprintf "%-10s %-12s %12s %9s" (Spec.name kind) "exact-sp" "n/a" "--"))
    Spec.all;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Ablation tables (extensions beyond the paper)                       *)
(* ------------------------------------------------------------------ *)

let linearization_ablation () =
  Printf.printf
    "== Ablation A1: linearisation policy (EM of CKPTSOME, n=300, p=35, pfail=1e-3) ==\n";
  Printf.printf "%-10s %8s | %-14s %12s %7s\n" "workflow" "ccr" "policy" "EM" "ckpts";
  List.iter
    (fun kind ->
      let dag = Spec.generate kind ~seed:1 ~tasks:300 () in
      List.iter
        (fun ccr ->
          let setup = Pipeline.prepare ~dag ~processors:35 ~pfail:0.001 ~ccr () in
          List.iter
            (fun (name, policy) ->
              let schedule =
                Ckpt_core.Allocate.run ~policy setup.Pipeline.mspg ~processors:35
              in
              let plan =
                Strategy.plan Strategy.Ckpt_some ~raw:dag ~schedule
                  ~platform:setup.Pipeline.platform
              in
              Printf.printf "%-10s %8.3f | %-14s %12.2f %7d\n" (Spec.name kind) ccr name
                (Strategy.expected_makespan plan)
                plan.Strategy.checkpoint_count)
            [ ("deterministic", Ckpt_core.Linearize.Deterministic);
              ("random", Ckpt_core.Linearize.Random (Ckpt_prob.Rng.create 7));
              ("min-volume", Ckpt_core.Linearize.Min_volume) ])
        [ 0.01; 0.3 ])
    Spec.paper;
  print_newline ()

let policy_ablation () =
  Printf.printf
    "== Ablation A2: checkpoint policies (EM relative to CKPTSOME, genome n=300, p=35) ==\n";
  Printf.printf "%8s | %10s %10s %10s %10s %10s\n" "ccr" "some" "budget-2" "every-2"
    "every-5" "all";
  let dag = Spec.generate Spec.Genome ~seed:1 ~tasks:300 () in
  List.iter
    (fun ccr ->
      let setup = Pipeline.prepare ~dag ~processors:35 ~pfail:0.001 ~ccr () in
      let em kind = Strategy.expected_makespan (Pipeline.plan setup kind) in
      let some = em Strategy.Ckpt_some in
      Printf.printf "%8.3f | %10.2f %10.4f %10.4f %10.4f %10.4f\n" ccr some
        (em (Strategy.Ckpt_budget 2) /. some)
        (em (Strategy.Ckpt_every 2) /. some)
        (em (Strategy.Ckpt_every 5) /. some)
        (em Strategy.Ckpt_all /. some))
    [ 0.001; 0.01; 0.1; 0.5; 1.0 ];
  print_newline ()

let refinement_ablation () =
  Printf.printf
    "== Ablation A4: global refinement of Algorithm 2 (genome n=50, p=5, pfail=1e-2) ==\n";
  Printf.printf "%-12s | %10s %10s %7s %7s\n" "start" "EM before" "EM after" "moves"
    "gain";
  let dag = Spec.generate Spec.Genome ~seed:1 ~tasks:50 () in
  let setup = Pipeline.prepare ~dag ~processors:5 ~pfail:0.01 ~ccr:0.1 () in
  List.iter
    (fun kind ->
      let r = Ckpt_core.Refine.hill_climb ~max_rounds:30 (Pipeline.plan setup kind) in
      Printf.printf "%-12s | %10.2f %10.2f %7d %6.3f%%\n" (Strategy.kind_name kind)
        r.Ckpt_core.Refine.initial_em r.Ckpt_core.Refine.final_em r.Ckpt_core.Refine.moves
        ((r.Ckpt_core.Refine.initial_em -. r.Ckpt_core.Refine.final_em)
        /. r.Ckpt_core.Refine.initial_em *. 100.))
    [ Strategy.Ckpt_some; Strategy.Ckpt_every 5; Strategy.Ckpt_all ];
  print_newline ()

let contention_ablation () =
  Printf.printf
    "== Ablation A3: storage contention (simulated, genome n=300, p=35, pfail=1e-3) ==\n";
  Printf.printf "%8s | %-12s %12s %12s %9s\n" "ccr" "strategy" "nominal" "contended"
    "penalty";
  let dag = Spec.generate Spec.Genome ~seed:1 ~tasks:300 () in
  let trials = 100 in
  List.iter
    (fun ccr ->
      let setup = Pipeline.prepare ~dag ~processors:35 ~pfail:0.001 ~ccr () in
      List.iter
        (fun kind ->
          let plan = Pipeline.plan setup kind in
          let nominal = Ckpt_prob.Stats.mean (Runner.simulate ~trials plan) in
          let contended =
            Ckpt_prob.Stats.mean (Ckpt_sim.Contention.simulate ~trials plan)
          in
          Printf.printf "%8.3f | %-12s %12.1f %12.1f %8.3fx\n" ccr
            (Strategy.kind_name kind) nominal contended (contended /. nominal))
        [ Strategy.Ckpt_some; Strategy.Ckpt_all ])
    [ 0.01; 0.1; 0.5 ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Degraded mode: permanent processor loss                             *)
(* ------------------------------------------------------------------ *)

(* Static-schedule-with-restart vs online schedule repair under
   permanent processor deaths (extension; ckptwf degrade exposes the
   same comparison from the CLI). Trials fan over [jobs] domains
   without changing the sampled values, and each pdeath cell is
   journaled, so a killed run resumes with identical output. *)
let degraded_mode_table ?journal ?(jobs = 1) () =
  let module Degrade = Ckpt_sim.Degrade in
  Printf.printf "== Degraded mode: repair vs restart (genome n=50, p=5, 1 loss) ==\n";
  Printf.printf "%8s | %12s %12s %8s %8s %8s\n" "pdeath" "EM(repair)" "EM(restart)" "gain"
    "losses" "replans";
  let dag = Spec.generate Spec.Genome ~seed:1 ~tasks:50 () in
  let setup = Pipeline.prepare ~dag ~processors:5 ~pfail:0.001 ~ccr:0.1 () in
  let plan = Pipeline.plan setup Strategy.Ckpt_some in
  let trials = 120 in
  List.iter
    (fun pdeath ->
      let key =
        Printf.sprintf "bench|degrade|wf=genome|n=50|p=5|trials=%d|pdeath=%.17g" trials
          pdeath
      in
      print_endline
        (cell journal key (fun () ->
             let lambda_death =
               Platform.lambda_of_pfail ~pfail:pdeath ~mean_weight:plan.Strategy.wpar
             in
             let config =
               { Degrade.lambda_death; max_losses = 1; kind = Strategy.Ckpt_some;
                 store = Ckpt_storage.Store.default }
             in
             let summary mode =
               Degrade.summarize (Degrade.sample ~trials ~seed:13 ~jobs ~mode config plan)
             in
             let repair = summary Degrade.Repair in
             let restart = summary Degrade.Restart in
             Printf.sprintf "%8.3f | %12.2f %12.2f %7.3fx %8.2f %8.2f" pdeath
               repair.Degrade.mean_makespan restart.Degrade.mean_makespan
               (restart.Degrade.mean_makespan /. repair.Degrade.mean_makespan)
               repair.Degrade.mean_losses repair.Degrade.mean_replans)))
    [ 0.05; 0.1; 0.2; 0.5 ];
  print_newline ()

(* Unreliable stable storage: expected makespan under latent checkpoint
   corruption, for replication factors k = 1 and k = 2 (extension;
   ckptwf storm exposes the full sweep from the CLI). Each cell is
   journaled and trials fan over [jobs] domains without changing the
   sampled values. *)
let storage_crossover_table ?journal ?(jobs = 1) () =
  let module Storage = Ckpt_storage.Storage in
  Printf.printf "== Unreliable storage: replication crossover (genome n=50, p=5) ==\n";
  Printf.printf "%12s | %12s %12s %10s\n" "corrupt_prob" "EM(k=1)" "EM(k=2)" "ratio";
  let dag = Spec.generate Spec.Genome ~seed:1 ~tasks:50 () in
  let setup = Pipeline.prepare ~dag ~processors:5 ~pfail:0.001 ~ccr:0.1 () in
  let trials = 200 in
  let plan_k = Hashtbl.create 2 in
  let plan_for k =
    match Hashtbl.find_opt plan_k k with
    | Some p -> p
    | None ->
        let p = Pipeline.plan ~replicas:k setup Strategy.Ckpt_some in
        Hashtbl.add plan_k k p;
        p
  in
  let em ~replicas ~corrupt_prob =
    let store =
      { Ckpt_storage.Store.default with
        Ckpt_storage.Store.faults = { Storage.default with Storage.corrupt_prob; replicas } }
    in
    let sample = Runner.sample_storage ~trials ~seed:13 ~jobs ~store (plan_for replicas) in
    Array.fold_left (fun acc t -> acc +. t.Runner.makespan) 0. sample
    /. float_of_int (Array.length sample)
  in
  List.iter
    (fun corrupt_prob ->
      let key =
        Printf.sprintf "bench|storm|wf=genome|n=50|p=5|trials=%d|cp=%.17g" trials
          corrupt_prob
      in
      print_endline
        (cell journal key (fun () ->
             let em1 = em ~replicas:1 ~corrupt_prob in
             let em2 = em ~replicas:2 ~corrupt_prob in
             Printf.sprintf "%12.3f | %12.2f %12.2f %9.3fx" corrupt_prob em1 em2
               (em1 /. em2))))
    [ 0.; 0.02; 0.05; 0.1; 0.2 ];
  print_newline ()

(* Spot revocation: checkpointing + eviction-aware replanning vs the
   Setlur-style replication baseline on a priced platform — two of the
   five processors are spot instances at a 0.3 price discount (so
   3.3x the revocation risk of the on-demand ones) (extension;
   ckptwf cloud exposes the full sweep from the CLI). Each cell is
   journaled and trials fan over [jobs] domains without changing the
   sampled values. *)
let cloud_revocation_table ?journal ?(jobs = 1) () =
  let module Cloud = Ckpt_sim.Cloud in
  Printf.printf "== Spot revocation: checkpoint vs replicate (genome n=50, p=5, 2 spot) ==\n";
  Printf.printf "%8s %6s | %12s %12s %10s %10s %9s %9s %9s\n" "prevoke" "grace" "EM(ckpt)"
    "EM(repl)" "lost(ck)" "lost(rp)" "$(ck)" "$(rp)" "strand";
  let dag = Spec.generate Spec.Genome ~seed:1 ~tasks:50 () in
  let processors = 5 in
  let pfail = 0.001 and ccr = 0.1 in
  let mean_weight = Dag.total_weight dag /. float_of_int (Dag.n_tasks dag) in
  let lambda = Platform.lambda_of_pfail ~pfail ~mean_weight in
  let bandwidth =
    Platform.bandwidth_for_ccr ~ccr ~total_data:(Dag.total_data dag)
      ~total_weight:(Dag.total_weight dag)
  in
  let platform =
    let nspot = 2 in
    let spot p = p >= processors - nspot in
    let rates = Array.make processors lambda in
    let prices = Array.init processors (fun p -> if spot p then 0.3 else 1.) in
    Platform.make_heterogeneous ~prices ~rates ~bandwidth ()
  in
  let setup = Pipeline.prepare ~platform ~dag ~processors ~pfail ~ccr () in
  let plan = Pipeline.plan setup Strategy.Ckpt_some in
  let prepared = Cloud.prepare plan in
  let trials = 120 in
  List.iter
    (fun (prevoke, grace) ->
      let key =
        Printf.sprintf "bench|cloud|wf=genome|n=50|p=5|trials=%d|prevoke=%.17g|grace=%.17g"
          trials prevoke grace
      in
      print_endline
        (cell journal key (fun () ->
             let lambda_revoke =
               Platform.lambda_of_pfail ~pfail:prevoke ~mean_weight:plan.Strategy.wpar
             in
             let config =
               { Cloud.lambda_revoke; grace; max_revocations = 2;
                 kind = Strategy.Ckpt_some; store = Ckpt_storage.Store.default }
             in
             let summary mode =
               Cloud.summarize
                 (Cloud.sample_prepared ~trials ~seed:13 ~jobs ~mode config prepared)
             in
             let ck = summary Cloud.Checkpoint in
             let rp = summary Cloud.Replicate in
             (* an [inf] mean makespan means [strand]ed trials: every
                replica (or every processor) revoked before finishing *)
             Printf.sprintf "%8.2f %6.0f | %12.2f %12.2f %10.2f %10.2f %9.3f %9.3f %4d/%-4d"
               prevoke grace ck.Cloud.mean_makespan rp.Cloud.mean_makespan
               ck.Cloud.mean_work_lost rp.Cloud.mean_work_lost ck.Cloud.mean_dollar_cost
               rp.Cloud.mean_dollar_cost ck.Cloud.stranded rp.Cloud.stranded)))
    [ (0.2, 0.); (0.2, 30.); (0.5, 0.); (0.5, 30.) ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Monte-Carlo throughput benchmark                                     *)
(* ------------------------------------------------------------------ *)

(* End-to-end sampling rate of the MONTECARLO estimator on the paper's
   largest workflow (GENOME, n = 1000 tasks) — the figure the compiled
   CSR + bulk-stream sampling work is measured by. With --json FILE the
   numbers are also written as a machine-readable record (the tracked
   baseline lives in BENCH_mc.json at the repository root). *)
let mc_throughput ?json ~jobs () =
  Printf.printf "== Monte-Carlo throughput (GENOME, CKPTALL prob-DAG) ==\n";
  let cores = Domain.recommended_domain_count () in
  let jobs_requested = jobs in
  let jobs = Pool.effective_jobs jobs in
  if jobs_requested > cores then
    Printf.eprintf
      "bench: --jobs %d exceeds the %d available core(s); parallel legs run at the \
       clamped effective width %d\n%!"
      jobs_requested cores jobs;
  let trials = 10_000 in
  let dag = Spec.generate Spec.Genome ~seed:1 ~tasks:1000 () in
  let setup = Pipeline.prepare ~dag ~processors:61 ~pfail:0.001 ~ccr:0.01 () in
  let plan = Pipeline.plan setup Strategy.Ckpt_all in
  let pd = Option.get plan.Strategy.prob_dag in
  let n = Ckpt_eval.Prob_dag.n_nodes pd in
  (* warm-up: compile the CSR outside the timed region *)
  ignore (Ckpt_eval.Montecarlo.estimate ~trials:100 ~jobs pd);
  let t0 = Unix.gettimeofday () in
  let mean = Ckpt_eval.Montecarlo.estimate ~trials ~jobs pd in
  let wall = Unix.gettimeofday () -. t0 in
  let rate = float_of_int trials /. wall in
  Printf.printf "  workflow=genome n=%d trials=%d jobs=%d mean=%.4f wall=%.3fs trials/sec=%.0f\n\n"
    n trials jobs mean wall rate;
  let record =
    Printf.sprintf
      "{\n  \"benchmark\": \"montecarlo-throughput\",\n  \"workflow\": \"genome\",\n\
      \  \"n\": %d,\n  \"trials\": %d,\n  \"jobs_requested\": %d,\n  \"jobs\": %d,\n\
      \  \"cores\": %d,\n  \"wall_seconds\": %.6f,\n  \"trials_per_sec\": %.0f\n}\n"
      n trials jobs_requested jobs cores wall rate
  in
  Option.iter (fun path -> History.write_file path record) json;
  ignore (History.record ~name:"mc" record)

(* ------------------------------------------------------------------ *)
(* Planning throughput benchmark                                        *)
(* ------------------------------------------------------------------ *)

(* End-to-end planning rate — recognition + ALLOCATE + the Algorithm 2
   placement DP — on the paper's largest workflow and on a larger
   generated M-SPG, sequentially and fanned over [jobs] domains, plus
   the degraded-mode replanning rate with its cache hit rate. This is
   the figure the CSR recogniser + packed-DP + replan-cache work is
   measured by; the tracked baseline lives in BENCH_plan.json at the
   repository root. The seed (pre-CSR) planner measured 8.2 plans/sec
   on GENOME n=999 on the reference machine. *)
let seed_baseline_plans_per_sec = 8.2

let plan_throughput ?json ~jobs () =
  let module Degrade = Ckpt_sim.Degrade in
  let cores = Domain.recommended_domain_count () in
  let jobs_requested = jobs in
  let jobs = Pool.effective_jobs jobs in
  Printf.printf "== Planning throughput (recognition + ALLOCATE + placement DP) ==\n";
  if jobs_requested > cores then
    Printf.eprintf
      "bench: --jobs %d exceeds the %d available core(s); parallel legs run at the \
       clamped effective width %d\n%!"
      jobs_requested cores jobs;
  let reps = History.reps ~default:10 in
  let time iters f =
    ignore (f ());
    (* level the heap between legs: the seq/par pairs must differ by
       the code path alone, not by the major-GC debt the previous leg
       left behind *)
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (Sys.opaque_identity (f ()))
    done;
    let wall = Unix.gettimeofday () -. t0 in
    float_of_int iters /. wall
  in
  let genome = Spec.generate Spec.Genome ~seed:1 ~tasks:1000 () in
  let n_genome = Dag.n_tasks genome in
  let full_plan ~jobs dag ~processors =
    let setup = Pipeline.prepare ~dag ~processors ~pfail:0.001 ~ccr:0.01 () in
    Pipeline.plan ~jobs setup Strategy.Ckpt_some
  in
  let genome_seq = time reps (fun () -> full_plan ~jobs:1 genome ~processors:61) in
  let genome_par = time reps (fun () -> full_plan ~jobs genome ~processors:61) in
  Printf.printf "  genome   n=%d   plans/sec seq=%.1f  par(jobs=%d)=%.1f  seed=%.1f (%.1fx)\n"
    n_genome genome_seq jobs genome_par seed_baseline_plans_per_sec
    (genome_seq /. seed_baseline_plans_per_sec);
  (* a large generated M-SPG: 6 parallel branches of 600-task chains
     (random weights/file sizes), scheduled on 6 processors so every
     superchain carries a long placement DP — the shape where fanning
     the per-superchain solves over domains can pay, given the cores *)
  let random_mspg =
    let module Mspg = Ckpt_mspg.Mspg in
    let rng = Ckpt_prob.Rng.create 5 in
    let counter = ref 0 in
    let task () =
      incr counter;
      Mspg.Btask (Printf.sprintf "t%d" !counter, 0.5 +. Ckpt_prob.Rng.float rng 49.5)
    in
    let bp =
      Mspg.Bparallel (List.init 6 (fun _ -> Mspg.Bserial (List.init 600 (fun _ -> task ()))))
    in
    let edge_rng = Ckpt_prob.Rng.split rng in
    Mspg.build ~name:"large-mspg"
      ~edge_size:(fun _ _ -> 1e5 +. Ckpt_prob.Rng.float edge_rng (1e8 -. 1e5))
      bp
  in
  let random_dag = random_mspg.Ckpt_mspg.Mspg.dag in
  let n_random = Dag.n_tasks random_dag in
  (* the tree of a generated M-SPG is known by construction, so this
     leg prices ALLOCATE + Algorithm 2 only (no recognition pass) *)
  let plan_known ?(kind = Strategy.Ckpt_some) ~jobs () =
    let n = Dag.n_tasks random_dag in
    let mean_weight = Dag.total_weight random_dag /. float_of_int n in
    let lambda = Platform.lambda_of_pfail ~pfail:0.001 ~mean_weight in
    let bandwidth =
      Platform.bandwidth_for_ccr ~ccr:0.01 ~total_data:(Dag.total_data random_dag)
        ~total_weight:(Dag.total_weight random_dag)
    in
    let platform = Platform.make ~processors:6 ~lambda ~bandwidth in
    let schedule = Allocate.run random_mspg ~processors:6 in
    Strategy.plan ~jobs kind ~raw:random_dag ~schedule ~platform
  in
  let half_reps = max 1 (reps / 2) in
  let random_seq = time half_reps (fun () -> plan_known ~jobs:1 ()) in
  let random_par = time half_reps (fun () -> plan_known ~jobs ()) in
  Printf.printf "  large    n=%d  plans/sec seq=%.1f  par(jobs=%d)=%.1f  (alloc+DP only)\n"
    n_random random_seq jobs random_par;
  (* daemon-batch leg: the serve workload — a 256-request batch over a
     bounded set of strategies hitting a Service plan cache, so all but
     the first request per strategy is a hash lookup.  This is the
     plans/sec a resident [ckptwf serve] process sustains. *)
  let module Service = Ckpt_core.Service in
  let batch_requests = 512 in
  let batch_kinds =
    [| Strategy.Ckpt_some; Strategy.Ckpt_all; Strategy.Ckpt_every 5; Strategy.Ckpt_budget 8 |]
  in
  let service = Service.create () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to batch_requests - 1 do
    let kind = batch_kinds.(i mod Array.length batch_kinds) in
    ignore
      (Sys.opaque_identity
         (Service.plan service
            ~key:(Printf.sprintf "bench|large|%s" (Strategy.kind_name kind))
            (fun () -> plan_known ~kind ~jobs:1 ())))
  done;
  let batch_wall = Unix.gettimeofday () -. t0 in
  let random_batch = float_of_int batch_requests /. batch_wall in
  let svc = Service.stats service in
  Printf.printf
    "  daemon   n=%d  plans/sec batch=%.0f  (%d requests, %d plan hit(s), %d miss(es))\n"
    n_random random_batch batch_requests svc.Service.plan_hits svc.Service.plan_misses;
  (* concurrent daemon leg: the same 512-request load issued by 4
     simultaneous connections — each domain plays one connection
     handler hammering a shared Service. Once the four strategies are
     cached the throughput prices the mutex-guarded lookup path under
     contention (racing duplicate computes land in [plan_races]). *)
  let conc_clients = 4 in
  let per_client = batch_requests / conc_clients in
  let conc_service = Service.create () in
  let t0 = Unix.gettimeofday () in
  let clients =
    List.init conc_clients (fun c ->
        Domain.spawn (fun () ->
            for i = 0 to per_client - 1 do
              let kind = batch_kinds.((c + i) mod Array.length batch_kinds) in
              ignore
                (Sys.opaque_identity
                   (Service.plan conc_service
                      ~key:(Printf.sprintf "bench|large|%s" (Strategy.kind_name kind))
                      (fun () -> plan_known ~kind ~jobs:1 ())))
            done))
  in
  List.iter Domain.join clients;
  let conc_wall = Unix.gettimeofday () -. t0 in
  let random_conc = float_of_int (conc_clients * per_client) /. conc_wall in
  let conc_svc = Service.stats conc_service in
  Printf.printf
    "  daemon   n=%d  plans/sec concurrent=%.0f  (%d clients x %d requests, %d race(s))\n"
    n_random random_conc conc_clients per_client conc_svc.Service.plan_races;
  (* degraded-mode replanning: 120-trial repair batches on the
     standard small scenario, replan cache on *)
  let dag50 = Spec.generate Spec.Genome ~seed:1 ~tasks:50 () in
  let setup50 = Pipeline.prepare ~dag:dag50 ~processors:5 ~pfail:0.001 ~ccr:0.1 () in
  let plan50 = Pipeline.plan setup50 Strategy.Ckpt_some in
  let config =
    {
      Degrade.lambda_death =
        Platform.lambda_of_pfail ~pfail:0.2 ~mean_weight:plan50.Strategy.wpar;
      max_losses = 1;
      kind = Strategy.Ckpt_some;
      store = Ckpt_storage.Store.default;
    }
  in
  let trials = 120 in
  let prepared = Degrade.prepare plan50 in
  let batches =
    time half_reps (fun () ->
        Degrade.sample_prepared ~trials ~seed:13 ~jobs:1 ~mode:Degrade.Repair config
          prepared)
  in
  let hits, misses = Degrade.cache_stats prepared in
  let hit_rate = float_of_int hits /. float_of_int (max 1 (hits + misses)) in
  let degrade_rate = batches *. float_of_int trials in
  Printf.printf
    "  degrade  n=50 p=5  trials/sec=%.0f  replan cache: %d hit(s), %d miss(es) (%.0f%%)\n"
    degrade_rate hits misses (100. *. hit_rate);
  (* disk-store commit throughput: durable commits through the
     crash-consistent journal — one atomic tmp+fsync+rename per fresh
     record, so this prices the I/O floor a `--store disk` resumable
     run pays per recovery line *)
  let module Store = Ckpt_storage.Store in
  let store_commits = 128 in
  let store_path = Filename.temp_file "ckptwf_bench_store" ".journal" in
  let store_rate =
    match
      Store.open_persist ~path:store_path
        ~fingerprint:(Store.fingerprint [ "bench|plan-throughput" ])
        ()
    with
    | Result.Error _ -> 0.
    | Ok persist ->
        let cfg =
          { Store.default with Store.backend = Store.Disk { path = store_path } }
        in
        let st = Store.create ~persist cfg (Ckpt_prob.Rng.create 3) in
        let t0 = Unix.gettimeofday () in
        for seg = 0 to store_commits - 1 do
          ignore
            (Sys.opaque_identity (Store.commit st ~seg ~write:0.1 ~at:(float_of_int seg)))
        done;
        let wall = Unix.gettimeofday () -. t0 in
        float_of_int store_commits /. wall
  in
  (try Sys.remove store_path with Sys_error _ -> ());
  Printf.printf "  store    disk commits/sec=%.0f  (%d durable commits, fsynced append each)\n\n"
    store_rate store_commits;
  let record =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"plan-throughput\",\n\
      \  \"jobs_requested\": %d,\n\
      \  \"jobs\": %d,\n\
      \  \"cores\": %d,\n\
      \  \"reps\": %d,\n\
      \  \"genome_n\": %d,\n\
      \  \"genome_plans_per_sec_seq\": %.2f,\n\
      \  \"genome_plans_per_sec_par\": %.2f,\n\
      \  \"random_mspg_n\": %d,\n\
      \  \"random_plans_per_sec_seq\": %.2f,\n\
      \  \"random_plans_per_sec_par\": %.2f,\n\
      \  \"random_plans_per_sec_batch\": %.2f,\n\
      \  \"random_plans_per_sec_concurrent\": %.2f,\n\
      \  \"concurrent_clients\": %d,\n\
      \  \"service_plan_races\": %d,\n\
      \  \"batch_requests\": %d,\n\
      \  \"service_plan_hits\": %d,\n\
      \  \"service_plan_misses\": %d,\n\
      \  \"degrade_trials_per_sec\": %.2f,\n\
      \  \"replan_cache_hits\": %d,\n\
      \  \"replan_cache_misses\": %d,\n\
      \  \"replan_cache_hit_rate\": %.4f,\n\
      \  \"store_commits\": %d,\n\
      \  \"store_commits_per_sec\": %.2f,\n\
      \  \"seed_baseline_plans_per_sec\": %.2f,\n\
      \  \"speedup_vs_seed\": %.2f\n\
       }\n"
      jobs_requested jobs cores reps n_genome genome_seq genome_par n_random random_seq
      random_par random_batch random_conc conc_clients conc_svc.Service.plan_races
      batch_requests svc.Service.plan_hits svc.Service.plan_misses
      degrade_rate hits misses hit_rate store_commits store_rate
      seed_baseline_plans_per_sec
      (genome_seq /. seed_baseline_plans_per_sec)
  in
  Option.iter (fun path -> History.write_file path record) json;
  ignore (History.record ~name:"plan" record)

(* ------------------------------------------------------------------ *)
(* Sweep-cell throughput benchmark                                      *)
(* ------------------------------------------------------------------ *)

(* The figure the analytic expected-makespan engine is measured by: a
   pinned Figure-5 sweep (GENOME n=300, p=35, pfail=0.001, the 9
   default CCR points of `ckptwf sweep`) evaluated per cell by the
   closed-form analytic engine and by the 10k-trial MONTECARLO
   estimator. Setups and plans are prepared once outside the timed
   region — planning throughput is BENCH_plan.json's figure — so the
   two rates isolate the estimator cost, which is what `--eval
   analytic|mc` switches inside an already-planned sweep. The analytic
   value is additionally asserted to lie inside the MC 95% confidence
   interval on every cell and both strategies; the tracked baseline
   lives in BENCH_sweep.json at the repository root. *)
let sweep_throughput ?json ~jobs () =
  let module Analytic = Ckpt_analytic.Analytic in
  Printf.printf "== Sweep-cell throughput (GENOME n=300 p=35: analytic vs 10k-trial MC) ==\n";
  let cores = Domain.recommended_domain_count () in
  let jobs_requested = jobs in
  let jobs = Pool.effective_jobs jobs in
  if jobs_requested > cores then
    Printf.eprintf
      "bench: --jobs %d exceeds the %d available core(s); parallel legs run at the \
       clamped effective width %d\n%!"
      jobs_requested cores jobs;
  let trials = 10_000 in
  let reps = History.reps ~default:5 in
  let dag = Spec.generate Spec.Genome ~seed:1 ~tasks:300 () in
  let ccrs = logspace 1e-4 1e-2 9 in
  let cells =
    List.map
      (fun ccr ->
        let setup = Pipeline.prepare ~dag ~processors:35 ~pfail:0.001 ~ccr () in
        let plans = [ Pipeline.plan setup Strategy.Ckpt_some; Pipeline.plan setup Strategy.Ckpt_all ] in
        (ccr, plans))
      ccrs
  in
  let n_cells = List.length cells in
  (* containment first: |analytic − MC mean| <= the MC 95% half-width,
     cell by cell, strategy by strategy *)
  let worst_gap = ref 0. in
  let within_ci =
    List.for_all
      (fun (_, plans) ->
        List.for_all
          (fun (plan : Strategy.plan) ->
            let pd = Option.get plan.Strategy.prob_dag in
            let st = Ckpt_eval.Montecarlo.estimate_with_stats ~trials ~seed:1 ~jobs pd in
            let gap =
              abs_float (Analytic.expected_makespan plan -. Ckpt_prob.Stats.mean st)
            in
            let hw = Ckpt_prob.Stats.ci95_halfwidth st in
            if hw > 0. && gap /. hw > !worst_gap then worst_gap := gap /. hw;
            gap <= hw)
          plans)
      cells
  in
  (* timed phases: one "pass" prices every cell of the sweep *)
  let time_pass passes f =
    ignore (f ());
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    for _ = 1 to passes do
      ignore (Sys.opaque_identity (f ()))
    done;
    float_of_int (passes * n_cells) /. (Unix.gettimeofday () -. t0)
  in
  let eval_with f () =
    List.iter (fun (_, plans) -> List.iter (fun p -> ignore (Sys.opaque_identity (f p))) plans) cells
  in
  (* the analytic pass is microseconds per cell: scale the pass count
     up so the timed region stays measurable *)
  let analytic_rate =
    time_pass (reps * 100) (eval_with (fun p -> Analytic.expected_makespan p))
  in
  let mc_rate =
    time_pass reps
      (eval_with (fun (p : Strategy.plan) ->
           Ckpt_eval.Montecarlo.estimate ~trials ~seed:1 ~jobs
             (Option.get p.Strategy.prob_dag)))
  in
  let speedup = analytic_rate /. mc_rate in
  Printf.printf
    "  cells=%d trials=%d jobs=%d cells/sec analytic=%.0f mc=%.2f (%.0fx) within_ci=%b \
     (worst gap %.2f of CI)\n\n"
    n_cells trials jobs analytic_rate mc_rate speedup within_ci !worst_gap;
  let record =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"sweep-throughput\",\n\
      \  \"workflow\": \"genome\",\n\
      \  \"n\": %d,\n\
      \  \"processors\": 35,\n\
      \  \"cells\": %d,\n\
      \  \"trials\": %d,\n\
      \  \"jobs_requested\": %d,\n\
      \  \"jobs\": %d,\n\
      \  \"cores\": %d,\n\
      \  \"reps\": %d,\n\
      \  \"sweep_cells_per_sec_analytic\": %.2f,\n\
      \  \"sweep_cells_per_sec_mc\": %.4f,\n\
      \  \"analytic_speedup\": %.2f,\n\
      \  \"analytic_within_ci\": %b,\n\
      \  \"worst_gap_ci_fraction\": %.4f\n\
       }\n"
      (Dag.n_tasks dag) n_cells trials jobs_requested jobs cores reps analytic_rate mc_rate
      speedup within_ci !worst_gap
  in
  Option.iter (fun path -> History.write_file path record) json;
  ignore (History.record ~name:"sweep" record);
  if not within_ci then begin
    prerr_endline "bench: analytic expected makespan left the MC 95% CI";
    exit 1
  end

let () =
  let quick = Array.exists (fun a -> a = "--quick") Sys.argv in
  let resume = Array.exists (fun a -> a = "--resume") Sys.argv in
  let mc_only = Array.exists (fun a -> a = "--mc-only") Sys.argv in
  let value_of name =
    let n = Array.length Sys.argv in
    let rec find i =
      if i >= n then None
      else if Sys.argv.(i) = name && i + 1 < n then Some Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  let jobs =
    match value_of "--jobs" with
    | None -> 1
    | Some s -> (
        match int_of_string_opt s with
        | Some 0 -> Pool.available_jobs ()
        | Some j when j > 0 -> j
        | _ ->
            prerr_endline "bench: --jobs wants a non-negative integer";
            exit 2)
  in
  let json = value_of "--json" in
  let journal_path = value_of "--journal" in
  (if resume && journal_path = None then begin
     prerr_endline "bench: --resume requires --journal FILE";
     exit 2
   end);
  if mc_only then begin
    mc_throughput ?json ~jobs ();
    exit 0
  end;
  if Array.exists (fun a -> a = "--plan-only") Sys.argv then begin
    plan_throughput ?json ~jobs ();
    exit 0
  end;
  if Array.exists (fun a -> a = "--sweep-only") Sys.argv then begin
    sweep_throughput ?json ~jobs ();
    exit 0
  end;
  let journal =
    match journal_path with
    | None -> None
    | Some path -> (
        match Journal.open_ ~fresh:(not resume) path with
        | Ok j -> Some j
        | Error e ->
            Printf.eprintf "bench: %s\n" (Rerror.to_string e);
            exit (Rerror.exit_code e))
  in
  Option.iter
    (fun j ->
      if Journal.recovered_tail j then
        Printf.eprintf "bench: journal %s: dropped a truncated trailing entry (recovered)\n%!"
          (Journal.path j))
    journal;
  run_benchmarks ();
  mc_throughput ?json ~jobs ();
  plan_throughput ~jobs ();
  sweep_throughput ~jobs ();
  accuracy_table ?journal ();
  linearization_ablation ();
  policy_ablation ();
  refinement_ablation ();
  contention_ablation ();
  degraded_mode_table ?journal ~jobs ();
  storage_crossover_table ?journal ~jobs ();
  cloud_revocation_table ?journal ~jobs ();
  if quick then
    List.iter
      (fun (fig, kind) ->
        Printf.printf "== Figure %s (quick): %s at n=300, p=35, pfail=0.001 ==\n" fig
          (Spec.name kind);
        let dag = Spec.generate kind ~seed:1 ~tasks:300 () in
        List.iter
          (fun ccr ->
            let setup = Pipeline.prepare ~dag ~processors:35 ~pfail:0.001 ~ccr () in
            let cmp = Pipeline.compare_strategies setup in
            Printf.printf "  ccr=%8.5f relALL=%8.4f relNONE=%9.4f\n" ccr cmp.Pipeline.rel_all
              cmp.Pipeline.rel_none)
          (ccrs_for kind);
        print_newline ())
      [ ("5", Spec.Genome); ("6", Spec.Montage); ("7", Spec.Ligo) ]
  else begin
    figure_series ?journal ~jobs "5" Spec.Genome;
    figure_series ?journal ~jobs "6" Spec.Montage;
    figure_series ?journal ~jobs "7" Spec.Ligo
  end
