(* Bench-result history: every throughput bench appends a timestamped
   JSON record under bench/results/ (override with CKPTWF_BENCH_DIR)
   and refreshes a "<name>-latest.json" pointer, turning the one-shot
   BENCH_*.json snapshots at the repository root into a tracked
   series. Repetition counts are tunable with CKPTWF_BENCH_REPS so CI
   can run short and a quiet machine can run long. Recording failures
   only warn — a read-only checkout must not fail the bench. *)

let reps ~default =
  match Sys.getenv_opt "CKPTWF_BENCH_REPS" with
  | None -> default
  | Some s -> (
      match int_of_string_opt s with
      | Some r when r >= 1 -> r
      | _ ->
          Printf.eprintf "bench: ignoring CKPTWF_BENCH_REPS=%S (want a positive integer)\n%!"
            s;
          default)

let results_dir () =
  match Sys.getenv_opt "CKPTWF_BENCH_DIR" with
  | Some d -> d
  | None -> Filename.concat "bench" "results"

let timestamp () =
  let t = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d%02d%02d-%02d%02d%02d" (t.Unix.tm_year + 1900) (t.Unix.tm_mon + 1)
    t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min t.Unix.tm_sec

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* append one timestamped record and refresh the latest pointer *)
let record ~name json =
  try
    let dir = results_dir () in
    mkdir_p dir;
    let stamped = Filename.concat dir (Printf.sprintf "%s-%s.json" name (timestamp ())) in
    write_file stamped json;
    write_file (Filename.concat dir (Printf.sprintf "%s-latest.json" name)) json;
    stamped
  with Sys_error m | Unix.Unix_error (_, m, _) ->
    Printf.eprintf "bench: could not record %s history (%s); continuing\n%!" name m;
    ""
