(* serve_probe — a deliberately misbehaving test client for the
   [ckptwf serve] daemon's fault-injection harness.

   A well-behaved client connects, sends one NDJSON request batch,
   half-closes (EOF), prints the answers and exits. The flags turn it
   into each of the daemon's adversaries:

     --partial STR   send STR with no trailing newline (a torn request)
     --hold SECONDS  never send EOF; sit silent for SECONDS first
                     (slowloris / hung client)
     --abort         disappear right after sending, reading nothing
                     (a client killed mid-request)

   usage: serve_probe (--unix PATH | --tcp PORT)
            [--send FILE] [--partial STR] [--hold SECONDS] [--abort]
            [--timeout SECONDS]

   Request lines come from --send FILE, or stdin when the flag is
   absent and stdin is not a tty. Exit codes: 0 done, 2 usage,
   3 could not connect, 9 gave up waiting for answers (--timeout,
   default 60s — the probe must never hang the harness). *)

let usage () =
  prerr_endline
    "usage: serve_probe (--unix PATH | --tcp PORT) [--send FILE] [--partial STR] \
     [--hold SECONDS] [--abort] [--timeout SECONDS]";
  exit 2

let () =
  let unix_path = ref None
  and tcp_port = ref None
  and send_file = ref None
  and partial = ref None
  and hold = ref 0.
  and abort = ref false
  and timeout = ref 60. in
  let rec parse = function
    | [] -> ()
    | "--unix" :: v :: rest ->
        unix_path := Some v;
        parse rest
    | "--tcp" :: v :: rest ->
        (match int_of_string_opt v with Some p -> tcp_port := Some p | None -> usage ());
        parse rest
    | "--send" :: v :: rest ->
        send_file := Some v;
        parse rest
    | "--partial" :: v :: rest ->
        partial := Some v;
        parse rest
    | "--hold" :: v :: rest ->
        (match float_of_string_opt v with Some s -> hold := s | None -> usage ());
        parse rest
    | "--abort" :: rest ->
        abort := true;
        parse rest
    | "--timeout" :: v :: rest ->
        (match float_of_string_opt v with Some s -> timeout := s | None -> usage ());
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let addr =
    match (!unix_path, !tcp_port) with
    | Some path, None -> Unix.ADDR_UNIX path
    | None, Some port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)
    | _ -> usage ()
  in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd =
    Unix.socket
      (match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET)
      Unix.SOCK_STREAM 0
  in
  (try Unix.connect fd addr
   with Unix.Unix_error (e, _, _) ->
     Printf.eprintf "serve_probe: connect: %s\n%!" (Unix.error_message e);
     exit 3);
  let rec write_all s off len =
    if len > 0 then
      match Unix.write_substring fd s off len with
      | n -> write_all s (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all s off len
  in
  let send line =
    (* the daemon may have already shed or timed this connection out;
       a refused write is part of the scenario, not a probe failure *)
    try write_all line 0 (String.length line) with Unix.Unix_error _ -> ()
  in
  (let input =
     match !send_file with
     | Some path -> Some (open_in path)
     | None -> if Unix.isatty Unix.stdin then None else Some stdin
   in
   match input with
   | None -> ()
   | Some ch ->
       (try
          while true do
            send (input_line ch ^ "\n")
          done
        with End_of_file -> ());
       if ch != stdin then close_in ch);
  Option.iter send !partial;
  if !abort then begin
    Unix.close fd;
    exit 0
  end;
  (* a holding client never half-closes: the daemon must time it out,
     not wait politely for an EOF that will never come *)
  if !hold > 0. then Unix.sleepf !hold
  else (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
  (* drain the answers, bounded by --timeout so a wedged daemon fails
     the harness loudly instead of hanging it *)
  let give_up = Unix.gettimeofday () +. !timeout in
  let chunk = Bytes.create 8192 in
  let rec drain () =
    let budget = give_up -. Unix.gettimeofday () in
    if budget <= 0. then exit 9;
    match Unix.select [ fd ] [] [] budget with
    | [], _, _ -> exit 9
    | _ -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            print_string (Bytes.sub_string chunk 0 n);
            drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
  in
  drain ();
  flush stdout;
  (try Unix.close fd with Unix.Unix_error _ -> ())
