(* ckptwf — command-line driver for the checkpointing-workflows
   reproduction: generate Pegasus-like workflows, schedule them with
   Algorithm 1, place checkpoints with Algorithm 2, evaluate and
   simulate the three strategies, and run the paper's CCR sweeps. *)

open Cmdliner
module Dag = Ckpt_dag.Dag
module Mspg = Ckpt_mspg.Mspg
module Recognize = Ckpt_mspg.Recognize
module Spec = Ckpt_workflows.Spec
module Pipeline = Ckpt_core.Pipeline
module Strategy = Ckpt_core.Strategy
module Schedule = Ckpt_core.Schedule
module Superchain = Ckpt_core.Superchain
module Evaluator = Ckpt_eval.Evaluator
module Analytic = Ckpt_analytic.Analytic
module Runner = Ckpt_sim.Runner
module Stats = Ckpt_prob.Stats
module Rerror = Ckpt_resilience.Error
module Journal = Ckpt_resilience.Journal
module Retry = Ckpt_resilience.Retry
module Deadline = Ckpt_resilience.Deadline
module Faulty = Ckpt_resilience.Faulty
module Pool = Ckpt_parallel.Pool
module Storage = Ckpt_storage.Storage
module Store = Ckpt_storage.Store

(* --- error boundary ---

   Every command body runs under [protect]: recoverable failures
   (malformed DAX, invalid DAG, journal corruption, I/O trouble) exit
   with a one-line diagnostic and code 2 — never an OCaml backtrace.
   Exhausted budgets/retries exit 3; an injected fail-stop error (the
   testing aid) exits 1, mimicking a killed process. *)

let die e =
  Printf.eprintf "ckptwf: %s\n%!" (Rerror.to_string e);
  exit (Rerror.exit_code e)

let protect f =
  try f () with
  | Rerror.E e -> die e
  | Ckpt_dax.Dax.Error message -> die (Rerror.Parse { source = "dax"; message })
  | Faulty.Injected label ->
      Printf.eprintf "ckptwf: injected fail-stop error during %s\n%!" label;
      exit 1
  | Sys_error message -> die (Rerror.Io { path = "<fs>"; message })

(* --- shared arguments --- *)

let workflow_conv =
  let parse s =
    match Spec.of_name s with
    | Some k -> Ok k
    | None -> Error (`Msg (Printf.sprintf "unknown workflow %S (genome|montage|ligo)" s))
  in
  Arg.conv (parse, fun fmt k -> Format.pp_print_string fmt (Spec.name k))

let method_conv =
  let parse s =
    match Evaluator.of_name s with
    | Some m -> Ok m
    | None ->
        Error (`Msg (Printf.sprintf "unknown method %S (montecarlo|dodin|normal|pathapprox)" s))
  in
  Arg.conv (parse, fun fmt m -> Format.pp_print_string fmt (Evaluator.name m))

let workflow_arg =
  Arg.(
    value
    & opt workflow_conv Spec.Genome
    & info [ "w"; "workflow" ] ~docv:"WORKFLOW" ~doc:"Workflow family: genome, montage or ligo.")

let tasks_arg =
  Arg.(value & opt int 300 & info [ "n"; "tasks" ] ~docv:"N" ~doc:"Approximate task count.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")

let processors_arg =
  Arg.(value & opt int 35 & info [ "p"; "processors" ] ~docv:"P" ~doc:"Processor count.")

let pfail_arg =
  Arg.(
    value
    & opt float 0.001
    & info [ "pfail" ] ~docv:"PFAIL" ~doc:"Per-task failure probability (sets lambda).")

let ccr_arg =
  Arg.(
    value
    & opt float 0.01
    & info [ "ccr" ] ~docv:"CCR" ~doc:"Communication-to-computation ratio (sets bandwidth).")

let method_arg =
  Arg.(
    value
    & opt method_conv Evaluator.Pathapprox
    & info [ "m"; "method" ] ~docv:"METHOD"
        ~doc:"Expected-makespan estimator: montecarlo, dodin, normal or pathapprox.")

let eval_conv =
  let parse s =
    match Analytic.eval_of_name s with
    | Some e -> Ok e
    | None -> Error (`Msg (Printf.sprintf "unknown evaluator %S (analytic|mc|auto)" s))
  in
  Arg.conv (parse, fun fmt e -> Format.pp_print_string fmt (Analytic.eval_name e))

let eval_arg =
  Arg.(
    value
    & opt (some eval_conv) None
    & info [ "eval" ] ~docv:"EVAL"
        ~doc:
          "Sweep-cell evaluator: $(b,analytic) (closed-form expected makespan, no \
           sampling), $(b,mc) (10k-trial Monte-Carlo), or $(b,auto) (analytic exactly \
           when the failure model is exponential and no storage/contention knob is \
           live — always the case for sweep cells, which model neither). Omitting the \
           flag keeps the historic $(b,--method) estimator and its bitwise-identical \
           output.")

let trials_arg =
  Arg.(value & opt int 1000 & info [ "trials" ] ~docv:"T" ~doc:"Simulation trials.")

let dax_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "dax" ] ~docv:"FILE"
        ~doc:"Load the workflow from a Pegasus DAX file instead of generating one.")

let positive_float_conv =
  let parse s =
    match float_of_string_opt s with
    | Some v when v > 0. -> Ok v
    | Some _ -> Error (`Msg "expected a positive number of seconds")
    | None -> Error (`Msg (Printf.sprintf "invalid number %S" s))
  in
  Arg.conv (parse, Format.pp_print_float)

let deadline_arg =
  Arg.(
    value
    & opt (some positive_float_conv) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget: Monte-Carlo sampling is cut off at the samples completed \
           when the budget expires instead of running to the full trial count.")

let jobs_arg =
  let parse s =
    match int_of_string_opt s with
    | Some v when v >= 1 -> Ok v
    | Some 0 -> Ok (Ckpt_parallel.Pool.available_jobs ())
    | Some _ -> Error (`Msg "expected a non-negative worker count")
    | None -> Error (`Msg (Printf.sprintf "invalid worker count %S" s))
  in
  Arg.(
    value
    & opt (conv (parse, Format.pp_print_int)) 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for Monte-Carlo sampling, simulation trials and sweep cells. \
           Results are bitwise independent of $(docv); 0 means one worker per available \
           core. Default 1 (fully sequential).")

(* --- storage fault-model flags (shared by simulate / degrade / storm) --- *)

let nonneg_float_conv what =
  let parse s =
    match float_of_string_opt s with
    | Some v when v >= 0. -> Ok v
    | Some _ -> Error (`Msg (Printf.sprintf "expected a non-negative %s" what))
    | None -> Error (`Msg (Printf.sprintf "invalid number %S" s))
  in
  Arg.conv (parse, Format.pp_print_float)

let replicas_arg =
  Arg.(
    value
    & opt int 1
    & info [ "replicas" ] ~docv:"K"
        ~doc:
          "Checkpoint replication factor: every commit writes $(docv) independent copies \
           (the planner prices it at K*C in the placement DP) and a recovery read \
           succeeds while any copy is still valid.")

let storage_lambda_arg =
  Arg.(
    value
    & opt (nonneg_float_conv "rate") 0.
    & info [ "storage-lambda" ] ~docv:"RATE"
        ~doc:
          "Latent-corruption rate of each stored replica per second on disk (0 = stable \
           storage never rots).")

let corrupt_prob_arg =
  Arg.(
    value
    & opt (nonneg_float_conv "probability") 0.
    & info [ "corrupt-prob" ] ~docv:"P"
        ~doc:
          "Probability that a replica is latently corrupt from the moment it is \
           committed, revealed only by a recovery read.")

let commit_fail_prob_arg =
  Arg.(
    value
    & opt (nonneg_float_conv "probability") 0.
    & info [ "commit-fail-prob" ] ~docv:"P"
        ~doc:
          "Probability that a checkpoint commit fails detectably; failed commits are \
           retried under the default backoff policy and an exhausted cycle re-executes \
           the producing segment.")

let outage_rate_arg =
  Arg.(
    value
    & opt (nonneg_float_conv "rate") 0.
    & info [ "outage-rate" ] ~docv:"RATE"
        ~doc:"Storage outage starts per second (0 = always reachable).")

let outage_mean_arg =
  Arg.(
    value
    & opt (nonneg_float_conv "duration") 0.
    & info [ "outage-mean" ] ~docv:"SECONDS" ~doc:"Mean duration of one storage outage.")

(* One shared spec for the storage fault model: [storage_base_term]
   carries the channels every storage-aware command exposes the same
   way; [storage_term] adds the per-commit corruption probability and
   replication factor for the commands that take them as single values
   (storm sweeps those two itself, with repeatable flags). *)
let storage_base_term =
  let make commit_fail_prob storage_lambda outage_rate outage_mean =
    {
      Storage.default with
      Storage.commit_fail_prob;
      storage_lambda;
      outage_rate;
      outage_mean;
    }
  in
  Term.(
    const make $ commit_fail_prob_arg $ storage_lambda_arg $ outage_rate_arg
    $ outage_mean_arg)

let storage_term =
  let make base corrupt_prob replicas = { base with Storage.corrupt_prob; replicas } in
  Term.(const make $ storage_base_term $ corrupt_prob_arg $ replicas_arg)

let check_storage cfg =
  try Storage.validate cfg
  with Invalid_argument message -> die (Rerror.Io { path = "--storage flags"; message })

(* --- checkpoint-store flags (the Ckpt_storage.Store layer; shared by
   simulate / degrade / storm / cloud, accepted-but-planning-only on
   sweep) --- *)

type store_flags = {
  sf_backend : [ `Memory | `Disk | `Replicated | `Remote ];
  sf_path : string option;
  sf_policy : Store.policy;
  sf_commit_latency : float;
  sf_read_latency : float;
  sf_fail_after : int option;
}

let store_backend_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "memory" -> Ok `Memory
    | "disk" -> Ok `Disk
    | "replicated" -> Ok `Replicated
    | "remote" -> Ok `Remote
    | _ ->
        Error
          (`Msg (Printf.sprintf "unknown store backend %S (memory|disk|replicated|remote)" s))
  in
  let print fmt b =
    Format.pp_print_string fmt
      (match b with
      | `Memory -> "memory"
      | `Disk -> "disk"
      | `Replicated -> "replicated"
      | `Remote -> "remote")
  in
  Arg.conv (parse, print)

let store_backend_arg =
  Arg.(
    value
    & opt store_backend_conv `Memory
    & info [ "store" ] ~docv:"BACKEND"
        ~doc:
          "Checkpoint-store backend: $(b,memory) (in-process, the bitwise-identical \
           default), $(b,disk) (crash-consistent journal of committed recovery lines at \
           $(b,--store-path), fingerprint-validated on resume), $(b,replicated) (the \
           store owns the replica count from $(b,--replicas), priced k*C by the \
           planner), or $(b,remote) (fixed $(b,--store-latency)/$(b,--store-read-latency) \
           charged per durable commit / recovery read).")

let store_path_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store-path" ] ~docv:"FILE"
        ~doc:
          "Store file of the $(b,disk) backend: every durable commit is appended with an \
           atomic rename, so a fail-stop error mid-commit never leaves a readable \
           partial, and a rerun resumes only records whose (schema, DAG hash, segment, \
           CRC) fingerprint validates.")

let store_policy_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Store.parse_policy s) in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Store.policy_name p))

let store_policy_arg =
  Arg.(
    value
    & opt store_policy_conv Store.Every_segment
    & info [ "store-policy" ] ~docv:"POLICY"
        ~doc:
          "Durability policy: $(b,every-segment) (every commit durable — the paper's \
           model, default), $(b,every-K) (only each K-th commit per trial durable, e.g. \
           every-3), or $(b,on-interrupt) (only grace-window rescue commits durable). \
           Policies never change simulated timing, only what survives a recovery line.")

let store_commit_latency_arg =
  Arg.(
    value
    & opt (nonneg_float_conv "latency") 0.
    & info [ "store-latency" ] ~docv:"SECONDS"
        ~doc:"Simulated latency added to every durable commit by the remote backend.")

let store_read_latency_arg =
  Arg.(
    value
    & opt (nonneg_float_conv "latency") 0.
    & info [ "store-read-latency" ] ~docv:"SECONDS"
        ~doc:"Simulated latency added to every recovery read by the remote backend.")

let store_fail_after_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "store-fail-after" ] ~docv:"N"
        ~doc:
          "Store-level fault injection (testing aid): crash with a simulated fail-stop \
           error at the ($(docv)+1)-th store operation (commit, read, invalidate or \
           physical store write).")

let store_flags_term =
  let make sf_backend sf_path sf_policy sf_commit_latency sf_read_latency sf_fail_after =
    { sf_backend; sf_path; sf_policy; sf_commit_latency; sf_read_latency; sf_fail_after }
  in
  Term.(
    const make $ store_backend_arg $ store_path_arg $ store_policy_arg
    $ store_commit_latency_arg $ store_read_latency_arg $ store_fail_after_arg)

(* resolve the flags against a command's capabilities: the disk file is
   a single-domain plan-fingerprinted journal, so only the commands
   that run one plan set per invocation (simulate, storm) accept it;
   storm sweeps --replicas itself so a replicated store would fight
   the sweep *)
let store_config ~cmd ?(allow_disk = false) ?(allow_replicated = true) flags
    (faults : Storage.config) =
  let bad message = die (Rerror.Io { path = "--store"; message }) in
  let backend =
    match flags.sf_backend with
    | `Memory -> Store.Memory
    | `Disk ->
        if not allow_disk then
          bad
            (Printf.sprintf
               "the disk backend is not supported by %s (use memory, replicated or remote)"
               cmd)
        else (
          match flags.sf_path with
          | Some path -> Store.Disk { path }
          | None ->
              die
                (Rerror.Io
                   { path = "--store-path"; message = "the disk backend needs --store-path FILE" }))
    | `Replicated ->
        if not allow_replicated then
          bad (Printf.sprintf "%s sweeps --replicas itself; use memory, disk or remote" cmd)
        else Store.Replicated { k = faults.Storage.replicas }
    | `Remote ->
        Store.Remote
          {
            commit_latency = flags.sf_commit_latency;
            read_latency = flags.sf_read_latency;
          }
  in
  let cfg = { Store.backend; policy = flags.sf_policy; faults } in
  (try Store.validate cfg
   with Invalid_argument message -> die (Rerror.Io { path = "--store flags"; message }));
  cfg

let store_faulty flags =
  match flags.sf_fail_after with None -> Faulty.never () | Some k -> Faulty.after k

(* open the disk store file, validating its header fingerprint against
   the plans this run will execute; load-time notices mirror the cell
   journal's recovered-tail note and add the fingerprint-rejected
   record count *)
let open_store_persist ~faulty cfg plans =
  match cfg.Store.backend with
  | Store.Disk { path } -> (
      let fingerprint = Store.fingerprint (List.map Runner.plan_signature (plans ())) in
      match
        Store.open_persist
          ~inject:(fun () -> Faulty.inject faulty "store persist write")
          ~path ~fingerprint ()
      with
      | Ok p ->
          if Store.persist_torn p then
            Printf.eprintf
              "ckptwf: store %s: dropped a truncated trailing record (recovered)\n%!" path;
          if Store.persist_rejected p > 0 then
            Printf.eprintf
              "ckptwf: store %s: %d record(s) rejected by fingerprint validation (their \
               segments will re-commit)\n\
               %!"
              path (Store.persist_rejected p);
          if Store.persist_loaded p > 0 then
            Printf.eprintf "ckptwf: store %s: %d committed record(s) loaded\n%!" path
              (Store.persist_loaded p);
          Some p
      | Error e -> Rerror.raise_ e)
  | _ -> None

(* end-of-run disk-store accounting on stderr: how much of the run was
   resumed from disk versus freshly committed, and how many records
   were rejected by fingerprint validation along the way *)
let store_persist_summary p =
  Printf.eprintf
    "ckptwf: store %s: %d commit(s) resumed from disk, %d appended, %d rejected by \
     fingerprint\n\
     %!"
    (Store.persist_path p) (Store.persist_resumed p) (Store.persist_appended p)
    (Store.persist_rejected p)

(* aggregated per-trial store counters on stderr (degrade / storm /
   simulate when the store is live) *)
let store_totals_notice (s : Store.stats) =
  Printf.eprintf
    "ckptwf: store: %d commit(s) (%d skipped, %d resumed), %d retr%s, %d rejected \
     read(s), %d corrupt read(s), %d eviction(s)\n\
     %!"
    s.Store.commits s.Store.skipped s.Store.resumed s.Store.commit_retries
    (if s.Store.commit_retries = 1 then "y" else "ies")
    s.Store.rejected_reads s.Store.corrupt_reads s.Store.evictions

(* whether this store config leaves the historic output byte-identical:
   the gate for printing any store-specific extras *)
let store_is_default (c : Store.config) =
  c.Store.backend = Store.Memory && c.Store.policy = Store.Every_segment

(* journal-cell key suffix for the store knobs; empty for the default
   backend/policy so pre-existing journals keep resuming *)
let store_part (c : Store.config) =
  if store_is_default c then ""
  else
    Printf.sprintf "|sb=%s|sp=%s"
      (match c.Store.backend with
      | Store.Memory -> "memory"
      | Store.Disk { path } -> "disk:" ^ path
      | Store.Replicated { k } -> Printf.sprintf "replicated:%d" k
      | Store.Remote { commit_latency; read_latency } ->
          Printf.sprintf "remote:%.17g:%.17g" commit_latency read_latency)
      (Store.policy_name c.Store.policy)

(* --- journal / resume / fault-injection flags (shared by the sweeping
   commands: sweep, degrade, storm, cloud) --- *)

let journal_path_arg noun =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          (Printf.sprintf
             "Journal completed cells to $(docv) (CRC-guarded, atomically updated) so a \
              crashed %s can be resumed with $(b,--resume)."
             noun))

let resume_arg =
  Arg.(
    value
    & flag
    & info [ "resume" ]
        ~doc:
          "Resume from the journal: cells already recorded are replayed verbatim instead \
           of recomputed, so the output matches an uninterrupted run exactly.")

let fail_after_arg what =
  Arg.(
    value
    & opt (some int) None
    & info [ "fail-after" ] ~docv:"K"
        ~doc:
          (Printf.sprintf
             "Fault injection (testing aid): simulate a fail-stop error by crashing before \
              computing the ($(docv)+1)-th non-journaled %s."
             what))

(* one-line notice when a resumed journal dropped a torn trailing line *)
let tail_notice journal =
  Option.iter
    (fun j ->
      if Journal.recovered_tail j then
        Printf.eprintf "ckptwf: journal %s: dropped a truncated trailing entry (recovered)\n%!"
          (Journal.path j))
    journal

(* validate the --resume/--journal combination, open the journal
   (fresh unless resuming) and report a recovered torn tail *)
let open_journal ~resume journal =
  if resume && journal = None then
    die
      (Rerror.Io
         { path = "--resume"; message = "resuming requires --journal FILE to resume from" });
  let journal =
    match journal with
    | None -> None
    | Some path -> (
        match Journal.open_ ~fresh:(not resume) path with
        | Ok j -> Some j
        | Error e -> Rerror.raise_ e)
  in
  tail_notice journal;
  journal

(* journal appends are retried under the default backoff policy: a
   transient filesystem hiccup must not lose a computed cell *)
let journal_append j ~key ~value =
  match Retry.with_retries (fun ~attempt:_ -> Journal.append j ~key ~value) with
  | Ok () -> ()
  | Error e -> Rerror.raise_ e

(* the workflow under study: a DAX file when given, else synthetic;
   always validated before any scheduling touches it *)
let source dax workflow tasks seed =
  let dag =
    match dax with
    | Some path -> (
        match Ckpt_dax.Dax.of_file path with Ok d -> d | Error e -> Rerror.raise_ e)
    | None -> Spec.generate workflow ~seed ~tasks ()
  in
  (match Dag.validate dag with
  | Ok () -> ()
  | Error vs ->
      Rerror.raise_
        (Rerror.Invalid_dag
           { name = Dag.name dag; violations = List.map Dag.violation_to_string vs }));
  dag

(* --- generate --- *)

let generate_run dax workflow tasks seed dot =
  protect @@ fun () ->
  let dag = source dax workflow tasks seed in
  if dot then print_string (Dag.to_dot dag)
  else begin
    Format.printf "%a@." Dag.pp_stats dag;
    (match Recognize.of_dag dag with
    | Ok _ -> Format.printf "strict M-SPG: yes@."
    | Error _ -> (
        match Recognize.of_dag_completed dag with
        | Ok (_, dummies) ->
            Format.printf "strict M-SPG: no (completable with %d dummy edges)@." dummies
        | Error msg -> Format.printf "strict M-SPG: no (%s)@." msg));
    Format.printf "%a@." Ckpt_dag.Analysis.pp_profile (Ckpt_dag.Analysis.profile dag);
    Format.printf "task types:@.";
    List.iter
      (fun (name, count, weight) ->
        Format.printf "  %-20s x%-5d total %10.1f s@." name count weight)
      (Ckpt_dag.Analysis.by_task_type dag)
  end

let generate_cmd =
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Print the workflow in Graphviz dot format.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic Pegasus-like workflow and describe it.")
    Term.(const generate_run $ dax_arg $ workflow_arg $ tasks_arg $ seed_arg $ dot)

(* --- schedule --- *)

let schedule_run dax workflow tasks seed processors pfail ccr verbose =
  protect @@ fun () ->
  let dag = source dax workflow tasks seed in
  let setup = Pipeline.prepare ~dag ~processors ~pfail ~ccr () in
  let schedule = setup.Pipeline.schedule in
  Format.printf "%d superchains on %d processors (%d dummy edges added)@."
    (Array.length schedule.Schedule.superchains)
    processors setup.Pipeline.dummy_edges;
  let plan = Pipeline.plan setup Strategy.Ckpt_some in
  let positions = Strategy.checkpoint_positions plan in
  Array.iter
    (fun (sc : Superchain.t) ->
      let ckpts =
        match List.assoc_opt sc.Superchain.id positions with Some l -> l | None -> []
      in
      Format.printf "superchain %d on p%d: %d tasks, %d checkpoints@." sc.Superchain.id
        sc.Superchain.processor (Superchain.n_tasks sc) (List.length ckpts);
      if verbose then begin
        Format.printf "  order:";
        Array.iteri
          (fun k t ->
            let name = (Dag.task schedule.Schedule.dag t).Ckpt_dag.Task.name in
            let mark = if List.mem k ckpts then "*" else "" in
            Format.printf " %s#%d%s" name t mark)
          sc.Superchain.order;
        Format.printf "@."
      end)
    schedule.Schedule.superchains;
  Format.printf "total checkpoints: CKPTSOME %d vs CKPTALL %d@."
    plan.Strategy.checkpoint_count (Dag.n_tasks dag)

let schedule_cmd =
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print task orders.") in
  Cmd.v
    (Cmd.info "schedule"
       ~doc:"Schedule a workflow (Algorithm 1) and place checkpoints (Algorithm 2).")
    Term.(
      const schedule_run $ dax_arg $ workflow_arg $ tasks_arg $ seed_arg $ processors_arg
      $ pfail_arg $ ccr_arg $ verbose)

(* --- evaluate --- *)

let evaluate_run dax workflow tasks seed processors pfail ccr method_ =
  protect @@ fun () ->
  let dag = source dax workflow tasks seed in
  let setup = Pipeline.prepare ~dag ~processors ~pfail ~ccr () in
  let cmp = Pipeline.compare_strategies ~method_ setup in
  Format.printf "workflow=%s n=%d p=%d pfail=%g ccr=%g method=%s@." (Dag.name dag)
    (Dag.n_tasks dag) processors pfail ccr (Evaluator.name method_);
  Format.printf "  EM(CKPTSOME) = %.2f s  (%d checkpoints)@." cmp.Pipeline.em_some
    cmp.Pipeline.ckpts_some;
  Format.printf "  EM(CKPTALL)  = %.2f s  (%d checkpoints, relative %.4f)@."
    cmp.Pipeline.em_all cmp.Pipeline.ckpts_all cmp.Pipeline.rel_all;
  Format.printf "  EM(CKPTNONE) = %.2f s  (relative %.4f)@." cmp.Pipeline.em_none
    cmp.Pipeline.rel_none

let evaluate_cmd =
  Cmd.v
    (Cmd.info "evaluate" ~doc:"Expected makespans of CKPTSOME / CKPTALL / CKPTNONE.")
    Term.(
      const evaluate_run $ dax_arg $ workflow_arg $ tasks_arg $ seed_arg $ processors_arg
      $ pfail_arg $ ccr_arg $ method_arg)

(* --- simulate --- *)

let simulate_run dax workflow tasks seed processors pfail ccr trials deadline jobs storage
    sflags =
  protect @@ fun () ->
  check_storage storage;
  let store_cfg = store_config ~cmd:"simulate" ~allow_disk:true sflags storage in
  let sfaulty = store_faulty sflags in
  let dag = source dax workflow tasks seed in
  let setup = Pipeline.prepare ~dag ~processors ~pfail ~ccr () in
  let deadline = Deadline.of_seconds deadline in
  (* the store path is exercised whenever the store could behave
     differently from perfectly-reliable memory, or when the fault
     harness wants to crash inside it *)
  let store_on = (not (Store.passthrough store_cfg)) || sflags.sf_fail_after <> None in
  if
    (match store_cfg.Store.backend with Store.Disk _ -> true | _ -> false) && jobs <> 1
  then
    die
      (Rerror.Io
         { path = "--store-path"; message = "the disk store file is single-domain; use --jobs 1" });
  Format.printf "workflow=%s n=%d p=%d pfail=%g ccr=%g trials=%d@." (Dag.name dag)
    (Dag.n_tasks dag) processors pfail ccr trials;
  let plans =
    List.map
      (fun kind -> (kind, Pipeline.plan ~replicas:(Store.plan_replicas store_cfg) setup kind))
      [ Strategy.Ckpt_some; Strategy.Ckpt_all; Strategy.Ckpt_none ]
  in
  (* the disk store's header fingerprints every plan this run commits
     under — a store written for a different workflow or build refuses
     to resume (exit 3) instead of replaying foreign checkpoints *)
  let persist =
    open_store_persist ~faulty:sfaulty store_cfg (fun () ->
        List.filter_map
          (fun (kind, plan) -> if kind = Strategy.Ckpt_none then None else Some plan)
          plans)
  in
  List.iter
    (fun (kind, plan) ->
      let est = Strategy.expected_makespan plan in
      let stats = Runner.simulate ~trials ~deadline ~jobs plan in
      Format.printf "  %-10s estimate %10.2f | simulated %10.2f +- %.2f (min %.2f max %.2f)@."
        (Strategy.kind_name kind) est (Stats.mean stats) (Stats.ci95_halfwidth stats)
        (Stats.min stats) (Stats.max stats);
      if Stats.count stats < trials then
        Format.printf "  %-10s deadline hit: %d/%d trials completed@."
          (Strategy.kind_name kind) (Stats.count stats) trials;
      if store_on && kind <> Strategy.Ckpt_none then begin
        let sample =
          Runner.sample_storage ~trials ~jobs ~inject:(Faulty.inject sfaulty) ?persist
            ~scope:(Strategy.kind_name kind) ~store:store_cfg plan
        in
        let n = float_of_int (Array.length sample) in
        let mean f = Array.fold_left (fun acc t -> acc +. f t) 0. sample /. n in
        Format.printf
          "  %-10s unreliable storage: EM %10.2f | commit retries %.2f | corrupt reads \
           %.2f | rollbacks %.2f per trial@."
          (Strategy.kind_name kind)
          (mean (fun t -> t.Runner.makespan))
          (mean (fun t -> float_of_int t.Runner.commit_retries))
          (mean (fun t -> float_of_int t.Runner.corrupt_reads))
          (mean (fun t -> float_of_int t.Runner.rollbacks));
        (* store-level counters only appear for a non-default
           backend/policy, so the historic flag space stays
           byte-identical *)
        if not (store_is_default store_cfg) then begin
          let tot =
            Array.fold_left (fun acc t -> Store.add acc t.Runner.store) Store.zero sample
          in
          (* [resumed] is deliberately left to the stderr summary: it
             depends on what an earlier run left in the store file, and
             stdout must be byte-identical across crash/resume *)
          Format.printf
            "  %-10s store [%s/%s]: %d commits (%d skipped) | %d rejected reads | %d \
             evictions@."
            (Strategy.kind_name kind)
            (Store.backend_name store_cfg.Store.backend)
            (Store.policy_name store_cfg.Store.policy)
            tot.Store.commits tot.Store.skipped tot.Store.rejected_reads
            tot.Store.evictions
        end
      end)
    plans;
  Option.iter store_persist_summary persist

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate" ~doc:"Failure-injected simulation versus the analytical estimate.")
    Term.(
      const simulate_run $ dax_arg $ workflow_arg $ tasks_arg $ seed_arg $ processors_arg
      $ pfail_arg $ ccr_arg $ trials_arg $ deadline_arg $ jobs_arg $ storage_term
      $ store_flags_term)

(* --- sweep (the figure series) --- *)

let default_ccrs workflow =
  let logspace lo hi n =
    List.init n (fun i ->
        let t = float_of_int i /. float_of_int (n - 1) in
        10. ** (log10 lo +. (t *. (log10 hi -. log10 lo))))
  in
  match workflow with
  | Spec.Genome -> logspace 1e-4 1e-2 9
  | Spec.Montage | Spec.Ligo -> logspace 1e-3 1. 10
  | Spec.Cybershake | Spec.Sipht -> logspace 1e-3 1. 10

(* One sweep cell, rendered to the exact output line. The line is what
   gets journaled, so a resumed sweep replays it verbatim. *)
let sweep_row ~csv ~dag ~processors ~pfail ~method_ ~eval ccr =
  let setup = Pipeline.prepare ~dag ~processors ~pfail ~ccr () in
  let cmp =
    match eval with
    | None -> Pipeline.compare_strategies ~method_ setup
    | Some e -> (
        (* sweep cells are exponential-model, storage/contention-free
           by construction, so Auto resolves analytic here *)
        match Analytic.resolve e with
        | `Analytic -> Analytic.compare_strategies setup
        | `Mc -> Pipeline.compare_strategies ~method_:Evaluator.default_montecarlo setup)
  in
  if csv then
    Printf.sprintf "%s,%d,%d,%g,%g,%.4f,%.4f,%.4f,%.4f,%.4f,%d" (Dag.name dag)
      (Dag.n_tasks dag) processors pfail ccr cmp.Pipeline.em_some cmp.Pipeline.em_all
      cmp.Pipeline.em_none cmp.Pipeline.rel_all cmp.Pipeline.rel_none
      cmp.Pipeline.ckpts_some
  else
    Printf.sprintf "%-8s %6.4f %10.2f %10.2f %10.2f %8.4f %8.4f %6d" (Dag.name dag) ccr
      cmp.Pipeline.em_some cmp.Pipeline.em_all cmp.Pipeline.em_none cmp.Pipeline.rel_all
      cmp.Pipeline.rel_none cmp.Pipeline.ckpts_some

let sweep_cell_key ~csv ~dag ~seed ~processors ~pfail ~method_ ~eval ccr =
  let base =
    Printf.sprintf "sweep|wf=%s|n=%d|seed=%d|p=%d|pfail=%g|m=%s|csv=%b|ccr=%.17g"
      (Dag.name dag) (Dag.n_tasks dag) seed processors pfail (Evaluator.name method_) csv
      ccr
  in
  (* the suffix appears only when --eval is given, so pre-existing
     journals keep resuming and the default key stays byte-identical *)
  match eval with
  | None -> base
  | Some e -> Printf.sprintf "%s|eval=%s" base (Analytic.eval_name e)

let sweep_run dax workflow tasks seed processors pfail method_ eval csv journal resume
    fail_after jobs sflags =
  protect @@ fun () ->
  let dag = source dax workflow tasks seed in
  let faulty = match fail_after with None -> Faulty.never () | Some k -> Faulty.after k in
  let journal = open_journal ~resume journal in
  (* sweep cells are analytic — nothing commits, so the store flags are
     accepted (scripts can share one flag set across subcommands) but
     a non-default choice is called out rather than silently dropped *)
  if
    sflags.sf_backend <> `Memory
    || sflags.sf_policy <> Store.Every_segment
    || sflags.sf_fail_after <> None
  then
    Printf.eprintf
      "ckptwf: sweep evaluates plans analytically and commits no checkpoints; --store \
       flags are ignored\n\
       %!";
  if csv then print_endline "workflow,tasks,processors,pfail,ccr,em_some,em_all,em_none,rel_all,rel_none,ckpts_some"
  else
    Format.printf "%-8s %6s %10s %10s %10s %8s %8s %6s@." "wf" "ccr" "EM(some)" "EM(all)"
      "EM(none)" "relALL" "relNONE" "ckpts";
  let ccrs = Array.of_list (default_ccrs workflow) in
  let n_cells = Array.length ccrs in
  (* journal lookups stay sequential on the caller; only missing cells
     are computed, possibly by several worker domains. Journal appends
     and fault-injection bookkeeping are serialised through one mutex;
     output rows are printed in cell order afterwards, so the bytes on
     stdout do not depend on --jobs. *)
  let stored =
    Array.map
      (fun ccr ->
        let key = sweep_cell_key ~csv ~dag ~seed ~processors ~pfail ~method_ ~eval ccr in
        (key, Option.bind journal (fun j -> Journal.find j key)))
      ccrs
  in
  let mutex = Mutex.create () in
  let locked f =
    Mutex.lock mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f
  in
  let rows =
    Pool.map_shared ~jobs n_cells (fun i ->
        match stored.(i) with
        | _, Some row -> row
        | key, None ->
            locked (fun () -> Faulty.inject faulty "sweep cell");
            let row = sweep_row ~csv ~dag ~processors ~pfail ~method_ ~eval ccrs.(i) in
            Option.iter (fun j -> locked (fun () -> journal_append j ~key ~value:row)) journal;
            row)
  in
  Array.iter print_endline rows;
  let reused =
    Array.fold_left (fun acc (_, s) -> if s = None then acc else acc + 1) 0 stored
  in
  Option.iter
    (fun j ->
      Printf.eprintf "ckptwf: journal %s: %d cell(s) reused, %d computed\n%!"
        (Journal.path j) reused (n_cells - reused))
    journal

let sweep_cmd =
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV rows.") in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "CCR sweep of the relative expected makespans (the series behind Figures 5, 6 and \
          7).")
    Term.(
      const sweep_run $ dax_arg $ workflow_arg $ tasks_arg $ seed_arg $ processors_arg
      $ pfail_arg $ method_arg $ eval_arg $ csv $ journal_path_arg "sweep" $ resume_arg
      $ fail_after_arg "cell" $ jobs_arg $ store_flags_term)

(* --- accuracy (Section VI-B) --- *)

let accuracy_run dax workflow tasks seed processors pfail ccr trials deadline jobs =
  protect @@ fun () ->
  let dag = source dax workflow tasks seed in
  let setup = Pipeline.prepare ~dag ~processors ~pfail ~ccr () in
  let plan = Pipeline.plan setup Strategy.Ckpt_some in
  let deadline = Deadline.of_seconds deadline in
  let ground_truth, mc_count =
    match plan.Strategy.prob_dag with
    | Some pd ->
        let stats =
          Ckpt_eval.Montecarlo.estimate_with_stats ~trials ~seed:1 ~deadline ~jobs pd
        in
        (Stats.mean stats, Stats.count stats)
    | None ->
        ( Strategy.expected_makespan ~method_:(Evaluator.Montecarlo { trials; seed = 1 })
            plan,
          trials )
  in
  if mc_count < trials then
    Format.printf "ground truth (MC, deadline hit at %d/%d trials): %.2f@." mc_count trials
      ground_truth
  else Format.printf "ground truth (MC, %d trials): %.2f@." trials ground_truth;
  List.iter
    (fun m ->
      let t0 = Unix.gettimeofday () in
      let v = Strategy.expected_makespan ~method_:m plan in
      let dt = Unix.gettimeofday () -. t0 in
      Format.printf "  %-10s %10.2f  (error %+.3f%%, %.1f ms)@." (Evaluator.name m) v
        ((v -. ground_truth) /. ground_truth *. 100.)
        (dt *. 1000.))
    Evaluator.all_fast;
  (match Strategy.exact_expected_makespan plan with
  | Some v ->
      Format.printf "  %-10s %10.2f  (error %+.3f%%)@." "exact-sp" v
        ((v -. ground_truth) /. ground_truth *. 100.)
  | None -> ());
  (match plan.Strategy.prob_dag with
  | Some pd ->
      let lo, hi = Ckpt_eval.Bounds.bracket pd in
      Format.printf "  guaranteed bounds: [%.2f, %.2f] (Fulkerson / Kleindorfer)@." lo hi
  | None -> ())

let accuracy_cmd =
  let trials =
    Arg.(value & opt int 300_000 & info [ "trials" ] ~docv:"T" ~doc:"Monte Carlo trials.")
  in
  Cmd.v
    (Cmd.info "accuracy"
       ~doc:"Estimator accuracy versus a large-trial Monte Carlo ground truth (Section VI-B).")
    Term.(
      const accuracy_run $ dax_arg $ workflow_arg $ tasks_arg $ seed_arg $ processors_arg
      $ pfail_arg $ ccr_arg $ trials $ deadline_arg $ jobs_arg)

(* --- gantt --- *)

let strategy_of_string str =
  match String.lowercase_ascii str with
    | "all" | "ckpt-all" -> Ok Strategy.Ckpt_all
    | "some" | "ckpt-some" -> Ok Strategy.Ckpt_some
    | "none" | "ckpt-none" -> Ok Strategy.Ckpt_none
    | "restart" | "ckpt-restart" -> Ok Strategy.Ckpt_restart
    | s -> (
        let prefixed p = String.length s > String.length p && String.sub s 0 (String.length p) = p in
        let suffix p = String.sub s (String.length p) (String.length s - String.length p) in
        if prefixed "every-" then
          match int_of_string_opt (suffix "every-") with
          | Some k when k >= 1 -> Ok (Strategy.Ckpt_every k)
          | _ -> Error (`Msg "bad period")
        else if prefixed "budget-" then
          match int_of_string_opt (suffix "budget-") with
          | Some k when k >= 1 -> Ok (Strategy.Ckpt_budget k)
          | _ -> Error (`Msg "bad budget")
        else if prefixed "hybrid-" then
          match int_of_string_opt (suffix "hybrid-") with
          | Some t when t >= 0 -> Ok (Strategy.Ckpt_hybrid t)
          | _ -> Error (`Msg "bad hybrid threshold")
        else
          Error
            (`Msg
              (Printf.sprintf
                 "unknown strategy %S (all|some|none|restart|every-K|budget-K|hybrid-T)" s)))

let strategy_conv =
  Arg.conv (strategy_of_string, fun fmt k -> Format.pp_print_string fmt (Strategy.kind_name k))

let strategy_arg =
  Arg.(
    value
    & opt strategy_conv Strategy.Ckpt_some
    & info [ "s"; "strategy" ] ~docv:"STRATEGY"
        ~doc:
          "Checkpointing strategy: all, some, none, restart (no intra-superchain \
           checkpoints — re-execute from the last natural boundary), every-K, budget-K \
           or hybrid-T (superchains of at most T tasks restart, longer ones get \
           Algorithm-2 placement).")

let gantt_run dax workflow tasks seed processors pfail ccr strategy output sim_seed =
  protect @@ fun () ->
  let dag = source dax workflow tasks seed in
  let setup = Pipeline.prepare ~dag ~processors ~pfail ~ccr () in
  let plan = Pipeline.plan setup strategy in
  let svg = Ckpt_viz.Gantt.render_plan ~seed:sim_seed plan in
  Ckpt_viz.Gantt.save output svg;
  Format.printf "wrote %s@." output

let gantt_cmd =
  let output =
    Arg.(value & opt string "gantt.svg" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"SVG path.")
  in
  let sim_seed =
    Arg.(value & opt int 11 & info [ "sim-seed" ] ~docv:"SEED" ~doc:"Failure-trace seed.")
  in
  Cmd.v
    (Cmd.info "gantt" ~doc:"Simulate one execution and render it as an SVG Gantt chart.")
    Term.(
      const gantt_run $ dax_arg $ workflow_arg $ tasks_arg $ seed_arg $ processors_arg
      $ pfail_arg $ ccr_arg $ strategy_arg $ output $ sim_seed)

(* --- contention --- *)

let contention_run dax workflow tasks seed processors pfail ccr trials =
  protect @@ fun () ->
  let dag = source dax workflow tasks seed in
  let setup = Pipeline.prepare ~dag ~processors ~pfail ~ccr () in
  Format.printf "workflow=%s n=%d p=%d pfail=%g ccr=%g trials=%d@." (Dag.name dag)
    (Dag.n_tasks dag) processors pfail ccr trials;
  List.iter
    (fun kind ->
      let plan = Pipeline.plan setup kind in
      let nominal = Stats.mean (Runner.simulate ~trials plan) in
      let contended = Stats.mean (Ckpt_sim.Contention.simulate ~trials plan) in
      Format.printf "  %-14s nominal %10.2f | contended %10.2f | penalty %.3fx@."
        (Strategy.kind_name kind) nominal contended (contended /. nominal))
    [ Strategy.Ckpt_some; Strategy.Ckpt_all ]

let contention_cmd =
  Cmd.v
    (Cmd.info "contention"
       ~doc:
         "Simulated makespans with and without stable-storage bandwidth contention \
          (extension).")
    Term.(
      const contention_run $ dax_arg $ workflow_arg $ tasks_arg $ seed_arg $ processors_arg
      $ pfail_arg $ ccr_arg $ trials_arg)

(* --- quantiles --- *)

let quantiles_run dax workflow tasks seed processors pfail ccr strategy trials deadline
    jobs =
  protect @@ fun () ->
  let dag = source dax workflow tasks seed in
  let setup = Pipeline.prepare ~dag ~processors ~pfail ~ccr () in
  let plan = Pipeline.plan setup strategy in
  let qs = [ 0.5; 0.9; 0.99 ] in
  let deadline = Deadline.of_seconds deadline in
  let sample = Runner.sample_makespans ~trials ~deadline ~jobs plan in
  Format.printf "workflow=%s strategy=%s trials=%d@." (Dag.name dag)
    (Strategy.kind_name strategy) trials;
  if Array.length sample < trials then
    Format.printf "  deadline hit: %d/%d trials completed@." (Array.length sample) trials;
  Format.printf "  simulated: mean %.2f" (Ckpt_prob.Stats.mean_of_array sample);
  List.iter
    (fun q ->
      Format.printf "  p%g %.2f" (q *. 100.) (Ckpt_prob.Stats.quantile_of_array sample q))
    qs;
  Format.printf "@.";
  (match Strategy.makespan_distribution plan with
  | None -> Format.printf "  analytic distribution unavailable for this plan@."
  | Some dist ->
      Format.printf "  analytic:  mean %.2f" (Ckpt_prob.Dist.mean dist);
      List.iter
        (fun q -> Format.printf "  p%g %.2f" (q *. 100.) (Ckpt_prob.Dist.quantile dist q))
        qs;
      Format.printf "@.";
      let ks = Ckpt_prob.Stats.ks_distance sample ~cdf:(Ckpt_prob.Dist.cdf dist) in
      Format.printf "  Kolmogorov-Smirnov distance (simulated vs analytic): %.4f@." ks)

let quantiles_cmd =
  Cmd.v
    (Cmd.info "quantiles"
       ~doc:
         "Makespan distribution: simulated quantiles vs the exact first-order analytic \
          distribution (extension).")
    Term.(
      const quantiles_run $ dax_arg $ workflow_arg $ tasks_arg $ seed_arg $ processors_arg
      $ pfail_arg $ ccr_arg $ strategy_arg $ trials_arg $ deadline_arg $ jobs_arg)

(* --- degrade (permanent processor loss) --- *)

module Degrade = Ckpt_sim.Degrade
module Platform = Ckpt_platform.Platform

let default_pdeaths = [ 0.01; 0.05; 0.1; 0.2; 0.5 ]

(* One degraded-mode cell: paired repair-vs-restart samples at one
   death probability. The rendered line is what gets journaled, so a
   resumed sweep replays it verbatim. *)
let degrade_row ~csv ~dag ~processors ~kind ~max_losses ~trials ~seed ~jobs ~cache_totals
    ~store_totals ~store_cfg (plan : Strategy.plan) pdeath =
  let lambda_death =
    Platform.lambda_of_pfail ~pfail:pdeath ~mean_weight:plan.Strategy.wpar
  in
  let config = { Degrade.lambda_death; max_losses; kind; store = store_cfg } in
  (* one replan cache per cell, shared by the paired repair/restart
     samples; results are identical with or without it *)
  let prepared = Degrade.prepare plan in
  let summary mode =
    Degrade.summarize (Degrade.sample_prepared ~trials ~seed ~jobs ~mode config prepared)
  in
  let repair = summary Degrade.Repair in
  let restart = summary Degrade.Restart in
  (let hits, misses = Degrade.cache_stats prepared in
   let th, tm = !cache_totals in
   cache_totals := (th + hits, tm + misses));
  store_totals :=
    Store.add !store_totals
      (Store.add repair.Degrade.store_totals restart.Degrade.store_totals);
  let gain = restart.Degrade.mean_makespan /. repair.Degrade.mean_makespan in
  (* the storage columns appear only when the store is live, so the
     default configuration's rows are bitwise the pre-storage ones *)
  let storage_cols =
    if Store.passthrough store_cfg then ""
    else
      Printf.sprintf ",%.4f,%.4f" repair.Degrade.mean_rollbacks
        repair.Degrade.mean_invalidated
  in
  if csv then
    Printf.sprintf "%s,%d,%d,%s,%d,%d,%g,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%d,%d%s"
      (Dag.name dag) (Dag.n_tasks dag) processors (Strategy.kind_name kind) max_losses
      trials pdeath repair.Degrade.mean_makespan restart.Degrade.mean_makespan gain
      repair.Degrade.mean_losses repair.Degrade.mean_replans repair.Degrade.mean_restarts
      repair.Degrade.stranded restart.Degrade.stranded storage_cols
  else
    Printf.sprintf "%-8s %6.3f %11.2f %11.2f %7.3fx %7.2f %8.2f %9.2f %5d%s" (Dag.name dag)
      pdeath repair.Degrade.mean_makespan restart.Degrade.mean_makespan gain
      repair.Degrade.mean_losses repair.Degrade.mean_replans repair.Degrade.mean_restarts
      repair.Degrade.stranded
      (if storage_cols = "" then ""
       else
         Printf.sprintf " rb %.2f inval %.2f" repair.Degrade.mean_rollbacks
           repair.Degrade.mean_invalidated)

let storage_key (c : Storage.config) =
  if Storage.reliable c && c.Storage.replicas = 1 then ""
  else
    Printf.sprintf "|cf=%.17g|cp=%.17g|sl=%.17g|or=%.17g|om=%.17g|k=%d"
      c.Storage.commit_fail_prob c.Storage.corrupt_prob c.Storage.storage_lambda
      c.Storage.outage_rate c.Storage.outage_mean c.Storage.replicas

(* a store config's journal-key fragment: the fault fields exactly as
   before (pre-existing journals keep resuming) plus the backend and
   policy only when they leave the default *)
let store_key (c : Store.config) = storage_key c.Store.faults ^ store_part c

let degrade_cell_key ~csv ~dag ~seed ~processors ~pfail ~ccr ~kind ~max_losses ~trials
    ~store_cfg pdeath =
  Printf.sprintf
    "degrade|wf=%s|n=%d|seed=%d|p=%d|pfail=%g|ccr=%g|s=%s|losses=%d|trials=%d|csv=%b%s|pdeath=%.17g"
    (Dag.name dag) (Dag.n_tasks dag) seed processors pfail ccr (Strategy.kind_name kind)
    max_losses trials csv (store_key store_cfg) pdeath

let degrade_run dax workflow tasks seed processors pfail ccr strategy pdeaths max_losses
    trials csv journal resume fail_after jobs storage sflags =
  protect @@ fun () ->
  check_storage storage;
  let store_cfg = store_config ~cmd:"degrade" sflags storage in
  if sflags.sf_fail_after <> None then
    die
      (Rerror.Io
         {
           path = "--store-fail-after";
           message = "store fault injection is supported by simulate and storm";
         });
  if strategy = Strategy.Ckpt_none then
    die
      (Rerror.Io
         {
           path = "--strategy";
           message = "CKPTNONE saves nothing a survivor could reuse; pick a checkpointing strategy";
         });
  let dag = source dax workflow tasks seed in
  let faulty = match fail_after with None -> Faulty.never () | Some k -> Faulty.after k in
  let journal = open_journal ~resume journal in
  if csv then
    print_endline
      ("workflow,tasks,processors,strategy,losses,trials,pdeath,em_repair,em_restart,gain,mean_losses,mean_replans,mean_restarts,stranded_repair,stranded_restart"
      ^ if Store.passthrough store_cfg then "" else ",mean_rollbacks,mean_invalidated")
  else
    Format.printf "%-8s %6s %11s %11s %8s %7s %8s %9s %5s@." "wf" "pdeath" "EM(repair)"
      "EM(restart)" "gain" "losses" "replans" "restarts" "strnd";
  let pdeaths =
    Array.of_list (match pdeaths with [] -> default_pdeaths | ps -> ps)
  in
  (* the schedule and checkpoint plan do not depend on pdeath: build
     them once; only missing cells are computed. Cells run in sequence
     — the parallelism lives inside Degrade.sample, whose result is
     bitwise independent of --jobs, so the bytes on stdout are too. *)
  let plan =
    lazy
      (Pipeline.plan ~replicas:(Store.plan_replicas store_cfg)
         (Pipeline.prepare ~dag ~processors ~pfail ~ccr ())
         strategy)
  in
  let cache_totals = ref (0, 0) in
  let store_totals = ref Store.zero in
  let rows =
    Array.map
      (fun pdeath ->
        let key =
          degrade_cell_key ~csv ~dag ~seed ~processors ~pfail ~ccr ~kind:strategy
            ~max_losses ~trials ~store_cfg pdeath
        in
        match Option.bind journal (fun j -> Journal.find j key) with
        | Some row -> (row, true)
        | None ->
            Faulty.inject faulty "degrade cell";
            let row =
              degrade_row ~csv ~dag ~processors ~kind:strategy ~max_losses ~trials ~seed
                ~jobs ~cache_totals ~store_totals ~store_cfg (Lazy.force plan) pdeath
            in
            Option.iter (fun j -> journal_append j ~key ~value:row) journal;
            (row, false))
      pdeaths
  in
  Array.iter (fun (row, _) -> print_endline row) rows;
  if not (Store.passthrough store_cfg) then store_totals_notice !store_totals;
  (let hits, misses = !cache_totals in
   if hits + misses > 0 then
     Printf.eprintf "ckptwf: replan cache: %d hit(s), %d miss(es) (%.0f%% hit rate)\n%!"
       hits misses
       (100. *. float_of_int hits /. float_of_int (hits + misses)));
  Option.iter
    (fun j ->
      let reused = Array.fold_left (fun acc (_, r) -> if r then acc + 1 else acc) 0 rows in
      Printf.eprintf "ckptwf: journal %s: %d cell(s) reused, %d computed\n%!"
        (Journal.path j) reused (Array.length rows - reused))
    journal

let degrade_cmd =
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV rows.") in
  let pdeaths =
    Arg.(
      value
      & opt_all float []
      & info [ "pdeath" ] ~docv:"P"
          ~doc:
            "Probability that a processor is permanently lost within the failure-free \
             parallel time (sets the death rate; repeatable). Default sweep: 0.01 0.05 \
             0.1 0.2 0.5.")
  in
  let max_losses =
    Arg.(
      value
      & opt int 1
      & info [ "losses" ] ~docv:"K"
          ~doc:"Permanent losses that can actually strike one execution (the rest censored).")
  in
  let trials =
    Arg.(value & opt int 200 & info [ "trials" ] ~docv:"T" ~doc:"Degraded-mode trials per cell.")
  in
  Cmd.v
    (Cmd.info "degrade"
       ~doc:
         "Survive permanent processor loss: expected makespans of online schedule repair \
          versus restart-from-scratch over a sweep of death probabilities (extension).")
    Term.(
      const degrade_run $ dax_arg $ workflow_arg $ tasks_arg $ seed_arg $ processors_arg
      $ pfail_arg $ ccr_arg $ strategy_arg $ pdeaths $ max_losses $ trials $ csv
      $ journal_path_arg "degrade sweep" $ resume_arg $ fail_after_arg "cell" $ jobs_arg
      $ storage_term $ store_flags_term)

(* --- storm (unreliable stable storage: replication crossover) --- *)

let storm_cell_key ~dag ~seed ~processors ~pfail ~ccr ~kind ~trials ~storage_lambda
    ~commit_fail_prob ~outage_rate ~outage_mean ~replicas corrupt_prob =
  Printf.sprintf
    "storm|wf=%s|n=%d|seed=%d|p=%d|pfail=%g|ccr=%g|s=%s|trials=%d|sl=%.17g|cf=%.17g|or=%.17g|om=%.17g|k=%d|cp=%.17g"
    (Dag.name dag) (Dag.n_tasks dag) seed processors pfail ccr (Strategy.kind_name kind)
    trials storage_lambda commit_fail_prob outage_rate outage_mean replicas corrupt_prob

let storm_header =
  "workflow,tasks,processors,strategy,replicas,storage_lambda,corrupt_prob,commit_fail_prob,trials,em,mean_commit_retries,mean_corrupt_reads,mean_rollbacks,ckpts"

(* expected makespan of a rendered storm row (column 10) — works on
   journaled rows too, so the crossover report survives resumes *)
let storm_row_em row =
  match String.split_on_char ',' row with
  | _ :: _ :: _ :: _ :: _ :: _ :: _ :: _ :: _ :: em :: _ -> float_of_string em
  | _ -> invalid_arg ("storm: unparsable row: " ^ row)

let storm_run dax workflow tasks seed processors pfail ccr strategy trials corrupt_probs
    replicas_list base journal resume fail_after jobs sflags =
  protect @@ fun () ->
  if strategy = Strategy.Ckpt_none then
    die
      (Rerror.Io
         { path = "--strategy"; message = "CKPTNONE commits nothing; pick a checkpointing strategy" });
  let storage_lambda = base.Storage.storage_lambda in
  let commit_fail_prob = base.Storage.commit_fail_prob in
  let outage_rate = base.Storage.outage_rate in
  let outage_mean = base.Storage.outage_mean in
  check_storage base;
  let store_base = store_config ~cmd:"storm" ~allow_disk:true ~allow_replicated:false sflags base in
  let sfaulty = store_faulty sflags in
  if
    (match store_base.Store.backend with Store.Disk _ -> true | _ -> false) && jobs <> 1
  then
    die
      (Rerror.Io
         { path = "--store-path"; message = "the disk store file is single-domain; use --jobs 1" });
  let corrupt_probs =
    match corrupt_probs with [] -> [ 0.; 0.02; 0.05; 0.1; 0.2 ] | ps -> ps
  in
  let replicas_list = match replicas_list with [] -> [ 1; 2; 3 ] | ks -> ks in
  List.iter (fun k -> check_storage { base with Storage.replicas = k }) replicas_list;
  List.iter
    (fun cp -> check_storage { base with Storage.corrupt_prob = cp })
    corrupt_probs;
  let dag = source dax workflow tasks seed in
  let faulty = match fail_after with None -> Faulty.never () | Some k -> Faulty.after k in
  let journal = open_journal ~resume journal in
  print_endline storm_header;
  let setup = Pipeline.prepare ~dag ~processors ~pfail ~ccr () in
  (* one plan per replication factor: k enters the placement DP as a
     k*C commit cost, so the checkpoint positions themselves shift *)
  let plans = Hashtbl.create 4 in
  let plan_for k =
    match Hashtbl.find_opt plans k with
    | Some p -> p
    | None ->
        let p = Pipeline.plan ~replicas:k setup strategy in
        Hashtbl.add plans k p;
        p
  in
  let cells =
    List.concat_map (fun k -> List.map (fun cp -> (k, cp)) corrupt_probs) replicas_list
  in
  (* the disk store's header fingerprints every swept plan (one per
     replication factor, in sweep order); a mismatched store refuses
     to resume instead of replaying foreign checkpoints *)
  let persist =
    open_store_persist ~faulty:sfaulty store_base (fun () ->
        List.map plan_for replicas_list)
  in
  (* cells run in sequence — the parallelism lives inside
     Runner.sample_storage, whose result is bitwise independent of
     --jobs, so the bytes on stdout are too *)
  let store_totals = ref Store.zero in
  let rows =
    List.map
      (fun (k, cp) ->
        let key =
          storm_cell_key ~dag ~seed ~processors ~pfail ~ccr ~kind:strategy ~trials
            ~storage_lambda ~commit_fail_prob ~outage_rate ~outage_mean ~replicas:k cp
          ^ store_part store_base
        in
        match Option.bind journal (fun j -> Journal.find j key) with
        | Some row -> ((k, cp), row, true)
        | None ->
            Faulty.inject faulty "storm cell";
            let plan = plan_for k in
            let cfg =
              { store_base with
                Store.faults = { base with Storage.corrupt_prob = cp; replicas = k }
              }
            in
            let sample =
              Runner.sample_storage ~trials ~seed ~jobs ~inject:(Faulty.inject sfaulty)
                ?persist
                ~scope:(Printf.sprintf "k%d,cp%.17g" k cp)
                ~store:cfg plan
            in
            store_totals :=
              Array.fold_left (fun acc t -> Store.add acc t.Runner.store) !store_totals
                sample;
            let n = float_of_int (Array.length sample) in
            let mean f = Array.fold_left (fun acc t -> acc +. f t) 0. sample /. n in
            let row =
              Printf.sprintf "%s,%d,%d,%s,%d,%g,%g,%g,%d,%.4f,%.4f,%.4f,%.4f,%d"
                (Dag.name dag) (Dag.n_tasks dag) processors (Strategy.kind_name strategy)
                k storage_lambda cp commit_fail_prob trials
                (mean (fun t -> t.Runner.makespan))
                (mean (fun t -> float_of_int t.Runner.commit_retries))
                (mean (fun t -> float_of_int t.Runner.corrupt_reads))
                (mean (fun t -> float_of_int t.Runner.rollbacks))
                plan.Strategy.checkpoint_count
            in
            Option.iter (fun j -> journal_append j ~key ~value:row) journal;
            ((k, cp), row, false))
      cells
  in
  List.iter (fun (_, row, _) -> print_endline row) rows;
  (* crossover report: the smallest corruption probability at which a
     k-replicated commit beats the unreplicated baseline in expected
     makespan — replication pays k*C on every commit but saves whole
     rollback cascades on recovery *)
  let em cell =
    List.find_map (fun (c, row, _) -> if c = cell then Some (storm_row_em row) else None) rows
  in
  if List.mem 1 replicas_list then
    List.iter
      (fun k ->
        if k <> 1 then
          match
            List.find_opt
              (fun cp ->
                match (em (k, cp), em (1, cp)) with
                | Some a, Some b -> a < b
                | _ -> false)
              corrupt_probs
          with
          | Some cp ->
              Printf.eprintf
                "ckptwf: storm: replicas=%d first beats replicas=1 at corrupt-prob %g\n%!"
                k cp
          | None ->
              Printf.eprintf
                "ckptwf: storm: replicas=%d never beats replicas=1 in this sweep\n%!" k)
      replicas_list;
  if not (store_is_default store_base) then store_totals_notice !store_totals;
  Option.iter store_persist_summary persist;
  Option.iter
    (fun j ->
      let reused =
        List.fold_left (fun acc (_, _, r) -> if r then acc + 1 else acc) 0 rows
      in
      Printf.eprintf "ckptwf: journal %s: %d cell(s) reused, %d computed\n%!"
        (Journal.path j) reused (List.length rows - reused))
    journal

let storm_cmd =
  let corrupt_probs =
    Arg.(
      value
      & opt_all float []
      & info [ "corrupt-prob" ] ~docv:"P"
          ~doc:
            "Per-replica latent-corruption probability (repeatable; default sweep: 0 0.02 \
             0.05 0.1 0.2).")
  in
  let replicas_list =
    Arg.(
      value
      & opt_all int []
      & info [ "replicas" ] ~docv:"K"
          ~doc:"Replication factor to sweep (repeatable; default: 1 2 3).")
  in
  let trials =
    Arg.(
      value & opt int 300 & info [ "trials" ] ~docv:"T" ~doc:"Monte-Carlo trials per cell.")
  in
  Cmd.v
    (Cmd.info "storm"
       ~doc:
         "Unreliable stable storage: sweep checkpoint replication factor against latent \
          corruption and report the expected-makespan crossover where k-replicated \
          commits start beating unreplicated ones (extension).")
    Term.(
      const storm_run $ dax_arg $ workflow_arg $ tasks_arg $ seed_arg $ processors_arg
      $ pfail_arg $ ccr_arg $ strategy_arg $ trials $ corrupt_probs $ replicas_list
      $ storage_base_term $ journal_path_arg "storm" $ resume_arg $ fail_after_arg "cell"
      $ jobs_arg $ store_flags_term)

(* --- cloud (spot-instance revocation on priced platforms) --- *)

module Cloud = Ckpt_sim.Cloud

let cloud_header =
  "workflow,tasks,processors,strategy,trials,prevoke,grace,spot_fraction,spot_discount,spot_speed,em_ckpt,em_repl,cost_ckpt,cost_repl,lost_ckpt,lost_repl,rescues,rescued_tasks,revocations,replans,stranded_ckpt,stranded_repl"

(* expected work lost by the checkpointing mode (column 15 of a
   rendered cloud row) — parsed for the grace-benefit report, so it
   works on journaled rows too *)
let cloud_row_lost row =
  match String.split_on_char ',' row with
  | _ :: _ :: _ :: _ :: _ :: _ :: _ :: _ :: _ :: _ :: _ :: _ :: _ :: _ :: lost :: _ ->
      float_of_string lost
  | _ -> invalid_arg ("cloud: unparsable row: " ^ row)

let cloud_cell_key ~dag ~seed ~processors ~pfail ~ccr ~kind ~trials ~revocations ~price
    ~spot_discount ~spot_speed ~store_cfg ~prevoke ~grace spot_fraction =
  Printf.sprintf
    "cloud|wf=%s|n=%d|seed=%d|p=%d|pfail=%g|ccr=%g|s=%s|trials=%d|rev=%d|price=%.17g|disc=%.17g|speed=%.17g%s|prevoke=%.17g|grace=%.17g|sf=%.17g"
    (Dag.name dag) (Dag.n_tasks dag) seed processors pfail ccr (Strategy.kind_name kind)
    trials revocations price spot_discount spot_speed (store_key store_cfg) prevoke
    grace spot_fraction

let cloud_run dax workflow tasks seed processors pfail ccr strategy trials prevokes graces
    spot_fractions spot_discount spot_speed price revocations storage sflags journal
    resume fail_after jobs =
  protect @@ fun () ->
  check_storage storage;
  let store_cfg = store_config ~cmd:"cloud" sflags storage in
  if sflags.sf_fail_after <> None then
    die
      (Rerror.Io
         {
           path = "--store-fail-after";
           message = "store fault injection is supported by simulate and storm";
         });
  if strategy = Strategy.Ckpt_none then
    die
      (Rerror.Io
         {
           path = "--strategy";
           message = "CKPTNONE saves nothing a rescue could commit; pick a checkpointing strategy";
         });
  let bad path message = die (Rerror.Io { path; message }) in
  if spot_discount <= 0. || spot_discount > 1. then
    bad "--spot-discount" "must lie in (0, 1]";
  if price <= 0. then bad "--price" "must be positive";
  if spot_speed <= 0. then bad "--spot-speed" "must be positive";
  if revocations < 0 then bad "--revocations" "must be non-negative";
  let prevokes = match prevokes with [] -> [ 0.05; 0.2 ] | ps -> ps in
  let graces = match graces with [] -> [ 0.; 10. ] | gs -> gs in
  let spot_fractions = match spot_fractions with [] -> [ 0.; 0.5 ] | fs -> fs in
  List.iter
    (fun p -> if p < 0. || p >= 1. then bad "--prevoke" "must lie in [0, 1)")
    prevokes;
  List.iter (fun g -> if g < 0. then bad "--grace" "must be non-negative") graces;
  List.iter
    (fun f -> if f < 0. || f > 1. then bad "--spot-fraction" "must lie in [0, 1]")
    spot_fractions;
  let dag = source dax workflow tasks seed in
  let faulty = match fail_after with None -> Faulty.never () | Some k -> Faulty.after k in
  let journal = open_journal ~resume journal in
  print_endline cloud_header;
  (* the priced platform: failure rate and bandwidth derived exactly as
     the homogeneous pipeline derives them, so a fully on-demand
     platform (spot-fraction 0) plans and executes bitwise like the
     unpriced one — prices are uniform (risk factor 1 everywhere) but
     the dollar meter still runs *)
  let mean_weight = Dag.total_weight dag /. float_of_int (Dag.n_tasks dag) in
  let lambda = Platform.lambda_of_pfail ~pfail ~mean_weight in
  let bandwidth =
    let total_data = Dag.total_data dag in
    if total_data <= 0. then 1.
    else
      Platform.bandwidth_for_ccr ~ccr ~total_data ~total_weight:(Dag.total_weight dag)
  in
  let platform_for sf =
    let nspot = int_of_float (Float.round (sf *. float_of_int processors)) in
    let spot p = p >= processors - nspot in
    let rates = Array.make processors lambda in
    let prices =
      Array.init processors (fun p -> if spot p then price *. spot_discount else price)
    in
    let speeds =
      if nspot = 0 || spot_speed = 1. then None
      else Some (Array.init processors (fun p -> if spot p then spot_speed else 1.))
    in
    Platform.make_heterogeneous ?speeds ~prices ~rates ~bandwidth ()
  in
  (* one plan + engine preparation per price mix (spot speeds shift the
     placement DP's costs); cells sharing a mix share the replan cache *)
  let prepared_for = Hashtbl.create 4 in
  let prepared sf =
    match Hashtbl.find_opt prepared_for sf with
    | Some v -> v
    | None ->
        let setup =
          Pipeline.prepare ~platform:(platform_for sf) ~dag ~processors ~pfail ~ccr ()
        in
        let plan = Pipeline.plan ~replicas:(Store.plan_replicas store_cfg) setup strategy in
        let v = (plan, Cloud.prepare plan) in
        Hashtbl.add prepared_for sf v;
        v
  in
  let cells =
    List.concat_map
      (fun prevoke ->
        List.concat_map
          (fun grace -> List.map (fun sf -> (prevoke, grace, sf)) spot_fractions)
          graces)
      prevokes
  in
  (* cells run in sequence — the parallelism lives inside
     Cloud.sample_prepared, whose result is bitwise independent of
     --jobs, so the bytes on stdout are too *)
  let rows =
    List.map
      (fun (prevoke, grace, sf) ->
        let key =
          cloud_cell_key ~dag ~seed ~processors ~pfail ~ccr ~kind:strategy ~trials
            ~revocations ~price ~spot_discount ~spot_speed ~store_cfg ~prevoke ~grace sf
        in
        match Option.bind journal (fun j -> Journal.find j key) with
        | Some row -> ((prevoke, grace, sf), row, true)
        | None ->
            Faulty.inject faulty "cloud cell";
            let plan, prep = prepared sf in
            let lambda_revoke =
              if prevoke = 0. then 0.
              else
                Platform.lambda_of_pfail ~pfail:prevoke ~mean_weight:plan.Strategy.wpar
            in
            let config =
              {
                Cloud.lambda_revoke;
                grace;
                max_revocations = revocations;
                kind = strategy;
                store = store_cfg;
              }
            in
            let summary mode =
              Cloud.summarize (Cloud.sample_prepared ~trials ~seed ~jobs ~mode config prep)
            in
            let ck = summary Cloud.Checkpoint in
            let repl = summary Cloud.Replicate in
            let row =
              Printf.sprintf
                "%s,%d,%d,%s,%d,%g,%g,%g,%g,%g,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%d,%d"
                (Dag.name dag) (Dag.n_tasks dag) processors (Strategy.kind_name strategy)
                trials prevoke grace sf spot_discount spot_speed ck.Cloud.mean_makespan
                repl.Cloud.mean_makespan ck.Cloud.mean_dollar_cost
                repl.Cloud.mean_dollar_cost ck.Cloud.mean_work_lost
                repl.Cloud.mean_work_lost ck.Cloud.mean_rescues
                ck.Cloud.mean_rescued_tasks ck.Cloud.mean_revocations ck.Cloud.mean_replans
                ck.Cloud.stranded repl.Cloud.stranded
            in
            Option.iter (fun j -> journal_append j ~key ~value:row) journal;
            ((prevoke, grace, sf), row, false))
      cells
  in
  List.iter (fun (_, row, _) -> print_endline row) rows;
  (* grace-benefit report: wherever the sweep holds both a zero- and a
     nonzero-grace cell of the same revocation rate and price mix,
     compare the checkpointing mode's expected work lost — the
     warning's whole value is the shrinkage *)
  let lost_of prevoke grace sf =
    List.find_map
      (fun ((p, g, s), row, _) ->
        if p = prevoke && g = grace && s = sf then Some (cloud_row_lost row) else None)
      rows
  in
  if List.mem 0. graces then
    List.iter
      (fun prevoke ->
        if prevoke > 0. then
          List.iter
            (fun sf ->
              match lost_of prevoke 0. sf with
              | None -> ()
              | Some unwarned ->
                  List.iter
                    (fun g ->
                      if g > 0. then
                        match lost_of prevoke g sf with
                        | Some l when l < unwarned ->
                            Printf.eprintf
                              "ckptwf: cloud: grace %g cuts expected work lost %.4f -> \
                               %.4f (prevoke %g, spot-fraction %g)\n\
                               %!"
                              g unwarned l prevoke sf
                        | _ -> ())
                    graces)
            spot_fractions)
      prevokes;
  (let hits, misses =
     Hashtbl.fold
       (fun _ (_, prep) (h, m) ->
         let hits, misses = Cloud.cache_stats prep in
         (h + hits, m + misses))
       prepared_for (0, 0)
   in
   if hits + misses > 0 then
     Printf.eprintf "ckptwf: replan cache: %d hit(s), %d miss(es) (%.0f%% hit rate)\n%!"
       hits misses
       (100. *. float_of_int hits /. float_of_int (hits + misses)));
  Option.iter
    (fun j ->
      let reused =
        List.fold_left (fun acc (_, _, r) -> if r then acc + 1 else acc) 0 rows
      in
      Printf.eprintf "ckptwf: journal %s: %d cell(s) reused, %d computed\n%!"
        (Journal.path j) reused (List.length rows - reused))
    journal

let cloud_cmd =
  let prevokes =
    Arg.(
      value
      & opt_all float []
      & info [ "prevoke" ] ~docv:"P"
          ~doc:
            "Probability that an on-demand-priced processor is revoked within the \
             failure-free parallel time (sets the base revocation rate; each spot \
             processor multiplies it by its price-driven risk factor; repeatable). \
             Default sweep: 0.05 0.2.")
  in
  let graces =
    Arg.(
      value
      & opt_all float []
      & info [ "grace" ] ~docv:"G"
          ~doc:
            "Warning-to-kill grace window, seconds (repeatable; 0 = unannounced \
             revocation). Default sweep: 0 10.")
  in
  let spot_fractions =
    Arg.(
      value
      & opt_all float []
      & info [ "spot-fraction" ] ~docv:"F"
          ~doc:
            "Fraction of the platform bought as discounted spot instances (repeatable). \
             Default sweep: 0 0.5.")
  in
  let spot_discount =
    Arg.(
      value
      & opt float 0.3
      & info [ "spot-discount" ] ~docv:"D"
          ~doc:
            "Spot price as a fraction of the on-demand price; the discount buys risk \
             (the revocation rate is divided by it).")
  in
  let spot_speed =
    Arg.(
      value
      & opt float 1.0
      & info [ "spot-speed" ] ~docv:"S"
          ~doc:"Relative speed of a spot processor (1 = on-demand speed).")
  in
  let price =
    Arg.(
      value
      & opt float 1.0
      & info [ "price" ] ~docv:"DOLLARS" ~doc:"On-demand price, dollars per hour.")
  in
  let revocations =
    Arg.(
      value
      & opt int 1
      & info [ "revocations" ] ~docv:"K"
          ~doc:"Revocations that can actually strike one execution (the rest censored).")
  in
  let trials =
    Arg.(value & opt int 200 & info [ "trials" ] ~docv:"T" ~doc:"Cloud trials per cell.")
  in
  Cmd.v
    (Cmd.info "cloud"
       ~doc:
         "Spot-instance revocation on a priced platform: expected makespan, work lost \
          and dollar cost of warning-driven proactive checkpointing versus a \
          replicate-the-workflow baseline, over a revocation-rate x grace x price-mix \
          sweep (extension).")
    Term.(
      const cloud_run $ dax_arg $ workflow_arg $ tasks_arg $ seed_arg $ processors_arg
      $ pfail_arg $ ccr_arg $ strategy_arg $ trials $ prevokes $ graces $ spot_fractions
      $ spot_discount $ spot_speed $ price $ revocations $ storage_term $ store_flags_term
      $ journal_path_arg "cloud sweep" $ resume_arg $ fail_after_arg "cell" $ jobs_arg)

(* --- serve (planning as a service) --- *)

module Service = Ckpt_core.Service

(* Malformed requests take the same exit-2 path as malformed DAX:
   [protect] renders one diagnostic line and exits. *)
let malformed message = Rerror.raise_ (Rerror.Parse { source = "request"; message })

let req_str req key ~default =
  match Json.member key req with
  | Some (Json.Str s) -> s
  | None -> default
  | Some _ -> malformed (Printf.sprintf "field %S must be a string" key)

let req_float req key ~default =
  match Json.member key req with
  | Some (Json.Num f) -> f
  | None -> default
  | Some _ -> malformed (Printf.sprintf "field %S must be a number" key)

let req_int req key ~default =
  let f = req_float req key ~default:(float_of_int default) in
  if Float.is_integer f then int_of_float f
  else malformed (Printf.sprintf "field %S must be an integer" key)

let req_strategy req ~default =
  match strategy_of_string (req_str req "strategy" ~default) with
  | Ok k -> k
  | Error (`Msg m) -> malformed m

type serve_state = {
  service : Service.t;
  (* one degraded-mode replan cache per plan, shared across requests:
     repeated degrade traffic against the same plan hits the
     structural replan cache instead of replanning. [dlock] guards the
     table itself — concurrent connection handlers share it (each
     [Degrade.prepared] is internally domain-safe already). *)
  dlock : Mutex.t;
  degraded : (string, Degrade.prepared) Hashtbl.t;
  (* daemon-lifetime checkpoint-store counters, accumulated from every
     degrade request's summary under [slock] — concurrent handler
     domains land their totals here, and the stats op reports them.
     [store_ops] counts the requests that ran a live (non-passthrough)
     store; while it is 0 the stats answer omits the store fields, so
     store-free traffic keeps the historic bytes. *)
  slock : Mutex.t;
  mutable store_totals : Store.stats;
  mutable store_ops : int;
}

type plan_request = {
  preq_key : string;
  preq_setup : Pipeline.setup;
  preq_kind : Strategy.kind;
  preq_replicas : int;
}

let workflow_of_req req =
  let name = req_str req "workflow" ~default:"genome" in
  match Spec.of_name name with
  | Some k -> k
  | None -> malformed (Printf.sprintf "unknown workflow %S (genome|montage|ligo)" name)

let setup_key ~workflow ~tasks ~seed ~processors ~pfail ~ccr =
  Printf.sprintf "setup|wf=%s|n=%d|seed=%d|p=%d|pfail=%.17g|ccr=%.17g" (Spec.name workflow)
    tasks seed processors pfail ccr

(* the shared setup for a request: generated + validated + recognised +
   scheduled once per distinct configuration, then reused (the compiled
   CSR views and placement arenas ride along inside) *)
let serve_setup state req =
  let workflow = workflow_of_req req in
  let tasks = req_int req "tasks" ~default:300 in
  let seed = req_int req "seed" ~default:1 in
  let processors = req_int req "processors" ~default:35 in
  let pfail = req_float req "pfail" ~default:0.001 in
  let ccr = req_float req "ccr" ~default:0.01 in
  let key = setup_key ~workflow ~tasks ~seed ~processors ~pfail ~ccr in
  let setup =
    Service.setup state.service ~key (fun () ->
        let dag = source None workflow tasks seed in
        Pipeline.prepare ~dag ~processors ~pfail ~ccr ())
  in
  (key, setup)

let plan_request state req =
  let skey, setup = serve_setup state req in
  let kind = req_strategy req ~default:"some" in
  let replicas = req_int req "replicas" ~default:1 in
  if replicas < 1 then malformed "field \"replicas\" must be >= 1";
  {
    preq_key = Printf.sprintf "%s|s=%s|k=%d" skey (Strategy.kind_name kind) replicas;
    preq_setup = setup;
    preq_kind = kind;
    preq_replicas = replicas;
  }

(* plan a request through the service cache; [prefetched] marks keys
   the batch front-loaded via Pipeline.plan_many — each counts as the
   one miss its computation was *)
let serve_plan state ~prefetched pr =
  match Service.find_plan state.service ~key:pr.preq_key with
  | Some plan ->
      if Hashtbl.mem prefetched pr.preq_key then begin
        Hashtbl.remove prefetched pr.preq_key;
        Service.note_plan_miss state.service;
        (plan, "miss")
      end
      else begin
        Service.note_plan_hit state.service;
        (plan, "hit")
      end
  | None ->
      Service.note_plan_miss state.service;
      let plan =
        Pipeline.plan ~jobs:1 ~replicas:pr.preq_replicas pr.preq_setup pr.preq_kind
      in
      (Service.store_plan state.service ~key:pr.preq_key plan, "miss")

(* the optional checkpoint-store fields of a degrade request: backend
   ("store": memory|replicated|remote — the disk journal is a one-shot
   CLI affair), policy ("store_policy"), and the PR-5 fault channels;
   everything defaults to the passthrough store, keeping store-free
   requests byte-identical *)
let store_of_req req =
  let faults =
    {
      Storage.default with
      Storage.commit_fail_prob = req_float req "commit_fail_prob" ~default:0.;
      corrupt_prob = req_float req "corrupt_prob" ~default:0.;
      storage_lambda = req_float req "storage_lambda" ~default:0.;
      outage_rate = req_float req "outage_rate" ~default:0.;
      outage_mean = req_float req "outage_mean" ~default:0.;
      replicas = req_int req "replicas" ~default:1;
    }
  in
  let backend =
    match req_str req "store" ~default:"memory" with
    | "memory" -> Store.Memory
    | "replicated" -> Store.Replicated { k = faults.Storage.replicas }
    | "remote" ->
        Store.Remote
          {
            commit_latency = req_float req "store_latency" ~default:0.;
            read_latency = req_float req "store_read_latency" ~default:0.;
          }
    | "disk" -> malformed "store: the disk backend is one-shot CLI only (simulate, storm)"
    | other -> malformed (Printf.sprintf "unknown store %S (memory|replicated|remote)" other)
  in
  let policy =
    match Store.parse_policy (req_str req "store_policy" ~default:"every-segment") with
    | Ok p -> p
    | Error m -> malformed m
  in
  let cfg = { Store.backend; policy; faults } in
  (try Store.validate cfg with Invalid_argument m -> malformed m);
  cfg

let note_store_totals state ~live totals =
  Mutex.protect state.slock (fun () ->
      state.store_totals <- Store.add state.store_totals totals;
      if live then state.store_ops <- state.store_ops + 1)

let store_stats_fields (s : Store.stats) =
  [ ("store_commits", Json.Num (float_of_int s.Store.commits));
    ("store_commit_retries", Json.Num (float_of_int s.Store.commit_retries));
    ("store_rejected_reads", Json.Num (float_of_int s.Store.rejected_reads));
    ("store_corrupt_reads", Json.Num (float_of_int s.Store.corrupt_reads));
    ("store_evictions", Json.Num (float_of_int s.Store.evictions)) ]

let replan_cache_totals state =
  Mutex.protect state.dlock (fun () ->
      Hashtbl.fold
        (fun _ prepared (h, m) ->
          let hits, misses = Degrade.cache_stats prepared in
          (h + hits, m + misses))
        state.degraded (0, 0))

let handle_request state ~jobs ~prefetched req =
  let t0 = Unix.gettimeofday () in
  let op =
    match Json.member "op" req with
    | Some (Json.Str s) -> s
    | Some _ -> malformed "field \"op\" must be a string"
    | None -> malformed "missing field \"op\""
  in
  let id = match Json.member "id" req with Some v -> [ ("id", v) ] | None -> [] in
  let finish fields =
    let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
    Json.Obj
      (id
      @ [ ("op", Json.Str op); ("ok", Json.Bool true) ]
      @ fields
      @ [ ("elapsed_ms", Json.Num (Float.round (elapsed_ms *. 1000.) /. 1000.)) ])
  in
  match op with
  | "plan" ->
      let pr = plan_request state req in
      let plan, cache = serve_plan state ~prefetched pr in
      let em = Strategy.expected_makespan plan in
      finish
        [ ("strategy", Json.Str (Strategy.kind_name pr.preq_kind));
          ("checkpoints", Json.Num (float_of_int plan.Strategy.checkpoint_count));
          ("expected_makespan", Json.Str (Printf.sprintf "%.2f" em));
          ("wpar", Json.Str (Printf.sprintf "%.2f" plan.Strategy.wpar));
          ("cache", Json.Str cache) ]
  | "evaluate" ->
      let _, setup = serve_setup state req in
      let method_ =
        let name = req_str req "method" ~default:"pathapprox" in
        match Evaluator.of_name name with
        | Some m -> m
        | None -> malformed (Printf.sprintf "unknown method %S" name)
      in
      (* optional "eval" field mirrors `ckptwf sweep --eval`: absent
         keeps the historic method-driven estimator byte-for-byte *)
      let eval =
        match req_str req "eval" ~default:"" with
        | "" -> None
        | name -> (
            match Analytic.eval_of_name name with
            | Some e -> Some e
            | None -> malformed (Printf.sprintf "unknown eval %S (analytic|mc|auto)" name))
      in
      (* field formatting matches the one-shot `ckptwf evaluate` output
         (%.2f makespans, %.4f relatives) so scripted round-trips can
         compare the two verbatim *)
      let cmp =
        match eval with
        | None -> Pipeline.compare_strategies ~method_ setup
        | Some e -> (
            match Analytic.resolve e with
            | `Analytic -> Analytic.compare_strategies setup
            | `Mc ->
                Pipeline.compare_strategies ~method_:Evaluator.default_montecarlo setup)
      in
      let eval_field =
        match eval with
        | None -> []
        | Some e -> [ ("eval", Json.Str (Analytic.eval_name e)) ]
      in
      finish
        (eval_field
        @ [ ("method", Json.Str (Evaluator.name method_));
            ("em_some", Json.Str (Printf.sprintf "%.2f" cmp.Pipeline.em_some));
            ("ckpts_some", Json.Num (float_of_int cmp.Pipeline.ckpts_some));
            ("em_all", Json.Str (Printf.sprintf "%.2f" cmp.Pipeline.em_all));
            ("ckpts_all", Json.Num (float_of_int cmp.Pipeline.ckpts_all));
            ("rel_all", Json.Str (Printf.sprintf "%.4f" cmp.Pipeline.rel_all));
            ("em_none", Json.Str (Printf.sprintf "%.2f" cmp.Pipeline.em_none));
            ("rel_none", Json.Str (Printf.sprintf "%.4f" cmp.Pipeline.rel_none)) ])
  | "degrade" ->
      let pr = plan_request state req in
      if pr.preq_kind = Strategy.Ckpt_none then
        malformed "degrade: CKPTNONE saves nothing a survivor could reuse";
      let pdeath =
        match Json.member "pdeath" req with
        | Some (Json.Num f) -> f
        | Some _ -> malformed "field \"pdeath\" must be a number"
        | None -> malformed "degrade: missing field \"pdeath\""
      in
      let max_losses = req_int req "losses" ~default:1 in
      let trials = req_int req "trials" ~default:200 in
      let seed = req_int req "seed" ~default:1 in
      let plan, cache = serve_plan state ~prefetched pr in
      let prepared =
        Mutex.protect state.dlock (fun () ->
            match Hashtbl.find_opt state.degraded pr.preq_key with
            | Some p -> p
            | None ->
                let p = Degrade.prepare plan in
                Hashtbl.add state.degraded pr.preq_key p;
                p)
      in
      let lambda_death =
        Platform.lambda_of_pfail ~pfail:pdeath ~mean_weight:plan.Strategy.wpar
      in
      let store_cfg = store_of_req req in
      let config =
        { Degrade.lambda_death; max_losses; kind = pr.preq_kind; store = store_cfg }
      in
      let summary mode =
        Degrade.summarize
          (Degrade.sample_prepared ~trials ~seed ~jobs ~mode config prepared)
      in
      let repair = summary Degrade.Repair in
      let restart = summary Degrade.Restart in
      let live = not (Store.passthrough store_cfg) in
      let totals =
        Store.add repair.Degrade.store_totals restart.Degrade.store_totals
      in
      note_store_totals state ~live totals;
      let hits, misses = replan_cache_totals state in
      finish
        ([ ("pdeath", Json.Num pdeath);
           ("em_repair", Json.Str (Printf.sprintf "%.4f" repair.Degrade.mean_makespan));
           ("em_restart", Json.Str (Printf.sprintf "%.4f" restart.Degrade.mean_makespan));
           ( "gain",
             Json.Str
               (Printf.sprintf "%.4f"
                  (restart.Degrade.mean_makespan /. repair.Degrade.mean_makespan)) );
           ("cache", Json.Str cache);
           ("replan_cache_hits", Json.Num (float_of_int hits));
           ("replan_cache_misses", Json.Num (float_of_int misses)) ]
        @
        (* store fields only when the request ran a live store, so
           store-free degrade answers keep the historic bytes *)
        if live then
          ("store", Json.Str (Store.backend_name store_cfg.Store.backend))
          :: ("store_policy", Json.Str (Store.policy_name store_cfg.Store.policy))
          :: store_stats_fields totals
        else [])
  | "stats" ->
      let s = Service.stats state.service in
      let hits, misses = replan_cache_totals state in
      let store_totals, store_ops =
        Mutex.protect state.slock (fun () -> (state.store_totals, state.store_ops))
      in
      finish
        ([ ("setup_hits", Json.Num (float_of_int s.Service.setup_hits));
           ("setup_misses", Json.Num (float_of_int s.Service.setup_misses));
           ("setup_evictions", Json.Num (float_of_int s.Service.setup_evictions));
           ("plan_hits", Json.Num (float_of_int s.Service.plan_hits));
           ("plan_misses", Json.Num (float_of_int s.Service.plan_misses));
           ("plan_evictions", Json.Num (float_of_int s.Service.plan_evictions));
           ("plan_races", Json.Num (float_of_int s.Service.plan_races));
           ("replan_cache_hits", Json.Num (float_of_int hits));
           ("replan_cache_misses", Json.Num (float_of_int misses));
           ("effective_jobs", Json.Num (float_of_int jobs));
           ("cores", Json.Num (float_of_int (Pool.available_jobs ()))) ]
        @
        (* the store block appears once any request has run a live
           store; store-free daemons keep the historic stats bytes *)
        if store_ops > 0 then
          ("store_ops", Json.Num (float_of_int store_ops)) :: store_stats_fields store_totals
        else [])
  | other -> malformed (Printf.sprintf "unknown op %S (plan|evaluate|degrade|stats)" other)

let parse_request line =
  match Json.parse line with
  | Json.Obj _ as req -> req
  | _ -> malformed "request must be a JSON object"
  | exception Json.Malformed m -> malformed m

(* Daemon-mode error discipline: over stdin a malformed request is a
   usage error (exit 2, the one-shot CLI contract), but a long-lived
   daemon must answer {"ok":false,...} and keep serving — one hostile
   or confused client must not take the process down. *)
type answer_mode = Fatal | Structured

let error_kind = function
  | Rerror.Parse _ -> "parse"
  | Rerror.Deadline_exceeded _ -> "deadline"
  | Rerror.Invalid_dag _ -> "invalid"
  | _ -> "error"

let error_answer ?req e =
  let copied key =
    match req with
    | Some r -> (
        match Json.member key r with Some v -> [ (key, v) ] | None -> [])
    | None -> []
  in
  Json.Obj
    (copied "id" @ copied "op"
    @ [ ("ok", Json.Bool false);
        ("error", Json.Str (error_kind e));
        ("message", Json.Str (Rerror.to_string e)) ])

(* answer one batch of already-read request lines: parse, front-load
   the distinct missing plans as one Pipeline.plan_many batch over the
   resident pool, then answer in order — the amortisation the daemon
   exists for. Each line carries the Deadline started when it was
   received; a request still unanswered when its deadline lapses gets
   a structured "deadline" answer instead of a stale result. *)
let answer_batch state ~jobs ~mode ~output lines =
  let parsed =
    Array.map
      (fun (line, deadline) ->
        match parse_request line with
        | req -> Ok (req, deadline)
        | exception Rerror.E e when mode = Structured -> Error e)
      lines
  in
  let prefetched = Hashtbl.create 16 in
  let missing = Hashtbl.create 16 in
  Array.iter
    (fun entry ->
      match entry with
      | Error _ -> ()
      | Ok (req, _) -> (
          match req_str req "op" ~default:"" with
          | "plan" | "degrade" -> (
              (* a malformed plan/degrade request surfaces at answer
                 time; the prefetch just skips it *)
              match plan_request state req with
              | pr ->
                  if
                    (not (Hashtbl.mem missing pr.preq_key))
                    && Service.find_plan state.service ~key:pr.preq_key = None
                  then Hashtbl.add missing pr.preq_key pr
              | exception Rerror.E _ when mode = Structured -> ())
          | _ -> ()))
    parsed;
  let batch = Array.of_list (Hashtbl.fold (fun _ pr acc -> pr :: acc) missing []) in
  let plans =
    Pipeline.plan_many ~jobs
      (Array.map (fun pr -> (pr.preq_setup, pr.preq_kind, pr.preq_replicas)) batch)
  in
  Array.iteri
    (fun i pr ->
      ignore (Service.store_plan state.service ~key:pr.preq_key plans.(i));
      Hashtbl.replace prefetched pr.preq_key ())
    batch;
  Array.iter
    (fun entry ->
      match entry with
      | Error e -> output (Json.to_string (error_answer e))
      | Ok (req, deadline) -> (
          match
            Deadline.check deadline ~completed:0;
            handle_request state ~jobs ~prefetched req
          with
          | answer -> output (Json.to_string answer)
          | exception Rerror.E e when mode = Structured ->
              output (Json.to_string (error_answer ~req e))))
    parsed

let never_lines input =
  let lines = ref [] in
  (try
     while true do
       let line = input_line input in
       if String.trim line <> "" then lines := (line, Deadline.never) :: !lines
     done
   with End_of_file -> ());
  Array.of_list (List.rev !lines)

let serve_stream state ~jobs input output =
  let prefetched = Hashtbl.create 1 in
  try
    while true do
      let line = input_line input in
      if String.trim line <> "" then
        output (Json.to_string (handle_request state ~jobs ~prefetched (parse_request line)))
    done
  with End_of_file -> ()

(* --- the hardened daemon: concurrent connections, deadlines,
       shedding, graceful lifecycle ---------------------------------- *)

type server = {
  state : serve_state;
  jobs : int;
  request_timeout : float option;
      (* per-request budget, started when the request line is awaited:
         covers the read (slowloris guard) and the queueing until the
         answer; a plan already computing is not preempted *)
  max_clients : int;
  active : int Atomic.t;  (* connection handlers in flight *)
  stop : bool Atomic.t;  (* a signal asked us to drain and exit *)
}

let request_deadline server =
  match server.request_timeout with
  | None -> Deadline.never
  | Some seconds -> Deadline.make ~seconds ()

exception Read_timeout

(* block until [fd] is readable or [deadline] lapses *)
let rec wait_readable fd deadline =
  match Unix.select [ fd ] [] [] (Deadline.select_timeout deadline) with
  | [], _, _ -> raise Read_timeout
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if Deadline.expired deadline then raise Read_timeout
      else wait_readable fd deadline

type conn = {
  fd : Unix.file_descr;
  chunk : Bytes.t;
  mutable pending : string;  (* bytes received but not yet consumed *)
  mutable conn_eof : bool;
}

let make_conn fd = { fd; chunk = Bytes.create 8192; pending = ""; conn_eof = false }

(* next newline-terminated line ([None] at EOF, where a non-empty
   unterminated tail still counts as a final line); raises
   [Read_timeout] when [deadline] lapses first *)
let rec conn_line conn deadline =
  match String.index_opt conn.pending '\n' with
  | Some i ->
      let line = String.sub conn.pending 0 i in
      conn.pending <-
        String.sub conn.pending (i + 1) (String.length conn.pending - i - 1);
      Some line
  | None ->
      if conn.conn_eof then
        if conn.pending = "" then None
        else begin
          let line = conn.pending in
          conn.pending <- "";
          Some line
        end
      else begin
        wait_readable conn.fd deadline;
        let n =
          let rec read () =
            try Unix.read conn.fd conn.chunk 0 (Bytes.length conn.chunk)
            with Unix.Unix_error (Unix.EINTR, _, _) -> read ()
          in
          read ()
        in
        if n = 0 then conn.conn_eof <- true
        else conn.pending <- conn.pending ^ Bytes.sub_string conn.chunk 0 n;
        conn_line conn deadline
      end

let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len

let output_line fd line =
  let line = line ^ "\n" in
  write_all fd line 0 (String.length line)

let deadline_line budget =
  Json.to_string
    (Json.Obj
       [ ("ok", Json.Bool false);
         ("error", Json.Str "deadline");
         ( "message",
           Json.Str
             (Printf.sprintf
                "request not received within the %gs request timeout" budget) ) ])

let busy_line max_clients =
  Json.to_string
    (Json.Obj
       [ ("ok", Json.Bool false);
         ("error", Json.Str "busy");
         ("max_clients", Json.Num (float_of_int max_clients));
         ("message", Json.Str "daemon at max-clients; retry later") ])

(* one connection = one batch: requests to EOF, then answers; caches
   persist across connections. A hung client (no newline within the
   request timeout) still gets answers for the complete requests it
   sent, then a structured deadline line, then the close. *)
let handle_connection server fd =
  let conn = make_conn fd in
  let timed_out = ref None in
  let lines = ref [] in
  (try
     let rec read_loop () =
       let deadline = request_deadline server in
       match conn_line conn deadline with
       | Some line ->
           if String.trim line <> "" then lines := (line, deadline) :: !lines;
           read_loop ()
       | None -> ()
     in
     read_loop ()
   with Read_timeout ->
     timed_out := Some (Option.value server.request_timeout ~default:0.));
  answer_batch server.state ~jobs:server.jobs ~mode:Structured
    ~output:(output_line fd)
    (Array.of_list (List.rev !lines));
  Option.iter (fun budget -> output_line fd (deadline_line budget)) !timed_out

(* catch-everything wrapper: a vanished client (EPIPE/ECONNRESET) or a
   handler bug must cost one connection, never the daemon *)
let run_connection server fd =
  (try handle_connection server fd with
  | Unix.Unix_error _ | Sys_error _ | Read_timeout -> ()
  | e ->
      Printf.eprintf "ckptwf: connection handler failed: %s\n%!"
        (Printexc.to_string e));
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Atomic.decr server.active

(* a Unix-socket path may be left behind by a daemon that was killed
   mid-request; claim it only after probing that nobody answers it *)
let claim_socket_path path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let alive =
      try
        Unix.connect probe (Unix.ADDR_UNIX path);
        true
      with Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if alive then
      Rerror.raise_
        (Rerror.Io { path; message = "a live daemon is already serving on this socket" });
    Printf.eprintf "ckptwf: removing stale socket %s\n%!" path;
    try Unix.unlink path with Unix.Unix_error _ -> ()
  end

let listen_unix path =
  claim_socket_path path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 64;
  sock

let listen_tcp port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 64;
  sock

(* accept loop: EINTR-safe, sheds over-cap connections with one busy
   line, spawns a domain per accepted client, drains on SIGINT/SIGTERM
   (stop accepting, finish in-flight batches, remove the socket file,
   exit 0). The listen sockets are polled with a short select timeout
   so a signal is noticed within a quarter second even when no
   connection ever arrives. *)
let daemon_loop server listeners ~once =
  let spawned = ref [] in
  let reap ~all =
    if all then begin
      List.iter (fun (d, _) -> Domain.join d) !spawned;
      spawned := []
    end
    else
      spawned :=
        List.filter
          (fun (d, finished) ->
            if Atomic.get finished then begin
              Domain.join d;
              false
            end
            else true)
          !spawned
  in
  let served_once = ref false in
  let accept_ready listen_fd =
    match Unix.accept listen_fd with
    | exception
        Unix.Unix_error
          ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _)
      ->
        ()
    | client, _ ->
        if Atomic.get server.active >= server.max_clients then begin
          (* shed: one busy line, then hang up — never block the
             accept loop behind a full house *)
          (try output_line client (busy_line server.max_clients)
           with Unix.Unix_error _ -> ());
          try Unix.close client with Unix.Unix_error _ -> ()
        end
        else begin
          Atomic.incr server.active;
          served_once := true;
          if once then run_connection server client
          else begin
            let finished = Atomic.make false in
            match
              Domain.spawn (fun () ->
                  run_connection server client;
                  Atomic.set finished true)
            with
            | d -> spawned := (d, finished) :: !spawned
            | exception _ ->
                (* out of domains: shed exactly like over-cap *)
                Atomic.decr server.active;
                (try output_line client (busy_line server.max_clients)
                 with Unix.Unix_error _ -> ());
                (try Unix.close client with Unix.Unix_error _ -> ())
          end
        end
  in
  let rec loop () =
    if Atomic.get server.stop || (once && !served_once) then ()
    else begin
      (match Unix.select listeners [] [] 0.25 with
      | ready, _, _ -> List.iter accept_ready ready
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      reap ~all:false;
      loop ()
    end
  in
  loop ();
  (* drain: stop accepting, let in-flight batches finish *)
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listeners;
  reap ~all:true

let serve_daemon state ~jobs ~request_timeout ~max_clients socket tcp ~once =
  let server =
    {
      state;
      jobs;
      request_timeout;
      max_clients;
      active = Atomic.make 0;
      stop = Atomic.make false;
    }
  in
  (* a client that dies mid-answer must surface as EPIPE on the write,
     not as a process-killing SIGPIPE *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  List.iter
    (fun signal ->
      Sys.set_signal signal
        (Sys.Signal_handle (fun _ -> Atomic.set server.stop true)))
    [ Sys.sigint; Sys.sigterm ];
  let unix_listener = Option.map listen_unix socket in
  let tcp_listener = Option.map listen_tcp tcp in
  let listeners = List.filter_map Fun.id [ unix_listener; tcp_listener ] in
  let cleanup () =
    Option.iter
      (fun path -> try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
      socket
  in
  Printf.eprintf "ckptwf: serving on %s%s\n%!"
    (String.concat " + "
       (List.filter_map Fun.id
          [ socket; Option.map (Printf.sprintf "tcp:%d") tcp ]))
    (if once then " (once)" else "");
  Fun.protect ~finally:cleanup (fun () ->
      daemon_loop server listeners ~once;
      if Atomic.get server.stop then
        Printf.eprintf "ckptwf: drained %s, exiting\n%!"
          (Option.value socket ~default:"tcp"))

let serve_run socket tcp once jobs request_timeout max_clients cache_cap =
  protect @@ fun () ->
  let state =
    {
      service = Service.create ?max_setups:cache_cap ?max_plans:cache_cap ();
      dlock = Mutex.create ();
      degraded = Hashtbl.create 16;
      slock = Mutex.create ();
      store_totals = Store.zero;
      store_ops = 0;
    }
  in
  let jobs = Pool.effective_jobs jobs in
  match (socket, tcp) with
  | None, None ->
      let output line =
        print_string line;
        print_newline ();
        flush stdout
      in
      if once then answer_batch state ~jobs ~mode:Fatal ~output (never_lines stdin)
      else serve_stream state ~jobs stdin output
  | _ ->
      serve_daemon state ~jobs ~request_timeout ~max_clients socket tcp ~once

let serve_cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Serve over a Unix domain socket at $(docv) instead of stdin/stdout; each \
             connection is one request batch, connections are handled concurrently. A \
             stale socket file left by a killed daemon is removed at startup when no \
             live daemon answers it.")
  in
  let tcp =
    Arg.(
      value
      & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT"
          ~doc:
            "Also (or only) listen on 127.0.0.1:$(docv) with the same one-batch-per-\
             connection NDJSON protocol — for actual remote traffic.")
  in
  let once =
    Arg.(
      value
      & flag
      & info [ "once" ]
          ~doc:
            "Handle one batch (stdin to EOF, or a single connection), answer every \
             request in order, and exit — for scripting.")
  in
  let request_timeout =
    Arg.(
      value
      & opt (some positive_float_conv) None
      & info [ "request-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-request budget, started when the daemon begins waiting for the request \
             line: a client that hangs mid-request (slowloris) or a request still queued \
             when the budget lapses gets a structured {\"error\":\"deadline\"} answer \
             instead of blocking its connection forever. Unset means wait forever.")
  in
  let max_clients =
    let parse s =
      match int_of_string_opt s with
      | Some v when v >= 1 -> Ok v
      | _ -> Error (`Msg "expected a positive client count")
    in
    Arg.(
      value
      & opt (conv (parse, Format.pp_print_int)) 32
      & info [ "max-clients" ] ~docv:"N"
          ~doc:
            "Concurrent-connection bound: excess connections are shed immediately with a \
             one-line {\"error\":\"busy\"} answer instead of queueing behind a full \
             house.")
  in
  let cache_cap =
    let parse s =
      match int_of_string_opt s with
      | Some v when v >= 1 -> Ok v
      | _ -> Error (`Msg "expected a positive cache capacity")
    in
    Arg.(
      value
      & opt (some (conv (parse, Format.pp_print_int))) None
      & info [ "cache-cap" ] ~docv:"N"
          ~doc:
            "Bound the setup and plan caches to $(docv) entries each with LRU eviction \
             (eviction counters appear in the stats op). Unset means unbounded — the \
             pre-daemon behaviour.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Batched planning daemon: newline-delimited JSON plan/evaluate/degrade/stats \
          requests over stdin, a Unix socket or TCP, with compiled DAG views, placement \
          arenas and the structural replan cache shared across requests; concurrent \
          connections, per-request deadlines, bounded caches and SIGTERM draining \
          (extension).")
    Term.(
      const serve_run $ socket $ tcp $ once $ jobs_arg $ request_timeout $ max_clients
      $ cache_cap)

(* --- export --- *)

let export_run workflow tasks seed output =
  protect @@ fun () ->
  let dag = Spec.generate workflow ~seed ~tasks () in
  (match output with
  | Some path ->
      Ckpt_dax.Dax.save path dag;
      Format.printf "wrote %s (%d tasks)@." path (Dag.n_tasks dag)
  | None -> print_string (Ckpt_dax.Dax.to_string dag))

let export_cmd =
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output path (stdout when omitted).")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Write a generated workflow as a Pegasus DAX file.")
    Term.(const export_run $ workflow_arg $ tasks_arg $ seed_arg $ output)

let main_cmd =
  Cmd.group
    (Cmd.info "ckptwf" ~version:"1.0.0"
       ~doc:
         "Checkpointing workflows for fail-stop errors (Han, Canon, Casanova, Robert, \
          Vivien — IEEE Cluster 2017): scheduling, checkpoint placement, expected-makespan \
          evaluation and simulation. Exit codes: 0 success, 1 simulated fail-stop crash \
          (--fail-after), 2 malformed or invalid input, 3 exhausted retry/deadline budget, \
          124 command-line misuse.")
    [ generate_cmd; schedule_cmd; evaluate_cmd; simulate_cmd; sweep_cmd; accuracy_cmd;
      export_cmd; gantt_cmd; contention_cmd; quantiles_cmd; degrade_cmd; storm_cmd;
      cloud_cmd; serve_cmd ]

let () = exit (Cmd.eval main_cmd)
