(* Minimal JSON support for the serve daemon (no JSON library is baked
   into this environment). Covers the full grammar except that parsed
   numbers are all floats; object member order is preserved on
   output. Nesting is bounded ([max_depth]) so a hostile request like
   "[[[[..." is a Malformed diagnostic, not a Stack_overflow that
   kills a daemon connection handler. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Malformed of string

(* --- parsing ------------------------------------------------------ *)

type cursor = { s : string; mutable pos : int }

let fail c msg = raise (Malformed (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s
    && match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail c (Printf.sprintf "expected '%s'" word)

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    if c.pos >= String.length c.s then fail c "unterminated string";
    let ch = c.s.[c.pos] in
    c.pos <- c.pos + 1;
    if ch = '"' then Buffer.contents b
    else if ch = '\\' then begin
      (if c.pos >= String.length c.s then fail c "unterminated escape";
       let e = c.s.[c.pos] in
       c.pos <- c.pos + 1;
       match e with
       | '"' -> Buffer.add_char b '"'
       | '\\' -> Buffer.add_char b '\\'
       | '/' -> Buffer.add_char b '/'
       | 'b' -> Buffer.add_char b '\b'
       | 'f' -> Buffer.add_char b '\012'
       | 'n' -> Buffer.add_char b '\n'
       | 'r' -> Buffer.add_char b '\r'
       | 't' -> Buffer.add_char b '\t'
       | 'u' ->
           if c.pos + 4 > String.length c.s then fail c "short \\u escape";
           let hex = String.sub c.s c.pos 4 in
           c.pos <- c.pos + 4;
           let code =
             try int_of_string ("0x" ^ hex) with _ -> fail c "bad \\u escape"
           in
           (* UTF-8 encode the BMP code point; surrogate pairs are not
              needed for this protocol's ASCII-ish traffic *)
           if code < 0x80 then Buffer.add_char b (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
       | _ -> fail c "bad escape");
      go ()
    end
    else begin
      Buffer.add_char b ch;
      go ()
    end
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while c.pos < String.length c.s && is_num_char c.s.[c.pos] do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then fail c "expected number";
  match float_of_string_opt (String.sub c.s start (c.pos - start)) with
  | Some f -> Num f
  | None -> fail c "bad number"

let max_depth = 256

let rec parse_value c depth =
  if depth > max_depth then fail c "nesting too deep";
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c (depth + 1) in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value c (depth + 1) in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              elements (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List.rev (v :: acc)
          | _ -> fail c "expected ',' or ']'"
        in
        List (elements [])
      end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse s =
  let c = { s; pos = 0 } in
  let v = parse_value c 0 in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

(* --- printing ----------------------------------------------------- *)

let escape b s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    (* shortest decimal form that round-trips *)
    let short = Printf.sprintf "%g" f in
    if float_of_string short = f then short else Printf.sprintf "%.17g" f

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f -> Buffer.add_string b (number_to_string f)
    | Str s ->
        Buffer.add_char b '"';
        escape b s;
        Buffer.add_char b '"'
    | List l ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            go v)
          l;
        Buffer.add_char b ']'
    | Obj members ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            escape b k;
            Buffer.add_string b "\":";
            go v)
          members;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* --- accessors ---------------------------------------------------- *)

let member key = function Obj l -> List.assoc_opt key l | _ -> None

let str_exn msg = function Str s -> s | _ -> raise (Malformed msg)

let num_exn msg = function Num f -> f | _ -> raise (Malformed msg)
