(* Hand-rolled domain pool (domainslib is not available in this
   environment), in two flavours:

   - the legacy per-region API ([run] / [map]): a parallel region
     spawns [jobs - 1] fresh domains plus the calling domain, runs the
     worker body on each, joins, and re-raises the first exception.
     Domain spawn costs tens of microseconds, which is negligible for
     second-scale regions (Monte Carlo batches, sweep cells) but loses
     badly when regions are millisecond-scale and issued in a loop —
     planning fan-outs, degrade/cloud replan batches, daemon requests;

   - a resident pool ([create] / [run_in] / [map_in], usually via the
     process-wide [shared] pool and its [run_shared] / [map_shared]
     wrappers): worker domains are spawned once, park on a condition
     variable between batches, and every batch clamps its width to the
     machine's core count. On a single-core box the clamp degrades
     every "parallel" call to the inline sequential path, which is
     exactly right: spawning domains there buys only oversubscription
     (every minor GC synchronises all domains contending for the one
     core). *)

let available_jobs () = max 1 (Domain.recommended_domain_count ())

let effective_jobs jobs = max 1 (min jobs (available_jobs ()))

let run ~jobs body =
  if jobs < 1 then invalid_arg "Pool.run: jobs < 1";
  if jobs = 1 then body ~worker:0
  else begin
    let failed = Atomic.make None in
    let guarded worker () =
      try body ~worker
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set failed None (Some (e, bt)))
    in
    let domains = List.init (jobs - 1) (fun i -> Domain.spawn (guarded (i + 1))) in
    guarded 0 ();
    List.iter Domain.join domains;
    match Atomic.get failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let map ~jobs n f =
  if jobs < 1 then invalid_arg "Pool.map: jobs < 1";
  if n < 0 then invalid_arg "Pool.map: negative length";
  if jobs = 1 || n <= 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let stop = Atomic.make false in
    run ~jobs:(min jobs n) (fun ~worker:_ ->
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n && not (Atomic.get stop) then begin
            (try results.(i) <- Some (f i)
             with e ->
               Atomic.set stop true;
               raise e);
            loop ()
          end
        in
        loop ());
    Array.map (function Some v -> v | None -> assert false) results
  end

(* --- resident pool ------------------------------------------------ *)

(* True while the current domain is executing a pool batch body: a
   nested [run_in]/[run_shared]/[map_shared] from inside a worker runs
   inline instead of deadlocking on (or oversubscribing) the pool. *)
let inside_batch = Domain.DLS.new_key (fun () -> false)

type t = {
  size : int;  (* workers per batch at most, the caller included *)
  mutable domains : unit Domain.t list;
  submit : Mutex.t;  (* serialises whole batches: held for a batch's full extent *)
  m : Mutex.t;
  work : Condition.t;  (* a new batch was published, or [stopping] *)
  finished : Condition.t;  (* a helper finished its share of the batch *)
  mutable batch : int;  (* generation counter; helpers run each batch once *)
  mutable body : (worker:int -> unit) option;
  mutable width : int;  (* helpers with index >= width sit this batch out *)
  mutable active : int;  (* helpers still inside the current batch *)
  mutable stopping : bool;
  failed : (exn * Printexc.raw_backtrace) option Atomic.t;
}

let size t = t.size

let guarded t body worker =
  Domain.DLS.set inside_batch true;
  (try body ~worker
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     ignore (Atomic.compare_and_set t.failed None (Some (e, bt))));
  Domain.DLS.set inside_batch false

let rec helper t i seen =
  Mutex.lock t.m;
  while t.batch = seen && not t.stopping do
    Condition.wait t.work t.m
  done;
  if t.stopping then Mutex.unlock t.m
  else begin
    let gen = t.batch in
    let body = t.body and width = t.width in
    Mutex.unlock t.m;
    (match body with Some body when i < width -> guarded t body i | _ -> ());
    Mutex.lock t.m;
    t.active <- t.active - 1;
    if t.active = 0 then Condition.broadcast t.finished;
    Mutex.unlock t.m;
    helper t i gen
  end

let create ?jobs () =
  let size =
    match jobs with
    | None -> available_jobs ()
    | Some j when j >= 1 -> j
    | Some _ -> invalid_arg "Pool.create: jobs < 1"
  in
  let t =
    {
      size;
      domains = [];
      submit = Mutex.create ();
      m = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      batch = 0;
      body = None;
      width = 0;
      active = 0;
      stopping = false;
      failed = Atomic.make None;
    }
  in
  t.domains <- List.init (size - 1) (fun i -> Domain.spawn (fun () -> helper t (i + 1) 0));
  t

let run_in t ~jobs body =
  if jobs < 1 then invalid_arg "Pool.run_in: jobs < 1";
  let jobs = min (effective_jobs jobs) t.size in
  if jobs = 1 || Domain.DLS.get inside_batch then body ~worker:0
  else begin
    (* one batch at a time: [submit] is held for the batch's whole
       extent, so several domains (daemon connection handlers, the
       orchestrating CLI) can share one pool — late submitters queue
       here instead of corrupting the published batch *)
    Mutex.lock t.submit;
    Atomic.set t.failed None;
    Mutex.lock t.m;
    if t.stopping then begin
      Mutex.unlock t.m;
      Mutex.unlock t.submit;
      invalid_arg "Pool.run_in: pool is shut down"
    end;
    t.body <- Some body;
    t.width <- jobs;
    t.active <- t.size - 1;
    t.batch <- t.batch + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    guarded t body 0;
    Mutex.lock t.m;
    while t.active > 0 do
      Condition.wait t.finished t.m
    done;
    t.body <- None;
    Mutex.unlock t.m;
    Mutex.unlock t.submit;
    match Atomic.get t.failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let map_in t ~jobs n f =
  if jobs < 1 then invalid_arg "Pool.map_in: jobs < 1";
  if n < 0 then invalid_arg "Pool.map_in: negative length";
  let jobs = min (min (effective_jobs jobs) t.size) (max 1 n) in
  if jobs = 1 || n <= 1 || Domain.DLS.get inside_batch then Array.init n f
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let stop = Atomic.make false in
    run_in t ~jobs (fun ~worker:_ ->
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n && not (Atomic.get stop) then begin
            (try results.(i) <- Some (f i)
             with e ->
               Atomic.set stop true;
               raise e);
            loop ()
          end
        in
        loop ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let shutdown t =
  Mutex.lock t.m;
  let already = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  if not already then begin
    List.iter Domain.join t.domains;
    t.domains <- []
  end

(* --- the process-wide pool ---------------------------------------- *)

let shared_lock = Mutex.create ()
let shared_pool = ref None

let shared () =
  Mutex.lock shared_lock;
  let t =
    match !shared_pool with
    | Some t -> t
    | None ->
        let t = create () in
        shared_pool := Some t;
        t
  in
  Mutex.unlock shared_lock;
  t

let run_shared ~jobs body =
  if jobs < 1 then invalid_arg "Pool.run_shared: jobs < 1";
  if effective_jobs jobs = 1 || Domain.DLS.get inside_batch then body ~worker:0
  else run_in (shared ()) ~jobs body

let map_shared ~jobs n f =
  if jobs < 1 then invalid_arg "Pool.map_shared: jobs < 1";
  if n < 0 then invalid_arg "Pool.map_shared: negative length";
  if effective_jobs jobs = 1 || n <= 1 || Domain.DLS.get inside_batch then Array.init n f
  else map_in (shared ()) ~jobs n f
