(* Hand-rolled domain pool (domainslib is not available in this
   environment). A parallel region spawns [jobs - 1] fresh domains plus
   the calling domain, runs the worker body on each, joins, and
   re-raises the first exception. Domain spawn costs tens of
   microseconds, negligible against the second-scale regions (Monte
   Carlo batches, sweep cells) this repository parallelises, so no
   resident worker threads are kept around. *)

let available_jobs () = max 1 (Domain.recommended_domain_count ())

let run ~jobs body =
  if jobs < 1 then invalid_arg "Pool.run: jobs < 1";
  if jobs = 1 then body ~worker:0
  else begin
    let failed = Atomic.make None in
    let guarded worker () =
      try body ~worker
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set failed None (Some (e, bt)))
    in
    let domains = List.init (jobs - 1) (fun i -> Domain.spawn (guarded (i + 1))) in
    guarded 0 ();
    List.iter Domain.join domains;
    match Atomic.get failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let map ~jobs n f =
  if jobs < 1 then invalid_arg "Pool.map: jobs < 1";
  if n < 0 then invalid_arg "Pool.map: negative length";
  if jobs = 1 || n <= 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let stop = Atomic.make false in
    run ~jobs:(min jobs n) (fun ~worker:_ ->
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n && not (Atomic.get stop) then begin
            (try results.(i) <- Some (f i)
             with e ->
               Atomic.set stop true;
               raise e);
            loop ()
          end
        in
        loop ());
    Array.map (function Some v -> v | None -> assert false) results
  end
