(** Minimal hand-rolled domain pool for OCaml 5 multicore.

    Two flavours are provided.

    The {e legacy per-region} API ({!run} / {!map}) runs a worker body
    on [jobs] domains — the caller plus [jobs - 1] freshly spawned
    ones — and joins them all before returning, re-raising the first
    worker exception. With [jobs = 1] everything runs inline on the
    caller, with no domain machinery in the way, so sequential
    behaviour is exactly the pre-parallel code path. It never clamps
    [jobs] and spawns fresh domains on every call: fine for
    second-scale regions, wasteful for millisecond-scale ones.

    The {e resident pool} ({!create} / {!run_in} / {!map_in}, and the
    process-wide {!shared} pool behind {!run_shared} / {!map_shared})
    spawns its helper domains once and parks them between batches, so
    repeated small parallel regions — per-superchain placement DPs,
    degrade/cloud replan loops, daemon request batches — pay the spawn
    cost once instead of per call. Batches additionally clamp their
    width to {!available_jobs}, so an oversubscribed [--jobs] degrades
    to the sequential inline path instead of thrashing one core with
    many domains. Nested submissions from inside a batch body run
    inline sequentially rather than deadlocking.

    The pool makes no determinism promises by itself: workers race for
    work. Determinism is the {e caller's} job and is achieved in this
    repository by deriving all randomness from the work-item index
    ({!Ckpt_prob.Rng.for_trial}) and reducing partial results in a
    fixed order — see {!Ckpt_eval.Montecarlo}. *)

val available_jobs : unit -> int
(** The runtime's recommended domain count (at least 1) — a sensible
    default for a [--jobs] flag. *)

val effective_jobs : int -> int
(** [effective_jobs jobs] is [jobs] clamped to [[1, available_jobs ()]]
    — the batch width the resident-pool API will actually use. *)

val run : jobs:(int) -> (worker:int -> unit) -> unit
(** [run ~jobs body] executes [body ~worker] on [jobs] domains, with
    [worker] ranging over [0 .. jobs-1] ([0] is the calling domain).
    Returns once every domain finished; if any body raised, the first
    captured exception is re-raised with its backtrace. Spawns fresh
    domains every call and does {e not} clamp [jobs] to the core
    count.

    @raise Invalid_argument when [jobs < 1]. *)

val map : jobs:(int) -> int -> (int -> 'a) -> 'a array
(** [map ~jobs n f] is [Array.init n f] computed by up to [jobs]
    domains claiming indices dynamically; the result array is in index
    order regardless of scheduling. [f] must therefore be safe to call
    concurrently from several domains (with [jobs = 1] it is called
    sequentially, in order, exactly like [Array.init]). When some call
    to [f] raises, workers stop claiming new indices and the first
    exception is re-raised.

    @raise Invalid_argument when [jobs < 1] or [n < 0]. *)

(** {1 Resident pool} *)

type t
(** A long-lived pool of helper domains. Helpers are spawned by
    {!create} and parked on a condition variable between batches;
    {!shutdown} joins them. At most one batch runs at a time per pool;
    concurrent submissions from different domains are safe and simply
    queue on an internal submit lock ([ckptwf serve] connection
    handlers share the one resident pool this way). Submitting from
    {e inside} a running batch body still runs inline. *)

val create : ?jobs:int -> unit -> t
(** [create ?jobs ()] spawns a pool with capacity [jobs] (caller
    included; default {!available_jobs}). [jobs - 1] helper domains
    are spawned immediately and live until {!shutdown}.

    @raise Invalid_argument when [jobs < 1]. *)

val size : t -> int
(** Capacity of the pool (maximum batch width, caller included). *)

val run_in : t -> jobs:int -> (worker:int -> unit) -> unit
(** [run_in t ~jobs body] runs [body ~worker] as one batch on
    [min (effective_jobs jobs) (size t)] domains of the pool —
    the caller plus parked helpers — and returns once all are done,
    re-raising the first worker exception. When the clamped width is 1,
    or when called from inside a batch body, [body ~worker:0] runs
    inline on the caller with no synchronisation. Concurrent callers
    on different domains serialise: each waits its turn for the whole
    pool rather than interleaving batches.

    @raise Invalid_argument when [jobs < 1] or [t] was shut down. *)

val map_in : t -> jobs:int -> int -> (int -> 'a) -> 'a array
(** [map_in t ~jobs n f] is {!map} executed as a single batch on the
    resident pool: [Array.init n f] with dynamic index claiming,
    results in index order, first exception re-raised.

    @raise Invalid_argument when [jobs < 1] or [n < 0]. *)

val shutdown : t -> unit
(** Stop and join the pool's helper domains. Idempotent. Subsequent
    {!run_in}/{!map_in} submissions raise [Invalid_argument]. *)

(** {1 The process-wide shared pool} *)

val shared : unit -> t
(** The lazily created process-wide pool, sized {!available_jobs}.
    Created on first use; lives for the rest of the process (helper
    domains park idle between batches and cost nothing measurable). *)

val run_shared : jobs:int -> (worker:int -> unit) -> unit
(** [run_shared ~jobs body] is [run_in (shared ()) ~jobs body], except
    that when [effective_jobs jobs = 1] the shared pool is not even
    created and [body ~worker:0] runs inline.

    @raise Invalid_argument when [jobs < 1]. *)

val map_shared : jobs:int -> int -> (int -> 'a) -> 'a array
(** [map_shared ~jobs n f] is [map_in (shared ()) ~jobs n f], with the
    same inline short-circuit as {!run_shared}.

    @raise Invalid_argument when [jobs < 1] or [n < 0]. *)
