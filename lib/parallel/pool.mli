(** Minimal hand-rolled domain pool for OCaml 5 multicore.

    A parallel region runs a worker body on [jobs] domains — the caller
    plus [jobs - 1] freshly spawned ones — and joins them all before
    returning, re-raising the first worker exception. With [jobs = 1]
    everything runs inline on the caller, with no domain machinery in
    the way, so sequential behaviour is exactly the pre-parallel code
    path.

    The pool makes no determinism promises by itself: workers race for
    work. Determinism is the {e caller's} job and is achieved in this
    repository by deriving all randomness from the work-item index
    ({!Ckpt_prob.Rng.for_trial}) and reducing partial results in a
    fixed order — see {!Ckpt_eval.Montecarlo}. *)

val available_jobs : unit -> int
(** The runtime's recommended domain count (at least 1) — a sensible
    default for a [--jobs] flag. *)

val run : jobs:(int) -> (worker:int -> unit) -> unit
(** [run ~jobs body] executes [body ~worker] on [jobs] domains, with
    [worker] ranging over [0 .. jobs-1] ([0] is the calling domain).
    Returns once every domain finished; if any body raised, the first
    captured exception is re-raised with its backtrace.

    @raise Invalid_argument when [jobs < 1]. *)

val map : jobs:(int) -> int -> (int -> 'a) -> 'a array
(** [map ~jobs n f] is [Array.init n f] computed by up to [jobs]
    domains claiming indices dynamically; the result array is in index
    order regardless of scheduling. [f] must therefore be safe to call
    concurrently from several domains (with [jobs = 1] it is called
    sequentially, in order, exactly like [Array.init]). When some call
    to [f] raises, workers stop claiming new indices and the first
    exception is re-raised.

    @raise Invalid_argument when [jobs < 1] or [n < 0]. *)
