(** Residual workflow after a permanent processor loss.

    At the instant of loss, every segment whose checkpoint committed
    has all of its output data on stable storage (Figure 4 semantics:
    the checkpoint saved every executed-but-unsaved file with a pending
    consumer). The tasks of those segments are {e done}; what remains
    is the sub-DAG induced by the other tasks, with one twist — an edge
    from a done task into the residual carries a file that now lives on
    stable storage, so the consumer re-reads it from there on every
    execution attempt, exactly like an initial input. That re-read is
    the migration cost: a surviving processor picking up the work of
    the dead one pays for pulling the checkpointed data back in.

    A checkpointed file consumed by several residual tasks is charged
    once per consumer (initial inputs carry no file identity); the
    repaired plan's expected makespan is thus a slight upper bound when
    such sharing exists — conservative, never optimistic. *)

module Dag = Ckpt_dag.Dag

val build :
  ?readable:(int -> bool) -> dag:Dag.t -> done_:bool array -> unit -> Dag.t * int array
(** [build ~dag ~done_] is the residual workflow over the tasks [t]
    with [done_.(t) = false], plus the mapping from residual task ids
    back to original ones. Internal edges keep their files (sharing
    preserved); original initial inputs are kept; edges from done
    producers become initial inputs of their consumers (the migration
    re-reads).

    [readable] (default: everything) is the unreliable-storage hook: a
    done task whose checkpoint no longer reads back valid
    ([readable t = false]) is {e not} treated as done — it rejoins the
    residual, its consumers take ordinary edges from its re-execution
    instead of stable-storage re-reads, and the cascade is transitive
    through {!Ckpt_dag.Dag.induced} (its own saved inputs are still
    re-read from storage). [readable] is only consulted on tasks with
    [done_.(t) = true].

    @raise Invalid_argument if [done_] does not match the DAG's task
    count or if every task is done (nothing left to plan). *)
