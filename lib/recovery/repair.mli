(** Online schedule repair after a permanent processor loss.

    At the loss instant the residual workflow ({!Residual}) is replanned
    from scratch on the surviving processor set: M-SPG recognition
    (dummy-completing incomplete bipartite blocks if needed), ALLOCATE /
    PROPMAP list scheduling (Algorithm 1) and the O(n²) checkpoint DP
    (Algorithm 2) all re-run on the smaller platform. Checkpointed
    inputs of the residual graph are initial inputs, so their re-reads
    — the migration cost of moving a dead processor's work elsewhere —
    flow into the R terms of the DP exactly like any stable-storage
    read.

    Replanning can fail (no survivors, residual graph not recognisable
    even with completion); callers then fall back to restarting the
    whole workflow from scratch on the survivors. *)

module Dag = Ckpt_dag.Dag
module Platform = Ckpt_platform.Platform
module Strategy = Ckpt_core.Strategy

type t = {
  plan : Strategy.plan;  (** repaired plan over the residual workflow *)
  task_of : int array;  (** residual task id -> original task id *)
  phys : int array;  (** plan processor index -> physical processor id *)
  dummy_edges : int;  (** dummy edges added to complete the residual *)
}

val replan :
  ?readable:(int -> bool) ->
  ?replicas:int ->
  kind:Strategy.kind ->
  dag:Dag.t ->
  done_:bool array ->
  survivors:int list ->
  platform:Platform.t ->
  unit ->
  (t, string) result
(** [replan ~kind ~dag ~done_ ~survivors ~platform ()] replans the
    tasks of [dag] not yet checkpointed ([done_]) on the [survivors]
    (physical processor ids of [platform], ascending). The repaired
    plan runs on a heterogeneous sub-platform keeping each survivor's
    own failure rate and the storage bandwidth; [phys] maps its
    processor indices back to physical ids. [kind] is the checkpoint
    policy the replan applies (CKPTSOME re-runs the optimal DP).

    [readable] ({!Residual.build}) stops a corrupt-committed checkpoint
    from being treated as done — its producers are re-scheduled;
    [replicas] prices the repaired plan's commits at [k·C]
    ({!Strategy.plan}). Never raises on unplannable input — returns
    [Error] instead. *)
