module Rng = Ckpt_prob.Rng

let draw rng ~processors ~lambda_death ~max_losses =
  if processors < 1 then invalid_arg "Mortality.draw: processors < 1";
  if lambda_death < 0. then invalid_arg "Mortality.draw: negative rate";
  if max_losses < 0 then invalid_arg "Mortality.draw: negative max_losses";
  if lambda_death = 0. || max_losses = 0 then Array.make processors infinity
  else begin
    let deaths =
      Array.init processors (fun _ -> Rng.exponential rng ~rate:lambda_death)
    in
    if max_losses >= processors then deaths
    else begin
      (* censor to the [max_losses] earliest instants, ties by id *)
      let order = Array.init processors (fun p -> (deaths.(p), p)) in
      Array.sort compare order;
      let censored = Array.make processors infinity in
      for k = 0 to max_losses - 1 do
        let d, p = order.(k) in
        censored.(p) <- d
      done;
      censored
    end
  end

let survivors deaths ~after =
  let alive = ref [] in
  for p = Array.length deaths - 1 downto 0 do
    if deaths.(p) > after then alive := p :: !alive
  done;
  !alive
