module Rng = Ckpt_prob.Rng

let draw rng ~processors ~lambda_death ~max_losses =
  if processors < 1 then invalid_arg "Mortality.draw: processors < 1";
  if lambda_death < 0. then invalid_arg "Mortality.draw: negative rate";
  if max_losses < 0 then invalid_arg "Mortality.draw: negative max_losses";
  if lambda_death = 0. || max_losses = 0 then Array.make processors infinity
  else begin
    let deaths =
      Array.init processors (fun _ -> Rng.exponential rng ~rate:lambda_death)
    in
    if max_losses >= processors then deaths
    else begin
      (* censor to the [max_losses] earliest instants, ties by id *)
      let order = Array.init processors (fun p -> (deaths.(p), p)) in
      Array.sort compare order;
      let censored = Array.make processors infinity in
      for k = 0 to max_losses - 1 do
        let d, p = order.(k) in
        censored.(p) <- d
      done;
      censored
    end
  end

type revocation = { warn : float; kill : float }

(* Spot-instance revocations: per-processor exponential kill instants
   (heterogeneous rates — the discount-buys-risk law prices flakier
   instances cheaper), each preceded by a warning [grace] seconds
   earlier. The draw layout mirrors [draw] exactly: one exponential
   per positive-rate processor in processor order, then censoring to
   the earliest [max_revocations]; all-zero rates consume no
   randomness, so an unpriced run is bitwise a plain mortality run. *)
let draw_revocations rng ~rates ~grace ~max_revocations =
  let processors = Array.length rates in
  if processors < 1 then invalid_arg "Mortality.draw_revocations: no processors";
  Array.iter
    (fun r -> if r < 0. then invalid_arg "Mortality.draw_revocations: negative rate")
    rates;
  if grace < 0. then invalid_arg "Mortality.draw_revocations: negative grace";
  if max_revocations < 0 then
    invalid_arg "Mortality.draw_revocations: negative max_revocations";
  let all_zero = Array.for_all (fun r -> r = 0.) rates in
  let kills =
    if all_zero || max_revocations = 0 then Array.make processors infinity
    else begin
      let kills =
        Array.init processors (fun p ->
            if rates.(p) = 0. then infinity else Rng.exponential rng ~rate:rates.(p))
      in
      if max_revocations >= processors then kills
      else begin
        (* censor to the [max_revocations] earliest instants, ties by id *)
        let order = Array.init processors (fun p -> (kills.(p), p)) in
        Array.sort compare order;
        let censored = Array.make processors infinity in
        for k = 0 to max_revocations - 1 do
          let d, p = order.(k) in
          censored.(p) <- d
        done;
        censored
      end
    end
  in
  Array.map
    (fun kill ->
      if kill = infinity then { warn = infinity; kill }
      else { warn = Float.max 0. (kill -. grace); kill })
    kills

let eviction_survivors revs ~after =
  let alive = ref [] in
  for p = Array.length revs - 1 downto 0 do
    if revs.(p).warn > after then alive := p :: !alive
  done;
  !alive

let survivors deaths ~after =
  let alive = ref [] in
  for p = Array.length deaths - 1 downto 0 do
    if deaths.(p) > after then alive := p :: !alive
  done;
  !alive
