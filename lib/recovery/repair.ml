module Dag = Ckpt_dag.Dag
module Recognize = Ckpt_mspg.Recognize
module Platform = Ckpt_platform.Platform
module Allocate = Ckpt_core.Allocate
module Strategy = Ckpt_core.Strategy

type t = {
  plan : Strategy.plan;
  task_of : int array;
  phys : int array;
  dummy_edges : int;
}

let replan ?readable ?replicas ~kind ~dag ~done_ ~survivors ~platform () =
  match survivors with
  | [] -> Error "no surviving processors"
  | _ -> (
      try
        let residual, task_of = Residual.build ?readable ~dag ~done_ () in
        let mspg, dummy_edges =
          (* one completing pass: with 0 dummies the tree is the plain
             recognition's, reattached to the uncopied residual *)
          match Recognize.of_dag_completed residual with
          | Ok (m, 0) -> ({ Ckpt_mspg.Mspg.dag = residual; tree = m.Ckpt_mspg.Mspg.tree }, 0)
          | Ok (m, k) -> (m, k)
          | Error msg -> failwith msg
        in
        let phys = Array.of_list survivors in
        let rates = Array.map (Platform.rate_of platform) phys in
        (* the survivor sub-platform keeps each survivor's own speed and
           price, so the Algorithm-2 DP costs of the repaired plan are
           scaled by the processors it actually runs on *)
        let speeds =
          if Platform.uniform_speed platform then None
          else Some (Array.map (Platform.speed_of platform) phys)
        in
        let prices =
          match platform.Platform.prices with
          | None -> None
          | Some _ -> Some (Array.map (Platform.price_of platform) phys)
        in
        let sub_platform =
          Platform.make_heterogeneous ?speeds ?prices ~rates
            ~bandwidth:platform.Platform.bandwidth ()
        in
        let schedule = Allocate.run mspg ~processors:(Array.length phys) in
        let plan =
          Strategy.plan ?replicas kind ~raw:residual ~schedule ~platform:sub_platform
        in
        Ok { plan; task_of; phys; dummy_edges }
      with
      | Failure msg -> Error msg
      | Invalid_argument msg -> Error msg)
