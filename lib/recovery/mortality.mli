(** Permanent-failure (processor-death) model.

    Beyond the paper's transient fail-stop errors, each processor can
    die {e permanently}: it draws an exponential death instant at rate
    [lambda_death] and never repairs. In-memory work on a dead
    processor is lost; checkpointed outputs survive on stable storage.

    Expected makespans stay finite by bounding the number of deaths
    that actually occur: only the [max_losses] earliest drawn instants
    take effect (operations replace machines after that), the rest are
    pushed to [infinity]. With unbounded deaths, every trial would
    strand with positive probability and the expectation would be
    infinite. *)

val draw :
  Ckpt_prob.Rng.t ->
  processors:int ->
  lambda_death:float ->
  max_losses:int ->
  float array
(** [draw rng ~processors ~lambda_death ~max_losses] returns one death
    instant per processor, drawn in processor order (so the schedule of
    draws is a pure function of the generator state), then censored to
    the [max_losses] earliest (ties broken by processor id). A rate of
    [0.] yields all-[infinity].

    @raise Invalid_argument if [processors < 1], [lambda_death < 0.] or
    [max_losses < 0]. *)

type revocation = { warn : float; kill : float }
(** A spot revocation: the platform announces at [warn] that the
    instance dies at [kill] ([kill - warn] is the grace period,
    truncated at instant 0 for kills inside the first grace window).
    An unrevoked processor has both at [infinity]. *)

val draw_revocations :
  Ckpt_prob.Rng.t ->
  rates:float array ->
  grace:float ->
  max_revocations:int ->
  revocation array
(** One revocation per processor: kill instants are exponential at the
    per-processor [rates] (drawn in processor order, skipping
    zero-rate — on-demand — processors), censored to the
    [max_revocations] earliest (ties by processor id), and each finite
    kill is preceded by a warning [grace] seconds earlier
    ([warn = max 0 (kill - grace)], so [grace = 0.] degenerates to an
    unannounced kill). All-zero [rates] or [max_revocations = 0]
    consume no randomness. With uniform positive rates the kill
    instants are bitwise those of {!draw}.

    @raise Invalid_argument on an empty or negative [rates] array, a
    negative [grace], or a negative [max_revocations]. *)

val eviction_survivors : revocation array -> after:float -> int list
(** Processors whose {e warning} lies strictly beyond [after], in
    ascending id order — the set a replan started at [after] may use.
    Stricter than {!survivors} on kills: a warned instance is draining
    and must not receive new work. *)

val survivors : float array -> after:float -> int list
(** Processors whose death instant lies strictly beyond [after], in
    ascending id order — the processor set available to a replan
    started at instant [after]. Includes processors that died {e idle}:
    a machine lost while it had no work is equally unavailable later. *)
