(** Permanent-failure (processor-death) model.

    Beyond the paper's transient fail-stop errors, each processor can
    die {e permanently}: it draws an exponential death instant at rate
    [lambda_death] and never repairs. In-memory work on a dead
    processor is lost; checkpointed outputs survive on stable storage.

    Expected makespans stay finite by bounding the number of deaths
    that actually occur: only the [max_losses] earliest drawn instants
    take effect (operations replace machines after that), the rest are
    pushed to [infinity]. With unbounded deaths, every trial would
    strand with positive probability and the expectation would be
    infinite. *)

val draw :
  Ckpt_prob.Rng.t ->
  processors:int ->
  lambda_death:float ->
  max_losses:int ->
  float array
(** [draw rng ~processors ~lambda_death ~max_losses] returns one death
    instant per processor, drawn in processor order (so the schedule of
    draws is a pure function of the generator state), then censored to
    the [max_losses] earliest (ties broken by processor id). A rate of
    [0.] yields all-[infinity].

    @raise Invalid_argument if [processors < 1], [lambda_death < 0.] or
    [max_losses < 0]. *)

val survivors : float array -> after:float -> int list
(** Processors whose death instant lies strictly beyond [after], in
    ascending id order — the processor set available to a replan
    started at instant [after]. Includes processors that died {e idle}:
    a machine lost while it had no work is equally unavailable later. *)
