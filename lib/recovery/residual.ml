module Dag = Ckpt_dag.Dag

let build ?(readable = fun _ -> true) ~dag ~done_ () =
  let n = Dag.n_tasks dag in
  if Array.length done_ <> n then invalid_arg "Residual.build: done_ size mismatch";
  (* a committed checkpoint only counts as progress while it still
     reads back valid: an unreadable (corrupt) done task rejoins the
     residual, and its consumers read from its re-execution instead of
     from stable storage *)
  let saved t = done_.(t) && readable t in
  let remaining = ref [] in
  for t = n - 1 downto 0 do
    if not (saved t) then remaining := t :: !remaining
  done;
  if !remaining = [] then invalid_arg "Residual.build: every task is done";
  let sub, task_of = Dag.induced dag !remaining in
  (* [Dag.induced] keeps internal edges and their file sharing but
     drops initial inputs and cross-boundary edges: restore the former,
     turn the latter into stable-storage re-reads *)
  Array.iteri
    (fun nid oid ->
      List.iter (fun size -> Dag.add_input sub nid size) (Dag.inputs dag oid);
      List.iter
        (fun (src, (file : Dag.file)) ->
          if saved src then Dag.add_input sub nid file.Dag.size)
        (Dag.preds dag oid))
    task_of;
  (sub, task_of)
