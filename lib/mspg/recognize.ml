module Dag = Ckpt_dag.Dag
module Csr = Ckpt_dag.Compiled

exception Reject of string

(* The recogniser runs on an immutable CSR compilation of the DAG
   (flat successor/predecessor int arrays) plus a fixed set of
   epoch-stamped scratch arrays: a slot is "set" iff it carries the
   array's current epoch, so clearing between uses is a single integer
   increment instead of an O(n) sweep or a fresh Hashtbl. Vertex sets
   are still sorted int lists of task ids at the API boundary — the
   recursion hands disjoint subsets down, so one scratch set suffices.

   The decomposition logic is a line-for-line port of the list/Hashtbl
   reference: candidate orders, cut selection and tie-breaking are
   unchanged, so the produced trees (and any dummy completion edges)
   are identical — only the constant factor moved.

   Dummy completion edges are appended to the mutable DAG but not to
   the CSR snapshot: a dummy edge always crosses the cut being
   completed, and the recursion descends into the two sides
   separately, so a membership-restricted neighbourhood scan never
   reaches a stale edge. *)

type ctx = {
  dag : Dag.t;
  csr : Csr.t;
  n : int;
  complete : bool;
  dummies : int ref;
  (* epoch-stamped scratch (one slot per task id) *)
  member : int array;
  mutable member_epoch : int;
  closure : int array;
  mutable closure_epoch : int;
  mark1 : int array;
  mutable mark1_epoch : int;
  mark2 : int array;
  mutable mark2_epoch : int;
  outset : int array;
  mutable outset_epoch : int;
  comp : int array;  (* component id, valid under comp_stamp *)
  comp_stamp : int array;
  mutable comp_epoch : int;
  level : int array;
  indeg : int array;
  queue : int array;  (* shared BFS worklist, capacity n *)
}

let make_ctx dag ~complete =
  let csr = Csr.of_dag dag in
  let n = Csr.n_tasks csr in
  {
    dag;
    csr;
    n;
    complete;
    dummies = ref 0;
    member = Array.make n 0;
    member_epoch = 0;
    closure = Array.make n 0;
    closure_epoch = 0;
    mark1 = Array.make n 0;
    mark1_epoch = 0;
    mark2 = Array.make n 0;
    mark2_epoch = 0;
    outset = Array.make n 0;
    outset_epoch = 0;
    comp = Array.make n (-1);
    comp_stamp = Array.make n 0;
    comp_epoch = 0;
    level = Array.make n 0;
    indeg = Array.make n 0;
    queue = Array.make n 0;
  }

let set_member ctx verts =
  ctx.member_epoch <- ctx.member_epoch + 1;
  let e = ctx.member_epoch in
  List.iter (fun v -> ctx.member.(v) <- e) verts;
  e

let in_member ctx e v = ctx.member.(v) = e

(* Member-restricted successor ids of [u], duplicates from parallel
   file edges preserved, destination-sorted — the same sequence the
   list-based [Dag.succ_ids] filter produced. *)
let restrict_succs ctx e u =
  let csr = ctx.csr in
  let acc = ref [] in
  for k = csr.Csr.succ_off.(u + 1) - 1 downto csr.Csr.succ_off.(u) do
    let v = csr.Csr.succ_tgt.(k) in
    if in_member ctx e v then acc := v :: !acc
  done;
  !acc

let restrict_preds ctx e u =
  let csr = ctx.csr in
  let acc = ref [] in
  for k = csr.Csr.pred_off.(u + 1) - 1 downto csr.Csr.pred_off.(u) do
    let v = csr.Csr.pred_src.(k) in
    if in_member ctx e v then acc := v :: !acc
  done;
  !acc

(* Weakly connected components of the sub-DAG induced by [verts],
   listed in order of first appearance, members in [verts] order. *)
let components ctx verts =
  let e = set_member ctx verts in
  ctx.comp_epoch <- ctx.comp_epoch + 1;
  let ce = ctx.comp_epoch in
  let csr = ctx.csr in
  let queue = ctx.queue in
  let next = ref 0 in
  let bfs seed id =
    ctx.comp.(seed) <- id;
    ctx.comp_stamp.(seed) <- ce;
    queue.(0) <- seed;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      let visit v =
        if in_member ctx e v && ctx.comp_stamp.(v) <> ce then begin
          ctx.comp.(v) <- id;
          ctx.comp_stamp.(v) <- ce;
          queue.(!tail) <- v;
          incr tail
        end
      in
      for k = csr.Csr.succ_off.(u) to csr.Csr.succ_off.(u + 1) - 1 do
        visit csr.Csr.succ_tgt.(k)
      done;
      for k = csr.Csr.pred_off.(u) to csr.Csr.pred_off.(u + 1) - 1 do
        visit csr.Csr.pred_src.(k)
      done
    done
  in
  List.iter
    (fun v ->
      if ctx.comp_stamp.(v) <> ce then begin
        bfs v !next;
        incr next
      end)
    verts;
  let buckets = Array.make !next [] in
  List.iter (fun v -> buckets.(ctx.comp.(v)) <- v :: buckets.(ctx.comp.(v))) (List.rev verts);
  Array.to_list buckets

(* Mark the descendants of [seeds] within the member set, seeds
   included; returns the closure epoch for membership tests and the
   number of marked vertices. *)
let down_closure ctx e seeds =
  ctx.closure_epoch <- ctx.closure_epoch + 1;
  let ce = ctx.closure_epoch in
  let csr = ctx.csr in
  let queue = ctx.queue in
  let tail = ref 0 in
  List.iter
    (fun v ->
      if ctx.closure.(v) <> ce then begin
        ctx.closure.(v) <- ce;
        queue.(!tail) <- v;
        incr tail
      end)
    seeds;
  let head = ref 0 in
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    for k = csr.Csr.succ_off.(u) to csr.Csr.succ_off.(u + 1) - 1 do
      let v = csr.Csr.succ_tgt.(k) in
      if in_member ctx e v && ctx.closure.(v) <> ce then begin
        ctx.closure.(v) <- ce;
        queue.(!tail) <- v;
        incr tail
      end
    done
  done;
  (ce, !tail)

type cut = { v1 : int list; v2 : int list; missing : (int * int) list }
(* [missing] are the sink(V1)-source(V2) pairs lacking an edge: empty
   for a strict (complete-bipartite) cut. When [want_missing] is false
   the list is truncated after the first pair — callers that only test
   strictness never pay for the full enumeration. *)

(* Examine the cut whose V2 is the down-closure of [seed_sources].
   Returns [None] when crossing edges violate the sinks(V1) ->
   sources(V2) discipline; otherwise the cut with its missing pairs. *)
let examine_cut ctx e ~want_missing verts seed_sources =
  let csr = ctx.csr in
  let ce, _ = down_closure ctx e seed_sources in
  let in_v2 v = ctx.closure.(v) = ce in
  let v1 = List.filter (fun v -> not (in_v2 v)) verts in
  if v1 = [] then None
  else begin
    let v2 = List.filter in_v2 verts in
    let sinks1 =
      List.filter
        (fun u ->
          let ok = ref true in
          for k = csr.Csr.succ_off.(u) to csr.Csr.succ_off.(u + 1) - 1 do
            let v = csr.Csr.succ_tgt.(k) in
            if in_member ctx e v && not (in_v2 v) then ok := false
          done;
          !ok)
        v1
    in
    let sources2 =
      List.filter
        (fun v ->
          let any = ref false in
          for k = csr.Csr.pred_off.(v) to csr.Csr.pred_off.(v + 1) - 1 do
            let p = csr.Csr.pred_src.(k) in
            if in_member ctx e p && in_v2 p then any := true
          done;
          not !any)
        v2
    in
    ctx.mark1_epoch <- ctx.mark1_epoch + 1;
    let m1 = ctx.mark1_epoch in
    List.iter (fun u -> ctx.mark1.(u) <- m1) sinks1;
    ctx.mark2_epoch <- ctx.mark2_epoch + 1;
    let m2 = ctx.mark2_epoch in
    List.iter (fun v -> ctx.mark2.(v) <- m2) sources2;
    let ok = ref true in
    List.iter
      (fun u ->
        for k = csr.Csr.succ_off.(u) to csr.Csr.succ_off.(u + 1) - 1 do
          let v = csr.Csr.succ_tgt.(k) in
          if
            in_member ctx e v && in_v2 v
            && not (ctx.mark1.(u) = m1 && ctx.mark2.(v) = m2)
          then ok := false
        done)
      v1;
    if not !ok then None
    else begin
      (* missing pairs: for each sink of V1, the sources of V2 it lacks
         an edge to; enumeration order matches the reference (sinks in
         order, sources in order, pairs prepended) *)
      let missing = ref [] in
      (try
         List.iter
           (fun u ->
             ctx.outset_epoch <- ctx.outset_epoch + 1;
             let oe = ctx.outset_epoch in
             for k = csr.Csr.succ_off.(u) to csr.Csr.succ_off.(u + 1) - 1 do
               let v = csr.Csr.succ_tgt.(k) in
               if in_member ctx e v then ctx.outset.(v) <- oe
             done;
             List.iter
               (fun v ->
                 if ctx.outset.(v) <> oe then begin
                   missing := (u, v) :: !missing;
                   if not want_missing then raise Exit
                 end)
               sources2)
           sinks1
       with Exit -> ());
      Some { v1; v2; missing = !missing }
    end
  end

(* Allocation-free strict-cut test: decides, for the cut whose V2 is
   the down-closure of [seed], whether the reference [examine_cut]
   would return a cut with [missing = []], and if so the size of its
   V1 — without materialising any of the four vertex lists. The cut is
   valid iff every crossing edge leaves a task whose member-successors
   all lie in V2 (a sink of V1) and enters a task with no
   member-predecessor in V2 (a source of V2); it is strict iff the
   distinct crossing pairs number exactly sinks(V1) x sources(V2). *)
let probe_strict_cut ctx e verts nverts seed =
  let csr = ctx.csr in
  let ce, v2_count = down_closure ctx e seed in
  let v1_count = nverts - v2_count in
  if v1_count = 0 then None
  else begin
    let in_v2 v = ctx.closure.(v) = ce in
    (* memoised source-of-V2 test: mark2 = known source under m2 *)
    ctx.mark2_epoch <- ctx.mark2_epoch + 1;
    let m2 = ctx.mark2_epoch in
    ctx.mark1_epoch <- ctx.mark1_epoch + 1;
    let m1 = ctx.mark1_epoch in
    (* mark1 doubles as the "source-status computed" stamp *)
    let is_source v =
      if ctx.mark1.(v) = m1 then ctx.mark2.(v) = m2
      else begin
        ctx.mark1.(v) <- m1;
        let any = ref false in
        for k = csr.Csr.pred_off.(v) to csr.Csr.pred_off.(v + 1) - 1 do
          let p = csr.Csr.pred_src.(k) in
          if in_member ctx e p && in_v2 p then any := true
        done;
        if not !any then ctx.mark2.(v) <- m2;
        not !any
      end
    in
    let nsinks = ref 0 and nsources = ref 0 and npairs = ref 0 in
    match
      List.iter
        (fun u ->
          if in_v2 u then begin
            if is_source u then incr nsources
          end
          else begin
            (* classify u's member-successors; dedup crossing targets
               (parallel file edges) with a per-u outset epoch *)
            ctx.outset_epoch <- ctx.outset_epoch + 1;
            let oe = ctx.outset_epoch in
            let all_in = ref true and any_cross = ref false in
            for k = csr.Csr.succ_off.(u) to csr.Csr.succ_off.(u + 1) - 1 do
              let v = csr.Csr.succ_tgt.(k) in
              if in_member ctx e v then
                if in_v2 v then begin
                  any_cross := true;
                  if ctx.outset.(v) <> oe then begin
                    ctx.outset.(v) <- oe;
                    incr npairs;
                    if not (is_source v) then raise Exit
                  end
                end
                else all_in := false
            done;
            if !all_in then incr nsinks
            else if !any_cross then raise Exit
          end)
        verts
    with
    | () when !npairs = !nsinks * !nsources -> Some v1_count
    | () -> None
    | exception Exit -> None
  end

(* Level of each member task: longest hop-path from a source of the
   sub-DAG, via Kahn propagation (order-independent). *)
let local_levels ctx e verts =
  let csr = ctx.csr in
  let queue = ctx.queue in
  List.iter
    (fun v ->
      let d = ref 0 in
      for k = csr.Csr.pred_off.(v) to csr.Csr.pred_off.(v + 1) - 1 do
        if in_member ctx e csr.Csr.pred_src.(k) then incr d
      done;
      ctx.indeg.(v) <- !d;
      ctx.level.(v) <- 0)
    verts;
  let tail = ref 0 in
  List.iter
    (fun v ->
      if ctx.indeg.(v) = 0 then begin
        queue.(!tail) <- v;
        incr tail
      end)
    verts;
  let head = ref 0 in
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    let lu = ctx.level.(u) in
    for k = csr.Csr.succ_off.(u) to csr.Csr.succ_off.(u + 1) - 1 do
      let v = csr.Csr.succ_tgt.(k) in
      if in_member ctx e v then begin
        if lu + 1 > ctx.level.(v) then ctx.level.(v) <- lu + 1;
        ctx.indeg.(v) <- ctx.indeg.(v) - 1;
        if ctx.indeg.(v) = 0 then begin
          queue.(!tail) <- v;
          incr tail
        end
      end
    done
  done

let rec decompose ctx verts =
  match verts with
  | [] -> invalid_arg "Recognize: empty vertex set"
  | [ v ] -> Mspg.leaf v
  | _ -> (
      match components ctx verts with
      | [] -> assert false
      | _ :: _ :: _ as comps -> Mspg.parallel (List.map (decompose ctx) comps)
      | [ _single ] ->
          (* connected: look for a serial cut *)
          let e = set_member ctx verts in
          (* candidate source sets for V2: the distinct in-subgraph
             successor sets (every strict cut arises this way) *)
          let candidates =
            List.filter_map
              (fun u ->
                match restrict_succs ctx e u with
                | [] -> None
                | s -> Some (List.sort compare s))
              verts
            |> List.sort_uniq compare
          in
          (* probe every candidate allocation-free, keeping the first
             one whose strict cut has the smallest V1 (the reference
             fold's tie-break); only the winner is materialised *)
          let nverts = List.length verts in
          let best = ref None in
          List.iter
            (fun seed ->
              match probe_strict_cut ctx e verts nverts seed with
              | None -> ()
              | Some v1_count -> (
                  match !best with
                  | Some (c0, _) when c0 <= v1_count -> ()
                  | _ -> best := Some (v1_count, seed)))
            candidates;
          (match !best with
          | Some (_, seed) ->
              let cut =
                match examine_cut ctx e ~want_missing:false verts seed with
                | Some c -> c
                | None -> assert false
              in
              Mspg.serial [ decompose ctx cut.v1; decompose ctx cut.v2 ]
          | None when not ctx.complete ->
              raise
                (Reject
                   (Printf.sprintf
                      "connected subgraph of %d tasks admits no valid serial cut"
                      (List.length verts)))
          | None ->
              (* bipartite completion: among the completable level
                 cuts pick the one needing the fewest dummy edges,
                 so genuinely parallel structure away from the
                 incomplete block is not serialised needlessly *)
              local_levels ctx e verts;
              let max_level =
                List.fold_left (fun acc v -> max acc ctx.level.(v)) 0 verts
              in
              let cut_at l =
                let seed =
                  List.filter (fun v -> ctx.level.(v) > l) verts
                  |> List.filter (fun v ->
                         List.for_all
                           (fun p -> ctx.level.(p) <= l)
                           (restrict_preds ctx e v))
                in
                examine_cut ctx e ~want_missing:true verts seed
              in
              let best = ref None in
              for l = 0 to max_level - 1 do
                match cut_at l with
                | None -> ()
                | Some cut -> (
                    let cost = List.length cut.missing in
                    match !best with
                    | Some (c0, _) when c0 <= cost -> ()
                    | _ -> best := Some (cost, cut))
              done;
              (match !best with
              | None ->
                  raise
                    (Reject
                       (Printf.sprintf
                          "connected subgraph of %d tasks is not an M-SPG and not \
                           completable by dummy dependencies"
                          (List.length verts)))
              | Some (_, cut) ->
                  List.iter
                    (fun (u, v) ->
                      Dag.add_edge ctx.dag u v 0.;
                      incr ctx.dummies)
                    cut.missing;
                  Mspg.serial [ decompose ctx cut.v1; decompose ctx cut.v2 ])))

let recognize ~complete dag =
  Dag.check_acyclic dag;
  let n = Dag.n_tasks dag in
  if n = 0 then invalid_arg "Recognize: empty DAG";
  let verts = List.init n (fun i -> i) in
  let ctx = make_ctx dag ~complete in
  match decompose ctx verts with
  | tree -> Ok (tree, !(ctx.dummies))
  | exception Reject msg -> Error msg

let of_dag dag =
  match recognize ~complete:false dag with
  | Ok (tree, _) -> Ok { Mspg.dag; tree }
  | Error m -> Error m

let of_dag_completed dag =
  let copy = Dag.copy dag in
  match recognize ~complete:true copy with
  | Ok (tree, dummies) -> Ok ({ Mspg.dag = copy; tree }, dummies)
  | Error m -> Error m

let is_mspg dag = match of_dag dag with Ok _ -> true | Error _ -> false

let of_dag_gspg dag =
  Dag.check_acyclic dag;
  let reduced_edges = Dag.transitive_reduction_edges dag in
  let n = Dag.n_tasks dag in
  (* count distinct dependencies, not parallel file edges *)
  let all_edges = ref [] in
  for u = 0 to n - 1 do
    List.iter (fun v -> all_edges := (u, v) :: !all_edges) (Dag.succ_ids dag u)
  done;
  let distinct = List.length (List.sort_uniq compare !all_edges) in
  let transitive = distinct - List.length reduced_edges in
  if transitive = 0 then
    match of_dag dag with Ok m -> Ok (m, 0) | Error e -> Error e
  else begin
    (* recognise on a skeleton carrying only the reduced dependencies *)
    let skeleton = Dag.create ~name:(Dag.name dag ^ "/reduced") () in
    for t = 0 to n - 1 do
      let info = Dag.task dag t in
      ignore
        (Dag.add_task skeleton ~name:info.Ckpt_dag.Task.name
           ~weight:info.Ckpt_dag.Task.weight)
    done;
    List.iter (fun (u, v) -> Dag.add_edge skeleton u v 0.) reduced_edges;
    match recognize ~complete:false skeleton with
    | Ok (tree, _) -> Ok ({ Mspg.dag; tree }, transitive)
    | Error m -> Error m
  end

let is_gspg dag = match of_dag_gspg dag with Ok _ -> true | Error _ -> false
