module Strategy = Ckpt_core.Strategy
module Schedule = Ckpt_core.Schedule
module Superchain = Ckpt_core.Superchain
module Placement = Ckpt_core.Placement
module Platform = Ckpt_platform.Platform
module Failure = Ckpt_platform.Failure
module Rng = Ckpt_prob.Rng
module Mortality = Ckpt_recovery.Mortality
module Repair = Ckpt_recovery.Repair
module Pool = Ckpt_parallel.Pool
module Dag = Ckpt_dag.Dag
module Store = Ckpt_storage.Store

type mode = Checkpoint | Replicate

let mode_name = function Checkpoint -> "ckpt" | Replicate -> "replicate"

type config = {
  lambda_revoke : float;
  grace : float;
  max_revocations : int;
  kind : Strategy.kind;
  store : Store.config;
}

type trial = {
  makespan : float;
  revocations : int;
  rescues : int;
  rescued_tasks : int;
  replans : int;
  restarts : int;
  work_lost : float;
  dollar_cost : float;
}

(* For each segment of a plan, the task ids it covers (in the plan's
   own id space). *)
let seg_tasks_of (plan : Strategy.plan) =
  Array.map
    (fun (seg : Placement.segment) ->
      let sc = plan.Strategy.schedule.Schedule.superchains.(seg.Placement.chain) in
      Array.init
        (seg.Placement.last - seg.Placement.first + 1)
        (fun k -> Superchain.task_at sc (seg.Placement.first + k)))
    plan.Strategy.segments

(* Warning-rescue metadata: per segment, the recovery-read span, each
   task's speed-scaled compute span, and the write span of a partial
   checkpoint covering the first k tasks (a [segment_of] cut at task
   k, so files consumed by the segment's own tail count as escaping —
   the tail re-executes elsewhere after the eviction). *)
let rescue_of_plan (plan : Strategy.plan) =
  let dag = plan.Strategy.schedule.Schedule.dag in
  let platform = plan.Strategy.platform in
  let replicas = plan.Strategy.replicas in
  Array.map
    (fun (seg : Placement.segment) ->
      let sc = plan.Strategy.schedule.Schedule.superchains.(seg.Placement.chain) in
      let speed =
        if Platform.uniform_speed platform then 1.
        else Platform.speed_of platform sc.Superchain.processor
      in
      let len = seg.Placement.last - seg.Placement.first + 1 in
      let task_durs =
        Array.init len (fun k ->
            Dag.weight dag (Superchain.task_at sc (seg.Placement.first + k)) /. speed)
      in
      let partial_writes =
        Array.init len (fun k ->
            (Placement.segment_of ~replicas platform dag sc ~first:seg.Placement.first
               ~last:(seg.Placement.first + k))
              .Placement.write)
      in
      { Engine.rread = seg.Placement.read; task_durs; partial_writes })
    plan.Strategy.segments

type replica = { rsegs : Engine.seg array; rwrites : float array }

type prepared = {
  plan : Strategy.plan;
  init_segs : Engine.seg array;
  init_writes : float array;
  init_seg_tasks : int array array;
  init_rescue : Engine.rescue_info array;
  replicas : replica list;
      (* the Setlur-style baseline: the platform split into interleaved
         halves, each running the whole workflow with minimal
         checkpoints (superchain ends only), restart-only *)
  (* structural replan cache, exactly as in {!Degrade}: Repair.replan
     is a pure function of (kind, survivor set, committed frontier) *)
  cache :
    ( string,
      ( Engine.seg array * float array * int array array * Engine.rescue_info array,
        string )
      result )
    Hashtbl.t;
  lock : Mutex.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  use_cache : bool;
}

(* Minimal checkpointing for the replication baseline: a period beyond
   any superchain length places one checkpoint per superchain, at its
   end. *)
let minimal_kind = Strategy.Ckpt_every 1_000_000

let replica_of_half (plan : Strategy.plan) half =
  let raw = plan.Strategy.raw_dag in
  let done_ = Array.make (Dag.n_tasks raw) false in
  match
    Repair.replan ~replicas:plan.Strategy.replicas ~kind:minimal_kind ~dag:raw ~done_
      ~survivors:half ~platform:plan.Strategy.platform ()
  with
  | Error msg -> invalid_arg ("Cloud.prepare: replica plan failed: " ^ msg)
  | Ok r ->
      let rsegs =
        Array.map
          (fun (s : Engine.seg) ->
            { s with Engine.processor = r.Repair.phys.(s.Engine.processor) })
          (Runner.segs_of_plan r.Repair.plan)
      in
      { rsegs; rwrites = Runner.writes_of_plan r.Repair.plan }

let prepare ?(cache = true) (plan : Strategy.plan) =
  if plan.Strategy.prob_dag = None then
    invalid_arg "Cloud.prepare: a CKPTNONE plan has no checkpoints to recover from";
  let nprocs = plan.Strategy.platform.Platform.processors in
  let all = List.init nprocs Fun.id in
  let halves =
    List.filter
      (fun l -> l <> [])
      [
        List.filter (fun p -> p mod 2 = 0) all; List.filter (fun p -> p mod 2 = 1) all;
      ]
  in
  {
    plan;
    init_segs = Runner.segs_of_plan plan;
    init_writes = Runner.writes_of_plan plan;
    init_seg_tasks = seg_tasks_of plan;
    init_rescue = rescue_of_plan plan;
    replicas = List.map (replica_of_half plan) halves;
    cache = Hashtbl.create 64;
    lock = Mutex.create ();
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    use_cache = cache;
  }

let cache_stats prepared = (Atomic.get prepared.hits, Atomic.get prepared.misses)

(* kind + survivor list + done_ bitset, packed into a flat string *)
let replan_key ~kind ~survivors ~done_ =
  let buf = Buffer.create (32 + (Array.length done_ / 8)) in
  Buffer.add_string buf (Strategy.kind_name kind);
  Buffer.add_char buf '|';
  List.iter
    (fun p ->
      Buffer.add_string buf (string_of_int p);
      Buffer.add_char buf ',')
    survivors;
  Buffer.add_char buf '|';
  let byte = ref 0 in
  Array.iteri
    (fun i b ->
      if b then byte := !byte lor (1 lsl (i land 7));
      if i land 7 = 7 then begin
        Buffer.add_char buf (Char.chr !byte);
        byte := 0
      end)
    done_;
  if Array.length done_ land 7 <> 0 then Buffer.add_char buf (Char.chr !byte);
  Buffer.contents buf

let compute_replan prepared ~kind ~survivors ~done_ =
  let plan = prepared.plan in
  match
    Repair.replan ~replicas:plan.Strategy.replicas ~kind ~dag:plan.Strategy.raw_dag
      ~done_ ~survivors ~platform:plan.Strategy.platform ()
  with
  | Error msg -> Error msg
  | Ok r ->
      let segs =
        Array.map
          (fun (s : Engine.seg) ->
            { s with Engine.processor = r.Repair.phys.(s.Engine.processor) })
          (Runner.segs_of_plan r.Repair.plan)
      in
      let seg_tasks =
        Array.map (Array.map (fun t -> r.Repair.task_of.(t))) (seg_tasks_of r.Repair.plan)
      in
      Ok
        ( segs,
          Runner.writes_of_plan r.Repair.plan,
          seg_tasks,
          rescue_of_plan r.Repair.plan )

let replan_cached prepared ~kind ~survivors ~done_ =
  if not prepared.use_cache then compute_replan prepared ~kind ~survivors ~done_
  else begin
    let key = replan_key ~kind ~survivors ~done_ in
    let cached =
      Mutex.protect prepared.lock (fun () -> Hashtbl.find_opt prepared.cache key)
    in
    match cached with
    | Some v ->
        Atomic.incr prepared.hits;
        v
    | None ->
        Atomic.incr prepared.misses;
        let v = compute_replan prepared ~kind ~survivors ~done_ in
        Mutex.protect prepared.lock (fun () ->
            if not (Hashtbl.mem prepared.cache key) then Hashtbl.add prepared.cache key v);
        v
  end

let run_trial ~mode config prepared rng =
  if config.max_revocations < 0 then
    invalid_arg "Cloud.run_trial: negative max_revocations";
  if config.lambda_revoke < 0. then invalid_arg "Cloud.run_trial: negative rate";
  if config.grace < 0. then invalid_arg "Cloud.run_trial: negative grace";
  (if config.kind = Strategy.Ckpt_none then
     invalid_arg "Cloud.run_trial: CKPTNONE cannot be a replan policy");
  let plan = prepared.plan in
  let platform = plan.Strategy.platform in
  let nprocs = platform.Platform.processors in
  let raw = plan.Strategy.raw_dag in
  let n = Dag.n_tasks raw in
  (* fixed per-trial randomness, in a mode-independent order (both
     modes see identical worlds): revocations first — the
     discount-buys-risk law scales the base rate per processor — then
     one trace generator per processor, then the storage substreams.
     With revocations off and reliable storage this is bitwise the
     layout of a {!Degrade} trial with no deaths. *)
  let rates =
    Array.init nprocs (fun p ->
        if config.lambda_revoke = 0. then 0.
        else config.lambda_revoke *. Platform.revocation_risk platform p)
  in
  let revs =
    Mortality.draw_revocations rng ~rates ~grace:config.grace
      ~max_revocations:config.max_revocations
  in
  let trace_rngs = Array.init nprocs (fun _ -> Rng.split rng) in
  let traces = Array.make nprocs None in
  let trace_of p =
    match traces.(p) with
    | Some t -> t
    | None ->
        let t = Failure.create trace_rngs.(p) ~lambda:(Platform.rate_of platform p) in
        traces.(p) <- Some t;
        t
  in
  (* a passthrough store draws nothing, ever, so its state may sit on
     a constant throwaway stream; a non-passthrough store takes
     dedicated splits (the second only feeds the baseline's sibling
     replica) *)
  let reliable = Store.passthrough config.store in
  let storage_a =
    if reliable then Store.create config.store (Rng.create 0)
    else Store.create config.store (Rng.split rng)
  in
  let storage_b =
    if reliable then Store.create config.store (Rng.create 0)
    else Store.create config.store (Rng.split rng)
  in
  let warn p = revs.(p).Mortality.warn in
  let kill p = revs.(p).Mortality.kill in
  let bill makespan =
    Platform.billed_cost platform ~until:(fun p -> Float.min (kill p) makespan)
  in
  match mode with
  | Replicate ->
      (* restart-only baseline: each half-platform replica runs the
         whole workflow with minimal checkpoints; a replica whose
         processor is revoked mid-work is lost (warnings unused:
         [warn = kill] skips every rescue), the makespan is the first
         replica to finish *)
      let storages = [ storage_a; storage_b ] in
      let revocations = ref 0 and work_lost = ref 0. and makespan = ref infinity in
      List.iteri
        (fun idx r ->
          let st = List.nth storages (idx mod 2) in
          let rescue =
            Array.map
              (fun (_ : Engine.seg) ->
                { Engine.rread = 0.; task_durs = [||]; partial_writes = [||] })
              r.rsegs
          in
          match
            Engine.execute_until_revocation ~start:0. r.rsegs ~write:r.rwrites ~rescue
              trace_of ~warn:kill ~kill ~store:st
          with
          | Engine.RFinished run ->
              if run.Engine.sfinish < !makespan then makespan := run.Engine.sfinish
          | Engine.RInterrupted { lost; _ } ->
              incr revocations;
              work_lost := !work_lost +. lost)
        prepared.replicas;
      {
        makespan = !makespan;
        revocations = !revocations;
        rescues = 0;
        rescued_tasks = 0;
        replans = 0;
        restarts = 0;
        work_lost = !work_lost;
        dollar_cost = bill !makespan;
      }
  | Checkpoint ->
      let done_ = Array.make n false in
      let task_ckpt = Array.make n None in
      let rec go ~clock ~segs ~writes ~seg_tasks ~rescue ~revocations ~rescues
          ~rescued_tasks ~replans ~restarts ~work_lost =
        match
          Engine.execute_until_revocation ~start:clock segs ~write:writes ~rescue
            trace_of ~warn ~kill ~store:storage_a
        with
        | Engine.RFinished run ->
            {
              makespan = run.Engine.sfinish;
              revocations;
              rescues;
              rescued_tasks;
              replans;
              restarts;
              work_lost;
              dollar_cost = bill run.Engine.sfinish;
            }
        | Engine.RInterrupted { revoked = _; at; kill = _; completed; ckpts; rescue = saved; lost }
          ->
            let revocations = revocations + 1 in
            Array.iteri
              (fun i ok ->
                if ok then
                  Array.iter
                    (fun t ->
                      done_.(t) <- true;
                      task_ckpt.(t) <- ckpts.(i))
                    seg_tasks.(i))
              completed;
            (* credit the warning-committed prefix: its tasks are done
               and their recovery data sits behind the rescue handle,
               so the replan never re-executes them *)
            let rescues, rescued_tasks, work_lost =
              match saved with
              | None -> (rescues, rescued_tasks, work_lost +. lost)
              | Some (i, k, ck) ->
                  let bought = ref 0. in
                  for j = 0 to k - 1 do
                    bought := !bought +. rescue.(i).Engine.task_durs.(j);
                    let t = seg_tasks.(i).(j) in
                    done_.(t) <- true;
                    task_ckpt.(t) <- Some ck
                  done;
                  (rescues + 1, rescued_tasks + k, work_lost +. lost -. !bought)
            in
            (* revalidate the committed frontier before the replan key
               is formed, as in {!Degrade}: latent corruption (or a
               policy-volatile / invalidated handle) revealed here
               rolls the recovery line back *)
            if not reliable then
              for t = 0 to n - 1 do
                if done_.(t) then
                  match task_ckpt.(t) with
                  | Some ck ->
                      if not (Store.recovery_readable storage_a ck ~at) then begin
                        done_.(t) <- false;
                        task_ckpt.(t) <- None
                      end
                  | None -> ()
              done;
            (* eviction-aware: a warned-but-not-yet-killed processor is
               draining and gets no replanned work *)
            let survivors = Mortality.eviction_survivors revs ~after:at in
            if survivors = [] then
              {
                makespan = infinity;
                revocations;
                rescues;
                rescued_tasks;
                replans;
                restarts;
                work_lost;
                dollar_cost = bill infinity;
              }
            else begin
              let continue_with (segs, writes, seg_tasks, rescue) ~replans ~restarts =
                go ~clock:at ~segs ~writes ~seg_tasks ~rescue ~revocations ~rescues
                  ~rescued_tasks ~replans ~restarts ~work_lost
              in
              let from_scratch ~replans ~restarts =
                Array.fill done_ 0 n false;
                Array.fill task_ckpt 0 n None;
                match replan_cached prepared ~kind:config.kind ~survivors ~done_ with
                | Ok v -> continue_with v ~replans ~restarts:(restarts + 1)
                | Error msg ->
                    invalid_arg ("Cloud.run_trial: restart replan failed: " ^ msg)
              in
              match replan_cached prepared ~kind:config.kind ~survivors ~done_ with
              | Ok v -> continue_with v ~replans:(replans + 1) ~restarts
              | Error _ -> from_scratch ~replans ~restarts
            end
      in
      (* a kill inside the first grace window warns at instant 0: those
         processors never receive work — replan on the rest up front *)
      let warned0 = List.filter (fun p -> warn p <= 0.) (List.init nprocs Fun.id) in
      if warned0 = [] then
        go ~clock:0. ~segs:prepared.init_segs ~writes:prepared.init_writes
          ~seg_tasks:prepared.init_seg_tasks ~rescue:prepared.init_rescue ~revocations:0
          ~rescues:0 ~rescued_tasks:0 ~replans:0 ~restarts:0 ~work_lost:0.
      else begin
        let survivors = Mortality.eviction_survivors revs ~after:0. in
        if survivors = [] then
          {
            makespan = infinity;
            revocations = List.length warned0;
            rescues = 0;
            rescued_tasks = 0;
            replans = 0;
            restarts = 0;
            work_lost = 0.;
            dollar_cost = bill infinity;
          }
        else
          match replan_cached prepared ~kind:config.kind ~survivors ~done_ with
          | Error msg -> invalid_arg ("Cloud.run_trial: initial replan failed: " ^ msg)
          | Ok (segs, writes, seg_tasks, rescue) ->
              go ~clock:0. ~segs ~writes ~seg_tasks ~rescue
                ~revocations:(List.length warned0) ~rescues:0 ~rescued_tasks:0
                ~replans:1 ~restarts:0 ~work_lost:0.
      end

(* Work-distribution chunk (see Runner): trials are claimed chunkwise
   by worker domains but derive their randomness from the trial index
   alone, so the partitioning never affects the drawn samples. *)
let chunk_trials = 16

let sample_prepared ?(trials = 200) ?(seed = 11) ?(jobs = 1) ~mode config prepared =
  if trials < 1 then invalid_arg "Cloud.sample: trials < 1";
  if jobs < 1 then invalid_arg "Cloud.sample: jobs < 1";
  let nchunks = (trials + chunk_trials - 1) / chunk_trials in
  let results = Array.make nchunks None in
  let next = Atomic.make 0 in
  Pool.run_shared ~jobs:(min jobs nchunks) (fun ~worker:_ ->
      let rec loop () =
        let c = Atomic.fetch_and_add next 1 in
        if c < nchunks then begin
          let lo = c * chunk_trials in
          let hi = min trials (lo + chunk_trials) in
          results.(c) <-
            Some
              (Array.init (hi - lo) (fun k ->
                   run_trial ~mode config prepared (Rng.for_trial ~seed (lo + k))));
          loop ()
        end
      in
      loop ());
  Array.concat
    (Array.to_list (Array.map (function Some a -> a | None -> assert false) results))

let sample ?trials ?seed ?jobs ~mode config plan =
  sample_prepared ?trials ?seed ?jobs ~mode config (prepare plan)

type summary = {
  trials : int;
  mean_makespan : float;
  mean_revocations : float;
  mean_rescues : float;
  mean_rescued_tasks : float;
  mean_replans : float;
  mean_restarts : float;
  mean_work_lost : float;
  mean_dollar_cost : float;
  stranded : int;
}

let summarize trials =
  let n = Array.length trials in
  if n = 0 then invalid_arg "Cloud.summarize: empty sample";
  let fn = float_of_int n in
  let sum f = Array.fold_left (fun acc t -> acc +. f t) 0. trials in
  {
    trials = n;
    mean_makespan = sum (fun t -> t.makespan) /. fn;
    mean_revocations = sum (fun t -> float_of_int t.revocations) /. fn;
    mean_rescues = sum (fun t -> float_of_int t.rescues) /. fn;
    mean_rescued_tasks = sum (fun t -> float_of_int t.rescued_tasks) /. fn;
    mean_replans = sum (fun t -> float_of_int t.replans) /. fn;
    mean_restarts = sum (fun t -> float_of_int t.restarts) /. fn;
    mean_work_lost = sum (fun t -> t.work_lost) /. fn;
    mean_dollar_cost = sum (fun t -> t.dollar_cost) /. fn;
    stranded =
      Array.fold_left (fun acc t -> if t.makespan = infinity then acc + 1 else acc) 0 trials;
  }
