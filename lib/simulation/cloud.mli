(** Spot-instance revocation on priced heterogeneous platforms.

    The cloud extension of the degraded-mode simulator
    ({!Ckpt_sim.Degrade}): processors are bought at per-processor
    hourly prices, and the discount buys risk — a spot processor at a
    fraction of the on-demand price is revoked proportionally more
    often ({!Ckpt_platform.Platform.revocation_risk}). A revocation is
    announced by a {e warning} [grace] seconds before the kill
    ({!Ckpt_recovery.Mortality.draw_revocations}); the warned
    processor spends the grace window proactively checkpointing its
    in-flight segment's task prefix through the storage layer
    ({!Engine.execute_until_revocation}), then drains. The trial loop
    replans the residual workflow {e eviction-aware} — warned but not
    yet killed processors get no new work — crediting both committed
    and warning-rescued checkpoints, and prices every trial in dollars
    ({!Ckpt_platform.Platform.billed_cost}).

    The baseline is a Setlur-style replication heuristic: the platform
    split into two interleaved halves, each running the whole workflow
    as a replica with minimal checkpoints (superchain ends only),
    restart-only — a replica whose processor is revoked mid-work is
    lost, and the makespan is the first replica to finish.

    Determinism: trial randomness is a pure function of the trial
    index ({!Ckpt_prob.Rng.for_trial}), drawn in a mode-independent
    order (revocations, then one trace substream per processor, then
    the store), so results are bitwise identical for any [jobs] and
    the two modes see identical worlds. With [lambda_revoke = 0.] and
    a passthrough store a trial consumes exactly the randomness of a
    death-free {!Ckpt_sim.Degrade} trial and follows the same
    execution path, bitwise. *)

module Strategy = Ckpt_core.Strategy
module Store = Ckpt_storage.Store

type mode =
  | Checkpoint  (** checkpointing + eviction-aware replanning *)
  | Replicate  (** two half-platform replicas, restart-only *)

val mode_name : mode -> string

type config = {
  lambda_revoke : float;
      (** base revocation rate — the rate an on-demand (full-price)
          processor would see; each processor's actual rate is this
          times its {!Ckpt_platform.Platform.revocation_risk} *)
  grace : float;  (** warning-to-kill window, seconds; 0 = unannounced *)
  max_revocations : int;
      (** only the earliest [max_revocations] drawn kills take effect
          (bounds expected makespans, as {!Ckpt_recovery.Mortality}) *)
  kind : Strategy.kind;  (** replan policy (not CKPTNONE) *)
  store : Store.config;  (** the checkpoint store under everything *)
}

type trial = {
  makespan : float;  (** [infinity] when every processor was revoked *)
  revocations : int;  (** disruptive warnings seen *)
  rescues : int;  (** grace-window checkpoints that committed in time *)
  rescued_tasks : int;  (** tasks saved by those commits *)
  replans : int;
  restarts : int;  (** replan failures that fell back to from-scratch *)
  work_lost : float;
      (** execution time sunk into never-committed segments, net of
          rescued prefixes — the quantity a longer grace shrinks *)
  dollar_cost : float;
      (** every processor billed from provisioning to its revocation
          or the makespan, whichever is first *)
}

type prepared

val prepare : ?cache:bool -> Strategy.plan -> prepared
(** Precomputes engine segments, rescue metadata and the baseline's
    replica plans; [cache] (default true) memoises replans under the
    (kind, survivors, frontier) key, as {!Ckpt_sim.Degrade.prepare}.
    @raise Invalid_argument on a CKPTNONE plan. *)

val cache_stats : prepared -> int * int
(** (hits, misses) of the structural replan cache. *)

val run_trial : mode:mode -> config -> prepared -> Ckpt_prob.Rng.t -> trial

val sample_prepared :
  ?trials:int -> ?seed:int -> ?jobs:int -> mode:mode -> config -> prepared -> trial array

val sample :
  ?trials:int ->
  ?seed:int ->
  ?jobs:int ->
  mode:mode ->
  config ->
  Strategy.plan ->
  trial array
(** [trials] (default 200) Monte-Carlo trials at [seed] (default 11),
    fanned over [jobs] domains; bitwise identical for any [jobs]. *)

type summary = {
  trials : int;
  mean_makespan : float;
  mean_revocations : float;
  mean_rescues : float;
  mean_rescued_tasks : float;
  mean_replans : float;
  mean_restarts : float;
  mean_work_lost : float;
  mean_dollar_cost : float;
  stranded : int;  (** trials that ran out of processors *)
}

val summarize : trial array -> summary
(** @raise Invalid_argument on an empty sample. *)
