module Strategy = Ckpt_core.Strategy
module Schedule = Ckpt_core.Schedule
module Superchain = Ckpt_core.Superchain
module Placement = Ckpt_core.Placement
module Prob_dag = Ckpt_eval.Prob_dag
module Platform = Ckpt_platform.Platform
module Failure = Ckpt_platform.Failure
module Rng = Ckpt_prob.Rng
module Stats = Ckpt_prob.Stats
module Deadline = Ckpt_resilience.Deadline
module Retry = Ckpt_resilience.Retry
module Error = Ckpt_resilience.Error

let segs_of_plan (plan : Strategy.plan) =
  match plan.Strategy.prob_dag with
  | None -> invalid_arg "Runner.segs_of_plan: CKPTNONE has no segments"
  | Some pd ->
      Array.mapi
        (fun idx (seg : Placement.segment) ->
          let sc = plan.Strategy.schedule.Schedule.superchains.(seg.Placement.chain) in
          {
            Engine.processor = sc.Superchain.processor;
            duration = seg.Placement.read +. seg.Placement.work +. seg.Placement.write;
            preds = Prob_dag.preds pd idx;
          })
        plan.Strategy.segments

let sample_makespans ?(trials = 1000) ?(seed = 7) ?(deadline = Deadline.never)
    ?(inject = fun ~trial:_ -> ()) ?retry (plan : Strategy.plan) =
  if trials < 1 then invalid_arg "Runner.simulate: trials < 1";
  let platform = plan.Strategy.platform in
  let master = Rng.create seed in
  let one_trial =
    match plan.Strategy.prob_dag with
    | Some _ ->
        let segs = segs_of_plan plan in
        fun trial_rng ->
          let traces = Hashtbl.create 16 in
          let trace_of p =
            match Hashtbl.find_opt traces p with
            | Some t -> t
            | None ->
                let t = Failure.create trial_rng ~lambda:(Platform.rate_of platform p) in
                Hashtbl.replace traces p t;
                t
          in
          Engine.makespan segs trace_of
    | None ->
        let wpar = plan.Strategy.wpar in
        (* restart semantics: the aggregate failure process over the
           used processors (sum of exponential rates) *)
        let used = Hashtbl.create 16 in
        Array.iter
          (fun (sc : Superchain.t) -> Hashtbl.replace used sc.Superchain.processor ())
          plan.Strategy.schedule.Schedule.superchains;
        let rate =
          Hashtbl.fold (fun p () acc -> acc +. Platform.rate_of platform p) used 0.
        in
        fun trial_rng -> Engine.restart_rate_makespan ~wpar ~rate trial_rng
  in
  let rev_samples = ref [] in
  let completed = ref 0 in
  (try
     for k = 0 to trials - 1 do
       (* deadline cut-off between trials, always keeping at least one
          completed sample so statistics stay well-defined *)
       if k > 0 && Deadline.expired deadline then raise Exit;
       (* the trial's randomness is fixed before any attempt, so a
          retried (fault-injected) trial reproduces the exact makespan
          an undisturbed run would have drawn *)
       let base = Rng.split master in
       let attempt ~attempt:_ =
         inject ~trial:k;
         one_trial (Rng.copy base)
       in
       let v =
         match retry with
         | None -> attempt ~attempt:1
         | Some policy -> (
             match
               Retry.with_retries ~policy ~rng:(Rng.create (seed + k)) attempt
             with
             | Ok v -> v
             | Result.Error e -> Error.raise_ e)
       in
       rev_samples := v :: !rev_samples;
       incr completed
     done
   with Exit -> ());
  Array.of_list (List.rev !rev_samples)

let simulate ?trials ?seed ?deadline ?inject ?retry plan =
  Stats.of_array (sample_makespans ?trials ?seed ?deadline ?inject ?retry plan)

let simulated_expected_makespan ?trials ?seed plan =
  Stats.mean (simulate ?trials ?seed plan)
