module Strategy = Ckpt_core.Strategy
module Schedule = Ckpt_core.Schedule
module Superchain = Ckpt_core.Superchain
module Placement = Ckpt_core.Placement
module Prob_dag = Ckpt_eval.Prob_dag
module Platform = Ckpt_platform.Platform
module Failure = Ckpt_platform.Failure
module Rng = Ckpt_prob.Rng
module Stats = Ckpt_prob.Stats
module Deadline = Ckpt_resilience.Deadline
module Retry = Ckpt_resilience.Retry
module Error = Ckpt_resilience.Error
module Pool = Ckpt_parallel.Pool
module Storage = Ckpt_storage.Storage
module Store = Ckpt_storage.Store

let segs_of_plan (plan : Strategy.plan) =
  match plan.Strategy.prob_dag with
  | None -> invalid_arg "Runner.segs_of_plan: CKPTNONE has no segments"
  | Some pd ->
      Array.mapi
        (fun idx (seg : Placement.segment) ->
          let sc = plan.Strategy.schedule.Schedule.superchains.(seg.Placement.chain) in
          {
            Engine.processor = sc.Superchain.processor;
            duration = seg.Placement.read +. seg.Placement.work +. seg.Placement.write;
            preds = Prob_dag.preds pd idx;
          })
        plan.Strategy.segments

let writes_of_plan (plan : Strategy.plan) =
  match plan.Strategy.prob_dag with
  | None -> invalid_arg "Runner.writes_of_plan: CKPTNONE has no segments"
  | Some _ ->
      Array.map (fun (seg : Placement.segment) -> seg.Placement.write) plan.Strategy.segments

(* Work-distribution chunk: the unit of dynamic claiming by worker
   domains and of deadline checking (one clock read per chunk). Trials
   within a chunk are computed from per-trial generators, so the chunk
   partitioning never affects the drawn samples. *)
let chunk_trials = 128

let sample_makespans ?(trials = 1000) ?(seed = 7) ?(deadline = Deadline.never)
    ?(inject = fun ~trial:_ -> ()) ?retry ?(jobs = 1) (plan : Strategy.plan) =
  if trials < 1 then invalid_arg "Runner.simulate: trials < 1";
  if jobs < 1 then invalid_arg "Runner.simulate: jobs < 1";
  let platform = plan.Strategy.platform in
  (* [make_one_trial ()] builds a per-worker trial function with its
     own preallocated failure-trace table (one slot per processor,
     reset between trials) — no per-trial Hashtbl allocation, and no
     state shared between worker domains *)
  let make_one_trial =
    match plan.Strategy.prob_dag with
    | Some _ ->
        let segs = segs_of_plan plan in
        let nprocs = platform.Platform.processors in
        fun () ->
          let traces = Array.make nprocs None in
          fun trial_rng ->
            Array.fill traces 0 nprocs None;
            let trace_of p =
              match traces.(p) with
              | Some t -> t
              | None ->
                  let t = Failure.create trial_rng ~lambda:(Platform.rate_of platform p) in
                  traces.(p) <- Some t;
                  t
            in
            Engine.makespan segs trace_of
    | None ->
        let wpar = plan.Strategy.wpar in
        (* restart semantics: the aggregate failure process over the
           used processors (sum of exponential rates) *)
        let used = Hashtbl.create 16 in
        Array.iter
          (fun (sc : Superchain.t) -> Hashtbl.replace used sc.Superchain.processor ())
          plan.Strategy.schedule.Schedule.superchains;
        let rate =
          Hashtbl.fold (fun p () acc -> acc +. Platform.rate_of platform p) used 0.
        in
        fun () trial_rng -> Engine.restart_rate_makespan ~wpar ~rate trial_rng
  in
  let nchunks = (trials + chunk_trials - 1) / chunk_trials in
  let results = Array.make nchunks None in
  let next = Atomic.make 0 in
  Pool.run_shared ~jobs:(min jobs nchunks) (fun ~worker:_ ->
      let one_trial = make_one_trial () in
      let rec loop () =
        let c = Atomic.fetch_and_add next 1 in
        (* deadline cut-off between chunks, always keeping at least one
           completed chunk so statistics stay well-defined *)
        if c < nchunks && (c = 0 || not (Deadline.expired deadline)) then begin
          let lo = c * chunk_trials in
          let hi = min trials (lo + chunk_trials) in
          let out = Array.make (hi - lo) 0. in
          for k = lo to hi - 1 do
            (* the trial's randomness is a pure function of (seed, k),
               fixed before any attempt: a retried (fault-injected)
               trial reproduces the exact makespan an undisturbed run
               would have drawn, and so does any worker that ends up
               computing trial k *)
            let base = Rng.for_trial ~seed k in
            let attempt ~attempt:_ =
              inject ~trial:k;
              one_trial (Rng.copy base)
            in
            let v =
              match retry with
              | None -> attempt ~attempt:1
              | Some policy -> (
                  match
                    Retry.with_retries ~policy ~rng:(Rng.create (seed + k)) ~deadline
                      attempt
                  with
                  | Ok v -> v
                  | Result.Error e -> Error.raise_ e)
            in
            out.(k - lo) <- v
          done;
          results.(c) <- Some out;
          loop ()
        end
      in
      loop ());
  (* the completed prefix, in trial order: deterministic for any [jobs]
     (chunks finished beyond a deadline-induced gap are discarded) *)
  let rec prefix i acc =
    if i < nchunks then
      match results.(i) with Some a -> prefix (i + 1) (a :: acc) | None -> acc
    else acc
  in
  Array.concat (List.rev (prefix 0 []))

(* ---------- Monte-Carlo over unreliable stable storage ---------- *)

type storage_trial = {
  makespan : float;
  commit_retries : int;
  commit_exhausted : int;
  corrupt_reads : int;
  rollbacks : int;
  store : Store.stats;
}

(* A stable rendering of everything that determines a plan's
   checkpoint semantics — the segment DAG (processor, duration,
   dependencies) and the per-segment write spans — fed to
   {!Store.fingerprint} as the disk store's DAG structural hash. *)
let plan_signature (plan : Strategy.plan) =
  let segs = segs_of_plan plan in
  let writes = writes_of_plan plan in
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i (s : Engine.seg) ->
      Buffer.add_string buf
        (Printf.sprintf "%d:%d:%Lx:%Lx[%s];" i s.Engine.processor
           (Int64.bits_of_float s.Engine.duration)
           (Int64.bits_of_float writes.(i))
           (String.concat "," (List.map string_of_int s.Engine.preds))))
    segs;
  Buffer.contents buf

(* The storage substream's trial seed: decorrelated from the
   failure-trace streams (which derive from [seed] itself) by a fixed
   tag, so faults never perturb the traces — with faults disabled the
   substream is simply never created and the makespans are bitwise the
   fault-free ones. *)
let storage_seed seed = seed + 0x53544f52 (* "STOR" *)

let sample_storage ?(trials = 1000) ?(seed = 7) ?(jobs = 1) ?inject ?persist ?scope
    ~store (plan : Strategy.plan) =
  Store.validate store;
  if trials < 1 then invalid_arg "Runner.sample_storage: trials < 1";
  if jobs < 1 then invalid_arg "Runner.sample_storage: jobs < 1";
  (match persist with
  | Some _ when jobs > 1 ->
      invalid_arg "Runner.sample_storage: a persistent store needs jobs = 1"
  | _ -> ());
  let platform = plan.Strategy.platform in
  let segs = segs_of_plan plan in
  let writes = writes_of_plan plan in
  let nprocs = platform.Platform.processors in
  let nchunks = (trials + chunk_trials - 1) / chunk_trials in
  let results = Array.make nchunks None in
  let next = Atomic.make 0 in
  Pool.run_shared ~jobs:(min jobs nchunks) (fun ~worker:_ ->
      let traces = Array.make nprocs None in
      let one_trial k =
        Array.fill traces 0 nprocs None;
        let trial_rng = Rng.for_trial ~seed k in
        let trace_of p =
          match traces.(p) with
          | Some t -> t
          | None ->
              let t = Failure.create trial_rng ~lambda:(Platform.rate_of platform p) in
              traces.(p) <- Some t;
              t
        in
        let st =
          Store.create ?inject ?persist ?scope ~trial:k store
            (Rng.for_trial ~seed:(storage_seed seed) k)
        in
        let run = Engine.execute_storage segs ~write:writes trace_of ~store:st in
        let stats = Store.stats st in
        {
          makespan = run.Engine.sfinish;
          commit_retries = stats.Store.commit_retries;
          commit_exhausted = stats.Store.commit_exhausted;
          corrupt_reads = stats.Store.corrupt_reads;
          rollbacks = List.length run.Engine.rollback_log;
          store = stats;
        }
      in
      let rec loop () =
        let c = Atomic.fetch_and_add next 1 in
        if c < nchunks then begin
          let lo = c * chunk_trials in
          let hi = min trials (lo + chunk_trials) in
          results.(c) <- Some (Array.init (hi - lo) (fun k -> one_trial (lo + k)));
          loop ()
        end
      in
      loop ());
  Array.concat
    (Array.to_list (Array.map (function Some a -> a | None -> assert false) results))

let simulate ?trials ?seed ?deadline ?inject ?retry ?jobs plan =
  Stats.of_array (sample_makespans ?trials ?seed ?deadline ?inject ?retry ?jobs plan)

let simulated_expected_makespan ?trials ?seed ?jobs plan =
  Stats.mean (simulate ?trials ?seed ?jobs plan)

let expected_makespan ?(eval = `Mc) ?trials ?seed ?jobs plan =
  match eval with
  | `Analytic ->
      Ckpt_analytic.Analytic.schedule_makespan ~model:Ckpt_analytic.Analytic.Exact plan
  | `Mc -> simulated_expected_makespan ?trials ?seed ?jobs plan
