(** Failure-injected execution of a checkpointed schedule.

    Ground truth for the analytical estimators: unlike the first-order
    model (Eq. 2), the simulator handles {e any} number of failures
    per segment and exact exponential failure instants.

    Execution semantics: each processor runs its checkpointed segments
    in schedule order; a segment starts once its processor is free and
    every predecessor segment has completed (its data then sits on
    stable storage), spends [read + work + write] seconds, and
    completes — unless a failure strikes the processor first, in which
    case the memory content is lost and the attempt restarts from the
    last checkpoint (i.e. the segment's beginning: re-read, re-execute,
    re-write). Reboot time is folded into the recovery read, as in the
    paper's model. The makespan is the last completion time.

    For CKPTNONE the paper's operational interpretation applies: any
    failure on a used processor before the workflow completes restarts
    everything from scratch. *)

type seg = {
  processor : int;
  duration : float;  (** read + work + write, seconds *)
  preds : int list;  (** indices of prerequisite segments *)
}

type attempt = { attempt_start : float; attempt_end : float; failed : bool }
(** One try at a segment: it either reached [attempt_start + duration]
    ([failed = false]) or was cut short by a failure at [attempt_end]. *)

type record = { seg_index : int; seg_processor : int; attempts : attempt list }
(** Execution history of one segment, attempts in chronological order;
    the last one succeeded. *)

type summary = {
  failures : int;  (** attempts cut short by a fail-stop error *)
  wasted_time : float;  (** total time spent in failed attempts *)
  useful_time : float;  (** total time of successful attempts *)
}

val summarize : record array -> summary
(** Aggregate waste accounting over an execution's records. *)

val execute : seg array -> (int -> Ckpt_platform.Failure.t) -> record array * float
(** Full execution: per-segment attempt histories and the makespan.
    Same semantics and preconditions as {!makespan}. *)

val makespan : seg array -> (int -> Ckpt_platform.Failure.t) -> float
(** [makespan segs trace_of_processor] executes the segment DAG
    against the given per-processor failure traces. Segments must be
    topologically ordered (every pred index smaller) and each
    processor's segments must appear in its execution order.

    @raise Invalid_argument if a pred index is not smaller than the
    segment's own index. *)

type outcome =
  | Finished of record array * float
      (** The whole segment DAG completed; the float is the makespan. *)
  | Interrupted of { dead : int; at : float; completed : bool array }
      (** Processor [dead] was lost permanently at instant [at] while it
          still had work; [completed.(i)] tells whether segment [i]'s
          checkpoint committed by then. In-flight work on surviving
          processors is abandoned at the cut as well (the repair planner
          reschedules it and charges the re-reads). *)

val execute_until_death :
  ?start:float ->
  seg array ->
  (int -> Ckpt_platform.Failure.t) ->
  death:(int -> float) ->
  outcome
(** Execution under the permanent-failure model: besides its transient
    fail-stop trace, each processor has a death instant ([infinity] =
    never) after which it executes nothing, forever. Runs the segment
    DAG from wall-clock [start] (default 0; every processor becomes
    free at [start]) and stops at the first {e disruptive} death — the
    earliest death instant of a processor that still had unfinished
    segments. Deaths of processors whose segments all completed earlier
    are harmless: completed segments end in a checkpoint, so their
    outputs survive on stable storage.

    @raise Invalid_argument if a segment is mapped to a processor whose
    death instant is [<= start], or on a non-topological order. *)

(** {1 Execution over the checkpoint store}

    The same semantics with the {!Ckpt_storage.Store} layered on: each
    committed segment leaves a checkpoint handle; starting a segment
    first {e reads} every predecessor checkpoint, and a read that
    fails — all replicas corrupt, or the handle invalidated by the
    store — cascades rollback: the producing segment re-executes from
    {e its} last valid inputs, transitively back to the workflow
    inputs if needed (the recovery line moves back). Detected commit
    failures retry under the storage backoff policy (each retried
    write re-pays the write span); an exhausted policy re-executes the
    whole segment. Reads and writes wait out storage outages; a remote
    store adds its commit/read latency to the clock. Checkpoint
    policies only decide handle {e durability} (what survives a
    recovery line) — policy-skipped commits are volatile but free, so
    simulated timing is policy-independent. With a
    [Store.passthrough] configuration the results are bitwise
    identical to {!execute}. *)

type storage_run = {
  srecords : record array;  (** attempt histories, rollback attempts appended *)
  sfinish : float;  (** makespan: the last commit instant *)
  ckpts : Ckpt_storage.Store.handle option array;
      (** latest committed checkpoint per segment *)
  rollback_log : int list;
      (** segments re-executed by cascading rollback, in chronological
          order — exactly the producers whose recovery read failed
          ({!Ckpt_storage.Store.failed_reads}) *)
}

val execute_storage :
  ?start:float ->
  seg array ->
  write:float array ->
  (int -> Ckpt_platform.Failure.t) ->
  store:Ckpt_storage.Store.t ->
  storage_run
(** [write.(i)] is segment [i]'s (replica-scaled) checkpoint write span
    in seconds — what a retried commit re-pays. Preconditions as
    {!makespan}; additionally raises on a [write] array of the wrong
    size. *)

type storage_outcome =
  | SFinished of storage_run
  | SInterrupted of {
      dead : int;
      at : float;
      completed : bool array;
      ckpts : Ckpt_storage.Store.handle option array;
          (** checkpoint handles of the completed segments (the others
              may hold stale pre-rollback commits — callers must only
              trust [ckpts.(i)] where [completed.(i)], and only across
              a recovery line where the handle is durable) *)
    }

val execute_until_death_storage :
  ?start:float ->
  seg array ->
  write:float array ->
  (int -> Ckpt_platform.Failure.t) ->
  death:(int -> float) ->
  store:Ckpt_storage.Store.t ->
  storage_outcome
(** {!execute_until_death} over unreliable storage: the death-free
    storage-aware execution cut at the first disruptive death. A
    segment counts as completed iff its {e latest} commit precedes the
    cut, so work that was being re-executed by a cascading rollback at
    the loss instant is correctly counted as lost. *)

(** {1 Spot-instance revocation with warnings}

    The cloud extension's loss model: a revoked processor receives a
    {e warning} at [warn p] and is killed at [kill p]
    ({!Ckpt_recovery.Mortality.revocation}). At the warning it stops
    taking work and spends the grace window trying to proactively
    checkpoint the task prefix of its in-flight segment through the
    storage layer; the rescue stands iff the partial write span {e and}
    the storage commit both land before the kill — grace races [C]. Zero grace ([kill p <= warn p]) skips the attempt — no
    storage traffic, no randomness — making an unannounced revocation
    bitwise a plain {!execute_until_death_storage} death at the same
    instant. *)

type rescue_info = {
  rread : float;  (** recovery-read span at the segment's head *)
  task_durs : float array;
      (** per-task compute spans (speed-scaled), in segment order *)
  partial_writes : float array;
      (** write span of a checkpoint covering the first [k] tasks, at
          index [k - 1] (replica-scaled, like [write]) *)
}

type revocation_outcome =
  | RFinished of storage_run
  | RInterrupted of {
      revoked : int;  (** the processor whose warning cut the run *)
      at : float;  (** the warning instant — the cut *)
      kill : float;  (** its kill instant, [at + grace] *)
      completed : bool array;
      ckpts : Ckpt_storage.Store.handle option array;
      rescue : (int * int * Ckpt_storage.Store.handle) option;
          (** [(segment, k, handle)]: the first [k] tasks of the
              in-flight segment were committed during the grace window
              (an [~interrupt] commit — durable even under the
              on-interrupt policy) *)
      lost : float;
          (** gross execution time sunk into never-committed segments
              before the cut; a successful rescue buys back its prefix
              (callers net it out against [rescue]) *)
    }

val execute_until_revocation :
  ?start:float ->
  seg array ->
  write:float array ->
  rescue:rescue_info array ->
  (int -> Ckpt_platform.Failure.t) ->
  warn:(int -> float) ->
  kill:(int -> float) ->
  store:Ckpt_storage.Store.t ->
  revocation_outcome
(** The revocation-free storage-aware execution cut at the first
    disruptive {e warning} (earliest warning of a processor with
    unfinished segments — a warning after a processor drained is
    harmless). Preconditions as {!execute_storage}; additionally raises
    if a segment is mapped to a processor with [warn p <= start] or on
    a [rescue] array of the wrong size. *)

val restart_makespan :
  wpar:float -> processors:int -> lambda:float -> Ckpt_prob.Rng.t -> float
(** CKPTNONE realisation: repeat attempts of length [wpar]; an
    exponential failure at rate [processors * λ] during an attempt
    aborts it at the failure instant and restarts from scratch. *)

val restart_rate_makespan : wpar:float -> rate:float -> Ckpt_prob.Rng.t -> float
(** Same, parameterised by the aggregate failure rate directly
    (heterogeneous platforms). *)
