module Failure = Ckpt_platform.Failure
module Rng = Ckpt_prob.Rng

type seg = { processor : int; duration : float; preds : int list }

type attempt = { attempt_start : float; attempt_end : float; failed : bool }
type record = { seg_index : int; seg_processor : int; attempts : attempt list }

let execute_from ~start segs trace_of_processor =
  let n = Array.length segs in
  let completion = Array.make n start in
  let records = Array.make n { seg_index = 0; seg_processor = 0; attempts = [] } in
  let proc_free = Hashtbl.create 16 in
  let traces = Hashtbl.create 16 in
  let trace p =
    match Hashtbl.find_opt traces p with
    | Some t -> t
    | None ->
        let t = trace_of_processor p in
        Hashtbl.replace traces p t;
        t
  in
  let finish = ref start in
  for i = 0 to n - 1 do
    let seg = segs.(i) in
    let ready =
      List.fold_left
        (fun acc p ->
          if p >= i then invalid_arg "Engine.makespan: segments not topologically ordered";
          Float.max acc completion.(p))
        start seg.preds
    in
    let free = Option.value ~default:start (Hashtbl.find_opt proc_free seg.processor) in
    let start = Float.max ready free in
    (* retry the segment until an attempt fits before the next failure *)
    let tr = trace seg.processor in
    let rec attempt start acc =
      if seg.duration = 0. then
        (start, List.rev ({ attempt_start = start; attempt_end = start; failed = false } :: acc))
      else begin
        let failure = Failure.next_after tr start in
        if failure < start +. seg.duration then
          attempt failure ({ attempt_start = start; attempt_end = failure; failed = true } :: acc)
        else
          let finish = start +. seg.duration in
          (finish, List.rev ({ attempt_start = start; attempt_end = finish; failed = false } :: acc))
      end
    in
    let done_at, attempts = attempt start [] in
    completion.(i) <- done_at;
    records.(i) <- { seg_index = i; seg_processor = seg.processor; attempts };
    Hashtbl.replace proc_free seg.processor done_at;
    if done_at > !finish then finish := done_at
  done;
  (records, completion, !finish)

let execute segs trace_of_processor =
  let records, _, finish = execute_from ~start:0. segs trace_of_processor in
  (records, finish)

let makespan segs trace_of_processor = snd (execute segs trace_of_processor)

type outcome =
  | Finished of record array * float
  | Interrupted of { dead : int; at : float; completed : bool array }

(* Permanent processor loss. Deaths only remove processors, so up to
   the first death that disrupts this schedule the execution is the
   death-free one; we therefore run the death-free execution and cut
   it at that instant. A death at [d] on processor [p] is disruptive
   iff some segment of [p] completes after [d] (it was mid-flight or
   still queued when the processor died); a death on a processor whose
   segments all finished earlier is harmless — every completed segment
   ends in a checkpoint, so its outputs already sit on stable storage.
   At the cut, exactly the segments with [completion <= d] count as
   completed (checkpoint committed); in-flight work on SURVIVING
   processors is abandoned too — the replanner decides where it
   re-executes and charges the re-reads. *)
let execute_until_death ?(start = 0.) segs trace_of_processor ~death =
  Array.iter
    (fun seg ->
      if death seg.processor <= start then
        invalid_arg "Engine.execute_until_death: segment on an already-dead processor")
    segs;
  let records, completion, finish = execute_from ~start segs trace_of_processor in
  let death_of = Hashtbl.create 16 in
  Array.iter
    (fun seg ->
      if not (Hashtbl.mem death_of seg.processor) then
        Hashtbl.replace death_of seg.processor (death seg.processor))
    segs;
  let first = ref None in
  Array.iteri
    (fun i seg ->
      let d = Hashtbl.find death_of seg.processor in
      if completion.(i) > d then
        match !first with
        | Some (_, at) when at <= d -> ()
        | _ -> first := Some (seg.processor, d))
    segs;
  match !first with
  | None -> Finished (records, finish)
  | Some (dead, at) ->
      Interrupted { dead; at; completed = Array.map (fun c -> c <= at) completion }

(* ---------- execution over unreliable stable storage ---------- *)

module Storage = Ckpt_storage.Storage
module Store = Ckpt_storage.Store

type storage_run = {
  srecords : record array;
  sfinish : float;
  ckpts : Store.handle option array;
  rollback_log : int list;
}

(* Core shared by the plain and the death-cut storage executors. With a
   [Store.passthrough] configuration every branch below degenerates to
   the fault-free path — same float operations in the same order, no
   extra randomness — so the result is bitwise identical to
   [execute_from]. *)
let execute_storage_core ~start segs ~write trace_of_processor ~store =
  let n = Array.length segs in
  if Array.length write <> n then
    invalid_arg "Engine.execute_storage: write-span array size mismatch";
  Array.iteri
    (fun i seg ->
      List.iter
        (fun p ->
          if p >= i then
            invalid_arg "Engine.execute_storage: segments not topologically ordered")
        seg.preds)
    segs;
  let completion = Array.make n start in
  let rev_attempts = Array.make n [] in
  let ckpts = Array.make n None in
  let rev_rollbacks = ref [] in
  let proc_free = Hashtbl.create 16 in
  let traces = Hashtbl.create 16 in
  let trace p =
    match Hashtbl.find_opt traces p with
    | Some t -> t
    | None ->
        let t = trace_of_processor p in
        Hashtbl.replace traces p t;
        t
  in
  let finish = ref start in
  (* [run i ~now] (re-)executes segment [i] no earlier than [now]:
     waits until every predecessor checkpoint reads back valid
     (cascading rollback when a recovery read finds one corrupt), runs
     the attempt loop over the segment duration, then commits — a
     commit whose backoff policy exhausts loses the memory content and
     reproduces the whole segment. Returns the commit instant. *)
  let rec run i ~now =
    let seg = segs.(i) in
    let ready =
      List.fold_left
        (fun acc p -> ensure p ~now:(Float.max acc completion.(p)))
        now seg.preds
    in
    let free = Option.value ~default:start (Hashtbl.find_opt proc_free seg.processor) in
    let t0 = Store.available store (Float.max ready free) in
    let tr = trace seg.processor in
    let rec attempt start acc =
      if seg.duration = 0. then
        (start, { attempt_start = start; attempt_end = start; failed = false } :: acc)
      else begin
        let failure = Failure.next_after tr start in
        if failure < start +. seg.duration then
          attempt failure ({ attempt_start = start; attempt_end = failure; failed = true } :: acc)
        else
          let fin = start +. seg.duration in
          (fin, { attempt_start = start; attempt_end = fin; failed = false } :: acc)
      end
    in
    let rec cycle t0 acc =
      let done_at, acc = attempt t0 acc in
      match Store.commit store ~seg:i ~write:write.(i) ~at:done_at with
      | Ok (commit_at, ck) ->
          ckpts.(i) <- Some ck;
          (commit_at, acc)
      | Error gave_up_at -> cycle (Store.available store gave_up_at) acc
    in
    let done_at, acc = cycle t0 rev_attempts.(i) in
    rev_attempts.(i) <- acc;
    completion.(i) <- done_at;
    Hashtbl.replace proc_free seg.processor done_at;
    if done_at > !finish then finish := done_at;
    done_at
  and ensure p ~now =
    match ckpts.(p) with
    | None -> assert false (* topological order: predecessors committed first *)
    | Some ck -> (
        match Store.read store ck ~at:now with
        | Ok ready -> ready
        | Error (Store.Corrupt | Store.Rejected) ->
            (* failed recovery read (all replicas corrupt, or the store
               invalidated the checkpoint): the recovery line moves
               back — the producing segment re-executes from ITS last
               valid inputs, transitively to the workflow inputs if
               needed *)
            rev_rollbacks := p :: !rev_rollbacks;
            let t = run p ~now in
            ensure p ~now:t)
  in
  for i = 0 to n - 1 do
    ignore (run i ~now:start)
  done;
  let records =
    Array.init n (fun i ->
        {
          seg_index = i;
          seg_processor = segs.(i).processor;
          attempts = List.rev rev_attempts.(i);
        })
  in
  (records, completion, !finish, ckpts, List.rev !rev_rollbacks)

let execute_storage ?(start = 0.) segs ~write trace_of_processor ~store =
  let srecords, _, sfinish, ckpts, rollback_log =
    execute_storage_core ~start segs ~write trace_of_processor ~store
  in
  { srecords; sfinish; ckpts; rollback_log }

type storage_outcome =
  | SFinished of storage_run
  | SInterrupted of {
      dead : int;
      at : float;
      completed : bool array;
      ckpts : Store.handle option array;
    }

let execute_until_death_storage ?(start = 0.) segs ~write trace_of_processor ~death
    ~store =
  Array.iter
    (fun seg ->
      if death seg.processor <= start then
        invalid_arg "Engine.execute_until_death: segment on an already-dead processor")
    segs;
  let srecords, completion, sfinish, ckpts, rollback_log =
    execute_storage_core ~start segs ~write trace_of_processor ~store
  in
  let death_of = Hashtbl.create 16 in
  Array.iter
    (fun seg ->
      if not (Hashtbl.mem death_of seg.processor) then
        Hashtbl.replace death_of seg.processor (death seg.processor))
    segs;
  let first = ref None in
  Array.iteri
    (fun i seg ->
      let d = Hashtbl.find death_of seg.processor in
      if completion.(i) > d then
        match !first with
        | Some (_, at) when at <= d -> ()
        | _ -> first := Some (seg.processor, d))
    segs;
  match !first with
  | None -> SFinished { srecords; sfinish; ckpts; rollback_log }
  | Some (dead, at) ->
      SInterrupted { dead; at; completed = Array.map (fun c -> c <= at) completion; ckpts }

(* ---------- spot-instance revocation with warnings ---------- *)

type rescue_info = {
  rread : float;
  task_durs : float array;
  partial_writes : float array;
}

type revocation_outcome =
  | RFinished of storage_run
  | RInterrupted of {
      revoked : int;
      at : float;
      kill : float;
      completed : bool array;
      ckpts : Store.handle option array;
      rescue : (int * int * Store.handle) option;
      lost : float;
    }

(* The warning-cut analogue of [execute_until_death_storage]: spot
   revocations only remove processors, so up to the first disruptive
   warning the execution is the revocation-free one — run it and cut
   at the earliest warning of a processor that still had unfinished
   segments. During the grace window [warn, kill) the revoked
   processor attempts an out-of-band proactive checkpoint of its
   in-flight segment: the completed task prefix (recovery read plus k
   whole task spans fit in the elapsed attempt time) is committed
   through the storage layer, and the rescue stands iff the commit
   lands before the kill. Zero grace ([kill <= warn]) skips the
   attempt entirely — no storage traffic, no randomness — so an
   unannounced revocation is bitwise a plain processor death. *)
let execute_until_revocation ?(start = 0.) segs ~write ~rescue trace_of_processor
    ~warn ~kill ~store =
  Array.iter
    (fun seg ->
      if warn seg.processor <= start then
        invalid_arg "Engine.execute_until_revocation: segment on a revoked processor")
    segs;
  if Array.length rescue <> Array.length segs then
    invalid_arg "Engine.execute_until_revocation: rescue array size mismatch";
  let srecords, completion, sfinish, ckpts, rollback_log =
    execute_storage_core ~start segs ~write trace_of_processor ~store
  in
  let warn_of = Hashtbl.create 16 in
  Array.iter
    (fun seg ->
      if not (Hashtbl.mem warn_of seg.processor) then
        Hashtbl.replace warn_of seg.processor (warn seg.processor))
    segs;
  let first = ref None in
  Array.iteri
    (fun i seg ->
      let w = Hashtbl.find warn_of seg.processor in
      if completion.(i) > w then
        match !first with
        | Some (_, at) when at <= w -> ()
        | _ -> first := Some (seg.processor, w))
    segs;
  match !first with
  | None -> RFinished { srecords; sfinish; ckpts; rollback_log }
  | Some (revoked, at) ->
      let completed = Array.map (fun c -> c <= at) completion in
      (* gross loss: execution time sunk before the cut into segments
         whose checkpoint never committed (the rescue, if any, buys
         part of it back — the caller nets it out) *)
      let lost = ref 0. in
      Array.iteri
        (fun i r ->
          if not completed.(i) then
            List.iter
              (fun a ->
                if a.attempt_start < at then
                  lost := !lost +. (Float.min at a.attempt_end -. a.attempt_start))
              r.attempts)
        srecords;
      let kdl = kill revoked in
      let rescue_result =
        if kdl <= at then None
        else begin
          (* the segment actually mid-attempt on the revoked processor
             at the warning instant (at most one: processors are
             serial); a merely queued segment has nothing to save *)
          let found = ref None in
          Array.iteri
            (fun i seg ->
              if !found = None && seg.processor = revoked && not completed.(i) then
                List.iter
                  (fun a ->
                    if !found = None && a.attempt_start <= at && at < a.attempt_end then
                      found := Some (i, a.attempt_start))
                  srecords.(i).attempts)
            segs;
          match !found with
          | None -> None
          | Some (i, astart) ->
              let info = rescue.(i) in
              let elapsed = at -. astart in
              let tasks = Array.length info.task_durs in
              let rec prefix k acc =
                if k < tasks && acc +. info.task_durs.(k) <= elapsed then
                  prefix (k + 1) (acc +. info.task_durs.(k))
                else k
              in
              let k = prefix 0 info.rread in
              if k = 0 then None
              else begin
                (* grace races C: the rescue write itself takes
                   [partial_writes.(k-1)] seconds past the warning, and
                   only then can the commit be attempted — both the
                   write span and any storage-level delay (outage wait,
                   retries) must fit before the kill *)
                let pw = info.partial_writes.(k - 1) in
                if at +. pw > kdl then None
                else
                  (* an [~interrupt] commit: the on-interrupt policy's
                     durable case *)
                  match Store.commit ~interrupt:true store ~seg:i ~write:pw ~at:(at +. pw) with
                  | Ok (commit_at, ck) when commit_at <= kdl -> Some (i, k, ck)
                  | Ok _ | Error _ -> None
              end
        end
      in
      RInterrupted
        {
          revoked;
          at;
          kill = kdl;
          completed;
          ckpts;
          rescue = rescue_result;
          lost = !lost;
        }

type summary = { failures : int; wasted_time : float; useful_time : float }

let summarize records =
  let failures = ref 0 and wasted = ref 0. and useful = ref 0. in
  Array.iter
    (fun r ->
      List.iter
        (fun a ->
          let span = a.attempt_end -. a.attempt_start in
          if a.failed then begin
            incr failures;
            wasted := !wasted +. span
          end
          else useful := !useful +. span)
        r.attempts)
    records;
  { failures = !failures; wasted_time = !wasted; useful_time = !useful }

let restart_rate_makespan ~wpar ~rate rng =
  if wpar < 0. then invalid_arg "Engine.restart_makespan: negative Wpar";
  if rate < 0. then invalid_arg "Engine.restart_makespan: negative rate";
  if rate <= 0. || wpar = 0. then wpar
  else begin
    let rec go elapsed =
      let gap = Rng.exponential rng ~rate in
      if gap >= wpar then elapsed +. wpar else go (elapsed +. gap)
    in
    go 0.
  end

let restart_makespan ~wpar ~processors ~lambda rng =
  if processors < 1 then invalid_arg "Engine.restart_makespan: processors < 1";
  restart_rate_makespan ~wpar ~rate:(float_of_int processors *. lambda) rng
