(** Degraded-mode execution: survive permanent processor loss.

    Each trial interleaves simulation and replanning: the current plan
    executes against transient failure traces {e and} permanent death
    instants ({!Ckpt_recovery.Mortality}); at the first disruptive
    death the tasks of every checkpoint-committed segment are marked
    done, and the residual workflow is replanned on the survivors
    ({!Ckpt_recovery.Repair}) — Algorithm 1 and the Algorithm 2 DP
    re-run on the smaller platform, migration charged as re-reads of
    checkpointed data. Execution resumes at the loss instant with the
    repaired plan; up to [max_losses] losses can strike one trial. When
    replanning is impossible the trial falls back to restarting the
    whole workflow from scratch on the survivors; when nobody survives
    the trial is stranded (makespan [infinity]).

    {!Restart} mode is the baseline the repair is measured against: a
    static schedule cannot adapt, so each loss discards {e all}
    progress and restarts the workflow from scratch on the survivors.
    Both modes consume identical per-trial randomness (deaths drawn
    first, then one trace generator split per processor, in processor
    order), so repair-vs-restart comparisons are paired.

    The checkpoint store ([config.store]) composes with loss: epochs
    execute through {!Engine.execute_until_death_storage}, each
    completed segment's checkpoint handle is retained as the trial's
    recovery line, and every loss instant revalidates the whole
    committed frontier — a checkpoint whose recovery read fails
    (corrupt replicas, or a policy-volatile / invalidated handle) is
    removed from [done_] so the replan re-schedules its producer (and
    its transitive consumers) instead of trusting lost data.

    Determinism contract: a trial's randomness is a pure function of
    [(seed, trial)] — deaths first, then one trace split per processor,
    then (only when the store is non-passthrough) one store split — and
    results are reassembled in trial order, so {!sample} returns
    bitwise identical arrays for any [jobs] value, and a
    {!Ckpt_storage.Store.passthrough} config reproduces the pre-store
    samples bitwise. *)

module Strategy = Ckpt_core.Strategy

type mode =
  | Repair  (** online repair: keep checkpointed progress across losses *)
  | Restart  (** baseline: every loss restarts the workflow from scratch *)

val mode_name : mode -> string

type config = {
  lambda_death : float;  (** per-processor permanent-failure rate *)
  max_losses : int;  (** deaths that actually occur, the rest censored *)
  kind : Strategy.kind;  (** checkpoint policy applied at each replan *)
  store : Ckpt_storage.Store.config;
      (** the checkpoint store ({!Ckpt_storage.Store.default} for the
          classic reliable in-memory one). With a
          {!Ckpt_storage.Store.passthrough} config the trial consumes
          exactly the legacy randomness and execution path, so results
          are bitwise the pre-store ones. *)
}

type trial = {
  makespan : float;  (** [infinity] when the trial strands *)
  losses : int;  (** disruptive permanent losses suffered *)
  replans : int;  (** successful residual replans (online repair) *)
  restarts : int;  (** restart-from-scratch replans (baseline / fallback) *)
  rollbacks : int;
      (** cascading rollbacks (failed recovery reads re-executing their
          producer) inside the epoch that ran to completion *)
  invalidated : int;
      (** done tasks whose checkpoint failed its recovery read at a
          loss instant and were returned to the residual workflow *)
  store_stats : Ckpt_storage.Store.stats;
      (** the trial's store counters ({!Ckpt_storage.Store.zero} on the
          passthrough path) *)
}

type prepared
(** A plan frozen for degraded-mode trials: the initial segment DAG and
    segment-to-task map are materialised once, so worker domains share
    them read-only. Also carries the structural replan cache: replans
    are memoised under the key [(kind, survivor set,
    committed-checkpoint frontier)] — {!Ckpt_recovery.Repair.replan} is
    a pure function of that triple for a fixed plan, so trials hitting
    the same degradation state (common for Restart, whose frontier is
    always empty) reuse the physically-mapped plan instead of
    re-running recognition, ALLOCATE and the placement DP. Cached
    values are shared read-only across worker domains; results are
    bitwise identical with the cache on or off, at any [jobs]. *)

val prepare : ?cache:bool -> Strategy.plan -> prepared
(** [cache] (default [true]) toggles the replan cache.

    @raise Invalid_argument on a CKPTNONE plan (no checkpoints to
    recover from) or a CKPTNONE replan policy. *)

val cache_stats : prepared -> int * int
(** [(hits, misses)] of the replan cache so far (0, 0 when disabled). *)

val run_trial : mode:mode -> config -> prepared -> Ckpt_prob.Rng.t -> trial
(** One degraded-mode execution against fresh randomness. *)

val sample :
  ?trials:int ->
  ?seed:int ->
  ?jobs:int ->
  mode:mode ->
  config ->
  Strategy.plan ->
  trial array
(** [trials] (default 200) degraded-mode executions, trial [k] driven
    by [Ckpt_prob.Rng.for_trial ~seed k] (seed default 11). [jobs]
    fans trials over worker domains without changing the result. *)

val sample_prepared :
  ?trials:int ->
  ?seed:int ->
  ?jobs:int ->
  mode:mode ->
  config ->
  prepared ->
  trial array
(** {!sample} over an existing {!prepared}, so the caller can reuse one
    replan cache across batches and read {!cache_stats} afterwards. *)

type summary = {
  trials : int;
  mean_makespan : float;  (** [infinity] as soon as one trial strands *)
  mean_losses : float;
  mean_replans : float;
  mean_restarts : float;
  mean_rollbacks : float;
  mean_invalidated : float;
  stranded : int;
  store_totals : Ckpt_storage.Store.stats;
      (** field-wise sum of the per-trial store counters *)
}

val summarize : trial array -> summary
