module Strategy = Ckpt_core.Strategy
module Schedule = Ckpt_core.Schedule
module Superchain = Ckpt_core.Superchain
module Placement = Ckpt_core.Placement
module Platform = Ckpt_platform.Platform
module Failure = Ckpt_platform.Failure
module Rng = Ckpt_prob.Rng
module Mortality = Ckpt_recovery.Mortality
module Repair = Ckpt_recovery.Repair
module Pool = Ckpt_parallel.Pool
module Dag = Ckpt_dag.Dag
module Store = Ckpt_storage.Store

type mode = Repair | Restart

let mode_name = function Repair -> "repair" | Restart -> "restart"

type config = {
  lambda_death : float;
  max_losses : int;
  kind : Strategy.kind;
  store : Store.config;
}

type trial = {
  makespan : float;
  losses : int;
  replans : int;
  restarts : int;
  rollbacks : int;
  invalidated : int;
  store_stats : Store.stats;
}

(* For each segment of a plan, the task ids it covers (in the plan's
   own id space). *)
let seg_tasks_of (plan : Strategy.plan) =
  Array.map
    (fun (seg : Placement.segment) ->
      let sc = plan.Strategy.schedule.Schedule.superchains.(seg.Placement.chain) in
      Array.init
        (seg.Placement.last - seg.Placement.first + 1)
        (fun k -> Superchain.task_at sc (seg.Placement.first + k)))
    plan.Strategy.segments

type prepared = {
  plan : Strategy.plan;
  init_segs : Engine.seg array;
  init_writes : float array;
  init_seg_tasks : int array array;
  (* structural replan cache: Repair.replan is a pure function of
     (kind, survivor set, committed-checkpoint frontier) for a fixed
     plan, so its physically-mapped result is memoised under that key.
     Values are shared read-only across worker domains (the engine
     never mutates segments); the table is mutex-protected, and a
     racing recomputation of the same key is harmless because both
     domains produce the identical value. *)
  cache :
    (string, (Engine.seg array * float array * int array array, string) result)
    Hashtbl.t;
  lock : Mutex.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  use_cache : bool;
}

let prepare ?(cache = true) (plan : Strategy.plan) =
  if plan.Strategy.prob_dag = None then
    invalid_arg "Degrade.prepare: a CKPTNONE plan has no checkpoints to recover from";
  {
    plan;
    init_segs = Runner.segs_of_plan plan;
    init_writes = Runner.writes_of_plan plan;
    init_seg_tasks = seg_tasks_of plan;
    cache = Hashtbl.create 64;
    lock = Mutex.create ();
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    use_cache = cache;
  }

let cache_stats prepared = (Atomic.get prepared.hits, Atomic.get prepared.misses)

(* kind + survivor list + done_ bitset, packed into a flat string *)
let replan_key ~kind ~survivors ~done_ =
  let buf = Buffer.create (32 + (Array.length done_ / 8)) in
  Buffer.add_string buf (Strategy.kind_name kind);
  Buffer.add_char buf '|';
  List.iter
    (fun p ->
      Buffer.add_string buf (string_of_int p);
      Buffer.add_char buf ',')
    survivors;
  Buffer.add_char buf '|';
  let byte = ref 0 in
  Array.iteri
    (fun i b ->
      if b then byte := !byte lor (1 lsl (i land 7));
      if i land 7 = 7 then begin
        Buffer.add_char buf (Char.chr !byte);
        byte := 0
      end)
    done_;
  if Array.length done_ land 7 <> 0 then Buffer.add_char buf (Char.chr !byte);
  Buffer.contents buf

(* Replan the residual workflow and map the result onto physical
   processor / original task ids — the value the cache stores. *)
let compute_replan prepared ~kind ~survivors ~done_ =
  let plan = prepared.plan in
  match
    Repair.replan ~replicas:plan.Strategy.replicas ~kind ~dag:plan.Strategy.raw_dag
      ~done_ ~survivors ~platform:plan.Strategy.platform ()
  with
  | Error msg -> Error msg
  | Ok r ->
      let segs =
        Array.map
          (fun (s : Engine.seg) ->
            { s with Engine.processor = r.Repair.phys.(s.Engine.processor) })
          (Runner.segs_of_plan r.Repair.plan)
      in
      let seg_tasks =
        Array.map (Array.map (fun t -> r.Repair.task_of.(t))) (seg_tasks_of r.Repair.plan)
      in
      Ok (segs, Runner.writes_of_plan r.Repair.plan, seg_tasks)

let replan_cached prepared ~kind ~survivors ~done_ =
  if not prepared.use_cache then compute_replan prepared ~kind ~survivors ~done_
  else begin
    let key = replan_key ~kind ~survivors ~done_ in
    let cached =
      Mutex.protect prepared.lock (fun () -> Hashtbl.find_opt prepared.cache key)
    in
    match cached with
    | Some v ->
        Atomic.incr prepared.hits;
        v
    | None ->
        Atomic.incr prepared.misses;
        let v = compute_replan prepared ~kind ~survivors ~done_ in
        Mutex.protect prepared.lock (fun () ->
            if not (Hashtbl.mem prepared.cache key) then Hashtbl.add prepared.cache key v);
        v
  end

let run_trial ~mode config prepared rng =
  if config.max_losses < 0 then invalid_arg "Degrade.run_trial: negative max_losses";
  (if config.kind = Strategy.Ckpt_none then
     invalid_arg "Degrade.run_trial: CKPTNONE cannot be a replan policy");
  let plan = prepared.plan in
  let platform = plan.Strategy.platform in
  let nprocs = platform.Platform.processors in
  let raw = plan.Strategy.raw_dag in
  let n = Dag.n_tasks raw in
  (* fixed per-trial randomness, in a mode-independent order: deaths
     first, then one trace generator per processor — Repair and Restart
     trials with the same rng see identical worlds *)
  let deaths =
    Mortality.draw rng ~processors:nprocs ~lambda_death:config.lambda_death
      ~max_losses:config.max_losses
  in
  let trace_rngs = Array.init nprocs (fun _ -> Rng.split rng) in
  let traces = Array.make nprocs None in
  let trace_of p =
    match traces.(p) with
    | Some t -> t
    | None ->
        let t = Failure.create trace_rngs.(p) ~lambda:(Platform.rate_of platform p) in
        traces.(p) <- Some t;
        t
  in
  let death p = deaths.(p) in
  (* the store substream splits strictly after deaths and traces, and
     only when the store is non-passthrough: a passthrough config
     consumes exactly the legacy randomness and takes the legacy
     execution path, bitwise *)
  let storage =
    if Store.passthrough config.store then None
    else Some (Store.create config.store (Rng.split rng))
  in
  let finish_trial ~makespan ~losses ~replans ~restarts ~rollbacks ~invalidated =
    {
      makespan;
      losses;
      replans;
      restarts;
      rollbacks;
      invalidated;
      store_stats = (match storage with Some st -> Store.stats st | None -> Store.zero);
    }
  in
  let done_ = Array.make n false in
  (* the checkpoint handle backing each done task — the recovery line:
     a loss revalidates every handle, and a failed recovery read clears
     [done_] so the replan re-schedules the producing segment (and,
     transitively through the residual DAG, everything downstream of
     it) from its own last valid checkpoint *)
  let task_ckpt = Array.make n None in
  (* current plan state: engine segments (on physical processor ids),
     their commit durations, and the original task ids each segment
     checkpoints *)
  let rec go ~clock ~segs ~writes ~seg_tasks ~losses ~replans ~restarts ~rollbacks
      ~invalidated =
    let outcome =
      match storage with
      | None -> (
          match Engine.execute_until_death ~start:clock segs trace_of ~death with
          | Engine.Finished (_, finish) -> `Finished (finish, 0)
          | Engine.Interrupted { dead = _; at; completed } ->
              `Interrupted (at, completed, None))
      | Some st -> (
          match
            Engine.execute_until_death_storage ~start:clock segs ~write:writes trace_of
              ~death ~store:st
          with
          | Engine.SFinished run ->
              `Finished (run.Engine.sfinish, List.length run.Engine.rollback_log)
          | Engine.SInterrupted { dead = _; at; completed; ckpts } ->
              `Interrupted (at, completed, Some ckpts))
    in
    match outcome with
    | `Finished (finish, rb) ->
        finish_trial ~makespan:finish ~losses ~replans ~restarts
          ~rollbacks:(rollbacks + rb) ~invalidated
    | `Interrupted (at, completed, ckpts) ->
        let losses = losses + 1 in
        Array.iteri
          (fun i ok ->
            if ok then begin
              Array.iter (fun t -> done_.(t) <- true) seg_tasks.(i);
              match ckpts with
              | Some cks ->
                  Array.iter (fun t -> task_ckpt.(t) <- cks.(i)) seg_tasks.(i)
              | None -> ()
            end)
          completed;
        (* revalidate the committed frontier at the loss instant,
           before the replan key is formed: latent corruption (or a
           policy-volatile / invalidated handle) revealed here rolls
           the recovery line back past that segment *)
        let invalidated =
          match storage with
          | None -> invalidated
          | Some st ->
              let fresh = ref 0 in
              for t = 0 to n - 1 do
                if done_.(t) then
                  match task_ckpt.(t) with
                  | Some ck ->
                      if not (Store.recovery_readable st ck ~at) then begin
                        done_.(t) <- false;
                        task_ckpt.(t) <- None;
                        incr fresh
                      end
                  | None -> ()
              done;
              invalidated + !fresh
        in
        let survivors = Mortality.survivors deaths ~after:at in
        if survivors = [] then
          finish_trial ~makespan:infinity ~losses ~replans ~restarts ~rollbacks
            ~invalidated
        else begin
          let continue_with (segs, writes, seg_tasks) ~replans ~restarts =
            go ~clock:at ~segs ~writes ~seg_tasks ~losses ~replans ~restarts ~rollbacks
              ~invalidated
          in
          let from_scratch ~replans ~restarts =
            Array.fill done_ 0 n false;
            Array.fill task_ckpt 0 n None;
            match replan_cached prepared ~kind:config.kind ~survivors ~done_ with
            | Ok v -> continue_with v ~replans ~restarts:(restarts + 1)
            | Error msg ->
                (* the full workflow was plannable at trial start on any
                   processor count, so this is unreachable for plans
                   built through the pipeline *)
                invalid_arg ("Degrade.run_trial: restart replan failed: " ^ msg)
          in
          match mode with
          | Restart -> from_scratch ~replans ~restarts
          | Repair -> (
              match replan_cached prepared ~kind:config.kind ~survivors ~done_ with
              | Ok v -> continue_with v ~replans:(replans + 1) ~restarts
              | Error _ -> from_scratch ~replans ~restarts)
        end
  in
  go ~clock:0. ~segs:prepared.init_segs ~writes:prepared.init_writes
    ~seg_tasks:prepared.init_seg_tasks ~losses:0 ~replans:0 ~restarts:0 ~rollbacks:0
    ~invalidated:0

(* Work-distribution chunk (see Runner): trials are claimed chunkwise
   by worker domains but derive their randomness from the trial index
   alone, so the partitioning never affects the drawn samples. *)
let chunk_trials = 16

let sample_prepared ?(trials = 200) ?(seed = 11) ?(jobs = 1) ~mode config prepared =
  if trials < 1 then invalid_arg "Degrade.sample: trials < 1";
  if jobs < 1 then invalid_arg "Degrade.sample: jobs < 1";
  let nchunks = (trials + chunk_trials - 1) / chunk_trials in
  let results = Array.make nchunks None in
  let next = Atomic.make 0 in
  Pool.run_shared ~jobs:(min jobs nchunks) (fun ~worker:_ ->
      let rec loop () =
        let c = Atomic.fetch_and_add next 1 in
        if c < nchunks then begin
          let lo = c * chunk_trials in
          let hi = min trials (lo + chunk_trials) in
          results.(c) <-
            Some
              (Array.init (hi - lo) (fun k ->
                   run_trial ~mode config prepared (Rng.for_trial ~seed (lo + k))));
          loop ()
        end
      in
      loop ());
  Array.concat
    (Array.to_list (Array.map (function Some a -> a | None -> assert false) results))

let sample ?trials ?seed ?jobs ~mode config plan =
  sample_prepared ?trials ?seed ?jobs ~mode config (prepare plan)

type summary = {
  trials : int;
  mean_makespan : float;
  mean_losses : float;
  mean_replans : float;
  mean_restarts : float;
  mean_rollbacks : float;
  mean_invalidated : float;
  stranded : int;
  store_totals : Store.stats;
}

let summarize trials =
  let n = Array.length trials in
  if n = 0 then invalid_arg "Degrade.summarize: empty sample";
  let fn = float_of_int n in
  let sum f = Array.fold_left (fun acc t -> acc +. f t) 0. trials in
  {
    trials = n;
    mean_makespan = sum (fun t -> t.makespan) /. fn;
    mean_losses = sum (fun t -> float_of_int t.losses) /. fn;
    mean_replans = sum (fun t -> float_of_int t.replans) /. fn;
    mean_restarts = sum (fun t -> float_of_int t.restarts) /. fn;
    mean_rollbacks = sum (fun t -> float_of_int t.rollbacks) /. fn;
    mean_invalidated = sum (fun t -> float_of_int t.invalidated) /. fn;
    stranded = Array.fold_left (fun acc t -> if t.makespan = infinity then acc + 1 else acc) 0 trials;
    store_totals =
      Array.fold_left (fun acc t -> Store.add acc t.store_stats) Store.zero trials;
  }
