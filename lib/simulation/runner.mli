(** Monte-Carlo simulation driver for strategy plans.

    Repeatedly executes a {!Ckpt_core.Strategy.plan} against fresh
    exponential failure traces and collects makespan statistics —
    ground truth against which the analytical estimators (and the
    first-order model itself) are validated.

    The driver practices what the paper preaches: a wall-clock
    {!Ckpt_resilience.Deadline} cuts a runaway simulation off at the
    trials completed so far; an [inject] hook lets the fault-injection
    harness ({!Ckpt_resilience.Faulty}) kill individual trials; and an
    optional {!Ckpt_resilience.Retry} policy re-runs a killed trial
    with its original randomness, so an injected-and-retried run
    produces bitwise the same samples as an undisturbed one. *)

val segs_of_plan : Ckpt_core.Strategy.plan -> Engine.seg array
(** The executable segment DAG of a CKPTALL/CKPTSOME plan: one entry
    per coalesced segment, dependencies taken from the plan's 2-state
    DAG, durations equal to [read + work + write].

    @raise Invalid_argument on a CKPTNONE plan (nothing to segment). *)

val writes_of_plan : Ckpt_core.Strategy.plan -> float array
(** Per-segment checkpoint-commit durations (seconds) aligned with
    {!segs_of_plan}; a plan built with [~replicas:k] already carries
    the [k·C] cost here.

    @raise Invalid_argument on a CKPTNONE plan. *)

type storage_trial = {
  makespan : float;
  commit_retries : int;  (** checkpoint-commit attempts that failed *)
  commit_exhausted : int;  (** commit cycles that exhausted the backoff *)
  corrupt_reads : int;  (** recovery reads that found no valid replica *)
  rollbacks : int;  (** cascading segment re-executions those triggered *)
  store : Ckpt_storage.Store.stats;  (** full store counters of the trial *)
}

val plan_signature : Ckpt_core.Strategy.plan -> string
(** A stable rendering of the plan's segment DAG and write spans —
    feed it (with whatever else determines semantics) to
    {!Ckpt_storage.Store.fingerprint} to derive a disk store's DAG
    structural hash.

    @raise Invalid_argument on a CKPTNONE plan. *)

val sample_storage :
  ?trials:int ->
  ?seed:int ->
  ?jobs:int ->
  ?inject:(string -> unit) ->
  ?persist:Ckpt_storage.Store.persist ->
  ?scope:string ->
  store:Ckpt_storage.Store.config ->
  Ckpt_core.Strategy.plan ->
  storage_trial array
(** Monte-Carlo over the checkpoint store
    ({!Engine.execute_storage}): each trial draws the same
    [(seed, trial)] failure traces as {!sample_makespans} plus an
    independent storage substream (derived from a tagged seed, so
    storage faults never perturb the traces). With a
    {!Ckpt_storage.Store.passthrough} config the per-trial makespans
    are bitwise those of {!sample_makespans} at the same
    [(trials, seed)]. Deterministic and bitwise identical for any
    [jobs] value. [inject] / [persist] / [scope] are passed to each
    trial's {!Ckpt_storage.Store.create} ([trial] is the trial
    index).

    @raise Invalid_argument on a CKPTNONE plan, an invalid [store]
    config ({!Ckpt_storage.Store.validate}), or [persist] with
    [jobs > 1] (the store file is single-domain). *)

val simulate :
  ?trials:int ->
  ?seed:int ->
  ?deadline:Ckpt_resilience.Deadline.t ->
  ?inject:(trial:int -> unit) ->
  ?retry:Ckpt_resilience.Retry.policy ->
  ?jobs:int ->
  Ckpt_core.Strategy.plan ->
  Ckpt_prob.Stats.t
(** [trials] defaults to 1000. CKPTALL/CKPTSOME run through
    {!Engine.makespan}; CKPTNONE uses the restart-from-scratch
    semantics on its failure-free parallel time. See
    {!sample_makespans} for [deadline] / [inject] / [retry] / [jobs]. *)

val simulated_expected_makespan :
  ?trials:int -> ?seed:int -> ?jobs:int -> Ckpt_core.Strategy.plan -> float

val expected_makespan :
  ?eval:[ `Analytic | `Mc ] ->
  ?trials:int ->
  ?seed:int ->
  ?jobs:int ->
  Ckpt_core.Strategy.plan ->
  float
(** Evaluator dispatch over the simulation semantics. [`Mc] (the
    default) is {!simulated_expected_makespan}; [`Analytic] is its
    trials → ∞ limit,
    {!Ckpt_analytic.Analytic.schedule_makespan}[ ~model:Exact] — the
    engine's scheduling recurrence with every attempt loop collapsed
    to its exact exponential expectation, so no sampling parameters
    apply ([trials]/[seed]/[jobs] are ignored). *)

val sample_makespans :
  ?trials:int ->
  ?seed:int ->
  ?deadline:Ckpt_resilience.Deadline.t ->
  ?inject:(trial:int -> unit) ->
  ?retry:Ckpt_resilience.Retry.policy ->
  ?jobs:int ->
  Ckpt_core.Strategy.plan ->
  float array
(** The raw makespan sample (same semantics as {!simulate}) — for
    quantiles and distribution comparisons.

    Each trial's randomness is a pure function of [(seed, trial)]
    ({!Ckpt_prob.Rng.for_trial}), fixed before any attempt: retried
    (fault-injected) trials reproduce the undisturbed run's samples
    exactly, and the returned array is bitwise identical for any
    [jobs] value (default 1: fully sequential). Each worker domain
    keeps a preallocated per-processor failure-trace table, reset
    between trials.

    [deadline]: checked between 128-trial chunks; on expiry the
    completed prefix (never empty) is returned. [inject ~trial] runs
    before each trial attempt and may raise to simulate a fail-stop
    error; with [jobs > 1] the hook must be thread-safe and fires in
    nondeterministic trial order. Without [retry] such an exception
    propagates; with [retry] the trial is re-attempted under the
    policy (jitter seeded from [seed] and the trial index), and
    exhaustion raises [Error.E (Retries_exhausted)]. *)
