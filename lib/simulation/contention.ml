module Failure = Ckpt_platform.Failure
module Platform = Ckpt_platform.Platform
module Strategy = Ckpt_core.Strategy
module Schedule = Ckpt_core.Schedule
module Superchain = Ckpt_core.Superchain
module Placement = Ckpt_core.Placement
module Prob_dag = Ckpt_eval.Prob_dag
module Rng = Ckpt_prob.Rng
module Stats = Ckpt_prob.Stats
module Storage = Ckpt_storage.Storage
module Store = Ckpt_storage.Store

type seg = {
  processor : int;
  read_bytes : float;
  work : float;
  write_bytes : float;
  preds : int list;
}

(* one processor's in-flight segment; [rem] is bytes during I/O
   phases, seconds during compute; [total] is the phase's full volume,
   setting the scale of the done-threshold (an absolute epsilon would
   livelock: after advancing to a completion instant, float rounding
   can leave a sub-ULP byte remainder whose completion time rounds
   back to [now], so [dt] stays 0 forever) *)
type phase = Reading | Computing | Writing

type running = {
  seg_idx : int;
  mutable phase : phase;
  mutable rem : float;
  mutable total : float;
  mutable commit_attempts : int;
}

let drained (r : running) = r.rem <= 1e-12 *. (1. +. r.total)

let makespan ?store:storage ~bandwidth segs trace_of_processor =
  if bandwidth <= 0. then invalid_arg "Contention.makespan: non-positive bandwidth";
  let n = Array.length segs in
  (* checkpoint handle of each committed segment (only maintained when
     a checkpoint store is attached) *)
  let ckpts = Array.make (match storage with Some _ -> n | None -> 0) None in
  Array.iteri
    (fun i s ->
      List.iter
        (fun p ->
          if p >= i then invalid_arg "Contention.makespan: segments not topologically ordered")
        s.preds)
    segs;
  let completed = Array.make n false in
  let completion = Array.make n 0. in
  (* per-processor pending queues, in array (schedule) order *)
  let queues = Hashtbl.create 16 in
  Array.iteri
    (fun i s ->
      let q = Option.value ~default:[] (Hashtbl.find_opt queues s.processor) in
      Hashtbl.replace queues s.processor (i :: q))
    segs;
  let queues =
    Hashtbl.fold (fun p q acc -> (p, ref (List.rev q)) :: acc) queues []
  in
  let running : (int, running) Hashtbl.t = Hashtbl.create 16 in
  let traces = Hashtbl.create 16 in
  let trace p =
    match Hashtbl.find_opt traces p with
    | Some t -> t
    | None ->
        let t = trace_of_processor p in
        Hashtbl.replace traces p t;
        t
  in
  let now = ref 0. in
  let finished = ref 0 in
  (* move a running segment past its exhausted phases; returns true if
     the segment completed *)
  let rec settle proc (r : running) =
    if not (drained r) then false
    else
      match r.phase with
      | Reading ->
          r.phase <- Computing;
          r.rem <- segs.(r.seg_idx).work;
          r.total <- segs.(r.seg_idx).work;
          settle proc r
      | Computing ->
          r.phase <- Writing;
          r.rem <- segs.(r.seg_idx).write_bytes;
          r.total <- segs.(r.seg_idx).write_bytes;
          settle proc r
      | Writing -> (
          let idx = r.seg_idx in
          let complete handle =
            (match storage with
            | Some _ -> ckpts.(idx) <- handle
            | None -> ());
            completed.(idx) <- true;
            completion.(idx) <- !now;
            incr finished;
            Hashtbl.remove running proc;
            true
          in
          match storage with
          | None -> complete None
          | Some st ->
              (* the policy decision is made at the first attempt of a
                 commit cycle; rewrites of the same cycle stay durable *)
              if
                r.commit_attempts = 0
                && Store.begin_commit st = `Volatile
              then complete (Some (Store.volatile_handle st ~seg:idx))
              else begin
                r.commit_attempts <- r.commit_attempts + 1;
                match Store.commit_step st ~attempt:r.commit_attempts with
                | Storage.Committed ->
                    complete (Some (Store.fresh_handle st ~seg:idx ~at:!now))
                | Storage.Rewrite ->
                    (* a detected commit failure rewrites the whole
                       replica set; the shared-bandwidth rewrite itself
                       is the penalty, so no wall-clock backoff is
                       charged here *)
                    r.rem <- segs.(idx).write_bytes;
                    r.total <- segs.(idx).write_bytes;
                    settle proc r
                | Storage.Exhausted ->
                    (* give up on this commit cycle: re-execute the
                       segment *)
                    r.commit_attempts <- 0;
                    r.phase <- Reading;
                    r.rem <- segs.(idx).read_bytes;
                    r.total <- segs.(idx).read_bytes;
                    settle proc r
              end)
  in
  let start proc idx =
    let r =
      { seg_idx = idx;
        phase = Reading;
        rem = segs.(idx).read_bytes;
        total = segs.(idx).read_bytes;
        commit_attempts = 0 }
    in
    Hashtbl.replace running proc r;
    ignore (settle proc r)
  in
  (* dispatch every idle processor whose next segment is ready; loop
     because an instant completion can unlock further segments *)
  let rec dispatch () =
    let progressed = ref false in
    List.iter
      (fun (proc, queue) ->
        if not (Hashtbl.mem running proc) then
          match !queue with
          | [] -> ()
          | idx :: rest ->
              if List.for_all (fun p -> completed.(p)) segs.(idx).preds then begin
                let stale =
                  match storage with
                  | None -> []
                  | Some st ->
                      List.filter
                        (fun p ->
                          match ckpts.(p) with
                          | Some ck -> (
                              match Store.read st ck ~at:!now with
                              | Ok _ -> false
                              | Error (Store.Corrupt | Store.Rejected) -> true)
                          | None -> false)
                        segs.(idx).preds
                in
                match stale with
                | [] ->
                    queue := rest;
                    start proc idx;
                    progressed := true
                | _ ->
                    (* cascading rollback: each corrupt checkpoint's
                       producer returns to the head of its processor's
                       queue and re-executes (re-validating its own
                       inputs when it dispatches, so the cascade is
                       transitive); the consumer stays queued until
                       every recovery read passes *)
                    List.iter
                      (fun p ->
                        completed.(p) <- false;
                        ckpts.(p) <- None;
                        decr finished;
                        let q = List.assoc segs.(p).processor queues in
                        q := p :: !q)
                      stale;
                    progressed := true
              end)
      queues;
    if !progressed then dispatch ()
  in
  dispatch ();
  while !finished < n do
    (* current I/O concurrency sets every stream's rate *)
    let io_count =
      Hashtbl.fold
        (fun _ r acc -> match r.phase with Reading | Writing -> acc + 1 | Computing -> acc)
        running 0
    in
    let io_rate = if io_count = 0 then bandwidth else bandwidth /. float_of_int io_count in
    let rate r = match r.phase with Reading | Writing -> io_rate | Computing -> 1. in
    (* earliest event: a phase completion or a failure on a busy
       processor. The event names its processor so it can be settled
       unconditionally — relying on a residue threshold livelocks when
       [rem / rate] rounds below one ulp of [now]. *)
    let next_event = ref infinity and event = ref None in
    Hashtbl.iter
      (fun proc r ->
        let completion_at = !now +. (r.rem /. rate r) in
        if completion_at < !next_event || !event = None then begin
          next_event := Float.max !now completion_at;
          event := Some (`Complete proc)
        end;
        let failure_at = Failure.next_after (trace proc) !now in
        if failure_at < !next_event then begin
          next_event := failure_at;
          event := Some (`Fail proc)
        end)
      running;
    (match !event with
    | None ->
        (* all remaining segments are blocked: impossible if the input
           is a well-formed schedule *)
        invalid_arg "Contention.makespan: deadlock (invalid schedule)"
    | Some happening ->
        let dt = Float.max 0. (!next_event -. !now) in
        (* advance every running phase by dt at its current rate *)
        Hashtbl.iter (fun _ r -> r.rem <- Float.max 0. (r.rem -. (dt *. rate r))) running;
        now := !next_event;
        (match happening with
        | `Fail proc ->
            (* memory lost: restart the segment from its read phase *)
            let r = Hashtbl.find running proc in
            r.phase <- Reading;
            r.rem <- segs.(r.seg_idx).read_bytes;
            r.total <- segs.(r.seg_idx).read_bytes;
            r.commit_attempts <- 0;
            ignore (settle proc r)
        | `Complete proc ->
            let r = Hashtbl.find running proc in
            r.rem <- 0.;
            ignore (settle proc r);
            (* settle any other phase that drained at the same instant *)
            let procs = Hashtbl.fold (fun p _ acc -> p :: acc) running [] in
            List.iter
              (fun other ->
                match Hashtbl.find_opt running other with
                | Some r when drained r -> ignore (settle other r)
                | _ -> ())
              procs));
    dispatch ()
  done;
  Array.fold_left Float.max 0. completion

let segs_of_plan (plan : Strategy.plan) =
  match plan.Strategy.prob_dag with
  | None -> invalid_arg "Contention.segs_of_plan: CKPTNONE has no segments"
  | Some pd ->
      let bandwidth = plan.Strategy.platform.Platform.bandwidth in
      Array.mapi
        (fun idx (seg : Placement.segment) ->
          let sc = plan.Strategy.schedule.Schedule.superchains.(seg.Placement.chain) in
          {
            processor = sc.Superchain.processor;
            read_bytes = seg.Placement.read *. bandwidth;
            work = seg.Placement.work;
            write_bytes = seg.Placement.write *. bandwidth;
            preds = Prob_dag.preds pd idx;
          })
        plan.Strategy.segments

let simulate ?(trials = 1000) ?(seed = 7) ?store (plan : Strategy.plan) =
  if trials < 1 then invalid_arg "Contention.simulate: trials < 1";
  Option.iter Store.validate store;
  let platform = plan.Strategy.platform in
  let bandwidth = platform.Platform.bandwidth in
  let segs = segs_of_plan plan in
  let master = Rng.create seed in
  let stats = Stats.create () in
  for _ = 1 to trials do
    let trial_rng = Rng.split master in
    (* the store substream splits off the trial's own generator, and
       only when the store is non-passthrough: a passthrough config
       draws nothing and reproduces the fault-free trials bitwise *)
    let st =
      match store with
      | Some cfg when not (Store.passthrough cfg) ->
          Some (Store.create cfg (Rng.split trial_rng))
      | _ -> None
    in
    let traces = Hashtbl.create 16 in
    let trace_of p =
      match Hashtbl.find_opt traces p with
      | Some t -> t
      | None ->
          let t = Failure.create trial_rng ~lambda:(Platform.rate_of platform p) in
          Hashtbl.replace traces p t;
          t
    in
    Stats.add stats (makespan ?store:st ~bandwidth segs trace_of)
  done;
  stats
