(** Failure-injected execution under stable-storage contention — an
    extension beyond the paper, whose model prices I/O at full
    bandwidth regardless of how many processors checkpoint at once.

    Here the shared storage has an aggregate bandwidth fairly divided
    among the processors currently reading or writing (a fluid model):
    with [k] concurrent streams each progresses at [bandwidth / k].
    Every segment runs three phases — read its R bytes, compute its W
    seconds, write its C bytes — and a fail-stop failure during any
    phase restarts the segment from its read phase, exactly like the
    contention-free engine. Synchronous checkpointing strategies
    (CKPTALL after every task; the bipartite-completed CKPTSOME after
    every level) produce I/O bursts, so contention widens the gap the
    paper measures at nominal bandwidth.

    An optional {!Ckpt_storage.Store} composes with contention: the
    store's policy decides durability at the first write attempt of
    each commit cycle (a policy-skipped commit is volatile — readable
    in-run but not a recovery line), a detected commit failure rewrites
    the replica set at the shared bandwidth (the rewrite {e is} the
    backoff — no wall-clock sleep is charged, since the stream already
    competes for bandwidth), an exhausted commit cycle re-executes its
    segment, and a failed recovery read discovered at dispatch time
    (corrupt replicas or an invalidated handle) sends the producing
    segment back to the head of its processor's queue (cascading
    transitively) while the consumer waits. Storage outage intervals
    and remote commit/read latency are {e not} modelled here —
    contention's fluid bandwidth sharing is itself the
    storage-availability model of this simulator. *)

type seg = {
  processor : int;
  read_bytes : float;
  work : float;  (** seconds *)
  write_bytes : float;
  preds : int list;
}

val makespan :
  ?store:Ckpt_storage.Store.t ->
  bandwidth:float ->
  seg array ->
  (int -> Ckpt_platform.Failure.t) ->
  float
(** Execute under fair-shared bandwidth. Preconditions as
    {!Engine.makespan}: topologically ordered, per-processor order
    respected. [store] attaches a per-trial checkpoint store (commit
    failures, latent corruption, policy-volatile commits, cascading
    rollback as described above); omitted, checkpoints are perfectly
    reliable.

    @raise Invalid_argument on a bad ordering or non-positive
    bandwidth. *)

val segs_of_plan : Ckpt_core.Strategy.plan -> seg array
(** Rebuild byte quantities from the plan's segments and its
    platform's nominal bandwidth.

    @raise Invalid_argument on a CKPTNONE plan. *)

val simulate :
  ?trials:int ->
  ?seed:int ->
  ?store:Ckpt_storage.Store.config ->
  Ckpt_core.Strategy.plan ->
  Ckpt_prob.Stats.t
(** Monte-Carlo driver under contention, mirroring {!Runner.simulate}.
    [store] attaches the checkpoint store; each trial gets its own
    state on a substream split after the trial generator, and a
    {!Ckpt_storage.Store.passthrough} config draws nothing — the
    returned statistics are then bitwise those of the fault-free
    driver. *)
