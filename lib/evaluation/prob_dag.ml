module Rng = Ckpt_prob.Rng
module Dist = Ckpt_prob.Dist

type node = { base : float; degraded : float; pfail : float }

(* The frozen form: flat CSR adjacency, node fields in unboxed float
   arrays, and the topological order computed once. Immutable after
   construction, so one compiled graph can be shared read-only by any
   number of worker domains. *)
type compiled = {
  cn : int;
  base : float array;
  degraded : float array;
  pfail : float array;
  succ_off : int array;  (* length cn + 1 *)
  succ_tgt : int array;
  pred_off : int array;  (* length cn + 1 *)
  pred_tgt : int array;
  (* ceil (pfail * 2^53): [Rng.stream_bits53 < pthresh.(i)] is exactly
     [Rng.stream_uniform < pfail.(i)], as an immediate-int compare *)
  pthresh : int array;
  topo : int array;  (* [||] when the graph is cyclic *)
  acyclic : bool;
}

(* Per-domain scratch: one duration and one longest-path buffer, reused
   across samples so steady-state sampling allocates nothing. *)
type sampler = { graph : compiled; dur : float array; dist : float array }

type entry = { nd : node; mutable out_ : int list }

type t = {
  mutable entries : entry array;
  mutable n : int;
  mutable cache : compiled option;
  mutable own : sampler option;  (* lazy scratch backing the legacy [sample] *)
}

let create () = { entries = [||]; n = 0; cache = None; own = None }

let invalidate t =
  t.cache <- None;
  t.own <- None

let add_node t ~base ~degraded ~pfail =
  if base < 0. || degraded < base then invalid_arg "Prob_dag.add_node: need 0 <= base <= degraded";
  if pfail < 0. || pfail > 1. then invalid_arg "Prob_dag.add_node: pfail not in [0,1]";
  let cap = Array.length t.entries in
  if t.n = cap then begin
    let fresh =
      Array.make (max 8 (2 * cap)) { nd = { base = 0.; degraded = 0.; pfail = 0. }; out_ = [] }
    in
    Array.blit t.entries 0 fresh 0 t.n;
    t.entries <- fresh
  end;
  let id = t.n in
  t.entries.(id) <- { nd = { base; degraded; pfail }; out_ = [] };
  t.n <- t.n + 1;
  invalidate t;
  id

let check t i fn =
  if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Prob_dag.%s: unknown node %d" fn i)

let add_edge t u v =
  check t u "add_edge";
  check t v "add_edge";
  if u = v then invalid_arg "Prob_dag.add_edge: self-loop";
  (* duplicates are accepted in O(1) here and removed once at compile
     time (sort + unique on the CSR rows), instead of a List.mem scan
     that made bulk edge insertion quadratic in the degree *)
  t.entries.(u).out_ <- v :: t.entries.(u).out_;
  invalidate t

let n_nodes t = t.n

let node t i =
  check t i "node";
  t.entries.(i).nd

(* sort the int subarray [a.(lo) .. a.(hi-1)] ascending (compile-time
   only; allocation here is irrelevant) *)
let sort_range a lo hi =
  let len = hi - lo in
  if len > 1 then begin
    let tmp = Array.sub a lo len in
    Array.sort compare tmp;
    Array.blit tmp 0 a lo len
  end

let compile t =
  match t.cache with
  | Some c -> c
  | None ->
      let n = t.n in
      let base = Array.make n 0. and degraded = Array.make n 0. and pfail = Array.make n 0. in
      for i = 0 to n - 1 do
        let nd = t.entries.(i).nd in
        base.(i) <- nd.base;
        degraded.(i) <- nd.degraded;
        pfail.(i) <- nd.pfail
      done;
      (* raw CSR, duplicates still present *)
      let raw_off = Array.make (n + 1) 0 in
      for i = 0 to n - 1 do
        raw_off.(i + 1) <- raw_off.(i) + List.length t.entries.(i).out_
      done;
      let raw_tgt = Array.make (max 1 raw_off.(n)) 0 in
      for i = 0 to n - 1 do
        let k = ref raw_off.(i) in
        List.iter
          (fun v ->
            raw_tgt.(!k) <- v;
            incr k)
          t.entries.(i).out_
      done;
      (* sort each row, count the unique targets, then compact *)
      for i = 0 to n - 1 do
        sort_range raw_tgt raw_off.(i) raw_off.(i + 1)
      done;
      let succ_off = Array.make (n + 1) 0 in
      for i = 0 to n - 1 do
        let uniq = ref 0 in
        for j = raw_off.(i) to raw_off.(i + 1) - 1 do
          if j = raw_off.(i) || raw_tgt.(j) <> raw_tgt.(j - 1) then incr uniq
        done;
        succ_off.(i + 1) <- succ_off.(i) + !uniq
      done;
      let succ_tgt = Array.make (max 1 succ_off.(n)) 0 in
      for i = 0 to n - 1 do
        let k = ref succ_off.(i) in
        for j = raw_off.(i) to raw_off.(i + 1) - 1 do
          if j = raw_off.(i) || raw_tgt.(j) <> raw_tgt.(j - 1) then begin
            succ_tgt.(!k) <- raw_tgt.(j);
            incr k
          end
        done
      done;
      (* predecessors, derived from the deduplicated successor rows;
         scanning u in ascending order leaves each pred row sorted *)
      let pred_off = Array.make (n + 1) 0 in
      for j = 0 to succ_off.(n) - 1 do
        let v = succ_tgt.(j) in
        pred_off.(v + 1) <- pred_off.(v + 1) + 1
      done;
      for i = 0 to n - 1 do
        pred_off.(i + 1) <- pred_off.(i + 1) + pred_off.(i)
      done;
      let pred_tgt = Array.make (max 1 pred_off.(n)) 0 in
      let cursor = Array.copy pred_off in
      for u = 0 to n - 1 do
        for j = succ_off.(u) to succ_off.(u + 1) - 1 do
          let v = succ_tgt.(j) in
          pred_tgt.(cursor.(v)) <- u;
          cursor.(v) <- cursor.(v) + 1
        done
      done;
      (* Kahn's algorithm with an explicit stack, seeded from the
         highest node id down so low ids drain first *)
      let indeg = Array.init n (fun i -> pred_off.(i + 1) - pred_off.(i)) in
      let order = Array.make n (-1) in
      let stack = ref [] in
      for i = n - 1 downto 0 do
        if indeg.(i) = 0 then stack := i :: !stack
      done;
      let k = ref 0 in
      let rec drain () =
        match !stack with
        | [] -> ()
        | u :: rest ->
            stack := rest;
            order.(!k) <- u;
            incr k;
            for j = succ_off.(u) to succ_off.(u + 1) - 1 do
              let v = succ_tgt.(j) in
              indeg.(v) <- indeg.(v) - 1;
              if indeg.(v) = 0 then stack := v :: !stack
            done;
            drain ()
      in
      drain ();
      let acyclic = !k = n in
      let pthresh =
        Array.init n (fun i -> int_of_float (Float.ceil (pfail.(i) *. 0x1p53)))
      in
      let c =
        {
          cn = n;
          base;
          degraded;
          pfail;
          pthresh;
          succ_off;
          succ_tgt;
          pred_off;
          pred_tgt;
          topo = (if acyclic then order else [||]);
          acyclic;
        }
      in
      t.cache <- Some c;
      c

let row_to_list off tgt i =
  let acc = ref [] in
  for j = off.(i + 1) - 1 downto off.(i) do
    acc := tgt.(j) :: !acc
  done;
  !acc

let succs t i =
  check t i "succs";
  let c = compile t in
  row_to_list c.succ_off c.succ_tgt i

let preds t i =
  check t i "preds";
  let c = compile t in
  row_to_list c.pred_off c.pred_tgt i

let require_acyclic c fn =
  if not c.acyclic then invalid_arg (Printf.sprintf "Prob_dag.%s: cycle" fn)

let topological_order t =
  let c = compile t in
  require_acyclic c "topological_order";
  Array.copy c.topo

let expected_work t =
  let acc = ref 0. in
  for i = 0 to t.n - 1 do
    let nd = t.entries.(i).nd in
    acc := !acc +. ((1. -. nd.pfail) *. nd.base) +. (nd.pfail *. nd.degraded)
  done;
  !acc

(* longest path over the compiled form with per-node durations in
   [dur]; [dist] is caller-provided scratch and is overwritten *)
let longest_path_dur c ~dist ~dur =
  let n = c.cn in
  Array.fill dist 0 n 0.;
  let best = ref 0. in
  let topo = c.topo and off = c.succ_off and tgt = c.succ_tgt in
  for k = 0 to n - 1 do
    let u = Array.unsafe_get topo k in
    let d = Array.unsafe_get dist u +. Array.unsafe_get dur u in
    if d > !best then best := d;
    for j = Array.unsafe_get off u to Array.unsafe_get off (u + 1) - 1 do
      let v = Array.unsafe_get tgt j in
      if d > Array.unsafe_get dist v then Array.unsafe_set dist v d
    done
  done;
  !best

let longest_path_with t f =
  let c = compile t in
  require_acyclic c "longest_path_with";
  let n = c.cn in
  let dist = Array.make (max 1 n) 0. in
  let best = ref 0. in
  let topo = c.topo and off = c.succ_off and tgt = c.succ_tgt in
  for k = 0 to n - 1 do
    let u = Array.unsafe_get topo k in
    let d = Array.unsafe_get dist u +. f u in
    if d > !best then best := d;
    for j = Array.unsafe_get off u to Array.unsafe_get off (u + 1) - 1 do
      let v = Array.unsafe_get tgt j in
      if d > Array.unsafe_get dist v then Array.unsafe_set dist v d
    done
  done;
  !best

let deterministic_makespan t =
  let c = compile t in
  require_acyclic c "deterministic_makespan";
  longest_path_dur c ~dist:(Array.make (max 1 c.cn) 0.) ~dur:c.base

let sampler c =
  require_acyclic c "sampler";
  { graph = c; dur = Array.make (max 1 c.cn) 0.; dist = Array.make (max 1 c.cn) 0. }

let sample_with s rng =
  let c = s.graph in
  let n = c.cn in
  let dur = s.dur and pthresh = c.pthresh and base = c.base and degraded = c.degraded in
  (* node states come from a native-int bulk stream ([rng] only seeds
     it), drawn in node-id order — one draw per node with pfail > 0 —
     so the draw stream, and therefore the sample, does not depend on
     which valid topological order the compiler picked. The integer
     threshold compare is bitwise [Rng.stream_uniform st < pfail.(i)]
     without leaving immediate values. *)
  let st = Rng.stream rng in
  for i = 0 to n - 1 do
    let th = Array.unsafe_get pthresh i in
    Array.unsafe_set dur i
      (if th > 0 && Rng.stream_bits53 st < th then Array.unsafe_get degraded i
       else Array.unsafe_get base i)
  done;
  longest_path_dur c ~dist:s.dist ~dur

let sample t rng =
  let s =
    match t.own with
    | Some s -> s
    | None ->
        let s = sampler (compile t) in
        t.own <- Some s;
        s
  in
  sample_with s rng

let dist_of_node t i =
  let nd = node t i in
  Dist.two_state ~p:nd.pfail nd.base nd.degraded
