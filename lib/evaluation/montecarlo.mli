(** MONTECARLO estimator: sample makespan realisations and average.

    The classical ground-truth method (van Slyke 1963): unbiased, with
    a [1/sqrt(trials)] error, but expensive — the paper uses 300,000
    trials to calibrate the other estimators and notes this is
    prohibitive in practice.

    A wall-clock {!Ckpt_resilience.Deadline} can bound the sampling
    loop: when the budget runs out the estimator stops at the samples
    drawn so far (a checkpointed sample count, at least one batch)
    instead of hanging — the resulting statistics report the achieved
    count via [Stats.count]. *)

val estimate :
  ?trials:int -> ?seed:int -> ?deadline:Ckpt_resilience.Deadline.t -> Prob_dag.t -> float
(** Mean over [trials] (default 10_000) independent realisations, or
    over however many completed before [deadline] expired. *)

val estimate_with_stats :
  ?trials:int ->
  ?seed:int ->
  ?deadline:Ckpt_resilience.Deadline.t ->
  Prob_dag.t ->
  Ckpt_prob.Stats.t
(** Full sample statistics (mean, variance, extremes, CI). *)
