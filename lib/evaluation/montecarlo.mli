(** MONTECARLO estimator: sample makespan realisations and average.

    The classical ground-truth method (van Slyke 1963): unbiased, with
    a [1/sqrt(trials)] error, but expensive — the paper uses 300,000
    trials to calibrate the other estimators and notes this is
    prohibitive in practice. This implementation therefore samples
    through the compiled CSR form of the DAG (zero allocation per
    trial) and can fan the trial loop out over [jobs] worker domains.

    Parallelism is {e strictly deterministic}: trial [i]'s generator is
    a pure function of [(seed, i)] ({!Ckpt_prob.Rng.for_trial}), trials
    are processed in fixed 128-trial chunks, and per-chunk statistics
    are folded in chunk order with Chan's parallel Welford combine — so
    the returned statistics are bitwise identical for any [jobs] value,
    including the sequential [jobs = 1].

    A wall-clock {!Ckpt_resilience.Deadline} can bound the sampling
    loop: the clock is checked once per chunk, and when the budget runs
    out the estimator stops at the chunks completed so far (at least
    one) instead of hanging — the resulting statistics report the
    achieved count via [Stats.count]. *)

val estimate :
  ?trials:int ->
  ?seed:int ->
  ?deadline:Ckpt_resilience.Deadline.t ->
  ?jobs:int ->
  Prob_dag.t ->
  float
(** Mean over [trials] (default 10_000) independent realisations, or
    over however many completed before [deadline] expired. [jobs]
    (default 1) worker domains; the result does not depend on it. *)

val estimate_with_stats :
  ?trials:int ->
  ?seed:int ->
  ?deadline:Ckpt_resilience.Deadline.t ->
  ?jobs:int ->
  Prob_dag.t ->
  Ckpt_prob.Stats.t
(** Full sample statistics (mean, variance, extremes, CI). *)
