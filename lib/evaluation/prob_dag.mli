(** 2-state probabilistic DAGs (Section II-B).

    Every node's duration is an independent random variable taking a
    [base] value with probability [1 - pfail] and a [degraded] value
    with probability [pfail]. Under the paper's first-order model a
    checkpointed task segment of total cost [S = R + W + C] on a
    processor of failure rate λ has [base = S], [degraded = 3/2 S] and
    [pfail = λ S] (Eq. 2). The makespan is the longest path (sum of
    node durations along a path, maximised over paths); computing its
    expectation exactly is #P-complete, hence the estimators in
    {!Montecarlo}, {!Dodin}, {!Sculli}, {!Pathapprox}.

    The type {!t} is a mutable builder. Behind it sits a {!compiled}
    form — flat CSR successor/predecessor arrays, node fields in
    unboxed float arrays, the topological order computed once — that
    every traversal ({!topological_order}, {!longest_path_with},
    {!sample}, ...) goes through; it is (re)built lazily after
    mutations. Compiling also deduplicates parallel edges, so
    {!add_edge} is O(1) instead of scanning the successor list. *)

type node = { base : float; degraded : float; pfail : float }

type t

val create : unit -> t

val add_node : t -> base:float -> degraded:float -> pfail:float -> int
(** @raise Invalid_argument unless [0 <= base <= degraded] and
    [0 <= pfail <= 1]. *)

val add_edge : t -> int -> int -> unit
(** O(1); duplicate edges are removed at compile time (they are
    semantically idempotent for longest paths). @raise Invalid_argument
    on unknown endpoints or self-loops. *)

val n_nodes : t -> int
val node : t -> int -> node

val succs : t -> int -> int list
(** Successors, sorted ascending and deduplicated. *)

val preds : t -> int -> int list
(** Predecessors, sorted ascending and deduplicated. *)

val topological_order : t -> int array
(** @raise Invalid_argument on cycles. *)

val expected_work : t -> float
(** Sum over nodes of the expected duration — a cheap sanity metric. *)

val longest_path_with : t -> (int -> float) -> float
(** Longest path when node [i] lasts [f i]. *)

val deterministic_makespan : t -> float
(** Longest path with every node at its [base] value. *)

val sample : t -> Ckpt_prob.Rng.t -> float
(** Draw one makespan realisation (independent node states). [rng]
    seeds a {!Ckpt_prob.Rng.stream} (advancing [rng] by one draw); node
    states are then drawn from it in node-id order — one
    [stream_uniform] compared against [pfail] per node with
    [pfail > 0]. Uses a scratch buffer cached inside [t]: convenient
    and allocation-free from a single domain, but NOT safe to call on
    the same [t] from several domains — parallel callers compile once
    and give each domain its own {!sampler}. *)

val dist_of_node : t -> int -> Ckpt_prob.Dist.t
(** The node's two-point duration distribution. *)

(** {2 Compiled form} *)

type compiled
(** Immutable frozen graph. Safe to share read-only across domains. *)

val compile : t -> compiled
(** Freeze the builder (memoised; invalidated by {!add_node} /
    {!add_edge}). Cheap to call repeatedly on an unchanged graph. *)

type sampler
(** A compiled graph plus per-domain scratch buffers: sampling through
    one allocates nothing in steady state. A sampler must not be shared
    between domains; derive one per worker from the shared
    {!compiled}. *)

val sampler : compiled -> sampler
(** @raise Invalid_argument on a cyclic graph. *)

val sample_with : sampler -> Ckpt_prob.Rng.t -> float
(** Same draw semantics as {!sample} (node-id order), zero allocation. *)
