module Rng = Ckpt_prob.Rng
module Stats = Ckpt_prob.Stats
module Deadline = Ckpt_resilience.Deadline

(* How many samples to draw between deadline checks: cheap enough to
   keep the overshoot small, coarse enough that the clock read does not
   show up in the profile. *)
let check_every = 128

let estimate_with_stats ?(trials = 10_000) ?(seed = 1) ?(deadline = Deadline.never) dag =
  if trials < 1 then invalid_arg "Montecarlo.estimate: trials < 1";
  let rng = Rng.create seed in
  let stats = Stats.create () in
  (try
     for i = 1 to trials do
       Stats.add stats (Prob_dag.sample dag rng);
       if i mod check_every = 0 && Deadline.expired deadline then raise Exit
     done
   with Exit -> ());
  stats

let estimate ?trials ?seed ?deadline dag =
  Stats.mean (estimate_with_stats ?trials ?seed ?deadline dag)
