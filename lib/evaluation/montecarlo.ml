module Rng = Ckpt_prob.Rng
module Stats = Ckpt_prob.Stats
module Deadline = Ckpt_resilience.Deadline
module Pool = Ckpt_parallel.Pool

(* Trials are processed in fixed chunks. A chunk is the unit of work
   distribution, of deadline checking (the clock is read once per
   chunk, cheap enough to keep the overshoot small, coarse enough that
   it does not show in the profile) and of statistics merging: each
   chunk's Welford accumulator depends only on (seed, chunk index), and
   the completed prefix is folded in chunk order, so the result is
   bitwise identical for any [jobs] value. *)
let chunk_trials = 128

let sample_chunks ?(trials = 10_000) ?(seed = 1) ?(deadline = Deadline.never) ?(jobs = 1) dag =
  if trials < 1 then invalid_arg "Montecarlo.estimate: trials < 1";
  if jobs < 1 then invalid_arg "Montecarlo.estimate: jobs < 1";
  let compiled = Prob_dag.compile dag in
  let nchunks = (trials + chunk_trials - 1) / chunk_trials in
  let partial = Array.make nchunks None in
  let next = Atomic.make 0 in
  Pool.run_shared ~jobs:(min jobs nchunks) (fun ~worker:_ ->
      let s = Prob_dag.sampler compiled in
      let rec loop () =
        let c = Atomic.fetch_and_add next 1 in
        (* the first chunk always completes so a blown deadline still
           returns well-defined statistics; afterwards workers stop
           claiming chunks once the budget is gone *)
        if c < nchunks && (c = 0 || not (Deadline.expired deadline)) then begin
          let st = Stats.create () in
          let hi = min trials ((c + 1) * chunk_trials) in
          for trial = c * chunk_trials to hi - 1 do
            Stats.add st (Prob_dag.sample_with s (Rng.for_trial ~seed trial))
          done;
          partial.(c) <- Some st;
          loop ()
        end
      in
      loop ());
  partial

let estimate_with_stats ?trials ?seed ?deadline ?jobs dag =
  let partial = sample_chunks ?trials ?seed ?deadline ?jobs dag in
  (* fold the completed prefix in chunk order: deterministic and
     jobs-invariant (chunks finished beyond a deadline-induced gap are
     discarded, mirroring the sequential cut-off) *)
  let acc = Stats.create () in
  (try
     Array.iter
       (function Some st -> Stats.merge_into acc st | None -> raise Exit)
       partial
   with Exit -> ());
  acc

let estimate ?trials ?seed ?deadline ?jobs dag =
  Stats.mean (estimate_with_stats ?trials ?seed ?deadline ?jobs dag)
