(** The checkpoint store: a first-class commit/read/invalidate/stats
    interface over per-segment recovery lines.

    {!Storage} models checkpoint {e faults}; this module models the
    {e store} — which recovery lines are durable, how commits are
    persisted, and how a resumed run decides whether a checkpoint on
    disk is trustworthy. The simulators talk to the store, and the
    store composes a backend with the fault physics:

    - [Memory] — today's semantics; the default configuration is
      bitwise identical to pre-store behaviour (no extra randomness,
      no extra simulated time);
    - [Disk] — a crash-consistent journal of committed recovery lines
      (each record fsynced as one CRC-framed append): a fail-stop
      error mid-commit tears at most the trailing record, which the
      next open drops — never a readable partial — and a resumed run
      replays only records whose fingerprint validates;
    - [Replicated] — the store owns the replica count [k]: commits are
      [k] copies under the {!Storage} per-replica corruption/outage
      model and the planner prices them at [k·C];
    - [Remote] — a latency-priced store: every durable commit and every
      recovery read adds a fixed latency to the simulated clock.

    Checkpoint policies decide which commits are {e durable} (survive a
    recovery line — a processor loss, revocation, or resumed run):
    [every-segment] (the paper's model), [every-k] (only each k-th
    commit per trial durable), [on-interrupt] (only proactive
    grace-window rescue commits durable). Policies never change the
    simulated timing of a run — write spans are part of segment
    durations either way — only what survives an interruption.

    Fingerprint-validated resume: the disk backend's file carries a
    header (schema version, DAG structural hash) and every record
    carries (schema, DAG hash, segment id, payload CRC). A header
    mismatch refuses to open ({!Ckpt_resilience.Error.Store_fingerprint},
    exit 3: the store belongs to a different workflow or build); a
    record mismatch rejects just that record — the segment's commit is
    re-executed and re-appended, never silently resumed. A torn
    trailing record (crash before the rename of an older writer) is
    dropped and counted.

    Determinism: {!create} consumes exactly the randomness
    {!Storage.create} does, and a {!passthrough} configuration draws
    nothing — simulators gated on {!passthrough} reproduce the
    fault-free path bitwise. *)

module Rng = Ckpt_prob.Rng
module Error = Ckpt_resilience.Error

val schema_version : int
(** Version stamped into every disk-store header and record. *)

(** {1 Configuration} *)

type policy =
  | Every_segment  (** every commit durable — the paper's model (default) *)
  | Every_k of int  (** only each [k]-th commit per trial durable *)
  | On_interrupt  (** only grace-window rescue commits durable *)

type backend =
  | Memory  (** in-process handles only; bitwise-identical default *)
  | Disk of { path : string }  (** crash-consistent journal of commits *)
  | Replicated of { k : int }  (** store-owned replica count (k·C pricing) *)
  | Remote of { commit_latency : float; read_latency : float }
      (** fixed simulated latency per durable commit / recovery read *)

type config = {
  backend : backend;
  policy : policy;
  faults : Storage.config;  (** the PR-5 fault physics underneath *)
}

val default : config
(** [Memory] backend, [Every_segment] policy, {!Storage.default}
    faults. *)

val passthrough : config -> bool
(** [true] iff the store changes nothing observable: [Memory] backend,
    [Every_segment] policy and {!Storage.reliable} faults — the gate
    under which simulators take the historic fault-free path. *)

val validate : config -> unit
(** @raise Invalid_argument on [Every_k k] with [k < 1], [Replicated]
    with [k < 1], negative [Remote] latencies, an empty [Disk] path, or
    an invalid fault config ({!Storage.validate}). *)

val plan_replicas : config -> int
(** The replica count the {e planner} must price checkpoints at:
    [Replicated k]'s [k], otherwise the fault config's [replicas]. *)

val backend_name : backend -> string
val policy_name : policy -> string

val parse_policy : string -> (policy, string) result
(** ["every-segment"], ["every-K"] (K a positive integer, e.g.
    ["every-3"]), or ["on-interrupt"]. *)

val fingerprint : string list -> string
(** CRC-32 chain over the rendered components, as 8 lower-case hex
    digits — the "DAG structural hash" of the store header. Callers
    render whatever determines checkpoint semantics (segment DAG,
    write spans, platform) into the parts. *)

(** {1 Disk persistence}

    One {!persist} per store {e file}, shared by every trial of a run
    (single-domain only); {!create} attaches it to per-trial stores. *)

type persist

val open_persist :
  ?inject:(unit -> unit) ->
  path:string ->
  fingerprint:string ->
  unit ->
  (persist, Error.t) result
(** Opens (or creates) the store file at [path] and validates its
    header against [fingerprint] and {!schema_version}. Errors:
    [Store_fingerprint] on a header mismatch, [Journal_corrupt] /
    [Journal_version] / [Io] as {!Ckpt_resilience.Journal.open_}.
    [inject] fires before every physical write (store-level fault
    injection). Records that fail their own fingerprint or CRC are
    dropped and counted ({!persist_rejected}) — their segments will
    re-commit. *)

val persist_path : persist -> string

val persist_torn : persist -> bool
(** A torn trailing record was dropped on load. *)

val persist_loaded : persist -> int
(** Valid records loaded from the file. *)

val persist_rejected : persist -> int
(** Fingerprint-rejected records: failed their (schema, DAG-hash,
    segment, CRC) validation at load time, or held a stale payload
    that this run's commit superseded. *)

val persist_resumed : persist -> int
(** Commits that were satisfied by a matching on-disk record (no
    rewrite) since {!open_persist}. *)

val persist_appended : persist -> int
(** Records (re-)written since {!open_persist} — fresh commits plus
    re-commits of rejected records. *)

(** {1 Per-trial store} *)

type t
(** One store per Monte-Carlo trial (like {!Storage.t}): fault
    randomness, policy state, handle validity and counters. Not
    shareable across domains. *)

val create :
  ?inject:(string -> unit) ->
  ?persist:persist ->
  ?scope:string ->
  ?trial:int ->
  config ->
  Rng.t ->
  t
(** [create config rng] validates and builds the trial store. [inject]
    fires at the top of every store operation (commit, read,
    invalidate) — wire {!Ckpt_resilience.Faulty.inject} through it.
    [persist] attaches the shared disk file; [scope] (default [""])
    and [trial] (default [0]) prefix its record keys so several
    experiment cells and trials share one file. Consumes exactly the
    randomness {!Storage.create} does.

    @raise Invalid_argument as {!validate}, or on a [Disk] backend
    without [persist] / [persist] without a [Disk] backend. *)

val config : t -> config

val faults : t -> Storage.t
(** The underlying fault-model state (shared counters). *)

type handle
(** One committed checkpoint: the fault-model replica layout plus
    store-level durability and generation. *)

val seg_of : handle -> int
val durable : handle -> bool
(** Whether the commit survives a recovery line (policy-dependent). *)

val available : t -> float -> float
(** Earliest instant [>= at] at which the store is reachable
    ({!Storage.available}). *)

val commit :
  ?interrupt:bool ->
  t ->
  seg:int ->
  write:float ->
  at:float ->
  (float * handle, float) result
(** [commit t ~seg ~write ~at] commits segment [seg]'s checkpoint
    whose write span ended at [at]. [interrupt] marks a grace-window
    rescue commit (durable under [On_interrupt]). A durable commit
    runs the full {!Storage.commit} fault physics (retries, outages)
    plus the backend's commit latency, and is persisted when a disk
    file is attached — a record already on disk with a matching
    fingerprint counts as {e resumed} and is not rewritten. A
    policy-skipped commit is volatile: instant, draws nothing, and its
    handle is readable within the run but not across a recovery line.
    [Error give_up_at] as {!Storage.commit}. *)

val begin_commit : ?interrupt:bool -> t -> [ `Durable | `Volatile ]
(** The policy decision for one logical commit, for event-driven
    simulators that drive the attempt loop themselves: advances the
    policy position (every-k) and the skip counter. [`Durable] —
    run {!commit_step} attempts and finish with {!fresh_handle};
    [`Volatile] — skip the fault physics and take
    {!volatile_handle}. ({!commit} calls this internally.) *)

val commit_step : t -> attempt:int -> Storage.commit_step
(** {!Storage.commit_step} for event-driven simulators (contention):
    counters and draws exactly as the fault layer's. *)

val fresh_handle : t -> seg:int -> at:float -> handle
(** The durable handle of an event-driven commit that completed at
    [at] (pairs with {!commit_step}); persists the record like
    {!commit}. *)

val volatile_handle : t -> seg:int -> handle
(** The handle of a policy-skipped commit: draws nothing, readable
    within the run only. *)

val commit_latency : t -> float
(** The backend's fixed commit latency ([Remote], else 0) — for
    event-driven simulators that charge spans themselves. *)

type read_error =
  | Corrupt  (** every replica corrupt at read time (fault model) *)
  | Rejected  (** invalidated or volatile handle at a recovery line *)

val read : t -> handle -> at:float -> (float, read_error) result
(** A recovery read at instant [at]: [Ok ready_at] when the checkpoint
    reads back valid ([ready_at = at] plus the backend's read
    latency); [Error] counts the failure and logs the producing
    segment in {!failed_reads} — the caller rolls the recovery line
    back. *)

val recovery_readable : t -> handle -> at:float -> bool
(** Recovery-line revalidation (degraded-mode sweeps): [true] iff the
    handle is durable, not invalidated, and its replicas read back
    valid. Counts reads and failures but does {e not} feed
    {!failed_reads} (that log mirrors the in-run engine rollbacks
    only). *)

val invalidate : t -> seg:int -> unit
(** Evicts segment [seg]'s committed checkpoints: every handle
    committed so far reads back [Rejected] until the segment commits
    again (monotone — invalidation never un-happens for old
    handles). *)

val failed_reads : t -> int list
(** Producing segments of every failed in-run {!read} (corrupt or
    rejected), chronological — the engine's cascading-rollback log
    must match exactly. *)

type stats = {
  commits : int;  (** commit calls (volatile ones included) *)
  commit_retries : int;  (** detected commit failures retried *)
  commit_exhausted : int;  (** commits that exhausted the backoff *)
  reads : int;  (** read + revalidation calls *)
  corrupt_reads : int;  (** reads that found every replica corrupt *)
  rejected_reads : int;  (** reads refused by invalidation or policy *)
  skipped : int;  (** policy-skipped (volatile) commits *)
  resumed : int;  (** commits satisfied by a matching disk record *)
  evictions : int;  (** {!invalidate} calls *)
}

val zero : stats
(** All-zero counters (the passthrough placeholder). *)

val add : stats -> stats -> stats
(** Field-wise sum — aggregation across trials. *)

val stats : t -> stats

val fault_stats : t -> Storage.stats
(** The underlying fault-layer counters (subset of {!stats}). *)
