module Rng = Ckpt_prob.Rng
module Error = Ckpt_resilience.Error
module Journal = Ckpt_resilience.Journal

let schema_version = 1

(* ---------- configuration ---------- *)

type policy = Every_segment | Every_k of int | On_interrupt

type backend =
  | Memory
  | Disk of { path : string }
  | Replicated of { k : int }
  | Remote of { commit_latency : float; read_latency : float }

type config = { backend : backend; policy : policy; faults : Storage.config }

let default = { backend = Memory; policy = Every_segment; faults = Storage.default }

let passthrough c =
  c.backend = Memory && c.policy = Every_segment && Storage.reliable c.faults

let validate c =
  (match c.policy with
  | Every_k k when k < 1 -> invalid_arg "Store: every-k policy with k < 1"
  | Every_segment | Every_k _ | On_interrupt -> ());
  (match c.backend with
  | Memory -> ()
  | Disk { path } -> if path = "" then invalid_arg "Store: empty disk-store path"
  | Replicated { k } -> if k < 1 then invalid_arg "Store: replicated backend with k < 1"
  | Remote { commit_latency; read_latency } ->
      if
        (not (Float.is_finite commit_latency))
        || (not (Float.is_finite read_latency))
        || commit_latency < 0. || read_latency < 0.
      then invalid_arg "Store: remote latencies must be finite and non-negative");
  Storage.validate c.faults

let plan_replicas c =
  match c.backend with Replicated { k } -> k | _ -> c.faults.Storage.replicas

let backend_name = function
  | Memory -> "memory"
  | Disk _ -> "disk"
  | Replicated _ -> "replicated"
  | Remote _ -> "remote"

let policy_name = function
  | Every_segment -> "every-segment"
  | Every_k k -> Printf.sprintf "every-%d" k
  | On_interrupt -> "on-interrupt"

let parse_policy s =
  match s with
  | "every-segment" -> Ok Every_segment
  | "on-interrupt" -> Ok On_interrupt
  | _ ->
      let prefix = "every-" in
      let plen = String.length prefix in
      if String.length s > plen && String.sub s 0 plen = prefix then
        match int_of_string_opt (String.sub s plen (String.length s - plen)) with
        | Some k when k >= 1 -> Ok (Every_k k)
        | Some _ | None ->
            Result.Error
              (Printf.sprintf "invalid checkpoint policy %S (every-K needs K >= 1)" s)
      else
        Result.Error
          (Printf.sprintf
             "invalid checkpoint policy %S (expected every-segment, every-K or \
              on-interrupt)"
             s)

let fingerprint parts =
  let crc =
    List.fold_left
      (fun acc part -> Journal.crc32 (Printf.sprintf "%08lx:%s" acc part))
      0l parts
  in
  Printf.sprintf "%08lx" crc

(* ---------- disk persistence ---------- *)

(* One [persist] per store file, shared by every trial (and experiment
   cell) of a run. The file is a {!Journal} — per-line CRC, each
   record fsynced by an O_APPEND write ({!Journal.append_incr}: a
   crash mid-commit tears at most the trailing line, dropped on
   load) — whose first entry is the store header
   [__ckpt_store__ -> schema=<v> dag=<hash>]. Each record is
   [<scope>/t<trial>/s<seg> -> <schema>|<dag>|<seg>|<payload-crc>|<payload>],
   the payload being the commit instant's IEEE-754 bits: deterministic
   per (seed, trial, seg), so a resumed run recognises its own commits
   and rejects anybody else's. The last fingerprint-valid binding of a
   key wins on load. *)

type persist = {
  journal : Journal.t;
  records : (string, string) Hashtbl.t; (* key -> payload (hex bits) *)
  fp : string;
  torn : bool;
  loaded : int;
  mutable rejected : int; (* load-rejected + superseded-at-commit *)
  mutable resumed : int;
  mutable appended : int;
}

let header_key = "__ckpt_store__"
let header_value fp = Printf.sprintf "schema=%d dag=%s" schema_version fp

let render_record ~fp ~seg payload =
  Printf.sprintf "%d|%s|%d|%08lx|%s" schema_version fp seg (Journal.crc32 payload)
    payload

(* A record's own (schema, dag, seg, crc) fingerprint — validated
   independently of the journal's line CRC, so a record that survives
   framing but belongs to another schema, workflow or segment is
   rejected (and re-committed), never silently resumed. *)
let parse_record ~fp ~key value =
  match String.split_on_char '|' value with
  | [ schema; dag; seg; crc; payload ] ->
      let seg_of_key =
        match String.rindex_opt key '/' with
        | Some i when i + 2 <= String.length key && key.[i + 1] = 's' ->
            int_of_string_opt (String.sub key (i + 2) (String.length key - i - 2))
        | _ -> None
      in
      if
        int_of_string_opt schema = Some schema_version
        && dag = fp
        && int_of_string_opt seg <> None
        && seg_of_key = int_of_string_opt seg
        && crc = Printf.sprintf "%08lx" (Journal.crc32 payload)
      then Some payload
      else None
  | _ -> None

let open_persist ?(inject = fun () -> ()) ~path ~fingerprint:fp () =
  match Journal.open_ ~inject path with
  | Result.Error _ as e -> e
  | Ok journal -> (
      let check_header () =
        if Journal.length journal = 0 then begin
          Journal.append journal ~key:header_key ~value:(header_value fp);
          Ok ()
        end
        else
          match Journal.find journal header_key with
          | None ->
              Result.Error
                (Error.Store_fingerprint
                   {
                     path;
                     field = "header";
                     found = "absent";
                     expected = header_value fp;
                   })
          | Some v -> (
              match String.split_on_char ' ' v with
              | [ schema; dag ]
                when String.length schema > 7
                     && String.sub schema 0 7 = "schema="
                     && String.length dag > 4
                     && String.sub dag 0 4 = "dag=" ->
                  let found_schema =
                    String.sub schema 7 (String.length schema - 7)
                  in
                  let found_dag = String.sub dag 4 (String.length dag - 4) in
                  if found_schema <> string_of_int schema_version then
                    Result.Error
                      (Error.Store_fingerprint
                         {
                           path;
                           field = "schema";
                           found = found_schema;
                           expected = string_of_int schema_version;
                         })
                  else if found_dag <> fp then
                    Result.Error
                      (Error.Store_fingerprint
                         { path; field = "dag"; found = found_dag; expected = fp })
                  else Ok ()
              | _ ->
                  Result.Error
                    (Error.Store_fingerprint
                       { path; field = "header"; found = v; expected = header_value fp }))
      in
      match check_header () with
      | Result.Error _ as e -> e
      | exception Error.E e -> Result.Error e
      | Ok () ->
          let records = Hashtbl.create 64 in
          let rejected = ref 0 in
          List.iter
            (fun (key, value) ->
              if key <> header_key then
                match parse_record ~fp ~key value with
                | Some payload -> Hashtbl.replace records key payload
                | None -> incr rejected)
            (Journal.entries journal);
          Ok
            {
              journal;
              records;
              fp;
              torn = Journal.recovered_tail journal;
              loaded = Hashtbl.length records;
              rejected = !rejected;
              resumed = 0;
              appended = 0;
            })

let persist_path p = Journal.path p.journal
let persist_torn p = p.torn
let persist_loaded p = p.loaded
let persist_rejected p = p.rejected
let persist_resumed p = p.resumed
let persist_appended p = p.appended

(* ---------- per-trial store ---------- *)

type t = {
  config : config;
  st : Storage.t;
  persist : persist option;
  keyprefix : string;
  inject : string -> unit;
  gens : (int, int) Hashtbl.t; (* per-segment commit generation *)
  watermark : (int, int) Hashtbl.t; (* generations <= watermark are invalidated *)
  mutable regular_commits : int; (* every-k policy position *)
  mutable extra_reads : int; (* reads not seen by the fault layer *)
  mutable rejected_reads : int;
  mutable skipped : int;
  mutable resumed : int;
  mutable evictions : int;
  mutable rev_failed : int list; (* in-run read failures, newest first *)
}

let create ?(inject = fun (_ : string) -> ()) ?persist ?(scope = "") ?(trial = 0)
    config rng =
  validate config;
  (match (config.backend, persist) with
  | Disk _, None -> invalid_arg "Store: disk backend needs an open persist"
  | (Memory | Replicated _ | Remote _), Some _ ->
      invalid_arg "Store: persist attached to a non-disk backend"
  | Disk _, Some _ | (Memory | Replicated _ | Remote _), None -> ());
  let effective =
    match config.backend with
    | Replicated { k } -> { config.faults with Storage.replicas = k }
    | Memory | Disk _ | Remote _ -> config.faults
  in
  let keyprefix =
    if scope = "" then Printf.sprintf "t%d/" trial
    else Printf.sprintf "%s/t%d/" scope trial
  in
  {
    config;
    st = Storage.create ~inject effective rng;
    persist;
    keyprefix;
    inject;
    gens = Hashtbl.create 16;
    watermark = Hashtbl.create 4;
    regular_commits = 0;
    extra_reads = 0;
    rejected_reads = 0;
    skipped = 0;
    resumed = 0;
    evictions = 0;
    rev_failed = [];
  }

let config t = t.config
let faults t = t.st

type body = Durable of Storage.ckpt | Volatile
type handle = { hseg : int; gen : int; body : body }

let seg_of h = h.hseg
let durable h = match h.body with Durable _ -> true | Volatile -> false
let available t at = Storage.available t.st at

let commit_latency t =
  match t.config.backend with Remote { commit_latency; _ } -> commit_latency | _ -> 0.

let read_latency t =
  match t.config.backend with Remote { read_latency; _ } -> read_latency | _ -> 0.

let bump_gen t seg =
  let g = 1 + Option.value ~default:0 (Hashtbl.find_opt t.gens seg) in
  Hashtbl.replace t.gens seg g;
  g

let invalidated t h =
  h.gen <= Option.value ~default:0 (Hashtbl.find_opt t.watermark h.hseg)

(* Durable commits of a resumed run are recognised by their on-disk
   record (same key, same payload bits): nothing is rewritten. A
   record that exists but disagrees is fingerprint-stale — counted
   rejected and superseded by an atomic re-append. *)
let persist_record t ~seg ~at =
  match t.persist with
  | None -> ()
  | Some p ->
      let key = Printf.sprintf "%ss%d" t.keyprefix seg in
      let payload = Printf.sprintf "%Lx" (Int64.bits_of_float at) in
      (match Hashtbl.find_opt p.records key with
      | Some prior when prior = payload ->
          p.resumed <- p.resumed + 1;
          t.resumed <- t.resumed + 1
      | prior ->
          (match prior with
          | Some _ -> p.rejected <- p.rejected + 1
          | None -> ());
          Journal.append_incr p.journal ~key ~value:(render_record ~fp:p.fp ~seg payload);
          Hashtbl.replace p.records key payload;
          p.appended <- p.appended + 1)

let begin_commit ?(interrupt = false) t =
  let durable =
    match t.config.policy with
    | Every_segment -> true
    | On_interrupt -> interrupt
    | Every_k k ->
        if interrupt then true
        else begin
          t.regular_commits <- t.regular_commits + 1;
          t.regular_commits mod k = 0
        end
  in
  if durable then `Durable
  else begin
    t.skipped <- t.skipped + 1;
    `Volatile
  end

let volatile_handle t ~seg = { hseg = seg; gen = bump_gen t seg; body = Volatile }

let fresh_handle t ~seg ~at =
  let ck = Storage.fresh_ckpt t.st ~seg ~at in
  persist_record t ~seg ~at;
  { hseg = seg; gen = bump_gen t seg; body = Durable ck }

let commit ?(interrupt = false) t ~seg ~write ~at =
  match begin_commit ~interrupt t with
  | `Volatile ->
      (* policy-skipped: local scratch only — instant, no fault
         physics, no persistence; readable within the run but not
         across a recovery line *)
      t.inject "store commit";
      Ok (at, volatile_handle t ~seg)
  | `Durable -> (
      match Storage.commit t.st ~seg ~write ~at with
      | Result.Error _ as e -> e
      | Ok (done_at, ck) ->
          let done_at = done_at +. commit_latency t in
          persist_record t ~seg ~at:done_at;
          Ok (done_at, { hseg = seg; gen = bump_gen t seg; body = Durable ck }))

let commit_step t ~attempt = Storage.commit_step t.st ~attempt

type read_error = Corrupt | Rejected

let read t h ~at =
  if invalidated t h then begin
    t.inject "store read";
    t.extra_reads <- t.extra_reads + 1;
    t.rejected_reads <- t.rejected_reads + 1;
    t.rev_failed <- h.hseg :: t.rev_failed;
    Result.Error Rejected
  end
  else
    match h.body with
    | Volatile ->
        (* volatile handles live in the producing run's memory: always
           readable there, at no storage cost *)
        t.inject "store read";
        t.extra_reads <- t.extra_reads + 1;
        Ok at
    | Durable ck ->
        if Storage.read t.st ck ~at then Ok (at +. read_latency t)
        else begin
          t.rev_failed <- h.hseg :: t.rev_failed;
          Result.Error Corrupt
        end

let recovery_readable t h ~at =
  if invalidated t h then begin
    t.inject "store read";
    t.extra_reads <- t.extra_reads + 1;
    t.rejected_reads <- t.rejected_reads + 1;
    false
  end
  else
    match h.body with
    | Volatile ->
        t.inject "store read";
        t.extra_reads <- t.extra_reads + 1;
        t.rejected_reads <- t.rejected_reads + 1;
        false
    | Durable ck -> Storage.read t.st ck ~at

let invalidate t ~seg =
  t.inject "store invalidate";
  t.evictions <- t.evictions + 1;
  Hashtbl.replace t.watermark seg
    (Option.value ~default:0 (Hashtbl.find_opt t.gens seg))

let failed_reads t = List.rev t.rev_failed

type stats = {
  commits : int;
  commit_retries : int;
  commit_exhausted : int;
  reads : int;
  corrupt_reads : int;
  rejected_reads : int;
  skipped : int;
  resumed : int;
  evictions : int;
}

let zero =
  {
    commits = 0;
    commit_retries = 0;
    commit_exhausted = 0;
    reads = 0;
    corrupt_reads = 0;
    rejected_reads = 0;
    skipped = 0;
    resumed = 0;
    evictions = 0;
  }

let add a b =
  {
    commits = a.commits + b.commits;
    commit_retries = a.commit_retries + b.commit_retries;
    commit_exhausted = a.commit_exhausted + b.commit_exhausted;
    reads = a.reads + b.reads;
    corrupt_reads = a.corrupt_reads + b.corrupt_reads;
    rejected_reads = a.rejected_reads + b.rejected_reads;
    skipped = a.skipped + b.skipped;
    resumed = a.resumed + b.resumed;
    evictions = a.evictions + b.evictions;
  }

let stats t =
  let s = Storage.stats t.st in
  {
    commits = s.Storage.commits + t.skipped;
    commit_retries = s.Storage.commit_retries;
    commit_exhausted = s.Storage.commit_exhausted;
    reads = s.Storage.reads + t.extra_reads;
    corrupt_reads = s.Storage.corrupt_reads;
    rejected_reads = t.rejected_reads;
    skipped = t.skipped;
    resumed = t.resumed;
    evictions = t.evictions;
  }

let fault_stats t = Storage.stats t.st
