(** Unreliable stable storage: the checkpoint fault model.

    The paper (and the baseline {!Ckpt_sim.Engine}) assumes a committed
    checkpoint is always readable. This module drops that assumption
    and gives the simulators a three-way storage fault taxonomy:

    - {e detected commit failures}: a checkpoint write fails visibly
      with probability [commit_fail_prob]; the writer retries under the
      existing {!Ckpt_resilience.Retry} backoff policy (each retried
      write re-pays the full write span after its backoff delay), and a
      policy exhaustion escalates to re-executing the whole segment;
    - {e latent corruption}: each replica copy of a committed
      checkpoint is corrupt from birth with probability [corrupt_prob]
      and/or rots at an exponential instant of rate [storage_lambda]
      after landing on disk — revealed only when a recovery {!read}
      tries to consume it, which is what forces cascading rollback;
    - {e transient outages}: storage is unreachable during outage
      intervals (Poisson starts at [outage_rate], exponential durations
      of mean [outage_mean]); reads and writes wait them out.

    A checkpoint is committed as [replicas] independent copies (the
    planner prices the commit at [k·C], see {!Ckpt_core.Placement});
    a recovery read succeeds iff {e some} replica is still valid, so
    the read-failure probability drops geometrically with k.

    Determinism: one {!t} per Monte-Carlo trial, created from a
    dedicated {!Ckpt_prob.Rng} substream; a {!reliable} configuration
    draws {e nothing}, so disabling the fault model reproduces the
    fault-free simulators bitwise. The [inject] hook makes every
    storage operation an injectable fail-stop site
    ({!Ckpt_resilience.Faulty}). *)

module Rng = Ckpt_prob.Rng
module Retry = Ckpt_resilience.Retry

type config = {
  commit_fail_prob : float;  (** detected write-failure probability, in [\[0, 1)] *)
  corrupt_prob : float;
      (** per-replica latent-corruption probability, in [\[0, 1)] *)
  storage_lambda : float;  (** per-replica corruption rate in time-on-disk; 0 = never *)
  outage_rate : float;  (** storage outage starts per second; 0 = never *)
  outage_mean : float;  (** mean outage duration, seconds *)
  replicas : int;  (** copies per checkpoint commit; >= 1 *)
  backoff : Retry.policy;  (** backoff between detected-commit-failure retries *)
}

val default : config
(** All fault channels off, one replica, {!Retry.default} backoff. *)

val reliable : config -> bool
(** [true] iff every fault channel is off — the configuration under
    which the storage-aware simulators are bitwise identical to the
    fault-free ones ([replicas] is a pure planning knob and does not
    affect reliability here). *)

val validate : config -> unit
(** @raise Invalid_argument on probabilities outside [\[0, 1)] (1 would
    make cascading rollback loop forever), negative rates, an outage
    rate without a positive mean duration, [replicas < 1], or an
    invalid backoff policy. *)

type t
(** Per-trial storage state: fault randomness, lazily materialised
    outage intervals, and operation counters. Not shareable across
    domains — each trial owns one. *)

val create : ?inject:(string -> unit) -> config -> Rng.t -> t
(** [create config rng] validates [config] and builds the trial state
    on [rng] (a dedicated substream). [inject] is called at the top of
    every {!commit} and {!read} — wire {!Ckpt_resilience.Faulty.inject}
    through it to make storage operations injectable fault sites.

    @raise Invalid_argument as {!validate}. *)

val config : t -> config

val available : t -> float -> float
(** [available t at] is the earliest instant [>= at] at which storage
    is not in an outage (the identity when [outage_rate = 0]). Queries
    need not be monotone; drawn intervals are remembered. *)

type ckpt
(** Handle of one committed checkpoint (its replica corruption layout
    is fixed at commit time, revealed at read time). *)

val commit : t -> seg:int -> write:float -> at:float -> (float * ckpt, float) result
(** [commit t ~seg ~write ~at] commits segment [seg]'s checkpoint whose
    (k-replica) write span ended at [at] — the first write is already
    part of the caller's segment duration. [Ok (done_at, ckpt)] when an
    attempt succeeds: [done_at >= at] accounts for backoff delays,
    outage waits and re-written spans of retried attempts. [Error
    give_up_at] when the backoff policy is exhausted; the caller
    escalates (re-executes the producing segment). Draws nothing when
    [commit_fail_prob = 0]. *)

type commit_step =
  | Committed  (** the attempt succeeded *)
  | Rewrite  (** detected failure; rewrite the replica set and try again *)
  | Exhausted  (** backoff policy exhausted; escalate to re-execution *)

val commit_step : t -> attempt:int -> commit_step
(** One commit attempt's outcome, for event-driven simulators that
    charge the rewrite spans themselves (e.g. under bandwidth
    contention) instead of using the wall-clock accounting of
    {!commit}. [attempt] is 1-based; counters are updated exactly as
    {!commit}'s. Draws nothing when [commit_fail_prob = 0] (the result
    is then always [Committed]).

    @raise Invalid_argument when [attempt < 1]. *)

val fresh_ckpt : t -> seg:int -> at:float -> ckpt
(** The checkpoint handle of a commit that completed at instant [at],
    its per-replica corruption layout drawn now ({e one} draw sequence
    per replica; nothing when both corruption channels are off).
    {!commit} calls this internally; event-driven simulators pair it
    with {!commit_step}. *)

val seg_of : ckpt -> int
val committed_at : ckpt -> float

val valid_at : ckpt -> at:float -> bool
(** [true] iff some replica is uncorrupted at instant [at]. Pure — no
    counters, no injection (used by degraded-mode revalidation sweeps
    and tests). *)

val read : t -> ckpt -> at:float -> bool
(** A recovery read at instant [at]: {!valid_at} plus operation
    accounting — a [false] result counts a corrupt read and logs the
    producing segment in {!failed_reads}. *)

val failed_reads : t -> int list
(** Producing-segment ids of every failed {!read}, in chronological
    order — the recovery lines that were invalidated. The engine's
    cascading-rollback log must match this exactly (QCheck property in
    [test/test_storage.ml]). *)

type stats = {
  commits : int;  (** {!commit} calls *)
  commit_retries : int;  (** detected commit failures that were retried *)
  commit_exhausted : int;  (** commits that exhausted the backoff policy *)
  reads : int;  (** {!read} calls *)
  corrupt_reads : int;  (** reads that found every replica corrupt *)
}

val stats : t -> stats
