module Rng = Ckpt_prob.Rng
module Retry = Ckpt_resilience.Retry

type config = {
  commit_fail_prob : float;
  corrupt_prob : float;
  storage_lambda : float;
  outage_rate : float;
  outage_mean : float;
  replicas : int;
  backoff : Retry.policy;
}

let default =
  {
    commit_fail_prob = 0.;
    corrupt_prob = 0.;
    storage_lambda = 0.;
    outage_rate = 0.;
    outage_mean = 0.;
    replicas = 1;
    backoff = Retry.default;
  }

let reliable c =
  c.commit_fail_prob <= 0. && c.corrupt_prob <= 0. && c.storage_lambda <= 0.
  && c.outage_rate <= 0.

let validate c =
  if c.commit_fail_prob < 0. || c.commit_fail_prob >= 1. then
    invalid_arg "Storage: commit_fail_prob outside [0, 1)";
  if c.corrupt_prob < 0. || c.corrupt_prob >= 1. then
    invalid_arg "Storage: corrupt_prob outside [0, 1)";
  if c.storage_lambda < 0. then invalid_arg "Storage: negative storage_lambda";
  if c.outage_rate < 0. then invalid_arg "Storage: negative outage_rate";
  if c.outage_rate > 0. && c.outage_mean <= 0. then
    invalid_arg "Storage: outage_rate > 0 needs a positive outage_mean";
  if c.replicas < 1 then invalid_arg "Storage: replicas < 1";
  Retry.check_policy c.backoff

type ckpt = {
  seg : int;
  committed_at : float;
  corrupt_from : float array;
      (* per replica: the instant from which the copy reads back corrupt
         ([infinity] = never, committed_at = latent from birth). The
         empty array means every replica is eternally valid — the
         no-draw fast path of a reliable configuration. *)
}

type t = {
  config : config;
  rng : Rng.t;
  inject : string -> unit;
  (* outage intervals [(start, stop)], materialised lazily in
     increasing time (oldest first); [frontier] is the start instant of
     the next interval beyond the materialised list *)
  mutable outages : (float * float) list;
  mutable frontier : float;
  mutable commits : int;
  mutable commit_retries : int;
  mutable commit_exhausted : int;
  mutable reads : int;
  mutable corrupt_reads : int;
  mutable rev_failed_reads : int list;
}

let create ?(inject = fun _ -> ()) config rng =
  validate config;
  let frontier =
    if config.outage_rate > 0. then Rng.exponential rng ~rate:config.outage_rate
    else infinity
  in
  {
    config;
    rng;
    inject;
    outages = [];
    frontier;
    commits = 0;
    commit_retries = 0;
    commit_exhausted = 0;
    reads = 0;
    corrupt_reads = 0;
    rev_failed_reads = [];
  }

let config t = t.config

(* Earliest instant >= [at] at which stable storage is reachable.
   Outage starts follow a Poisson process at [outage_rate]; each outage
   lasts an exponential time of mean [outage_mean] (the next start is
   drawn from the previous stop). Queries need not be monotone — the
   engine revisits earlier instants while cascading a rollback — so the
   intervals are kept, in increasing order, once drawn. *)
let available t at =
  if t.config.outage_rate <= 0. then at
  else begin
    while t.frontier <= at do
      let start = t.frontier in
      let stop = start +. Rng.exponential t.rng ~rate:(1. /. t.config.outage_mean) in
      t.outages <- t.outages @ [ (start, stop) ];
      t.frontier <- stop +. Rng.exponential t.rng ~rate:t.config.outage_rate
    done;
    List.fold_left
      (fun acc (start, stop) -> if acc >= start && acc < stop then stop else acc)
      at t.outages
  end

(* Draw the corruption layout of a fresh checkpoint: each of the k
   replica copies is latently corrupt from birth with probability
   [corrupt_prob], and otherwise (when [storage_lambda > 0]) rots at an
   exponential instant after landing on disk. Reliable configurations
   draw nothing. *)
let fresh_ckpt t ~seg ~at =
  let c = t.config in
  if c.corrupt_prob <= 0. && c.storage_lambda <= 0. then
    { seg; committed_at = at; corrupt_from = [||] }
  else begin
    let corrupt_from = Array.make c.replicas infinity in
    for r = 0 to c.replicas - 1 do
      if c.corrupt_prob > 0. && Rng.uniform t.rng < c.corrupt_prob then
        corrupt_from.(r) <- at
      else if c.storage_lambda > 0. then
        corrupt_from.(r) <- at +. Rng.exponential t.rng ~rate:c.storage_lambda
    done;
    { seg; committed_at = at; corrupt_from }
  end

let commit_attempt_fails t =
  t.config.commit_fail_prob > 0. && Rng.uniform t.rng < t.config.commit_fail_prob

type commit_step = Committed | Rewrite | Exhausted

let commit_step t ~attempt =
  if attempt < 1 then invalid_arg "Storage.commit_step: attempt < 1";
  if attempt = 1 then t.commits <- t.commits + 1;
  if not (commit_attempt_fails t) then Committed
  else if attempt >= t.config.backoff.Retry.max_attempts then begin
    t.commit_exhausted <- t.commit_exhausted + 1;
    Exhausted
  end
  else begin
    t.commit_retries <- t.commit_retries + 1;
    Rewrite
  end

let commit t ~seg ~write ~at =
  t.inject "storage commit";
  t.commits <- t.commits + 1;
  if t.config.commit_fail_prob <= 0. then Ok (at, fresh_ckpt t ~seg ~at)
  else begin
    (* the first write span is already part of the caller's segment
       duration; only retried writes charge [write] again, after their
       backoff delay (and any storage outage) has passed *)
    let delays = lazy (Retry.schedule t.config.backoff) in
    let rec go attempt at =
      if not (commit_attempt_fails t) then Ok (at, fresh_ckpt t ~seg ~at)
      else if attempt >= t.config.backoff.Retry.max_attempts then begin
        t.commit_exhausted <- t.commit_exhausted + 1;
        Error at
      end
      else begin
        t.commit_retries <- t.commit_retries + 1;
        let resume = available t (at +. (Lazy.force delays).(attempt - 1)) in
        go (attempt + 1) (resume +. write)
      end
    in
    go 1 at
  end

let seg_of ck = ck.seg
let committed_at ck = ck.committed_at

let valid_at ck ~at =
  ck.corrupt_from = [||] || Array.exists (fun c -> c > at) ck.corrupt_from

let read t ck ~at =
  t.inject "storage read";
  t.reads <- t.reads + 1;
  if valid_at ck ~at then true
  else begin
    t.corrupt_reads <- t.corrupt_reads + 1;
    t.rev_failed_reads <- ck.seg :: t.rev_failed_reads;
    false
  end

let failed_reads t = List.rev t.rev_failed_reads

type stats = {
  commits : int;
  commit_retries : int;
  commit_exhausted : int;
  reads : int;
  corrupt_reads : int;
}

let stats (t : t) =
  {
    commits = t.commits;
    commit_retries = t.commit_retries;
    commit_exhausted = t.commit_exhausted;
    reads = t.reads;
    corrupt_reads = t.corrupt_reads;
  }
