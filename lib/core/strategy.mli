(** The three checkpointing strategies of the paper, as evaluable
    plans over a common schedule.

    - CKPTALL: every task checkpoints all its output data (the
      de-facto standard of production WMSs);
    - CKPTSOME: Algorithm 2 places optimal checkpoints inside every
      superchain, always checkpointing its end (no crossover
      dependencies);
    - CKPTNONE: nothing is checkpointed; on the (rare) failure the
      whole workflow restarts, and the expected makespan uses the
      Theorem-1 closed form.

    For CKPTALL and CKPTSOME, the checkpointed segments are coalesced
    into a 2-state probabilistic DAG (Eq. 2), whose expected longest
    path any {!Ckpt_eval.Evaluator.method_} can estimate. The baseline
    strategies are evaluated against the {e raw} workflow edges
    (completion dummies synchronise CKPTSOME only — paper footnote 2),
    while both inherit the physical serialisation of tasks on their
    processor. *)

module Dag = Ckpt_dag.Dag
module Platform = Ckpt_platform.Platform
module Prob_dag = Ckpt_eval.Prob_dag

type kind =
  | Ckpt_all
  | Ckpt_some
  | Ckpt_none
  | Ckpt_every of int
      (** ablation baseline: a checkpoint after every k-th task of
          each superchain (plus the forced final one) *)
  | Ckpt_budget of int
      (** extension: optimal placement under a per-superchain budget
          of at most k checkpoints (budget-constrained DP) *)
  | Ckpt_restart
      (** RESTART: no intra-superchain checkpoints — each superchain
          is one segment re-executed from its natural boundary (the
          forced checkpoint ending the previous superchain) on
          failure. The zero-I/O baseline of Sodre's restart-vs-
          checkpoint asymptotics (arXiv 1802.07455). *)
  | Ckpt_hybrid of int
      (** hybrid restart/checkpoint policy: superchains with at most
          [t] tasks restart (as {!Ckpt_restart}), longer ones get the
          Algorithm-2 optimal placement — checkpoint I/O is paid only
          where a restart would forfeit a lot of work *)

val kind_name : kind -> string

type plan = private {
  kind : kind;
  schedule : Schedule.t;
  raw_dag : Dag.t;
  platform : Platform.t;
  segments : Placement.segment array;  (** empty for CKPTNONE *)
  segment_of_task : int array;  (** task id -> segment index; -1 for CKPTNONE *)
  prob_dag : Prob_dag.t option;  (** [None] for CKPTNONE *)
  wpar : float;  (** failure-free parallel time of the schedule, checkpoint-free *)
  checkpoint_count : int;
  replicas : int;  (** k-way checkpoint replication the plan was priced with *)
}

val plan :
  ?jobs:int ->
  ?replicas:int ->
  kind ->
  raw:Dag.t ->
  schedule:Schedule.t ->
  platform:Platform.t ->
  plan
(** [schedule] must schedule a DAG whose task set matches [raw] task
    for task (the dummy-completed copy, or [raw] itself). [jobs]
    (default 1) fans the independent per-superchain placement DPs over
    the resident {!Ckpt_parallel.Pool.shared} pool; the width is
    clamped to the core count and falls back to the sequential
    shared-arena path when there is too little DP work to amortise the
    hand-off, so the plan is identical for any value. [replicas]
    (default 1) prices every checkpoint commit at [k·C]
    ({!Placement}); the optimal positions are re-derived under that
    cost, so a replicated CKPTSOME plan may checkpoint less often. *)

val plan_of_positions :
  ?jobs:int ->
  ?replicas:int ->
  kind:kind ->
  raw:Dag.t ->
  schedule:Schedule.t ->
  platform:Platform.t ->
  positions:(Superchain.t -> int list) ->
  unit ->
  plan
(** Build a plan from explicit checkpoint positions per superchain
    (sorted, each ending at the superchain's last position). [kind]
    labels the plan and selects the dependency graph (superchain
    strategies synchronise on the completed graph). Used by
    {!Refine} for position-set local search. *)

val expected_makespan : ?method_:Ckpt_eval.Evaluator.method_ -> plan -> float
(** Default estimator: PATHAPPROX (the paper's choice). *)

val checkpoint_positions : plan -> (int * int list) list
(** Superchain id -> checkpointed positions (empty for CKPTNONE). *)

val segment_dag : plan -> Dag.t
(** The coalesced segment graph as a plain DAG: one task per segment
    (weight = R + W + C), zero-size edges mirroring the plan's 2-state
    DAG. Useful for visualisation and for exact evaluation.

    @raise Invalid_argument on a CKPTNONE plan. *)

val makespan_distribution : ?max_support:int -> plan -> Ckpt_prob.Dist.t option
(** The full analytic makespan distribution of the plan under the
    first-order model, by the exact SP calculus over the segment
    M-SPG (see {!exact_expected_makespan} for when this is available;
    [None] otherwise). Quantiles of this distribution answer
    "what deadline can I promise at 99%?" — a question the paper's
    expectation-only estimators cannot. *)

val exact_expected_makespan : ?max_support:int -> plan -> float option
(** Exact (pseudo-polynomial) expected makespan via the M-SPG
    distribution calculus — an extension beyond the paper's
    estimators. The segment graph of a CKPTSOME-family plan is an
    M-SPG by construction ("an M-SPG of superchains", Section II-C);
    when recognition nevertheless fails (e.g. a CKPTALL baseline over
    a raw non-M-SPG workflow) the result is [None]. [max_support]
    bounds the intermediate distribution supports (default 4096;
    expectations remain exact under compaction, see
    {!Ckpt_prob.Dist.compact}). *)
