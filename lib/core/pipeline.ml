module Dag = Ckpt_dag.Dag
module Platform = Ckpt_platform.Platform
module Mspg = Ckpt_mspg.Mspg
module Recognize = Ckpt_mspg.Recognize

type setup = {
  raw : Dag.t;
  mspg : Mspg.t;
  dummy_edges : int;
  platform : Platform.t;
  schedule : Schedule.t;
  pfail : float;
  ccr : float;
}

let prepare ?policy ?platform ~dag ~processors ~pfail ~ccr () =
  let n = Dag.n_tasks dag in
  if n = 0 then invalid_arg "Pipeline.prepare: empty workflow";
  let platform =
    match platform with
    | Some p ->
        (* caller-built platform (heterogeneous / priced cloud): must
           agree with the processor count used for scheduling *)
        if p.Platform.processors <> processors then
          invalid_arg "Pipeline.prepare: platform processor count mismatch";
        p
    | None ->
        let mean_weight = Dag.total_weight dag /. float_of_int n in
        let lambda = Platform.lambda_of_pfail ~pfail ~mean_weight in
        let bandwidth =
          (* a workflow that moves no data has an undefined CCR; any
             bandwidth realises it *)
          let total_data = Dag.total_data dag in
          if total_data <= 0. then 1.
          else
            Platform.bandwidth_for_ccr ~ccr ~total_data
              ~total_weight:(Dag.total_weight dag)
        in
        Platform.make ~processors ~lambda ~bandwidth
  in
  let mspg, dummy_edges =
    (* one completing pass covers both the plain-M-SPG and the
       completable cases (with 0 dummies the decomposition never took
       the completion branch, so the tree is the plain recognition's —
       reattach it to the original DAG and drop the working copy) *)
    match Recognize.of_dag_completed dag with
    | Ok (m, 0) -> ({ Mspg.dag; tree = m.Mspg.tree }, 0)
    | Ok (m, d) -> (m, d)
    | Error _ -> (
        (* last resort: General SP graphs, whose transitive
           reduction is an M-SPG (future work, Section VIII) *)
        match Recognize.of_dag_gspg dag with
        | Ok (m, _) -> (m, 0)
        | Error msg -> invalid_arg ("Pipeline.prepare: not an M-SPG: " ^ msg))
  in
  let schedule = Allocate.run ?policy mspg ~processors in
  { raw = dag; mspg; dummy_edges; platform; schedule; pfail; ccr }

let plan ?jobs ?replicas setup kind =
  Strategy.plan ?jobs ?replicas kind ~raw:setup.raw ~schedule:setup.schedule
    ~platform:setup.platform

let plan_many ?(jobs = 1) requests =
  (* batch parallelism across whole plan requests: each request plans
     sequentially (jobs:1, shared arena) while the resident pool runs
     up to [jobs] requests at once — the amortisation the degrade /
     cloud replan loops and the serve daemon rely on *)
  Ckpt_parallel.Pool.map_shared ~jobs (Array.length requests) (fun i ->
      let setup, kind, replicas = requests.(i) in
      plan ~jobs:1 ~replicas setup kind)

type comparison = {
  em_some : float;
  em_all : float;
  em_none : float;
  rel_all : float;
  rel_none : float;
  ckpts_some : int;
  ckpts_all : int;
}

let compare_strategies ?method_ setup =
  let some = plan setup Strategy.Ckpt_some in
  let all = plan setup Strategy.Ckpt_all in
  let none = plan setup Strategy.Ckpt_none in
  let em_some = Strategy.expected_makespan ?method_ some in
  let em_all = Strategy.expected_makespan ?method_ all in
  let em_none = Strategy.expected_makespan ?method_ none in
  {
    em_some;
    em_all;
    em_none;
    rel_all = em_all /. em_some;
    rel_none = em_none /. em_some;
    ckpts_some = some.Strategy.checkpoint_count;
    ckpts_all = all.Strategy.checkpoint_count;
  }
