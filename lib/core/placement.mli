(** Checkpoint placement inside a superchain (Section IV, Algorithm 2).

    A checkpoint taken after position [j] saves {e all} output data of
    executed-but-unsaved tasks that still have pending consumers (the
    paper's extended checkpoint definition, Figure 4), so a segment
    [i..j] between consecutive checkpoints has:

    - [R(i,j)]: the data read from stable storage — every {e distinct}
      file consumed by tasks of the segment and produced outside it
      (earlier segments or other superchains; all such data is on
      stable storage by construction), plus the initial input files of
      the segment's tasks;
    - [W(i,j)]: the summed task weights;
    - [C(i,j)]: every distinct file produced inside the segment and
      consumed outside it (later tasks of the superchain, or entry
      tasks of later superchains). Shared files are counted once
      (Section VI-A).

    The expected segment time is Eq. (2):
    [T = (1 - λS) S + λS (3/2 S)] with [S = R + W + C] (probability
    clamped at 1 when λS exceeds it), and the optimal checkpoint
    positions minimise total expected time through the
    {!Toueg} recurrence. The final position is always checkpointed,
    which removes crossover dependencies.

    Every cost entry point takes [?replicas] (default 1), the k-way
    checkpoint replication factor of the storage-fault extension: a
    replicated commit writes each escaping file [k] times, so [C] is
    priced at [k·C] while the recovery-read failure probability drops
    geometrically in [k] ({!Ckpt_storage.Storage}). [replicas = 1]
    leaves every cost bitwise unchanged. *)

module Dag = Ckpt_dag.Dag
module Platform = Ckpt_platform.Platform

type segment = {
  chain : int;  (** superchain id *)
  first : int;
  last : int;  (** position range within the superchain, inclusive *)
  read : float;  (** R, in seconds *)
  work : float;  (** W, in seconds *)
  write : float;  (** C, in seconds *)
}

val first_order : lambda:float -> float -> float
(** [first_order ~lambda s]: first-order expected completion of [s]
    seconds of exposed work, [(1 − p)·s + p·(3/2)s] with
    [p = min(1, λs)] — the scalar kernel of Eq. (2), exported for the
    analytic evaluator ({!Ckpt_analytic.Analytic}). *)

val expected_time : lambda:float -> segment -> float
(** Eq. (2). *)

val segment_of :
  ?replicas:int -> Platform.t -> Dag.t -> Superchain.t -> first:int -> last:int -> segment
(** Direct (non-incremental) cost computation of one segment. *)

val cost_matrix : ?replicas:int -> Platform.t -> Dag.t -> Superchain.t -> float array array
(** [m.(j).(i)], for [i <= j], is the expected time of segment [i..j]
    — computed in O(n * sum of degrees) by a descending-[i] sweep per
    [j]. Reference implementation; the planning hot path fills a
    packed triangular array through an {!arena} instead. *)

type arena
(** Preallocated planning scratch (packed cost table, DP arrays,
    per-file stamp arrays), reused across the superchains of one DAG.
    Sharing an arena across domains is a race — parallel planners use
    one arena each. *)

val arena : Dag.t -> arena
(** Fresh scratch sized for [dag]'s file set; segment tables grow on
    demand to the longest superchain planned through it. *)

val optimal_positions :
  ?arena:arena -> ?replicas:int -> Platform.t -> Dag.t -> Superchain.t -> float * int list
(** Algorithm 2: optimal expected superchain time and the sorted
    checkpoint positions (the last position always included). Runs
    {!Toueg.solve_packed_auto}: bitwise-identical to
    {!reference_optimal_positions} below {!Toueg.monotone_cutoff} or
    when the cost table is not Monge, cost-optimal via the
    divide-and-conquer path otherwise. Passing [?arena] (built from
    the same DAG) reuses scratch across calls. *)

val reference_optimal_positions :
  ?replicas:int -> Platform.t -> Dag.t -> Superchain.t -> float * int list
(** The pinned list/Hashtbl reference path ({!cost_matrix} +
    {!Toueg.reference_solve}) the equivalence tests compare
    {!optimal_positions} against. *)

val optimal_positions_budget :
  ?arena:arena ->
  ?replicas:int ->
  Platform.t ->
  Dag.t ->
  Superchain.t ->
  budget:int ->
  float * int list
(** Budget-constrained Algorithm 2 (extension): at most [budget]
    checkpoints in this superchain, the forced final one included. *)

val reference_optimal_positions_budget :
  ?replicas:int -> Platform.t -> Dag.t -> Superchain.t -> budget:int -> float * int list
(** The pinned reference path for {!optimal_positions_budget}. *)

val periodic_positions : Superchain.t -> period:int -> int list
(** Checkpoint after every [period]-th task plus the mandatory final
    position — the naive fixed-interval policy used as an ablation
    baseline against the DP.

    @raise Invalid_argument if [period < 1]. *)

val segments_of_positions :
  ?replicas:int -> Platform.t -> Dag.t -> Superchain.t -> positions:int list -> segment list
(** Cut the superchain at the given sorted positions (which must end
    at the last position) and price each segment. *)

val every_position : Superchain.t -> int list
(** All positions — the CKPTALL policy on this superchain. *)
