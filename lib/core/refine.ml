module Superchain_map = Map.Make (Int)

type result = {
  plan : Strategy.plan;
  initial_em : float;
  final_em : float;
  moves : int;
  evaluations : int;
}

(* current positions per superchain id, as sorted int lists *)
let positions_of_plan (plan : Strategy.plan) =
  List.fold_left
    (fun acc (chain, l) -> Superchain_map.add chain l acc)
    Superchain_map.empty
    (Strategy.checkpoint_positions plan)

let rebuild (plan : Strategy.plan) positions =
  Strategy.plan_of_positions ~replicas:plan.Strategy.replicas ~kind:plan.Strategy.kind
    ~raw:plan.Strategy.raw_dag ~schedule:plan.Strategy.schedule
    ~platform:plan.Strategy.platform
    ~positions:(fun (sc : Superchain.t) -> Superchain_map.find sc.Superchain.id positions)
    ()

let toggle l p = if List.mem p l then List.filter (fun x -> x <> p) l else List.sort compare (p :: l)

let hill_climb ?(max_rounds = 10) ?method_ (plan : Strategy.plan) =
  if plan.Strategy.prob_dag = None then
    invalid_arg "Refine.hill_climb: CKPTNONE has no positions to refine";
  let em p = Strategy.expected_makespan ?method_ p in
  let evaluations = ref 0 and moves = ref 0 in
  let initial_em = em plan in
  let current = ref plan and current_em = ref initial_em in
  let current_positions = ref (positions_of_plan plan) in
  let schedule = plan.Strategy.schedule in
  let rec round k =
    if k = 0 then ()
    else begin
      (* best-improvement: price every single-position toggle *)
      let best = ref None in
      Array.iter
        (fun (sc : Superchain.t) ->
          let id = sc.Superchain.id in
          let n = Superchain.n_tasks sc in
          (* the final position n-1 stays checkpointed (no crossover
             dependencies) *)
          for p = 0 to n - 2 do
            let candidate =
              Superchain_map.add id (toggle (Superchain_map.find id !current_positions) p)
                !current_positions
            in
            let candidate_plan = rebuild plan candidate in
            incr evaluations;
            let candidate_em = em candidate_plan in
            match !best with
            | Some (_, _, best_em) when best_em <= candidate_em -> ()
            | _ ->
                if candidate_em < !current_em -. 1e-9 then
                  best := Some (candidate, candidate_plan, candidate_em)
          done)
        schedule.Schedule.superchains;
      match !best with
      | None -> ()
      | Some (positions, better_plan, better_em) ->
          current := better_plan;
          current_em := better_em;
          current_positions := positions;
          incr moves;
          round (k - 1)
    end
  in
  round max_rounds;
  {
    plan = !current;
    initial_em;
    final_em = !current_em;
    moves = !moves;
    evaluations = !evaluations;
  }
