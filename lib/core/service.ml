(* Request-level caching for the planning service: one process serves
   many plan/evaluate requests (the [ckptwf serve] daemon, the daemon
   batch bench), and most traffic repeats a bounded set of workflow
   configurations. Prepared setups (recognition + schedule, with their
   compiled CSR views) and finished plans are memoised under
   caller-chosen string keys, with double-checked locking: the mutex
   guards only table lookups/inserts, the expensive compute runs
   outside it, and a racing duplicate compute is benign because both
   sides produce identical values (planning is deterministic). *)

type stats = {
  setup_hits : int;
  setup_misses : int;
  plan_hits : int;
  plan_misses : int;
}

type t = {
  lock : Mutex.t;
  setups : (string, Pipeline.setup) Hashtbl.t;
  plans : (string, Strategy.plan) Hashtbl.t;
  setup_hits : int Atomic.t;
  setup_misses : int Atomic.t;
  plan_hits : int Atomic.t;
  plan_misses : int Atomic.t;
}

let create () =
  {
    lock = Mutex.create ();
    setups = Hashtbl.create 64;
    plans = Hashtbl.create 64;
    setup_hits = Atomic.make 0;
    setup_misses = Atomic.make 0;
    plan_hits = Atomic.make 0;
    plan_misses = Atomic.make 0;
  }

let memo t table hits misses ~key f =
  Mutex.lock t.lock;
  match Hashtbl.find_opt table key with
  | Some v ->
      Mutex.unlock t.lock;
      Atomic.incr hits;
      v
  | None ->
      Mutex.unlock t.lock;
      Atomic.incr misses;
      let v = f () in
      Mutex.lock t.lock;
      let v =
        (* a racing compute may have landed first: keep the incumbent
           so every caller sees one physical value per key *)
        match Hashtbl.find_opt table key with
        | Some w -> w
        | None ->
            Hashtbl.replace table key v;
            v
      in
      Mutex.unlock t.lock;
      v

let setup t ~key f = memo t t.setups t.setup_hits t.setup_misses ~key f
let plan t ~key f = memo t t.plans t.plan_hits t.plan_misses ~key f

let find_plan t ~key =
  Mutex.lock t.lock;
  let v = Hashtbl.find_opt t.plans key in
  Mutex.unlock t.lock;
  v

let store_plan t ~key plan =
  Mutex.lock t.lock;
  let v =
    match Hashtbl.find_opt t.plans key with
    | Some w -> w
    | None ->
        Hashtbl.replace t.plans key plan;
        plan
  in
  Mutex.unlock t.lock;
  v

let stats t =
  {
    setup_hits = Atomic.get t.setup_hits;
    setup_misses = Atomic.get t.setup_misses;
    plan_hits = Atomic.get t.plan_hits;
    plan_misses = Atomic.get t.plan_misses;
  }

let note_plan_hit t = Atomic.incr t.plan_hits
let note_plan_miss t = Atomic.incr t.plan_misses
