(* Request-level caching for the planning service: one process serves
   many plan/evaluate requests (the [ckptwf serve] daemon, the daemon
   batch bench), and most traffic repeats a bounded set of workflow
   configurations. Prepared setups (recognition + schedule, with their
   compiled CSR views) and finished plans are memoised under
   caller-chosen string keys, with double-checked locking: the mutex
   guards only table lookups/inserts, the expensive compute runs
   outside it, and a racing duplicate compute is benign because both
   sides produce identical values (planning is deterministic).

   A long-lived daemon must not grow without bound, so each table can
   carry an LRU capacity ([?max_setups] / [?max_plans]): every hit and
   insert stamps the entry with a logical clock tick, and an insert
   that pushes the table over its cap evicts the least recently used
   entry (an O(size) scan — caps are request-cache sized, not
   database sized). Unbounded by default, so existing call sites are
   bitwise unchanged. *)

type stats = {
  setup_hits : int;
  setup_misses : int;
  setup_evictions : int;
  plan_hits : int;
  plan_misses : int;
  plan_evictions : int;
  plan_races : int;
}

(* one cached value and the logical time it was last touched *)
type 'a entry = { value : 'a; mutable tick : int }

type t = {
  lock : Mutex.t;
  max_setups : int option;
  max_plans : int option;
  setups : (string, Pipeline.setup entry) Hashtbl.t;
  plans : (string, Strategy.plan entry) Hashtbl.t;
  mutable clock : int;
  setup_hits : int Atomic.t;
  setup_misses : int Atomic.t;
  setup_evictions : int Atomic.t;
  plan_hits : int Atomic.t;
  plan_misses : int Atomic.t;
  plan_evictions : int Atomic.t;
  plan_races : int Atomic.t;
}

let check_cap what = function
  | Some c when c < 1 -> invalid_arg (Printf.sprintf "Service.create: %s < 1" what)
  | c -> c

let create ?max_setups ?max_plans () =
  {
    lock = Mutex.create ();
    max_setups = check_cap "max_setups" max_setups;
    max_plans = check_cap "max_plans" max_plans;
    setups = Hashtbl.create 64;
    plans = Hashtbl.create 64;
    clock = 0;
    setup_hits = Atomic.make 0;
    setup_misses = Atomic.make 0;
    setup_evictions = Atomic.make 0;
    plan_hits = Atomic.make 0;
    plan_misses = Atomic.make 0;
    plan_evictions = Atomic.make 0;
    plan_races = Atomic.make 0;
  }

(* all three below run with [t.lock] held *)

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let touch t e = e.tick <- tick t

(* evict least-recently-used entries until [table] fits [cap] again;
   the scan is O(size) but only runs on an over-cap insert *)
let enforce_cap table cap evictions =
  match cap with
  | None -> ()
  | Some cap ->
      while Hashtbl.length table > cap do
        let victim =
          Hashtbl.fold
            (fun key e acc ->
              match acc with
              | Some (_, best) when best <= e.tick -> acc
              | _ -> Some (key, e.tick))
            table None
        in
        match victim with
        | None -> ()
        | Some (key, _) ->
            Hashtbl.remove table key;
            Atomic.incr evictions
      done

let insert t table cap evictions ~key value =
  Hashtbl.replace table key { value; tick = tick t };
  enforce_cap table cap evictions

let memo t table cap hits misses evictions ~key f =
  Mutex.lock t.lock;
  match Hashtbl.find_opt table key with
  | Some e ->
      touch t e;
      Mutex.unlock t.lock;
      Atomic.incr hits;
      e.value
  | None ->
      Mutex.unlock t.lock;
      Atomic.incr misses;
      let v = f () in
      Mutex.lock t.lock;
      let v =
        (* a racing compute may have landed first: keep the incumbent
           so every caller sees one physical value per key *)
        match Hashtbl.find_opt table key with
        | Some e ->
            touch t e;
            e.value
        | None ->
            insert t table cap evictions ~key v;
            v
      in
      Mutex.unlock t.lock;
      v

let setup t ~key f =
  memo t t.setups t.max_setups t.setup_hits t.setup_misses t.setup_evictions ~key f

let plan t ~key f =
  memo t t.plans t.max_plans t.plan_hits t.plan_misses t.plan_evictions ~key f

let find_plan t ~key =
  Mutex.lock t.lock;
  let v =
    match Hashtbl.find_opt t.plans key with
    | Some e ->
        touch t e;
        Some e.value
    | None -> None
  in
  Mutex.unlock t.lock;
  v

(* planning is deterministic, so a racing insert under the same key
   must have produced a structurally identical plan; the assert guards
   exactly that invariant in debug builds (dev profile keeps asserts,
   release drops them) *)
let same_plan (a : Strategy.plan) (b : Strategy.plan) =
  a.Strategy.kind = b.Strategy.kind
  && a.Strategy.checkpoint_count = b.Strategy.checkpoint_count
  && a.Strategy.replicas = b.Strategy.replicas
  && Strategy.checkpoint_positions a = Strategy.checkpoint_positions b

let store_plan t ~key plan =
  Mutex.lock t.lock;
  let v =
    match Hashtbl.find_opt t.plans key with
    | Some e ->
        (* the racing insert won: count the duplicate compute once
           instead of silently discarding it *)
        Atomic.incr t.plan_races;
        assert (same_plan e.value plan);
        touch t e;
        e.value
    | None ->
        insert t t.plans t.max_plans t.plan_evictions ~key plan;
        plan
  in
  Mutex.unlock t.lock;
  v

let stats t =
  {
    setup_hits = Atomic.get t.setup_hits;
    setup_misses = Atomic.get t.setup_misses;
    setup_evictions = Atomic.get t.setup_evictions;
    plan_hits = Atomic.get t.plan_hits;
    plan_misses = Atomic.get t.plan_misses;
    plan_evictions = Atomic.get t.plan_evictions;
    plan_races = Atomic.get t.plan_races;
  }

let note_plan_hit t = Atomic.incr t.plan_hits
let note_plan_miss t = Atomic.incr t.plan_misses
