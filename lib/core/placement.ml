module Dag = Ckpt_dag.Dag
module Platform = Ckpt_platform.Platform

type segment = {
  chain : int;
  first : int;
  last : int;
  read : float;
  work : float;
  write : float;
}

(* k-way checkpoint replication (storage-fault extension): a commit
   writes every escaping file k times, so C is priced at k·C — the
   recovery-read failure probability drops accordingly (see
   Ckpt_storage). k = 1 leaves the bytes untouched, keeping existing
   plans bitwise identical. *)
let scale_replicas replicas bytes =
  if replicas > 1 then float_of_int replicas *. bytes else bytes

(* Speed of a superchain's processor; unsped platforms answer 1
   without an index check (processor ids in unit tests may exceed the
   platform, which segment costing historically tolerated). *)
let chain_speed platform proc =
  if Platform.uniform_speed platform then 1. else Platform.speed_of platform proc

let first_order ~lambda s =
  let pfail = Float.min 1. (lambda *. s) in
  ((1. -. pfail) *. s) +. (pfail *. 1.5 *. s)

let expected_time ~lambda seg = first_order ~lambda (seg.read +. seg.work +. seg.write)

(* A file consumed by a segment task is on stable storage iff its
   producer lies outside the segment; by the topological linearisation
   a producer inside the superchain always has a smaller position. *)
let producer_outside sc ~first l =
  (not (Superchain.mem sc l)) || Superchain.position sc l < first

let consumer_outside sc ~last m =
  (not (Superchain.mem sc m)) || Superchain.position sc m > last

let segment_of ?(replicas = 1) platform dag sc ~first ~last =
  if first < 0 || last >= Superchain.n_tasks sc || first > last then
    invalid_arg "Placement.segment_of: bad range";
  (* heterogeneous speeds: compute time is weight / speed of the
     superchain's own processor (speed 1 is bitwise the identity) *)
  let speed = chain_speed platform sc.Superchain.processor in
  let read_bytes = ref 0. and write_bytes = ref 0. and work = ref 0. in
  let read_seen = Hashtbl.create 16 and write_seen = Hashtbl.create 16 in
  for k = first to last do
    let t = Superchain.task_at sc k in
    work := !work +. Dag.weight dag t;
    List.iter (fun size -> read_bytes := !read_bytes +. size) (Dag.inputs dag t);
    List.iter
      (fun (l, (f : Dag.file)) ->
        if producer_outside sc ~first l && not (Hashtbl.mem read_seen f.Dag.file_id) then begin
          Hashtbl.replace read_seen f.Dag.file_id ();
          read_bytes := !read_bytes +. f.Dag.size
        end)
      (Dag.preds dag t);
    List.iter
      (fun (m, (f : Dag.file)) ->
        if consumer_outside sc ~last m && not (Hashtbl.mem write_seen f.Dag.file_id) then begin
          Hashtbl.replace write_seen f.Dag.file_id ();
          write_bytes := !write_bytes +. f.Dag.size
        end)
      (Dag.succs dag t);
  done;
  {
    chain = sc.Superchain.id;
    first;
    last;
    read = Platform.io_time platform !read_bytes;
    work = !work /. speed;
    write = Platform.io_time platform (scale_replicas replicas !write_bytes);
  }

(* Preallocated planning scratch, reused across the superchains of one
   DAG: the per-row Hashtbls of the reference [cost_matrix] become
   epoch-stamped per-file int arrays, the cost matrix a packed
   lower-triangular float array, and the DP runs over caller scratch.
   Every float operation happens in the same order as the reference,
   so the costs — and hence the checkpoint sets — are
   bitwise-identical. Not shareable across domains: parallel callers
   use one arena each. *)
type arena = {
  n_files : int;
  read_stamp : int array;
      (* in_read membership per file: [2e] = in the running read set,
         [2e+1] = removed from it, anything older = untouched *)
  mutable read_epoch : int;
  write_stamp : int array;  (* per-(j,i) escaping-file dedup *)
  mutable write_epoch : int;
  mutable tri : float array;
  mutable etime : float array;
  mutable last_ckpt : int array;
}

let arena dag =
  let nf = Dag.n_files dag in
  {
    n_files = nf;
    read_stamp = Array.make (max 1 nf) 0;
    read_epoch = 0;
    write_stamp = Array.make (max 1 nf) 0;
    write_epoch = 0;
    tri = [||];
    etime = [||];
    last_ckpt = [||];
  }

let ensure_capacity a n =
  let need = Toueg.tri_size n in
  if Array.length a.tri < need then a.tri <- Array.make need 0.;
  if Array.length a.etime < n then begin
    a.etime <- Array.make n 0.;
    a.last_ckpt <- Array.make n (-1)
  end

(* Fill [a.tri] with the packed cost table of [sc] (cost of segment
   [i..j] at [j*(j+1)/2 + i]); the descending-[i] sweep per [j] and
   its in/out file bookkeeping mirror [cost_matrix] line for line. *)
let fill_cost_tri ?(replicas = 1) a platform dag sc =
  if a.n_files <> Dag.n_files dag then
    invalid_arg "Placement.fill_cost_tri: arena built for another DAG";
  let n = Superchain.n_tasks sc in
  ensure_capacity a n;
  let lambda = Platform.rate_of platform sc.Superchain.processor in
  let speed = chain_speed platform sc.Superchain.processor in
  let tri = a.tri in
  for j = 0 to n - 1 do
    let row = j * (j + 1) / 2 in
    let read_bytes = ref 0. and write_bytes = ref 0. and work = ref 0. in
    a.read_epoch <- a.read_epoch + 1;
    let in_e = 2 * a.read_epoch in
    for i = j downto 0 do
      let t = Superchain.task_at sc i in
      work := !work +. Dag.weight dag t;
      (* C grows by t's distinct files that escape [i..j] *)
      a.write_epoch <- a.write_epoch + 1;
      let we = a.write_epoch in
      List.iter
        (fun (m, (f : Dag.file)) ->
          if consumer_outside sc ~last:j m && a.write_stamp.(f.Dag.file_id) <> we then begin
            a.write_stamp.(f.Dag.file_id) <- we;
            write_bytes := !write_bytes +. f.Dag.size
          end)
        (Dag.succs dag t);
      (* R: files of t that earlier (larger-i) sweeps counted as
         external are now produced inside the segment *)
      List.iter
        (fun (_, (f : Dag.file)) ->
          if a.read_stamp.(f.Dag.file_id) = in_e then begin
            a.read_stamp.(f.Dag.file_id) <- in_e + 1;
            read_bytes := !read_bytes -. f.Dag.size
          end)
        (Dag.succs dag t);
      (* R: files t consumes; their producers are before position i
         hence outside the segment *)
      List.iter
        (fun (_, (f : Dag.file)) ->
          if a.read_stamp.(f.Dag.file_id) <> in_e then begin
            a.read_stamp.(f.Dag.file_id) <- in_e;
            read_bytes := !read_bytes +. f.Dag.size
          end)
        (Dag.preds dag t);
      List.iter (fun size -> read_bytes := !read_bytes +. size) (Dag.inputs dag t);
      let s =
        Platform.io_time platform !read_bytes
        +. (!work /. speed)
        +. Platform.io_time platform (scale_replicas replicas !write_bytes)
      in
      tri.(row + i) <- first_order ~lambda s
    done
  done;
  n

let cost_matrix ?(replicas = 1) platform dag sc =
  let n = Superchain.n_tasks sc in
  (* heterogeneous platforms: the superchain's own processor's rate *)
  let lambda = Platform.rate_of platform sc.Superchain.processor in
  let speed = chain_speed platform sc.Superchain.processor in
  Array.init n (fun j ->
      let row = Array.make (j + 1) 0. in
      (* grow the segment [i..j] leftward, maintaining R/W/C *)
      let read_bytes = ref 0. and write_bytes = ref 0. and work = ref 0. in
      let in_read = Hashtbl.create 16 in
      for i = j downto 0 do
        let t = Superchain.task_at sc i in
        work := !work +. Dag.weight dag t;
        (* C grows by t's distinct files that escape [i..j]; consumers
           of files produced at position i are all at positions > i,
           so previously counted files never change status *)
        let seen = Hashtbl.create 4 in
        List.iter
          (fun (m, (f : Dag.file)) ->
            if consumer_outside sc ~last:j m && not (Hashtbl.mem seen f.Dag.file_id) then begin
              Hashtbl.replace seen f.Dag.file_id ();
              write_bytes := !write_bytes +. f.Dag.size
            end)
          (Dag.succs dag t);
        (* R: files of t that earlier (larger-i) sweeps counted as
           external are now produced inside the segment *)
        List.iter
          (fun (_, (f : Dag.file)) ->
            if Hashtbl.mem in_read f.Dag.file_id then begin
              Hashtbl.remove in_read f.Dag.file_id;
              read_bytes := !read_bytes -. f.Dag.size
            end)
          (Dag.succs dag t);
        (* R: files t consumes; their producers are before position i
           hence outside the segment *)
        List.iter
          (fun (_, (f : Dag.file)) ->
            if not (Hashtbl.mem in_read f.Dag.file_id) then begin
              Hashtbl.replace in_read f.Dag.file_id ();
              read_bytes := !read_bytes +. f.Dag.size
            end)
          (Dag.preds dag t);
        List.iter (fun size -> read_bytes := !read_bytes +. size) (Dag.inputs dag t);
        let s =
          Platform.io_time platform !read_bytes
          +. (!work /. speed)
          +. Platform.io_time platform (scale_replicas replicas !write_bytes)
        in
        row.(i) <- first_order ~lambda s
      done;
      row)

let reference_optimal_positions ?replicas platform dag sc =
  let n = Superchain.n_tasks sc in
  let matrix = cost_matrix ?replicas platform dag sc in
  Toueg.reference_solve ~n ~cost:(fun i j -> matrix.(j).(i))

let optimal_positions ?arena:a ?replicas platform dag sc =
  let a = match a with Some a -> a | None -> arena dag in
  let n = fill_cost_tri ?replicas a platform dag sc in
  Toueg.solve_packed_auto ~n ~tri:a.tri ~etime:a.etime ~last_ckpt:a.last_ckpt

let reference_optimal_positions_budget ?replicas platform dag sc ~budget =
  let n = Superchain.n_tasks sc in
  let matrix = cost_matrix ?replicas platform dag sc in
  Toueg.reference_solve_budget ~n ~cost:(fun i j -> matrix.(j).(i)) ~budget

let optimal_positions_budget ?arena:a ?replicas platform dag sc ~budget =
  let a = match a with Some a -> a | None -> arena dag in
  let n = fill_cost_tri ?replicas a platform dag sc in
  Toueg.solve_budget_packed_auto ~n ~tri:a.tri ~budget

let periodic_positions sc ~period =
  if period < 1 then invalid_arg "Placement.periodic_positions: period < 1";
  let n = Superchain.n_tasks sc in
  let rec collect k acc = if k >= n then acc else collect (k + period) (k :: acc) in
  let regular = collect (period - 1) [] in
  List.sort_uniq compare ((n - 1) :: regular)

let segments_of_positions ?replicas platform dag sc ~positions =
  let n = Superchain.n_tasks sc in
  (match List.rev positions with
  | [] -> invalid_arg "Placement.segments_of_positions: no positions"
  | last :: _ ->
      if last <> n - 1 then
        invalid_arg "Placement.segments_of_positions: final position must be checkpointed");
  let rec cut start = function
    | [] -> []
    | p :: rest ->
        if p < start then invalid_arg "Placement.segments_of_positions: unsorted positions"
        else segment_of ?replicas platform dag sc ~first:start ~last:p :: cut (p + 1) rest
  in
  cut 0 positions

let every_position sc = List.init (Superchain.n_tasks sc) (fun i -> i)
