module Mspg = Ckpt_mspg.Mspg

let run dag graphs p =
  let n = List.length graphs in
  if n = 0 then invalid_arg "Propmap.run: no graphs";
  if p < 1 then invalid_arg "Propmap.run: p < 1";
  (* weigh each graph once: tree_weight is a full tree walk and the
     sort would otherwise recompute it per comparison *)
  let weighted = List.map (fun g -> (g, Mspg.tree_weight dag g)) graphs in
  let sorted = List.stable_sort (fun (_, w1) (_, w2) -> compare w2 w1) weighted in
  if n >= p then begin
    (* greedy multiway partitioning into p single-processor groups *)
    let bins = Array.make p ([], 0.) in
    List.iter
      (fun (g, gw) ->
        let j = ref 0 in
        for q = 1 to p - 1 do
          if snd bins.(q) < snd bins.(!j) then j := q
        done;
        let members, w = bins.(!j) in
        bins.(!j) <- (g :: members, w +. gw))
      sorted;
    Array.to_list bins
    |> List.filter_map (fun (members, _) ->
           match members with
           | [] -> None
           | l -> Some (Mspg.parallel (List.rev l), 1))
  end
  else begin
    let weights = Array.of_list (List.map snd sorted) in
    let sorted = List.map fst sorted in
    let proc_nums = Array.make n 1 in
    let w = Array.copy weights in
    for _ = 1 to p - n do
      let j = ref 0 in
      for q = 1 to n - 1 do
        if w.(q) > w.(!j) then j := q
      done;
      proc_nums.(!j) <- proc_nums.(!j) + 1;
      w.(!j) <- w.(!j) *. (1. -. (1. /. float_of_int proc_nums.(!j)))
    done;
    List.mapi (fun i g -> (g, proc_nums.(i))) sorted
  end
