(* Reference implementations first: these are the pinned closure-cost
   originals the QCheck equivalence suite checks the packed rewrites
   against. The packed variants below perform the same float
   comparisons in the same order, so they return bitwise-identical
   values and identical checkpoint sets. *)

let reference_solve ~n ~cost =
  if n < 1 then invalid_arg "Toueg.solve: n < 1";
  let etime = Array.make n infinity in
  let last_ckpt = Array.make n (-1) in
  for j = 0 to n - 1 do
    etime.(j) <- cost 0 j;
    last_ckpt.(j) <- -1;
    for i = 0 to j - 1 do
      let candidate = etime.(i) +. cost (i + 1) j in
      if candidate < etime.(j) then begin
        etime.(j) <- candidate;
        last_ckpt.(j) <- i
      end
    done
  done;
  let rec backtrack j acc = if j < 0 then acc else backtrack last_ckpt.(j) (j :: acc) in
  (etime.(n - 1), backtrack (n - 1) [])

let solve = reference_solve

let reference_solve_budget ~n ~cost ~budget =
  if n < 1 then invalid_arg "Toueg.solve_budget: n < 1";
  if budget < 1 then invalid_arg "Toueg.solve_budget: budget < 1";
  let budget = min budget n in
  (* etime.(b).(j): optimal time for tasks 0..j ending in a checkpoint
     after j, using at most b+1 checkpoints in total *)
  let etime = Array.make_matrix budget n infinity in
  let last_ckpt = Array.make_matrix budget n (-1) in
  for b = 0 to budget - 1 do
    for j = 0 to n - 1 do
      etime.(b).(j) <- cost 0 j;
      last_ckpt.(b).(j) <- -1;
      if b > 0 then
        for i = 0 to j - 1 do
          let candidate = etime.(b - 1).(i) +. cost (i + 1) j in
          if candidate < etime.(b).(j) then begin
            etime.(b).(j) <- candidate;
            last_ckpt.(b).(j) <- i
          end
        done
    done
  done;
  let rec backtrack b j acc =
    if j < 0 then acc
    else begin
      let i = last_ckpt.(b).(j) in
      backtrack (max 0 (b - 1)) i (j :: acc)
    end
  in
  (etime.(budget - 1).(n - 1), backtrack (budget - 1) (n - 1) [])

let solve_budget = reference_solve_budget

(* Packed lower-triangular cost layout: the cost of segment [i..j]
   (inclusive, i <= j) lives at [tri.(j * (j + 1) / 2 + i)]. *)
let tri_size n = n * (n + 1) / 2

let solve_packed ~n ~tri ~etime ~last_ckpt =
  if n < 1 then invalid_arg "Toueg.solve_packed: n < 1";
  if Array.length tri < tri_size n then invalid_arg "Toueg.solve_packed: tri too short";
  if Array.length etime < n || Array.length last_ckpt < n then
    invalid_arg "Toueg.solve_packed: scratch too short";
  for j = 0 to n - 1 do
    let row = j * (j + 1) / 2 in
    etime.(j) <- tri.(row);
    last_ckpt.(j) <- -1;
    for i = 0 to j - 1 do
      let candidate = etime.(i) +. tri.(row + i + 1) in
      if candidate < etime.(j) then begin
        etime.(j) <- candidate;
        last_ckpt.(j) <- i
      end
    done
  done;
  let rec backtrack j acc = if j < 0 then acc else backtrack last_ckpt.(j) (j :: acc) in
  (etime.(n - 1), backtrack (n - 1) [])

let solve_budget_packed ~n ~tri ~budget =
  if n < 1 then invalid_arg "Toueg.solve_budget_packed: n < 1";
  if budget < 1 then invalid_arg "Toueg.solve_budget_packed: budget < 1";
  if Array.length tri < tri_size n then
    invalid_arg "Toueg.solve_budget_packed: tri too short";
  let budget = min budget n in
  (* flat budget-major layout: slot (b, j) at b*n + j *)
  let etime = Array.make (budget * n) infinity in
  let last_ckpt = Array.make (budget * n) (-1) in
  for b = 0 to budget - 1 do
    let brow = b * n in
    for j = 0 to n - 1 do
      let row = j * (j + 1) / 2 in
      etime.(brow + j) <- tri.(row);
      last_ckpt.(brow + j) <- -1;
      if b > 0 then
        for i = 0 to j - 1 do
          let candidate = etime.(brow - n + i) +. tri.(row + i + 1) in
          if candidate < etime.(brow + j) then begin
            etime.(brow + j) <- candidate;
            last_ckpt.(brow + j) <- i
          end
        done
    done
  done;
  let rec backtrack b j acc =
    if j < 0 then acc
    else begin
      let i = last_ckpt.((b * n) + j) in
      backtrack (max 0 (b - 1)) i (j :: acc)
    end
  in
  (etime.(((budget - 1) * n) + n - 1), backtrack (budget - 1) (n - 1) [])

let first_order ~lambda s =
  let pfail = Float.min 1. (lambda *. s) in
  ((1. -. pfail) *. s) +. (pfail *. 1.5 *. s)

let chain_cost ~lambda ~read ~weight ~write i j =
  let w = ref 0. in
  for k = i to j do
    w := !w +. weight k
  done;
  first_order ~lambda (read i +. !w +. write j)

let solve_chain ~n ~lambda ~read ~weight ~write =
  if n < 1 then invalid_arg "Toueg.solve_chain: n < 1";
  (* prefix-summed segment work: W(i,j) = pw.(j+1) - pw.(i), so the
     whole packed cost table fills in O(n^2) instead of the O(n^3) of
     [solve] over [chain_cost] (which re-sums every segment) *)
  let pw = Array.make (n + 1) 0. in
  for k = 0 to n - 1 do
    pw.(k + 1) <- pw.(k) +. weight k
  done;
  let tri = Array.make (tri_size n) 0. in
  for j = 0 to n - 1 do
    let row = j * (j + 1) / 2 in
    let wj = write j in
    for i = 0 to j do
      tri.(row + i) <- first_order ~lambda (read i +. (pw.(j + 1) -. pw.(i)) +. wj)
    done
  done;
  let etime = Array.make n infinity and last_ckpt = Array.make n (-1) in
  solve_packed ~n ~tri ~etime ~last_ckpt

let brute_force ~n ~cost =
  if n < 1 then invalid_arg "Toueg.brute_force: n < 1";
  if n > 20 then invalid_arg "Toueg.brute_force: too large";
  (* bit k of the mask (k < n-1) = checkpoint after task k; the final
     checkpoint after task n-1 is implicit *)
  let best = ref infinity and best_set = ref [] in
  for mask = 0 to (1 lsl (n - 1)) - 1 do
    let total = ref 0. in
    let start = ref 0 in
    for k = 0 to n - 1 do
      let is_ckpt = k = n - 1 || mask land (1 lsl k) <> 0 in
      if is_ckpt then begin
        total := !total +. cost !start k;
        start := k + 1
      end
    done;
    if !total < !best then begin
      best := !total;
      (* seed with the implicit final checkpoint and prepend downward:
         O(n) per improvement instead of the former O(n^2) list append *)
      let set = ref [ n - 1 ] in
      for k = n - 2 downto 0 do
        if mask land (1 lsl k) <> 0 then set := k :: !set
      done;
      best_set := !set
    end
  done;
  (!best, !best_set)
