(* Reference implementations first: these are the pinned closure-cost
   originals the QCheck equivalence suite checks the packed rewrites
   against. The packed variants below perform the same float
   comparisons in the same order, so they return bitwise-identical
   values and identical checkpoint sets. *)

let reference_solve ~n ~cost =
  if n < 1 then invalid_arg "Toueg.solve: n < 1";
  let etime = Array.make n infinity in
  let last_ckpt = Array.make n (-1) in
  for j = 0 to n - 1 do
    etime.(j) <- cost 0 j;
    last_ckpt.(j) <- -1;
    for i = 0 to j - 1 do
      let candidate = etime.(i) +. cost (i + 1) j in
      if candidate < etime.(j) then begin
        etime.(j) <- candidate;
        last_ckpt.(j) <- i
      end
    done
  done;
  let rec backtrack j acc = if j < 0 then acc else backtrack last_ckpt.(j) (j :: acc) in
  (etime.(n - 1), backtrack (n - 1) [])

let solve = reference_solve

let reference_solve_budget ~n ~cost ~budget =
  if n < 1 then invalid_arg "Toueg.solve_budget: n < 1";
  if budget < 1 then invalid_arg "Toueg.solve_budget: budget < 1";
  let budget = min budget n in
  (* etime.(b).(j): optimal time for tasks 0..j ending in a checkpoint
     after j, using at most b+1 checkpoints in total *)
  let etime = Array.make_matrix budget n infinity in
  let last_ckpt = Array.make_matrix budget n (-1) in
  for b = 0 to budget - 1 do
    for j = 0 to n - 1 do
      etime.(b).(j) <- cost 0 j;
      last_ckpt.(b).(j) <- -1;
      if b > 0 then
        for i = 0 to j - 1 do
          let candidate = etime.(b - 1).(i) +. cost (i + 1) j in
          if candidate < etime.(b).(j) then begin
            etime.(b).(j) <- candidate;
            last_ckpt.(b).(j) <- i
          end
        done
    done
  done;
  let rec backtrack b j acc =
    if j < 0 then acc
    else begin
      let i = last_ckpt.(b).(j) in
      backtrack (max 0 (b - 1)) i (j :: acc)
    end
  in
  (etime.(budget - 1).(n - 1), backtrack (budget - 1) (n - 1) [])

let solve_budget = reference_solve_budget

(* Packed lower-triangular cost layout: the cost of segment [i..j]
   (inclusive, i <= j) lives at [tri.(j * (j + 1) / 2 + i)]. *)
let tri_size n = n * (n + 1) / 2

let solve_packed ~n ~tri ~etime ~last_ckpt =
  if n < 1 then invalid_arg "Toueg.solve_packed: n < 1";
  if Array.length tri < tri_size n then invalid_arg "Toueg.solve_packed: tri too short";
  if Array.length etime < n || Array.length last_ckpt < n then
    invalid_arg "Toueg.solve_packed: scratch too short";
  for j = 0 to n - 1 do
    let row = j * (j + 1) / 2 in
    etime.(j) <- tri.(row);
    last_ckpt.(j) <- -1;
    for i = 0 to j - 1 do
      let candidate = etime.(i) +. tri.(row + i + 1) in
      if candidate < etime.(j) then begin
        etime.(j) <- candidate;
        last_ckpt.(j) <- i
      end
    done
  done;
  let rec backtrack j acc = if j < 0 then acc else backtrack last_ckpt.(j) (j :: acc) in
  (etime.(n - 1), backtrack (n - 1) [])

let solve_budget_packed ~n ~tri ~budget =
  if n < 1 then invalid_arg "Toueg.solve_budget_packed: n < 1";
  if budget < 1 then invalid_arg "Toueg.solve_budget_packed: budget < 1";
  if Array.length tri < tri_size n then
    invalid_arg "Toueg.solve_budget_packed: tri too short";
  let budget = min budget n in
  (* flat budget-major layout: slot (b, j) at b*n + j *)
  let etime = Array.make (budget * n) infinity in
  let last_ckpt = Array.make (budget * n) (-1) in
  for b = 0 to budget - 1 do
    let brow = b * n in
    for j = 0 to n - 1 do
      let row = j * (j + 1) / 2 in
      etime.(brow + j) <- tri.(row);
      last_ckpt.(brow + j) <- -1;
      if b > 0 then
        for i = 0 to j - 1 do
          let candidate = etime.(brow - n + i) +. tri.(row + i + 1) in
          if candidate < etime.(brow + j) then begin
            etime.(brow + j) <- candidate;
            last_ckpt.(brow + j) <- i
          end
        done
    done
  done;
  let rec backtrack b j acc =
    if j < 0 then acc
    else begin
      let i = last_ckpt.((b * n) + j) in
      backtrack (max 0 (b - 1)) i (j :: acc)
    end
  in
  (etime.(((budget - 1) * n) + n - 1), backtrack (budget - 1) (n - 1) [])

(* --- monotone (Knuth/Monge) speedup ------------------------------- *)

(* The DP minimises, for each row j, over columns c in [0..j] of the
   candidate matrix  M[j][c] = D[c] + B[c][j]  where
   B[c][j] = tri.(j*(j+1)/2 + c) is the cost of segment [c..j] and
   D[0] = 0, D[c] = ETime(c-1) (column c = decision i+1 of the packed
   scan; c = 0 is the no-prior-checkpoint base). D is column-additive,
   so M inherits the Monge / quadrangle-inequality condition

     B[c][j] + B[c+1][j+1] <= B[c+1][j] + B[c][j+1]

   from B alone, and Monge implies the leftmost row argmin is
   nondecreasing in j. Checking all adjacent 2x2 squares implies the
   full inequality on the triangular domain c <= j by telescoping
   (every intermediate square stays inside the domain). Segment-cost
   tables of the first-order model are Monge whenever the per-task
   read/write overheads do not invert the super-additivity of
   [first_order] — true for the homogeneous R/W/C of the paper's
   platforms, violated only by adversarial per-task overrides, hence
   the runtime guard. *)

let tri_is_monge ~n ~tri =
  let ok = ref true in
  let j = ref 1 in
  while !ok && !j <= n - 2 do
    let row = !j * (!j + 1) / 2 in
    let row' = row + !j + 1 in
    let c = ref 0 in
    while !ok && !c <= !j - 1 do
      if tri.(row + !c) +. tri.(row' + !c + 1) > tri.(row + !c + 1) +. tri.(row' + !c)
      then ok := false;
      incr c
    done;
    incr j
  done;
  !ok

(* Below this size the packed O(n^2) scan wins on constants, and every
   plan stays bitwise identical to the pre-monotone code path. *)
let monotone_cutoff = 128

let solve_packed_monotone ~n ~tri ~etime ~last_ckpt =
  if n < 1 then invalid_arg "Toueg.solve_packed_monotone: n < 1";
  if Array.length tri < tri_size n then
    invalid_arg "Toueg.solve_packed_monotone: tri too short";
  if Array.length etime < n || Array.length last_ckpt < n then
    invalid_arg "Toueg.solve_packed_monotone: scratch too short";
  Array.fill etime 0 n infinity;
  Array.fill last_ckpt 0 n (-1);
  let dval c = if c = 0 then 0. else etime.(c - 1) in
  (* Fold columns [clo..chi] (all already-final decisions) into rows
     [rlo..rhi] by divide and conquer on rows: the leftmost argmin of
     the mid row splits the column range for the rows on either side
     (valid because the restricted matrix stays Monge). *)
  let rec fold rlo rhi clo chi =
    if rlo <= rhi then begin
      let rm = (rlo + rhi) / 2 in
      let row = rm * (rm + 1) / 2 in
      let rbest = ref infinity and rbestc = ref clo in
      for c = clo to chi do
        let cand = dval c +. tri.(row + c) in
        if cand < !rbest then begin
          rbest := cand;
          rbestc := c
        end
      done;
      if !rbest < etime.(rm) then begin
        etime.(rm) <- !rbest;
        last_ckpt.(rm) <- !rbestc - 1
      end;
      fold rlo (rm - 1) clo !rbestc;
      fold (rm + 1) rhi !rbestc chi
    end
  in
  (* CDQ online-to-offline: finish rows [lo..mid], fold their columns
     into rows [mid+1..hi], recurse right. Rows enter [go lo hi] with
     columns [0..lo-1] already folded in. O(n log^2 n). *)
  let rec go lo hi =
    if lo = hi then begin
      let row = lo * (lo + 1) / 2 in
      let cand = dval lo +. tri.(row + lo) in
      if cand < etime.(lo) then begin
        etime.(lo) <- cand;
        last_ckpt.(lo) <- lo - 1
      end
    end
    else begin
      let mid = (lo + hi) / 2 in
      go lo mid;
      fold (mid + 1) hi lo mid;
      go (mid + 1) hi
    end
  in
  go 0 (n - 1);
  let rec backtrack j acc = if j < 0 then acc else backtrack last_ckpt.(j) (j :: acc) in
  (etime.(n - 1), backtrack (n - 1) [])

let solve_budget_packed_monotone ~n ~tri ~budget =
  if n < 1 then invalid_arg "Toueg.solve_budget_packed_monotone: n < 1";
  if budget < 1 then invalid_arg "Toueg.solve_budget_packed_monotone: budget < 1";
  if Array.length tri < tri_size n then
    invalid_arg "Toueg.solve_budget_packed_monotone: tri too short";
  let budget = min budget n in
  let etime = Array.make (budget * n) infinity in
  let last_ckpt = Array.make (budget * n) (-1) in
  (* Layer b depends only on layer b-1, so each layer is one fully
     offline row-minima problem over the staircase c <= j (columns
     beyond a row's diagonal are +inf, which keeps the padded matrix
     Monge). Column c = decision i+1 as in [solve_budget_packed]; the
     c = 0 base seeds every row before the fold, so ties keep it. *)
  for b = 0 to budget - 1 do
    let brow = b * n in
    for j = 0 to n - 1 do
      etime.(brow + j) <- tri.(j * (j + 1) / 2)
    done;
    if b > 0 then begin
      let prow = brow - n in
      let rec fold rlo rhi clo chi =
        if rlo <= rhi then begin
          let rm = (rlo + rhi) / 2 in
          let hi_c = min chi rm in
          if hi_c < clo then fold (rm + 1) rhi clo chi
          else begin
            let row = rm * (rm + 1) / 2 in
            let rbest = ref infinity and rbestc = ref clo in
            for c = clo to hi_c do
              let cand = etime.(prow + c - 1) +. tri.(row + c) in
              if cand < !rbest then begin
                rbest := cand;
                rbestc := c
              end
            done;
            if !rbest < etime.(brow + rm) then begin
              etime.(brow + rm) <- !rbest;
              last_ckpt.(brow + rm) <- !rbestc - 1
            end;
            fold rlo (rm - 1) clo !rbestc;
            fold (rm + 1) rhi !rbestc chi
          end
        end
      in
      fold 1 (n - 1) 1 (n - 1)
    end
  done;
  let rec backtrack b j acc =
    if j < 0 then acc
    else begin
      let i = last_ckpt.((b * n) + j) in
      backtrack (max 0 (b - 1)) i (j :: acc)
    end
  in
  (etime.(((budget - 1) * n) + n - 1), backtrack (budget - 1) (n - 1) [])

let solve_packed_auto ~n ~tri ~etime ~last_ckpt =
  if n >= monotone_cutoff && tri_is_monge ~n ~tri then
    solve_packed_monotone ~n ~tri ~etime ~last_ckpt
  else solve_packed ~n ~tri ~etime ~last_ckpt

let solve_budget_packed_auto ~n ~tri ~budget =
  if n >= monotone_cutoff && tri_is_monge ~n ~tri then
    solve_budget_packed_monotone ~n ~tri ~budget
  else solve_budget_packed ~n ~tri ~budget

let first_order ~lambda s =
  let pfail = Float.min 1. (lambda *. s) in
  ((1. -. pfail) *. s) +. (pfail *. 1.5 *. s)

let chain_cost ~lambda ~read ~weight ~write i j =
  let w = ref 0. in
  for k = i to j do
    w := !w +. weight k
  done;
  first_order ~lambda (read i +. !w +. write j)

let solve_chain ~n ~lambda ~read ~weight ~write =
  if n < 1 then invalid_arg "Toueg.solve_chain: n < 1";
  (* prefix-summed segment work: W(i,j) = pw.(j+1) - pw.(i), so the
     whole packed cost table fills in O(n^2) instead of the O(n^3) of
     [solve] over [chain_cost] (which re-sums every segment) *)
  let pw = Array.make (n + 1) 0. in
  for k = 0 to n - 1 do
    pw.(k + 1) <- pw.(k) +. weight k
  done;
  let tri = Array.make (tri_size n) 0. in
  for j = 0 to n - 1 do
    let row = j * (j + 1) / 2 in
    let wj = write j in
    for i = 0 to j do
      tri.(row + i) <- first_order ~lambda (read i +. (pw.(j + 1) -. pw.(i)) +. wj)
    done
  done;
  let etime = Array.make n infinity and last_ckpt = Array.make n (-1) in
  solve_packed ~n ~tri ~etime ~last_ckpt

let brute_force ~n ~cost =
  if n < 1 then invalid_arg "Toueg.brute_force: n < 1";
  if n > 20 then invalid_arg "Toueg.brute_force: too large";
  (* bit k of the mask (k < n-1) = checkpoint after task k; the final
     checkpoint after task n-1 is implicit *)
  let best = ref infinity and best_set = ref [] in
  for mask = 0 to (1 lsl (n - 1)) - 1 do
    let total = ref 0. in
    let start = ref 0 in
    for k = 0 to n - 1 do
      let is_ckpt = k = n - 1 || mask land (1 lsl k) <> 0 in
      if is_ckpt then begin
        total := !total +. cost !start k;
        start := k + 1
      end
    done;
    if !total < !best then begin
      best := !total;
      (* seed with the implicit final checkpoint and prepend downward:
         O(n) per improvement instead of the former O(n^2) list append *)
      let set = ref [ n - 1 ] in
      for k = n - 2 downto 0 do
        if mask land (1 lsl k) <> 0 then set := k :: !set
      done;
      best_set := !set
    end
  done;
  (!best, !best_set)
