(** The Toueg–Babaoğlu optimal-checkpoint dynamic program (1984), in
    the generic form shared by the classical linear-chain algorithm
    and the paper's superchain extension (Algorithm 2).

    Tasks [0 .. n-1] execute in sequence; a checkpoint may be taken
    after any task and is mandatory after the last one. [cost i j] is
    the expected time to successfully execute the segment
    [i..j] (inclusive) given a checkpoint right before [i] and one
    right after [j]. The DP

    [ETime j = min (cost 0 j, min over i < j (ETime i + cost (i+1) j))]

    is optimal because expected segment times are independent across
    checkpoints (a checkpoint regenerates the state), and runs in
    O(n^2) calls to [cost].

    The DP is agnostic to {e how} segments are priced: k-way
    checkpoint replication ({!Placement}'s [?replicas], storage-fault
    extension) enters purely through the [cost] table as a [k·C]
    commit term, so the same recurrence places optimal checkpoints for
    replicated plans too. *)

val solve : n:int -> cost:(int -> int -> float) -> float * int list
(** [solve ~n ~cost] returns the optimal expected completion time and
    the sorted positions after which to checkpoint (always including
    [n-1]).

    @raise Invalid_argument if [n < 1]. *)

val reference_solve : n:int -> cost:(int -> int -> float) -> float * int list
(** The pinned reference implementation of {!solve} (they are the same
    function today); the equivalence tests compare the packed rewrite
    below against this entry point. *)

(** {1 Packed variants}

    The planning hot path stores segment costs in a packed
    lower-triangular float array — the cost of segment [i..j] at index
    [j*(j+1)/2 + i] — and runs the DP straight over it, with no cost
    closure and no per-row boxing. The comparison sequence is
    identical to {!reference_solve} reading the same costs, so values
    and checkpoint sets are bitwise-identical. *)

val tri_size : int -> int
(** Slots needed for a packed [n]-task cost table: [n*(n+1)/2]. *)

val solve_packed :
  n:int ->
  tri:float array ->
  etime:float array ->
  last_ckpt:int array ->
  float * int list
(** Allocation-free {!solve} over a packed cost table; [etime] and
    [last_ckpt] are caller-provided scratch of length at least [n].

    @raise Invalid_argument if [n < 1] or an array is too short. *)

val solve_budget_packed :
  n:int -> tri:float array -> budget:int -> float * int list
(** {!solve_budget} over a packed cost table (flat budget-major DP
    matrices, no per-row boxing). *)

(** {1 Monotone (Knuth/Monge) speedup}

    When the packed cost table satisfies the quadrangle inequality
    (Monge condition)

    [tri(c,j) + tri(c+1,j+1) <= tri(c+1,j) + tri(c,j+1)]

    the leftmost optimal split point is nondecreasing in [j], and the
    DP's decision matrix can be searched by divide and conquer in
    O(n log² n) instead of the packed O(n²) scan. The [auto] entry
    points verify the condition at runtime (adjacent 2×2 squares — by
    telescoping this implies the full inequality on the triangular
    domain) and fall back to the bitwise-identical packed scan when it
    fails or when [n < monotone_cutoff]. On the monotone path the
    expected makespan is optimal — equal to {!reference_solve} up to
    float rounding (the divide-and-conquer evaluates the same
    candidates but may prune an ulp-different one); with exactly
    representable costs it is exactly equal, positions included. *)

val monotone_cutoff : int
(** Chains shorter than this always take the packed O(n²) scan in the
    [auto] entry points: bitwise identity for every existing plan, and
    the scan wins on constants there anyway. *)

val tri_is_monge : n:int -> tri:float array -> bool
(** Whether a packed cost table satisfies the Monge condition on every
    adjacent 2×2 square of the triangular domain (O(n²) float
    comparisons, early exit on the first violation). *)

val solve_packed_monotone :
  n:int ->
  tri:float array ->
  etime:float array ->
  last_ckpt:int array ->
  float * int list
(** Divide-and-conquer {!solve_packed} for Monge cost tables.
    Precondition: [tri_is_monge ~n ~tri] — unchecked here; call
    through {!solve_packed_auto} to get the runtime guard. *)

val solve_budget_packed_monotone :
  n:int -> tri:float array -> budget:int -> float * int list
(** Divide-and-conquer {!solve_budget_packed} for Monge cost tables:
    each budget layer is one offline row-minima problem,
    O(n log n · budget). Same unchecked precondition. *)

val solve_packed_auto :
  n:int ->
  tri:float array ->
  etime:float array ->
  last_ckpt:int array ->
  float * int list
(** {!solve_packed_monotone} when [n >= monotone_cutoff] and the table
    is Monge, {!solve_packed} (bitwise-identical fallback) otherwise. *)

val solve_budget_packed_auto :
  n:int -> tri:float array -> budget:int -> float * int list
(** Guarded dispatch for the budgeted variant, mirroring
    {!solve_packed_auto}. *)

val solve_chain :
  n:int ->
  lambda:float ->
  read:(int -> float) ->
  weight:(int -> float) ->
  write:(int -> float) ->
  float * int list
(** Linear-chain placement with prefix-summed segment work: fills the
    packed cost table in O(n²) total — versus the O(n³) of {!solve}
    over {!chain_cost}, which re-sums every segment — then runs
    {!solve_packed}. Costs may differ from {!chain_cost} by float
    rounding (prefix-sum differences reassociate the additions). *)

val chain_cost :
  lambda:float ->
  read:(int -> float) ->
  weight:(int -> float) ->
  write:(int -> float) ->
  int ->
  int ->
  float
(** Expected segment time for a plain linear chain under the
    first-order model (Eq. 2 with chain-shaped R/W/C): the segment
    [i..j] reads the input of task [i], executes [w_i..w_j] and writes
    the output of task [j]; with probability [λS] one failure adds
    [S/2]. Supply per-task read/write-to-stable-storage times. *)

val solve_budget :
  n:int -> cost:(int -> int -> float) -> budget:int -> float * int list
(** Budget-constrained variant (an extension beyond the paper): at
    most [budget] checkpoints in total, the mandatory final one
    included. [ETime(j, b) = min(cost 0 j, min over i < j
    (ETime(i, b-1) + cost (i+1) j))], O(n² · budget).

    @raise Invalid_argument if [n < 1] or [budget < 1]. *)

val reference_solve_budget :
  n:int -> cost:(int -> int -> float) -> budget:int -> float * int list
(** The pinned reference implementation of {!solve_budget}. *)

val brute_force : n:int -> cost:(int -> int -> float) -> float * int list
(** Exhaustive search over the [2^(n-1)] checkpoint subsets — for
    testing the DP on small instances only. *)
