module Dag = Ckpt_dag.Dag
module Platform = Ckpt_platform.Platform
module Prob_dag = Ckpt_eval.Prob_dag
module Evaluator = Ckpt_eval.Evaluator

type kind =
  | Ckpt_all
  | Ckpt_some
  | Ckpt_none
  | Ckpt_every of int
  | Ckpt_budget of int
  | Ckpt_restart
  | Ckpt_hybrid of int

let kind_name = function
  | Ckpt_all -> "ckpt-all"
  | Ckpt_some -> "ckpt-some"
  | Ckpt_none -> "ckpt-none"
  | Ckpt_every k -> Printf.sprintf "ckpt-every-%d" k
  | Ckpt_budget b -> Printf.sprintf "ckpt-budget-%d" b
  | Ckpt_restart -> "ckpt-restart"
  | Ckpt_hybrid t -> Printf.sprintf "ckpt-hybrid-%d" t

type plan = {
  kind : kind;
  schedule : Schedule.t;
  raw_dag : Dag.t;
  platform : Platform.t;
  segments : Placement.segment array;
  segment_of_task : int array;
  prob_dag : Prob_dag.t option;
  wpar : float;
  checkpoint_count : int;
  replicas : int;
}

(* Failure-free parallel time of the schedule with no checkpoint I/O:
   tasks cost weight + initial-input reads; edges are the raw
   dependencies plus the serialisation of each superchain. *)
let parallel_time ~raw ~schedule ~platform =
  let dag = schedule.Schedule.dag in
  let n = Dag.n_tasks dag in
  let pd = Prob_dag.create () in
  let chain_of = schedule.Schedule.chain_of_task in
  for t = 0 to n - 1 do
    let input_read =
      List.fold_left (fun acc s -> acc +. Platform.io_time platform s) 0. (Dag.inputs dag t)
    in
    (* heterogeneous speeds: each task computes at its superchain
       processor's speed (speed 1 divides exactly, staying bitwise) *)
    let proc = schedule.Schedule.superchains.(chain_of.(t)).Superchain.processor in
    let speed = if Platform.uniform_speed platform then 1. else Platform.speed_of platform proc in
    let d = (Dag.weight dag t /. speed) +. input_read in
    ignore (Prob_dag.add_node pd ~base:d ~degraded:d ~pfail:0.)
  done;
  for u = 0 to Dag.n_tasks raw - 1 do
    List.iter (fun v -> Prob_dag.add_edge pd u v) (Dag.succ_ids raw u)
  done;
  Array.iter
    (fun (sc : Superchain.t) ->
      let order = sc.Superchain.order in
      for k = 0 to Array.length order - 2 do
        Prob_dag.add_edge pd order.(k) order.(k + 1)
      done)
    schedule.Schedule.superchains;
  Prob_dag.deterministic_makespan pd

(* Coalesce checkpointed segments into a 2-state DAG. [dep_dag] yields
   the cross-superchain synchronisations: the completed graph for
   CKPTSOME, the raw one for the baselines. *)
let build_prob_dag ~dep_dag ~schedule ~platform ~segments ~segment_of_task =
  let pd = Prob_dag.create () in
  Array.iter
    (fun (seg : Placement.segment) ->
      let sc = schedule.Schedule.superchains.(seg.Placement.chain) in
      let lambda = Platform.rate_of platform sc.Superchain.processor in
      let s = seg.Placement.read +. seg.Placement.work +. seg.Placement.write in
      let pfail = Float.min 1. (lambda *. s) in
      ignore (Prob_dag.add_node pd ~base:s ~degraded:(1.5 *. s) ~pfail))
    segments;
  (* serialisation: consecutive segments of a superchain *)
  let by_chain = Hashtbl.create 16 in
  Array.iteri
    (fun idx (seg : Placement.segment) ->
      let l = Option.value ~default:[] (Hashtbl.find_opt by_chain seg.Placement.chain) in
      Hashtbl.replace by_chain seg.Placement.chain ((seg.Placement.first, idx) :: l))
    segments;
  Hashtbl.iter
    (fun _ l ->
      let sorted = List.sort compare l in
      let rec link = function
        | (_, a) :: ((_, b) :: _ as tl) ->
            Prob_dag.add_edge pd a b;
            link tl
        | [] | [ _ ] -> ()
      in
      link sorted)
    by_chain;
  (* data dependencies across superchains *)
  let chain_of = schedule.Schedule.chain_of_task in
  for u = 0 to Dag.n_tasks dep_dag - 1 do
    List.iter
      (fun v ->
        if chain_of.(u) <> chain_of.(v) then
          Prob_dag.add_edge pd segment_of_task.(u) segment_of_task.(v))
      (Dag.succ_ids dep_dag u)
  done;
  pd

let plan_of_positions ?(jobs = 1) ?(replicas = 1) ~kind ~raw ~schedule ~platform
    ~positions () =
  if replicas < 1 then invalid_arg "Strategy.plan: replicas < 1";
  let dag = schedule.Schedule.dag in
  if Dag.n_tasks raw <> Dag.n_tasks dag then
    invalid_arg "Strategy.plan: raw and scheduled DAGs disagree on tasks";
  let wpar = parallel_time ~raw ~schedule ~platform in
  (* independent per-superchain solves, reduced in superchain order:
     the result is the same for any [jobs] *)
  let chains = schedule.Schedule.superchains in
  let per_chain =
    Ckpt_parallel.Pool.map_shared ~jobs (Array.length chains) (fun c ->
        let sc = chains.(c) in
        Placement.segments_of_positions ~replicas platform dag sc ~positions:(positions sc))
  in
  let segments = Array.of_list (List.concat (Array.to_list per_chain)) in
  let segment_of_task = Array.make (Dag.n_tasks dag) (-1) in
  Array.iteri
    (fun idx (seg : Placement.segment) ->
      let sc = schedule.Schedule.superchains.(seg.Placement.chain) in
      for k = seg.Placement.first to seg.Placement.last do
        segment_of_task.(Superchain.task_at sc k) <- idx
      done)
    segments;
  let dep_dag =
    (* superchain-structured strategies rely on the completed graph's
       synchronisations; CKPTALL is a baseline on the raw workflow *)
    match kind with
    | Ckpt_some | Ckpt_every _ | Ckpt_budget _ | Ckpt_restart | Ckpt_hybrid _ -> dag
    | Ckpt_all | Ckpt_none -> raw
  in
  let pd = build_prob_dag ~dep_dag ~schedule ~platform ~segments ~segment_of_task in
  {
    kind;
    schedule;
    raw_dag = raw;
    platform;
    segments;
    segment_of_task;
    prob_dag = Some pd;
    wpar;
    checkpoint_count = Array.length segments;
    replicas;
  }

let plan ?(jobs = 1) ?(replicas = 1) kind ~raw ~schedule ~platform =
  if replicas < 1 then invalid_arg "Strategy.plan: replicas < 1";
  let dag = schedule.Schedule.dag in
  match kind with
  | Ckpt_none ->
      if Dag.n_tasks raw <> Dag.n_tasks dag then
        invalid_arg "Strategy.plan: raw and scheduled DAGs disagree on tasks";
      let wpar = parallel_time ~raw ~schedule ~platform in
      {
        kind;
        schedule;
        raw_dag = raw;
        platform;
        segments = [||];
        segment_of_task = Array.make (Dag.n_tasks dag) (-1);
        prob_dag = None;
        wpar;
        checkpoint_count = 0;
        replicas;
      }
  | Ckpt_all | Ckpt_some | Ckpt_every _ | Ckpt_budget _ | Ckpt_restart | Ckpt_hybrid _ ->
      (* Effective width: clamp to cores (jobs beyond the core count
         only oversubscribe), then fall back to the sequential
         shared-arena path when the fan-out cannot pay for itself —
         a single superchain, or too little DP work to amortise batch
         hand-off. Every per-chain solve is jobs-invariant, so the
         clamp never changes the plan. *)
      let jobs = Ckpt_parallel.Pool.effective_jobs jobs in
      let dp_cells =
        Array.fold_left
          (fun acc (sc : Superchain.t) -> acc + Toueg.tri_size (Superchain.n_tasks sc))
          0 schedule.Schedule.superchains
      in
      let jobs =
        if Array.length schedule.Schedule.superchains < 2 || dp_cells < 20_000 then 1
        else jobs
      in
      (* sequential runs reuse one arena across superchains; parallel
         workers each build their own (sharing would race) *)
      let shared = if jobs = 1 then Some (Placement.arena dag) else None in
      let positions (sc : Superchain.t) =
        match kind with
        | Ckpt_all -> Placement.every_position sc
        | Ckpt_every period -> Placement.periodic_positions sc ~period
        | Ckpt_budget budget ->
            snd
              (Placement.optimal_positions_budget ?arena:shared ~replicas platform dag sc
                 ~budget)
        (* RESTART: no checkpoint inside the superchain — a failure
           re-executes from the last natural boundary (the previous
           superchain's forced final checkpoint), i.e. one segment
           spanning the whole chain *)
        | Ckpt_restart -> [ Superchain.n_tasks sc - 1 ]
        (* hybrid restart/checkpoint: short superchains (<= threshold
           tasks) restart, long ones get the Algorithm-2 placement —
           pay checkpoint I/O only where a restart would forfeit a lot
           of work *)
        | Ckpt_hybrid threshold ->
            if Superchain.n_tasks sc <= threshold then [ Superchain.n_tasks sc - 1 ]
            else snd (Placement.optimal_positions ?arena:shared ~replicas platform dag sc)
        | Ckpt_some | Ckpt_none ->
            snd (Placement.optimal_positions ?arena:shared ~replicas platform dag sc)
      in
      plan_of_positions ~jobs ~replicas ~kind ~raw ~schedule ~platform ~positions ()

let expected_makespan ?(method_ = Evaluator.Pathapprox) plan =
  match plan.prob_dag with
  | Some pd -> Evaluator.estimate method_ pd
  | None ->
      (* aggregate failure process over the processors actually used *)
      let used = Hashtbl.create 16 in
      Array.iter
        (fun (sc : Superchain.t) -> Hashtbl.replace used sc.Superchain.processor ())
        plan.schedule.Schedule.superchains;
      let rate =
        Hashtbl.fold (fun p () acc -> acc +. Platform.rate_of plan.platform p) used 0.
      in
      Ckpt_eval.Ckptnone.expected_makespan_rate ~wpar:plan.wpar ~rate

let segment_dag plan =
  match plan.prob_dag with
  | None -> invalid_arg "Strategy.segment_dag: CKPTNONE has no segments"
  | Some pd ->
      let d = Dag.create ~name:(Dag.name plan.raw_dag ^ "/segments") () in
      Array.iteri
        (fun idx (seg : Placement.segment) ->
          let s = seg.Placement.read +. seg.Placement.work +. seg.Placement.write in
          let id =
            Dag.add_task d ~name:(Printf.sprintf "seg%d.%d" seg.Placement.chain idx) ~weight:s
          in
          assert (id = idx))
        plan.segments;
      for u = 0 to Prob_dag.n_nodes pd - 1 do
        List.iter (fun v -> Dag.add_edge d u v 0.) (Prob_dag.succs pd u)
      done;
      d

let makespan_distribution ?max_support plan =
  match plan.prob_dag with
  | None -> None
  | Some pd -> (
      let d = segment_dag plan in
      (* transitive edges (a mid-superchain exit plus the chain's own
         sequence) never lengthen a node-weighted longest path, so
         GSPG recognition is makespan-preserving here *)
      match Ckpt_mspg.Recognize.of_dag_gspg d with
      | Error _ -> None
      | Ok (m, _) ->
          let node_dist i = Prob_dag.dist_of_node pd i in
          Some (Ckpt_eval.Exact_sp.distribution ?max_support m.Ckpt_mspg.Mspg.tree ~node_dist))

let exact_expected_makespan ?max_support plan =
  Option.map Ckpt_prob.Dist.mean (makespan_distribution ?max_support plan)

let checkpoint_positions plan =
  let by_chain = Hashtbl.create 16 in
  Array.iter
    (fun (seg : Placement.segment) ->
      let l = Option.value ~default:[] (Hashtbl.find_opt by_chain seg.Placement.chain) in
      Hashtbl.replace by_chain seg.Placement.chain (seg.Placement.last :: l))
    plan.segments;
  Hashtbl.fold (fun chain l acc -> (chain, List.sort compare l) :: acc) by_chain []
  |> List.sort compare
