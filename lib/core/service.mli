(** Request-level memoisation for planning as a service.

    A long-lived planning process ([ckptwf serve], the daemon-batch
    bench) sees many requests over a bounded set of workflow
    configurations. This module caches {!Pipeline.setup}s (recognition
    + Algorithm-1 schedule, including the compiled CSR views and
    placement arenas they carry) and finished {!Strategy.plan}s under
    caller-chosen string keys, so repeated requests pay a hash lookup
    instead of an O(n²) plan.

    Thread-safety: safe to call from multiple domains. Lookups/inserts
    are mutex-guarded; the compute callback runs outside the lock, and
    when two domains race on the same missing key both compute but
    only the first insert wins — benign because planning is
    deterministic, so the values are identical (the loser is counted
    in [plan_races] rather than silently discarded).

    Capacity: a daemon that must not grow without bound passes
    [?max_setups] / [?max_plans] to {!create}; each table then evicts
    its least-recently-used entry on an over-cap insert (hits and
    inserts both refresh recency). Unbounded by default, so existing
    call sites are bitwise unchanged. *)

type t

type stats = {
  setup_hits : int;
  setup_misses : int;
  setup_evictions : int;  (** LRU evictions from the setup table *)
  plan_hits : int;
  plan_misses : int;
  plan_evictions : int;  (** LRU evictions from the plan table *)
  plan_races : int;
      (** racing duplicate computes whose insert lost to an incumbent *)
}

val create : ?max_setups:int -> ?max_plans:int -> unit -> t
(** [create ?max_setups ?max_plans ()] — each cap bounds its table's
    entry count with LRU eviction; omitted means unbounded.

    @raise Invalid_argument when a cap is [< 1]. *)

val setup : t -> key:string -> (unit -> Pipeline.setup) -> Pipeline.setup
(** [setup t ~key f] returns the cached setup for [key], computing and
    caching [f ()] on a miss. *)

val plan : t -> key:string -> (unit -> Strategy.plan) -> Strategy.plan
(** [plan t ~key f] likewise for finished plans. *)

val find_plan : t -> key:string -> Strategy.plan option
(** Lookup without computing — lets a batch caller collect the missing
    keys first and plan them together ({!Pipeline.plan_many}), then
    {!store_plan} the results. Refreshes LRU recency on a hit but does
    not touch the hit/miss counters; pair with {!note_plan_hit} /
    {!note_plan_miss}. *)

val store_plan : t -> key:string -> Strategy.plan -> Strategy.plan
(** Insert a plan computed out-of-band; returns the incumbent if a
    racing insert got there first (counted in [plan_races], and
    asserted structurally equal to the offered plan in debug builds —
    planning is deterministic, so a mismatch is a keying bug). *)

val note_plan_hit : t -> unit

val note_plan_miss : t -> unit

val stats : t -> stats
