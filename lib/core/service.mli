(** Request-level memoisation for planning as a service.

    A long-lived planning process ([ckptwf serve], the daemon-batch
    bench) sees many requests over a bounded set of workflow
    configurations. This module caches {!Pipeline.setup}s (recognition
    + Algorithm-1 schedule, including the compiled CSR views and
    placement arenas they carry) and finished {!Strategy.plan}s under
    caller-chosen string keys, so repeated requests pay a hash lookup
    instead of an O(n²) plan.

    Thread-safety: safe to call from multiple domains. Lookups/inserts
    are mutex-guarded; the compute callback runs outside the lock, and
    when two domains race on the same missing key both compute but
    only the first insert wins — benign because planning is
    deterministic, so the values are identical. *)

type t

type stats = {
  setup_hits : int;
  setup_misses : int;
  plan_hits : int;
  plan_misses : int;
}

val create : unit -> t

val setup : t -> key:string -> (unit -> Pipeline.setup) -> Pipeline.setup
(** [setup t ~key f] returns the cached setup for [key], computing and
    caching [f ()] on a miss. *)

val plan : t -> key:string -> (unit -> Strategy.plan) -> Strategy.plan
(** [plan t ~key f] likewise for finished plans. *)

val find_plan : t -> key:string -> Strategy.plan option
(** Lookup without computing — lets a batch caller collect the missing
    keys first and plan them together ({!Pipeline.plan_many}), then
    {!store_plan} the results. Does not touch the hit/miss counters;
    pair with {!note_plan_hit} / {!note_plan_miss}. *)

val store_plan : t -> key:string -> Strategy.plan -> Strategy.plan
(** Insert a plan computed out-of-band; returns the incumbent if a
    racing insert got there first. *)

val note_plan_hit : t -> unit

val note_plan_miss : t -> unit

val stats : t -> stats
