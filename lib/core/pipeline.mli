(** End-to-end experiment pipeline (Section VI methodology).

    From a raw workflow DAG and the experiment knobs ([processors],
    [pfail], [CCR]) to the three strategies' expected makespans:

    + λ is set so that a task of mean weight fails with probability
      [pfail] ([λ = -ln(1-pfail) / w̄]);
    + the storage bandwidth realises the requested CCR (equivalent to
      the paper's file-size scaling);
    + the workflow is recognised as an M-SPG, dummy-completing
      incomplete bipartite blocks if needed (CKPTSOME processes the
      completed graph, the baselines the raw one);
    + Algorithm 1 schedules it; Algorithm 2 (or the ALL/NONE policy)
      places checkpoints; the selected estimator prices the plans. *)

module Dag = Ckpt_dag.Dag
module Platform = Ckpt_platform.Platform
module Mspg = Ckpt_mspg.Mspg

type setup = private {
  raw : Dag.t;
  mspg : Mspg.t;  (** completed workflow backing the schedule *)
  dummy_edges : int;  (** 0 when the raw workflow is already an M-SPG *)
  platform : Platform.t;
  schedule : Schedule.t;
  pfail : float;
  ccr : float;
}

val prepare :
  ?policy:Linearize.policy ->
  ?platform:Platform.t ->
  dag:Dag.t ->
  processors:int ->
  pfail:float ->
  ccr:float ->
  unit ->
  setup
(** [platform] overrides the derived homogeneous platform with a
    caller-built one (heterogeneous rates, speeds, prices — the cloud
    extension); its processor count must equal [processors], and
    [pfail] / [ccr] are then recorded verbatim without deriving λ or
    the bandwidth from them.
    @raise Invalid_argument if the workflow cannot be recognised (even
    with completion) or the knobs are out of range. *)

val plan : ?jobs:int -> ?replicas:int -> setup -> Strategy.kind -> Strategy.plan
(** [jobs] fans the per-superchain placement DPs over domains
    (default 1); the plan is identical for any value. [replicas]
    (default 1) prices checkpoint commits at [k·C] — the replication
    knob of the storage-fault extension ({!Strategy.plan}). *)

val plan_many :
  ?jobs:int -> (setup * Strategy.kind * int) array -> Strategy.plan array
(** [plan_many ~jobs requests] plans a batch of
    [(setup, kind, replicas)] requests over the resident
    {!Ckpt_parallel.Pool.shared} pool, parallelising {e across}
    requests (each individual request plans sequentially on its own
    arena). Results are in request order and identical to mapping
    {!plan} — this is the amortised entry point the serve daemon and
    replan loops use. *)

type comparison = {
  em_some : float;
  em_all : float;
  em_none : float;
  rel_all : float;  (** EM(CKPTALL) / EM(CKPTSOME) — Figures 5-7 series *)
  rel_none : float;  (** EM(CKPTNONE) / EM(CKPTSOME) *)
  ckpts_some : int;  (** number of checkpoints CKPTSOME takes *)
  ckpts_all : int;  (** = number of tasks *)
}

val compare_strategies :
  ?method_:Ckpt_eval.Evaluator.method_ -> setup -> comparison
(** The paper's headline measurement: both baselines' expected
    makespans relative to CKPTSOME's, all under the same estimator
    (default PATHAPPROX). *)
