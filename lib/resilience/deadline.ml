type t = Never | At of { clock : unit -> float; expiry : float; seconds : float }

let never = Never

let make ?(clock = Unix.gettimeofday) ~seconds () =
  if seconds <= 0. then invalid_arg "Deadline.make: non-positive budget";
  At { clock; expiry = clock () +. seconds; seconds }

let of_seconds = function None -> Never | Some s -> make ~seconds:s ()

let expired = function Never -> false | At { clock; expiry; _ } -> clock () >= expiry

let remaining = function
  | Never -> infinity
  | At { clock; expiry; _ } -> Float.max 0. (expiry -. clock ())

let budget = function Never -> infinity | At { seconds; _ } -> seconds

(* [Unix.select] wants a finite timeout or -1 for "forever"; clamp a
   live deadline's remaining budget into that shape *)
let select_timeout = function
  | Never -> -1.
  | At _ as t -> remaining t

let check t ~completed =
  match t with
  | Never -> ()
  | At { seconds; _ } ->
      if expired t then
        Error.raise_ (Error.Deadline_exceeded { budget = seconds; completed })
