(** Typed errors for the fail-stop-tolerant experiment runtime.

    Every recoverable failure mode of the experiment stack — malformed
    inputs, invalid workflow structure, journal corruption, exhausted
    retries, expired wall-clock budgets, plain I/O trouble — is a
    constructor of one sum type, so the CLI boundary can map each to a
    one-line diagnostic and a stable exit code instead of letting an
    OCaml backtrace escape. *)

type t =
  | Parse of { source : string; message : string }
      (** Malformed external input (DAX / XML); [source] names the file
          or stream. *)
  | Invalid_dag of { name : string; violations : string list }
      (** A structurally broken workflow (cycle, NaN weight, ...);
          [violations] holds one rendered message per defect. *)
  | Io of { path : string; message : string }
      (** Filesystem failure while reading or writing [path]. *)
  | Journal_corrupt of { path : string; line : int; message : string }
      (** A journal entry whose CRC or framing check failed. *)
  | Journal_version of { path : string; found : string; expected : string }
      (** A journal written by an incompatible format version (resuming
          against it would replay rows under different semantics). *)
  | Store_fingerprint of { path : string; field : string; found : string; expected : string }
      (** A checkpoint store whose header fingerprint ([field] is
          ["schema"] or ["dag"]) does not match this run — resuming
          against it would replay checkpoints of a different workflow
          or build ([Ckpt_storage.Store]). *)
  | Deadline_exceeded of { budget : float; completed : int }
      (** A wall-clock budget of [budget] seconds ran out after
          [completed] units of work. *)
  | Retries_exhausted of { attempts : int; last : string }
      (** Every retry attempt failed; [last] describes the final
          error. *)

exception E of t
(** Carrier exception for code that must unwind through non-[result]
    call chains; the CLI boundary catches it. *)

val raise_ : t -> 'a
(** [raise_ e] raises {!E}. *)

val to_string : t -> string
(** One-line human-readable rendering (no newlines). *)

val exit_code : t -> int
(** Process exit code the CLI maps the error to: [2] for bad input
    (parse / invalid DAG / I/O / journal corruption), [3] for runtime
    refusal (retries, deadline, journal format-version or checkpoint
    store fingerprint mismatch). *)

val pp : Format.formatter -> t -> unit
