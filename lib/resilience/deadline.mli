(** Wall-clock budgets for open-ended computations.

    A deadline bounds work whose duration is data-dependent — a
    Monte-Carlo estimator, a long sweep — so a runaway configuration
    degrades into a truncated-but-checkpointed result instead of a
    hang. The clock is injectable, so tests drive time by hand. *)

type t

val never : t
(** Never expires. *)

val make : ?clock:(unit -> float) -> seconds:float -> unit -> t
(** [make ~seconds ()] expires [seconds] from now. [clock] defaults to
    [Unix.gettimeofday].

    @raise Invalid_argument on a non-positive budget. *)

val of_seconds : float option -> t
(** [of_seconds None] is {!never}; [of_seconds (Some s)] is
    [make ~seconds:s ()] — the shape of an optional [--deadline] CLI
    argument. *)

val expired : t -> bool

val remaining : t -> float
(** Seconds left; [infinity] for {!never}, never negative. *)

val budget : t -> float
(** The original budget in seconds; [infinity] for {!never}. *)

val select_timeout : t -> float
(** The deadline as a [Unix.select]-shaped timeout: seconds remaining
    (possibly [0.]) for a live deadline, [-1.] ("wait forever") for
    {!never} — so I/O loops can block exactly until the budget runs
    out. *)

val check : t -> completed:int -> unit
(** Raises [Error.E (Deadline_exceeded _)] when expired, recording how
    many units of work completed in time. *)
