(** Append-only, CRC-guarded journal of completed work units.

    The resumable-sweep backbone: each finished cell of an experiment
    (one CCR point of a sweep, one row of the accuracy table, ...) is
    recorded as a [key -> value] entry, where [key] identifies the cell
    and all parameters that determine it and [value] is the rendered
    result. After a crash, re-running with resume enabled replays
    journaled values verbatim and computes only the missing cells, so
    the combined output is bitwise identical to an uninterrupted run.

    Durability discipline (the paper's own medicine, applied to the
    harness): every mutation rewrites the journal to a temporary file
    in the same directory, flushes and fsyncs it, then atomically
    renames it over the previous version — a fail-stop error at any
    instant leaves either the old or the new journal on disk, never a
    torn one. Each line carries a CRC-32 of its payload; a corrupt
    {e tail} line (torn write from a pre-rename crash of an older
    writer) is dropped on load, while corruption {e inside} the journal
    is reported as {!Error.Journal_corrupt}.

    On-disk format, one entry per line:
    {v crc32-hex <TAB> key <TAB> value v}
    Keys must not contain tabs or newlines; values must not contain
    newlines.

    The first line is a mandatory format-version header (same framing,
    reserved key [__journal_format__]). {!open_} refuses a journal
    written under a different version — including pre-versioning (v1)
    files that open directly with an entry — with
    {!Error.Journal_version}, so a resumed sweep can never replay rows
    whose semantics have changed since they were computed. *)

type t

val format_version : int
(** The journal format version this build reads and writes. *)

val open_ :
  ?inject:(unit -> unit) -> ?fresh:bool -> string -> (t, Error.t) result
(** [open_ path] loads the journal at [path], creating an empty one if
    the file does not exist. [fresh] (default [false]) discards any
    existing contents instead of loading them. [inject] is a
    fault-injection hook called immediately before every physical write
    (see {!Faulty.guard}); it defaults to a no-op. *)

val path : t -> string

val length : t -> int
(** Number of live entries. *)

val recovered_tail : t -> bool
(** [true] when a torn trailing line was dropped during load. *)

val mem : t -> string -> bool

val find : t -> string -> string option
(** First value journaled under the key, if any. *)

val entries : t -> (string * string) list
(** All entries in append order. *)

val append : t -> key:string -> value:string -> unit
(** Journals one completed unit and persists atomically before
    returning: once [append] returns, the entry survives any fail-stop
    error.

    @raise Error.E ([Io]) on filesystem failure or on a key/value
    containing forbidden characters. Re-appending an existing key is
    allowed; {!find} keeps returning the first binding. *)

val append_incr : t -> key:string -> value:string -> unit
(** As {!append}, but appends the single framed line with [O_APPEND]
    and fsyncs it instead of rewriting the whole journal — constant
    cost per entry, for high-frequency writers (the checkpoint store's
    per-commit records). Durability is per line: once [append_incr]
    returns, the entry survives any fail-stop error; a crash mid-write
    leaves at most a torn trailing line, which {!open_} drops and
    reports via {!recovered_tail}. Falls back to the atomic rewrite
    when the file does not exist yet, and on the first append after a
    torn-tail recovery — the surviving partial line must be truncated
    away, not appended after. *)

val sync : t -> unit
(** Rewrites the journal from memory (normally unnecessary — [append]
    already persisted). @raise Error.E ([Io]) on failure. *)

val crc32 : string -> int32
(** The IEEE 802.3 CRC-32 used to guard entries (exposed for tests). *)
