(** Bounded retries with exponential backoff and seeded jitter.

    Transient faults (a journal write hitting a busy filesystem, an
    injected fail-stop error in tests) are retried a bounded number of
    times with exponentially growing delays. Jitter is drawn from
    {!Ckpt_prob.Rng}, so a given seed yields one deterministic backoff
    schedule — experiments stay exactly reproducible even through their
    failure handling. *)

type policy = {
  max_attempts : int;  (** total tries, including the first; >= 1 *)
  base_delay : float;  (** seconds before the second attempt *)
  multiplier : float;  (** growth factor per retry; >= 1 *)
  max_delay : float;  (** cap on any single delay *)
  jitter : float;  (** relative spread in [0, 1]: each delay is scaled
                       by a factor uniform in [1 - jitter, 1 + jitter] *)
}

val default : policy
(** 5 attempts, 0.1 s base, x2 growth, 5 s cap, 0.25 jitter. *)

val schedule : ?rng:Ckpt_prob.Rng.t -> policy -> float array
(** The [max_attempts - 1] inter-attempt delays the policy produces.
    Deterministic: equal seeds give equal schedules. Without [rng] the
    jitter factor is 1 (pure exponential).

    @raise Invalid_argument on a non-positive [max_attempts] or a
    negative delay parameter. *)

val check_policy : policy -> unit
(** Validates a policy's fields.
    @raise Invalid_argument on a non-positive [max_attempts], negative
    delay, [multiplier < 1] or jitter outside [0, 1]. *)

val transient : exn -> bool
(** Default retry predicate: [Sys_error], [Error.E (Io _)] and
    {!Faulty.Injected} are transient; everything else propagates. *)

val with_retries :
  ?policy:policy ->
  ?rng:Ckpt_prob.Rng.t ->
  ?sleep:(float -> unit) ->
  ?deadline:Deadline.t ->
  ?retry_on:(exn -> bool) ->
  (attempt:int -> 'a) ->
  ('a, Error.t) result
(** [with_retries f] runs [f ~attempt:1]; if it raises an exception
    accepted by [retry_on] (default {!transient}), sleeps the next
    backoff delay and tries again, up to [policy.max_attempts] times.
    Returns [Error (Retries_exhausted _)] when every attempt failed;
    non-transient exceptions propagate immediately. [sleep] defaults to
    [Unix.sleepf] and is injectable so tests need not wait.

    [deadline] (default {!Deadline.never}) bounds the whole retry loop:
    a backoff sleep is truncated to the remaining budget, and once the
    deadline has expired no further attempt is made — the loop returns
    [Error (Deadline_exceeded _)] with the attempts completed so far
    instead of dozing through an already-lost budget. *)
