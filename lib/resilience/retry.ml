module Rng = Ckpt_prob.Rng

type policy = {
  max_attempts : int;
  base_delay : float;
  multiplier : float;
  max_delay : float;
  jitter : float;
}

let default =
  { max_attempts = 5; base_delay = 0.1; multiplier = 2.; max_delay = 5.; jitter = 0.25 }

let check_policy p =
  if p.max_attempts < 1 then invalid_arg "Retry: max_attempts < 1";
  if p.base_delay < 0. || p.max_delay < 0. then invalid_arg "Retry: negative delay";
  if p.multiplier < 1. then invalid_arg "Retry: multiplier < 1";
  if p.jitter < 0. || p.jitter > 1. then invalid_arg "Retry: jitter outside [0,1]"

let schedule ?rng p =
  check_policy p;
  Array.init
    (p.max_attempts - 1)
    (fun k ->
      let nominal = Float.min p.max_delay (p.base_delay *. (p.multiplier ** float_of_int k)) in
      let factor =
        match rng with
        | None -> 1.
        | Some rng -> 1. +. (p.jitter *. ((2. *. Rng.uniform rng) -. 1.))
      in
      nominal *. factor)

let transient = function
  | Sys_error _ -> true
  | Error.E (Error.Io _) -> true
  | Faulty.Injected _ -> true
  | _ -> false

let with_retries ?(policy = default) ?rng ?(sleep = Unix.sleepf)
    ?(deadline = Deadline.never) ?(retry_on = transient) f =
  let delays = schedule ?rng policy in
  let rec go attempt last_msg =
    if attempt > policy.max_attempts then
      Error (Error.Retries_exhausted { attempts = policy.max_attempts; last = last_msg })
    else
      match f ~attempt with
      | v -> Ok v
      | exception e when retry_on e ->
          let msg = Printexc.to_string e in
          if attempt < policy.max_attempts then begin
            (* a deadline expiring mid-backoff cuts the sleep short: we
               doze at most the remaining budget, then stop retrying the
               moment the clock runs out instead of finishing the nap *)
            let d = Float.min delays.(attempt - 1) (Deadline.remaining deadline) in
            if d > 0. then sleep d
          end;
          if Deadline.expired deadline then
            Error
              (Error.Deadline_exceeded
                 { budget = Deadline.budget deadline; completed = attempt })
          else go (attempt + 1) msg
  in
  go 1 "no attempt made"
