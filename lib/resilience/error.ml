type t =
  | Parse of { source : string; message : string }
  | Invalid_dag of { name : string; violations : string list }
  | Io of { path : string; message : string }
  | Journal_corrupt of { path : string; line : int; message : string }
  | Journal_version of { path : string; found : string; expected : string }
  | Store_fingerprint of { path : string; field : string; found : string; expected : string }
  | Deadline_exceeded of { budget : float; completed : int }
  | Retries_exhausted of { attempts : int; last : string }

exception E of t

let raise_ e = raise (E e)

let to_string = function
  | Parse { source; message } -> Printf.sprintf "%s: %s" source message
  | Invalid_dag { name; violations } ->
      let n = List.length violations in
      Printf.sprintf "workflow %s is invalid (%d violation%s): %s" name n
        (if n = 1 then "" else "s")
        (String.concat "; " violations)
  | Io { path; message } -> Printf.sprintf "%s: %s" path message
  | Journal_corrupt { path; line; message } ->
      Printf.sprintf "journal %s: line %d: %s" path line message
  | Journal_version { path; found; expected } ->
      Printf.sprintf
        "journal %s: format version %s, this build reads version %s; re-run without \
         --resume to start a fresh journal"
        path found expected
  | Store_fingerprint { path; field; found; expected } ->
      Printf.sprintf
        "checkpoint store %s: %s mismatch (found %s, this run expects %s); the store was \
         written for a different workflow or build — resuming would replay foreign \
         checkpoints, use a fresh --store-path"
        path field found expected
  | Deadline_exceeded { budget; completed } ->
      Printf.sprintf "deadline of %gs exceeded after %d completed units" budget completed
  | Retries_exhausted { attempts; last } ->
      Printf.sprintf "gave up after %d attempts: %s" attempts last

let exit_code = function
  | Parse _ | Invalid_dag _ | Io _ | Journal_corrupt _ -> 2
  | Journal_version _ | Store_fingerprint _ | Deadline_exceeded _ | Retries_exhausted _ ->
      3

let pp fmt e = Format.pp_print_string fmt (to_string e)
