(** Fault injection: probabilistic or counted fail-stop errors.

    The harness's own failure model, used to prove that the resilience
    machinery actually recovers: wrap journal I/O or engine steps with
    an injector and every wrapped operation may raise {!Injected} — a
    stand-in for the process dying at that instant. Injection is driven
    by {!Ckpt_prob.Rng}, so a seed fully determines {e which} operation
    fails, and a test can replay the exact same crash. *)

exception Injected of string
(** The simulated fail-stop error; the payload names the operation
    that was killed. *)

type t

val probabilistic : ?prob:float -> seed:int -> unit -> t
(** Each {!inject} call fails independently with probability [prob]
    (default 0.1). *)

val after : int -> t
(** [after n] survives exactly [n] {!inject} calls and fails the
    [(n+1)]-th — a deterministic "crash at cell k". Subsequent calls
    keep failing until {!disarm}. *)

val never : unit -> t
(** Injects nothing (the production no-op). *)

val inject : t -> string -> unit
(** [inject t label] either returns, or raises [Injected label]. *)

val guard : t -> string -> unit -> unit
(** [guard t label] is the thunk form of {!inject}, shaped for
    {!Journal.open_}'s [?inject] hook. *)

val wrap : t -> string -> (unit -> 'a) -> 'a
(** [wrap t label f] injects, then runs [f ()]. *)

val disarm : t -> unit
(** Turns further injections off (lets a "resumed" run proceed). *)

val calls : t -> int
(** Number of {!inject} calls so far. *)

val injections : t -> int
(** Number of calls that raised. *)
