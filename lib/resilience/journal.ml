(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over bytes. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl) in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

type t = {
  jpath : string;
  inject : unit -> unit;
  mutable rev_entries : (string * string) list; (* newest first *)
  index : (string, string) Hashtbl.t; (* first binding wins *)
  mutable tail_dropped : bool;
  (* the physical file still ends with the torn partial line dropped at
     load time; the next incremental append must rewrite the file (which
     truncates the garbage) instead of appending after it *)
  mutable repair_pending : bool;
}

let path t = t.jpath
let length t = List.length t.rev_entries
let recovered_tail t = t.tail_dropped
let mem t key = Hashtbl.mem t.index key
let find t key = Hashtbl.find_opt t.index key
let entries t = List.rev t.rev_entries

let render_line key value = Printf.sprintf "%08lx\t%s\t%s" (crc32 (key ^ "\t" ^ value)) key value

(* The on-disk format version, bumped whenever cell semantics change
   (entry layout, row meaning) so an old journal cannot silently replay
   rows computed under different semantics. Stored as a CRC-guarded
   header line under a reserved key, excluded from the entry list. *)
let format_version = 2
let version_key = "__journal_format__"
let version_value = string_of_int format_version

(* [parse_line line] is [Ok (key, value)] or [Error message]. *)
let parse_line line =
  match String.index_opt line '\t' with
  | None -> Error "missing field separator"
  | Some i -> (
      let crc_hex = String.sub line 0 i in
      let rest = String.sub line (i + 1) (String.length line - i - 1) in
      match String.index_opt rest '\t' with
      | None -> Error "missing value field"
      | Some j -> (
          let key = String.sub rest 0 j in
          let value = String.sub rest (j + 1) (String.length rest - j - 1) in
          match Int32.of_string_opt ("0x" ^ crc_hex) with
          | None -> Error (Printf.sprintf "unreadable CRC %S" crc_hex)
          | Some crc ->
              if crc <> crc32 (key ^ "\t" ^ value) then Error "CRC mismatch"
              else Ok (key, value)))

(* Atomic persistence: whole journal to [path ^ ".tmp"], fsync, rename.
   A fail-stop error at any point leaves the previous version intact. *)
let persist t =
  t.inject ();
  let tmp = t.jpath ^ ".tmp" in
  (try
     let oc = open_out_bin tmp in
     (try
        output_string oc (render_line version_key version_value);
        output_char oc '\n';
        List.iter
          (fun (k, v) ->
            output_string oc (render_line k v);
            output_char oc '\n')
          (List.rev t.rev_entries);
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc)
      with e ->
        close_out_noerr oc;
        raise e);
     close_out oc
   with Sys_error m | Unix.Unix_error (_, _, m) ->
     Error.raise_ (Error.Io { path = tmp; message = m }));
  try Sys.rename tmp t.jpath
  with Sys_error m -> Error.raise_ (Error.Io { path = t.jpath; message = m })

let read_lines path =
  let ic = open_in_bin path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let open_ ?(inject = fun () -> ()) ?(fresh = false) jpath =
  let t =
    {
      jpath;
      inject;
      rev_entries = [];
      index = Hashtbl.create 64;
      tail_dropped = false;
      repair_pending = false;
    }
  in
  if fresh || not (Sys.file_exists jpath) then Ok t
  else
    match read_lines jpath with
    | exception Sys_error m -> Error (Error.Io { path = jpath; message = m })
    | lines -> (
        let non_empty = List.filteri (fun _ l -> l <> "") lines in
        (* entries follow a mandatory version header: a journal that
           opens with an entry line is a pre-versioning (v1) file, and
           one with a different version value was written by an
           incompatible build — both are refused, never reinterpreted *)
        let load_entries body =
          let n = List.length body in
          let rec load i = function
            | [] -> Ok ()
            | line :: rest -> (
                match parse_line line with
                | Ok (key, value) ->
                    t.rev_entries <- (key, value) :: t.rev_entries;
                    if not (Hashtbl.mem t.index key) then Hashtbl.replace t.index key value;
                    load (i + 1) rest
                | Error message ->
                    (* a torn final line is the expected signature of a
                       crash mid-write; anything earlier is real damage *)
                    if i = n - 1 then begin
                      t.tail_dropped <- true;
                      t.repair_pending <- true;
                      Ok ()
                    end
                    else
                      (* physical line number: one header line above *)
                      Error (Error.Journal_corrupt { path = jpath; line = i + 2; message }))
          in
          match load 0 body with Ok () -> Ok t | Error e -> Error e
        in
        match non_empty with
        | [] -> Ok t
        | first :: body -> (
            match parse_line first with
            | Ok (key, value) when key = version_key ->
                if value = version_value then load_entries body
                else
                  Error
                    (Error.Journal_version
                       { path = jpath; found = value; expected = version_value })
            | Ok _ ->
                Error
                  (Error.Journal_version
                     { path = jpath; found = "1 (unversioned)"; expected = version_value })
            | Error message ->
                (* a lone torn line is a crash before the first entry
                   persisted: recover to an empty journal; a damaged
                   header with entries behind it is real corruption *)
                if body = [] then begin
                  t.tail_dropped <- true;
                  t.repair_pending <- true;
                  Ok t
                end
                else Error (Error.Journal_corrupt { path = jpath; line = 1; message })))

let check_field what ~allow_tab s =
  String.iter
    (fun c ->
      if c = '\n' || c = '\r' || ((not allow_tab) && c = '\t') then
        Error.raise_
          (Error.Io
             { path = "journal"; message = Printf.sprintf "%s contains forbidden character" what }))
    s

let append t ~key ~value =
  check_field "key" ~allow_tab:false key;
  check_field "value" ~allow_tab:true value;
  t.rev_entries <- (key, value) :: t.rev_entries;
  if not (Hashtbl.mem t.index key) then Hashtbl.replace t.index key value;
  persist t

(* Incremental durability for high-frequency writers (the checkpoint
   store's per-commit records): appends ONE framed line with O_APPEND
   and fsyncs it, instead of rewriting the whole journal — the
   rewrite-and-rename discipline is quadratic in the record count. A
   fail-stop error mid-write leaves at most a torn trailing line,
   which [open_] drops and flags ([recovered_tail]); every line whose
   fsync returned is durable. Falls back to the atomic rewrite when
   the file does not exist yet (the version header must lead), and when
   a torn trailing line was dropped at load time — appending after the
   surviving partial line would corrupt the file mid-line, so the first
   write after such a recovery rewrites and truncates it away. *)
let append_incr t ~key ~value =
  check_field "key" ~allow_tab:false key;
  check_field "value" ~allow_tab:true value;
  t.rev_entries <- (key, value) :: t.rev_entries;
  if not (Hashtbl.mem t.index key) then Hashtbl.replace t.index key value;
  if t.repair_pending || not (Sys.file_exists t.jpath) then begin
    persist t;
    t.repair_pending <- false
  end
  else begin
    t.inject ();
    let line = render_line key value ^ "\n" in
    try
      let fd = Unix.openfile t.jpath [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let n = String.length line in
          if Unix.write_substring fd line 0 n <> n then
            Error.raise_ (Error.Io { path = t.jpath; message = "short append" });
          Unix.fsync fd)
    with Unix.Unix_error (err, _, _) ->
      Error.raise_ (Error.Io { path = t.jpath; message = Unix.error_message err })
  end

let sync t =
  persist t;
  t.repair_pending <- false
