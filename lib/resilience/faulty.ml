module Rng = Ckpt_prob.Rng

exception Injected of string

type mode =
  | Probabilistic of { rng : Rng.t; prob : float }
  | After of { mutable left : int }
  | Never

type t = { mutable mode : mode; mutable n_calls : int; mutable n_injected : int }

let probabilistic ?(prob = 0.1) ~seed () =
  if prob < 0. || prob > 1. then invalid_arg "Faulty.probabilistic: prob outside [0,1]";
  { mode = Probabilistic { rng = Rng.create seed; prob }; n_calls = 0; n_injected = 0 }

let after n =
  if n < 0 then invalid_arg "Faulty.after: negative count";
  { mode = After { left = n }; n_calls = 0; n_injected = 0 }

let never () = { mode = Never; n_calls = 0; n_injected = 0 }

let inject t label =
  t.n_calls <- t.n_calls + 1;
  let fire =
    match t.mode with
    | Never -> false
    | Probabilistic { rng; prob } -> Rng.uniform rng < prob
    | After r ->
        if r.left > 0 then begin
          r.left <- r.left - 1;
          false
        end
        else true
  in
  if fire then begin
    t.n_injected <- t.n_injected + 1;
    raise (Injected label)
  end

let guard t label () = inject t label
let wrap t label f = inject t label; f ()
let disarm t = t.mode <- Never
let calls t = t.n_calls
let injections t = t.n_injected
