(** Pegasus DAX v3 import/export.

    The Pegasus Workflow Generator — the paper's workload source —
    emits abstract workflows as DAX files:

    {v
    <adag name="montage" jobCount="50" ...>
      <job id="ID00000" name="mProjectPP" runtime="13.59">
        <uses file="raw_0.fits" link="input" size="4222"/>
        <uses file="proj_0.fits" link="output" size="8002"/>
      </job>
      ...
      <child ref="ID00002"><parent ref="ID00000"/></child>
    </adag>
    v}

    Import maps each [job] to a task (weight = [runtime] seconds),
    each output [uses] to a file of the given size (in bytes), each
    input [uses] to either a dependency edge from the producing job
    (shared files keep their identity, so a file consumed by several
    jobs is checkpointed once) or, when no job produces it, an initial
    input read from stable storage. [child]/[parent] declarations are
    checked against the file-induced edges; a declared dependency with
    no connecting file becomes a zero-size control edge.

    Export writes the reverse mapping; [of_string (to_string dag)]
    rebuilds an identical workflow (task order, weights, file sizes
    and sharing, initial inputs). *)

exception Error of string

val of_string_result :
  ?source:string -> string -> (Ckpt_dag.Dag.t, Ckpt_resilience.Error.t) result
(** Total parsing entry point: malformed DAX (unknown refs, duplicate
    job ids, missing attributes, negative sizes, cyclic dependencies)
    yields [Error (Parse _)] instead of raising. [source] names the
    input in diagnostics (default ["<dax>"]). *)

val of_file : string -> (Ckpt_dag.Dag.t, Ckpt_resilience.Error.t) result
(** [of_file path] reads and parses a DAX file; I/O failures yield
    [Error (Io _)], malformed content [Error (Parse _)]. Never
    raises. *)

val of_string : string -> Ckpt_dag.Dag.t
(** Thin raising wrapper over {!of_string_result} for legacy callers.
    @raise Error on malformed DAX. *)

val to_string : Ckpt_dag.Dag.t -> string

val load : string -> Ckpt_dag.Dag.t
(** Thin raising wrapper over {!of_file}.

    @raise Error as {!of_string}, or [Sys_error] on I/O failure. *)

val save : string -> Ckpt_dag.Dag.t -> unit
