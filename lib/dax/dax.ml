module Dag = Ckpt_dag.Dag
module Task = Ckpt_dag.Task

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Import                                                              *)
(* ------------------------------------------------------------------ *)

type uses = { file_name : string; link : [ `Input | `Output ]; size : float }

type job = { job_id : string; job_name : string; runtime : float; uses : uses list }

let parse_uses node =
  let file_name =
    match Xml.attr node "file" with
    | Some f -> f
    | None -> (
        (* DAX 2 nests <filename file=".."/>; accept the name attr too *)
        match Xml.attr node "name" with
        | Some f -> f
        | None -> error "uses element without file attribute")
  in
  let link =
    match Xml.attr node "link" with
    | Some "input" -> `Input
    | Some "output" -> `Output
    | Some other -> error "uses %s: unsupported link %S" file_name other
    | None -> error "uses %s: missing link attribute" file_name
  in
  let size =
    match Xml.attr node "size" with
    | None -> 0.
    | Some s -> (
        match float_of_string_opt s with
        | Some v when v >= 0. -> v
        | _ -> error "uses %s: bad size %S" file_name s)
  in
  { file_name; link; size }

let parse_job node =
  let job_id =
    match Xml.attr node "id" with Some i -> i | None -> error "job without id"
  in
  let job_name = Option.value ~default:"task" (Xml.attr node "name") in
  let runtime =
    match Xml.attr node "runtime" with
    | Some s -> (
        match float_of_string_opt s with
        | Some v when v >= 0. -> v
        | _ -> error "job %s: bad runtime %S" job_id s)
    | None -> 0.
  in
  let uses =
    List.filter_map
      (fun child ->
        match Xml.name child with "uses" -> Some (parse_uses child) | _ -> None)
      (Xml.children node)
  in
  { job_id; job_name; runtime; uses }

let of_string src =
  let root = try Xml.parse src with Xml.Parse_error { position; message } ->
    error "XML error at offset %d: %s" position message
  in
  if Xml.name root <> "adag" then error "root element is <%s>, expected <adag>" (Xml.name root);
  let dag_name = Option.value ~default:"dax" (Xml.attr root "name") in
  let jobs =
    List.filter_map
      (fun child -> match Xml.name child with "job" -> Some (parse_job child) | _ -> None)
      (Xml.children root)
  in
  if jobs = [] then error "adag contains no jobs";
  let dag = Dag.create ~name:dag_name () in
  let task_of_job = Hashtbl.create 64 in
  List.iter
    (fun job ->
      if Hashtbl.mem task_of_job job.job_id then error "duplicate job id %s" job.job_id;
      let task = Dag.add_task dag ~name:job.job_name ~weight:job.runtime in
      Hashtbl.replace task_of_job job.job_id task)
    jobs;
  (* producers: file name -> (task, dag file id), first producer wins;
     a file output by two jobs is rejected (not a DAG of files) *)
  let producer = Hashtbl.create 64 in
  List.iter
    (fun job ->
      let task = Hashtbl.find task_of_job job.job_id in
      List.iter
        (fun u ->
          if u.link = `Output then begin
            if Hashtbl.mem producer u.file_name then
              error "file %s has two producers" u.file_name;
            let fid = Dag.add_file dag ~producer:task ~size:u.size in
            Hashtbl.replace producer u.file_name (task, fid)
          end)
        job.uses)
    jobs;
  (* consumers: data edges for produced files, initial inputs
     otherwise; a job listing the same input file twice is tolerated *)
  let seen_edges = Hashtbl.create 256 in
  List.iter
    (fun job ->
      let task = Hashtbl.find task_of_job job.job_id in
      List.iter
        (fun u ->
          if u.link = `Input then
            match Hashtbl.find_opt producer u.file_name with
            | Some (src_task, fid) ->
                if src_task = task then
                  error "job %s consumes its own output %s" job.job_id u.file_name;
                if not (Hashtbl.mem seen_edges (src_task, task, fid)) then begin
                  Hashtbl.replace seen_edges (src_task, task, fid) ();
                  Dag.add_edge dag ~file:fid src_task task 0.
                end
            | None -> Dag.add_input dag task u.size)
        job.uses)
    jobs;
  (* child/parent declarations: validate refs; add zero-size control
     edges for dependencies not realised by any file *)
  List.iter
    (fun child_node ->
      if Xml.name child_node = "child" then begin
        let child_ref =
          match Xml.attr child_node "ref" with
          | Some r -> r
          | None -> error "child without ref"
        in
        let child_task =
          match Hashtbl.find_opt task_of_job child_ref with
          | Some t -> t
          | None -> error "child ref %s unknown" child_ref
        in
        List.iter
          (fun parent_node ->
            if Xml.name parent_node = "parent" then begin
              let parent_ref =
                match Xml.attr parent_node "ref" with
                | Some r -> r
                | None -> error "parent without ref"
              in
              let parent_task =
                match Hashtbl.find_opt task_of_job parent_ref with
                | Some t -> t
                | None -> error "parent ref %s unknown" parent_ref
              in
              if not (Dag.has_edge dag parent_task child_task) then
                Dag.add_edge dag parent_task child_task 0.
            end)
          (Xml.children child_node)
      end)
    (Xml.children root);
  (try Dag.check_acyclic dag with Invalid_argument _ -> error "workflow has a cycle");
  dag

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

(* A dag file has no intrinsic name; synthesise stable ones. An edge
   carrying a zero-size file whose file id is shared by no other edge
   could be either data or control; we export every file, so the
   round-trip preserves structure exactly. *)
let to_string dag =
  let n = Dag.n_tasks dag in
  let job_id t = Printf.sprintf "ID%05d" t in
  let file_name fid = Printf.sprintf "file_%d" fid in
  (* all files by producer — includes final outputs that no job
     consumes, which edge-walking would silently drop *)
  let produced = Array.make n [] in
  Array.iter
    (fun (f : Dag.file) -> produced.(f.Dag.producer) <- f.Dag.file_id :: produced.(f.Dag.producer))
    (Dag.files dag);
  let jobs =
    List.init n (fun t ->
        let info = Dag.task dag t in
        let outputs = List.sort_uniq compare produced.(t) in
        let inputs =
          List.sort_uniq compare
            (List.map (fun (_, (f : Dag.file)) -> f.Dag.file_id) (Dag.preds dag t))
        in
        let uses =
          List.map
            (fun fid ->
              let f = Dag.file dag fid in
              Xml.Element
                ( "uses",
                  [ ("file", file_name fid); ("link", "input");
                    ("size", Printf.sprintf "%.3f" f.Dag.size) ],
                  [] ))
            inputs
          @ List.map
              (fun fid ->
                let f = Dag.file dag fid in
                Xml.Element
                  ( "uses",
                    [ ("file", file_name fid); ("link", "output");
                      ("size", Printf.sprintf "%.3f" f.Dag.size) ],
                    [] ))
              outputs
          @ List.mapi
              (fun k size ->
                Xml.Element
                  ( "uses",
                    [ ("file", Printf.sprintf "input_%d_%d" t k); ("link", "input");
                      ("size", Printf.sprintf "%.3f" size) ],
                    [] ))
              (Dag.inputs dag t)
        in
        Xml.Element
          ( "job",
            [ ("id", job_id t); ("name", info.Task.name);
              ("runtime", Printf.sprintf "%.6f" info.Task.weight) ],
            uses ))
  in
  let deps =
    List.init n (fun t ->
        match Dag.pred_ids dag t with
        | [] -> None
        | preds ->
            Some
              (Xml.Element
                 ( "child",
                   [ ("ref", job_id t) ],
                   List.map
                     (fun p -> Xml.Element ("parent", [ ("ref", job_id p) ], []))
                     preds )))
    |> List.filter_map Fun.id
  in
  let root =
    Xml.Element
      ( "adag",
        [ ("xmlns", "http://pegasus.isi.edu/schema/DAX"); ("version", "3.4");
          ("name", Dag.name dag); ("jobCount", string_of_int n) ],
        jobs @ deps )
  in
  "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n" ^ Xml.to_string root

let of_string_result ?(source = "<dax>") src =
  match of_string src with
  | dag -> Ok dag
  | exception Error message -> Result.Error (Ckpt_resilience.Error.Parse { source; message })

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  src

let load path = of_string (read_file path)

let of_file path =
  match read_file path with
  | exception Sys_error message -> Result.Error (Ckpt_resilience.Error.Io { path; message })
  | src -> of_string_result ~source:path src

let save path dag =
  let oc = open_out_bin path in
  output_string oc (to_string dag);
  close_out oc
