type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

(* Chan et al.'s parallel Welford combine: merges the sufficient
   statistics of two disjoint samples. The float operations are fixed,
   so folding the same partials in the same order is bitwise
   reproducible — which is how the parallel Monte-Carlo estimator stays
   invariant in the number of worker domains. *)
let merge_into t other =
  if other.n > 0 then
    if t.n = 0 then begin
      t.n <- other.n;
      t.mean <- other.mean;
      t.m2 <- other.m2;
      t.min <- other.min;
      t.max <- other.max
    end
    else begin
      let na = float_of_int t.n and nb = float_of_int other.n in
      let n = t.n + other.n in
      let nf = float_of_int n in
      let delta = other.mean -. t.mean in
      t.mean <- t.mean +. (delta *. nb /. nf);
      t.m2 <- t.m2 +. other.m2 +. (delta *. delta *. na *. nb /. nf);
      t.n <- n;
      if other.min < t.min then t.min <- other.min;
      if other.max > t.max then t.max <- other.max
    end

let count t = t.n
let mean t = t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.min
let max t = t.max

let ci95_halfwidth t =
  if t.n = 0 then infinity else 1.96 *. stddev t /. sqrt (float_of_int t.n)

let of_array xs =
  let t = create () in
  Array.iter (add t) xs;
  t

let mean_of_array xs = mean (of_array xs)

let ks_distance xs ~cdf =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.ks_distance: empty sample";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  (* Both distributions may carry atoms (e.g. the failure-free
     makespan), so compare the two right-continuous CDFs at the
     distinct sample values: tied blocks must be treated as one jump,
     not per-index steps. *)
  let worst = ref 0. in
  let i = ref 0 in
  while !i < n do
    let v = sorted.(!i) in
    let j = ref !i in
    while !j < n - 1 && sorted.(!j + 1) = v do
      incr j
    done;
    (* evaluate F with a relative tolerance so that an atom of F
       sitting within float noise of a sample value counts on the
       correct side (simulation and analysis compute the same atom
       through different float paths) *)
    let tol = 1e-9 *. (1. +. abs_float v) in
    let f_n = float_of_int (!j + 1) /. float_of_int n in
    worst := Stdlib.max !worst (abs_float (cdf (v +. tol) -. f_n));
    let f_below = float_of_int !i /. float_of_int n in
    worst := Stdlib.max !worst (abs_float (cdf (v -. tol) -. f_below));
    i := !j + 1
  done;
  !worst

let quantile_of_array xs q =
  if Array.length xs = 0 then invalid_arg "Stats.quantile_of_array: empty";
  if q < 0. || q > 1. then invalid_arg "Stats.quantile_of_array: q out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let idx = int_of_float (ceil (q *. float_of_int n)) - 1 in
  sorted.(Stdlib.max 0 (Stdlib.min (n - 1) idx))
