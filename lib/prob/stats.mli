(** Online and batch summary statistics for simulation outputs. *)

type t
(** Mutable accumulator (Welford's algorithm: numerically stable
    streaming mean and variance, plus min/max). *)

val create : unit -> t
val add : t -> float -> unit

val merge_into : t -> t -> unit
(** [merge_into acc other] folds [other]'s summary into [acc] as if
    [acc] had also observed [other]'s sample (Chan's parallel variant
    of Welford's update). [other] is unchanged. Folding the same
    partials in the same order is bitwise deterministic, which makes
    chunk-merged parallel estimates independent of the worker count. *)

val count : t -> int
val mean : t -> float
val variance : t -> float
(** Unbiased sample variance; 0 for fewer than two observations. *)

val stddev : t -> float
val min : t -> float
val max : t -> float

val ci95_halfwidth : t -> float
(** Half-width of the 95% normal-approximation confidence interval on
    the mean: [1.96 * stddev / sqrt count]. *)

val of_array : float array -> t

val mean_of_array : float array -> float

val quantile_of_array : float array -> float -> float
(** [quantile_of_array xs q] with [0 <= q <= 1]; sorts a copy. *)

val ks_distance : float array -> cdf:(float -> float) -> float
(** Kolmogorov–Smirnov statistic between the empirical distribution of
    the sample and the given CDF: [sup |F_n(x) - F(x)|] evaluated just
    below and just above every distinct sample value. Tied sample
    points are treated as one jump, and the evaluations carry a
    relative 1e-9 tolerance so atoms computed through different float
    paths (e.g. the failure-free makespan in simulation vs analysis)
    land on the correct side. Used to compare simulated makespan
    distributions against analytic ones.

    @raise Invalid_argument on an empty sample. *)
