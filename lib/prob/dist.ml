type t = { pts : (float * float) array }
(* Invariant: values strictly increasing, probabilities > 0, sum = 1. *)

let normalize pairs =
  if pairs = [] then invalid_arg "Dist.of_list: empty support";
  List.iter
    (fun (_, p) -> if p < 0. then invalid_arg "Dist.of_list: negative probability")
    pairs;
  let sorted = List.sort (fun (v1, _) (v2, _) -> compare v1 v2) pairs in
  (* merge equal (or numerically indistinguishable) values *)
  let merged =
    List.fold_left
      (fun acc (v, p) ->
        match acc with
        | (v0, p0) :: rest when abs_float (v -. v0) <= 1e-12 *. (1. +. abs_float v0) ->
            (v0, p0 +. p) :: rest
        | _ -> (v, p) :: acc)
      [] sorted
    |> List.rev
    |> List.filter (fun (_, p) -> p > 0.)
  in
  let total = List.fold_left (fun s (_, p) -> s +. p) 0. merged in
  if total <= 0. then invalid_arg "Dist.of_list: zero total mass";
  { pts = Array.of_list (List.map (fun (v, p) -> (v, p /. total)) merged) }

let of_list pairs = normalize pairs
let constant v = { pts = [| (v, 1.) |] }

let two_state ?(p = 0.) low high =
  if p <= 0. then constant low
  else if p >= 1. then constant high
  else if low = high then constant low
  else normalize [ (low, 1. -. p); (high, p) ]

let support t = Array.copy t.pts
let size t = Array.length t.pts
let mean t = Array.fold_left (fun s (v, p) -> s +. (v *. p)) 0. t.pts

let variance t =
  let m = mean t in
  Array.fold_left (fun s (v, p) -> s +. (p *. (v -. m) *. (v -. m))) 0. t.pts

let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Dist.quantile";
  let n = Array.length t.pts in
  let rec scan i acc =
    if i = n - 1 then fst t.pts.(i)
    else
      let acc = acc +. snd t.pts.(i) in
      if acc >= q -. 1e-12 then fst t.pts.(i) else scan (i + 1) acc
  in
  scan 0 0.

let cdf t x =
  let acc = ref 0. in
  Array.iter (fun (v, p) -> if v <= x then acc := !acc +. p) t.pts;
  !acc

let shift t c = { pts = Array.map (fun (v, p) -> (v +. c, p)) t.pts }

let scale t c =
  if c < 0. then invalid_arg "Dist.scale: negative factor";
  if c = 0. then constant 0.
  else { pts = Array.map (fun (v, p) -> (v *. c, p)) t.pts }

let add a b =
  let pairs = ref [] in
  Array.iter
    (fun (va, pa) -> Array.iter (fun (vb, pb) -> pairs := (va +. vb, pa *. pb) :: !pairs) b.pts)
    a.pts;
  normalize !pairs

(* For max and min we exploit sortedness: walk both supports once,
   using the joint CDF. P(max <= x) = Fa(x) * Fb(x). *)
let with_joint_cdf f a b =
  let values =
    Array.append (Array.map fst a.pts) (Array.map fst b.pts)
    |> Array.to_list |> List.sort_uniq compare
  in
  let cdf_points pts =
    (* association list value -> CDF at that value, over [values] *)
    let acc = ref 0. and idx = ref 0 in
    List.map
      (fun v ->
        while !idx < Array.length pts && fst pts.(!idx) <= v do
          acc := !acc +. snd pts.(!idx);
          incr idx
        done;
        !acc)
      values
  in
  let fa = cdf_points a.pts and fb = cdf_points b.pts in
  let cdf = List.map2 f fa fb in
  (* convert CDF back to point masses *)
  let rec diff prev vs cs acc =
    match (vs, cs) with
    | [], [] -> List.rev acc
    | v :: vs, c :: cs ->
        let mass = c -. prev in
        if mass > 1e-15 then diff c vs cs ((v, mass) :: acc) else diff c vs cs acc
    | _ -> assert false
  in
  normalize (diff 0. values cdf [])

let max2 a b = with_joint_cdf (fun fa fb -> fa *. fb) a b
let min2 a b = with_joint_cdf (fun fa fb -> fa +. fb -. (fa *. fb)) a b

let compact ?(max_size = 512) t =
  let n = Array.length t.pts in
  if n <= max_size then t
  else begin
    (* Merge adjacent points into [max_size] buckets of (approximately)
       equal probability mass; each bucket is replaced by its
       mass-weighted mean, preserving the overall expectation. *)
    let target = 1. /. float_of_int max_size in
    let buckets = ref [] in
    let bucket_mass = ref 0. and bucket_weighted = ref 0. in
    let flush () =
      if !bucket_mass > 0. then begin
        buckets := (!bucket_weighted /. !bucket_mass, !bucket_mass) :: !buckets;
        bucket_mass := 0.;
        bucket_weighted := 0.
      end
    in
    Array.iter
      (fun (v, p) ->
        bucket_mass := !bucket_mass +. p;
        bucket_weighted := !bucket_weighted +. (v *. p);
        if !bucket_mass >= target then flush ())
      t.pts;
    flush ();
    normalize !buckets
  end

let sample t rng =
  let u = Rng.uniform rng in
  let n = Array.length t.pts in
  let rec scan i acc =
    if i = n - 1 then fst t.pts.(i)
    else
      let acc = acc +. snd t.pts.(i) in
      if u <= acc then fst t.pts.(i) else scan (i + 1) acc
  in
  scan 0 0.

(* Lanczos approximation of Γ (g = 7, 9 coefficients) — the stdlib
   has no gamma function and the Weibull mean needs Γ(1 + 1/k).
   Accurate to ~13 significant digits over the arguments we meet
   (1 < x ≤ 2 for any shape ≥ 1; the reflection formula covers the
   rest). *)
let rec gamma x =
  if x < 0.5 then Float.pi /. (sin (Float.pi *. x) *. gamma (1. -. x))
  else begin
    let coef =
      [|
        0.99999999999980993;
        676.5203681218851;
        -1259.1392167224028;
        771.32342877765313;
        -176.61502916214059;
        12.507343278686905;
        -0.13857109526572012;
        9.9843695780195716e-6;
        1.5056327351493116e-7;
      |]
    in
    let x = x -. 1. in
    let a = ref coef.(0) in
    for i = 1 to 8 do
      a := !a +. (coef.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    sqrt (2. *. Float.pi) *. (t ** (x +. 0.5)) *. exp (-.t) *. !a
  end

(* Heavy-tailed failure inter-arrival samplers (ROADMAP: beyond the
   exponential model). Inversion keeps them reproducible under
   Rng.for_trial exactly like Rng.exponential: one uniform draw per
   sample. Rng.uniform is open (0, 1), so the logs/powers are safe. *)

let weibull_sample rng ~shape ~scale =
  if shape <= 0. then invalid_arg "Dist.weibull_sample: shape must be positive";
  if scale <= 0. then invalid_arg "Dist.weibull_sample: scale must be positive";
  scale *. ((-.log (Rng.uniform rng)) ** (1. /. shape))

let weibull_cdf ~shape ~scale x =
  if shape <= 0. then invalid_arg "Dist.weibull_cdf: shape must be positive";
  if scale <= 0. then invalid_arg "Dist.weibull_cdf: scale must be positive";
  if x <= 0. then 0. else -.Float.expm1 (-.((x /. scale) ** shape))

let weibull_mean ~shape ~scale =
  if shape <= 0. then invalid_arg "Dist.weibull_mean: shape must be positive";
  if scale <= 0. then invalid_arg "Dist.weibull_mean: scale must be positive";
  scale *. gamma (1. +. (1. /. shape))

let pareto_sample rng ~alpha ~xmin =
  if alpha <= 0. then invalid_arg "Dist.pareto_sample: alpha must be positive";
  if xmin <= 0. then invalid_arg "Dist.pareto_sample: xmin must be positive";
  xmin *. (Rng.uniform rng ** (-1. /. alpha))

let pareto_cdf ~alpha ~xmin x =
  if alpha <= 0. then invalid_arg "Dist.pareto_cdf: alpha must be positive";
  if xmin <= 0. then invalid_arg "Dist.pareto_cdf: xmin must be positive";
  if x < xmin then 0. else 1. -. ((xmin /. x) ** alpha)

let pareto_mean ~alpha ~xmin =
  if alpha <= 0. then invalid_arg "Dist.pareto_mean: alpha must be positive";
  if xmin <= 0. then invalid_arg "Dist.pareto_mean: xmin must be positive";
  if alpha <= 1. then infinity else alpha *. xmin /. (alpha -. 1.)

let equal ?(eps = 1e-9) a b =
  Array.length a.pts = Array.length b.pts
  && Array.for_all2
       (fun (va, pa) (vb, pb) -> abs_float (va -. vb) <= eps && abs_float (pa -. pb) <= eps)
       a.pts b.pts

let pp fmt t =
  Format.fprintf fmt "@[<hov 1>{";
  Array.iteri
    (fun i (v, p) ->
      if i > 0 then Format.fprintf fmt ";@ ";
      Format.fprintf fmt "%g:%.4f" v p)
    t.pts;
  Format.fprintf fmt "}@]"
