(** Finite discrete probability distributions over non-negative reals.

    A distribution is a sorted array of (value, probability) pairs with
    probabilities summing to 1. These are the workhorse of the exact
    series-parallel makespan evaluation (Möhring's distribution
    calculus) and of Dodin's approximation: sums of independent task
    durations are convolutions, parallel joins are maxima (product of
    CDFs). Support size is kept in check by [compact]. *)

type t
(** Immutable discrete distribution. *)

val of_list : (float * float) list -> t
(** [of_list pairs] builds a distribution from (value, probability)
    pairs. Duplicate values are merged, probabilities are renormalised
    to sum to 1 (guarding against accumulated float error).

    @raise Invalid_argument if the list is empty, a probability is
    negative, or the total mass is zero. *)

val constant : float -> t
(** Point mass at the given value. *)

val two_state : ?p:float -> float -> float -> t
(** [two_state ~p low high] takes value [low] with probability [1-p]
    and [high] with probability [p] — the first-order task model of the
    paper (Eq. 1). Defaults [p] to [0.]. *)

val support : t -> (float * float) array
(** Underlying (value, probability) pairs, sorted by increasing value. *)

val size : t -> int
(** Support size. *)

val mean : t -> float
val variance : t -> float

val quantile : t -> float -> float
(** [quantile d q] is the smallest support value whose cumulative
    probability reaches [q] (with [0 <= q <= 1]). *)

val cdf : t -> float -> float
(** [cdf d x] is P(X <= x). *)

val shift : t -> float -> t
(** [shift d c] adds the constant [c] to every value. *)

val scale : t -> float -> t
(** [scale d c] multiplies every value by [c >= 0]. *)

val add : t -> t -> t
(** Distribution of the sum of two independent variables
    (convolution). Support size is the product of the operands'. *)

val max2 : t -> t -> t
(** Distribution of the max of two independent variables. *)

val min2 : t -> t -> t
(** Distribution of the min of two independent variables. *)

val compact : ?max_size:int -> t -> t
(** [compact ~max_size d] reduces the support to at most [max_size]
    points by merging adjacent values (mass-weighted mean preserves the
    expectation exactly; spread inside a merged bucket is what is
    approximated). Defaults to 512 points. *)

val sample : t -> Rng.t -> float
(** Draw from the distribution by inversion. *)

(** {2 Heavy-tailed failure samplers}

    Continuous inter-arrival laws beyond the exponential model
    (ROADMAP: heavy-tailed failures). Each draws by inversion — one
    {!Rng.uniform} per sample — so a generator obtained from
    {!Rng.for_trial} reproduces the same trace bitwise, exactly like
    {!Rng.exponential}. All parameters must be positive. *)

val weibull_sample : Rng.t -> shape:float -> scale:float -> float
(** Weibull(k = [shape], λ = [scale]): [scale · (−ln U)^(1/shape)].
    [shape = 1] degenerates to Exp(1/scale); [shape < 1] gives the
    decreasing hazard rate typical of infant-mortality failures. *)

val weibull_cdf : shape:float -> scale:float -> float -> float
(** [1 − exp(−(x/scale)^shape)] for [x > 0], [0.] otherwise. *)

val weibull_mean : shape:float -> scale:float -> float
(** [scale · Γ(1 + 1/shape)] (Lanczos-approximated Γ). *)

val pareto_sample : Rng.t -> alpha:float -> xmin:float -> float
(** Pareto(α = [alpha], scale [xmin]): [xmin · U^(−1/alpha)], always
    at least [xmin]. *)

val pareto_cdf : alpha:float -> xmin:float -> float -> float
(** [1 − (xmin/x)^alpha] for [x ≥ xmin], [0.] below. *)

val pareto_mean : alpha:float -> xmin:float -> float
(** [α·xmin / (α − 1)] for [alpha > 1]; [infinity] at [alpha <= 1]
    (the heavy-tail regime has no finite mean). *)

val equal : ?eps:float -> t -> t -> bool
(** Structural equality up to [eps] on both values and probabilities. *)

val pp : Format.formatter -> t -> unit
