(* xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64. Both
   algorithms are public domain reference implementations transcribed
   to OCaml int64 arithmetic. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* splitmix64 step: returns the next output and the advanced state. *)
let splitmix64 state =
  let state = Int64.add state 0x9E3779B97F4A7C15L in
  let z = state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  (Int64.logxor z (Int64.shift_right_logical z 31), state)

let of_seed64 seed =
  let x0, st = splitmix64 seed in
  let x1, st = splitmix64 st in
  let x2, st = splitmix64 st in
  let x3, _ = splitmix64 st in
  (* All-zero state is invalid for xoshiro; splitmix64 cannot produce
     four consecutive zeros, but guard anyway. *)
  if x0 = 0L && x1 = 0L && x2 = 0L && x3 = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0 = x0; s1 = x1; s2 = x2; s3 = x3 }

let create seed = of_seed64 (Int64.of_int seed)
let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let for_trial ~seed trial =
  if trial < 0 then invalid_arg "Rng.for_trial: negative trial index";
  (* splitmix64 is the bijective mix of a counter: feeding [mix seed +
     trial] through it gives decorrelated streams for consecutive
     trials while staying a pure function of (seed, trial) — the
     foundation of jobs-invariant parallel sampling. *)
  let base, _ = splitmix64 (Int64.of_int seed) in
  of_seed64 (Int64.add base (Int64.of_int trial))

let bits64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

(* Bulk-draw stream: splitmix re-derived over the native 63-bit int so
   the per-draw mix runs entirely on immediate values — no boxed int64
   round trips, which dominate [bits64]'s cost when millions of draws
   are needed per second. The constants are the splitmix64 ones reduced
   mod 2^63 (still odd, so every multiply stays a bijection); [lsr] and
   [*] implement the logical shifts and truncated products of 63-bit
   arithmetic directly. *)
type stream = { mutable cursor : int }

let stream t = { cursor = Int64.to_int (bits64 t) }

let stream_bits53 st =
  let s = st.cursor + 0x1E3779B97F4A7C15 in
  st.cursor <- s;
  let z = (s lxor (s lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  (z lxor (z lsr 31)) land 0x1F_FFFF_FFFF_FFFF

let stream_uniform st = float_of_int (stream_bits53 st) *. 0x1p-53

let split t =
  (* Seed a fresh generator from two parent outputs mixed through
     splitmix64, so child streams from successive splits differ. *)
  let a = bits64 t in
  let b = bits64 t in
  of_seed64 (Int64.logxor a (Int64.mul b 0x2545F4914F6CDD1DL))

(* 53 random bits mapped to [0,1). *)
let unit_float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let float t bound =
  assert (bound > 0.);
  unit_float t *. bound

let int t bound =
  assert (bound > 0);
  (* rejection sampling on 63 bits to avoid modulo bias *)
  let bound64 = Int64.of_int bound in
  let limit = Int64.sub Int64.max_int (Int64.rem Int64.max_int bound64) in
  let rec draw () =
    let raw = Int64.shift_right_logical (bits64 t) 1 in
    if raw >= limit then draw () else Int64.to_int (Int64.rem raw bound64)
  in
  draw ()

let bool t = Int64.logand (bits64 t) 1L = 1L

let uniform t =
  let u = unit_float t in
  if u <= 0. then 1e-300 else u

let exponential t ~rate =
  assert (rate > 0.);
  -.log (uniform t) /. rate

let normal t ~mean ~stddev =
  let u1 = uniform t and u2 = uniform t in
  let r = sqrt (-2. *. log u1) in
  mean +. (stddev *. r *. cos (2. *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (normal t ~mean:mu ~stddev:sigma)

let truncated_normal t ~mean ~stddev ~lo =
  let rec draw n =
    if n = 0 then lo
    else
      let x = normal t ~mean ~stddev in
      if x >= lo then x else draw (n - 1)
  in
  draw 1000

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
