(** Deterministic, splittable pseudo-random number generator.

    The implementation is xoshiro256** seeded through splitmix64. It is
    self-contained (no dependency on [Stdlib.Random]) so that every
    experiment in this repository is exactly reproducible from a single
    integer seed, and so that independent streams can be split off for
    parallel components (one stream per processor, per trial, ...)
    without statistical interference. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. Equal seeds
    yield equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val for_trial : seed:int -> int -> t
(** [for_trial ~seed trial] is the generator for the [trial]-th unit of
    work of an experiment seeded with [seed] — a pure function of
    [(seed, trial)], so any scheduling of trials over any number of
    worker domains draws exactly the same per-trial streams. Derived by
    running splitmix64 over [mix seed + trial] (counter-based, the
    construction splitmix64 was designed for).

    @raise Invalid_argument on a negative trial index. *)

type stream
(** Fast bulk-draw stream for inner sampling loops. A [stream] is a
    counter-based splitmix generator over the native 63-bit int, so a
    draw performs no boxed [int64] arithmetic (and no allocation at
    all) — an order of magnitude cheaper than {!uniform} when a Monte
    Carlo trial needs one draw per DAG node. *)

val stream : t -> stream
(** [stream t] derives a fresh bulk stream from [t], advancing [t] by
    one {!bits64} draw — a pure function of [t]'s state. *)

val stream_bits53 : stream -> int
(** Next draw: 53 uniform bits in [\[0, 2{^53})]. [b < ceil (p *. 0x1p53)]
    is exactly equivalent to [stream_uniform < p] for [p] in [\[0, 1\]]
    (both scalings by a power of two are exact), which lets hot loops
    compare against a precomputed integer threshold. *)

val stream_uniform : stream -> float
(** [stream_bits53] mapped to [\[0, 1)]: [float_of_int b *. 0x1p-53]. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]. The
    derived stream is statistically independent of the parent's
    subsequent output. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [\[0, bound)]. [bound] must be
    positive. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [\[0, bound)]. [bound] must be
    positive. *)

val bool : t -> bool
(** Fair coin flip. *)

val uniform : t -> float
(** Uniform draw in the open interval [(0, 1)]; never returns exactly
    [0.], so it is safe to pass to [log]. *)

val exponential : t -> rate:float -> float
(** [exponential t ~rate] draws from Exp(rate) by inversion. [rate]
    must be positive. *)

val normal : t -> mean:float -> stddev:float -> float
(** Gaussian draw (Box–Muller, fresh pair each call). *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normal draw: [exp (normal ~mean:mu ~stddev:sigma)]. *)

val truncated_normal : t -> mean:float -> stddev:float -> lo:float -> float
(** Gaussian draw resampled until the value is at least [lo]. Used for
    task-runtime and file-size distributions that must stay positive. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle driven by [t]. *)
