module Strategy = Ckpt_core.Strategy
module Placement = Ckpt_core.Placement
module Pipeline = Ckpt_core.Pipeline
module Schedule = Ckpt_core.Schedule
module Superchain = Ckpt_core.Superchain
module Platform = Ckpt_platform.Platform
module Prob_dag = Ckpt_eval.Prob_dag

type model = First_order | Exact

let segment_time model ~lambda s =
  if s < 0. then invalid_arg "Analytic.segment_time: negative duration";
  if lambda < 0. then invalid_arg "Analytic.segment_time: negative rate";
  if lambda <= 0. || s = 0. then s
  else
    match model with
    | First_order -> Placement.first_order ~lambda s
    | Exact -> Float.expm1 (lambda *. s) /. lambda

let restart_time model ~rate wpar =
  if wpar < 0. then invalid_arg "Analytic.restart_time: negative Wpar";
  if rate < 0. then invalid_arg "Analytic.restart_time: negative rate";
  match model with
  | First_order -> Ckpt_eval.Ckptnone.expected_makespan_rate ~wpar ~rate
  | Exact -> if rate <= 0. || wpar = 0. then wpar else Float.expm1 (rate *. wpar) /. rate

(* aggregate failure process over the processors the schedule actually
   uses — the same reduction Strategy.expected_makespan applies to
   CKPTNONE plans, so the First_order value is bitwise identical *)
let used_rate (plan : Strategy.plan) =
  let used = Hashtbl.create 16 in
  Array.iter
    (fun (sc : Superchain.t) -> Hashtbl.replace used sc.Superchain.processor ())
    plan.Strategy.schedule.Schedule.superchains;
  Hashtbl.fold (fun p () acc -> acc +. Platform.rate_of plan.Strategy.platform p) used 0.

(* Expected duration of every 2-state node. Under First_order this is
   the mean of the node's own two-point distribution — the value the
   MC estimator's sample average converges to. Under Exact the segment
   is re-priced from its physical cost and its processor's rate; the
   node count equals the segment count by construction
   (Strategy.build_prob_dag adds exactly one node per segment). *)
let node_times model (plan : Strategy.plan) pd =
  let n = Prob_dag.n_nodes pd in
  match model with
  | First_order ->
      Array.init n (fun i ->
          let nd = Prob_dag.node pd i in
          ((1. -. nd.Prob_dag.pfail) *. nd.Prob_dag.base)
          +. (nd.Prob_dag.pfail *. nd.Prob_dag.degraded))
  | Exact ->
      if Array.length plan.Strategy.segments <> n then
        invalid_arg "Analytic.expected_makespan: plan segments and DAG nodes disagree";
      Array.init n (fun i ->
          let seg = plan.Strategy.segments.(i) in
          let sc = plan.Strategy.schedule.Schedule.superchains.(seg.Placement.chain) in
          let lambda = Platform.rate_of plan.Strategy.platform sc.Superchain.processor in
          let s = seg.Placement.read +. seg.Placement.work +. seg.Placement.write in
          segment_time Exact ~lambda s)

(* Longest base path through every node, split as top.(i) (ending just
   before i) and bottom.(i) (starting just after i) — one forward and
   one backward sweep in topological order. *)
let through_paths pd base =
  let n = Prob_dag.n_nodes pd in
  let order = Prob_dag.topological_order pd in
  let top = Array.make n 0. in
  Array.iter
    (fun u ->
      let d = top.(u) +. base u in
      List.iter (fun v -> if d > top.(v) then top.(v) <- d) (Prob_dag.succs pd u))
    order;
  let bottom = Array.make n 0. in
  for k = n - 1 downto 0 do
    let u = order.(k) in
    List.iter
      (fun v ->
        let d = bottom.(v) +. base v in
        if d > bottom.(u) then bottom.(u) <- d)
      (Prob_dag.succs pd u)
  done;
  (top, bottom)

(* Closed-form first-order expansion of the expected longest path.

   With M(S) the makespan when exactly the nodes of S run degraded,
   independence gives E[M] = Σ_S Pr[S]·M(S) = M(∅) + Σ_i p_i·(M({i}) −
   M(∅)) + O((λs)²) — and each single-failure makespan M({i}) is exact
   in O(1) from the through-path split: the best path either avoids i
   (≤ M(∅)) or passes through it (top_i + degraded_i + bottom_i, which
   dominates M(∅) whenever the critical path contains i). So the
   truncation error is confined to simultaneous-failure configurations,
   the same O((λs)²) order the 2-state model itself discards; on a
   chain every path passes through every node and the expansion
   collapses to the exact Σ_i E[T_i]. This is precisely the functional
   {!Ckpt_eval.Pathapprox} estimates (pinned bitwise by the test
   suite); it is re-derived here as the trials → ∞ limit of the MC
   estimator rather than as one estimator among several. *)
let first_order_expansion pd =
  let n = Prob_dag.n_nodes pd in
  if n = 0 then 0.
  else begin
    let top, bottom = through_paths pd (fun i -> (Prob_dag.node pd i).Prob_dag.base) in
    let m0 = ref 0. in
    for i = 0 to n - 1 do
      let through = top.(i) +. (Prob_dag.node pd i).Prob_dag.base +. bottom.(i) in
      if through > !m0 then m0 := through
    done;
    let correction = ref 0. in
    for i = 0 to n - 1 do
      let nd = Prob_dag.node pd i in
      if nd.Prob_dag.pfail > 0. then begin
        let mi = Float.max !m0 (top.(i) +. nd.Prob_dag.degraded +. bottom.(i)) in
        correction := !correction +. (nd.Prob_dag.pfail *. (mi -. !m0))
      end
    done;
    !m0 +. !correction
  end

let expected_makespan ?(model = First_order) (plan : Strategy.plan) =
  match plan.Strategy.prob_dag with
  | None -> restart_time model ~rate:(used_rate plan) plan.Strategy.wpar
  | Some pd -> (
      match model with
      | First_order -> first_order_expansion pd
      | Exact ->
          (* exact per-segment expectations composed over the DAG's
             longest path: exact on chains (the Sodre regimes), a
             lower first-order estimate across parallel joins *)
          let times = node_times Exact plan pd in
          Prob_dag.longest_path_with pd (fun i -> times.(i)))

let schedule_makespan ?(model = First_order) (plan : Strategy.plan) =
  match plan.Strategy.prob_dag with
  | None -> restart_time model ~rate:(used_rate plan) plan.Strategy.wpar
  | Some pd ->
      (* the Engine recurrence with each attempt loop collapsed to its
         expectation: ready = max over DAG predecessors, start = max of
         ready and the processor's last completion, completion = start
         + E[T]. Segments are topologically index-ordered (Engine
         enforces this on the same arrays). *)
      let times = node_times model plan pd in
      let n = Prob_dag.n_nodes pd in
      let completion = Array.make n 0. in
      let proc_free = Hashtbl.create 16 in
      let finish = ref 0. in
      for i = 0 to n - 1 do
        let seg = plan.Strategy.segments.(i) in
        let proc =
          plan.Strategy.schedule.Schedule.superchains.(seg.Placement.chain)
            .Superchain.processor
        in
        let ready =
          List.fold_left
            (fun acc p ->
              if p >= i then
                invalid_arg "Analytic.schedule_makespan: segments not topologically ordered";
              Float.max acc completion.(p))
            0. (Prob_dag.preds pd i)
        in
        let free = Option.value ~default:0. (Hashtbl.find_opt proc_free proc) in
        let done_at = Float.max ready free +. times.(i) in
        completion.(i) <- done_at;
        Hashtbl.replace proc_free proc done_at;
        if done_at > !finish then finish := done_at
      done;
      !finish

let compare_strategies ?model setup =
  let some = Pipeline.plan setup Strategy.Ckpt_some in
  let all = Pipeline.plan setup Strategy.Ckpt_all in
  let none = Pipeline.plan setup Strategy.Ckpt_none in
  let em_some = expected_makespan ?model some in
  let em_all = expected_makespan ?model all in
  let em_none = expected_makespan ?model none in
  {
    Pipeline.em_some;
    em_all;
    em_none;
    rel_all = em_all /. em_some;
    rel_none = em_none /. em_some;
    ckpts_some = some.Strategy.checkpoint_count;
    ckpts_all = all.Strategy.checkpoint_count;
  }

type eval = Analytic | Mc | Auto

let eval_name = function Analytic -> "analytic" | Mc -> "mc" | Auto -> "auto"

let eval_of_name s =
  match String.lowercase_ascii s with
  | "analytic" -> Some Analytic
  | "mc" | "montecarlo" -> Some Mc
  | "auto" -> Some Auto
  | _ -> None

let resolve ?(exponential = true) ?(storage_off = true) = function
  | Analytic -> `Analytic
  | Mc -> `Mc
  | Auto -> if exponential && storage_off then `Analytic else `Mc
