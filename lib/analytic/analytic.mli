(** Closed-form expected-makespan evaluation (the analytic fast path).

    Every sweep cell the CLI computes today prices a plan by sampling
    its 2-state probabilistic DAG ~10k times, yet under the paper's
    exponential fail-stop model the per-segment expectation is known in
    closed form — the same Toueg/Daly-style cost the Algorithm-2 DP
    already prices ({!Ckpt_core.Placement.first_order}). This module
    composes those per-segment expectations over the plan exactly the
    way the estimators and the simulation engine do, so one O(nodes)
    longest-path pass replaces the whole Monte-Carlo loop:

    - {!expected_makespan} is the trial-count → ∞ limit of
      {!Ckpt_eval.Montecarlo.estimate} on the plan's probabilistic
      DAG, closed under the first-order failure expansion: E[M] =
      M(no failure) + Σᵢ pᵢ·(M(only i fails) − M(no failure)), every
      single-failure makespan exact, the truncation confined to the
      simultaneous-failure O((λs)²) configurations the 2-state model
      itself discards. Exact on chains; inside the MC 95% confidence
      interval on the tracked sweep cells (asserted by the bench) and
      within three half-widths on randomised M-SPGs (QCheck — the
      estimator's own 95% interval excludes the true mean 5% of the
      time by construction, so strict containment is not a property
      even an exact evaluator could satisfy);
    - {!schedule_makespan} replays the {!Ckpt_sim.Engine} recurrence
      (predecessor joins plus same-processor serialisation) with each
      segment at its expected duration — the limit of
      {!Ckpt_sim.Runner.sample_makespans} under the same caveat.

    Two per-segment models are available: {!First_order} is the
    paper's 2-state cost (bitwise the mean the MC estimator converges
    to), {!Exact} is the exact exponential expectation
    [E(T) = (e^{λs} − 1)/λ] that stays valid when [λs] is not small —
    the regime where Sodre's restart-vs-checkpoint asymptotics
    (arXiv 1802.07455) bite. *)

module Strategy := Ckpt_core.Strategy
module Pipeline := Ckpt_core.Pipeline

(** Per-segment expectation model. *)
type model =
  | First_order
      (** [(1 − p)·s + p·(3/2)s] with [p = min(1, λs)] — Eq. 2 of the
          paper, the distribution the 2-state DAG samples. *)
  | Exact
      (** [(e^{λs} − 1)/λ]: expected completion of an [s]-second
          segment under Poisson failures of rate λ with instant
          restart from the segment's start. Agrees with [First_order]
          to O((λs)²); diverges exponentially where restart-heavy
          policies pay. *)

val segment_time : model -> lambda:float -> float -> float
(** [segment_time model ~lambda s] is the expected wall-clock time to
    complete [s] seconds of work on a processor of failure rate
    [lambda]. [lambda <= 0] yields [s] under both models. *)

val restart_time : model -> rate:float -> float -> float
(** [restart_time model ~rate wpar] is the expected makespan of a
    CKPTNONE execution: [wpar] failure-free seconds re-executed from
    scratch on any failure of the aggregate process of rate [rate].
    [First_order] is bitwise {!Ckpt_eval.Ckptnone.expected_makespan_rate};
    [Exact] is the limit of {!Ckpt_sim.Engine.restart_rate_makespan}. *)

val expected_makespan : ?model:model -> Strategy.plan -> float
(** Closed-form expected makespan of a plan, O(nodes + edges), no
    sampling. [First_order] (the default) is the exact first-order
    failure expansion of the 2-state DAG's expected longest path —
    the value {!Ckpt_eval.Montecarlo.estimate} converges to, without
    the trials. [Exact] composes the exact exponential per-segment
    expectations over the longest path (exact on chains — the Sodre
    asymptotic regimes — where [First_order] degrades for large λs).
    CKPTNONE plans use {!restart_time} over the processors the
    schedule actually uses, exactly as
    {!Ckpt_core.Strategy.expected_makespan} aggregates them. *)

val schedule_makespan : ?model:model -> Strategy.plan -> float
(** Expected makespan composed by the simulation engine's recurrence:
    segments in index order, each starting at the max of its
    predecessors' completions and its processor's availability. Under
    {!Exact} this equals {!expected_makespan} whenever no two
    superchains share a processor (the serialisation is then already a
    DAG edge); under {!First_order} it composes the per-segment
    2-state expectations through the recurrence without the failure
    expansion. Either way it is the closed-form counterpart of what
    {!Ckpt_sim.Runner} simulates. *)

val compare_strategies : ?model:model -> Pipeline.setup -> Pipeline.comparison
(** Drop-in analytic replacement for
    {!Ckpt_core.Pipeline.compare_strategies}: same plans, same
    comparison record, {!expected_makespan} instead of an estimator —
    the O(1)-per-cell sweep path. *)

(** {2 Evaluator dispatch}

    How a sweep cell should be priced. [Auto] resolves to the analytic
    path exactly when it is a faithful stand-in for Monte-Carlo: the
    failure model is exponential and no storage/contention knob is
    live (those effects exist only in the simulators). *)

type eval = Analytic | Mc | Auto

val eval_name : eval -> string
val eval_of_name : string -> eval option

val resolve : ?exponential:bool -> ?storage_off:bool -> eval -> [ `Analytic | `Mc ]
(** [resolve eval] applies the [Auto] rule. [exponential] (default
    [true]) — the platform failure model is exponential; [storage_off]
    (default [true]) — storage-fault and contention knobs are at their
    reliable defaults. [Auto] answers [`Analytic] only when both
    hold. *)
