(* Immutable CSR ("compressed sparse row") view of a Dag.t, the arena
   the planning hot loops run on. The mutable adjacency lists of the
   builder are flattened into offset/target int arrays once, after
   which every neighbourhood scan is a contiguous int-array walk with
   no list cells, no closures and no Hashtbl probes — the same
   treatment Prob_dag received for the Monte-Carlo sampler.

   Edge order is preserved exactly: [succ] slices replay [out_edges]
   (sorted by destination, parallel file edges kept), [pred] slices
   replay [in_edges] (sorted by source). Algorithms that enumerate
   neighbours therefore see the same sequences as the list-based
   accessors, which keeps the compiled planners bit-identical to the
   reference ones. *)

type t = {
  n : int;
  n_files : int;
  succ_off : int array;  (* length n+1; out-edge range of task i *)
  succ_tgt : int array;
  succ_file : int array;
  pred_off : int array;  (* length n+1; in-edge range of task i *)
  pred_src : int array;
  pred_file : int array;
  weight : float array;
  input_bytes : float array;  (* summed initial-input sizes per task *)
  file_size : float array;
  file_producer : int array;
  topo : int array;  (* deterministic (min-id Kahn) topological order *)
}

let of_dag dag =
  let n = Dag.n_tasks dag in
  let n_edges = Dag.n_edges dag in
  let files = Dag.files dag in
  let n_files = Array.length files in
  let succ_off = Array.make (n + 1) 0
  and pred_off = Array.make (n + 1) 0
  and succ_tgt = Array.make n_edges 0
  and succ_file = Array.make n_edges 0
  and pred_src = Array.make n_edges 0
  and pred_file = Array.make n_edges 0
  and weight = Array.make (max 1 n) 0.
  and input_bytes = Array.make (max 1 n) 0. in
  let si = ref 0 and pi = ref 0 in
  for u = 0 to n - 1 do
    succ_off.(u) <- !si;
    pred_off.(u) <- !pi;
    weight.(u) <- Dag.weight dag u;
    input_bytes.(u) <-
      List.fold_left (fun acc s -> acc +. s) 0. (Dag.inputs dag u);
    List.iter
      (fun (v, (f : Dag.file)) ->
        succ_tgt.(!si) <- v;
        succ_file.(!si) <- f.Dag.file_id;
        incr si)
      (Dag.succs dag u);
    List.iter
      (fun (v, (f : Dag.file)) ->
        pred_src.(!pi) <- v;
        pred_file.(!pi) <- f.Dag.file_id;
        incr pi)
      (Dag.preds dag u)
  done;
  succ_off.(n) <- !si;
  pred_off.(n) <- !pi;
  {
    n;
    n_files;
    succ_off;
    succ_tgt;
    succ_file;
    pred_off;
    pred_src;
    pred_file;
    weight;
    input_bytes;
    file_size = Array.map (fun (f : Dag.file) -> f.Dag.size) files;
    file_producer = Array.map (fun (f : Dag.file) -> f.Dag.producer) files;
    topo = Dag.topological_sort dag;
  }

let n_tasks t = t.n
let n_files t = t.n_files
let weight t u = t.weight.(u)
let input_bytes t u = t.input_bytes.(u)
let out_degree t u = t.succ_off.(u + 1) - t.succ_off.(u)
let in_degree t u = t.pred_off.(u + 1) - t.pred_off.(u)

let iter_succs t u f =
  for k = t.succ_off.(u) to t.succ_off.(u + 1) - 1 do
    f t.succ_tgt.(k) t.succ_file.(k)
  done

let iter_preds t u f =
  for k = t.pred_off.(u) to t.pred_off.(u + 1) - 1 do
    f t.pred_src.(k) t.pred_file.(k)
  done
