(** Immutable CSR form of a {!Dag.t} — flat int successor/predecessor
    arrays, unboxed float cost fields and a cached deterministic
    topological order — shared by the M-SPG recogniser, the planning
    core and the recovery replanner as their zero-allocation traversal
    substrate.

    Edge enumeration order matches the list-based {!Dag.succs} /
    {!Dag.preds} exactly (destination-sorted out-edges, source-sorted
    in-edges, parallel file edges preserved), so algorithms ported to
    the compiled view produce bit-identical results. The view is a
    snapshot: mutating the source DAG afterwards does not update it. *)

type t = private {
  n : int;
  n_files : int;
  succ_off : int array;  (** length [n+1]: out-edges of [u] live at
                             [succ_off.(u) .. succ_off.(u+1) - 1] *)
  succ_tgt : int array;
  succ_file : int array;
  pred_off : int array;
  pred_src : int array;
  pred_file : int array;
  weight : float array;
  input_bytes : float array;  (** summed initial-input sizes per task *)
  file_size : float array;
  file_producer : int array;
  topo : int array;
}

val of_dag : Dag.t -> t
(** One-pass compilation, O(tasks + edges + files). *)

val n_tasks : t -> int
val n_files : t -> int
val weight : t -> int -> float
val input_bytes : t -> int -> float
val out_degree : t -> int -> int
val in_degree : t -> int -> int

val iter_succs : t -> int -> (int -> int -> unit) -> unit
(** [iter_succs t u f] calls [f dst file_id] for every out-edge of [u]
    in destination-sorted order. *)

val iter_preds : t -> int -> (int -> int -> unit) -> unit
(** [iter_preds t u f] calls [f src file_id] in source-sorted order. *)
