(** Weighted workflow DAGs with explicit data files on edges.

    Tasks are nodes; every dependency edge [Ti -> Tj] carries the
    {e file} produced by [Ti] and read by [Tj]. Files are first-class
    because a task may produce one file consumed by several successors
    (common in Pegasus workflows) — a checkpoint must then save that
    file {e once}, so costs cannot be derived from per-edge sizes
    alone (paper, Section VI-A).

    The structure is a mutable builder: create, add tasks / files /
    edges, then query. All queries assume the graph is acyclic;
    {!check_acyclic} verifies it. *)

type file = { file_id : int; producer : Task.id; size : float }
(** A datum written by [producer]; [size] is in abstract data units
    (bytes). Transfer/checkpoint time = size / storage bandwidth. *)

type t

val create : ?name:string -> unit -> t
(** Fresh empty DAG. [name] is used in error messages and dot output. *)

val name : t -> string

val add_task : t -> name:string -> weight:float -> Task.id
(** Appends a task; returns its index (tasks are numbered 0,1,2,...). *)

val add_file : t -> producer:Task.id -> size:float -> int
(** Declares a file produced by a task; returns the file id.

    @raise Invalid_argument if [producer] is unknown or [size < 0.]. *)

val add_input : t -> Task.id -> float -> unit
(** [add_input d task size] declares that [task] reads an initial file
    of the given size from stable storage. Initial inputs are never
    checkpointed (they already reside on stable storage) but are
    (re-)read on every execution attempt of their consumer, and they
    count towards the workflow's total data volume (CCR). *)

val inputs : t -> Task.id -> float list
(** Sizes of the initial input files of a task. *)

val add_edge : t -> ?file:int -> Task.id -> Task.id -> float -> unit
(** [add_edge d src dst size] adds a dependency edge carrying a fresh
    file of the given [size], unless [?file] names an existing file
    (whose producer must be [src]; [size] is then ignored). Parallel
    edges between the same tasks are allowed when they carry distinct
    named files (a job may read several files from one parent);
    repeating the same (src, dst, file) triple — or adding a second
    anonymous edge between the same tasks — is rejected.

    @raise Invalid_argument on unknown endpoints, [src = dst],
    duplicate edge, or producer mismatch. *)

(** {1 Structure queries} *)

val n_tasks : t -> int
val n_edges : t -> int
val task : t -> Task.id -> Task.t
val tasks : t -> Task.t array
val weight : t -> Task.id -> float
val total_weight : t -> float

val file : t -> int -> file
val files : t -> file array
val n_files : t -> int
val total_data : t -> float
(** Sum of all file sizes, each file counted once. *)

val scale_files : t -> float -> unit
(** Multiplies every file size by the given non-negative factor (the
    CCR-scaling knob of Section VI-A). *)

val set_weight : t -> Task.id -> float -> unit

val succs : t -> Task.id -> (Task.id * file) list
(** Outgoing edges, ordered by target id. *)

val preds : t -> Task.id -> (Task.id * file) list
(** Incoming edges [(source, file)], ordered by source id. *)

val succ_ids : t -> Task.id -> Task.id list
val pred_ids : t -> Task.id -> Task.id list
val has_edge : t -> Task.id -> Task.id -> bool
val sources : t -> Task.id list
(** Tasks without predecessors, in id order. *)

val sinks : t -> Task.id list
(** Tasks without successors, in id order. *)

(** {1 Validation} *)

type violation =
  | Cycle of Task.id list
      (** Tasks trapped on directed cycles (every listed task lies on
          or behind a cycle). *)
  | Bad_weight of Task.id * float  (** NaN or negative task weight. *)
  | Bad_file_size of int * float  (** NaN or negative file size. *)
  | Bad_input_size of Task.id * float
      (** NaN or negative initial-input size. *)
  | Dangling_producer of int
      (** A file whose producer is not a task of the DAG. *)
  | Duplicate_task_id of Task.id
      (** A task whose recorded id disagrees with its index. *)
  | Duplicate_edge of Task.id * Task.id * int
      (** The same (src, dst, file) triple recorded twice. *)

val violation_to_string : violation -> string
(** One-line rendering, e.g. ["task 3 (mDiff): weight nan"]. *)

val validate : t -> (unit, violation list) result
(** Structural soundness check run at input boundaries before any
    scheduling: detects cycles, NaN/negative task weights, NaN/negative
    file and initial-input sizes, dangling file producers, duplicate
    task ids and duplicate edges. [Ok ()] on a well-formed DAG;
    otherwise every violation found, in deterministic order. Unlike the
    builder's [Invalid_argument] guards this never raises, so callers
    can degrade gracefully on hostile input (the builder cannot catch a
    NaN smuggled through {!set_weight} or a cycle assembled edge by
    edge). *)

(** {1 Algorithms} *)

val check_acyclic : t -> unit
(** @raise Invalid_argument if the graph has a cycle. *)

val topological_sort : ?rng:Ckpt_prob.Rng.t -> t -> Task.id array
(** Kahn's algorithm. Without [rng], ties break by smallest id
    (deterministic); with [rng], the ready task is drawn uniformly
    (the "random topological sort" of ONONEPROCESSOR).

    @raise Invalid_argument if the graph has a cycle. *)

val longest_path : ?weight:(Task.id -> float) -> t -> float
(** Length of the longest path, node weights given by [weight]
    (default: task weights). This is the failure-free makespan with
    unbounded processors when communications are free. *)

val critical_path : t -> Task.id list
(** One longest path (task ids in execution order). *)

val levels : t -> int array
(** [levels d].(i) = length (in hops) of the longest edge path from a
    source to task [i]; sources are at level 0. *)

val transitive_closure : t -> bool array array
(** Reachability matrix: [m.(i).(j)] iff there is a non-empty path
    from [i] to [j]. *)

val transitive_reduction_edges : t -> (Task.id * Task.id) list
(** Edges of the transitive reduction (the paper's gateway to General
    SP graphs: a DAG is a GSPG iff its transitive reduction is an
    M-SPG). *)

val copy : t -> t
(** Deep copy (tasks, edges, files, inputs). Mutating the copy leaves
    the original untouched — used to dummy-complete a workflow for
    CKPTSOME while the baselines keep the raw graph. *)

val induced : t -> Task.id list -> t * Task.id array
(** [induced d ids] is the sub-DAG induced by [ids] plus the array
    mapping new ids to original ids. Edges internal to [ids] are kept
    with their files (file sizes copied; sharing within the subgraph
    preserved). *)

val to_dot : t -> string
(** Graphviz rendering for debugging and the examples. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: name, tasks, edges, total weight, total data. *)
