module Rng = Ckpt_prob.Rng

type file = { file_id : int; producer : Task.id; size : float }

type node = {
  mutable info : Task.t;
  mutable out_edges : (Task.id * int) list; (* (dst, file_id), kept sorted by dst *)
  mutable in_edges : (Task.id * int) list; (* (src, file_id), kept sorted by src *)
  mutable input_files : float list; (* initial files read from stable storage *)
}

type t = {
  dag_name : string;
  mutable nodes : node array;
  mutable n : int;
  mutable file_tbl : file array;
  mutable n_files : int;
  mutable n_edges : int;
}

let create ?(name = "dag") () =
  { dag_name = name; nodes = [||]; n = 0; file_tbl = [||]; n_files = 0; n_edges = 0 }

let name t = t.dag_name
let n_tasks t = t.n
let n_edges t = t.n_edges

let grow_nodes t =
  let cap = Array.length t.nodes in
  if t.n = cap then begin
    let fresh =
      Array.make
        (max 8 (2 * cap))
        { info = Task.make ~id:0 ~name:"" ~weight:0.;
          out_edges = [];
          in_edges = [];
          input_files = [] }
    in
    Array.blit t.nodes 0 fresh 0 t.n;
    t.nodes <- fresh
  end

let add_task t ~name ~weight =
  grow_nodes t;
  let id = t.n in
  t.nodes.(id) <-
    { info = Task.make ~id ~name ~weight; out_edges = []; in_edges = []; input_files = [] };
  t.n <- t.n + 1;
  id

let check_task t id fn =
  if id < 0 || id >= t.n then invalid_arg (Printf.sprintf "Dag.%s: unknown task %d" fn id)

let add_file t ~producer ~size =
  check_task t producer "add_file";
  if size < 0. then invalid_arg "Dag.add_file: negative size";
  let cap = Array.length t.file_tbl in
  if t.n_files = cap then begin
    let fresh = Array.make (max 8 (2 * cap)) { file_id = 0; producer = 0; size = 0. } in
    Array.blit t.file_tbl 0 fresh 0 t.n_files;
    t.file_tbl <- fresh
  end;
  let id = t.n_files in
  t.file_tbl.(id) <- { file_id = id; producer; size };
  t.n_files <- t.n_files + 1;
  id

let add_input t id size =
  check_task t id "add_input";
  if size < 0. then invalid_arg "Dag.add_input: negative size";
  t.nodes.(id).input_files <- size :: t.nodes.(id).input_files

let inputs t id =
  check_task t id "inputs";
  t.nodes.(id).input_files

let file t id =
  if id < 0 || id >= t.n_files then invalid_arg "Dag.file: unknown file";
  t.file_tbl.(id)

let files t = Array.sub t.file_tbl 0 t.n_files
let n_files t = t.n_files

let has_edge t src dst =
  check_task t src "has_edge";
  check_task t dst "has_edge";
  List.exists (fun (d, _) -> d = dst) t.nodes.(src).out_edges

let insert_sorted key v edges =
  let rec go = function
    | [] -> [ v ]
    | (k, _) as hd :: tl -> if key < k then v :: hd :: tl else hd :: go tl
  in
  go edges

let add_edge t ?file:fid src dst size =
  check_task t src "add_edge";
  check_task t dst "add_edge";
  if src = dst then invalid_arg "Dag.add_edge: self-loop";
  let fid =
    match fid with
    | None ->
        (* a fresh file cannot duplicate an existing edge, but reject a
           second anonymous edge between the same tasks: callers that
           move several data items between two tasks must name the
           files (or merge the sizes) *)
        if has_edge t src dst then
          invalid_arg (Printf.sprintf "Dag.add_edge: duplicate edge %d->%d" src dst);
        add_file t ~producer:src ~size
    | Some f ->
        if f < 0 || f >= t.n_files then invalid_arg "Dag.add_edge: unknown file";
        if t.file_tbl.(f).producer <> src then
          invalid_arg "Dag.add_edge: file producer mismatch";
        (* parallel edges carrying distinct files are allowed; the
           same file twice to the same consumer is a duplicate *)
        if List.exists (fun (d, fd) -> d = dst && fd = f) t.nodes.(src).out_edges then
          invalid_arg (Printf.sprintf "Dag.add_edge: duplicate edge %d->%d" src dst);
        f
  in
  t.nodes.(src).out_edges <- insert_sorted dst (dst, fid) t.nodes.(src).out_edges;
  t.nodes.(dst).in_edges <- insert_sorted src (src, fid) t.nodes.(dst).in_edges;
  t.n_edges <- t.n_edges + 1

let task t id =
  check_task t id "task";
  t.nodes.(id).info

let tasks t = Array.init t.n (fun i -> t.nodes.(i).info)
let weight t id = (task t id).Task.weight

let set_weight t id w =
  check_task t id "set_weight";
  let info = t.nodes.(id).info in
  t.nodes.(id).info <- Task.make ~id:info.Task.id ~name:info.Task.name ~weight:w

let total_weight t =
  let acc = ref 0. in
  for i = 0 to t.n - 1 do
    acc := !acc +. t.nodes.(i).info.Task.weight
  done;
  !acc

let total_data t =
  let acc = ref 0. in
  for i = 0 to t.n_files - 1 do
    acc := !acc +. t.file_tbl.(i).size
  done;
  for i = 0 to t.n - 1 do
    List.iter (fun size -> acc := !acc +. size) t.nodes.(i).input_files
  done;
  !acc

let scale_files t factor =
  if factor < 0. then invalid_arg "Dag.scale_files: negative factor";
  for i = 0 to t.n_files - 1 do
    let f = t.file_tbl.(i) in
    t.file_tbl.(i) <- { f with size = f.size *. factor }
  done;
  for i = 0 to t.n - 1 do
    t.nodes.(i).input_files <- List.map (fun s -> s *. factor) t.nodes.(i).input_files
  done

let succs t id =
  check_task t id "succs";
  List.map (fun (dst, fid) -> (dst, t.file_tbl.(fid))) t.nodes.(id).out_edges

let preds t id =
  check_task t id "preds";
  List.map (fun (src, fid) -> (src, t.file_tbl.(fid))) t.nodes.(id).in_edges

let succ_ids t id =
  check_task t id "succ_ids";
  List.map fst t.nodes.(id).out_edges

let pred_ids t id =
  check_task t id "pred_ids";
  List.map fst t.nodes.(id).in_edges

let sources t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if t.nodes.(i).in_edges = [] then acc := i :: !acc
  done;
  !acc

let sinks t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if t.nodes.(i).out_edges = [] then acc := i :: !acc
  done;
  !acc

(* Kahn's algorithm. The ready set is a bucket from which we either
   always take the minimum id (deterministic) or a uniformly random
   element (ONONEPROCESSOR's random topological sort). *)
let topological_sort ?rng t =
  let indeg = Array.init t.n (fun i -> List.length t.nodes.(i).in_edges) in
  let ready = ref [] in
  (* [ready] is kept sorted ascending in deterministic mode (push keeps
     order because we insert in place); in random mode order is
     irrelevant since we draw uniformly. *)
  let push v =
    match rng with
    | None ->
        let rec ins = function
          | [] -> [ v ]
          | hd :: tl -> if v < hd then v :: hd :: tl else hd :: ins tl
        in
        ready := ins !ready
    | Some _ -> ready := v :: !ready
  in
  let pop () =
    match !ready with
    | [] -> None
    | hd :: tl -> (
        match rng with
        | None ->
            ready := tl;
            Some hd
        | Some rng ->
            let l = !ready in
            let k = Rng.int rng (List.length l) in
            let chosen = List.nth l k in
            let removed = ref false in
            ready :=
              List.filter
                (fun x ->
                  if (not !removed) && x = chosen then begin
                    removed := true;
                    false
                  end
                  else true)
                l;
            Some chosen)
  in
  for i = t.n - 1 downto 0 do
    if indeg.(i) = 0 then push i
  done;
  let order = Array.make t.n (-1) in
  let rec fill k =
    match pop () with
    | None -> k
    | Some u ->
        order.(k) <- u;
        List.iter
          (fun (v, _) ->
            indeg.(v) <- indeg.(v) - 1;
            if indeg.(v) = 0 then push v)
          t.nodes.(u).out_edges;
        fill (k + 1)
  in
  let filled = fill 0 in
  if filled <> t.n then
    invalid_arg (Printf.sprintf "Dag.topological_sort: %s has a cycle" t.dag_name);
  order

let check_acyclic t = ignore (topological_sort t)

type violation =
  | Cycle of Task.id list
  | Bad_weight of Task.id * float
  | Bad_file_size of int * float
  | Bad_input_size of Task.id * float
  | Dangling_producer of int
  | Duplicate_task_id of Task.id
  | Duplicate_edge of Task.id * Task.id * int

let violation_to_string = function
  | Cycle ids ->
      Printf.sprintf "cycle through task%s %s"
        (if List.length ids = 1 then "" else "s")
        (String.concat ", " (List.map string_of_int ids))
  | Bad_weight (id, w) -> Printf.sprintf "task %d: weight %g" id w
  | Bad_file_size (fid, s) -> Printf.sprintf "file %d: size %g" fid s
  | Bad_input_size (id, s) -> Printf.sprintf "task %d: initial input size %g" id s
  | Dangling_producer fid -> Printf.sprintf "file %d: producer is not a task" fid
  | Duplicate_task_id id -> Printf.sprintf "task at index %d carries a foreign id" id
  | Duplicate_edge (src, dst, fid) ->
      Printf.sprintf "edge %d->%d (file %d) recorded twice" src dst fid

let bad_number x = Float.is_nan x || x < 0.

let validate t =
  let violations = ref [] in
  let note v = violations := v :: !violations in
  for i = 0 to t.n - 1 do
    let nd = t.nodes.(i) in
    if nd.info.Task.id <> i then note (Duplicate_task_id i);
    if bad_number nd.info.Task.weight then note (Bad_weight (i, nd.info.Task.weight));
    List.iter (fun s -> if bad_number s then note (Bad_input_size (i, s))) nd.input_files;
    (* out_edges are kept sorted by dst, so duplicates are adjacent *)
    let rec dups = function
      | (d1, f1) :: ((d2, f2) :: _ as rest) ->
          if d1 = d2 && f1 = f2 then note (Duplicate_edge (i, d1, f1));
          dups rest
      | _ -> ()
    in
    dups nd.out_edges
  done;
  for fid = 0 to t.n_files - 1 do
    let f = t.file_tbl.(fid) in
    if f.producer < 0 || f.producer >= t.n then note (Dangling_producer fid)
    else if bad_number f.size then note (Bad_file_size (fid, f.size))
  done;
  (* Kahn residue: tasks never emitted sit on or behind a cycle. Run it
     by hand — [topological_sort] raises instead of reporting. *)
  let indeg = Array.init t.n (fun i -> List.length t.nodes.(i).in_edges) in
  let queue = Queue.create () in
  for i = 0 to t.n - 1 do
    if indeg.(i) = 0 then Queue.add i queue
  done;
  let emitted = ref 0 in
  let done_ = Array.make t.n false in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    done_.(u) <- true;
    incr emitted;
    List.iter
      (fun (v, _) ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
      t.nodes.(u).out_edges
  done;
  if !emitted <> t.n then begin
    let trapped = ref [] in
    for i = t.n - 1 downto 0 do
      if not done_.(i) then trapped := i :: !trapped
    done;
    note (Cycle !trapped)
  end;
  match List.rev !violations with [] -> Ok () | vs -> Error vs

let longest_path ?weight:w t =
  let w = match w with Some f -> f | None -> fun i -> weight t i in
  let order = topological_sort t in
  let dist = Array.make t.n 0. in
  let best = ref 0. in
  Array.iter
    (fun u ->
      let d = dist.(u) +. w u in
      if d > !best then best := d;
      List.iter (fun (v, _) -> if d > dist.(v) then dist.(v) <- d) t.nodes.(u).out_edges)
    order;
  !best

let critical_path t =
  let order = topological_sort t in
  let dist = Array.make t.n 0. in
  let from = Array.make t.n (-1) in
  let best = ref 0. and best_end = ref (-1) in
  Array.iter
    (fun u ->
      let d = dist.(u) +. weight t u in
      if d > !best then begin
        best := d;
        best_end := u
      end;
      List.iter
        (fun (v, _) ->
          if d > dist.(v) then begin
            dist.(v) <- d;
            from.(v) <- u
          end)
        t.nodes.(u).out_edges)
    order;
  if !best_end < 0 then []
  else begin
    let rec walk u acc = if u < 0 then acc else walk from.(u) (u :: acc) in
    walk !best_end []
  end

let levels t =
  let order = topological_sort t in
  let lvl = Array.make t.n 0 in
  Array.iter
    (fun u ->
      List.iter
        (fun (v, _) -> if lvl.(u) + 1 > lvl.(v) then lvl.(v) <- lvl.(u) + 1)
        t.nodes.(u).out_edges)
    order;
  lvl

let transitive_closure t =
  let order = topological_sort t in
  let reach = Array.init t.n (fun _ -> Array.make t.n false) in
  (* process in reverse topological order: reach(u) = union over succs *)
  for k = t.n - 1 downto 0 do
    let u = order.(k) in
    List.iter
      (fun (v, _) ->
        reach.(u).(v) <- true;
        for j = 0 to t.n - 1 do
          if reach.(v).(j) then reach.(u).(j) <- true
        done)
      t.nodes.(u).out_edges
  done;
  reach

let transitive_reduction_edges t =
  let reach = transitive_closure t in
  let keep = ref [] in
  for u = t.n - 1 downto 0 do
    let out = t.nodes.(u).out_edges in
    List.iter
      (fun (v, _) ->
        (* u->v is redundant iff some other successor w of u reaches v *)
        let redundant =
          List.exists (fun (w, _) -> w <> v && reach.(w).(v)) out
        in
        if not redundant then keep := (u, v) :: !keep)
      (List.rev out)
  done;
  (* parallel file-edges collapse to one dependency *)
  List.sort_uniq compare !keep

let copy t =
  {
    dag_name = t.dag_name;
    nodes =
      Array.init (Array.length t.nodes) (fun i ->
          if i < t.n then
            let nd = t.nodes.(i) in
            { info = nd.info;
              out_edges = nd.out_edges;
              in_edges = nd.in_edges;
              input_files = nd.input_files }
          else t.nodes.(i));
    n = t.n;
    file_tbl = Array.copy t.file_tbl;
    n_files = t.n_files;
    n_edges = t.n_edges;
  }

let induced t ids =
  let ids = List.sort_uniq compare ids in
  List.iter (fun id -> check_task t id "induced") ids;
  let old_of_new = Array.of_list ids in
  let new_of_old = Array.make (max 1 t.n) (-1) in
  Array.iteri (fun nid oid -> new_of_old.(oid) <- nid) old_of_new;
  let sub = create ~name:(t.dag_name ^ "/induced") () in
  Array.iter
    (fun oid ->
      let info = task t oid in
      ignore (add_task sub ~name:info.Task.name ~weight:info.Task.weight))
    old_of_new;
  (* recreate files lazily, preserving sharing inside the subgraph *)
  let file_map = Array.make (max 1 t.n_files) (-1) in
  Array.iter
    (fun oid ->
      let nsrc = new_of_old.(oid) in
      List.iter
        (fun (odst, fid) ->
          let ndst = new_of_old.(odst) in
          if ndst >= 0 then begin
            let nfid =
              if file_map.(fid) >= 0 then file_map.(fid)
              else begin
                let nf = add_file sub ~producer:nsrc ~size:t.file_tbl.(fid).size in
                file_map.(fid) <- nf;
                nf
              end
            in
            add_edge sub ~file:nfid nsrc ndst 0.
          end)
        t.nodes.(oid).out_edges)
    old_of_new;
  (sub, old_of_new)

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" t.dag_name);
  for i = 0 to t.n - 1 do
    let info = t.nodes.(i).info in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s#%d\\nw=%g\"];\n" i info.Task.name i info.Task.weight)
  done;
  for i = 0 to t.n - 1 do
    List.iter
      (fun (j, fid) ->
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d [label=\"f%d:%g\"];\n" i j fid t.file_tbl.(fid).size))
      t.nodes.(i).out_edges
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp_stats fmt t =
  Format.fprintf fmt "%s: %d tasks, %d edges, weight=%.2f, data=%.2f" t.dag_name t.n
    t.n_edges (total_weight t) (total_data t)
