type t = {
  processors : int;
  lambda : float;
  bandwidth : float;
  rates : float array option;
  speeds : float array option;
  prices : float array option;
  base_price : float;
}

let make ~processors ~lambda ~bandwidth =
  if processors < 1 then invalid_arg "Platform.make: need at least one processor";
  if lambda < 0. then invalid_arg "Platform.make: negative failure rate";
  if bandwidth <= 0. then invalid_arg "Platform.make: non-positive bandwidth";
  {
    processors;
    lambda;
    bandwidth;
    rates = None;
    speeds = None;
    prices = None;
    base_price = 0.;
  }

let check_speeds processors speeds =
  Option.iter
    (fun s ->
      if Array.length s <> processors then
        invalid_arg "Platform: speeds array size mismatch";
      Array.iter
        (fun v -> if v <= 0. then invalid_arg "Platform: non-positive speed")
        s)
    speeds

let check_prices processors prices =
  Option.iter
    (fun s ->
      if Array.length s <> processors then
        invalid_arg "Platform: prices array size mismatch";
      Array.iter
        (fun v -> if v <= 0. then invalid_arg "Platform: non-positive price")
        s)
    prices

let make_heterogeneous ?speeds ?prices ~rates ~bandwidth () =
  let processors = Array.length rates in
  if processors < 1 then invalid_arg "Platform.make_heterogeneous: no processors";
  Array.iter
    (fun r -> if r < 0. then invalid_arg "Platform.make_heterogeneous: negative rate")
    rates;
  if bandwidth <= 0. then invalid_arg "Platform.make_heterogeneous: non-positive bandwidth";
  check_speeds processors speeds;
  check_prices processors prices;
  let mean = Array.fold_left ( +. ) 0. rates /. float_of_int processors in
  let base_price =
    match prices with None -> 0. | Some p -> Array.fold_left Float.max 0. p
  in
  {
    processors;
    lambda = mean;
    bandwidth;
    rates = Some (Array.copy rates);
    speeds = Option.map Array.copy speeds;
    prices = Option.map Array.copy prices;
    base_price;
  }

let rate_of t proc =
  if proc < 0 || proc >= t.processors then invalid_arg "Platform.rate_of: bad processor";
  match t.rates with None -> t.lambda | Some rates -> rates.(proc)

let speed_of t proc =
  if proc < 0 || proc >= t.processors then invalid_arg "Platform.speed_of: bad processor";
  match t.speeds with None -> 1. | Some speeds -> speeds.(proc)

let price_of t proc =
  if proc < 0 || proc >= t.processors then invalid_arg "Platform.price_of: bad processor";
  match t.prices with None -> t.base_price | Some prices -> prices.(proc)

let uniform_speed t = t.speeds = None

(* Discount-buys-risk law: a processor billed at the on-demand
   reference price carries risk factor 1; a spot processor at a
   fraction of it is proportionally more likely to be revoked
   (risk = base_price / price). Platforms without pricing are uniform
   spot: factor 1 everywhere. *)
let revocation_risk t proc =
  if proc < 0 || proc >= t.processors then
    invalid_arg "Platform.revocation_risk: bad processor";
  match t.prices with
  | None -> 1.
  | Some prices -> if t.base_price <= 0. then 1. else t.base_price /. prices.(proc)

let total_rate t =
  match t.rates with
  | None -> float_of_int t.processors *. t.lambda
  | Some rates -> Array.fold_left ( +. ) 0. rates

let io_time t size = size /. t.bandwidth

let compute_time t proc weight = weight /. speed_of t proc

(* Cloud billing: a processor is paid for from provisioning (t = 0)
   until it is released or revoked, at [price_of] dollars per hour. *)
let billed_cost t ~until =
  let acc = ref 0. in
  for p = 0 to t.processors - 1 do
    let span = until p in
    if span > 0. && span < infinity then
      acc := !acc +. (price_of t p *. span /. 3600.)
  done;
  !acc

let lambda_of_pfail ~pfail ~mean_weight =
  if pfail < 0. || pfail >= 1. then invalid_arg "Platform.lambda_of_pfail: pfail not in [0,1)";
  if mean_weight <= 0. then invalid_arg "Platform.lambda_of_pfail: non-positive mean weight";
  -.log (1. -. pfail) /. mean_weight

let pfail_of_lambda ~lambda ~mean_weight = 1. -. exp (-.lambda *. mean_weight)

let bandwidth_for_ccr ~ccr ~total_data ~total_weight =
  if ccr <= 0. || total_data <= 0. || total_weight <= 0. then
    invalid_arg "Platform.bandwidth_for_ccr: non-positive argument";
  (* ccr = (total_data / bw) / total_weight  =>  bw = total_data / (ccr * total_weight) *)
  total_data /. (ccr *. total_weight)

let pp fmt t =
  match t.rates with
  | None ->
      Format.fprintf fmt "platform(p=%d, lambda=%g, bw=%g)" t.processors t.lambda t.bandwidth
  | Some _ ->
      Format.fprintf fmt "platform(p=%d, heterogeneous%s%s, mean lambda=%g, bw=%g)"
        t.processors
        (if t.speeds = None then "" else ", sped")
        (if t.prices = None then "" else ", priced")
        t.lambda t.bandwidth
