(** Execution platform model (Section VI-A).

    A platform is [p] processors, each subject to fail-stop failures
    with exponentially distributed inter-arrival times, plus a stable
    storage (shared file system) of bandwidth [bandwidth] bytes/second
    through which all checkpoint, recovery and initial-input traffic
    flows. Reading or writing a file of size [s] takes
    [s / bandwidth] seconds.

    The paper's platforms are homogeneous (one rate λ for everyone);
    {!make_heterogeneous} extends the model with per-processor rates —
    Algorithm 2 then naturally checkpoints more densely on flakier
    processors — and, for the cloud extension, per-processor relative
    {e speeds} (a task of weight w takes w / speed seconds) and
    {e prices} (dollars per hour of provisioned time). A homogeneous
    platform is the uniform special case: speed 1 and a zero price
    everywhere, with every costing function degenerating bitwise to the
    paper's. [lambda] always exposes the mean rate. *)

type t = private {
  processors : int;
  lambda : float;  (** mean failure rate across processors *)
  bandwidth : float;
  rates : float array option;  (** per-processor rates, when heterogeneous *)
  speeds : float array option;  (** per-processor relative speeds (1 = reference) *)
  prices : float array option;  (** per-processor $/hour, when priced *)
  base_price : float;  (** highest (on-demand) price; 0 when unpriced *)
}

val make : processors:int -> lambda:float -> bandwidth:float -> t
(** Homogeneous platform.
    @raise Invalid_argument unless [processors >= 1], [lambda >= 0.]
    and [bandwidth > 0.]. *)

val make_heterogeneous :
  ?speeds:float array ->
  ?prices:float array ->
  rates:float array ->
  bandwidth:float ->
  unit ->
  t
(** One processor per entry of [rates]; [speeds] and [prices] (same
    length) attach relative speeds and hourly prices. The reference
    (on-demand) price is the maximum of [prices].
    @raise Invalid_argument on an empty array, a negative rate, a
    non-positive speed or price, a size mismatch, or a non-positive
    bandwidth. *)

val rate_of : t -> int -> float
(** Failure rate of one processor.
    @raise Invalid_argument on an out-of-range processor index. *)

val speed_of : t -> int -> float
(** Relative speed of one processor (1. on unsped platforms). A task of
    weight w computes for [w /. speed_of t p] seconds there.
    @raise Invalid_argument on an out-of-range processor index. *)

val price_of : t -> int -> float
(** Hourly price of one processor (0. on unpriced platforms).
    @raise Invalid_argument on an out-of-range processor index. *)

val uniform_speed : t -> bool
(** Whether every processor runs at the reference speed. *)

val revocation_risk : t -> int -> float
(** Price-driven revocation risk factor: [base_price /. price_of t p] —
    an on-demand processor (full price) has factor 1, a spot processor
    at a third of the price is revoked three times as often. Unpriced
    platforms are uniform spot (factor 1 everywhere). Multiplied into
    the base revocation rate by {!Ckpt_recovery.Mortality}. *)

val total_rate : t -> float
(** Sum of all processors' failure rates (the aggregate failure
    process seen by restart-from-scratch strategies). *)

val io_time : t -> float -> float
(** [io_time p size] is the time to move [size] data units to or from
    stable storage. *)

val compute_time : t -> int -> float -> float
(** [compute_time t p w] is the time processor [p] spends executing a
    task of weight [w]: [w /. speed_of t p]. *)

val billed_cost : t -> until:(int -> float) -> float
(** Dollar cost of one execution: every processor is billed at its
    hourly price from provisioning (instant 0) to [until p] — its
    revocation instant or the release of the platform, whichever came
    first. Non-positive and infinite spans bill nothing (an immortal
    processor's span must be capped by the caller at the makespan). *)

val lambda_of_pfail : pfail:float -> mean_weight:float -> float
(** The paper's failure-rate normalisation: picks λ such that a task
    of average weight w̄ fails with probability [pfail], i.e.
    [pfail = 1 - exp (-λ w̄)].

    @raise Invalid_argument unless [0 <= pfail < 1] and
    [mean_weight > 0]. *)

val pfail_of_lambda : lambda:float -> mean_weight:float -> float
(** Inverse of {!lambda_of_pfail}. *)

val bandwidth_for_ccr :
  ccr:float -> total_data:float -> total_weight:float -> float
(** Bandwidth giving the requested Communication-to-Computation Ratio,
    where CCR = (total file store time) / (total computation time) =
    (total_data / bandwidth) / total_weight. Equivalently, the paper
    scales file sizes; scaling bandwidth by the inverse factor is the
    same operation and keeps data volumes intact.

    @raise Invalid_argument unless all arguments are positive. *)

val pp : Format.formatter -> t -> unit
