#!/bin/sh
# Repo-wide check: build, unit/property tests, then the end-to-end
# crash/resume smoke test.  This is what CI (and a reviewer) should run.
#
# The performance-critical libraries (prob, parallel, evaluation,
# simulation) carry (flags (:standard -warn-error +a)) in their dune
# stanzas, so any new compiler warning in them fails the build step.
set -eu
cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench/run_smoke.sh =="
sh bench/run_smoke.sh

echo "== sweep output is independent of --jobs =="
CKPTWF=_build/default/bin/ckptwf.exe
TMP=$(mktemp -d "${TMPDIR:-/tmp}/ckptwf-check.XXXXXX")
trap 'rm -rf "$TMP"' EXIT INT TERM
SWEEP="--workflow genome --tasks 50 --seed 7 --processors 5 --method pathapprox --csv"
$CKPTWF sweep $SWEEP --jobs 1 > "$TMP/jobs1.csv"
$CKPTWF sweep $SWEEP --jobs 4 > "$TMP/jobs4.csv"
diff -u "$TMP/jobs1.csv" "$TMP/jobs4.csv"

echo "== malformed DAX exits 2 with a one-line diagnostic, every subcommand =="
printf '<adag>\n  <job id="ID1" runtime="not-a-number"/>\n</adag>\n' > "$TMP/bad.dax"
for sub in generate schedule evaluate simulate sweep accuracy gantt contention quantiles degrade; do
    status=0
    $CKPTWF "$sub" --dax "$TMP/bad.dax" > /dev/null 2> "$TMP/bad.err" || status=$?
    if [ "$status" -ne 2 ]; then
        echo "FAIL: $sub on malformed DAX exited $status, want 2" >&2
        exit 1
    fi
    if [ "$(wc -l < "$TMP/bad.err")" -ne 1 ]; then
        echo "FAIL: $sub on malformed DAX printed more than one diagnostic line:" >&2
        cat "$TMP/bad.err" >&2
        exit 1
    fi
done

echo "== degraded mode: output independent of --jobs, crash/resume, repair wins =="
DEGRADE="--workflow genome --tasks 50 --seed 7 --processors 5 --strategy some --trials 60 --csv"
$CKPTWF degrade $DEGRADE --jobs 1 > "$TMP/deg1.csv"
$CKPTWF degrade $DEGRADE --jobs 4 > "$TMP/deg4.csv"
diff -u "$TMP/deg1.csv" "$TMP/deg4.csv"
# crash after 2 cells (simulated fail-stop, exit 1), then resume: the
# resumed run must reproduce the uninterrupted output bytes exactly
status=0
$CKPTWF degrade $DEGRADE --jobs 4 --journal "$TMP/deg.journal" --fail-after 2 \
    > /dev/null 2>&1 || status=$?
if [ "$status" -ne 1 ]; then
    echo "FAIL: injected degrade crash exited $status, want 1" >&2
    exit 1
fi
$CKPTWF degrade $DEGRADE --jobs 4 --journal "$TMP/deg.journal" --resume \
    > "$TMP/degres.csv" 2> /dev/null
diff -u "$TMP/deg1.csv" "$TMP/degres.csv"
# online repair must beat restart-from-scratch in expectation on every row
awk -F, 'NR > 1 { if ($8 + 0 > $9 + 0) { print "FAIL: repair " $8 " worse than restart " $9 " at pdeath " $7; exit 1 } }' \
    "$TMP/deg1.csv"

echo "== degrade replan cache reports a nonzero hit rate =="
# ckptwf prints "ckptwf: replan cache: H hit(s), M miss(es) (..%)" on
# stderr after a degrade run; the structural cache must actually hit
$CKPTWF degrade $DEGRADE --jobs 1 > /dev/null 2> "$TMP/degcache.err"
hits=$(sed -n 's/.*replan cache: \([0-9][0-9]*\) hit(s).*/\1/p' "$TMP/degcache.err")
if [ -z "$hits" ] || [ "$hits" -eq 0 ]; then
    echo "FAIL: degrade run reported no replan-cache hits:" >&2
    cat "$TMP/degcache.err" >&2
    exit 1
fi

echo "== planning-throughput bench smoke (--plan-only, exit code only) =="
dune build bench/main.exe
_build/default/bench/main.exe --plan-only --json "$TMP/plan.json" --jobs 2 > /dev/null
test -s "$TMP/plan.json"

echo "== all checks passed =="
