#!/bin/sh
# Repo-wide check: build, unit/property tests, then the end-to-end
# crash/resume smoke test.  This is what CI (and a reviewer) should run.
#
# The performance-critical libraries (prob, parallel, evaluation,
# simulation) carry (flags (:standard -warn-error +a)) in their dune
# stanzas, so any new compiler warning in them fails the build step.
set -eu
cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench/run_smoke.sh =="
sh bench/run_smoke.sh

echo "== sweep output is independent of --jobs =="
CKPTWF=_build/default/bin/ckptwf.exe
TMP=$(mktemp -d "${TMPDIR:-/tmp}/ckptwf-check.XXXXXX")
trap 'rm -rf "$TMP"' EXIT INT TERM
SWEEP="--workflow genome --tasks 50 --seed 7 --processors 5 --method pathapprox --csv"
$CKPTWF sweep $SWEEP --jobs 1 > "$TMP/jobs1.csv"
$CKPTWF sweep $SWEEP --jobs 4 > "$TMP/jobs4.csv"
diff -u "$TMP/jobs1.csv" "$TMP/jobs4.csv"

echo "== all checks passed =="
