#!/bin/sh
# Repo-wide check: build, unit/property tests, then the end-to-end
# crash/resume smoke test.  This is what CI (and a reviewer) should run.
#
# The performance-critical libraries (prob, parallel, evaluation,
# simulation) carry (flags (:standard -warn-error +a)) in their dune
# stanzas, so any new compiler warning in them fails the build step.
set -eu
cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench/run_smoke.sh =="
sh bench/run_smoke.sh

echo "== sweep output is independent of --jobs =="
CKPTWF=_build/default/bin/ckptwf.exe
TMP=$(mktemp -d "${TMPDIR:-/tmp}/ckptwf-check.XXXXXX")
trap 'rm -rf "$TMP"' EXIT INT TERM
SWEEP="--workflow genome --tasks 50 --seed 7 --processors 5 --method pathapprox --csv"
$CKPTWF sweep $SWEEP --jobs 1 > "$TMP/jobs1.csv"
$CKPTWF sweep $SWEEP --jobs 4 > "$TMP/jobs4.csv"
diff -u "$TMP/jobs1.csv" "$TMP/jobs4.csv"

echo "== malformed DAX exits 2 with a one-line diagnostic, every subcommand =="
printf '<adag>\n  <job id="ID1" runtime="not-a-number"/>\n</adag>\n' > "$TMP/bad.dax"
for sub in generate schedule evaluate simulate sweep accuracy gantt contention quantiles degrade storm cloud; do
    status=0
    $CKPTWF "$sub" --dax "$TMP/bad.dax" > /dev/null 2> "$TMP/bad.err" || status=$?
    if [ "$status" -ne 2 ]; then
        echo "FAIL: $sub on malformed DAX exited $status, want 2" >&2
        exit 1
    fi
    if [ "$(wc -l < "$TMP/bad.err")" -ne 1 ]; then
        echo "FAIL: $sub on malformed DAX printed more than one diagnostic line:" >&2
        cat "$TMP/bad.err" >&2
        exit 1
    fi
done

echo "== degraded mode: output independent of --jobs, crash/resume, repair wins =="
DEGRADE="--workflow genome --tasks 50 --seed 7 --processors 5 --strategy some --trials 60 --csv"
$CKPTWF degrade $DEGRADE --jobs 1 > "$TMP/deg1.csv"
$CKPTWF degrade $DEGRADE --jobs 4 > "$TMP/deg4.csv"
diff -u "$TMP/deg1.csv" "$TMP/deg4.csv"
# crash after 2 cells (simulated fail-stop, exit 1), then resume: the
# resumed run must reproduce the uninterrupted output bytes exactly
status=0
$CKPTWF degrade $DEGRADE --jobs 4 --journal "$TMP/deg.journal" --fail-after 2 \
    > /dev/null 2>&1 || status=$?
if [ "$status" -ne 1 ]; then
    echo "FAIL: injected degrade crash exited $status, want 1" >&2
    exit 1
fi
$CKPTWF degrade $DEGRADE --jobs 4 --journal "$TMP/deg.journal" --resume \
    > "$TMP/degres.csv" 2> /dev/null
diff -u "$TMP/deg1.csv" "$TMP/degres.csv"
# online repair must beat restart-from-scratch in expectation on every row
awk -F, 'NR > 1 { if ($8 + 0 > $9 + 0) { print "FAIL: repair " $8 " worse than restart " $9 " at pdeath " $7; exit 1 } }' \
    "$TMP/deg1.csv"

echo "== degrade replan cache reports a nonzero hit rate =="
# ckptwf prints "ckptwf: replan cache: H hit(s), M miss(es) (..%)" on
# stderr after a degrade run; the structural cache must actually hit
$CKPTWF degrade $DEGRADE --jobs 1 > /dev/null 2> "$TMP/degcache.err"
hits=$(sed -n 's/.*replan cache: \([0-9][0-9]*\) hit(s).*/\1/p' "$TMP/degcache.err")
if [ -z "$hits" ] || [ "$hits" -eq 0 ]; then
    echo "FAIL: degrade run reported no replan-cache hits:" >&2
    cat "$TMP/degcache.err" >&2
    exit 1
fi

echo "== journal survives truncation at an arbitrary byte offset mid-cell =="
# crash a journaled sweep mid-run, then chop the journal at a byte
# offset that tears its last line; the CRC guard must drop the torn
# tail (one stderr notice) and the resumed sweep must still reproduce
# the uninterrupted output bytes exactly
status=0
$CKPTWF sweep $SWEEP --journal "$TMP/trunc.journal" --fail-after 3 \
    > /dev/null 2>&1 || status=$?
if [ "$status" -ne 1 ]; then
    echo "FAIL: injected sweep crash exited $status, want 1" >&2
    exit 1
fi
size=$(wc -c < "$TMP/trunc.journal")
truncate -s $((size - 7)) "$TMP/trunc.journal" 2>/dev/null \
    || dd if="$TMP/trunc.journal" of="$TMP/trunc.journal.cut" bs=1 count=$((size - 7)) 2>/dev/null
[ -f "$TMP/trunc.journal.cut" ] && mv "$TMP/trunc.journal.cut" "$TMP/trunc.journal"
$CKPTWF sweep $SWEEP --journal "$TMP/trunc.journal" --resume \
    > "$TMP/truncres.csv" 2> "$TMP/truncres.err"
diff -u "$TMP/jobs1.csv" "$TMP/truncres.csv"
if ! grep -q "truncated trailing entry" "$TMP/truncres.err"; then
    echo "FAIL: resumed sweep did not report the recovered torn tail:" >&2
    cat "$TMP/truncres.err" >&2
    exit 1
fi

echo "== journal format-version mismatch fails fast with exit 3 =="
# strip the version header: the file now reads as an unversioned
# (format 1) journal, and --resume must refuse it with one line
tail -n +2 "$TMP/trunc.journal" > "$TMP/old.journal"
status=0
$CKPTWF sweep $SWEEP --journal "$TMP/old.journal" --resume \
    > /dev/null 2> "$TMP/old.err" || status=$?
if [ "$status" -ne 3 ]; then
    echo "FAIL: version-mismatched resume exited $status, want 3" >&2
    exit 1
fi
if [ "$(wc -l < "$TMP/old.err")" -ne 1 ]; then
    echo "FAIL: version mismatch printed more than one diagnostic line:" >&2
    cat "$TMP/old.err" >&2
    exit 1
fi

echo "== storm: unreliable storage, --jobs invariance, crash/resume, k=2 beats k=1 =="
STORM="--workflow genome --tasks 40 --seed 7 --processors 5 --strategy all --trials 120 --commit-fail-prob 0.05"
STORM_CSV="${STORM_CSV:-$TMP/storm.csv}"
$CKPTWF storm $STORM --jobs 1 > "$STORM_CSV" 2> "$TMP/storm.err"
$CKPTWF storm $STORM --jobs 4 > "$TMP/storm4.csv" 2> /dev/null
diff -u "$STORM_CSV" "$TMP/storm4.csv"
# the sweep's whole point: at high corruption, duplicated checkpoint
# commits (k=2) must yield a lower expected makespan than k=1
awk -F, '
    NR > 1 && $7 + 0 == 0.2 { em[$5] = $10 + 0 }
    END {
        if (!(1 in em) || !(2 in em)) { print "FAIL: missing k=1/k=2 rows"; exit 1 }
        if (em[2] >= em[1]) { print "FAIL: k=2 EM " em[2] " not below k=1 EM " em[1]; exit 1 }
    }' "$STORM_CSV"
grep -q "first beats replicas=1" "$TMP/storm.err" || {
    echo "FAIL: storm printed no crossover report:" >&2
    cat "$TMP/storm.err" >&2
    exit 1
}
# crash after 4 cells, resume, byte-identical output
status=0
$CKPTWF storm $STORM --journal "$TMP/storm.journal" --fail-after 4 \
    > /dev/null 2>&1 || status=$?
if [ "$status" -ne 1 ]; then
    echo "FAIL: injected storm crash exited $status, want 1" >&2
    exit 1
fi
$CKPTWF storm $STORM --journal "$TMP/storm.journal" --resume \
    > "$TMP/stormres.csv" 2> /dev/null
diff -u "$STORM_CSV" "$TMP/stormres.csv"

echo "== storage faults off reproduce the fault-free CLI output bitwise =="
SIM="--workflow genome --tasks 40 --seed 7 --processors 5 --trials 80"
$CKPTWF simulate $SIM > "$TMP/sim_plain.txt"
$CKPTWF simulate $SIM --storage-lambda 0 --corrupt-prob 0 --commit-fail-prob 0 --replicas 1 \
    > "$TMP/sim_storage_off.txt"
diff -u "$TMP/sim_plain.txt" "$TMP/sim_storage_off.txt"
$CKPTWF degrade $DEGRADE --storage-lambda 0 --corrupt-prob 0 --replicas 1 > "$TMP/deg_storage_off.csv"
diff -u "$TMP/deg1.csv" "$TMP/deg_storage_off.csv"

echo "== cloud: --jobs invariance, crash/resume, grace pays, degrade degeneration =="
CLOUD="--workflow genome --tasks 50 --seed 7 --processors 5 --strategy some --trials 120 --prevoke 0.9 --grace 0 --grace 30 --spot-fraction 0 --spot-fraction 0.4"
CLOUD_CSV="${CLOUD_CSV:-$TMP/cloud.csv}"
$CKPTWF cloud $CLOUD --jobs 1 > "$CLOUD_CSV" 2> "$TMP/cloud.err"
$CKPTWF cloud $CLOUD --jobs 4 > "$TMP/cloud4.csv" 2> /dev/null
diff -u "$CLOUD_CSV" "$TMP/cloud4.csv"
# the warning's whole point: at every price mix, a nonzero grace must
# strictly shrink the checkpointing mode's expected work lost
awk -F, '
    NR > 1 { lost[$7 "," $8] = $15 + 0; sf[$8] = 1 }
    END {
        for (f in sf) {
            if (!(("0," f) in lost) || !(("30," f) in lost)) { print "FAIL: missing grace rows at spot-fraction " f; exit 1 }
            if (lost["30," f] >= lost["0," f]) { print "FAIL: grace 30 lost " lost["30," f] " not below grace 0 lost " lost["0," f] " at spot-fraction " f; exit 1 }
        }
    }' "$CLOUD_CSV"
grep -q "cuts expected work lost" "$TMP/cloud.err" || {
    echo "FAIL: cloud printed no grace-benefit report:" >&2
    cat "$TMP/cloud.err" >&2
    exit 1
}
# crash after 2 cells, resume, byte-identical output
status=0
$CKPTWF cloud $CLOUD --journal "$TMP/cloud.journal" --fail-after 2 \
    > /dev/null 2>&1 || status=$?
if [ "$status" -ne 1 ]; then
    echo "FAIL: injected cloud crash exited $status, want 1" >&2
    exit 1
fi
$CKPTWF cloud $CLOUD --journal "$TMP/cloud.journal" --resume \
    > "$TMP/cloudres.csv" 2> /dev/null
diff -u "$CLOUD_CSV" "$TMP/cloudres.csv"
# with revocations unannounced (grace 0) on a fully on-demand platform,
# the cloud trial loop degenerates bitwise to the degrade one: its
# expected makespan must equal degrade's em_repair at pdeath = prevoke
$CKPTWF cloud --workflow genome --tasks 50 --seed 7 --processors 5 --strategy some \
    --trials 60 --prevoke 0.2 --grace 0 --spot-fraction 0 > "$TMP/cloud_degen.csv" 2> /dev/null
em_cloud=$(awk -F, 'NR == 2 { print $11 }' "$TMP/cloud_degen.csv")
em_degrade=$(awk -F, 'NR > 1 && $7 + 0 == 0.2 { print $8 }' "$TMP/deg1.csv")
if [ "$em_cloud" != "$em_degrade" ]; then
    echo "FAIL: cloud em_ckpt $em_cloud != degrade em_repair $em_degrade (bitwise degeneration broken)" >&2
    exit 1
fi

echo "== checkpoint store: explicit default flags reproduce every subcommand bitwise =="
# the pluggable store's contract with history: the default in-memory
# every-segment store spelled out explicitly must change nothing, byte
# for byte, on any subcommand
STOREDEF="--store memory --store-policy every-segment"
$CKPTWF simulate $SIM $STOREDEF > "$TMP/sim_store_def.txt" 2> /dev/null
diff -u "$TMP/sim_plain.txt" "$TMP/sim_store_def.txt"
$CKPTWF sweep $SWEEP $STOREDEF --jobs 1 > "$TMP/sweep_store_def.csv" 2> /dev/null
diff -u "$TMP/jobs1.csv" "$TMP/sweep_store_def.csv"
$CKPTWF degrade $DEGRADE $STOREDEF > "$TMP/deg_store_def.csv" 2> /dev/null
diff -u "$TMP/deg1.csv" "$TMP/deg_store_def.csv"
$CKPTWF storm $STORM $STOREDEF > "$TMP/storm_store_def.csv" 2> /dev/null
diff -u "$STORM_CSV" "$TMP/storm_store_def.csv"
$CKPTWF cloud $CLOUD $STOREDEF > "$TMP/cloud_store_def.csv" 2> /dev/null
diff -u "$CLOUD_CSV" "$TMP/cloud_store_def.csv"

echo "== checkpoint store: disk journal crash mid-commit, truncation, fingerprint resume =="
# reference: an uncrashed disk-store run against a fresh store file
$CKPTWF simulate $SIM --store disk --store-path "$TMP/ref.store" \
    > "$TMP/store_ref.txt" 2> /dev/null
# crash mid-commit (injected fail-stop during a store write): exit 1
status=0
$CKPTWF simulate $SIM --store disk --store-path "$TMP/crash.store" --store-fail-after 100 \
    > /dev/null 2>&1 || status=$?
if [ "$status" -ne 1 ]; then
    echo "FAIL: injected store crash exited $status, want 1" >&2
    exit 1
fi
# tear the last committed record at an arbitrary byte offset (the
# kill -9 window between write and fsync)
ssize=$(wc -c < "$TMP/crash.store")
truncate -s $((ssize - 5)) "$TMP/crash.store" 2>/dev/null \
    || dd if="$TMP/crash.store" of="$TMP/crash.store.cut" bs=1 count=$((ssize - 5)) 2>/dev/null
[ -f "$TMP/crash.store.cut" ] && mv "$TMP/crash.store.cut" "$TMP/crash.store"
# resume: the torn record is detected and dropped (stderr notice), its
# segment re-executes, and stdout is byte-identical to the uncrashed
# reference run
$CKPTWF simulate $SIM --store disk --store-path "$TMP/crash.store" \
    > "$TMP/store_res.txt" 2> "$TMP/store_res.err"
diff -u "$TMP/store_ref.txt" "$TMP/store_res.txt"
if ! grep -q "dropped a truncated trailing record" "$TMP/store_res.err"; then
    echo "FAIL: resumed store run did not report the torn record:" >&2
    cat "$TMP/store_res.err" >&2
    exit 1
fi
if ! grep -q "resumed from disk" "$TMP/store_res.err"; then
    echo "FAIL: resumed store run reported no resumed commits:" >&2
    cat "$TMP/store_res.err" >&2
    exit 1
fi
# stale records (same workflow, different fault physics) are rejected
# by fingerprint validation and re-committed, never silently resumed
$CKPTWF simulate $SIM --commit-fail-prob 0.05 --store disk --store-path "$TMP/crash.store" \
    > /dev/null 2> "$TMP/store_stale.err"
rejected=$(sed -n 's/.* \([0-9][0-9]*\) rejected by fingerprint$/\1/p' "$TMP/store_stale.err")
if [ -z "$rejected" ] || [ "$rejected" -eq 0 ]; then
    echo "FAIL: stale store records were not fingerprint-rejected:" >&2
    cat "$TMP/store_stale.err" >&2
    exit 1
fi
# a store written for a different workflow refuses to open: exit 3,
# one diagnostic line (never a silent replay of foreign checkpoints)
status=0
$CKPTWF simulate --workflow genome --tasks 50 --seed 7 --processors 5 --trials 80 \
    --store disk --store-path "$TMP/crash.store" \
    > /dev/null 2> "$TMP/store_foreign.err" || status=$?
if [ "$status" -ne 3 ]; then
    echo "FAIL: foreign-workflow store resume exited $status, want 3" >&2
    exit 1
fi
if [ "$(wc -l < "$TMP/store_foreign.err")" -ne 1 ]; then
    echo "FAIL: foreign-workflow store refusal printed more than one line:" >&2
    cat "$TMP/store_foreign.err" >&2
    exit 1
fi
# transcript of the whole fault sequence, uploaded as a CI artifact
# (STORE_FAULT_LOG) so a red run shows the store-layer notices
{
    echo "# disk-store fault-injection transcript"
    echo "== resume after injected crash + byte truncation =="
    cat "$TMP/store_res.err"
    echo "== stale records rejected by fingerprint =="
    cat "$TMP/store_stale.err"
    echo "== foreign-workflow store refused (exit 3) =="
    cat "$TMP/store_foreign.err"
} > "${STORE_FAULT_LOG:-$TMP/store_fault.log}"

echo "== serve daemon: batched NDJSON round-trips the one-shot CLI =="
# the daemon answers with the same %-formatted numbers the one-shot
# subcommands print, so scripted comparisons are string-exact
$CKPTWF evaluate --workflow genome --tasks 50 --seed 7 --processors 5 \
    > "$TMP/eval_once.txt" 2> /dev/null
em_once=$(sed -n 's/.*EM(CKPTSOME) = \([0-9.]*\) s.*/\1/p' "$TMP/eval_once.txt")
printf '%s\n' \
    '{"id": 1, "op": "evaluate", "workflow": "genome", "tasks": 50, "seed": 7, "processors": 5}' \
    '{"id": 2, "op": "degrade", "workflow": "genome", "tasks": 50, "seed": 7, "processors": 5, "strategy": "some", "pdeath": 0.2, "trials": 60}' \
    '{"id": 3, "op": "plan", "workflow": "genome", "tasks": 50, "seed": 7, "processors": 5, "strategy": "some"}' \
    '{"id": 4, "op": "stats"}' \
    | $CKPTWF serve --once > "$TMP/serve.ndjson" 2> /dev/null
em_serve=$(sed -n '1s/.*"em_some":"\([0-9.]*\)".*/\1/p' "$TMP/serve.ndjson")
if [ -z "$em_serve" ] || [ "$em_serve" != "$em_once" ]; then
    echo "FAIL: serve evaluate em_some '$em_serve' != one-shot '$em_once'" >&2
    exit 1
fi
# degrade through the daemon must agree with the CSV cell computed by
# the one-shot run at the same pdeath (same trials, same seed)
em_deg_serve=$(sed -n '2s/.*"em_repair":"\([0-9.]*\)".*/\1/p' "$TMP/serve.ndjson")
em_deg_once=$(awk -F, 'NR > 1 && $7 + 0 == 0.2 { print $8 }' "$TMP/deg1.csv")
if [ -z "$em_deg_serve" ] || [ "$em_deg_serve" != "$em_deg_once" ]; then
    echo "FAIL: serve degrade em_repair '$em_deg_serve' != one-shot '$em_deg_once'" >&2
    exit 1
fi
serve_hits=$(sed -n '2s/.*"replan_cache_hits":\([0-9]*\).*/\1/p' "$TMP/serve.ndjson")
if [ -z "$serve_hits" ] || [ "$serve_hits" -eq 0 ]; then
    echo "FAIL: serve degrade reported no replan-cache hits" >&2
    exit 1
fi
# plan request 3 reuses the plan computed for the degrade request
if ! sed -n '3p' "$TMP/serve.ndjson" | grep -q '"cache":"hit"'; then
    echo "FAIL: repeated plan request missed the service cache:" >&2
    sed -n '3p' "$TMP/serve.ndjson" >&2
    exit 1
fi
# a malformed request is a usage error: exit 2, one diagnostic line
status=0
printf '{"op": nope}\n' | $CKPTWF serve --once > /dev/null 2> "$TMP/serve.err" || status=$?
if [ "$status" -ne 2 ]; then
    echo "FAIL: malformed serve request exited $status, want 2" >&2
    exit 1
fi
if [ "$(wc -l < "$TMP/serve.err")" -ne 1 ]; then
    echo "FAIL: malformed serve request printed more than one diagnostic line:" >&2
    cat "$TMP/serve.err" >&2
    exit 1
fi

echo "== serve daemon robustness: fault-injection harness =="
# concurrent clients, hung client, malformed flood, shedding, SIGTERM
# drain, stale-socket restart, TCP — scripts/serve_fault.sh asserts
# the well-formed answers stay identical to the one-shot CLI throughout
sh scripts/serve_fault.sh "${SERVE_FAULT_LOG:-$TMP/serve_fault.log}"

echo "== planning-throughput bench smoke (--plan-only, history recorded) =="
dune build bench/main.exe
CKPTWF_BENCH_REPS=2 CKPTWF_BENCH_DIR="$TMP/benchres" \
    _build/default/bench/main.exe --plan-only --json "$TMP/plan.json" --jobs 2 > /dev/null
test -s "$TMP/plan.json"
test -s "$TMP/benchres/plan-latest.json"

echo "== analytic and MC sweep evaluators agree, analytic is faster =="
# same pinned sweep priced by both evaluators: every expected-makespan
# column must agree within 1%, and the closed-form path must finish
# the sweep in less wall-clock time than the 10k-trial MC path
t0=$(date +%s%N)
$CKPTWF sweep $SWEEP --eval analytic > "$TMP/eval_analytic.csv"
t1=$(date +%s%N)
$CKPTWF sweep $SWEEP --eval mc > "$TMP/eval_mc.csv"
t2=$(date +%s%N)
awk -F, 'NR == 1 { getline other < mc; next }
    { getline other < mc; split(other, m, ",")
      for (c = 6; c <= 8; c++)
          if ((($c - m[c]) > 0 ? $c - m[c] : m[c] - $c) > 0.01 * m[c]) {
              printf "FAIL: row %d col %d: analytic %s vs mc %s\n", NR, c, $c, m[c]
              exit 1
          } }' mc="$TMP/eval_mc.csv" "$TMP/eval_analytic.csv"
analytic_ns=$((t1 - t0)); mc_ns=$((t2 - t1))
if [ "$analytic_ns" -ge "$mc_ns" ]; then
    echo "FAIL: analytic sweep (${analytic_ns}ns) not faster than mc (${mc_ns}ns)" >&2
    exit 1
fi
# auto resolves to the analytic path on sweeps (exponential model, no
# storage/contention knobs): byte-identical output
$CKPTWF sweep $SWEEP --eval auto > "$TMP/eval_auto.csv"
diff -u "$TMP/eval_analytic.csv" "$TMP/eval_auto.csv"

echo "== sweep-cell bench smoke (--sweep-only, history recorded) =="
CKPTWF_BENCH_REPS=2 CKPTWF_BENCH_DIR="$TMP/benchres" \
    _build/default/bench/main.exe --sweep-only --json "$TMP/sweep.json" > /dev/null
test -s "$TMP/sweep.json"
test -s "$TMP/benchres/sweep-latest.json"
grep -q '"analytic_within_ci": true' "$TMP/sweep.json"

echo "== all checks passed =="
