#!/bin/sh
# Repo-wide check: build, unit/property tests, then the end-to-end
# crash/resume smoke test.  This is what CI (and a reviewer) should run.
set -eu
cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench/run_smoke.sh =="
sh bench/run_smoke.sh

echo "== all checks passed =="
