#!/bin/sh
# Fault-injection harness for the hardened `ckptwf serve` daemon.
#
# Drives the daemon through the fail-stop events its serving layer must
# survive — concurrent clients, a hung (slowloris) client, a malformed
# flood, over-capacity shedding, SIGTERM mid-traffic, kill -9 leaving a
# stale socket — and asserts that well-formed clients keep getting
# answers identical (modulo timing fields) to the one-shot CLI, that
# the bad clients get structured NDJSON errors, and that the lifecycle
# contract holds (drain exits 0, socket file removed, stale socket
# reclaimed on restart).
#
#   usage: serve_fault.sh [LOGFILE]
#
# The full transcript goes to LOGFILE (default serve_fault.log — CI
# uploads it as an artifact); the console gets one line per scenario.
set -eu
cd "$(dirname "$0")/.."

CKPTWF=${CKPTWF:-_build/default/bin/ckptwf.exe}
PROBE=${PROBE:-_build/default/bin/serve_probe.exe}
LOG=${1:-serve_fault.log}
PORT=${SERVE_FAULT_PORT:-17423}

TMP=$(mktemp -d "${TMPDIR:-/tmp}/ckptwf-serve-fault.XXXXXX")
DPID=""
cleanup() {
    [ -n "$DPID" ] && kill -9 "$DPID" 2> /dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

SOCK="$TMP/daemon.sock"

# timing fields and the racing hit/miss marker differ run to run; the
# rest of every answer must be byte-identical
normalize() {
    sed -e 's/"elapsed_ms":[0-9.e+-]*/"elapsed_ms":0/' \
        -e 's/"cache":"\(hit\|miss\)"/"cache":"_"/' "$1"
}

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

start_daemon() {
    # start_daemon EXTRA-ARGS...: launches on $SOCK and waits for the
    # "serving on" banner — the socket file alone is not enough, since
    # a stale file from a killed daemon predates the restart
    : > "$TMP/daemon.err"
    "$CKPTWF" serve --socket "$SOCK" "$@" 2>> "$TMP/daemon.err" &
    DPID=$!
    i=0
    while ! grep -q "serving on" "$TMP/daemon.err" 2> /dev/null; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && fail "daemon did not come up on $SOCK"
        sleep 0.1
    done
}

stop_daemon() {
    # graceful stop; asserts the drain contract every time
    kill -TERM "$DPID"
    status=0
    wait "$DPID" || status=$?
    DPID=""
    [ "$status" -eq 0 ] || fail "SIGTERM drain exited $status, want 0"
    [ -e "$SOCK" ] && fail "drained daemon left its socket file behind"
    return 0
}

main() {
    echo "# serve fault-injection harness: $(date -u +%Y-%m-%dT%H:%M:%SZ)"

    cat > "$TMP/reqs.ndjson" <<'EOF'
{"id": 1, "op": "plan", "workflow": "genome", "tasks": 50, "seed": 7, "processors": 5, "strategy": "some"}
{"id": 2, "op": "evaluate", "workflow": "genome", "tasks": 50, "seed": 7, "processors": 5}
{"id": 3, "op": "plan", "workflow": "genome", "tasks": 50, "seed": 7, "processors": 5, "strategy": "all"}
EOF

    echo "== baseline: one-shot CLI answers for the same batch =="
    "$CKPTWF" serve --once < "$TMP/reqs.ndjson" > "$TMP/baseline.ndjson" 2> /dev/null
    normalize "$TMP/baseline.ndjson" > "$TMP/baseline.norm"
    cat "$TMP/baseline.norm"
    # cross-check against the actual one-shot subcommand, not just serve
    em_once=$("$CKPTWF" evaluate --workflow genome --tasks 50 --seed 7 --processors 5 \
        2> /dev/null | sed -n 's/.*EM(CKPTSOME) = \([0-9.]*\) s.*/\1/p')
    grep -q "\"em_some\":\"$em_once\"" "$TMP/baseline.norm" \
        || fail "serve baseline em_some does not match one-shot evaluate ($em_once)"

    echo "== scenario 1: 4 concurrent clients, one hung, one flooding malformed =="
    start_daemon --request-timeout 2 --max-clients 8
    for i in $(seq 60); do printf '{"op": [[[[\n'; done > "$TMP/flood.ndjson"
    "$PROBE" --unix "$SOCK" --send "$TMP/reqs.ndjson" > "$TMP/good1.ndjson" &
    G1=$!
    "$PROBE" --unix "$SOCK" --send "$TMP/reqs.ndjson" > "$TMP/good2.ndjson" &
    G2=$!
    "$PROBE" --unix "$SOCK" --partial '{"op": "pl' --hold 4 > "$TMP/hung.ndjson" &
    HU=$!
    "$PROBE" --unix "$SOCK" --send "$TMP/flood.ndjson" > "$TMP/flood.out" &
    FL=$!
    wait "$G1" || fail "good client 1 failed"
    wait "$G2" || fail "good client 2 failed"
    wait "$FL" || fail "flood client failed"
    wait "$HU" || fail "hung client failed"
    normalize "$TMP/good1.ndjson" | diff -u "$TMP/baseline.norm" - \
        || fail "good client 1 answers differ from one-shot CLI"
    normalize "$TMP/good2.ndjson" | diff -u "$TMP/baseline.norm" - \
        || fail "good client 2 answers differ from one-shot CLI"
    [ "$(grep -c '"error":"parse"' "$TMP/flood.out")" -eq 60 ] \
        || fail "flood client: want 60 structured parse errors, got $(grep -c '"error":"parse"' "$TMP/flood.out" || true)"
    grep -q '"error":"deadline"' "$TMP/hung.ndjson" \
        || fail "hung client got no structured deadline answer"
    kill -0 "$DPID" 2> /dev/null || fail "daemon died during scenario 1"
    # and it still answers fresh traffic afterwards
    "$PROBE" --unix "$SOCK" --send "$TMP/reqs.ndjson" > "$TMP/after.ndjson"
    normalize "$TMP/after.ndjson" | diff -u "$TMP/baseline.norm" - \
        || fail "post-fault client answers differ from one-shot CLI"
    stop_daemon
    echo "scenario 1 ok"

    echo "== scenario 2: --max-clients sheds with a one-line busy answer =="
    start_daemon --request-timeout 5 --max-clients 2
    "$PROBE" --unix "$SOCK" --hold 3 > /dev/null &
    H1=$!
    "$PROBE" --unix "$SOCK" --hold 3 > /dev/null &
    H2=$!
    sleep 0.5
    "$PROBE" --unix "$SOCK" --send "$TMP/reqs.ndjson" > "$TMP/shed.ndjson"
    grep -q '"error":"busy"' "$TMP/shed.ndjson" \
        || fail "over-cap client was not shed with a busy answer"
    [ "$(wc -l < "$TMP/shed.ndjson")" -eq 1 ] \
        || fail "busy response must be exactly one line"
    wait "$H1" "$H2" || true
    # capacity freed: the same client is served now
    "$PROBE" --unix "$SOCK" --send "$TMP/reqs.ndjson" > "$TMP/unshed.ndjson"
    normalize "$TMP/unshed.ndjson" | diff -u "$TMP/baseline.norm" - \
        || fail "client after shed window differs from one-shot CLI"
    stop_daemon
    echo "scenario 2 ok"

    echo "== scenario 3: SIGTERM drains the in-flight connection, exits 0, removes socket =="
    start_daemon --request-timeout 3
    "$PROBE" --unix "$SOCK" --partial '{"op": "st' --hold 1 > "$TMP/drain.ndjson" &
    DR=$!
    sleep 0.5
    kill -TERM "$DPID"
    status=0
    wait "$DPID" || status=$?
    DPID=""
    [ "$status" -eq 0 ] || fail "SIGTERM with in-flight connection exited $status, want 0"
    [ -e "$SOCK" ] && fail "SIGTERM drain left the socket file behind"
    wait "$DR" || fail "in-flight client failed during drain"
    grep -q '"error":"deadline"' "$TMP/drain.ndjson" \
        || fail "in-flight hung client was not answered during the drain"
    echo "scenario 3 ok"

    echo "== scenario 4: kill -9 mid-request leaves a stale socket; restart reclaims it =="
    start_daemon --request-timeout 5
    "$PROBE" --unix "$SOCK" --partial '{"op": "pl' --hold 5 > /dev/null &
    K9=$!
    sleep 0.3
    kill -9 "$DPID"
    wait "$DPID" 2> /dev/null || true
    DPID=""
    wait "$K9" || true
    [ -S "$SOCK" ] || fail "kill -9 did not leave a stale socket (test premise broken)"
    start_daemon
    grep -q "removing stale socket" "$TMP/daemon.err" \
        || fail "restart did not report reclaiming the stale socket"
    "$PROBE" --unix "$SOCK" --send "$TMP/reqs.ndjson" > "$TMP/reclaim.ndjson"
    normalize "$TMP/reclaim.ndjson" | diff -u "$TMP/baseline.norm" - \
        || fail "restarted daemon answers differ from one-shot CLI"
    stop_daemon
    echo "scenario 4 ok"

    echo "== scenario 5: a second daemon refuses a live socket =="
    start_daemon
    status=0
    "$CKPTWF" serve --socket "$SOCK" 2> "$TMP/second.err" || status=$?
    [ "$status" -eq 2 ] || fail "second daemon on a live socket exited $status, want 2"
    grep -q "already serving" "$TMP/second.err" \
        || fail "second daemon printed no already-serving diagnostic"
    kill -0 "$DPID" 2> /dev/null || fail "incumbent daemon died"
    "$PROBE" --unix "$SOCK" --send "$TMP/reqs.ndjson" > /dev/null \
        || fail "incumbent daemon stopped serving"
    stop_daemon
    echo "scenario 5 ok"

    echo "== scenario 6: TCP listener speaks the same protocol =="
    start_daemon --tcp "$PORT" --request-timeout 2
    "$PROBE" --tcp "$PORT" --send "$TMP/reqs.ndjson" > "$TMP/tcp.ndjson"
    normalize "$TMP/tcp.ndjson" | diff -u "$TMP/baseline.norm" - \
        || fail "TCP answers differ from one-shot CLI"
    stop_daemon
    echo "scenario 6 ok"

    echo "== scenario 7: --cache-cap bounds the resident caches (evictions in stats) =="
    start_daemon --cache-cap 2
    {
        for seed in 1 2 3 4; do
            printf '{"op": "plan", "workflow": "genome", "tasks": 40, "seed": %d, "processors": 5}\n' "$seed"
        done
        printf '{"op": "stats"}\n'
    } > "$TMP/cap.ndjson"
    "$PROBE" --unix "$SOCK" --send "$TMP/cap.ndjson" > "$TMP/cap.out"
    stats_line=$(grep '"op":"stats"' "$TMP/cap.out")
    echo "$stats_line"
    # 4 distinct configurations through cap-2 caches must evict (the
    # exact count depends on the prefetch/answer interleaving), and the
    # counters must be visible in the stats answer
    echo "$stats_line" | grep -q '"setup_evictions":[1-9]' \
        || fail "want nonzero setup_evictions in stats: $stats_line"
    echo "$stats_line" | grep -q '"plan_evictions":[1-9]' \
        || fail "want nonzero plan_evictions in stats: $stats_line"
    stop_daemon
    echo "scenario 7 ok"

    echo "== scenario 8: store counters survive concurrent handler domains =="
    # three clients run the same store-carrying degrade request at
    # once; each must see the identical (deterministic) per-request
    # store counters, and the daemon's aggregate must be exactly the
    # sum — a torn read-modify-write under domain concurrency would
    # break either assertion
    start_daemon --request-timeout 30 --max-clients 8
    cat > "$TMP/store_req.ndjson" <<'EOF'
{"id": 1, "op": "degrade", "workflow": "genome", "tasks": 40, "seed": 7, "processors": 5, "strategy": "some", "pdeath": 0.2, "trials": 40, "corrupt_prob": 0.25, "store_policy": "every-2"}
EOF
    "$PROBE" --unix "$SOCK" --send "$TMP/store_req.ndjson" > "$TMP/store1.ndjson" &
    S1=$!
    "$PROBE" --unix "$SOCK" --send "$TMP/store_req.ndjson" > "$TMP/store2.ndjson" &
    S2=$!
    "$PROBE" --unix "$SOCK" --send "$TMP/store_req.ndjson" > "$TMP/store3.ndjson" &
    S3=$!
    wait "$S1" || fail "store client 1 failed"
    wait "$S2" || fail "store client 2 failed"
    wait "$S3" || fail "store client 3 failed"
    commits=$(sed -n 's/.*"store_commits":\([0-9][0-9]*\).*/\1/p' "$TMP/store1.ndjson")
    corrupt=$(sed -n 's/.*"store_corrupt_reads":\([0-9][0-9]*\).*/\1/p' "$TMP/store1.ndjson")
    [ -n "$commits" ] && [ "$commits" -gt 0 ] \
        || fail "store request answer carries no store_commits: $(cat "$TMP/store1.ndjson")"
    [ -n "$corrupt" ] && [ "$corrupt" -gt 0 ] \
        || fail "corrupt_prob 0.25 produced no corrupt reads: $(cat "$TMP/store1.ndjson")"
    # the replan-cache hit/miss split depends on how the three racing
    # handlers interleave; the store counters must not
    store_fields() {
        sed -n 's/.*\("store_commits":.*"store_evictions":[0-9][0-9]*\).*/\1/p' "$1"
    }
    store_fields "$TMP/store1.ndjson" > "$TMP/store1.fields"
    for f in store2 store3; do
        store_fields "$TMP/$f.ndjson" | diff -u "$TMP/store1.fields" - > /dev/null \
            || fail "concurrent store answers differ ($f vs store1)"
    done
    printf '{"op": "stats"}\n' > "$TMP/stats_req.ndjson"
    "$PROBE" --unix "$SOCK" --send "$TMP/stats_req.ndjson" > "$TMP/store_stats.ndjson"
    stats_line=$(cat "$TMP/store_stats.ndjson")
    echo "$stats_line"
    echo "$stats_line" | grep -q '"store_ops":3' \
        || fail "want store_ops 3 in stats: $stats_line"
    total=$(echo "$stats_line" | sed -n 's/.*"store_commits":\([0-9][0-9]*\).*/\1/p')
    [ "$total" = "$((3 * commits))" ] \
        || fail "aggregate store_commits $total != 3 x $commits (lost update under concurrency)"
    total_corrupt=$(echo "$stats_line" | sed -n 's/.*"store_corrupt_reads":\([0-9][0-9]*\).*/\1/p')
    [ "$total_corrupt" = "$((3 * corrupt))" ] \
        || fail "aggregate store_corrupt_reads $total_corrupt != 3 x $corrupt"
    stop_daemon
    echo "scenario 8 ok"

    echo "# all serve fault scenarios passed"
}

: > "$LOG"
if main >> "$LOG" 2>&1; then
    grep -E '^(#|==|scenario)' "$LOG"
else
    echo "serve_fault.sh: FAILED — transcript follows" >&2
    cat "$LOG" >&2
    exit 1
fi
