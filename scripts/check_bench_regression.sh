#!/bin/sh
# Plan-throughput regression guard: compare a freshly measured
# BENCH-style JSON against the committed snapshot and fail when any
# guarded rate drops by more than the tolerance.
#
#   usage: check_bench_regression.sh BASELINE.json FRESH.json
#
# Sequential rates are always compared. Parallel rates are compared
# only when both runs resolved to the same effective jobs (a 1-core CI
# runner clamps --jobs 2 down to 1; comparing its "parallel" leg
# against a 4-core baseline would guard noise, not a regression).
# Cache-dominated batch throughput swings with machine load, so it is
# guarded with double the tolerance.
#
# CKPTWF_BENCH_TOLERANCE overrides the allowed fractional drop
# (default 0.30, i.e. fail on a >30% slowdown).
set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 BASELINE.json FRESH.json" >&2
    exit 2
fi
baseline=$1
fresh=$2
tolerance=${CKPTWF_BENCH_TOLERANCE:-0.30}

field() {
    # field FILE KEY -> numeric value (empty if absent)
    sed -n "s/.*\"$2\": \([0-9.][0-9.]*\).*/\1/p" "$1" | head -n 1
}

fail=0

check() {
    # check KEY TOL: fresh >= baseline * (1 - TOL)
    key=$1
    tol=$2
    base=$(field "$baseline" "$key")
    new=$(field "$fresh" "$key")
    if [ -z "$base" ] || [ -z "$new" ]; then
        echo "  skip  $key (missing in baseline or fresh run)"
        return 0
    fi
    if awk -v b="$base" -v n="$new" -v t="$tol" \
        'BEGIN { exit !(n < b * (1 - t)) }'; then
        echo "  FAIL  $key: $new < $base - $(awk -v t="$tol" 'BEGIN { printf "%.0f", t * 100 }')%" >&2
        fail=1
    else
        echo "  ok    $key: $new (baseline $base)"
    fi
}

echo "bench regression guard: $fresh vs $baseline (tolerance $tolerance)"
check genome_plans_per_sec_seq "$tolerance"
check random_plans_per_sec_seq "$tolerance"
check degrade_trials_per_sec "$tolerance"

base_jobs=$(field "$baseline" jobs)
new_jobs=$(field "$fresh" jobs)
if [ -n "$base_jobs" ] && [ "$base_jobs" = "$new_jobs" ]; then
    check genome_plans_per_sec_par "$tolerance"
    check random_plans_per_sec_par "$tolerance"
else
    echo "  skip  parallel legs (effective jobs: baseline ${base_jobs:-?}, fresh ${new_jobs:-?})"
fi

# disk-store commit rate is fsync-bound and swings with the backing
# filesystem's load, so it gets double tolerance like the other
# machine-noise-dominated legs
check store_commits_per_sec $(awk -v t="$tolerance" 'BEGIN { printf "%g", 2 * t }')

check random_plans_per_sec_batch $(awk -v t="$tolerance" 'BEGIN { printf "%g", 2 * t }')
check random_plans_per_sec_concurrent $(awk -v t="$tolerance" 'BEGIN { printf "%g", 2 * t }')

# sweep-cell evaluation rates (BENCH_sweep.json): the analytic path is
# microseconds per cell and timing-noise sensitive, so it gets double
# tolerance like the cache-dominated legs; the MC leg is long enough
# to be stable at the base tolerance.
check sweep_cells_per_sec_analytic $(awk -v t="$tolerance" 'BEGIN { printf "%g", 2 * t }')
check sweep_cells_per_sec_mc "$tolerance"

if [ "$fail" -ne 0 ]; then
    echo "bench regression guard: FAILED" >&2
    exit 1
fi
echo "bench regression guard: passed"
