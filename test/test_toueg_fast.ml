(* Equivalence suite for the monotone (Knuth/Monge) placement DP.

   Strategy: on Monge cost tables built from integer-valued convex
   surfaces the divide-and-conquer solver must return the exact
   reference optimum (sums of small integers are exact in floats, so
   no rounding slack is needed); on arbitrary random tables the Monge
   guard must reject and the [auto] entry points must be bitwise
   identical to the packed O(n²) scan they fall back to. *)

module Toueg = Ckpt_core.Toueg
module Rng = Ckpt_prob.Rng

(* A guaranteed-Monge packed table: B[c][j] = g(j - c) + u_c + v_j
   with g convex nondecreasing makes every 2x2 quadrangle inequality
   an instance of g's convexity, and the separable u/v terms cancel.
   In packed coordinates the entry for row j, column c is
   tri.(j*(j+1)/2 + c) with 0 <= c <= j.  Integer-valued so candidate
   sums are exact. *)
let monge_table rng n =
  let g = Array.make (n + 1) 0. in
  (* convex: second differences are nonnegative random integers *)
  let slope = ref (float_of_int (Rng.int rng 3)) in
  for d = 1 to n do
    g.(d) <- g.(d - 1) +. !slope;
    slope := !slope +. float_of_int (Rng.int rng 4)
  done;
  let u = Array.init (n + 1) (fun _ -> float_of_int (Rng.int rng 20)) in
  let v = Array.init n (fun _ -> float_of_int (Rng.int rng 20)) in
  let tri = Array.make (Toueg.tri_size n) 0. in
  for j = 0 to n - 1 do
    for c = 0 to j do
      tri.((j * (j + 1) / 2) + c) <- g.(j - c) +. u.(c) +. v.(j)
    done
  done;
  tri

let cost_of_tri tri i j = tri.((j * (j + 1) / 2) + i)

let random_tri rng n =
  Array.init (Toueg.tri_size n) (fun _ -> 0.1 +. Rng.float rng 10.)

(* --- monotone solver: exact optimum on Monge tables ------------- *)

let prop_monotone_optimal =
  QCheck.Test.make ~count:300 ~name:"solve_packed_monotone optimal on Monge tables"
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 1) in
      let n = 1 + Rng.int rng 60 in
      let tri = monge_table rng n in
      assert (Toueg.tri_is_monge ~n ~tri);
      let ref_v, _ = Toueg.reference_solve ~n ~cost:(cost_of_tri tri) in
      let etime = Array.make n 0. and last_ckpt = Array.make n 0 in
      let v, p = Toueg.solve_packed_monotone ~n ~tri ~etime ~last_ckpt in
      (* integer-valued costs: the optimum value must match exactly,
         and the returned positions must realise it *)
      let realised =
        (* positions always end with n-1: each segment closes with a
           checkpoint, the last after the final task *)
        let rec total start = function
          | [] -> 0.
          | q :: rest -> cost_of_tri tri start q +. total (q + 1) rest
        in
        total 0 p
      in
      v = ref_v && realised = v)

let prop_budget_monotone_optimal =
  QCheck.Test.make ~count:300
    ~name:"solve_budget_packed_monotone optimal on Monge tables" QCheck.small_nat
    (fun seed ->
      let rng = Rng.create (seed + 101) in
      let n = 1 + Rng.int rng 40 in
      let budget = 1 + Rng.int rng n in
      let tri = monge_table rng n in
      assert (Toueg.tri_is_monge ~n ~tri);
      let ref_v, ref_p = Toueg.reference_solve_budget ~n ~cost:(cost_of_tri tri) ~budget in
      let v, p = Toueg.solve_budget_packed_monotone ~n ~tri ~budget in
      v = ref_v && List.length p = List.length ref_p)

(* --- guard: random tables are rejected, auto stays bitwise ------ *)

let prop_random_not_monge =
  (* a continuous random table violates some quadrangle inequality
     with overwhelming probability once there are a few squares *)
  QCheck.Test.make ~count:200 ~name:"tri_is_monge rejects random tables"
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 211) in
      let n = 6 + Rng.int rng 40 in
      not (Toueg.tri_is_monge ~n ~tri:(random_tri rng n)))

let prop_auto_bitwise_fallback =
  QCheck.Test.make ~count:200 ~name:"solve_packed_auto = solve_packed on non-Monge tables"
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 307) in
      let n = 1 + Rng.int rng 50 in
      let tri = random_tri rng n in
      let etime = Array.make n 0. and last_ckpt = Array.make n 0 in
      let v1, p1 = Toueg.solve_packed ~n ~tri ~etime ~last_ckpt in
      let v2, p2 = Toueg.solve_packed_auto ~n ~tri ~etime ~last_ckpt in
      v1 = v2 && p1 = p2)

let prop_budget_auto_bitwise_fallback =
  QCheck.Test.make ~count:200
    ~name:"solve_budget_packed_auto = solve_budget_packed on non-Monge tables"
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 401) in
      let n = 1 + Rng.int rng 40 in
      let budget = 1 + Rng.int rng n in
      let tri = random_tri rng n in
      let v1, p1 = Toueg.solve_budget_packed ~n ~tri ~budget in
      let v2, p2 = Toueg.solve_budget_packed_auto ~n ~tri ~budget in
      v1 = v2 && p1 = p2)

(* --- auto above the cutoff on Monge tables still optimal -------- *)

let prop_auto_monge_above_cutoff =
  QCheck.Test.make ~count:30 ~name:"solve_packed_auto optimal above monotone_cutoff"
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 503) in
      let n = Toueg.monotone_cutoff + Rng.int rng 64 in
      let tri = monge_table rng n in
      let ref_v, _ = Toueg.reference_solve ~n ~cost:(cost_of_tri tri) in
      let etime = Array.make n 0. and last_ckpt = Array.make n 0 in
      let v, _ = Toueg.solve_packed_auto ~n ~tri ~etime ~last_ckpt in
      v = ref_v)

(* --- degenerate shapes ------------------------------------------ *)

let test_n1 () =
  let tri = [| 3. |] in
  let etime = Array.make 1 0. and last_ckpt = Array.make 1 0 in
  let v, p = Toueg.solve_packed_monotone ~n:1 ~tri ~etime ~last_ckpt in
  Alcotest.(check (float 0.)) "n=1 value" 3. v;
  Alcotest.(check (list int)) "n=1 positions" [ 0 ] p;
  let vb, pb = Toueg.solve_budget_packed_monotone ~n:1 ~tri ~budget:1 in
  Alcotest.(check (float 0.)) "n=1 budget value" 3. vb;
  Alcotest.(check (list int)) "n=1 budget positions" [ 0 ] pb

let test_uniform_cost () =
  (* constant table is (weakly) Monge; a segmentation into k segments
     costs k*c, so the optimum is the single segment 0..n-1 *)
  let n = 23 in
  let tri = Array.make (Toueg.tri_size n) 5. in
  Alcotest.(check bool) "uniform is Monge" true (Toueg.tri_is_monge ~n ~tri);
  let etime = Array.make n 0. and last_ckpt = Array.make n 0 in
  let v, p = Toueg.solve_packed_monotone ~n ~tri ~etime ~last_ckpt in
  Alcotest.(check (float 0.)) "uniform value" 5. v;
  Alcotest.(check (list int)) "uniform positions" [ n - 1 ] p

let test_cutoff_routing () =
  (* below the cutoff a Monge table must still take the packed scan:
     bitwise-identical etime/last_ckpt side arrays prove it ran *)
  let rng = Rng.create 7 in
  let n = Toueg.monotone_cutoff - 1 in
  let tri = monge_table rng n in
  let e1 = Array.make n 0. and l1 = Array.make n 0 in
  let e2 = Array.make n 0. and l2 = Array.make n 0 in
  let v1, p1 = Toueg.solve_packed ~n ~tri ~etime:e1 ~last_ckpt:l1 in
  let v2, p2 = Toueg.solve_packed_auto ~n ~tri ~etime:e2 ~last_ckpt:l2 in
  Alcotest.(check bool) "value+positions" true (v1 = v2 && p1 = p2);
  Alcotest.(check bool) "side arrays bitwise" true (e1 = e2 && l1 = l2)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_monotone_optimal;
    QCheck_alcotest.to_alcotest prop_budget_monotone_optimal;
    QCheck_alcotest.to_alcotest prop_random_not_monge;
    QCheck_alcotest.to_alcotest prop_auto_bitwise_fallback;
    QCheck_alcotest.to_alcotest prop_budget_auto_bitwise_fallback;
    QCheck_alcotest.to_alcotest prop_auto_monge_above_cutoff;
    Alcotest.test_case "n=1 degenerate" `Quick test_n1;
    Alcotest.test_case "uniform cost table" `Quick test_uniform_cost;
    Alcotest.test_case "cutoff routes small Monge to packed scan" `Quick
      test_cutoff_routing;
  ]
