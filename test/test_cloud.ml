(* Tests for the cloud extension: revocation draws with warnings
   (Ckpt_recovery.Mortality), the warning-cut engine with proactive
   rescue checkpoints (Ckpt_sim.Engine.execute_until_revocation), and
   the spot-instance trial loop (Ckpt_sim.Cloud). *)

module Dag = Ckpt_dag.Dag
module Mortality = Ckpt_recovery.Mortality
module Repair = Ckpt_recovery.Repair
module Engine = Ckpt_sim.Engine
module Runner = Ckpt_sim.Runner
module Degrade = Ckpt_sim.Degrade
module Cloud = Ckpt_sim.Cloud
module Failure = Ckpt_platform.Failure
module Platform = Ckpt_platform.Platform
module Rng = Ckpt_prob.Rng
module Strategy = Ckpt_core.Strategy
module Schedule = Ckpt_core.Schedule
module Superchain = Ckpt_core.Superchain
module Placement = Ckpt_core.Placement
module Store = Ckpt_storage.Store
module Pipeline = Ckpt_core.Pipeline
module Spec = Ckpt_workflows.Spec

let check_close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps *. (1. +. abs_float expected) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

(* --- Mortality.draw_revocations --- *)

let test_revocations_zero_grace_is_plain_kill () =
  (* grace 0 degenerates to an unannounced revocation: warn = kill *)
  let revs =
    Mortality.draw_revocations (Rng.create 4) ~rates:(Array.make 6 0.2) ~grace:0.
      ~max_revocations:6
  in
  Array.iter
    (fun r ->
      if r.Mortality.kill < infinity then
        check_close "warn = kill" r.Mortality.kill r.Mortality.warn)
    revs

let test_revocations_warn_clamped_at_zero () =
  (* a kill inside the first grace window warns at instant 0, never at
     a negative instant *)
  let revs =
    Mortality.draw_revocations (Rng.create 5) ~rates:(Array.make 8 5.) ~grace:1e9
      ~max_revocations:8
  in
  Array.iter
    (fun r ->
      Alcotest.(check bool) "warn non-negative" true (r.Mortality.warn >= 0.);
      if r.Mortality.kill < infinity then
        Alcotest.(check bool) "kill inside grace warns at 0" true (r.Mortality.warn = 0.))
    revs

let test_revocations_past_horizon () =
  (* an immortal processor warns never: both instants infinite *)
  let rates = [| 0.; 0.3; 0. |] in
  let revs =
    Mortality.draw_revocations (Rng.create 6) ~rates ~grace:2. ~max_revocations:3
  in
  Alcotest.(check bool) "rate-0 never killed" true (revs.(0).Mortality.kill = infinity);
  Alcotest.(check bool) "rate-0 never warned" true (revs.(0).Mortality.warn = infinity);
  Alcotest.(check bool) "rate-0 never killed" true (revs.(2).Mortality.kill = infinity);
  if revs.(1).Mortality.kill < infinity then
    check_close "warn precedes kill by grace (clamped at 0)"
      (Float.max 0. (revs.(1).Mortality.kill -. 2.))
      revs.(1).Mortality.warn

let test_revocations_all_zero_draw_nothing () =
  (* an all-zero rate vector consumes no randomness: the stream is
     untouched after the call *)
  let a = Rng.create 7 and b = Rng.create 7 in
  let _ =
    Mortality.draw_revocations a ~rates:(Array.make 5 0.) ~grace:3. ~max_revocations:5
  in
  check_close "stream untouched" (Rng.float b 1.) (Rng.float a 1.)

let test_revocations_match_draw_bitwise () =
  (* uniform positive rates: the kill instants are bitwise the plain
     death draw — the cloud path degenerates to the degrade one *)
  let lambda = 0.07 in
  let revs =
    Mortality.draw_revocations (Rng.create 8) ~rates:(Array.make 9 lambda) ~grace:4.
      ~max_revocations:2
  in
  let deaths =
    Mortality.draw (Rng.create 8) ~processors:9 ~lambda_death:lambda ~max_losses:2
  in
  Array.iteri
    (fun p d ->
      Alcotest.(check bool)
        (Printf.sprintf "kill %d bitwise" p)
        true
        (revs.(p).Mortality.kill = d))
    deaths

let test_revocations_censoring () =
  let revs =
    Mortality.draw_revocations (Rng.create 9) ~rates:(Array.make 10 0.5) ~grace:1.
      ~max_revocations:3
  in
  let finite =
    Array.fold_left
      (fun acc r -> if r.Mortality.kill < infinity then acc + 1 else acc)
      0 revs
  in
  Alcotest.(check int) "exactly max_revocations kills" 3 finite

let test_eviction_survivors_strict () =
  let rev ~warn ~kill = { Mortality.warn; kill } in
  let revs =
    [|
      rev ~warn:5. ~kill:7.;
      rev ~warn:infinity ~kill:infinity;
      rev ~warn:2. ~kill:4.;
      rev ~warn:3. ~kill:3.;
    |]
  in
  (* a warned-but-still-alive processor is draining: not a survivor *)
  Alcotest.(check (list int))
    "after 3 (warned p0 survives, p2 drains, p3 ties out)" [ 0; 1 ]
    (Mortality.eviction_survivors revs ~after:3.);
  Alcotest.(check (list int))
    "after 6 (p0 now draining too)" [ 1 ]
    (Mortality.eviction_survivors revs ~after:6.);
  Alcotest.(check (list int))
    "after 0" [ 0; 1; 2; 3 ]
    (Mortality.eviction_survivors revs ~after:0.)

(* --- Engine.execute_until_revocation --- *)

let no_failures _ = Failure.create (Rng.create 1) ~lambda:0.
let reliable_store () = Store.create Store.default (Rng.create 0)

let no_rescue segs =
  Array.map
    (fun (_ : Engine.seg) ->
      { Engine.rread = 0.; task_durs = [||]; partial_writes = [||] })
    segs

let two_proc_segs () =
  [|
    { Engine.processor = 0; duration = 10.; preds = [] };
    { Engine.processor = 1; duration = 10.; preds = [] };
  |]

let test_zero_grace_matches_plain_death () =
  (* warn = kill: the warning cut is bitwise the plain death cut *)
  let segs = two_proc_segs () in
  let write = [| 1.; 1. |] in
  let kill p = if p = 0 then 6. else infinity in
  let death =
    Engine.execute_until_death_storage segs ~write no_failures ~death:kill
      ~store:(reliable_store ())
  in
  let rev =
    Engine.execute_until_revocation segs ~write ~rescue:(no_rescue segs) no_failures
      ~warn:kill ~kill ~store:(reliable_store ())
  in
  match (death, rev) with
  | ( Engine.SInterrupted { dead; at; completed; _ },
      Engine.RInterrupted
        { revoked; at = at'; completed = completed'; rescue; lost = _; _ } ) ->
      Alcotest.(check int) "same processor" dead revoked;
      check_close "same instant" at at';
      Alcotest.(check (list bool))
        "same frontier" (Array.to_list completed) (Array.to_list completed');
      Alcotest.(check bool) "zero grace never rescues" true (rescue = None)
  | _ -> Alcotest.fail "both executions must be interrupted"

let test_earliest_warning_wins_in_shared_grace () =
  (* two processors revoked inside the same grace window: the earliest
     disruptive warning cuts the run, the other's revocation is left
     for the replanned continuation *)
  let segs = two_proc_segs () in
  let warn p = if p = 0 then 5. else 4. in
  let kill p = if p = 0 then 8. else 7. in
  match
    Engine.execute_until_revocation segs ~write:[| 1.; 1. |] ~rescue:(no_rescue segs)
      no_failures ~warn ~kill ~store:(reliable_store ())
  with
  | Engine.RFinished _ -> Alcotest.fail "both warned mid-segment"
  | Engine.RInterrupted { revoked; at; kill = k; completed; _ } ->
      Alcotest.(check int) "p1 warned first" 1 revoked;
      check_close "cut at its warning" 4. at;
      check_close "its kill carried along" 7. k;
      Alcotest.(check (list bool))
        "nobody finished by the cut" [ false; false ] (Array.to_list completed)

let rescue_segs () =
  (* one five-task segment of 2s each; partial checkpoints cost 0.5s *)
  let segs = [| { Engine.processor = 0; duration = 10.; preds = [] } |] in
  let rescue =
    [|
      {
        Engine.rread = 0.;
        task_durs = Array.make 5 2.;
        partial_writes = Array.make 5 0.5;
      };
    |]
  in
  (segs, rescue)

let test_rescue_commits_prefix_in_grace () =
  let segs, rescue = rescue_segs () in
  match
    Engine.execute_until_revocation segs ~write:[| 0.5 |] ~rescue no_failures
      ~warn:(fun _ -> 5.)
      ~kill:(fun _ -> 7.)
      ~store:(reliable_store ())
  with
  | Engine.RFinished _ -> Alcotest.fail "must be cut at 5"
  | Engine.RInterrupted { rescue = saved; lost; _ } -> (
      match saved with
      | Some (0, k, _) ->
          (* 5 elapsed seconds cover two whole 2s tasks; the 0.5s write
             fits well before the kill at 7 *)
          Alcotest.(check int) "two tasks saved" 2 k;
          check_close "gross loss is the elapsed attempt" 5. lost
      | _ -> Alcotest.fail "rescue expected")

let test_rescue_loses_race_to_kill () =
  (* same cut, but the kill lands before the 0.5s partial write can
     complete: grace races C and loses *)
  let segs, rescue = rescue_segs () in
  match
    Engine.execute_until_revocation segs ~write:[| 0.5 |] ~rescue no_failures
      ~warn:(fun _ -> 5.)
      ~kill:(fun _ -> 5.2)
      ~store:(reliable_store ())
  with
  | Engine.RFinished _ -> Alcotest.fail "must be cut at 5"
  | Engine.RInterrupted { rescue = saved; _ } ->
      Alcotest.(check bool) "write span does not fit" true (saved = None)

let test_revocation_before_start_rejected () =
  let segs = [| { Engine.processor = 0; duration = 1.; preds = [] } |] in
  Alcotest.(check bool) "rejected" true
    (match
       Engine.execute_until_revocation ~start:5. segs ~write:[| 0. |]
         ~rescue:(no_rescue segs) no_failures
         ~warn:(fun _ -> 4.)
         ~kill:(fun _ -> 9.)
         ~store:(reliable_store ())
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Cloud --- *)

let genome_plan ?(tasks = 50) ?(processors = 5) ?(seed = 1) () =
  let dag = Spec.generate Spec.Genome ~seed ~tasks () in
  let setup = Pipeline.prepare ~dag ~processors ~pfail:0.001 ~ccr:0.1 () in
  Pipeline.plan setup Strategy.Ckpt_some

let cloud_config ?(grace = 0.) ?(lambda_scale = 0.) plan =
  {
    Cloud.lambda_revoke = lambda_scale /. plan.Strategy.wpar;
    grace;
    max_revocations = 1;
    kind = Strategy.Ckpt_some;
    store = Store.default;
  }

let test_cloud_degenerates_to_degrade () =
  (* zero grace on an unpriced uniform platform: every trial is bitwise
     a Degrade repair trial at the same death rate *)
  let plan = genome_plan () in
  let lambda = 1.5 /. plan.Strategy.wpar in
  let dconfig =
    {
      Degrade.lambda_death = lambda;
      max_losses = 1;
      kind = Strategy.Ckpt_some;
      store = Store.default;
    }
  in
  let cconfig = { (cloud_config plan) with Cloud.lambda_revoke = lambda } in
  let d = Degrade.sample ~trials:40 ~seed:3 ~mode:Degrade.Repair dconfig plan in
  let c = Cloud.sample ~trials:40 ~seed:3 ~mode:Cloud.Checkpoint cconfig plan in
  Array.iteri
    (fun i (t : Degrade.trial) ->
      Alcotest.(check bool)
        (Printf.sprintf "trial %d makespan bitwise" i)
        true
        (t.Degrade.makespan = c.(i).Cloud.makespan);
      Alcotest.(check int)
        (Printf.sprintf "trial %d events" i)
        t.Degrade.losses c.(i).Cloud.revocations)
    d

let test_cloud_jobs_invariant () =
  let plan = genome_plan () in
  let config = cloud_config ~grace:5. ~lambda_scale:1.5 plan in
  let seq = Cloud.sample ~trials:40 ~seed:9 ~jobs:1 ~mode:Cloud.Checkpoint config plan in
  let par = Cloud.sample ~trials:40 ~seed:9 ~jobs:4 ~mode:Cloud.Checkpoint config plan in
  Alcotest.(check bool) "bitwise identical at any --jobs" true (seq = par)

let test_cloud_modes_share_worlds () =
  (* both modes are deterministic and consume identical randomness, so
     each trial index sees the same revocation instants *)
  let plan = genome_plan () in
  let config = cloud_config ~grace:2. ~lambda_scale:2. plan in
  let a = Cloud.sample ~trials:30 ~seed:4 ~mode:Cloud.Replicate config plan in
  let b = Cloud.sample ~trials:30 ~seed:4 ~mode:Cloud.Replicate config plan in
  Alcotest.(check bool) "replicate mode reproducible" true (a = b);
  Array.iter
    (fun (t : Cloud.trial) ->
      Alcotest.(check int) "baseline never rescues" 0 t.Cloud.rescues;
      Alcotest.(check int) "baseline never replans" 0 t.Cloud.replans)
    a

let test_cloud_spot_risk_scales_revocations () =
  (* a discounted spot half of the platform is revoked more often than
     the same platform bought fully on-demand *)
  let dag = Spec.generate Spec.Genome ~seed:1 ~tasks:50 () in
  let processors = 6 in
  (* rates and bandwidth derived exactly as the homogeneous pipeline
     derives them — raw per-second values would be out of scale for
     genome's data volumes *)
  let mean_weight = Dag.total_weight dag /. float_of_int (Dag.n_tasks dag) in
  let lambda = Platform.lambda_of_pfail ~pfail:0.001 ~mean_weight in
  let bandwidth =
    Platform.bandwidth_for_ccr ~ccr:0.1 ~total_data:(Dag.total_data dag)
      ~total_weight:(Dag.total_weight dag)
  in
  let platform_with_discount d =
    let prices = Array.init processors (fun p -> if p >= 3 then d else 1.) in
    Platform.make_heterogeneous ~prices ~rates:(Array.make processors lambda) ~bandwidth
      ()
  in
  let sample d =
    let setup =
      Pipeline.prepare ~platform:(platform_with_discount d) ~dag ~processors ~pfail:0.001
        ~ccr:0.1 ()
    in
    let plan = Pipeline.plan setup Strategy.Ckpt_some in
    let config =
      { (cloud_config plan) with Cloud.lambda_revoke = 0.5 /. plan.Strategy.wpar }
    in
    (Cloud.summarize (Cloud.sample ~trials:80 ~seed:6 ~mode:Cloud.Checkpoint config plan))
      .Cloud.mean_revocations
  in
  let cheap = sample 0.2 and dear = sample 1.0 in
  if cheap <= dear then
    Alcotest.failf "deep discount (%.3f revs) must out-revoke full price (%.3f revs)"
      cheap dear

let test_cloud_grace_cuts_work_lost () =
  (* the tentpole's headline: at a high revocation rate, a generous
     warning strictly shrinks the expected work lost *)
  let plan = genome_plan () in
  let lambda_scale = 2.5 in
  let lost grace =
    let config = cloud_config ~grace ~lambda_scale plan in
    (Cloud.summarize
       (Cloud.sample ~trials:150 ~seed:13 ~mode:Cloud.Checkpoint config plan))
      .Cloud.mean_work_lost
  in
  let unwarned = lost 0. and warned = lost 30. in
  if warned >= unwarned then
    Alcotest.failf "grace does not pay: lost %.2f with warning vs %.2f without" warned
      unwarned

let test_cloud_rejects_ckptnone () =
  let dag = Spec.generate Spec.Genome ~seed:1 ~tasks:50 () in
  let setup = Pipeline.prepare ~dag ~processors:5 ~pfail:0.001 ~ccr:0.1 () in
  let plan = Pipeline.plan setup Strategy.Ckpt_none in
  Alcotest.(check bool) "rejected" true
    (match Cloud.prepare plan with exception Invalid_argument _ -> true | _ -> false)

(* --- rescued work is never re-executed (QCheck) --- *)

(* Mirror of Cloud's internal metadata builders, reconstructed from the
   plan's public fields (the module keeps its prepared type abstract). *)
let seg_tasks_of (plan : Strategy.plan) =
  Array.map
    (fun (seg : Placement.segment) ->
      let sc = plan.Strategy.schedule.Schedule.superchains.(seg.Placement.chain) in
      Array.init
        (seg.Placement.last - seg.Placement.first + 1)
        (fun k -> Superchain.task_at sc (seg.Placement.first + k)))
    plan.Strategy.segments

let rescue_of_plan (plan : Strategy.plan) =
  let dag = plan.Strategy.schedule.Schedule.dag in
  let platform = plan.Strategy.platform in
  let replicas = plan.Strategy.replicas in
  Array.map
    (fun (seg : Placement.segment) ->
      let sc = plan.Strategy.schedule.Schedule.superchains.(seg.Placement.chain) in
      let len = seg.Placement.last - seg.Placement.first + 1 in
      {
        Engine.rread = seg.Placement.read;
        task_durs =
          Array.init len (fun k ->
              Dag.weight dag (Superchain.task_at sc (seg.Placement.first + k)));
        partial_writes =
          Array.init len (fun k ->
              (Placement.segment_of ~replicas platform dag sc ~first:seg.Placement.first
                 ~last:(seg.Placement.first + k))
                .Placement.write);
      })
    plan.Strategy.segments

(* One revocation-interrupted execution with a generous grace window,
   then an eviction-aware replan: no task whose checkpoint committed —
   by a segment completing or by the warning rescue — may reappear in
   the replanned residual. Extends the PR-3 "only unsaved work"
   property to warning-committed prefixes. *)
let rescued_tasks_never_replanned case_seed =
  let plan = genome_plan ~tasks:(30 + (case_seed mod 3 * 13)) ~seed:(case_seed + 1) () in
  let raw = plan.Strategy.raw_dag in
  let n = Dag.n_tasks raw in
  let platform = plan.Strategy.platform in
  let nprocs = platform.Platform.processors in
  let rng = Rng.for_trial ~seed:101 case_seed in
  let grace = plan.Strategy.wpar /. 20. in
  let revs =
    Mortality.draw_revocations rng
      ~rates:(Array.make nprocs (2. /. plan.Strategy.wpar))
      ~grace ~max_revocations:1
  in
  let trace_rngs = Array.init nprocs (fun _ -> Rng.split rng) in
  let trace_of p = Failure.create trace_rngs.(p) ~lambda:(Platform.rate_of platform p) in
  let warn p = revs.(p).Mortality.warn in
  let kill p = revs.(p).Mortality.kill in
  if Array.exists (fun r -> r.Mortality.warn <= 0.) revs then true
  else begin
    let segs = Runner.segs_of_plan plan in
    let seg_tasks = seg_tasks_of plan in
    let rescue = rescue_of_plan plan in
    match
      Engine.execute_until_revocation segs ~write:(Runner.writes_of_plan plan) ~rescue
        trace_of ~warn ~kill ~store:(reliable_store ())
    with
    | Engine.RFinished _ -> true
    | Engine.RInterrupted { at; completed; rescue = saved; _ } ->
        let done_ = Array.make n false in
        Array.iteri
          (fun i ok -> if ok then Array.iter (fun t -> done_.(t) <- true) seg_tasks.(i))
          completed;
        let rescued =
          match saved with
          | None -> []
          | Some (i, k, _) ->
              List.init k (fun j ->
                  let t = seg_tasks.(i).(j) in
                  done_.(t) <- true;
                  t)
        in
        let survivors = Mortality.eviction_survivors revs ~after:at in
        if survivors = [] then true
        else begin
          match
            Repair.replan ~kind:Strategy.Ckpt_some ~dag:raw ~done_ ~survivors ~platform
              ()
          with
          | Error msg -> Alcotest.failf "replan failed: %s" msg
          | Ok r ->
              Array.iter
                (fun orig ->
                  if List.mem orig rescued then
                    Alcotest.failf "warning-committed task %d re-planned" orig;
                  if done_.(orig) then
                    Alcotest.failf "committed task %d re-planned" orig)
                r.Repair.task_of;
              true
        end
  end

let qcheck_rescued_never_replanned =
  QCheck.Test.make ~count:25 ~name:"warning-committed checkpoints are never re-executed"
    QCheck.(int_range 0 10_000)
    rescued_tasks_never_replanned

let suite =
  [
    Alcotest.test_case "revocations: zero grace = plain kill" `Quick
      test_revocations_zero_grace_is_plain_kill;
    Alcotest.test_case "revocations: warn clamped at 0" `Quick
      test_revocations_warn_clamped_at_zero;
    Alcotest.test_case "revocations: past horizon" `Quick test_revocations_past_horizon;
    Alcotest.test_case "revocations: all-zero rates draw nothing" `Quick
      test_revocations_all_zero_draw_nothing;
    Alcotest.test_case "revocations: kills bitwise match draw" `Quick
      test_revocations_match_draw_bitwise;
    Alcotest.test_case "revocations: censoring" `Quick test_revocations_censoring;
    Alcotest.test_case "eviction survivors exclude draining" `Quick
      test_eviction_survivors_strict;
    Alcotest.test_case "zero grace matches plain death" `Quick
      test_zero_grace_matches_plain_death;
    Alcotest.test_case "earliest warning wins in shared grace" `Quick
      test_earliest_warning_wins_in_shared_grace;
    Alcotest.test_case "rescue commits prefix in grace" `Quick
      test_rescue_commits_prefix_in_grace;
    Alcotest.test_case "rescue loses race to kill" `Quick test_rescue_loses_race_to_kill;
    Alcotest.test_case "revocation before start rejected" `Quick
      test_revocation_before_start_rejected;
    Alcotest.test_case "cloud degenerates to degrade" `Quick
      test_cloud_degenerates_to_degrade;
    Alcotest.test_case "cloud: jobs invariant" `Slow test_cloud_jobs_invariant;
    Alcotest.test_case "cloud: replicate mode sane" `Quick test_cloud_modes_share_worlds;
    Alcotest.test_case "cloud: discount buys risk" `Slow
      test_cloud_spot_risk_scales_revocations;
    Alcotest.test_case "cloud: grace cuts work lost (GENOME)" `Slow
      test_cloud_grace_cuts_work_lost;
    Alcotest.test_case "cloud rejects CKPTNONE" `Quick test_cloud_rejects_ckptnone;
    QCheck_alcotest.to_alcotest qcheck_rescued_never_replanned;
  ]
