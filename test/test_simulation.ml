(* Tests for Ckpt_sim: engine semantics on hand-built segment DAGs,
   restart semantics, and agreement with the analytical model. *)

module Engine = Ckpt_sim.Engine
module Runner = Ckpt_sim.Runner
module Failure = Ckpt_platform.Failure
module Rng = Ckpt_prob.Rng
module Stats = Ckpt_prob.Stats
module Strategy = Ckpt_core.Strategy
module Pipeline = Ckpt_core.Pipeline
module Spec = Ckpt_workflows.Spec

let check_close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps *. (1. +. abs_float expected) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

let no_failures _ = Failure.create (Rng.create 1) ~lambda:0.

let test_sequential_segments () =
  let segs =
    [| { Engine.processor = 0; duration = 3.; preds = [] };
       { Engine.processor = 0; duration = 4.; preds = [ 0 ] } |]
  in
  check_close "sum" 7. (Engine.makespan segs no_failures)

let test_parallel_segments () =
  let segs =
    [| { Engine.processor = 0; duration = 3.; preds = [] };
       { Engine.processor = 1; duration = 5.; preds = [] } |]
  in
  check_close "max" 5. (Engine.makespan segs no_failures)

let test_processor_serialisation_without_deps () =
  (* same processor, no dependency: still serialised *)
  let segs =
    [| { Engine.processor = 0; duration = 3.; preds = [] };
       { Engine.processor = 0; duration = 5.; preds = [] } |]
  in
  check_close "serialised" 8. (Engine.makespan segs no_failures)

let test_cross_dependency_wait () =
  (* p1's segment waits for p0's *)
  let segs =
    [| { Engine.processor = 0; duration = 10.; preds = [] };
       { Engine.processor = 1; duration = 1.; preds = [ 0 ] } |]
  in
  check_close "waits" 11. (Engine.makespan segs no_failures)

let test_diamond_join () =
  let segs =
    [| { Engine.processor = 0; duration = 1.; preds = [] };
       { Engine.processor = 0; duration = 4.; preds = [ 0 ] };
       { Engine.processor = 1; duration = 7.; preds = [ 0 ] };
       { Engine.processor = 2; duration = 1.; preds = [ 1; 2 ] } |]
  in
  check_close "diamond" 9. (Engine.makespan segs no_failures)

let test_topological_order_enforced () =
  let segs =
    [| { Engine.processor = 0; duration = 1.; preds = [ 1 ] };
       { Engine.processor = 0; duration = 1.; preds = [] } |]
  in
  Alcotest.(check bool) "rejected" true
    (match Engine.makespan segs no_failures with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_failure_retry_statistics () =
  (* single segment of duration d, failure rate λ: expected completion
     time of the retry process is (e^{λd} - 1)/λ *)
  let lambda = 0.01 and d = 50. in
  let rng = Rng.create 42 in
  let stats = Stats.create () in
  for _ = 1 to 5000 do
    let trial = Rng.split rng in
    let segs = [| { Engine.processor = 0; duration = d; preds = [] } |] in
    Stats.add stats (Engine.makespan segs (fun _ -> Failure.create trial ~lambda))
  done;
  let expected = (exp (lambda *. d) -. 1.) /. lambda in
  let err = abs_float (Stats.mean stats -. expected) /. expected in
  if err > 0.03 then
    Alcotest.failf "retry mean %f vs %f (%.1f%%)" (Stats.mean stats) expected (err *. 100.)

let test_zero_duration_segments_immune () =
  let lambda = 100. in
  let rng = Rng.create 4 in
  let segs = [| { Engine.processor = 0; duration = 0.; preds = [] } |] in
  check_close "no spin" 0. (Engine.makespan segs (fun _ -> Failure.create rng ~lambda))

let test_lambda_zero_exact_makespan () =
  (* λ exactly 0 (not merely tiny): every trial is the deterministic
     longest path, bitwise *)
  let dag = Spec.generate Spec.Genome ~seed:1 ~tasks:50 () in
  let s = Pipeline.prepare ~dag ~processors:5 ~pfail:0. ~ccr:0.01 () in
  let plan = Pipeline.plan s Strategy.Ckpt_some in
  let pd = Option.get plan.Strategy.prob_dag in
  let det = Ckpt_eval.Prob_dag.deterministic_makespan pd in
  let sample = Runner.sample_makespans ~trials:5 plan in
  Array.iter (fun m -> check_close ~eps:0. "exactly deterministic" det m) sample

let test_zero_duration_segment_in_failing_chain () =
  (* a zero-duration segment inside a chain under a dense failure trace:
     it commits instantly at its ready time and never retries *)
  let lambda = 1000. in
  let segs =
    [| { Engine.processor = 0; duration = 0.; preds = [] };
       { Engine.processor = 0; duration = 0.; preds = [ 0 ] };
       { Engine.processor = 1; duration = 0.; preds = [ 1 ] } |]
  in
  let records, m =
    Engine.execute segs (fun _ -> Failure.create (Rng.create 8) ~lambda)
  in
  check_close "still instantaneous" 0. m;
  Array.iter
    (fun (r : Engine.record) ->
      Alcotest.(check int) "single attempt" 1 (List.length r.Engine.attempts);
      List.iter
        (fun (a : Engine.attempt) ->
          Alcotest.(check bool) "never fails" false a.Engine.failed)
        r.Engine.attempts)
    records

let test_forced_first_attempt_failure () =
  (* single-segment plan whose first attempt provably fails: scan seeds
     for a trace with a failure inside the first attempt and none inside
     the retry window, then check the makespan is exactly
     failure instant + duration and the attempt log shows the retry *)
  let d = 50. and lambda = 0.02 in
  let trace seed = Failure.create (Rng.create seed) ~lambda in
  let rec find seed =
    if seed > 10_000 then Alcotest.fail "no suitable failure trace found"
    else
      let probe = trace seed in
      let t1 = Failure.next_after probe 0. in
      if t1 < d && Failure.next_after probe t1 > t1 +. d then seed else find (seed + 1)
  in
  let seed = find 0 in
  let t1 = Failure.next_after (trace seed) 0. in
  let segs = [| { Engine.processor = 0; duration = d; preds = [] } |] in
  let records, m = Engine.execute segs (fun _ -> trace seed) in
  check_close "failure instant + duration" (t1 +. d) m;
  match records.(0).Engine.attempts with
  | [ first; second ] ->
      Alcotest.(check bool) "first attempt failed" true first.Engine.failed;
      check_close "cut at the failure" t1 first.Engine.attempt_end;
      Alcotest.(check bool) "retry succeeded" false second.Engine.failed;
      check_close "retry starts at the failure" t1 second.Engine.attempt_start
  | l -> Alcotest.failf "expected exactly two attempts, got %d" (List.length l)

let test_restart_semantics_failure_free () =
  let rng = Rng.create 5 in
  check_close "wpar when no failures" 123.
    (Engine.restart_makespan ~wpar:123. ~processors:4 ~lambda:0. rng)

let test_restart_statistics () =
  (* restart process: E[T] = (e^{rW} - 1)/r with r = p λ *)
  let lambda = 0.0005 and wpar = 100. and processors = 4 in
  let rng = Rng.create 6 in
  let stats = Stats.create () in
  for _ = 1 to 20000 do
    Stats.add stats (Engine.restart_makespan ~wpar ~processors ~lambda (Rng.split rng))
  done;
  let r = float_of_int processors *. lambda in
  let expected = (exp (r *. wpar) -. 1.) /. r in
  let err = abs_float (Stats.mean stats -. expected) /. expected in
  if err > 0.02 then Alcotest.failf "restart mean %f vs %f" (Stats.mean stats) expected

let setup () =
  let dag = Spec.generate Spec.Genome ~seed:1 ~tasks:50 () in
  Pipeline.prepare ~dag ~processors:5 ~pfail:0.01 ~ccr:0.01 ()

let test_segs_of_plan_shape () =
  let s = setup () in
  let plan = Pipeline.plan s Strategy.Ckpt_some in
  let segs = Runner.segs_of_plan plan in
  Alcotest.(check int) "one seg per segment" (Array.length plan.Strategy.segments)
    (Array.length segs);
  Array.iter
    (fun seg -> Alcotest.(check bool) "duration >= 0" true (seg.Engine.duration >= 0.))
    segs

let test_segs_of_plan_rejects_none () =
  let s = setup () in
  let plan = Pipeline.plan s Strategy.Ckpt_none in
  Alcotest.(check bool) "rejected" true
    (match Runner.segs_of_plan plan with exception Invalid_argument _ -> true | _ -> false)

let test_simulation_failure_free_matches_deterministic () =
  (* with pfail ~ 0 the simulated makespan equals the deterministic
     longest path of the segment DAG *)
  let dag = Spec.generate Spec.Genome ~seed:1 ~tasks:50 () in
  let s = Pipeline.prepare ~dag ~processors:5 ~pfail:1e-12 ~ccr:0.01 () in
  let plan = Pipeline.plan s Strategy.Ckpt_some in
  let sim = Runner.simulated_expected_makespan ~trials:3 plan in
  match plan.Strategy.prob_dag with
  | None -> Alcotest.fail "prob dag"
  | Some pd ->
      check_close ~eps:1e-6 "matches deterministic"
        (Ckpt_eval.Prob_dag.deterministic_makespan pd)
        sim

let test_simulation_close_to_estimate () =
  let s = setup () in
  List.iter
    (fun kind ->
      let plan = Pipeline.plan s kind in
      let est = Strategy.expected_makespan plan in
      let sim = Runner.simulated_expected_makespan ~trials:3000 plan in
      let err = abs_float (sim -. est) /. est in
      (* the first-order model is approximate; allow 5% *)
      if err > 0.05 then
        Alcotest.failf "%s: simulated %f vs estimated %f (%.1f%%)"
          (Strategy.kind_name kind) sim est (err *. 100.))
    [ Strategy.Ckpt_all; Strategy.Ckpt_some ]

let test_simulation_deterministic_per_seed () =
  let s = setup () in
  let plan = Pipeline.plan s Strategy.Ckpt_some in
  let a = Runner.simulated_expected_makespan ~trials:100 ~seed:3 plan in
  let b = Runner.simulated_expected_makespan ~trials:100 ~seed:3 plan in
  check_close "reproducible" a b

let test_simulation_monotone_in_failures () =
  (* more failures, longer expected makespan *)
  let dag = Spec.generate Spec.Genome ~seed:1 ~tasks:50 () in
  let em pfail =
    let s = Pipeline.prepare ~dag ~processors:5 ~pfail ~ccr:0.01 () in
    Runner.simulated_expected_makespan ~trials:2000 (Pipeline.plan s Strategy.Ckpt_some)
  in
  Alcotest.(check bool) "monotone" true (em 0.0001 < em 0.05)

let suite =
  [
    Alcotest.test_case "sequential" `Quick test_sequential_segments;
    Alcotest.test_case "parallel" `Quick test_parallel_segments;
    Alcotest.test_case "processor serialisation" `Quick test_processor_serialisation_without_deps;
    Alcotest.test_case "cross dependency" `Quick test_cross_dependency_wait;
    Alcotest.test_case "diamond" `Quick test_diamond_join;
    Alcotest.test_case "topological order" `Quick test_topological_order_enforced;
    Alcotest.test_case "retry statistics" `Slow test_failure_retry_statistics;
    Alcotest.test_case "zero duration" `Quick test_zero_duration_segments_immune;
    Alcotest.test_case "lambda=0 exact makespan" `Quick test_lambda_zero_exact_makespan;
    Alcotest.test_case "zero-duration segment in failing chain" `Quick
      test_zero_duration_segment_in_failing_chain;
    Alcotest.test_case "forced first-attempt failure" `Quick test_forced_first_attempt_failure;
    Alcotest.test_case "restart failure-free" `Quick test_restart_semantics_failure_free;
    Alcotest.test_case "restart statistics" `Slow test_restart_statistics;
    Alcotest.test_case "segs of plan" `Quick test_segs_of_plan_shape;
    Alcotest.test_case "segs reject CKPTNONE" `Quick test_segs_of_plan_rejects_none;
    Alcotest.test_case "failure-free = deterministic" `Quick test_simulation_failure_free_matches_deterministic;
    Alcotest.test_case "simulation vs estimate" `Slow test_simulation_close_to_estimate;
    Alcotest.test_case "simulation reproducible" `Quick test_simulation_deterministic_per_seed;
    Alcotest.test_case "monotone in failures" `Slow test_simulation_monotone_in_failures;
  ]
