(* Tests for Ckpt_dag.Dag: construction invariants, graph algorithms
   on known instances, and QCheck properties on random DAGs. *)

module Dag = Ckpt_dag.Dag
module Task = Ckpt_dag.Task
module Rng = Ckpt_prob.Rng

let diamond () =
  (*   0 -> 1 -> 3
       0 -> 2 -> 3   with weights 1,2,3,4 *)
  let d = Dag.create ~name:"diamond" () in
  let a = Dag.add_task d ~name:"a" ~weight:1. in
  let b = Dag.add_task d ~name:"b" ~weight:2. in
  let c = Dag.add_task d ~name:"c" ~weight:3. in
  let e = Dag.add_task d ~name:"d" ~weight:4. in
  Dag.add_edge d a b 10.;
  Dag.add_edge d a c 20.;
  Dag.add_edge d b e 30.;
  Dag.add_edge d c e 40.;
  d

let test_task_accessors () =
  let d = diamond () in
  Alcotest.(check int) "n_tasks" 4 (Dag.n_tasks d);
  Alcotest.(check int) "n_edges" 4 (Dag.n_edges d);
  Alcotest.(check string) "name" "b" (Dag.task d 1).Task.name;
  Alcotest.(check (float 0.)) "weight" 3. (Dag.weight d 2);
  Alcotest.(check (float 0.)) "total weight" 10. (Dag.total_weight d)

let test_task_make_rejects_negative () =
  Alcotest.check_raises "negative weight" (Invalid_argument "Task.make: negative weight")
    (fun () -> ignore (Task.make ~id:0 ~name:"x" ~weight:(-1.)))

let test_edges_and_files () =
  let d = diamond () in
  Alcotest.(check (list int)) "succs of 0" [ 1; 2 ] (Dag.succ_ids d 0);
  Alcotest.(check (list int)) "preds of 3" [ 1; 2 ] (Dag.pred_ids d 3);
  Alcotest.(check bool) "has_edge" true (Dag.has_edge d 0 1);
  Alcotest.(check bool) "no reverse edge" false (Dag.has_edge d 1 0);
  Alcotest.(check (float 0.)) "total data" 100. (Dag.total_data d)

let test_shared_file () =
  let d = Dag.create () in
  let a = Dag.add_task d ~name:"a" ~weight:1. in
  let b = Dag.add_task d ~name:"b" ~weight:1. in
  let c = Dag.add_task d ~name:"c" ~weight:1. in
  let f = Dag.add_file d ~producer:a ~size:5. in
  Dag.add_edge d ~file:f a b 0.;
  Dag.add_edge d ~file:f a c 0.;
  (* the shared file is counted once in the data volume *)
  Alcotest.(check (float 0.)) "shared file counted once" 5. (Dag.total_data d);
  match (Dag.succs d a : (Task.id * Dag.file) list) with
  | [ (_, f1); (_, f2) ] ->
      Alcotest.(check int) "same file on both edges" f1.Dag.file_id f2.Dag.file_id
  | _ -> Alcotest.fail "expected two edges"

let test_add_edge_rejections () =
  let d = diamond () in
  Alcotest.check_raises "self-loop" (Invalid_argument "Dag.add_edge: self-loop") (fun () ->
      Dag.add_edge d 1 1 1.);
  Alcotest.check_raises "duplicate" (Invalid_argument "Dag.add_edge: duplicate edge 0->1")
    (fun () -> Dag.add_edge d 0 1 1.);
  Alcotest.check_raises "producer mismatch"
    (Invalid_argument "Dag.add_edge: file producer mismatch") (fun () ->
      let f = Dag.add_file d ~producer:1 ~size:1. in
      Dag.add_edge d ~file:f 0 3 0.)

let test_inputs () =
  let d = diamond () in
  Dag.add_input d 0 7.;
  Dag.add_input d 0 3.;
  Alcotest.(check (list (float 0.))) "input sizes" [ 3.; 7. ] (Dag.inputs d 0);
  Alcotest.(check (float 0.)) "inputs in total data" 110. (Dag.total_data d);
  Dag.scale_files d 0.5;
  Alcotest.(check (float 1e-9)) "inputs scaled too" 55. (Dag.total_data d)

let test_sources_sinks () =
  let d = diamond () in
  Alcotest.(check (list int)) "sources" [ 0 ] (Dag.sources d);
  Alcotest.(check (list int)) "sinks" [ 3 ] (Dag.sinks d)

let test_topological_sort_deterministic () =
  let d = diamond () in
  let order = Dag.topological_sort d in
  Alcotest.(check (array int)) "id-ordered Kahn" [| 0; 1; 2; 3 |] order

let is_topological d order =
  let pos = Array.make (Dag.n_tasks d) (-1) in
  Array.iteri (fun k v -> pos.(v) <- k) order;
  let ok = ref true in
  for u = 0 to Dag.n_tasks d - 1 do
    List.iter (fun v -> if pos.(u) >= pos.(v) then ok := false) (Dag.succ_ids d u)
  done;
  !ok

let test_random_topological_sort_valid () =
  let d = diamond () in
  let rng = Rng.create 5 in
  for _ = 1 to 50 do
    let order = Dag.topological_sort ~rng d in
    Alcotest.(check bool) "valid order" true (is_topological d order)
  done

let test_random_topological_sort_varies () =
  let d = diamond () in
  let rng = Rng.create 5 in
  let seen = Hashtbl.create 4 in
  for _ = 1 to 50 do
    Hashtbl.replace seen (Array.to_list (Dag.topological_sort ~rng d)) ()
  done;
  (* the diamond has exactly two topological orders *)
  Alcotest.(check int) "both orders seen" 2 (Hashtbl.length seen)

let test_cycle_detection () =
  let d = Dag.create () in
  let a = Dag.add_task d ~name:"a" ~weight:1. in
  let b = Dag.add_task d ~name:"b" ~weight:1. in
  Dag.add_edge d a b 1.;
  Dag.check_acyclic d;
  (* no way to add a cycle through the public API other than reversed
     edge between existing nodes *)
  Dag.add_edge d b a 1.;
  Alcotest.check_raises "cycle found" (Invalid_argument "Dag.topological_sort: dag has a cycle")
    (fun () -> Dag.check_acyclic d)

(* --- validate --- *)

let test_validate_ok () =
  match Dag.validate (diamond ()) with
  | Ok () -> ()
  | Error vs ->
      Alcotest.failf "spurious violations: %s"
        (String.concat "; " (List.map Dag.violation_to_string vs))

let test_validate_detects_cycle () =
  let d = Dag.create () in
  let a = Dag.add_task d ~name:"a" ~weight:1. in
  let b = Dag.add_task d ~name:"b" ~weight:1. in
  Dag.add_edge d a b 1.;
  Dag.add_edge d b a 1.;
  (match Dag.validate d with
  | Ok () -> Alcotest.fail "cycle not detected"
  | Error [ Dag.Cycle ids ] -> Alcotest.(check (list int)) "trapped tasks" [ a; b ] ids
  | Error vs ->
      Alcotest.failf "unexpected violations: %s"
        (String.concat "; " (List.map Dag.violation_to_string vs)))

let test_validate_detects_bad_weight () =
  (* the builder guard rejects negatives outright, but NaN slips through
     every `< 0.` comparison — only validate can catch it *)
  let d = diamond () in
  Dag.set_weight d 1 nan;
  Dag.set_weight d 2 nan;
  match Dag.validate d with
  | Ok () -> Alcotest.fail "bad weights not detected"
  | Error vs ->
      let weights =
        List.filter_map (function Dag.Bad_weight (id, _) -> Some id | _ -> None) vs
      in
      Alcotest.(check (list int)) "both flagged" [ 1; 2 ] weights;
      List.iter
        (fun v -> Alcotest.(check bool) "message renders" true (Dag.violation_to_string v <> ""))
        vs

let test_validate_detects_bad_file_size () =
  let d = Dag.create () in
  let a = Dag.add_task d ~name:"a" ~weight:1. in
  let b = Dag.add_task d ~name:"b" ~weight:1. in
  Dag.add_edge d a b 1.;
  (* corrupt the file size through scaling with a NaN factor-free path:
     scale_files rejects negatives, so smuggle NaN via 0 * inf *)
  Dag.scale_files d infinity;
  Dag.scale_files d 0.;
  match Dag.validate d with
  | Ok () -> Alcotest.fail "NaN file size not detected"
  | Error vs ->
      Alcotest.(check bool) "bad file size flagged" true
        (List.exists (function Dag.Bad_file_size _ -> true | _ -> false) vs)

let test_longest_path () =
  let d = diamond () in
  (* longest path 0 -> 2 -> 3 = 1 + 3 + 4 *)
  Alcotest.(check (float 1e-9)) "longest path" 8. (Dag.longest_path d);
  Alcotest.(check (float 1e-9)) "hop count" 3. (Dag.longest_path ~weight:(fun _ -> 1.) d)

let test_critical_path () =
  let d = diamond () in
  Alcotest.(check (list int)) "critical path" [ 0; 2; 3 ] (Dag.critical_path d)

let test_levels () =
  let d = diamond () in
  Alcotest.(check (array int)) "levels" [| 0; 1; 1; 2 |] (Dag.levels d)

let test_transitive_closure () =
  let d = diamond () in
  let reach = Dag.transitive_closure d in
  Alcotest.(check bool) "0 reaches 3" true reach.(0).(3);
  Alcotest.(check bool) "1 not reach 2" false reach.(1).(2);
  Alcotest.(check bool) "no self reach" false reach.(0).(0)

let test_transitive_reduction () =
  let d = diamond () in
  Dag.add_edge d 0 3 5.;
  (* 0->3 is transitive, should disappear *)
  let edges = List.sort compare (Dag.transitive_reduction_edges d) in
  Alcotest.(check (list (pair int int)))
    "reduction drops 0->3"
    [ (0, 1); (0, 2); (1, 3); (2, 3) ]
    edges

let test_copy_isolated () =
  let d = diamond () in
  let d2 = Dag.copy d in
  Dag.add_edge d2 0 3 99.;
  Dag.set_weight d2 0 100.;
  Alcotest.(check int) "original edges" 4 (Dag.n_edges d);
  Alcotest.(check int) "copy edges" 5 (Dag.n_edges d2);
  Alcotest.(check (float 0.)) "original weight" 1. (Dag.weight d 0)

let test_induced () =
  let d = diamond () in
  let sub, mapping = Dag.induced d [ 0; 1; 3 ] in
  Alcotest.(check int) "3 tasks" 3 (Dag.n_tasks sub);
  Alcotest.(check int) "2 internal edges" 2 (Dag.n_edges sub);
  Alcotest.(check (array int)) "mapping" [| 0; 1; 3 |] mapping

let test_scale_files () =
  let d = diamond () in
  Dag.scale_files d 0.1;
  Alcotest.(check (float 1e-9)) "scaled" 10. (Dag.total_data d)

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  scan 0

let test_to_dot_contains_nodes () =
  let dot = Dag.to_dot (diamond ()) in
  Alcotest.(check bool) "mentions edge" true (contains_substring dot "n0 -> n1");
  Alcotest.(check bool) "mentions node label" true (contains_substring dot "a#0")

(* --- QCheck: random DAG properties --- *)

let random_dag seed n =
  let rng = Rng.create seed in
  let d = Dag.create ~name:"random" () in
  for i = 0 to n - 1 do
    ignore (Dag.add_task d ~name:(Printf.sprintf "t%d" i) ~weight:(1. +. Rng.float rng 9.))
  done;
  for u = 0 to n - 2 do
    for v = u + 1 to n - 1 do
      if Rng.uniform rng < 0.2 then Dag.add_edge d u v (Rng.float rng 100.)
    done
  done;
  d

let prop_topo_valid =
  QCheck.Test.make ~name:"random DAG topological sort is valid" ~count:50
    QCheck.(pair small_nat (int_range 1 30))
    (fun (seed, n) ->
      let d = random_dag seed n in
      is_topological d (Dag.topological_sort d))

let prop_longest_path_bounds =
  QCheck.Test.make ~name:"max weight <= longest path <= total weight" ~count:50
    QCheck.(pair small_nat (int_range 1 30))
    (fun (seed, n) ->
      let d = random_dag seed n in
      let lp = Dag.longest_path d in
      let maxw = Array.fold_left (fun acc t -> Float.max acc t.Task.weight) 0. (Dag.tasks d) in
      lp >= maxw -. 1e-9 && lp <= Dag.total_weight d +. 1e-9)

let prop_reduction_preserves_reachability =
  QCheck.Test.make ~name:"transitive reduction preserves reachability" ~count:30
    QCheck.(pair small_nat (int_range 2 15))
    (fun (seed, n) ->
      let d = random_dag seed n in
      let reach = Dag.transitive_closure d in
      (* rebuild a DAG from the reduced edges *)
      let r = Dag.create () in
      for _ = 0 to n - 1 do
        ignore (Dag.add_task r ~name:"x" ~weight:1.)
      done;
      List.iter (fun (u, v) -> Dag.add_edge r u v 1.) (Dag.transitive_reduction_edges d);
      let reach' = Dag.transitive_closure r in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if reach.(u).(v) <> reach'.(u).(v) then ok := false
        done
      done;
      !ok)

let prop_critical_path_sums_to_longest =
  QCheck.Test.make ~name:"critical path weights sum to longest path" ~count:50
    QCheck.(pair small_nat (int_range 1 25))
    (fun (seed, n) ->
      let d = random_dag seed n in
      let path = Dag.critical_path d in
      let total = List.fold_left (fun acc t -> acc +. Dag.weight d t) 0. path in
      abs_float (total -. Dag.longest_path d) < 1e-9)

let suite =
  [
    Alcotest.test_case "task accessors" `Quick test_task_accessors;
    Alcotest.test_case "task rejects negative weight" `Quick test_task_make_rejects_negative;
    Alcotest.test_case "edges and files" `Quick test_edges_and_files;
    Alcotest.test_case "shared files" `Quick test_shared_file;
    Alcotest.test_case "add_edge rejections" `Quick test_add_edge_rejections;
    Alcotest.test_case "initial inputs" `Quick test_inputs;
    Alcotest.test_case "sources/sinks" `Quick test_sources_sinks;
    Alcotest.test_case "deterministic topo sort" `Quick test_topological_sort_deterministic;
    Alcotest.test_case "random topo sort valid" `Quick test_random_topological_sort_valid;
    Alcotest.test_case "random topo sort varies" `Quick test_random_topological_sort_varies;
    Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
    Alcotest.test_case "validate ok" `Quick test_validate_ok;
    Alcotest.test_case "validate detects cycle" `Quick test_validate_detects_cycle;
    Alcotest.test_case "validate detects bad weight" `Quick test_validate_detects_bad_weight;
    Alcotest.test_case "validate detects bad file size" `Quick
      test_validate_detects_bad_file_size;
    Alcotest.test_case "longest path" `Quick test_longest_path;
    Alcotest.test_case "critical path" `Quick test_critical_path;
    Alcotest.test_case "levels" `Quick test_levels;
    Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
    Alcotest.test_case "transitive reduction" `Quick test_transitive_reduction;
    Alcotest.test_case "copy isolation" `Quick test_copy_isolated;
    Alcotest.test_case "induced subgraph" `Quick test_induced;
    Alcotest.test_case "scale files" `Quick test_scale_files;
    Alcotest.test_case "dot output" `Quick test_to_dot_contains_nodes;
    QCheck_alcotest.to_alcotest prop_topo_valid;
    QCheck_alcotest.to_alcotest prop_longest_path_bounds;
    QCheck_alcotest.to_alcotest prop_reduction_preserves_reachability;
    QCheck_alcotest.to_alcotest prop_critical_path_sums_to_longest;
  ]
