(* Tests for the multicore Monte-Carlo engine: the domain pool, the
   compiled CSR prob-DAG against a straightforward list-based reference
   implementation, and the bitwise jobs-invariance guarantees of
   Montecarlo and Runner. *)

module Rng = Ckpt_prob.Rng
module Stats = Ckpt_prob.Stats
module Prob_dag = Ckpt_eval.Prob_dag
module Montecarlo = Ckpt_eval.Montecarlo
module Pool = Ckpt_parallel.Pool

(* --- Pool --- *)

let test_pool_map_identity () =
  let r = Pool.map ~jobs:4 100 (fun i -> i * i) in
  Alcotest.(check (array int)) "map" (Array.init 100 (fun i -> i * i)) r

let test_pool_map_propagates_exception () =
  match Pool.map ~jobs:3 50 (fun i -> if i = 17 then failwith "boom" else i) with
  | exception Failure m -> Alcotest.(check string) "message" "boom" m
  | _ -> Alcotest.fail "expected Failure"

exception Boom of int

(* A worker raising mid-map must join every domain before the exception
   reaches the caller, preserve the first exception together with its
   backtrace, and leave the pool immediately reusable. *)
let test_pool_map_exception_joins_and_reuse () =
  Printexc.record_backtrace true;
  let running = Atomic.make 0 in
  let raised =
    try
      ignore
        (Pool.map ~jobs:4 64 (fun i ->
             Atomic.incr running;
             Fun.protect
               ~finally:(fun () -> Atomic.decr running)
               (fun () ->
                 if i = 17 then raise (Boom i);
                 Sys.opaque_identity i)));
      false
    with Boom 17 ->
      let bt = Printexc.get_raw_backtrace () in
      Alcotest.(check bool) "backtrace preserved" true (Printexc.raw_backtrace_length bt > 0);
      true
  in
  Alcotest.(check bool) "the one raised exception propagated" true raised;
  (* joined domains cannot still be inside the worker body *)
  Alcotest.(check int) "all workers quiesced" 0 (Atomic.get running);
  (* the pool keeps no state across regions: a failed map leaves it usable *)
  let r = Pool.map ~jobs:4 32 (fun i -> i + 1) in
  Alcotest.(check (array int)) "pool reusable after failure" (Array.init 32 (fun i -> i + 1)) r;
  Alcotest.(check int) "sequential path too" 0
    (try Pool.map ~jobs:1 4 (fun i -> if i = 2 then raise (Boom i) else i) |> Array.length
     with Boom 2 -> 0)

let test_pool_run_workers_distinct () =
  let seen = Array.make 4 false in
  Pool.run ~jobs:4 (fun ~worker -> seen.(worker) <- true);
  Alcotest.(check (array bool)) "all workers ran" [| true; true; true; true |] seen

(* --- reference prob-DAG: adjacency lists, no CSR, no scratch --- *)

type ref_node = { base : float; degraded : float; pfail : float }
type ref_dag = { nodes : ref_node array; edges : (int * int) list }

(* random 2-state DAG with edges only from lower to higher ids *)
let random_ref seed n =
  let rng = Rng.create seed in
  let nodes =
    Array.init n (fun _ ->
        let base = 1. +. Rng.float rng 9. in
        { base; degraded = base *. 1.5; pfail = Rng.float rng 0.5 })
  in
  let edges = ref [] in
  for u = 0 to n - 2 do
    for v = u + 1 to n - 1 do
      if Rng.uniform rng < 0.25 then edges := (u, v) :: !edges
    done
  done;
  { nodes; edges = !edges }

let build_prob_dag r =
  let pd = Prob_dag.create () in
  Array.iter
    (fun nd -> ignore (Prob_dag.add_node pd ~base:nd.base ~degraded:nd.degraded ~pfail:nd.pfail))
    r.nodes;
  List.iter (fun (u, v) -> Prob_dag.add_edge pd u v) r.edges;
  pd

(* longest path over explicit durations; ids are already topological *)
let ref_longest r dur =
  let n = Array.length r.nodes in
  let dist = Array.make n 0. in
  List.iter (fun (u, v) -> if dist.(u) +. dur.(u) > dist.(v) then dist.(v) <- dist.(u) +. dur.(u))
    (List.sort compare r.edges);
  let best = ref 0. in
  for i = 0 to n - 1 do
    if dist.(i) +. dur.(i) > !best then best := dist.(i) +. dur.(i)
  done;
  !best

(* mirrors the documented draw semantics of [Prob_dag.sample]: seed a
   bulk stream from the rng, then one stream_uniform per node with
   pfail > 0, in node-id order *)
let ref_sample r rng =
  let st = Rng.stream rng in
  let dur =
    Array.map
      (fun nd ->
        if nd.pfail > 0. && Rng.stream_uniform st < nd.pfail then nd.degraded else nd.base)
      r.nodes
  in
  ref_longest r dur

let prop_csr_matches_reference =
  QCheck.Test.make ~name:"CSR sample/makespan/topo match list-based reference" ~count:40
    QCheck.(pair small_nat (int_range 1 25))
    (fun (seed, n) ->
      let r = random_ref seed n in
      let pd = build_prob_dag r in
      (* deterministic makespan is the longest path at base durations *)
      let det_ok =
        Prob_dag.deterministic_makespan pd
        = ref_longest r (Array.map (fun nd -> nd.base) r.nodes)
      in
      (* the topological order respects every edge *)
      let order = Prob_dag.topological_order pd in
      let pos = Array.make n 0 in
      Array.iteri (fun k u -> pos.(u) <- k) order;
      let topo_ok = List.for_all (fun (u, v) -> pos.(u) < pos.(v)) r.edges in
      (* identical sample streams from identically-seeded generators *)
      let ra = Rng.create (seed + 1) and rb = Rng.create (seed + 1) in
      let samples_ok = ref true in
      for _ = 1 to 20 do
        if Prob_dag.sample pd ra <> ref_sample r rb then samples_ok := false
      done;
      det_ok && topo_ok && !samples_ok)

let test_duplicate_edges_deduplicated () =
  let pd = Prob_dag.create () in
  let a = Prob_dag.add_node pd ~base:1. ~degraded:2. ~pfail:0.1 in
  let b = Prob_dag.add_node pd ~base:1. ~degraded:2. ~pfail:0.1 in
  let c = Prob_dag.add_node pd ~base:1. ~degraded:2. ~pfail:0.1 in
  for _ = 1 to 500 do
    Prob_dag.add_edge pd a c;
    Prob_dag.add_edge pd a b
  done;
  Alcotest.(check (list int)) "succs sorted + deduped" [ b; c ] (Prob_dag.succs pd a);
  Alcotest.(check (list int)) "preds deduped" [ a ] (Prob_dag.preds pd c);
  Alcotest.(check (float 0.)) "makespan unaffected" 2. (Prob_dag.deterministic_makespan pd)

(* --- jobs-invariance --- *)

let check_stats_bitwise what a b =
  Alcotest.(check int) (what ^ " count") (Stats.count a) (Stats.count b);
  Alcotest.(check (float 0.)) (what ^ " mean") (Stats.mean a) (Stats.mean b);
  Alcotest.(check (float 0.)) (what ^ " variance") (Stats.variance a) (Stats.variance b);
  Alcotest.(check (float 0.)) (what ^ " min") (Stats.min a) (Stats.min b);
  Alcotest.(check (float 0.)) (what ^ " max") (Stats.max a) (Stats.max b)

let prop_estimate_jobs_invariant =
  (* trials straddle several 128-trial chunks, including a ragged tail *)
  QCheck.Test.make ~name:"Montecarlo.estimate_with_stats is bitwise jobs-invariant"
    ~count:15
    QCheck.(triple small_nat (int_range 2 18) (int_range 2 4))
    (fun (seed, n, jobs) ->
      let pd = build_prob_dag (random_ref seed n) in
      let seq = Montecarlo.estimate_with_stats ~trials:700 ~seed ~jobs:1 pd in
      let par = Montecarlo.estimate_with_stats ~trials:700 ~seed ~jobs pd in
      Stats.count seq = Stats.count par
      && Stats.mean seq = Stats.mean par
      && Stats.variance seq = Stats.variance par
      && Stats.min seq = Stats.min par
      && Stats.max seq = Stats.max par)

let test_estimate_jobs_invariant_large () =
  let dag = Ckpt_workflows.Spec.generate Ckpt_workflows.Spec.Genome ~seed:1 ~tasks:50 () in
  let setup = Ckpt_core.Pipeline.prepare ~dag ~processors:5 ~pfail:0.001 ~ccr:0.01 () in
  let plan = Ckpt_core.Pipeline.plan setup Ckpt_core.Strategy.Ckpt_some in
  let pd = Option.get plan.Ckpt_core.Strategy.prob_dag in
  let seq = Montecarlo.estimate_with_stats ~trials:1000 ~seed:3 ~jobs:1 pd in
  let par = Montecarlo.estimate_with_stats ~trials:1000 ~seed:3 ~jobs:4 pd in
  check_stats_bitwise "genome-50" seq par

let test_runner_jobs_invariant () =
  let dag = Ckpt_workflows.Spec.generate Ckpt_workflows.Spec.Genome ~seed:1 ~tasks:50 () in
  let setup = Ckpt_core.Pipeline.prepare ~dag ~processors:5 ~pfail:0.001 ~ccr:0.01 () in
  List.iter
    (fun kind ->
      let plan = Ckpt_core.Pipeline.plan setup kind in
      let seq = Ckpt_sim.Runner.sample_makespans ~trials:300 ~seed:5 ~jobs:1 plan in
      List.iter
        (fun jobs ->
          let par = Ckpt_sim.Runner.sample_makespans ~trials:300 ~seed:5 ~jobs plan in
          if seq <> par then
            Alcotest.failf "sample_makespans differs between jobs=1 and jobs=%d" jobs)
        [ 2; 3; 4 ])
    [ Ckpt_core.Strategy.Ckpt_some; Ckpt_core.Strategy.Ckpt_none ]

let test_for_trial_pure () =
  let a = Rng.for_trial ~seed:42 17 and b = Rng.for_trial ~seed:42 17 in
  Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b);
  let c = Rng.for_trial ~seed:42 18 in
  if Rng.bits64 (Rng.for_trial ~seed:42 17) = Rng.bits64 c then
    Alcotest.fail "adjacent trials share their first output"

let test_stream_threshold_equivalence () =
  (* the integer-threshold compare used by the sampler agrees with the
     documented float form on either side of representable boundaries *)
  List.iter
    (fun p ->
      let th = int_of_float (Float.ceil (p *. 0x1p53)) in
      let st_a = Rng.stream (Rng.create 9) and st_b = Rng.stream (Rng.create 9) in
      for _ = 1 to 1000 do
        let ia = Rng.stream_bits53 st_a < th and fa = Rng.stream_uniform st_b < p in
        if ia <> fa then Alcotest.failf "threshold mismatch at p=%.17g" p
      done)
    [ 0.; 1e-300; 0.25; 0.5; 1. /. 3.; 0.9999999; 1. ]

let suite =
  [
    Alcotest.test_case "pool map identity" `Quick test_pool_map_identity;
    Alcotest.test_case "pool map propagates exception" `Quick test_pool_map_propagates_exception;
    Alcotest.test_case "pool map exception joins + reuse" `Quick
      test_pool_map_exception_joins_and_reuse;
    Alcotest.test_case "pool run workers distinct" `Quick test_pool_run_workers_distinct;
    QCheck_alcotest.to_alcotest prop_csr_matches_reference;
    Alcotest.test_case "duplicate edges deduplicated" `Quick test_duplicate_edges_deduplicated;
    QCheck_alcotest.to_alcotest prop_estimate_jobs_invariant;
    Alcotest.test_case "estimate jobs-invariant (genome)" `Quick test_estimate_jobs_invariant_large;
    Alcotest.test_case "runner jobs-invariant" `Quick test_runner_jobs_invariant;
    Alcotest.test_case "for_trial is pure" `Quick test_for_trial_pure;
    Alcotest.test_case "stream threshold equivalence" `Quick test_stream_threshold_equivalence;
  ]
