(* Tests for Ckpt_storage and the storage-aware simulators: config
   validation, the reliable-is-bitwise-free guarantee, --jobs
   invariance under faults, the cascading-rollback invariant (the
   engine re-executes exactly the producers whose recovery line was
   invalidated), and the k-replication crossover. *)

module Storage = Ckpt_storage.Storage
module Store = Ckpt_storage.Store
module Engine = Ckpt_sim.Engine
module Runner = Ckpt_sim.Runner
module Contention = Ckpt_sim.Contention
module Degrade = Ckpt_sim.Degrade
module Failure = Ckpt_platform.Failure
module Platform = Ckpt_platform.Platform
module Rng = Ckpt_prob.Rng
module Stats = Ckpt_prob.Stats
module Strategy = Ckpt_core.Strategy
module Pipeline = Ckpt_core.Pipeline
module Retry = Ckpt_resilience.Retry
module Spec = Ckpt_workflows.Spec

let rejects msg config =
  Alcotest.(check bool) msg true
    (match Storage.validate config with exception Invalid_argument _ -> true | () -> false)

let test_validate () =
  Storage.validate Storage.default;
  rejects "commit_fail_prob = 1" { Storage.default with Storage.commit_fail_prob = 1. };
  rejects "negative corrupt_prob" { Storage.default with Storage.corrupt_prob = -0.1 };
  rejects "corrupt_prob = 1" { Storage.default with Storage.corrupt_prob = 1. };
  rejects "negative storage_lambda" { Storage.default with Storage.storage_lambda = -1. };
  rejects "outage_rate without mean" { Storage.default with Storage.outage_rate = 0.1 };
  rejects "replicas < 1" { Storage.default with Storage.replicas = 0 };
  Storage.validate
    { Storage.default with Storage.outage_rate = 0.1; outage_mean = 2.; replicas = 3 }

let test_reliable () =
  Alcotest.(check bool) "default reliable" true (Storage.reliable Storage.default);
  Alcotest.(check bool) "replicas alone stays reliable" true
    (Storage.reliable { Storage.default with Storage.replicas = 4 });
  List.iter
    (fun (msg, c) -> Alcotest.(check bool) msg false (Storage.reliable c))
    [
      ("commit failures", { Storage.default with Storage.commit_fail_prob = 0.1 });
      ("latent corruption", { Storage.default with Storage.corrupt_prob = 0.1 });
      ("bit rot", { Storage.default with Storage.storage_lambda = 0.1 });
      ("outages", { Storage.default with Storage.outage_rate = 0.1; outage_mean = 1. });
    ]

(* a memory-backed store carrying a given fault config — the Store
   wrapper around what used to be passed as ~storage *)
let store_of faults = { Store.default with Store.faults }

let plan_of ?(tasks = 40) ?replicas kind =
  let dag = Spec.generate Spec.Genome ~seed:1 ~tasks () in
  let setup = Pipeline.prepare ~dag ~processors:4 ~pfail:0.002 ~ccr:0.2 () in
  Pipeline.plan ?replicas setup kind

(* the central bitwise guarantee: a reliable config draws nothing, so
   the storage-aware sampler reproduces the fault-free one exactly *)
let test_reliable_bitwise () =
  List.iter
    (fun kind ->
      let plan = plan_of kind in
      let plain = Runner.sample_makespans ~trials:200 ~seed:11 plan in
      let stored =
        Runner.sample_storage ~trials:200 ~seed:11 ~store:Store.default plan
      in
      Alcotest.(check int) "same trial count" (Array.length plain) (Array.length stored);
      Array.iteri
        (fun i t ->
          if t.Runner.makespan <> plain.(i) then
            Alcotest.failf "trial %d: storage %.17g <> plain %.17g" i t.Runner.makespan
              plain.(i);
          Alcotest.(check int) "no retries" 0 t.Runner.commit_retries;
          Alcotest.(check int) "no corrupt reads" 0 t.Runner.corrupt_reads;
          Alcotest.(check int) "no rollbacks" 0 t.Runner.rollbacks)
        stored)
    [ Strategy.Ckpt_all; Strategy.Ckpt_some ]

let faulty_config =
  {
    Storage.default with
    Storage.commit_fail_prob = 0.15;
    corrupt_prob = 0.1;
    storage_lambda = 1e-4;
    outage_rate = 1e-3;
    outage_mean = 5.;
  }

let test_jobs_invariant () =
  let plan = plan_of Strategy.Ckpt_some in
  let sample jobs = Runner.sample_storage ~trials:96 ~seed:3 ~jobs ~store:(store_of faulty_config) plan in
  let s1 = sample 1 and s4 = sample 4 in
  Array.iteri
    (fun i t ->
      let u = s4.(i) in
      if
        t.Runner.makespan <> u.Runner.makespan
        || t.Runner.commit_retries <> u.Runner.commit_retries
        || t.Runner.corrupt_reads <> u.Runner.corrupt_reads
        || t.Runner.rollbacks <> u.Runner.rollbacks
      then Alcotest.failf "trial %d differs between jobs=1 and jobs=4" i)
    s1

(* faults genuinely fire on this config — guards against the fault
   channels silently never engaging (which would make the bitwise
   tests vacuous) *)
let test_faults_fire () =
  let plan = plan_of Strategy.Ckpt_all in
  let sample = Runner.sample_storage ~trials:200 ~seed:3 ~store:(store_of faulty_config) plan in
  let total f = Array.fold_left (fun acc t -> acc + f t) 0 sample in
  Alcotest.(check bool) "commit retries happened" true (total (fun t -> t.Runner.commit_retries) > 0);
  Alcotest.(check bool) "corrupt reads happened" true (total (fun t -> t.Runner.corrupt_reads) > 0);
  Alcotest.(check bool) "rollbacks happened" true (total (fun t -> t.Runner.rollbacks) > 0);
  let mean =
    Array.fold_left (fun acc t -> acc +. t.Runner.makespan) 0. sample
    /. float_of_int (Array.length sample)
  in
  let plain = Runner.sample_makespans ~trials:200 ~seed:3 plan in
  let plain_mean = Array.fold_left ( +. ) 0. plain /. float_of_int (Array.length plain) in
  Alcotest.(check bool) "faults cost time" true (mean > plain_mean)

(* engine-level: execute_storage with a reliable state reproduces
   execute on the same traces, bitwise *)
let test_engine_reliable_identity () =
  let plan = plan_of Strategy.Ckpt_some in
  let segs = Runner.segs_of_plan plan in
  let writes = Runner.writes_of_plan plan in
  let trace_of seed _ =
    (* fresh trace table per execution so both runs see identical draws *)
    let tbl = Hashtbl.create 8 in
    fun p ->
      ignore seed;
      match Hashtbl.find_opt tbl p with
      | Some t -> t
      | None ->
          let t = Failure.create (Rng.for_trial ~seed p) ~lambda:0.002 in
          Hashtbl.add tbl p t;
          t
  in
  for seed = 1 to 5 do
    let _, plain = Engine.execute segs ((trace_of seed) ()) in
    let st = Store.create Store.default (Rng.create 999) in
    let run = Engine.execute_storage segs ~write:writes ((trace_of seed) ()) ~store:st in
    if run.Engine.sfinish <> plain then
      Alcotest.failf "seed %d: storage %.17g <> plain %.17g" seed run.Engine.sfinish plain;
    Alcotest.(check (list int)) "no rollbacks" [] run.Engine.rollback_log
  done

(* the cascading-rollback invariant (QCheck): the engine re-executes
   exactly the producing segments whose recovery read failed — the
   rollback log IS the storage's failed-read log *)
let qcheck_rollback_matches_failed_reads =
  QCheck.Test.make ~count:60 ~name:"rollback log = invalidated recovery lines"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 3 + Rng.int rng 10 in
      let procs = 1 + Rng.int rng 3 in
      (* random layered DAG: each segment depends on a random subset of
         the previous two segments, runs on a random processor *)
      let segs =
        Array.init n (fun i ->
            let preds =
              List.filter (fun p -> p >= 0 && Rng.uniform rng < 0.6) [ i - 1; i - 2 ]
            in
            { Engine.processor = Rng.int rng procs;
              duration = 1. +. Rng.float rng 10.;
              preds })
      in
      let writes = Array.init n (fun _ -> 0.1 +. Rng.float rng 2.) in
      let config =
        {
          Storage.default with
          Storage.commit_fail_prob = Rng.float rng 0.3;
          corrupt_prob = Rng.float rng 0.4;
          storage_lambda = Rng.float rng 0.01;
          replicas = 1 + Rng.int rng 3;
        }
      in
      let st = Store.create (store_of config) (Rng.split rng) in
      let traces = Hashtbl.create 8 in
      let trace p =
        match Hashtbl.find_opt traces p with
        | Some t -> t
        | None ->
            let t = Failure.create (Rng.split rng) ~lambda:0.01 in
            Hashtbl.add traces p t;
            t
      in
      let run = Engine.execute_storage segs ~write:writes trace ~store:st in
      run.Engine.rollback_log = Store.failed_reads st
      && List.for_all (fun s -> s >= 0 && s < n) run.Engine.rollback_log)

(* replication helps where it should: at high corruption, k=3 sees far
   fewer corrupt recovery reads than k=1, and k=2 commits beat k=1 on
   expected makespan (the storm crossover) *)
let test_replication_crossover () =
  let corrupt = { Storage.default with Storage.corrupt_prob = 0.2 } in
  let em_and_corrupt k =
    let plan = plan_of ~replicas:k Strategy.Ckpt_all in
    let sample =
      Runner.sample_storage ~trials:200 ~seed:5
        ~store:(store_of { corrupt with Storage.replicas = k })
        plan
    in
    let n = float_of_int (Array.length sample) in
    ( Array.fold_left (fun acc t -> acc +. t.Runner.makespan) 0. sample /. n,
      Array.fold_left (fun acc t -> acc + t.Runner.corrupt_reads) 0 sample )
  in
  let em1, cr1 = em_and_corrupt 1 in
  let em2, _ = em_and_corrupt 2 in
  let _, cr3 = em_and_corrupt 3 in
  Alcotest.(check bool) "k=3 sees fewer corrupt reads than k=1" true (cr3 * 4 < cr1);
  Alcotest.(check bool) "k=2 beats k=1 at corrupt_prob=0.2" true (em2 < em1)

(* the planner prices replication: k=1 reproduces the default plan
   bitwise, and planned EM is monotone in k (a k-replica solution is
   always available to the k=1 planner at lower commit cost) *)
let test_replicas_pricing () =
  let em plan =
    Ckpt_eval.Evaluator.estimate Ckpt_eval.Evaluator.Normal
      (Option.get plan.Strategy.prob_dag)
  in
  let p_default = plan_of Strategy.Ckpt_some in
  let p1 = plan_of ~replicas:1 Strategy.Ckpt_some in
  Alcotest.(check int) "k=1 same checkpoint count" p_default.Strategy.checkpoint_count
    p1.Strategy.checkpoint_count;
  Alcotest.(check bool) "k=1 same segments" true
    (p_default.Strategy.segments = p1.Strategy.segments);
  Alcotest.(check (float 0.)) "k=1 same planned EM" (em p_default) (em p1);
  let p4 = plan_of ~replicas:4 Strategy.Ckpt_some in
  Alcotest.(check int) "replicas recorded" 4 p4.Strategy.replicas;
  Alcotest.(check bool) "k=4 planned EM no cheaper" true (em p4 >= em p1)

(* contention simulator: a reliable storage config draws nothing and
   reproduces the storage-free statistics bitwise *)
let test_contention_reliable_bitwise () =
  let plan = plan_of Strategy.Ckpt_all in
  let plain = Contention.simulate ~trials:60 ~seed:5 plan in
  let stored = Contention.simulate ~trials:60 ~seed:5 ~store:Store.default plan in
  Alcotest.(check (float 0.)) "mean" (Stats.mean plain) (Stats.mean stored);
  Alcotest.(check (float 0.)) "stddev" (Stats.stddev plain) (Stats.stddev stored)

(* contention simulator: faults engage and cost time *)
let test_contention_faults_cost () =
  let plan = plan_of Strategy.Ckpt_all in
  let plain = Contention.simulate ~trials:60 ~seed:5 plan in
  let stored =
    Contention.simulate ~trials:60 ~seed:5
      ~store:
        (store_of
           { Storage.default with Storage.corrupt_prob = 0.15; commit_fail_prob = 0.1 })
      plan
  in
  Alcotest.(check bool) "faults cost time under contention" true
    (Stats.mean stored > Stats.mean plain)

(* degraded mode: the default storage config reproduces the legacy
   sample bitwise (the storage split draws nothing), and corruption
   surfaces in the rollback/invalidated counters *)
let test_degrade_storage () =
  let plan = plan_of Strategy.Ckpt_some in
  let lambda_death =
    Platform.lambda_of_pfail ~pfail:0.2 ~mean_weight:plan.Strategy.wpar
  in
  let config =
    { Degrade.lambda_death; max_losses = 1; kind = Strategy.Ckpt_some;
      store = Store.default }
  in
  let base = Degrade.sample ~trials:40 ~seed:9 ~mode:Degrade.Repair config plan in
  let again = Degrade.sample ~trials:40 ~seed:9 ~mode:Degrade.Repair config plan in
  Array.iteri
    (fun i (t : Degrade.trial) ->
      if t.Degrade.makespan <> again.(i).Degrade.makespan then
        Alcotest.failf "trial %d not deterministic" i;
      Alcotest.(check int) "no rollbacks when reliable" 0 t.Degrade.rollbacks;
      Alcotest.(check int) "no invalidations when reliable" 0 t.Degrade.invalidated)
    base;
  let faulty =
    { config with Degrade.store = store_of { Storage.default with Storage.corrupt_prob = 0.25 } }
  in
  let stormy = Degrade.sample ~trials:40 ~seed:9 ~mode:Degrade.Repair faulty plan in
  let total f = Array.fold_left (fun acc t -> acc + f t) 0 stormy in
  Alcotest.(check bool) "corruption surfaces in degrade counters" true
    (total (fun (t : Degrade.trial) -> t.Degrade.rollbacks + t.Degrade.invalidated) > 0);
  let s1 = Degrade.sample ~trials:40 ~seed:9 ~jobs:1 ~mode:Degrade.Repair faulty plan in
  let s4 = Degrade.sample ~trials:40 ~seed:9 ~jobs:4 ~mode:Degrade.Repair faulty plan in
  Array.iteri
    (fun i (t : Degrade.trial) ->
      if t.Degrade.makespan <> s4.(i).Degrade.makespan then
        Alcotest.failf "degrade trial %d differs between jobs=1 and jobs=4" i)
    s1

(* commit wall-clock accounting: with commit_fail_prob = 0 the commit
   is free (Ok at the write's end) and draws nothing; exhaustion
   surfaces as Error *)
let test_commit_accounting () =
  let st = Storage.create Storage.default (Rng.create 3) in
  (match Storage.commit st ~seg:0 ~write:2. ~at:10. with
  | Ok (done_at, ck) ->
      Alcotest.(check (float 0.)) "free commit" 10. done_at;
      Alcotest.(check int) "seg recorded" 0 (Storage.seg_of ck);
      Alcotest.(check bool) "valid forever" true (Storage.valid_at ck ~at:1e12)
  | Error _ -> Alcotest.fail "reliable commit failed");
  (* near-certain failure with a tiny budget: exhaustion is an Error
     and the counters record the attempts *)
  let doomed =
    {
      Storage.default with
      Storage.commit_fail_prob = 0.999;
      backoff = { Retry.default with Retry.max_attempts = 2 };
    }
  in
  let st = Storage.create doomed (Rng.create 3) in
  let exhausted = ref 0 in
  for seg = 0 to 49 do
    match Storage.commit st ~seg ~write:1. ~at:0. with
    | Error give_up_at ->
        incr exhausted;
        Alcotest.(check bool) "give-up instant moved forward" true (give_up_at > 0.)
    | Ok _ -> ()
  done;
  Alcotest.(check bool) "exhaustion dominates at p=0.999" true (!exhausted >= 45);
  let stats = Storage.stats st in
  Alcotest.(check int) "commit count" 50 stats.Storage.commits;
  Alcotest.(check int) "exhaustions counted" !exhausted stats.Storage.commit_exhausted

let suite =
  [
    Alcotest.test_case "config: validate" `Quick test_validate;
    Alcotest.test_case "config: reliable" `Quick test_reliable;
    Alcotest.test_case "runner: reliable is bitwise-free" `Quick test_reliable_bitwise;
    Alcotest.test_case "runner: jobs invariant under faults" `Quick test_jobs_invariant;
    Alcotest.test_case "runner: faults fire and cost time" `Quick test_faults_fire;
    Alcotest.test_case "engine: reliable identity" `Quick test_engine_reliable_identity;
    QCheck_alcotest.to_alcotest qcheck_rollback_matches_failed_reads;
    Alcotest.test_case "replication crossover" `Quick test_replication_crossover;
    Alcotest.test_case "planner prices replication" `Quick test_replicas_pricing;
    Alcotest.test_case "contention: reliable is bitwise-free" `Quick
      test_contention_reliable_bitwise;
    Alcotest.test_case "contention: faults cost time" `Quick test_contention_faults_cost;
    Alcotest.test_case "degrade: storage composition" `Quick test_degrade_storage;
    Alcotest.test_case "commit accounting" `Quick test_commit_accounting;
  ]
