(* Tests for Ckpt_analytic: the closed-form expected-makespan engine,
   the RESTART / hybrid strategies it prices, and the analytic-vs-MC
   cross-validation that licenses `--eval analytic` as a drop-in for
   the Monte-Carlo sweep path.

   Calibration note on the agreement bounds. The Monte-Carlo 95%
   confidence interval excludes the *true* expectation 5% of the time
   by construction, so "analytic inside the MC CI" over randomised
   inputs is flaky even for an exact evaluator (measured: the exact
   series-parallel calculus lands outside the CI on ~7% of random
   M-SPG seeds). The randomised properties therefore use three
   half-widths (~5.9 sigma, per-case flake probability ~4e-9; worst
   observed gap over 600 probed seeds was 1.75 half-widths), while
   strict CI containment is asserted on pinned deterministic
   configurations where it was verified to hold — the same claim the
   tracked sweep bench enforces on every cell it times. *)

module Dag = Ckpt_dag.Dag
module Mspg = Ckpt_mspg.Mspg
module Random_wf = Ckpt_workflows.Random_wf
module Spec = Ckpt_workflows.Spec
module Platform = Ckpt_platform.Platform
module Placement = Ckpt_core.Placement
module Pipeline = Ckpt_core.Pipeline
module Strategy = Ckpt_core.Strategy
module Schedule = Ckpt_core.Schedule
module Superchain = Ckpt_core.Superchain
module Prob_dag = Ckpt_eval.Prob_dag
module Pathapprox = Ckpt_eval.Pathapprox
module Montecarlo = Ckpt_eval.Montecarlo
module Ckptnone = Ckpt_eval.Ckptnone
module Stats = Ckpt_prob.Stats
module Runner = Ckpt_sim.Runner
module Analytic = Ckpt_analytic.Analytic

let check_close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps *. (1. +. abs_float expected) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

let random_setup seed =
  let m = Random_wf.generate ~seed ~max_tasks:35 () in
  Pipeline.prepare ~dag:m.Mspg.dag
    ~processors:(1 + (seed mod 7))
    ~pfail:0.005 ~ccr:0.3 ()

let chain_dag ?(n = 12) () =
  let d = Dag.create ~name:"chain" () in
  let prev = ref None in
  for i = 0 to n - 1 do
    let t =
      Dag.add_task d ~name:(Printf.sprintf "t%d" i) ~weight:(10. +. float_of_int i)
    in
    (match !prev with Some p -> Dag.add_edge d p t 1. | None -> ());
    prev := Some t
  done;
  d

let chain_setup ?n ?(pfail = 0.02) ?(ccr = 0.1) () =
  Pipeline.prepare ~dag:(chain_dag ?n ()) ~processors:1 ~pfail ~ccr ()

(* --- per-segment kernels ---------------------------------------- *)

let test_segment_time () =
  (* reliable processor: both models are the raw duration *)
  check_close "first-order, lambda=0" 7.5
    (Analytic.segment_time Analytic.First_order ~lambda:0. 7.5);
  check_close "exact, lambda=0" 7.5 (Analytic.segment_time Analytic.Exact ~lambda:0. 7.5);
  (* First_order is bitwise the Algorithm-2 DP cost *)
  let lambda = 0.003 and s = 42. in
  Alcotest.(check bool)
    "first_order = Placement.first_order (bitwise)" true
    (Analytic.segment_time Analytic.First_order ~lambda s
    = Placement.first_order ~lambda s);
  (* Exact is (e^{lambda s} - 1)/lambda *)
  check_close "exact closed form"
    (Float.expm1 (lambda *. s) /. lambda)
    (Analytic.segment_time Analytic.Exact ~lambda s);
  (* the two agree to O((lambda s)^2) and Exact dominates *)
  let fo = Analytic.segment_time Analytic.First_order ~lambda s in
  let ex = Analytic.segment_time Analytic.Exact ~lambda s in
  Alcotest.(check bool) "exact >= first-order for small lambda*s" true (ex >= fo);
  check_close ~eps:1e-2 "models agree to second order" fo ex

let test_restart_time () =
  let rate = 0.004 and wpar = 130. in
  Alcotest.(check bool)
    "first-order restart = Ckptnone closed form (bitwise)" true
    (Analytic.restart_time Analytic.First_order ~rate wpar
    = Ckptnone.expected_makespan_rate ~wpar ~rate);
  check_close "exact restart closed form"
    (Float.expm1 (rate *. wpar) /. rate)
    (Analytic.restart_time Analytic.Exact ~rate wpar);
  (* lambda -> 0: re-execution vanishes, makespan -> wpar *)
  check_close ~eps:1e-6 "exact restart -> wpar as rate -> 0" wpar
    (Analytic.restart_time Analytic.Exact ~rate:1e-12 wpar)

(* --- the analytic functional vs the estimators ------------------- *)

(* expected_makespan is *defined* as the trials -> infinity limit of
   the MC estimator; Pathapprox computes the same first-order failure
   expansion, so on any plan with a probabilistic DAG the two must be
   bitwise identical — this pins the analytic engine against estimator
   drift in either direction. *)
let prop_analytic_is_pathapprox_bitwise =
  QCheck.Test.make ~count:60 ~name:"expected_makespan = Pathapprox.estimate (bitwise)"
    QCheck.small_nat (fun seed ->
      let setup = random_setup seed in
      List.for_all
        (fun kind ->
          let plan = Pipeline.plan setup kind in
          match plan.Strategy.prob_dag with
          | None -> true
          | Some pd -> Analytic.expected_makespan plan = Pathapprox.estimate pd)
        [
          Strategy.Ckpt_some;
          Strategy.Ckpt_all;
          Strategy.Ckpt_every 3;
          Strategy.Ckpt_restart;
          Strategy.Ckpt_hybrid 4;
        ])

(* Agreement with the MC estimator on random M-SPGs and placements:
   within three 95%-CI half-widths (see calibration note above). *)
let prop_analytic_within_mc =
  QCheck.Test.make ~count:25 ~name:"analytic within 3 MC half-widths (random M-SPGs)"
    QCheck.small_nat (fun seed ->
      let m = Random_wf.generate ~seed ~max_tasks:35 () in
      let setup =
        Pipeline.prepare ~dag:m.Mspg.dag
          ~processors:(1 + (seed mod 7))
          ~pfail:0.001 ~ccr:0.5 ()
      in
      List.for_all
        (fun kind ->
          let plan = Pipeline.plan setup kind in
          match plan.Strategy.prob_dag with
          | None -> true
          | Some pd ->
              let st =
                Montecarlo.estimate_with_stats ~trials:10_000 ~seed:(seed + 7) pd
              in
              let gap = abs_float (Analytic.expected_makespan plan -. Stats.mean st) in
              gap <= (3. *. Stats.ci95_halfwidth st) +. 1e-9)
        [ Strategy.Ckpt_some; Strategy.Ckpt_all ])

(* Strict CI containment on pinned deterministic configurations — the
   exact claim the tracked sweep bench re-asserts on every run. *)
let test_analytic_within_mc_ci_pinned () =
  List.iter
    (fun (tasks, processors, pfail, ccr) ->
      let dag = Spec.generate Spec.Genome ~seed:1 ~tasks () in
      let setup = Pipeline.prepare ~dag ~processors ~pfail ~ccr () in
      List.iter
        (fun kind ->
          let plan = Pipeline.plan setup kind in
          match plan.Strategy.prob_dag with
          | None -> ()
          | Some pd ->
              let st = Montecarlo.estimate_with_stats ~trials:10_000 ~seed:1 pd in
              let gap = abs_float (Analytic.expected_makespan plan -. Stats.mean st) in
              if gap > Stats.ci95_halfwidth st then
                Alcotest.failf "%s tasks=%d: gap %g > half-width %g"
                  (Strategy.kind_name kind) tasks gap (Stats.ci95_halfwidth st))
        [ Strategy.Ckpt_some; Strategy.Ckpt_all ])
    [ (100, 10, 0.001, 0.01); (100, 10, 0.001, 0.001); (50, 5, 0.001, 0.01) ]

(* On a chain the makespan is a plain sum of independent segment
   times, the failure expansion is linear — i.e. exact. Cross-check
   against the exact series-parallel calculus. *)
let test_chain_first_order_is_exact () =
  let setup = chain_setup () in
  List.iter
    (fun kind ->
      let plan = Pipeline.plan setup kind in
      match Strategy.exact_expected_makespan plan with
      | None -> Alcotest.failf "%s: no exact value" (Strategy.kind_name kind)
      | Some exact ->
          check_close
            (Printf.sprintf "%s: analytic = exact on chain" (Strategy.kind_name kind))
            exact
            (Analytic.expected_makespan plan))
    [ Strategy.Ckpt_all; Strategy.Ckpt_some; Strategy.Ckpt_every 3; Strategy.Ckpt_restart ]

let test_ckptnone_matches_strategy_closed_form () =
  List.iter
    (fun seed ->
      let setup = random_setup seed in
      let plan = Pipeline.plan setup Strategy.Ckpt_none in
      Alcotest.(check bool)
        "CKPTNONE analytic = Strategy closed form (bitwise)" true
        (Analytic.expected_makespan plan = Strategy.expected_makespan plan))
    [ 0; 3; 11; 42 ]

(* --- Sodre asymptotic regimes (arXiv 1802.07455), Exact model ----- *)

(* lambda -> 0: checkpoint I/O is pure overhead, RESTART wins and its
   makespan converges to the failure-free time. Large lambda*W: the
   restart exponential e^{lambda W} dominates any per-checkpoint cost,
   checkpointing wins. Both on a chain, where the analytic values are
   exact. *)
let test_sodre_asymptotic_regimes () =
  let em setup kind = Analytic.expected_makespan ~model:Analytic.Exact (Pipeline.plan setup kind) in
  (* reliable regime *)
  let quiet = chain_setup ~pfail:1e-7 ~ccr:0.5 () in
  let r_quiet = em quiet Strategy.Ckpt_restart and a_quiet = em quiet Strategy.Ckpt_all in
  Alcotest.(check bool) "lambda->0: restart beats checkpoint-all" true (r_quiet < a_quiet);
  let none = Pipeline.plan quiet Strategy.Ckpt_none in
  check_close ~eps:1e-4 "lambda->0: restart makespan -> wpar" none.Strategy.wpar
    (Analytic.expected_makespan ~model:Analytic.Exact none);
  (* failure-dominated regime *)
  let noisy = chain_setup ~pfail:0.2 ~ccr:0.01 () in
  let r_noisy = em noisy Strategy.Ckpt_restart and a_noisy = em noisy Strategy.Ckpt_all in
  Alcotest.(check bool) "large lambda*W: checkpoint-all beats restart" true
    (a_noisy < r_noisy);
  (* CKPTNONE under Exact is the closed-form restart of the whole
     schedule: expm1(rate * wpar)/rate on the one processor used *)
  let none_noisy = Pipeline.plan noisy Strategy.Ckpt_none in
  let rate = Platform.rate_of none_noisy.Strategy.platform 0 in
  check_close "exact CKPTNONE = expm1(rate*wpar)/rate"
    (Float.expm1 (rate *. none_noisy.Strategy.wpar) /. rate)
    (Analytic.expected_makespan ~model:Analytic.Exact none_noisy)

(* --- schedule composition ---------------------------------------- *)

(* When no two superchains share a processor, the engine recurrence
   adds no constraint beyond the DAG edges, so under the Exact model
   schedule_makespan collapses to the longest path of expectations =
   expected_makespan ~model:Exact. *)
let prop_schedule_equals_expected_unique_procs =
  QCheck.Test.make ~count:80
    ~name:"schedule_makespan = expected_makespan (Exact, unique processors)"
    QCheck.small_nat (fun seed ->
      let setup = random_setup seed in
      let scs = setup.Pipeline.schedule.Schedule.superchains in
      let procs =
        Array.to_list (Array.map (fun sc -> sc.Superchain.processor) scs)
      in
      if List.length procs <> List.length (List.sort_uniq compare procs) then true
      else
        List.for_all
          (fun kind ->
            let plan = Pipeline.plan setup kind in
            Analytic.schedule_makespan ~model:Analytic.Exact plan
            = Analytic.expected_makespan ~model:Analytic.Exact plan)
          [ Strategy.Ckpt_some; Strategy.Ckpt_all; Strategy.Ckpt_restart ])

let test_runner_analytic_smoke () =
  let setup = random_setup 5 in
  let plan = Pipeline.plan setup Strategy.Ckpt_some in
  let a = Runner.expected_makespan ~eval:`Analytic plan in
  let mc = Runner.expected_makespan ~eval:`Mc ~trials:2_000 ~seed:3 plan in
  Alcotest.(check bool) "analytic positive" true (a > 0.);
  (* both estimate the same schedule; engine simulation includes
     cross-superchain serialisation the DAG relaxes, so only loose
     agreement is asserted *)
  check_close ~eps:0.25 "runner analytic ~ runner mc" mc a

let test_compare_strategies_analytic () =
  let setup = random_setup 9 in
  let c = Analytic.compare_strategies setup in
  let em kind = Analytic.expected_makespan (Pipeline.plan setup kind) in
  check_close "em_some" (em Strategy.Ckpt_some) c.Pipeline.em_some;
  check_close "em_all" (em Strategy.Ckpt_all) c.Pipeline.em_all;
  check_close "em_none" (em Strategy.Ckpt_none) c.Pipeline.em_none;
  check_close "rel_all" (c.Pipeline.em_all /. c.Pipeline.em_some) c.Pipeline.rel_all;
  check_close "rel_none" (c.Pipeline.em_none /. c.Pipeline.em_some) c.Pipeline.rel_none;
  let some = Pipeline.plan setup Strategy.Ckpt_some in
  Alcotest.(check int) "ckpts_some" some.Strategy.checkpoint_count c.Pipeline.ckpts_some

(* --- RESTART and hybrid strategies -------------------------------- *)

let test_restart_plan_shape () =
  let setup = random_setup 13 in
  let plan = Pipeline.plan setup Strategy.Ckpt_restart in
  let superchains = Array.length setup.Pipeline.schedule.Schedule.superchains in
  (* RESTART still checkpoints each superchain's exit (crossover data
     must survive), and nothing else *)
  Alcotest.(check int) "one checkpoint per superchain" superchains
    plan.Strategy.checkpoint_count;
  List.iter
    (fun (sc, positions) ->
      let n = Superchain.n_tasks setup.Pipeline.schedule.Schedule.superchains.(sc) in
      Alcotest.(check (list int))
        (Printf.sprintf "superchain %d restarts to its end" sc)
        [ n - 1 ] positions)
    (Strategy.checkpoint_positions plan)

let positions_equal a b =
  Strategy.checkpoint_positions a = Strategy.checkpoint_positions b

let test_hybrid_degenerate_cases () =
  let setup = random_setup 21 in
  (* threshold 0: no superchain is short enough to restart -> CKPTSOME *)
  let h0 = Pipeline.plan setup (Strategy.Ckpt_hybrid 0) in
  let some = Pipeline.plan setup Strategy.Ckpt_some in
  Alcotest.(check bool) "hybrid-0 places like ckpt-some" true (positions_equal h0 some);
  (* threshold >= longest superchain: everything restarts *)
  let hbig = Pipeline.plan setup (Strategy.Ckpt_hybrid max_int) in
  let restart = Pipeline.plan setup Strategy.Ckpt_restart in
  Alcotest.(check bool) "hybrid-max places like restart" true
    (positions_equal hbig restart)

let test_hybrid_interpolates () =
  let setup = random_setup 21 in
  let scs = setup.Pipeline.schedule.Schedule.superchains in
  let h3 = Pipeline.plan setup (Strategy.Ckpt_hybrid 3) in
  List.iter
    (fun (sc, positions) ->
      let n = Superchain.n_tasks scs.(sc) in
      if n <= 3 then
        Alcotest.(check (list int))
          (Printf.sprintf "short superchain %d restarts" sc)
          [ n - 1 ] positions)
    (Strategy.checkpoint_positions h3)

let test_strategy_names () =
  Alcotest.(check string) "restart name" "ckpt-restart"
    (Strategy.kind_name Strategy.Ckpt_restart);
  Alcotest.(check string) "hybrid name" "ckpt-hybrid-5"
    (Strategy.kind_name (Strategy.Ckpt_hybrid 5))

(* --- evaluator dispatch ------------------------------------------- *)

let test_eval_dispatch () =
  Alcotest.(check bool) "analytic parses" true
    (Analytic.eval_of_name "analytic" = Some Analytic.Analytic);
  Alcotest.(check bool) "mc parses" true (Analytic.eval_of_name "mc" = Some Analytic.Mc);
  Alcotest.(check bool) "montecarlo parses" true
    (Analytic.eval_of_name "montecarlo" = Some Analytic.Mc);
  Alcotest.(check bool) "auto parses" true
    (Analytic.eval_of_name "auto" = Some Analytic.Auto);
  Alcotest.(check bool) "garbage rejected" true (Analytic.eval_of_name "exact" = None);
  List.iter
    (fun e ->
      Alcotest.(check bool) "name round-trips" true
        (Analytic.eval_of_name (Analytic.eval_name e) = Some e))
    [ Analytic.Analytic; Analytic.Mc; Analytic.Auto ];
  (* the Auto rule *)
  Alcotest.(check bool) "auto -> analytic when faithful" true
    (Analytic.resolve Analytic.Auto = `Analytic);
  Alcotest.(check bool) "auto -> mc under non-exponential failures" true
    (Analytic.resolve ~exponential:false Analytic.Auto = `Mc);
  Alcotest.(check bool) "auto -> mc when storage knobs live" true
    (Analytic.resolve ~storage_off:false Analytic.Auto = `Mc);
  (* explicit choices are never second-guessed *)
  Alcotest.(check bool) "explicit analytic sticks" true
    (Analytic.resolve ~exponential:false ~storage_off:false Analytic.Analytic
    = `Analytic);
  Alcotest.(check bool) "explicit mc sticks" true (Analytic.resolve Analytic.Mc = `Mc)

let suite =
  [
    Alcotest.test_case "segment-time kernels" `Quick test_segment_time;
    Alcotest.test_case "restart-time kernels" `Quick test_restart_time;
    QCheck_alcotest.to_alcotest prop_analytic_is_pathapprox_bitwise;
    QCheck_alcotest.to_alcotest prop_analytic_within_mc;
    Alcotest.test_case "strict MC CI containment (pinned configs)" `Slow
      test_analytic_within_mc_ci_pinned;
    Alcotest.test_case "exact on chains" `Quick test_chain_first_order_is_exact;
    Alcotest.test_case "CKPTNONE closed form" `Quick
      test_ckptnone_matches_strategy_closed_form;
    Alcotest.test_case "Sodre asymptotic regimes" `Quick test_sodre_asymptotic_regimes;
    QCheck_alcotest.to_alcotest prop_schedule_equals_expected_unique_procs;
    Alcotest.test_case "runner analytic smoke" `Quick test_runner_analytic_smoke;
    Alcotest.test_case "compare_strategies analytic" `Quick
      test_compare_strategies_analytic;
    Alcotest.test_case "restart plan shape" `Quick test_restart_plan_shape;
    Alcotest.test_case "hybrid degenerate cases" `Quick test_hybrid_degenerate_cases;
    Alcotest.test_case "hybrid interpolates" `Quick test_hybrid_interpolates;
    Alcotest.test_case "strategy names" `Quick test_strategy_names;
    Alcotest.test_case "evaluator dispatch" `Quick test_eval_dispatch;
  ]
