(* Equivalence suite for the compiled/array planner: the packed-DP and
   arena paths must return exactly — bitwise — what the pinned
   list/Hashtbl references return, on random superchains and random
   M-SPGs, and plans must be identical at any [jobs]. *)

module Dag = Ckpt_dag.Dag
module Mspg = Ckpt_mspg.Mspg
module Random_wf = Ckpt_workflows.Random_wf
module Platform = Ckpt_platform.Platform
module Toueg = Ckpt_core.Toueg
module Placement = Ckpt_core.Placement
module Pipeline = Ckpt_core.Pipeline
module Strategy = Ckpt_core.Strategy
module Schedule = Ckpt_core.Schedule
module Rng = Ckpt_prob.Rng

(* --- random superchains: packed DP vs reference ----------------- *)

let random_cost_table rng n =
  (* an arbitrary positive cost surface with mild superadditivity so
     optima land at interesting split counts *)
  Array.init n (fun j ->
      Array.init (j + 1) (fun _ -> 0.1 +. Rng.float rng 10.))

let pack_table table n =
  let tri = Array.make (Toueg.tri_size n) 0. in
  for j = 0 to n - 1 do
    for i = 0 to j do
      tri.((j * (j + 1) / 2) + i) <- table.(j).(i)
    done
  done;
  tri

let prop_solve_packed_matches_reference =
  QCheck.Test.make ~count:200 ~name:"solve_packed = reference_solve (bitwise)"
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 1) in
      let n = 1 + Rng.int rng 40 in
      let table = random_cost_table rng n in
      let cost i j = table.(j).(i) in
      let ref_v, ref_p = Toueg.reference_solve ~n ~cost in
      let tri = pack_table table n in
      let etime = Array.make n 0. and last_ckpt = Array.make n 0 in
      let v, p = Toueg.solve_packed ~n ~tri ~etime ~last_ckpt in
      v = ref_v && p = ref_p)

let prop_solve_budget_packed_matches_reference =
  QCheck.Test.make ~count:200
    ~name:"solve_budget_packed = reference_solve_budget (bitwise)" QCheck.small_nat
    (fun seed ->
      let rng = Rng.create (seed + 101) in
      let n = 1 + Rng.int rng 30 in
      let budget = 1 + Rng.int rng n in
      let table = random_cost_table rng n in
      let cost i j = table.(j).(i) in
      let ref_v, ref_p = Toueg.reference_solve_budget ~n ~cost ~budget in
      let tri = pack_table table n in
      let v, p = Toueg.solve_budget_packed ~n ~tri ~budget in
      v = ref_v && p = ref_p)

let prop_solve_chain_matches_reference =
  (* solve_chain prefix-sums segment work, so values may differ from
     chain_cost by rounding — equal within float tolerance, and its
     positions must realise its value *)
  QCheck.Test.make ~count:200 ~name:"solve_chain ~= reference_solve over chain_cost"
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 211) in
      let n = 1 + Rng.int rng 40 in
      let arr _ = Array.init n (fun _ -> 0.1 +. Rng.float rng 5.) in
      let r = arr () and w = arr () and c = arr () in
      let lambda = Rng.float rng 0.01 in
      let read k = r.(k) and weight k = w.(k) and write k = c.(k) in
      let ref_v, _ = Toueg.reference_solve ~n ~cost:(Toueg.chain_cost ~lambda ~read ~weight ~write) in
      let v, p = Toueg.solve_chain ~n ~lambda ~read ~weight ~write in
      let close a b = abs_float (a -. b) <= 1e-9 *. (1. +. abs_float a) in
      let realised =
        let rec total start = function
          | [] -> 0.
          | q :: rest -> Toueg.chain_cost ~lambda ~read ~weight ~write start q +. total (q + 1) rest
        in
        total 0 p
      in
      close ref_v v && close v realised)

(* --- random M-SPGs: arena placement vs reference ---------------- *)

let random_setup seed =
  let m = Random_wf.generate ~seed ~max_tasks:35 () in
  Pipeline.prepare ~dag:m.Mspg.dag ~processors:(1 + (seed mod 7)) ~pfail:0.01 ~ccr:0.5 ()

let prop_optimal_positions_match =
  QCheck.Test.make ~count:100
    ~name:"optimal_positions = reference_optimal_positions (bitwise)" QCheck.small_nat
    (fun seed ->
      let setup = random_setup seed in
      let dag = setup.Pipeline.schedule.Schedule.dag in
      let platform = setup.Pipeline.platform in
      let shared = Placement.arena dag in
      Array.for_all
        (fun sc ->
          let ref_v, ref_p = Placement.reference_optimal_positions platform dag sc in
          (* both with a shared arena (the sequential planner) and with
             the per-call default (parallel workers) *)
          Placement.optimal_positions ~arena:shared platform dag sc = (ref_v, ref_p)
          && Placement.optimal_positions platform dag sc = (ref_v, ref_p))
        setup.Pipeline.schedule.Schedule.superchains)

let prop_optimal_positions_budget_match =
  QCheck.Test.make ~count:100
    ~name:"optimal_positions_budget = reference (bitwise)" QCheck.small_nat (fun seed ->
      let setup = random_setup (seed + 500) in
      let dag = setup.Pipeline.schedule.Schedule.dag in
      let platform = setup.Pipeline.platform in
      let shared = Placement.arena dag in
      let budget = 1 + (seed mod 4) in
      Array.for_all
        (fun sc ->
          let reference = Placement.reference_optimal_positions_budget platform dag sc ~budget in
          Placement.optimal_positions_budget ~arena:shared platform dag sc ~budget = reference)
        setup.Pipeline.schedule.Schedule.superchains)

(* --- whole plans: jobs-invariance ------------------------------- *)

let plans_equal (a : Strategy.plan) (b : Strategy.plan) =
  a.Strategy.segments = b.Strategy.segments
  && a.Strategy.segment_of_task = b.Strategy.segment_of_task
  && a.Strategy.wpar = b.Strategy.wpar
  && a.Strategy.checkpoint_count = b.Strategy.checkpoint_count

let prop_plan_jobs_invariant =
  QCheck.Test.make ~count:50 ~name:"Strategy.plan identical at jobs=1 and jobs=4"
    QCheck.small_nat (fun seed ->
      let setup = random_setup (seed + 900) in
      List.for_all
        (fun kind ->
          plans_equal
            (Pipeline.plan ~jobs:1 setup kind)
            (Pipeline.plan ~jobs:4 setup kind))
        [ Strategy.Ckpt_some; Strategy.Ckpt_all; Strategy.Ckpt_budget 2 ])

let suite =
  [
    QCheck_alcotest.to_alcotest prop_solve_packed_matches_reference;
    QCheck_alcotest.to_alcotest prop_solve_budget_packed_matches_reference;
    QCheck_alcotest.to_alcotest prop_solve_chain_matches_reference;
    QCheck_alcotest.to_alcotest prop_optimal_positions_match;
    QCheck_alcotest.to_alcotest prop_optimal_positions_budget_match;
    QCheck_alcotest.to_alcotest prop_plan_jobs_invariant;
  ]
