(* Ckpt_core.Service under daemon conditions: LRU capacity bounds,
   eviction/race counters, and multi-domain hammering — the properties
   the hardened [ckptwf serve] relies on to stay resident for days. *)

module Spec = Ckpt_workflows.Spec
module Pipeline = Ckpt_core.Pipeline
module Strategy = Ckpt_core.Strategy
module Service = Ckpt_core.Service

(* distinct deterministic plans, one per key suffix: seed variation
   changes the DAG, so plans differ structurally across keys *)
let plan_for ?(tasks = 30) seed =
  let dag = Spec.generate Spec.Genome ~seed ~tasks () in
  let setup = Pipeline.prepare ~dag ~processors:5 ~pfail:0.001 ~ccr:0.1 () in
  Pipeline.plan setup Strategy.Ckpt_some

let setup_for seed =
  let dag = Spec.generate Spec.Genome ~seed ~tasks:30 () in
  Pipeline.prepare ~dag ~processors:5 ~pfail:0.001 ~ccr:0.1 ()

let key i = Printf.sprintf "k%d" i

let test_unbounded_by_default () =
  let t = Service.create () in
  let p = plan_for 1 in
  for i = 1 to 50 do
    ignore (Service.store_plan t ~key:(key i) p)
  done;
  let s = Service.stats t in
  Alcotest.(check int) "no evictions unbounded" 0 s.Service.plan_evictions;
  for i = 1 to 50 do
    Alcotest.(check bool)
      (key i ^ " still cached")
      true
      (Service.find_plan t ~key:(key i) <> None)
  done

let test_lru_evicts_least_recently_used () =
  let t = Service.create ~max_plans:2 () in
  let p1 = plan_for 1 and p2 = plan_for 2 and p3 = plan_for 3 in
  ignore (Service.store_plan t ~key:"a" p1);
  ignore (Service.store_plan t ~key:"b" p2);
  (* touch "a" so "b" becomes the LRU victim *)
  Alcotest.(check bool) "a hits" true (Service.find_plan t ~key:"a" <> None);
  ignore (Service.store_plan t ~key:"c" p3);
  let s = Service.stats t in
  Alcotest.(check int) "one eviction" 1 s.Service.plan_evictions;
  Alcotest.(check bool) "a survived (recently used)" true
    (Service.find_plan t ~key:"a" <> None);
  Alcotest.(check bool) "b evicted (least recently used)" true
    (Service.find_plan t ~key:"b" = None);
  Alcotest.(check bool) "c present" true (Service.find_plan t ~key:"c" <> None)

let test_plan_memo_respects_cap () =
  let t = Service.create ~max_plans:3 () in
  let computes = ref 0 in
  for round = 1 to 3 do
    ignore round;
    for i = 1 to 10 do
      ignore
        (Service.plan t ~key:(key i) (fun () ->
             incr computes;
             plan_for (i mod 4)))
    done
  done;
  let s = Service.stats t in
  Alcotest.(check int) "inserts = misses" !computes s.Service.plan_misses;
  Alcotest.(check bool) "cap forced evictions" true (s.Service.plan_evictions > 0);
  (* live entries never exceed the cap: at most 3 of the 10 keys resolve *)
  let live = ref 0 in
  for i = 1 to 10 do
    if Service.find_plan t ~key:(key i) <> None then incr live
  done;
  Alcotest.(check bool) "at most max_plans live" true (!live <= 3)

let test_setup_cache_capped_independently () =
  let t = Service.create ~max_setups:2 () in
  for i = 1 to 5 do
    ignore (Service.setup t ~key:(key i) (fun () -> setup_for i))
  done;
  let s = Service.stats t in
  Alcotest.(check int) "five setup misses" 5 s.Service.setup_misses;
  Alcotest.(check int) "three setup evictions" 3 s.Service.setup_evictions;
  Alcotest.(check int) "plan table untouched" 0 s.Service.plan_evictions;
  (* a re-request of an evicted key recomputes: miss, not hit *)
  ignore (Service.setup t ~key:(key 1) (fun () -> setup_for 1));
  let s = Service.stats t in
  Alcotest.(check int) "evicted key misses again" 6 s.Service.setup_misses;
  Alcotest.(check int) "no hits so far" 0 s.Service.setup_hits

let test_store_plan_race_counted_once () =
  let t = Service.create () in
  let p = plan_for 1 in
  let first = Service.store_plan t ~key:"k" p in
  Alcotest.(check bool) "first insert returns the plan" true (first == p);
  (* a racing duplicate compute offers an identical plan: the incumbent
     wins and the duplicate is counted, not silently discarded *)
  let p' = plan_for 1 in
  let second = Service.store_plan t ~key:"k" p' in
  Alcotest.(check bool) "incumbent kept" true (second == p);
  let s = Service.stats t in
  Alcotest.(check int) "race counted once" 1 s.Service.plan_races;
  ignore (Service.store_plan t ~key:"k" p');
  Alcotest.(check int) "counted per losing insert" 2
    (Service.stats t).Service.plan_races

let test_hit_and_miss_counters () =
  let t = Service.create () in
  ignore (Service.plan t ~key:"k" (fun () -> plan_for 1));
  ignore (Service.plan t ~key:"k" (fun () -> plan_for 1));
  ignore (Service.plan t ~key:"k" (fun () -> plan_for 1));
  let s = Service.stats t in
  Alcotest.(check int) "one miss" 1 s.Service.plan_misses;
  Alcotest.(check int) "two hits" 2 s.Service.plan_hits;
  Service.note_plan_hit t;
  Service.note_plan_miss t;
  let s = Service.stats t in
  Alcotest.(check (pair int int)) "note_* feed the same counters" (3, 2)
    (s.Service.plan_hits, s.Service.plan_misses)

(* the daemon's actual concurrency shape: several connection-handler
   domains hammering one bounded service on overlapping keys. The cap
   must hold and the counters must reconcile, whatever the schedule. *)
let test_concurrent_domains_bounded () =
  let cap = 4 in
  let t = Service.create ~max_plans:cap () in
  let domains = 4 and rounds = 25 in
  let plans = Array.init 8 (fun i -> plan_for (i + 1)) in
  let worker d () =
    for r = 0 to rounds - 1 do
      let i = (d + r) mod 8 in
      let computed =
        Service.plan t ~key:(key i) (fun () -> plans.(i))
      in
      (* planning is deterministic: whoever computed it, the cached
         value for key i must be plan i *)
      if computed.Strategy.checkpoint_count <> plans.(i).Strategy.checkpoint_count
      then Alcotest.failf "domain %d saw a foreign plan under %s" d (key i);
      ignore (Service.store_plan t ~key:(key i) plans.(i))
    done
  in
  let spawned = List.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1))) in
  worker 0 ();
  List.iter Domain.join spawned;
  let live = ref 0 in
  for i = 0 to 7 do
    if Service.find_plan t ~key:(key i) <> None then incr live
  done;
  Alcotest.(check bool) "cap held under concurrency" true (!live <= cap);
  let s = Service.stats t in
  Alcotest.(check int) "every lookup accounted" (domains * rounds)
    (s.Service.plan_hits + s.Service.plan_misses);
  Alcotest.(check bool) "evictions happened" true (s.Service.plan_evictions > 0)

let suite =
  [
    Alcotest.test_case "unbounded by default" `Quick test_unbounded_by_default;
    Alcotest.test_case "LRU evicts least recently used" `Quick
      test_lru_evicts_least_recently_used;
    Alcotest.test_case "memoised plan respects cap" `Quick test_plan_memo_respects_cap;
    Alcotest.test_case "setup cache capped independently" `Quick
      test_setup_cache_capped_independently;
    Alcotest.test_case "store_plan race counted once" `Quick
      test_store_plan_race_counted_once;
    Alcotest.test_case "hit/miss counters" `Quick test_hit_and_miss_counters;
    Alcotest.test_case "concurrent domains respect the cap" `Quick
      test_concurrent_domains_bounded;
  ]
