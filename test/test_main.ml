(* Test entry point: one Alcotest suite per library module group. *)

let () =
  Alcotest.run "ckptwf"
    [
      ("rng", Test_rng.suite);
      ("dist", Test_dist.suite);
      ("normal", Test_normal.suite);
      ("stats", Test_stats.suite);
      ("dag", Test_dag.suite);
      ("mspg", Test_mspg.suite);
      ("recognize", Test_recognize.suite);
      ("platform", Test_platform.suite);
      ("workflows", Test_workflows.suite);
      ("toueg", Test_toueg.suite);
      ("toueg-fast", Test_toueg_fast.suite);
      ("scheduling", Test_scheduling.suite);
      ("placement", Test_placement.suite);
      ("evaluation", Test_evaluation.suite);
      ("strategy", Test_strategy.suite);
      ("simulation", Test_simulation.suite);
      ("integration", Test_integration.suite);
      ("dax", Test_dax.suite);
      ("viz", Test_viz.suite);
      ("contention", Test_contention.suite);
      ("analysis", Test_analysis.suite);
      ("refine", Test_refine.suite);
      ("resilience", Test_resilience.suite);
      ("parallel", Test_parallel.suite);
      ("recovery", Test_recovery.suite);
      ("plan-equiv", Test_plan_equiv.suite);
      ("service", Test_service.suite);
      ("degrade-cache", Test_degrade_cache.suite);
      ("storage", Test_storage.suite);
      ("store", Test_store.suite);
      ("cloud", Test_cloud.suite);
      ("analytic", Test_analytic.suite);
    ]
