(* The structural replan cache in Ckpt_sim.Degrade: hit/miss counters,
   and the contract that caching is invisible — trial arrays bitwise
   identical with the cache on or off, at any [jobs]. *)

module Spec = Ckpt_workflows.Spec
module Pipeline = Ckpt_core.Pipeline
module Strategy = Ckpt_core.Strategy
module Degrade = Ckpt_sim.Degrade

let genome_plan ?(tasks = 50) ?(processors = 5) () =
  let dag = Spec.generate Spec.Genome ~seed:1 ~tasks () in
  let setup = Pipeline.prepare ~dag ~processors ~pfail:0.001 ~ccr:0.1 () in
  Pipeline.plan setup Strategy.Ckpt_some

let deadly_config plan =
  (* high enough death rate that most trials replan at least once *)
  {
    Degrade.lambda_death = 2. /. plan.Strategy.wpar;
    max_losses = 1;
    kind = Strategy.Ckpt_some;
    store = Ckpt_storage.Store.default;
  }

let test_counters_accumulate () =
  let plan = genome_plan () in
  let config = deadly_config plan in
  let prepared = Degrade.prepare plan in
  Alcotest.(check (pair int int)) "fresh cache" (0, 0) (Degrade.cache_stats prepared);
  let _ = Degrade.sample_prepared ~trials:40 ~seed:13 ~mode:Degrade.Repair config prepared in
  let hits, misses = Degrade.cache_stats prepared in
  Alcotest.(check bool) "replans happened" true (hits + misses > 0);
  Alcotest.(check bool) "at least one miss fills the cache" true (misses > 0);
  (* the same trials again: every replan state was seen, so only hits *)
  let _ = Degrade.sample_prepared ~trials:40 ~seed:13 ~mode:Degrade.Repair config prepared in
  let hits2, misses2 = Degrade.cache_stats prepared in
  Alcotest.(check int) "no new misses on replay" misses misses2;
  Alcotest.(check bool) "replay hits" true (hits2 > hits)

let test_disabled_cache_counts_nothing () =
  let plan = genome_plan () in
  let config = deadly_config plan in
  let prepared = Degrade.prepare ~cache:false plan in
  let _ = Degrade.sample_prepared ~trials:30 ~seed:13 ~mode:Degrade.Repair config prepared in
  Alcotest.(check (pair int int)) "disabled cache stays empty" (0, 0)
    (Degrade.cache_stats prepared)

let test_cached_equals_uncached () =
  let plan = genome_plan () in
  let config = deadly_config plan in
  List.iter
    (fun mode ->
      let on = Degrade.prepare plan in
      let off = Degrade.prepare ~cache:false plan in
      let a = Degrade.sample_prepared ~trials:40 ~seed:13 ~mode config on in
      let b = Degrade.sample_prepared ~trials:40 ~seed:13 ~mode config off in
      Alcotest.(check bool)
        (Degrade.mode_name mode ^ ": cache on = cache off, bitwise")
        true (a = b))
    [ Degrade.Repair; Degrade.Restart ]

let test_cached_jobs_invariant () =
  let plan = genome_plan () in
  let config = deadly_config plan in
  let prepared = Degrade.prepare plan in
  let seq = Degrade.sample_prepared ~trials:40 ~seed:13 ~jobs:1 ~mode:Degrade.Repair config prepared in
  let par = Degrade.sample_prepared ~trials:40 ~seed:13 ~jobs:4 ~mode:Degrade.Repair config prepared in
  Alcotest.(check bool) "jobs=1 = jobs=4 on a shared cache, bitwise" true (seq = par)

let test_restart_reuses_single_entry () =
  (* Restart always replans from an empty frontier: for a fixed
     survivor set there is exactly one cache entry, so misses are
     bounded by the number of distinct survivor sets (<= processors
     with max_losses = 1) *)
  let plan = genome_plan () in
  let config = deadly_config plan in
  let prepared = Degrade.prepare plan in
  let _ = Degrade.sample_prepared ~trials:60 ~seed:13 ~mode:Degrade.Restart config prepared in
  let hits, misses = Degrade.cache_stats prepared in
  Alcotest.(check bool) "replans happened" true (hits + misses > 0);
  Alcotest.(check bool)
    (Printf.sprintf "misses (%d) bounded by survivor sets" misses)
    true
    (misses <= plan.Strategy.platform.Ckpt_platform.Platform.processors)

let suite =
  [
    Alcotest.test_case "counters accumulate" `Quick test_counters_accumulate;
    Alcotest.test_case "disabled cache counts nothing" `Quick test_disabled_cache_counts_nothing;
    Alcotest.test_case "cache on = cache off" `Quick test_cached_equals_uncached;
    Alcotest.test_case "cached jobs invariant" `Quick test_cached_jobs_invariant;
    Alcotest.test_case "restart reuses one entry per survivor set" `Quick
      test_restart_reuses_single_entry;
  ]
