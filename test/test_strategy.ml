(* Tests for Ckpt_core.Strategy and Pipeline: plan construction,
   coalesced 2-state DAGs, and the paper's qualitative claims. *)

module Dag = Ckpt_dag.Dag
module Mspg = Ckpt_mspg.Mspg
module Platform = Ckpt_platform.Platform
module Allocate = Ckpt_core.Allocate
module Schedule = Ckpt_core.Schedule
module Strategy = Ckpt_core.Strategy
module Pipeline = Ckpt_core.Pipeline
module Prob_dag = Ckpt_eval.Prob_dag
module Evaluator = Ckpt_eval.Evaluator
module Spec = Ckpt_workflows.Spec
module Random_wf = Ckpt_workflows.Random_wf

let check_close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps *. (1. +. abs_float expected) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

let simple_setup ?(processors = 2) ?(pfail = 0.01) ?(ccr = 0.01) ?(tasks = 50) kind =
  let dag = Spec.generate kind ~seed:1 ~tasks () in
  Pipeline.prepare ~dag ~processors ~pfail ~ccr ()

let test_plan_kinds () =
  let setup = simple_setup Spec.Genome in
  List.iter
    (fun kind ->
      let plan = Pipeline.plan setup kind in
      Alcotest.(check string) "kind" (Strategy.kind_name kind) (Strategy.kind_name plan.Strategy.kind))
    [ Strategy.Ckpt_all; Strategy.Ckpt_some; Strategy.Ckpt_none ]

let test_ckptall_one_segment_per_task () =
  let setup = simple_setup Spec.Genome in
  let plan = Pipeline.plan setup Strategy.Ckpt_all in
  Alcotest.(check int) "segments = tasks" (Dag.n_tasks setup.Pipeline.raw)
    plan.Strategy.checkpoint_count

let test_ckptsome_fewer_checkpoints () =
  let setup = simple_setup ~ccr:0.1 Spec.Genome in
  let some = Pipeline.plan setup Strategy.Ckpt_some in
  let all = Pipeline.plan setup Strategy.Ckpt_all in
  Alcotest.(check bool) "fewer checkpoints" true
    (some.Strategy.checkpoint_count < all.Strategy.checkpoint_count);
  Alcotest.(check bool) "at least one per superchain" true
    (some.Strategy.checkpoint_count
    >= Array.length setup.Pipeline.schedule.Schedule.superchains)

let test_ckptnone_has_no_segments () =
  let setup = simple_setup Spec.Genome in
  let plan = Pipeline.plan setup Strategy.Ckpt_none in
  Alcotest.(check int) "no checkpoints" 0 plan.Strategy.checkpoint_count;
  Alcotest.(check bool) "no prob dag" true (plan.Strategy.prob_dag = None)

let test_segment_of_task_total () =
  let setup = simple_setup Spec.Montage in
  let plan = Pipeline.plan setup Strategy.Ckpt_some in
  Array.iteri
    (fun t seg ->
      if seg < 0 || seg >= Array.length plan.Strategy.segments then
        Alcotest.failf "task %d unmapped" t)
    plan.Strategy.segment_of_task

let test_prob_dag_acyclic_and_sized () =
  let setup = simple_setup Spec.Ligo ~tasks:100 in
  List.iter
    (fun kind ->
      let plan = Pipeline.plan setup kind in
      match plan.Strategy.prob_dag with
      | None -> Alcotest.fail "expected prob dag"
      | Some pd ->
          Alcotest.(check int) "nodes = segments" (Array.length plan.Strategy.segments)
            (Prob_dag.n_nodes pd);
          ignore (Prob_dag.topological_order pd))
    [ Strategy.Ckpt_all; Strategy.Ckpt_some ]

let test_exit_data_always_checkpointed () =
  (* every superchain's last position is checkpointed under CKPTSOME *)
  let setup = simple_setup Spec.Genome ~tasks:300 ~processors:18 in
  let plan = Pipeline.plan setup Strategy.Ckpt_some in
  let positions = Strategy.checkpoint_positions plan in
  Array.iter
    (fun (sc : Ckpt_core.Superchain.t) ->
      match List.assoc_opt sc.Ckpt_core.Superchain.id positions with
      | None -> Alcotest.failf "superchain %d has no checkpoints" sc.Ckpt_core.Superchain.id
      | Some l ->
          Alcotest.(check int) "last checkpointed"
            (Ckpt_core.Superchain.n_tasks sc - 1)
            (List.rev l |> List.hd))
    setup.Pipeline.schedule.Schedule.superchains

let test_wpar_positive_and_bounded () =
  let setup = simple_setup Spec.Genome in
  let plan = Pipeline.plan setup Strategy.Ckpt_none in
  let raw = setup.Pipeline.raw in
  Alcotest.(check bool) "wpar >= critical path" true
    (plan.Strategy.wpar >= Dag.longest_path raw -. 1e-6);
  Alcotest.(check bool) "wpar <= sequential time + io" true
    (plan.Strategy.wpar
    <= Dag.total_weight raw
       +. Platform.io_time setup.Pipeline.platform (Dag.total_data raw)
       +. 1e-6)

let test_expected_makespan_positive () =
  let setup = simple_setup Spec.Montage in
  List.iter
    (fun kind ->
      let plan = Pipeline.plan setup kind in
      let em = Strategy.expected_makespan plan in
      Alcotest.(check bool) (Strategy.kind_name kind ^ " positive") true (em > 0.))
    [ Strategy.Ckpt_all; Strategy.Ckpt_some; Strategy.Ckpt_none ]

let test_em_at_least_failure_free () =
  let setup = simple_setup Spec.Genome in
  let plan = Pipeline.plan setup Strategy.Ckpt_some in
  match plan.Strategy.prob_dag with
  | None -> Alcotest.fail "prob dag"
  | Some pd ->
      Alcotest.(check bool) "EM >= deterministic makespan" true
        (Strategy.expected_makespan plan >= Prob_dag.deterministic_makespan pd -. 1e-6)

let test_ckptsome_optimal_over_positions () =
  (* CKPTSOME's expected time per superchain is no worse than both the
     single-checkpoint and checkpoint-everything policies evaluated
     with the same cost model *)
  let setup = simple_setup Spec.Genome ~ccr:0.1 in
  let platform = setup.Pipeline.platform in
  let dag = setup.Pipeline.schedule.Schedule.dag in
  Array.iter
    (fun sc ->
      let opt, _ = Ckpt_core.Placement.optimal_positions platform dag sc in
      let lambda = platform.Platform.lambda in
      let sum_for positions =
        Ckpt_core.Placement.segments_of_positions platform dag sc ~positions
        |> List.fold_left
             (fun acc seg -> acc +. Ckpt_core.Placement.expected_time ~lambda seg)
             0.
      in
      let n = Ckpt_core.Superchain.n_tasks sc in
      let all = sum_for (List.init n (fun i -> i)) in
      let one = sum_for [ n - 1 ] in
      if opt > all +. 1e-9 then Alcotest.failf "opt %f worse than all %f" opt all;
      if opt > one +. 1e-9 then Alcotest.failf "opt %f worse than single %f" opt one)
    setup.Pipeline.schedule.Schedule.superchains

let test_periodic_positions () =
  let _, sc = (fun () ->
    let d = Dag.create () in
    let ids = Array.init 7 (fun _ -> Dag.add_task d ~name:"t" ~weight:1.) in
    (d, Ckpt_core.Superchain.make ~id:0 ~processor:0 ~order:ids)) ()
  in
  Alcotest.(check (list int)) "period 3" [ 2; 5; 6 ]
    (Ckpt_core.Placement.periodic_positions sc ~period:3);
  Alcotest.(check (list int)) "period 1 = all" [ 0; 1; 2; 3; 4; 5; 6 ]
    (Ckpt_core.Placement.periodic_positions sc ~period:1);
  Alcotest.(check (list int)) "period 100 = final only" [ 6 ]
    (Ckpt_core.Placement.periodic_positions sc ~period:100)

let test_ckptsome_beats_periodic () =
  (* Algorithm 2 is optimal per superchain: no fixed period does
     better under the same cost model *)
  let setup = simple_setup Spec.Genome ~ccr:0.1 in
  let em kind = Strategy.expected_makespan (Pipeline.plan setup kind) in
  let some = em Strategy.Ckpt_some in
  List.iter
    (fun k ->
      let periodic = em (Strategy.Ckpt_every k) in
      if some > periodic +. 1e-6 then
        Alcotest.failf "period %d (%f) beat CKPTSOME (%f)" k periodic some)
    [ 1; 2; 3; 5; 10 ]

let test_budget_strategy_bounds () =
  let setup = simple_setup Spec.Genome ~ccr:0.01 in
  let some = Pipeline.plan setup Strategy.Ckpt_some in
  let chains = Array.length setup.Pipeline.schedule.Schedule.superchains in
  (* budget 1: exactly one checkpoint per superchain *)
  let one = Pipeline.plan setup (Strategy.Ckpt_budget 1) in
  Alcotest.(check int) "budget 1 count" chains one.Strategy.checkpoint_count;
  (* a huge budget reproduces CKPTSOME *)
  let loose = Pipeline.plan setup (Strategy.Ckpt_budget 10_000) in
  Alcotest.(check int) "loose budget = CKPTSOME" some.Strategy.checkpoint_count
    loose.Strategy.checkpoint_count;
  let em p = Strategy.expected_makespan p in
  if abs_float (em loose -. em some) > 1e-9 *. em some then
    Alcotest.fail "loose budget changed the makespan"

let test_segment_dag_mirrors_prob_dag () =
  let setup = simple_setup Spec.Genome in
  let plan = Pipeline.plan setup Strategy.Ckpt_some in
  let sd = Strategy.segment_dag plan in
  match plan.Strategy.prob_dag with
  | None -> Alcotest.fail "prob dag"
  | Some pd ->
      Alcotest.(check int) "same nodes" (Prob_dag.n_nodes pd) (Dag.n_tasks sd);
      for u = 0 to Prob_dag.n_nodes pd - 1 do
        Alcotest.(check (list int))
          (Printf.sprintf "succs of %d" u)
          (List.sort compare (Prob_dag.succs pd u))
          (Dag.succ_ids sd u)
      done

let test_exact_matches_montecarlo () =
  (* the exact SP evaluation agrees with a large Monte Carlo run on
     the same 2-state DAG *)
  let setup = simple_setup Spec.Genome ~tasks:50 ~processors:3 ~ccr:0.05 in
  let plan = Pipeline.plan setup Strategy.Ckpt_some in
  match Strategy.exact_expected_makespan plan with
  | None -> Alcotest.fail "genome CKPTSOME segment graph should be (G)SP"
  | Some exact ->
      let mc =
        Strategy.expected_makespan
          ~method_:(Ckpt_eval.Evaluator.Montecarlo { trials = 200_000; seed = 2 })
          plan
      in
      if abs_float (exact -. mc) > 0.01 *. mc then
        Alcotest.failf "exact %f vs MC %f" exact mc

let test_exact_available_for_superchain_strategies () =
  let setup = simple_setup Spec.Ligo ~tasks:100 in
  List.iter
    (fun kind ->
      match Strategy.exact_expected_makespan (Pipeline.plan setup kind) with
      | Some v -> Alcotest.(check bool) (Strategy.kind_name kind) true (v > 0.)
      | None -> Alcotest.failf "%s: segment graph not recognised" (Strategy.kind_name kind))
    [ Strategy.Ckpt_some; Strategy.Ckpt_every 3; Strategy.Ckpt_budget 2 ]

let test_makespan_distribution_consistency () =
  let setup = simple_setup Spec.Genome ~ccr:0.05 in
  let plan = Pipeline.plan setup Strategy.Ckpt_some in
  match Strategy.makespan_distribution plan with
  | None -> Alcotest.fail "distribution expected"
  | Some dist ->
      (* its mean is the exact expected makespan *)
      (match Strategy.exact_expected_makespan plan with
      | Some em -> check_close ~eps:1e-9 "mean = exact EM" em (Ckpt_prob.Dist.mean dist)
      | None -> Alcotest.fail "exact EM");
      (* its minimum is the failure-free makespan *)
      let pd = Option.get plan.Strategy.prob_dag in
      check_close ~eps:1e-6 "support min = deterministic makespan"
        (Prob_dag.deterministic_makespan pd)
        (Ckpt_prob.Dist.quantile dist 0.);
      (* simulated sample agrees in distribution within first-order
         error: small KS distance *)
      let sample = Ckpt_sim.Runner.sample_makespans ~trials:2000 plan in
      let ks = Ckpt_prob.Stats.ks_distance sample ~cdf:(Ckpt_prob.Dist.cdf dist) in
      if ks > 0.2 then Alcotest.failf "KS too large: %f" ks

let test_heterogeneous_checkpointing () =
  (* two identical parallel chains on two processors with wildly
     different failure rates: Algorithm 2 must checkpoint the flaky
     processor's superchain at least as densely *)
  let bp =
    Mspg.Bparallel
      [ Mspg.Bserial (List.init 10 (fun i -> Mspg.Btask (Printf.sprintf "a%d" i, 10.)));
        Mspg.Bserial (List.init 10 (fun i -> Mspg.Btask (Printf.sprintf "b%d" i, 10.))) ]
  in
  let m = Mspg.build ~edge_size:(fun _ _ -> 1e6) bp in
  let schedule = Allocate.run m ~processors:2 in
  let platform = Platform.make_heterogeneous ~rates:[| 1e-5; 5e-3 |] ~bandwidth:1e6 () in
  let plan = Strategy.plan Strategy.Ckpt_some ~raw:m.Mspg.dag ~schedule ~platform in
  let per_chain = Hashtbl.create 4 in
  Array.iter
    (fun (seg : Ckpt_core.Placement.segment) ->
      let c = seg.Ckpt_core.Placement.chain in
      Hashtbl.replace per_chain c (1 + Option.value ~default:0 (Hashtbl.find_opt per_chain c)))
    plan.Strategy.segments;
  let count_on proc =
    Array.to_list schedule.Schedule.superchains
    |> List.filter (fun (sc : Ckpt_core.Superchain.t) -> sc.Ckpt_core.Superchain.processor = proc)
    |> List.fold_left
         (fun acc (sc : Ckpt_core.Superchain.t) ->
           acc + Option.value ~default:0 (Hashtbl.find_opt per_chain sc.Ckpt_core.Superchain.id))
         0
  in
  let reliable = count_on 0 and flaky = count_on 1 in
  Alcotest.(check bool)
    (Printf.sprintf "flaky %d >= reliable %d" flaky reliable)
    true (flaky >= reliable);
  Alcotest.(check bool) "flaky checkpoints more than once" true (flaky > 1)

let test_kind_names () =
  Alcotest.(check string) "every" "ckpt-every-3" (Strategy.kind_name (Strategy.Ckpt_every 3));
  Alcotest.(check string) "budget" "ckpt-budget-2"
    (Strategy.kind_name (Strategy.Ckpt_budget 2))

let test_compare_strategies_consistency () =
  let setup = simple_setup Spec.Ligo ~tasks:300 ~processors:18 in
  let cmp = Pipeline.compare_strategies setup in
  check_close "rel_all" (cmp.Pipeline.em_all /. cmp.Pipeline.em_some) cmp.Pipeline.rel_all;
  check_close "rel_none" (cmp.Pipeline.em_none /. cmp.Pipeline.em_some) cmp.Pipeline.rel_none;
  Alcotest.(check bool) "ckpts_some <= ckpts_all" true
    (cmp.Pipeline.ckpts_some <= cmp.Pipeline.ckpts_all)

let test_prepare_rejects_bad_knobs () =
  let dag = Spec.generate Spec.Genome ~seed:1 ~tasks:50 () in
  Alcotest.(check bool) "pfail = 1 rejected" true
    (match Pipeline.prepare ~dag ~processors:2 ~pfail:1. ~ccr:0.01 () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "ccr = 0 rejected" true
    (match Pipeline.prepare ~dag ~processors:2 ~pfail:0.01 ~ccr:0. () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_prepare_sets_ccr () =
  let dag = Spec.generate Spec.Montage ~seed:3 ~tasks:50 () in
  let setup = Pipeline.prepare ~dag ~processors:3 ~pfail:0.001 ~ccr:0.05 () in
  let realised =
    Spec.ccr setup.Pipeline.raw ~bandwidth:setup.Pipeline.platform.Platform.bandwidth
  in
  check_close ~eps:1e-9 "ccr realised" 0.05 realised

let prop_ckptsome_never_loses_on_strict_mspgs =
  (* on strict M-SPGs there are no dummy-edge artifacts, but one small
     asymmetry remains: coalescing a segment makes it atomic, so a
     segment waits for the cross-superchain predecessors of ALL its
     tasks before starting, while CKPTALL's per-task granularity can
     overlap those waits. On adversarial random graphs this can hand
     CKPTALL a sub-percent edge; the paper-level claim is therefore
     checked with a 1% tolerance (it holds exactly on the three paper
     workflows — see the integration suite). *)
  QCheck.Test.make ~name:"CKPTSOME <= CKPTALL (1%) on random strict M-SPGs" ~count:40
    QCheck.(pair small_nat (int_range 2 5))
    (fun (seed, procs) ->
      let m = Random_wf.generate ~seed ~max_tasks:40 () in
      let setup =
        Pipeline.prepare ~dag:m.Mspg.dag ~processors:procs ~pfail:0.005 ~ccr:0.05 ()
      in
      let cmp = Pipeline.compare_strategies setup in
      cmp.Pipeline.rel_all >= 0.99)

let test_prepare_random_mspgs () =
  for seed = 0 to 10 do
    let m = Random_wf.generate ~seed ~max_tasks:40 () in
    let setup = Pipeline.prepare ~dag:m.Mspg.dag ~processors:3 ~pfail:0.01 ~ccr:0.01 () in
    let cmp = Pipeline.compare_strategies setup in
    if not (cmp.Pipeline.em_some > 0. && cmp.Pipeline.em_all > 0.) then
      Alcotest.failf "seed %d: non-positive makespans" seed
  done

let suite =
  [
    Alcotest.test_case "plan kinds" `Quick test_plan_kinds;
    Alcotest.test_case "CKPTALL segments" `Quick test_ckptall_one_segment_per_task;
    Alcotest.test_case "CKPTSOME fewer checkpoints" `Quick test_ckptsome_fewer_checkpoints;
    Alcotest.test_case "CKPTNONE bare" `Quick test_ckptnone_has_no_segments;
    Alcotest.test_case "segment map total" `Quick test_segment_of_task_total;
    Alcotest.test_case "prob dag well-formed" `Quick test_prob_dag_acyclic_and_sized;
    Alcotest.test_case "exit data checkpointed" `Quick test_exit_data_always_checkpointed;
    Alcotest.test_case "wpar bounds" `Quick test_wpar_positive_and_bounded;
    Alcotest.test_case "EM positive" `Quick test_expected_makespan_positive;
    Alcotest.test_case "EM >= failure-free" `Quick test_em_at_least_failure_free;
    Alcotest.test_case "Algorithm 2 beats fixed policies" `Quick test_ckptsome_optimal_over_positions;
    Alcotest.test_case "periodic positions" `Quick test_periodic_positions;
    Alcotest.test_case "CKPTSOME beats periodic" `Quick test_ckptsome_beats_periodic;
    Alcotest.test_case "budget strategy bounds" `Quick test_budget_strategy_bounds;
    Alcotest.test_case "segment dag mirrors prob dag" `Quick test_segment_dag_mirrors_prob_dag;
    Alcotest.test_case "exact vs Monte Carlo" `Slow test_exact_matches_montecarlo;
    Alcotest.test_case "exact available (superchain kinds)" `Quick test_exact_available_for_superchain_strategies;
    Alcotest.test_case "makespan distribution" `Quick test_makespan_distribution_consistency;
    Alcotest.test_case "heterogeneous checkpointing" `Quick test_heterogeneous_checkpointing;
    Alcotest.test_case "kind names" `Quick test_kind_names;
    Alcotest.test_case "comparison consistency" `Quick test_compare_strategies_consistency;
    Alcotest.test_case "prepare rejects bad knobs" `Quick test_prepare_rejects_bad_knobs;
    Alcotest.test_case "prepare sets CCR" `Quick test_prepare_sets_ccr;
    Alcotest.test_case "random M-SPG pipelines" `Quick test_prepare_random_mspgs;
    QCheck_alcotest.to_alcotest prop_ckptsome_never_loses_on_strict_mspgs;
  ]
