(* Tests for the recovery subsystem (Ckpt_recovery) and the
   degraded-mode execution loop (Ckpt_sim.Degrade): the permanent-
   failure model, residual-DAG construction, online schedule repair,
   and the repair-vs-restart comparison. *)

module Dag = Ckpt_dag.Dag
module Mortality = Ckpt_recovery.Mortality
module Residual = Ckpt_recovery.Residual
module Repair = Ckpt_recovery.Repair
module Engine = Ckpt_sim.Engine
module Runner = Ckpt_sim.Runner
module Degrade = Ckpt_sim.Degrade
module Failure = Ckpt_platform.Failure
module Platform = Ckpt_platform.Platform
module Rng = Ckpt_prob.Rng
module Strategy = Ckpt_core.Strategy
module Storage = Ckpt_storage.Storage
module Pipeline = Ckpt_core.Pipeline
module Spec = Ckpt_workflows.Spec

let check_close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps *. (1. +. abs_float expected) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

(* --- Mortality --- *)

let test_mortality_zero_rate () =
  let d = Mortality.draw (Rng.create 1) ~processors:4 ~lambda_death:0. ~max_losses:2 in
  Alcotest.(check bool) "all immortal" true (Array.for_all (fun x -> x = infinity) d)

let test_mortality_censoring () =
  let d = Mortality.draw (Rng.create 2) ~processors:8 ~lambda_death:0.1 ~max_losses:3 in
  let finite = Array.fold_left (fun acc x -> if x < infinity then acc + 1 else acc) 0 d in
  Alcotest.(check int) "exactly max_losses deaths" 3 finite;
  (* the censored instants are the earliest drawn ones: every kept
     instant is below every discarded one by construction, which we can
     only check indirectly — redraw without censoring *)
  let all = Mortality.draw (Rng.create 2) ~processors:8 ~lambda_death:0.1 ~max_losses:8 in
  let sorted = Array.copy all in
  Array.sort compare sorted;
  let threshold = sorted.(2) in
  Array.iteri
    (fun p x ->
      if x < infinity then check_close (Printf.sprintf "kept %d" p) all.(p) x
      else Alcotest.(check bool) "discarded are late" true (all.(p) >= threshold))
    d

let test_mortality_deterministic () =
  let a = Mortality.draw (Rng.create 3) ~processors:5 ~lambda_death:0.01 ~max_losses:5 in
  let b = Mortality.draw (Rng.create 3) ~processors:5 ~lambda_death:0.01 ~max_losses:5 in
  Alcotest.(check bool) "same seed, same deaths" true (a = b)

let test_mortality_survivors () =
  let deaths = [| 5.; infinity; 2.; infinity |] in
  Alcotest.(check (list int)) "after 3" [ 0; 1; 3 ] (Mortality.survivors deaths ~after:3.);
  Alcotest.(check (list int)) "after 5 (tie dies)" [ 1; 3 ]
    (Mortality.survivors deaths ~after:5.);
  Alcotest.(check (list int)) "after 0 (everyone still alive)" [ 0; 1; 2; 3 ]
    (Mortality.survivors deaths ~after:0.)

(* --- Residual --- *)

(* a -> b -> c, plus a shared file a -> c; a has an initial input *)
let chain_dag () =
  let d = Dag.create ~name:"chain" () in
  let a = Dag.add_task d ~name:"a" ~weight:10. in
  let b = Dag.add_task d ~name:"b" ~weight:20. in
  let c = Dag.add_task d ~name:"c" ~weight:30. in
  Dag.add_input d a 7.;
  Dag.add_edge d a b 100.;
  Dag.add_edge d a c 200.;
  Dag.add_edge d b c 300.;
  (d, a, b, c)

let test_residual_keeps_not_done () =
  let d, a, _, _ = chain_dag () in
  let done_ = Array.make 3 false in
  done_.(a) <- true;
  let sub, task_of = Residual.build ~dag:d ~done_ () in
  Alcotest.(check int) "two tasks left" 2 (Dag.n_tasks sub);
  Alcotest.(check (list int)) "mapping" [ 1; 2 ] (Array.to_list task_of);
  (* b now reads a->b's file from stable storage; c reads a->c's *)
  Alcotest.(check (list (float 1e-9))) "b inputs" [ 100. ] (Dag.inputs sub 0);
  Alcotest.(check (list (float 1e-9))) "c inputs" [ 200. ] (Dag.inputs sub 1);
  (* the internal edge b -> c survives with its file; total data is
     that file plus the two migrated re-reads *)
  Alcotest.(check bool) "b -> c kept" true (Dag.has_edge sub 0 1);
  check_close "total data = edge + migrated inputs" (300. +. 100. +. 200.)
    (Dag.total_data sub)

let test_residual_keeps_initial_inputs () =
  let d, _, _, _ = chain_dag () in
  let sub, _ = Residual.build ~dag:d ~done_:(Array.make 3 false) () in
  Alcotest.(check (list (float 1e-9))) "a keeps its initial input" [ 7. ] (Dag.inputs sub 0)

let test_residual_unreadable_rejoins () =
  (* a and b are done, but a's checkpoint no longer reads back valid:
     a rejoins the residual, b stays done — b's file into c becomes a
     stable-storage re-read while a's own re-execution feeds c through
     an ordinary edge again *)
  let d, a, b, _ = chain_dag () in
  let done_ = Array.make 3 false in
  done_.(a) <- true;
  done_.(b) <- true;
  let sub, task_of = Residual.build ~readable:(fun t -> t <> a) ~dag:d ~done_ () in
  Alcotest.(check (list int)) "a rejoined, c remained" [ 0; 2 ] (Array.to_list task_of);
  Alcotest.(check bool) "a -> c edge restored" true (Dag.has_edge sub 0 1);
  Alcotest.(check (list (float 1e-9))) "a keeps its initial input" [ 7. ] (Dag.inputs sub 0);
  Alcotest.(check (list (float 1e-9))) "c re-reads b's checkpoint" [ 300. ] (Dag.inputs sub 1);
  (* readable consulted only on done tasks: all-readable equals the
     plain build *)
  let plain, _ = Residual.build ~dag:d ~done_ () in
  let hooked, _ = Residual.build ~readable:(fun _ -> true) ~dag:d ~done_ () in
  check_close "identity hook changes nothing" (Dag.total_data plain) (Dag.total_data hooked)

let test_residual_rejects_all_done () =
  let d, _, _, _ = chain_dag () in
  Alcotest.(check bool) "rejected" true
    (match Residual.build ~dag:d ~done_:(Array.make 3 true) () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Engine.execute_until_death --- *)

let no_failures _ = Failure.create (Rng.create 1) ~lambda:0.

let test_death_free_matches_execute () =
  let segs =
    [| { Engine.processor = 0; duration = 3.; preds = [] };
       { Engine.processor = 1; duration = 5.; preds = [ 0 ] } |]
  in
  match Engine.execute_until_death segs no_failures ~death:(fun _ -> infinity) with
  | Engine.Finished (_, m) -> check_close "same makespan" 8. m
  | Engine.Interrupted _ -> Alcotest.fail "no deaths injected"

let test_idle_death_is_harmless () =
  (* p0 finishes at 3, dies at 4: nothing was lost *)
  let segs = [| { Engine.processor = 0; duration = 3.; preds = [] } |] in
  match
    Engine.execute_until_death segs no_failures ~death:(fun p ->
        if p = 0 then 4. else infinity)
  with
  | Engine.Finished (_, m) -> check_close "finished" 3. m
  | Engine.Interrupted _ -> Alcotest.fail "idle death must not interrupt"

let test_midflight_death_interrupts () =
  let segs =
    [| { Engine.processor = 0; duration = 2.; preds = [] };
       { Engine.processor = 0; duration = 10.; preds = [ 0 ] };
       { Engine.processor = 1; duration = 3.; preds = [] };
       { Engine.processor = 1; duration = 9.; preds = [ 2 ] } |]
  in
  match
    Engine.execute_until_death segs no_failures ~death:(fun p ->
        if p = 0 then 5. else infinity)
  with
  | Engine.Finished _ -> Alcotest.fail "p0 died mid-segment"
  | Engine.Interrupted { dead; at; completed } ->
      Alcotest.(check int) "dead processor" 0 dead;
      check_close "at the death instant" 5. at;
      Alcotest.(check (list bool)) "cut at the instant" [ true; false; true; false ]
        (Array.to_list completed)

let test_earliest_disruptive_death_wins () =
  let segs =
    [| { Engine.processor = 0; duration = 10.; preds = [] };
       { Engine.processor = 1; duration = 10.; preds = [] } |]
  in
  match
    Engine.execute_until_death segs no_failures ~death:(fun p ->
        if p = 0 then 7. else 4.)
  with
  | Engine.Finished _ -> Alcotest.fail "both died mid-segment"
  | Engine.Interrupted { dead; at; _ } ->
      Alcotest.(check int) "p1 died first" 1 dead;
      check_close "its instant" 4. at

let test_death_before_start_rejected () =
  let segs = [| { Engine.processor = 0; duration = 1.; preds = [] } |] in
  Alcotest.(check bool) "rejected" true
    (match
       Engine.execute_until_death ~start:5. segs no_failures ~death:(fun _ -> 4.)
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_start_offsets_execution () =
  let segs = [| { Engine.processor = 0; duration = 3.; preds = [] } |] in
  match Engine.execute_until_death ~start:10. segs no_failures ~death:(fun _ -> infinity) with
  | Engine.Finished (_, m) -> check_close "starts at 10" 13. m
  | Engine.Interrupted _ -> Alcotest.fail "no deaths injected"

(* --- Repair --- *)

let genome_plan ?(tasks = 50) ?(processors = 5) ?(seed = 1) () =
  let dag = Spec.generate Spec.Genome ~seed ~tasks () in
  let setup = Pipeline.prepare ~dag ~processors ~pfail:0.001 ~ccr:0.1 () in
  Pipeline.plan setup Strategy.Ckpt_some

let test_repair_no_survivors () =
  let plan = genome_plan () in
  Alcotest.(check bool) "error" true
    (match
       Repair.replan ~kind:Strategy.Ckpt_some ~dag:plan.Strategy.raw_dag
         ~done_:(Array.make (Dag.n_tasks plan.Strategy.raw_dag) false)
         ~survivors:[] ~platform:plan.Strategy.platform ()
     with
    | Error _ -> true
    | Ok _ -> false)

let test_repair_full_restart_plannable () =
  (* done_ = nothing: the "restart from scratch on survivors" fallback *)
  let plan = genome_plan () in
  let raw = plan.Strategy.raw_dag in
  match
    Repair.replan ~kind:Strategy.Ckpt_some ~dag:raw
      ~done_:(Array.make (Dag.n_tasks raw) false)
      ~survivors:[ 0; 2; 4 ] ~platform:plan.Strategy.platform ()
  with
  | Error msg -> Alcotest.failf "replan failed: %s" msg
  | Ok r ->
      Alcotest.(check int) "all tasks" (Dag.n_tasks raw)
        (Dag.n_tasks r.Repair.plan.Strategy.raw_dag);
      Alcotest.(check (list int)) "phys mapping" [ 0; 2; 4 ] (Array.to_list r.Repair.phys);
      Alcotest.(check int) "three processors"
        3 r.Repair.plan.Strategy.platform.Platform.processors

(* Simulate up to the first loss, then repair: the repaired plan must
   re-execute exactly the tasks that were not checkpointed before the
   loss — the acceptance property, checked across random workflows,
   death instants and transient-failure seeds. *)
let repaired_reexecutes_only_unsaved seed =
  let plan = genome_plan ~tasks:(30 + (seed mod 3 * 13)) ~seed:(seed + 1) () in
  let raw = plan.Strategy.raw_dag in
  let n = Dag.n_tasks raw in
  let platform = plan.Strategy.platform in
  let nprocs = platform.Platform.processors in
  let rng = Rng.for_trial ~seed:97 seed in
  (* a death rate high enough to usually interrupt the schedule *)
  let lambda_death = 2. /. plan.Strategy.wpar in
  let deaths =
    Mortality.draw rng ~processors:nprocs ~lambda_death ~max_losses:1
  in
  let trace_rngs = Array.init nprocs (fun _ -> Rng.split rng) in
  let trace_of p = Failure.create trace_rngs.(p) ~lambda:(Platform.rate_of platform p) in
  let prepared_segs = Runner.segs_of_plan plan in
  match
    Engine.execute_until_death prepared_segs trace_of ~death:(fun p -> deaths.(p))
  with
  | Engine.Finished _ -> true (* no loss struck: nothing to verify *)
  | Engine.Interrupted { at; completed; _ } ->
      let done_ = Array.make n false in
      Array.iteri
        (fun i ok ->
          if ok then begin
            let seg = plan.Strategy.segments.(i) in
            let sc =
              plan.Strategy.schedule.Ckpt_core.Schedule.superchains.(seg.Ckpt_core.Placement.chain)
            in
            for k = seg.Ckpt_core.Placement.first to seg.Ckpt_core.Placement.last do
              done_.(Ckpt_core.Superchain.task_at sc k) <- true
            done
          end)
        completed;
      let survivors = Mortality.survivors deaths ~after:at in
      if survivors = [] then true
      else begin
        match
          Repair.replan ~kind:Strategy.Ckpt_some ~dag:raw ~done_ ~survivors ~platform ()
        with
        | Error msg -> Alcotest.failf "replan failed: %s" msg
        | Ok r ->
            let residual = r.Repair.plan.Strategy.raw_dag in
            let saved = Array.fold_left (fun a d -> if d then a + 1 else a) 0 done_ in
            (* only unsaved work is re-executed... *)
            Array.iter
              (fun orig ->
                if done_.(orig) then
                  Alcotest.failf "task %d was checkpointed yet re-planned" orig)
              r.Repair.task_of;
            (* ...and all of it *)
            Alcotest.(check int) "every unsaved task replanned" (n - saved)
              (Dag.n_tasks residual);
            (* the replan only uses surviving processors *)
            Array.iter
              (fun (sc : Ckpt_core.Superchain.t) ->
                let phys = r.Repair.phys.(sc.Ckpt_core.Superchain.processor) in
                if not (List.mem phys survivors) then
                  Alcotest.failf "superchain mapped to dead processor %d" phys)
              r.Repair.plan.Strategy.schedule.Ckpt_core.Schedule.superchains;
            true
      end

let qcheck_repair_only_unsaved =
  QCheck.Test.make ~count:25 ~name:"repaired plan re-executes only unsaved work"
    QCheck.(int_range 0 10_000)
    repaired_reexecutes_only_unsaved

(* --- Degrade --- *)

let degrade_config ?(max_losses = 1) plan lambda_scale =
  {
    Degrade.lambda_death = lambda_scale /. plan.Strategy.wpar;
    max_losses;
    kind = Strategy.Ckpt_some;
    store = Ckpt_storage.Store.default;
  }

let test_degrade_no_deaths_matches_runner () =
  (* lambda_death = 0: the degraded run is a plain simulation *)
  let plan = genome_plan () in
  let config =
    { Degrade.lambda_death = 0.; max_losses = 1; kind = Strategy.Ckpt_some;
      store = Ckpt_storage.Store.default }
  in
  let trials = Degrade.sample ~trials:20 ~seed:5 ~mode:Degrade.Repair config plan in
  Array.iter
    (fun (t : Degrade.trial) ->
      Alcotest.(check int) "no losses" 0 t.Degrade.losses;
      Alcotest.(check bool) "finite" true (t.Degrade.makespan < infinity))
    trials

let test_degrade_deterministic_per_seed () =
  let plan = genome_plan () in
  let config = degrade_config plan 1.5 in
  let a = Degrade.sample ~trials:30 ~seed:3 ~mode:Degrade.Repair config plan in
  let b = Degrade.sample ~trials:30 ~seed:3 ~mode:Degrade.Repair config plan in
  Alcotest.(check bool) "bitwise reproducible" true (a = b)

let test_degrade_jobs_invariant () =
  let plan = genome_plan () in
  let config = degrade_config plan 1.5 in
  let seq = Degrade.sample ~trials:40 ~seed:9 ~jobs:1 ~mode:Degrade.Repair config plan in
  let par = Degrade.sample ~trials:40 ~seed:9 ~jobs:4 ~mode:Degrade.Repair config plan in
  Alcotest.(check bool) "bitwise identical at any --jobs" true (seq = par)

let test_degrade_losses_bounded () =
  let plan = genome_plan () in
  let config = degrade_config ~max_losses:2 plan 4. in
  let trials = Degrade.sample ~trials:30 ~seed:7 ~mode:Degrade.Repair config plan in
  Array.iter
    (fun (t : Degrade.trial) ->
      Alcotest.(check bool) "at most max_losses" true (t.Degrade.losses <= 2))
    trials

let test_degrade_stranded_when_all_die () =
  (* one processor, certain early death, nobody survives *)
  let plan = genome_plan ~processors:1 () in
  let config =
    { Degrade.lambda_death = 50. /. plan.Strategy.wpar; max_losses = 1;
      kind = Strategy.Ckpt_some; store = Ckpt_storage.Store.default }
  in
  let trials = Degrade.sample ~trials:20 ~seed:2 ~mode:Degrade.Repair config plan in
  let s = Degrade.summarize trials in
  Alcotest.(check bool) "some trial strands" true (s.Degrade.stranded > 0);
  Alcotest.(check bool) "mean goes infinite" true (s.Degrade.mean_makespan = infinity)

let test_repair_beats_restart_on_genome () =
  (* the headline acceptance check: GENOME with one injected permanent
     loss — online repair must beat restart-from-scratch in expectation
     (paired trials: both modes consume identical randomness) *)
  let plan = genome_plan () in
  let config = degrade_config plan 1.5 in
  let trials = 150 in
  let repair =
    Degrade.summarize (Degrade.sample ~trials ~seed:13 ~mode:Degrade.Repair config plan)
  in
  let restart =
    Degrade.summarize (Degrade.sample ~trials ~seed:13 ~mode:Degrade.Restart config plan)
  in
  Alcotest.(check bool) "losses actually struck" true (repair.Degrade.mean_losses > 0.3);
  if repair.Degrade.mean_makespan >= restart.Degrade.mean_makespan then
    Alcotest.failf "online repair (%.1f) does not beat restart (%.1f)"
      repair.Degrade.mean_makespan restart.Degrade.mean_makespan

let test_degrade_rejects_ckptnone () =
  let dag = Spec.generate Spec.Genome ~seed:1 ~tasks:50 () in
  let setup = Pipeline.prepare ~dag ~processors:5 ~pfail:0.001 ~ccr:0.1 () in
  let plan = Pipeline.plan setup Strategy.Ckpt_none in
  Alcotest.(check bool) "rejected" true
    (match Degrade.prepare plan with exception Invalid_argument _ -> true | _ -> false)

let suite =
  [
    Alcotest.test_case "mortality zero rate" `Quick test_mortality_zero_rate;
    Alcotest.test_case "mortality censoring" `Quick test_mortality_censoring;
    Alcotest.test_case "mortality deterministic" `Quick test_mortality_deterministic;
    Alcotest.test_case "mortality survivors" `Quick test_mortality_survivors;
    Alcotest.test_case "residual keeps not-done" `Quick test_residual_keeps_not_done;
    Alcotest.test_case "residual keeps initial inputs" `Quick test_residual_keeps_initial_inputs;
    Alcotest.test_case "residual rejects all-done" `Quick test_residual_rejects_all_done;
    Alcotest.test_case "residual: unreadable checkpoint rejoins" `Quick
      test_residual_unreadable_rejoins;
    Alcotest.test_case "death-free matches execute" `Quick test_death_free_matches_execute;
    Alcotest.test_case "idle death harmless" `Quick test_idle_death_is_harmless;
    Alcotest.test_case "mid-flight death interrupts" `Quick test_midflight_death_interrupts;
    Alcotest.test_case "earliest disruptive death wins" `Quick test_earliest_disruptive_death_wins;
    Alcotest.test_case "death before start rejected" `Quick test_death_before_start_rejected;
    Alcotest.test_case "start offsets execution" `Quick test_start_offsets_execution;
    Alcotest.test_case "repair: no survivors" `Quick test_repair_no_survivors;
    Alcotest.test_case "repair: full restart plannable" `Quick test_repair_full_restart_plannable;
    QCheck_alcotest.to_alcotest qcheck_repair_only_unsaved;
    Alcotest.test_case "degrade: no deaths" `Quick test_degrade_no_deaths_matches_runner;
    Alcotest.test_case "degrade: deterministic" `Quick test_degrade_deterministic_per_seed;
    Alcotest.test_case "degrade: jobs invariant" `Slow test_degrade_jobs_invariant;
    Alcotest.test_case "degrade: losses bounded" `Quick test_degrade_losses_bounded;
    Alcotest.test_case "degrade: stranded when all die" `Quick test_degrade_stranded_when_all_die;
    Alcotest.test_case "repair beats restart (GENOME)" `Slow test_repair_beats_restart_on_genome;
    Alcotest.test_case "degrade rejects CKPTNONE" `Quick test_degrade_rejects_ckptnone;
  ]
