(* Tests for Ckpt_resilience: the CRC-guarded journal (round-trips,
   corruption handling, atomicity), deterministic retry backoff, the
   wall-clock deadline, the fault injector, and the headline property —
   a sweep killed at a random cell and resumed from its journal
   reproduces the uninterrupted sweep's output bitwise, without
   recomputing journaled cells. *)

module Journal = Ckpt_resilience.Journal
module Retry = Ckpt_resilience.Retry
module Deadline = Ckpt_resilience.Deadline
module Faulty = Ckpt_resilience.Faulty
module Rerror = Ckpt_resilience.Error
module Rng = Ckpt_prob.Rng

let tmp_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ckptwf_test_journal_%d_%d.log" (Unix.getpid ()) !counter)

let with_tmp f =
  let path = tmp_path () in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp"))
    (fun () -> f path)

let ok_journal = function
  | Ok j -> j
  | Error e -> Alcotest.failf "journal open failed: %s" (Rerror.to_string e)

(* --- journal --- *)

let test_journal_roundtrip () =
  with_tmp @@ fun path ->
  let j = ok_journal (Journal.open_ path) in
  Journal.append j ~key:"a" ~value:"1";
  Journal.append j ~key:"b" ~value:"row with spaces\tand a tab";
  Journal.append j ~key:"c" ~value:"";
  let j' = ok_journal (Journal.open_ path) in
  Alcotest.(check int) "entries survive" 3 (Journal.length j');
  Alcotest.(check (option string)) "a" (Some "1") (Journal.find j' "a");
  Alcotest.(check (option string)) "tab value" (Some "row with spaces\tand a tab")
    (Journal.find j' "b");
  Alcotest.(check (option string)) "empty value" (Some "") (Journal.find j' "c");
  Alcotest.(check (option string)) "absent" None (Journal.find j' "zzz");
  Alcotest.(check bool) "no recovery needed" false (Journal.recovered_tail j');
  Alcotest.(check (list (pair string string)))
    "append order" [ ("a", "1"); ("b", "row with spaces\tand a tab"); ("c", "") ]
    (Journal.entries j')

let test_journal_first_binding_wins () =
  with_tmp @@ fun path ->
  let j = ok_journal (Journal.open_ path) in
  Journal.append j ~key:"k" ~value:"first";
  Journal.append j ~key:"k" ~value:"second";
  let j' = ok_journal (Journal.open_ path) in
  Alcotest.(check (option string)) "first wins" (Some "first") (Journal.find j' "k")

let test_journal_fresh_discards () =
  with_tmp @@ fun path ->
  let j = ok_journal (Journal.open_ path) in
  Journal.append j ~key:"old" ~value:"1";
  let j' = ok_journal (Journal.open_ ~fresh:true path) in
  Alcotest.(check int) "fresh is empty" 0 (Journal.length j');
  Journal.append j' ~key:"new" ~value:"2";
  let j'' = ok_journal (Journal.open_ path) in
  Alcotest.(check (option string)) "old gone" None (Journal.find j'' "old");
  Alcotest.(check (option string)) "new kept" (Some "2") (Journal.find j'' "new")

let test_journal_torn_tail_recovered () =
  with_tmp @@ fun path ->
  let j = ok_journal (Journal.open_ path) in
  Journal.append j ~key:"a" ~value:"1";
  Journal.append j ~key:"b" ~value:"2";
  (* simulate a crash mid-write of a third entry: torn trailing line *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "deadbeef\tc\ttrunc";
  (* no newline, wrong CRC *)
  close_out oc;
  let j' = ok_journal (Journal.open_ path) in
  Alcotest.(check int) "intact prefix kept" 2 (Journal.length j');
  Alcotest.(check bool) "tail drop reported" true (Journal.recovered_tail j')

let test_journal_mid_corruption_rejected () =
  with_tmp @@ fun path ->
  let j = ok_journal (Journal.open_ path) in
  Journal.append j ~key:"a" ~value:"1";
  Journal.append j ~key:"b" ~value:"2";
  (* flip a byte inside the FIRST line: not a torn tail, real damage *)
  let ic = open_in_bin path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let corrupted = Bytes.of_string content in
  Bytes.set corrupted (String.index content '\t' + 1) '\255';
  let oc = open_out_bin path in
  output_bytes oc corrupted;
  close_out oc;
  match Journal.open_ path with
  | Error (Rerror.Journal_corrupt { line = 1; _ }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Rerror.to_string e)
  | Ok _ -> Alcotest.fail "corrupted journal accepted"

let test_journal_atomic_no_temp_left () =
  with_tmp @@ fun path ->
  let j = ok_journal (Journal.open_ path) in
  Journal.append j ~key:"a" ~value:"1";
  Alcotest.(check bool) "temp renamed away" false (Sys.file_exists (path ^ ".tmp"))

let test_journal_injected_crash_preserves_previous () =
  with_tmp @@ fun path ->
  let j = ok_journal (Journal.open_ path) in
  Journal.append j ~key:"a" ~value:"1";
  (* second append dies before the physical write: the on-disk journal
     must still hold exactly the first entry *)
  let faulty = Faulty.after 0 in
  let j2 = ok_journal (Journal.open_ ~inject:(Faulty.guard faulty "journal write") path) in
  (try
     Journal.append j2 ~key:"b" ~value:"2";
     Alcotest.fail "injection did not fire"
   with Faulty.Injected _ -> ());
  let j' = ok_journal (Journal.open_ path) in
  Alcotest.(check (list (pair string string))) "old state intact" [ ("a", "1") ]
    (Journal.entries j')

let test_journal_rejects_newline_key () =
  with_tmp @@ fun path ->
  let j = ok_journal (Journal.open_ path) in
  (try
     Journal.append j ~key:"bad\nkey" ~value:"v";
     Alcotest.fail "newline key accepted"
   with Rerror.E (Rerror.Io _) -> ());
  try
    Journal.append j ~key:"tab\tkey" ~value:"v";
    Alcotest.fail "tab key accepted"
  with Rerror.E (Rerror.Io _) -> ()

(* --- journal format version --- *)

let render_line key value =
  Printf.sprintf "%08lx\t%s\t%s\n" (Journal.crc32 (key ^ "\t" ^ value)) key value

let write_raw path lines =
  let oc = open_out_bin path in
  List.iter (output_string oc) lines;
  close_out oc

let test_journal_version_header () =
  with_tmp @@ fun path ->
  let j = ok_journal (Journal.open_ path) in
  Journal.append j ~key:"a" ~value:"1";
  let ic = open_in_bin path in
  let first = input_line ic in
  close_in ic;
  Alcotest.(check string) "header line first"
    (String.trim (render_line "__journal_format__" (string_of_int Journal.format_version)))
    first;
  let j' = ok_journal (Journal.open_ path) in
  Alcotest.(check (option string)) "reopens" (Some "1") (Journal.find j' "a")

let check_version_error msg ~found result =
  match result with
  | Error (Rerror.Journal_version { found = f; expected; _ } as e) ->
      Alcotest.(check string) (msg ^ ": found") found f;
      Alcotest.(check string) (msg ^ ": expected")
        (string_of_int Journal.format_version)
        expected;
      Alcotest.(check int) (msg ^ ": exit code 3") 3 (Rerror.exit_code e);
      Alcotest.(check bool) (msg ^ ": one-line message") false
        (String.contains (Rerror.to_string e) '\n')
  | Ok _ -> Alcotest.fail (msg ^ ": opened a wrong-version journal")
  | Error e -> Alcotest.failf "%s: wrong error: %s" msg (Rerror.to_string e)

let test_journal_version_mismatch () =
  with_tmp @@ fun path ->
  (* a legacy (unversioned) journal: valid CRC entries, no header *)
  write_raw path [ render_line "a" "1"; render_line "b" "2" ];
  check_version_error "legacy journal" ~found:"1 (unversioned)" (Journal.open_ path);
  (* a future format version *)
  write_raw path [ render_line "__journal_format__" "99"; render_line "a" "1" ];
  check_version_error "future journal" ~found:"99" (Journal.open_ path);
  (* --resume semantics: [fresh] truncation ignores the stale file *)
  write_raw path [ render_line "a" "1" ];
  let j = ok_journal (Journal.open_ ~fresh:true path) in
  Alcotest.(check int) "fresh open truncates" 0 (Journal.length j)

let test_crc32_known_vector () =
  (* IEEE CRC-32 of "123456789" is 0xCBF43926 *)
  Alcotest.(check int32) "check vector" 0xCBF43926l (Journal.crc32 "123456789");
  Alcotest.(check int32) "empty" 0l (Journal.crc32 "")

(* --- retry --- *)

let test_backoff_deterministic () =
  let policy = { Retry.default with max_attempts = 6 } in
  let s1 = Retry.schedule ~rng:(Rng.create 42) policy in
  let s2 = Retry.schedule ~rng:(Rng.create 42) policy in
  let s3 = Retry.schedule ~rng:(Rng.create 43) policy in
  Alcotest.(check (array (float 0.))) "same seed, same schedule" s1 s2;
  Alcotest.(check bool) "different seed, different jitter" true (s1 <> s3);
  Alcotest.(check int) "length" 5 (Array.length s1)

let test_backoff_shape () =
  let policy =
    { Retry.max_attempts = 8; base_delay = 0.1; multiplier = 2.; max_delay = 1.; jitter = 0. }
  in
  let s = Retry.schedule policy in
  Alcotest.(check (float 1e-9)) "first" 0.1 s.(0);
  Alcotest.(check (float 1e-9)) "doubles" 0.2 s.(1);
  Alcotest.(check (float 1e-9)) "capped" 1. s.(6);
  let policy_j = { policy with jitter = 0.25 } in
  Array.iteri
    (fun k d ->
      let nominal = Float.min 1. (0.1 *. (2. ** float_of_int k)) in
      if d < 0.75 *. nominal -. 1e-9 || d > 1.25 *. nominal +. 1e-9 then
        Alcotest.failf "jittered delay %g outside +-25%% of %g" d nominal)
    (Retry.schedule ~rng:(Rng.create 7) policy_j)

let fast = { Retry.default with base_delay = 0.; max_delay = 0. }

let test_retry_recovers () =
  (* a transient fault that kills the first two attempts and clears *)
  let faulty = Faulty.after 0 in
  let attempts = ref 0 in
  let result =
    Retry.with_retries ~policy:fast (fun ~attempt ->
        incr attempts;
        if !attempts >= 3 then Faulty.disarm faulty;
        Faulty.inject faulty "op";
        attempt)
  in
  (match result with
  | Ok a -> Alcotest.(check int) "succeeded on 3rd try" 3 a
  | Error e -> Alcotest.failf "unexpected failure: %s" (Rerror.to_string e));
  Alcotest.(check int) "attempt count" 3 !attempts

let test_retry_exhausts () =
  let faulty = Faulty.after 0 in
  match
    Retry.with_retries ~policy:{ fast with max_attempts = 3 } (fun ~attempt:_ ->
        Faulty.inject faulty "op")
  with
  | Ok () -> Alcotest.fail "should have exhausted"
  | Error (Rerror.Retries_exhausted { attempts; _ }) ->
      Alcotest.(check int) "attempts" 3 attempts
  | Error e -> Alcotest.failf "wrong error: %s" (Rerror.to_string e)

let test_retry_propagates_fatal () =
  match
    Retry.with_retries ~policy:fast (fun ~attempt:_ -> invalid_arg "not transient")
  with
  | exception Invalid_argument _ -> ()
  | Ok () -> Alcotest.fail "returned Ok"
  | Error _ -> Alcotest.fail "fatal error retried"

let test_retry_sleeps_schedule () =
  let slept = ref [] in
  let policy =
    { Retry.max_attempts = 3; base_delay = 0.5; multiplier = 3.; max_delay = 10.; jitter = 0. }
  in
  let faulty = Faulty.after 0 in
  (match
     Retry.with_retries ~policy ~sleep:(fun d -> slept := d :: !slept)
       (fun ~attempt:_ -> Faulty.inject faulty "op")
   with
  | Ok () -> Alcotest.fail "should exhaust"
  | Error _ -> ());
  Alcotest.(check (list (float 1e-9))) "slept the schedule" [ 0.5; 1.5 ] (List.rev !slept)

let test_retry_deadline_cuts_backoff () =
  (* injectable clock: the sleep advances it, so the second backoff —
     nominally 10s — must be cut to the 2s of budget left, and the
     retry loop must stop the moment the clock runs out *)
  let now = ref 0. in
  let slept = ref [] in
  let sleep d =
    slept := d :: !slept;
    now := !now +. d
  in
  let deadline = Deadline.make ~clock:(fun () -> !now) ~seconds:12. () in
  let policy =
    { Retry.max_attempts = 5; base_delay = 10.; multiplier = 1.; max_delay = 10.; jitter = 0. }
  in
  let faulty = Faulty.after 0 in
  (match
     Retry.with_retries ~policy ~sleep ~deadline (fun ~attempt:_ -> Faulty.inject faulty "op")
   with
  | Error (Rerror.Deadline_exceeded { budget; completed }) ->
      Alcotest.(check (float 1e-9)) "budget" 12. budget;
      Alcotest.(check int) "attempts completed" 2 completed
  | Ok () -> Alcotest.fail "should not succeed"
  | Error e -> Alcotest.failf "wrong error: %s" (Rerror.to_string e));
  Alcotest.(check (list (float 1e-9))) "second nap cut to remaining budget" [ 10.; 2. ]
    (List.rev !slept);
  Alcotest.(check (float 1e-9)) "clock at the deadline" 12. !now

(* --- deadline --- *)

let test_deadline_never () =
  Alcotest.(check bool) "never not expired" false (Deadline.expired Deadline.never);
  Alcotest.(check (float 0.)) "infinite remaining" infinity
    (Deadline.remaining Deadline.never);
  Deadline.check Deadline.never ~completed:0

let test_deadline_fake_clock () =
  let now = ref 100. in
  let d = Deadline.make ~clock:(fun () -> !now) ~seconds:5. () in
  Alcotest.(check bool) "fresh" false (Deadline.expired d);
  Alcotest.(check (float 1e-9)) "remaining" 5. (Deadline.remaining d);
  now := 104.9;
  Alcotest.(check bool) "almost" false (Deadline.expired d);
  now := 105.;
  Alcotest.(check bool) "expired at boundary" true (Deadline.expired d);
  Alcotest.(check (float 0.)) "no negative remaining" 0. (Deadline.remaining d);
  match Deadline.check d ~completed:17 with
  | exception Rerror.E (Rerror.Deadline_exceeded { budget; completed }) ->
      Alcotest.(check (float 1e-9)) "budget" 5. budget;
      Alcotest.(check int) "completed" 17 completed
  | () -> Alcotest.fail "check did not raise"

let test_montecarlo_deadline_cutoff () =
  let dag = Ckpt_workflows.Spec.generate Ckpt_workflows.Spec.Genome ~seed:1 ~tasks:50 () in
  let setup = Ckpt_core.Pipeline.prepare ~dag ~processors:5 ~pfail:0.001 ~ccr:0.01 () in
  let plan = Ckpt_core.Pipeline.plan setup Ckpt_core.Strategy.Ckpt_some in
  let pd = Option.get plan.Ckpt_core.Strategy.prob_dag in
  (* a clock that jumps past the budget after a few reads: the sampler
     must stop at a partial, non-zero count *)
  let reads = ref 0 in
  let clock () =
    incr reads;
    if !reads > 3 then 1000. else 0.
  in
  let deadline = Deadline.make ~clock ~seconds:1. () in
  let stats = Ckpt_eval.Montecarlo.estimate_with_stats ~trials:100_000 ~deadline pd in
  let count = Ckpt_prob.Stats.count stats in
  Alcotest.(check bool) "cut off early" true (count < 100_000);
  Alcotest.(check bool) "progress checkpointed" true (count > 0);
  Alcotest.(check bool) "mean finite" true (Float.is_finite (Ckpt_prob.Stats.mean stats))

let test_runner_deadline_cutoff () =
  let dag = Ckpt_workflows.Spec.generate Ckpt_workflows.Spec.Genome ~seed:1 ~tasks:50 () in
  let setup = Ckpt_core.Pipeline.prepare ~dag ~processors:5 ~pfail:0.001 ~ccr:0.01 () in
  let plan = Ckpt_core.Pipeline.plan setup Ckpt_core.Strategy.Ckpt_some in
  let reads = ref 0 in
  let clock () =
    incr reads;
    if !reads > 5 then 1000. else 0.
  in
  let deadline = Deadline.make ~clock ~seconds:1. () in
  let sample = Ckpt_sim.Runner.sample_makespans ~trials:10_000 ~deadline plan in
  Alcotest.(check bool) "cut off early" true (Array.length sample < 10_000);
  Alcotest.(check bool) "at least one trial" true (Array.length sample >= 1)

(* --- fault injector --- *)

let test_faulty_after_deterministic () =
  let f = Faulty.after 3 in
  Faulty.inject f "a";
  Faulty.inject f "b";
  Faulty.inject f "c";
  (try
     Faulty.inject f "d";
     Alcotest.fail "4th call survived"
   with Faulty.Injected "d" -> ());
  Alcotest.(check int) "calls" 4 (Faulty.calls f);
  Alcotest.(check int) "injections" 1 (Faulty.injections f);
  Faulty.disarm f;
  Faulty.inject f "e"

let test_faulty_probabilistic_deterministic () =
  let run seed =
    let f = Faulty.probabilistic ~prob:0.3 ~seed () in
    List.init 100 (fun i ->
        match Faulty.inject f (string_of_int i) with () -> false | exception Faulty.Injected _ -> true)
  in
  Alcotest.(check (list bool)) "same seed, same crashes" (run 5) (run 5);
  let crashes = List.filter Fun.id (run 5) in
  Alcotest.(check bool) "some crashes at prob 0.3" true (List.length crashes > 5)

let test_runner_injected_retry_reproduces () =
  let dag = Ckpt_workflows.Spec.generate Ckpt_workflows.Spec.Genome ~seed:1 ~tasks:50 () in
  let setup = Ckpt_core.Pipeline.prepare ~dag ~processors:5 ~pfail:0.001 ~ccr:0.01 () in
  let plan = Ckpt_core.Pipeline.plan setup Ckpt_core.Strategy.Ckpt_some in
  let undisturbed = Ckpt_sim.Runner.sample_makespans ~trials:50 plan in
  let faulty = Faulty.probabilistic ~prob:0.2 ~seed:9 () in
  let injected =
    Ckpt_sim.Runner.sample_makespans ~trials:50
      ~inject:(fun ~trial:_ -> Faulty.inject faulty "engine step")
      ~retry:{ Retry.default with base_delay = 0.; max_delay = 0.; max_attempts = 50 }
      plan
  in
  Alcotest.(check bool) "faults were injected" true (Faulty.injections faulty > 0);
  Alcotest.(check (array (float 0.))) "retried run reproduces samples" undisturbed injected

(* --- the headline property: crash at a random cell, resume, compare --- *)

(* A miniature sweep shaped like the CLI's: cells are keyed, computed
   rows are journaled before being emitted, and a resumed run replays
   journaled rows verbatim. [compute_log] counts real computations. *)
let journaled_sweep ~path ~resume ~faulty ~compute_log cells compute =
  let j = ok_journal (Journal.open_ ~fresh:(not resume) path) in
  List.map
    (fun cell ->
      let key = Printf.sprintf "cell|%d" cell in
      match Journal.find j key with
      | Some stored -> stored
      | None ->
          Faulty.inject faulty "sweep cell";
          incr compute_log;
          let row = compute cell in
          Journal.append j ~key ~value:row;
          row)
    cells

let prop_crash_resume_identical =
  QCheck.Test.make ~name:"journaled sweep: crash at random cell + resume == uninterrupted"
    ~count:60
    QCheck.(pair (int_range 1 20) (int_range 0 25))
    (fun (n_cells, crash_at) ->
      with_tmp @@ fun path ->
      let cells = List.init n_cells Fun.id in
      (* a deterministic, mildly expensive row function *)
      let compute cell =
        Printf.sprintf "row %d -> %.6f" cell (sin (float_of_int cell) *. 1000.)
      in
      let computed = ref 0 in
      let uninterrupted =
        journaled_sweep ~path:(path ^ ".ref") ~resume:false ~faulty:(Faulty.never ())
          ~compute_log:computed cells compute
      in
      Sys.remove (path ^ ".ref");
      (* first run: killed before computing cell [crash_at] (if within
         range; otherwise it completes) *)
      let crashed =
        match
          journaled_sweep ~path ~resume:false ~faulty:(Faulty.after crash_at)
            ~compute_log:(ref 0) cells compute
        with
        | _ -> false
        | exception Faulty.Injected _ -> true
      in
      (* resumed run: must not recompute journaled cells and must emit
         exactly the uninterrupted output *)
      let recomputed = ref 0 in
      let resumed =
        journaled_sweep ~path ~resume:true ~faulty:(Faulty.never ())
          ~compute_log:recomputed cells compute
      in
      let expected_recomputed = if crashed then n_cells - min crash_at n_cells else 0 in
      resumed = uninterrupted && !recomputed = expected_recomputed)

let prop_journal_reload_roundtrip =
  QCheck.Test.make ~name:"journal reload preserves entries" ~count:50
    QCheck.(small_list (pair (int_range 0 1000) small_printable_string))
    (fun kvs ->
      (* keys must be tab/newline free: derive from the int *)
      with_tmp @@ fun path ->
      let sanitize v =
        String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) v
      in
      let j = ok_journal (Journal.open_ path) in
      let written =
        List.mapi
          (fun i (k, v) ->
            let key = Printf.sprintf "k%d-%d" i k in
            let value = sanitize v in
            Journal.append j ~key ~value;
            (key, value))
          kvs
      in
      let j' = ok_journal (Journal.open_ path) in
      Journal.entries j' = written)

let suite =
  [
    Alcotest.test_case "journal roundtrip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal first binding wins" `Quick test_journal_first_binding_wins;
    Alcotest.test_case "journal fresh discards" `Quick test_journal_fresh_discards;
    Alcotest.test_case "journal torn tail recovered" `Quick test_journal_torn_tail_recovered;
    Alcotest.test_case "journal mid corruption rejected" `Quick
      test_journal_mid_corruption_rejected;
    Alcotest.test_case "journal atomic (no temp left)" `Quick test_journal_atomic_no_temp_left;
    Alcotest.test_case "journal crash preserves previous" `Quick
      test_journal_injected_crash_preserves_previous;
    Alcotest.test_case "journal rejects bad keys" `Quick test_journal_rejects_newline_key;
    Alcotest.test_case "journal version header" `Quick test_journal_version_header;
    Alcotest.test_case "journal version mismatch" `Quick test_journal_version_mismatch;
    Alcotest.test_case "crc32 known vector" `Quick test_crc32_known_vector;
    Alcotest.test_case "backoff deterministic" `Quick test_backoff_deterministic;
    Alcotest.test_case "backoff shape" `Quick test_backoff_shape;
    Alcotest.test_case "retry recovers" `Quick test_retry_recovers;
    Alcotest.test_case "retry exhausts" `Quick test_retry_exhausts;
    Alcotest.test_case "retry propagates fatal" `Quick test_retry_propagates_fatal;
    Alcotest.test_case "retry sleeps schedule" `Quick test_retry_sleeps_schedule;
    Alcotest.test_case "retry deadline cuts backoff" `Quick test_retry_deadline_cuts_backoff;
    Alcotest.test_case "deadline never" `Quick test_deadline_never;
    Alcotest.test_case "deadline fake clock" `Quick test_deadline_fake_clock;
    Alcotest.test_case "montecarlo deadline cutoff" `Quick test_montecarlo_deadline_cutoff;
    Alcotest.test_case "runner deadline cutoff" `Quick test_runner_deadline_cutoff;
    Alcotest.test_case "faulty after-N deterministic" `Quick test_faulty_after_deterministic;
    Alcotest.test_case "faulty probabilistic deterministic" `Quick
      test_faulty_probabilistic_deterministic;
    Alcotest.test_case "runner injected+retried reproduces" `Quick
      test_runner_injected_retry_reproduces;
    QCheck_alcotest.to_alcotest prop_crash_resume_identical;
    QCheck_alcotest.to_alcotest prop_journal_reload_roundtrip;
  ]
