(* Tests for Ckpt_core.Toueg: the generic checkpoint DP against
   closed-form cases and exhaustive search. *)

module Toueg = Ckpt_core.Toueg

let check_close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps *. (1. +. abs_float expected) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

let test_single_task () =
  let value, positions = Toueg.solve ~n:1 ~cost:(fun _ _ -> 5.) in
  check_close "value" 5. value;
  Alcotest.(check (list int)) "only final checkpoint" [ 0 ] positions

let test_additive_cost_indifferent () =
  (* when cost(i,j) = j-i+1 (pure additivity), any split gives n *)
  let value, positions = Toueg.solve ~n:6 ~cost:(fun i j -> float_of_int (j - i + 1)) in
  check_close "value" 6. value;
  Alcotest.(check bool) "ends with last" true (List.rev positions |> List.hd = 5)

let test_superadditive_prefers_splits () =
  (* quadratic segment cost: splitting always helps *)
  let cost i j =
    let len = float_of_int (j - i + 1) in
    (len *. len) +. 0.01
  in
  let _, positions = Toueg.solve ~n:8 ~cost in
  Alcotest.(check int) "checkpoint everywhere" 8 (List.length positions)

let test_expensive_checkpoint_prefers_none () =
  (* heavy fixed cost per segment: single segment optimal *)
  let cost i j = float_of_int (j - i + 1) +. 100. in
  let value, positions = Toueg.solve ~n:8 ~cost in
  check_close "value" 108. value;
  Alcotest.(check (list int)) "single segment" [ 7 ] positions

let test_positions_sorted_and_end () =
  let cost i j =
    let len = float_of_int (j - i + 1) in
    (len ** 1.5) +. 0.5
  in
  let _, positions = Toueg.solve ~n:12 ~cost in
  let sorted = List.sort compare positions in
  Alcotest.(check (list int)) "sorted" sorted positions;
  Alcotest.(check int) "last is n-1" 11 (List.rev positions |> List.hd)

let test_matches_brute_force () =
  (* randomised costs, exhaustive comparison *)
  let rng = Ckpt_prob.Rng.create 17 in
  for _ = 1 to 25 do
    let n = 2 + Ckpt_prob.Rng.int rng 8 in
    let table = Array.init n (fun _ -> Array.init n (fun _ -> Ckpt_prob.Rng.float rng 10.)) in
    let cost i j = table.(i).(j) +. (float_of_int (j - i + 1) ** 1.3) in
    let dp_value, dp_positions = Toueg.solve ~n ~cost in
    let bf_value, _ = Toueg.brute_force ~n ~cost in
    check_close "optimal value matches brute force" bf_value dp_value;
    (* the DP's reported positions must realise its value *)
    let realised =
      let rec total start = function
        | [] -> 0.
        | p :: rest -> cost start p +. total (p + 1) rest
      in
      total 0 dp_positions
    in
    check_close "positions realise value" dp_value realised
  done

let test_chain_cost_first_order () =
  (* single task, r=1, w=2, c=3: S=6; T = (1-6λ)6 + 6λ*9 *)
  let lambda = 0.001 in
  let t =
    Toueg.chain_cost ~lambda ~read:(fun _ -> 1.) ~weight:(fun _ -> 2.) ~write:(fun _ -> 3.) 0 0
  in
  let s = 6. in
  check_close "Eq.2" (((1. -. (lambda *. s)) *. s) +. (lambda *. s *. 1.5 *. s)) t

let test_chain_cost_segment () =
  (* segment [1..2] of a chain: read input of task 1, weights w1+w2,
     write output of task 2 *)
  let read k = if k = 1 then 10. else 99. in
  let write k = if k = 2 then 5. else 99. in
  let weight _ = 7. in
  let t = Toueg.chain_cost ~lambda:0. ~read ~weight ~write 1 2 in
  check_close "S with no failure" (10. +. 14. +. 5.) t

let test_chain_toueg_balances () =
  (* uniform chain of 10 unit tasks, moderate failure rate, cheap but
     non-free checkpoints: the optimum is strictly between 1 and 10
     segments *)
  let lambda = 0.05 in
  let cost =
    Toueg.chain_cost ~lambda ~read:(fun _ -> 0.2) ~weight:(fun _ -> 1.) ~write:(fun _ -> 0.2)
  in
  let _, positions = Toueg.solve ~n:10 ~cost in
  let k = List.length positions in
  Alcotest.(check bool) (Printf.sprintf "1 < %d < 10 checkpoints" k) true (k > 1 && k < 10)

let test_lambda_monotonicity () =
  (* higher failure rate never decreases the number of checkpoints *)
  let count lambda =
    let cost =
      Toueg.chain_cost ~lambda ~read:(fun _ -> 0.3) ~weight:(fun _ -> 1.) ~write:(fun _ -> 0.3)
    in
    List.length (snd (Toueg.solve ~n:12 ~cost))
  in
  Alcotest.(check bool) "monotone in lambda" true
    (count 0.001 <= count 0.01 && count 0.01 <= count 0.1)

let test_budget_equals_unbudgeted_when_loose () =
  let rng = Ckpt_prob.Rng.create 23 in
  for _ = 1 to 10 do
    let n = 2 + Ckpt_prob.Rng.int rng 8 in
    let table = Array.init n (fun _ -> Array.init n (fun _ -> Ckpt_prob.Rng.float rng 10.)) in
    let cost i j = table.(i).(j) +. (float_of_int (j - i + 1) ** 1.3) in
    let v1, p1 = Toueg.solve ~n ~cost in
    let v2, p2 = Toueg.solve_budget ~n ~cost ~budget:n in
    check_close "same value" v1 v2;
    Alcotest.(check (list int)) "same positions" p1 p2
  done

let test_budget_one_is_single_segment () =
  let cost i j = float_of_int ((j - i + 1) * (j - i + 1)) in
  let v, p = Toueg.solve_budget ~n:6 ~cost ~budget:1 in
  check_close "whole chain" 36. v;
  Alcotest.(check (list int)) "single final checkpoint" [ 5 ] p

let test_budget_monotone () =
  (* more budget never hurts *)
  let rng = Ckpt_prob.Rng.create 29 in
  let n = 10 in
  let table = Array.init n (fun _ -> Array.init n (fun _ -> Ckpt_prob.Rng.float rng 5.)) in
  let cost i j = table.(i).(j) +. (float_of_int (j - i + 1) ** 1.5) in
  let prev = ref infinity in
  for b = 1 to n do
    let v, positions = Toueg.solve_budget ~n ~cost ~budget:b in
    if v > !prev +. 1e-9 then Alcotest.failf "budget %d worse than %d" b (b - 1);
    if List.length positions > b then
      Alcotest.failf "budget %d exceeded: %d checkpoints" b (List.length positions);
    prev := v
  done

let test_budget_matches_constrained_brute_force () =
  let rng = Ckpt_prob.Rng.create 31 in
  for _ = 1 to 10 do
    let n = 3 + Ckpt_prob.Rng.int rng 6 in
    let table = Array.init n (fun _ -> Array.init n (fun _ -> Ckpt_prob.Rng.float rng 10.)) in
    let cost i j = table.(i).(j) +. (float_of_int (j - i + 1) ** 1.4) in
    let budget = 1 + Ckpt_prob.Rng.int rng 3 in
    let dp_value, dp_positions = Toueg.solve_budget ~n ~cost ~budget in
    (* brute force over all subsets with <= budget checkpoints *)
    let best = ref infinity in
    for mask = 0 to (1 lsl (n - 1)) - 1 do
      let count = ref 1 in
      for k = 0 to n - 2 do
        if mask land (1 lsl k) <> 0 then incr count
      done;
      if !count <= budget then begin
        let total = ref 0. and start = ref 0 in
        for k = 0 to n - 1 do
          if k = n - 1 || mask land (1 lsl k) <> 0 then begin
            total := !total +. cost !start k;
            start := k + 1
          end
        done;
        if !total < !best then best := !total
      end
    done;
    check_close "constrained optimum" !best dp_value;
    Alcotest.(check bool) "budget respected" true (List.length dp_positions <= budget)
  done

let test_brute_force_pinned_set () =
  (* n=5 where the only two cheap segments are [0..1] and [2..4]: the
     unique optimum is the checkpoint set {1, 4}. Pins the exact
     returned list — ascending, ending at n-1 — through the linear
     set-accumulation path. *)
  let cost i j = if (i, j) = (0, 1) || (i, j) = (2, 4) then 1. else 10. in
  let value, positions = Toueg.brute_force ~n:5 ~cost in
  check_close "value" 2. value;
  Alcotest.(check (list int)) "pinned set" [ 1; 4 ] positions;
  (* strictly superadditive costs: every position checkpointed, in
     ascending order *)
  let quad i j =
    let len = float_of_int (j - i + 1) in
    (len *. len) +. 0.01
  in
  let _, all = Toueg.brute_force ~n:5 ~cost:quad in
  Alcotest.(check (list int)) "ascending singletons" [ 0; 1; 2; 3; 4 ] all;
  (* prohibitive checkpoints: only the mandatory final one *)
  let fixed i j = float_of_int (j - i + 1) +. 100. in
  let _, final = Toueg.brute_force ~n:5 ~cost:fixed in
  Alcotest.(check (list int)) "final only" [ 4 ] final

let test_brute_force_guard () =
  Alcotest.(check bool) "rejects n>20" true
    (match Toueg.brute_force ~n:25 ~cost:(fun _ _ -> 1.) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "single task" `Quick test_single_task;
    Alcotest.test_case "additive cost" `Quick test_additive_cost_indifferent;
    Alcotest.test_case "superadditive splits" `Quick test_superadditive_prefers_splits;
    Alcotest.test_case "expensive checkpoints" `Quick test_expensive_checkpoint_prefers_none;
    Alcotest.test_case "positions sorted" `Quick test_positions_sorted_and_end;
    Alcotest.test_case "matches brute force" `Quick test_matches_brute_force;
    Alcotest.test_case "Eq.2 first order" `Quick test_chain_cost_first_order;
    Alcotest.test_case "chain segment cost" `Quick test_chain_cost_segment;
    Alcotest.test_case "balanced optimum" `Quick test_chain_toueg_balances;
    Alcotest.test_case "monotone in lambda" `Quick test_lambda_monotonicity;
    Alcotest.test_case "budget = unbudgeted when loose" `Quick test_budget_equals_unbudgeted_when_loose;
    Alcotest.test_case "budget 1 = single segment" `Quick test_budget_one_is_single_segment;
    Alcotest.test_case "budget monotone" `Quick test_budget_monotone;
    Alcotest.test_case "budget vs brute force" `Quick test_budget_matches_constrained_brute_force;
    Alcotest.test_case "brute force pinned set" `Quick test_brute_force_pinned_set;
    Alcotest.test_case "brute force guard" `Quick test_brute_force_guard;
  ]
