(* Tests for Ckpt_platform: platform arithmetic and failure traces. *)

module Platform = Ckpt_platform.Platform
module Failure = Ckpt_platform.Failure
module Rng = Ckpt_prob.Rng

let check_close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps *. (1. +. abs_float expected) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

let test_make_validation () =
  Alcotest.check_raises "no processors"
    (Invalid_argument "Platform.make: need at least one processor") (fun () ->
      ignore (Platform.make ~processors:0 ~lambda:0.1 ~bandwidth:1.));
  Alcotest.check_raises "negative lambda"
    (Invalid_argument "Platform.make: negative failure rate") (fun () ->
      ignore (Platform.make ~processors:1 ~lambda:(-0.1) ~bandwidth:1.));
  Alcotest.check_raises "zero bandwidth"
    (Invalid_argument "Platform.make: non-positive bandwidth") (fun () ->
      ignore (Platform.make ~processors:1 ~lambda:0.1 ~bandwidth:0.))

let test_io_time () =
  let p = Platform.make ~processors:4 ~lambda:0. ~bandwidth:100. in
  check_close "io" 2.5 (Platform.io_time p 250.)

let test_pfail_lambda_roundtrip () =
  List.iter
    (fun pfail ->
      let lambda = Platform.lambda_of_pfail ~pfail ~mean_weight:37. in
      check_close "roundtrip" pfail (Platform.pfail_of_lambda ~lambda ~mean_weight:37.))
    [ 0.01; 0.001; 0.0001 ]

let test_lambda_of_pfail_formula () =
  (* pfail = 1 - e^{-lambda w}: for pfail=0.01, w=1: lambda = -ln(0.99) *)
  check_close "lambda" (-.log 0.99) (Platform.lambda_of_pfail ~pfail:0.01 ~mean_weight:1.)

let test_bandwidth_for_ccr () =
  (* ccr = (data/bw) / weight *)
  let bw = Platform.bandwidth_for_ccr ~ccr:0.1 ~total_data:1000. ~total_weight:50. in
  check_close "resulting ccr" 0.1 (1000. /. bw /. 50.)

let test_heterogeneous_platform () =
  let p = Platform.make_heterogeneous ~rates:[| 0.1; 0.2; 0.3 |] ~bandwidth:1. () in
  Alcotest.(check int) "processors" 3 p.Platform.processors;
  check_close "mean lambda" 0.2 p.Platform.lambda;
  check_close "rate 0" 0.1 (Platform.rate_of p 0);
  check_close "rate 2" 0.3 (Platform.rate_of p 2);
  check_close "total rate" 0.6 (Platform.total_rate p);
  Alcotest.(check bool) "out of range" true
    (match Platform.rate_of p 3 with exception Invalid_argument _ -> true | _ -> false)

let test_homogeneous_rate_of () =
  let p = Platform.make ~processors:4 ~lambda:0.05 ~bandwidth:1. in
  check_close "uniform" 0.05 (Platform.rate_of p 3);
  check_close "total" 0.2 (Platform.total_rate p)

let test_heterogeneous_rejections () =
  Alcotest.(check bool) "empty" true
    (match Platform.make_heterogeneous ~rates:[||] ~bandwidth:1. () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "negative" true
    (match Platform.make_heterogeneous ~rates:[| 0.1; -0.2 |] ~bandwidth:1. () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_failure_trace_increasing () =
  let rng = Rng.create 3 in
  let tr = Failure.create rng ~lambda:0.5 in
  let t1 = Failure.next_after tr 0. in
  let t2 = Failure.next_after tr t1 in
  let t3 = Failure.next_after tr t2 in
  Alcotest.(check bool) "strictly increasing" true (0. < t1 && t1 < t2 && t2 < t3)

let test_failure_trace_replay () =
  (* going back in time must replay the same instants *)
  let rng = Rng.create 3 in
  let tr = Failure.create rng ~lambda:0.5 in
  let t1 = Failure.next_after tr 0. in
  ignore (Failure.next_after tr 100.);
  check_close "replay" t1 (Failure.next_after tr 0.)

let test_failure_free () =
  let rng = Rng.create 3 in
  let tr = Failure.create rng ~lambda:0. in
  Alcotest.(check bool) "no failures" true (Failure.next_after tr 0. = infinity);
  Alcotest.(check int) "count 0" 0 (Failure.count_until tr 1e9)

let test_failure_rate () =
  (* over horizon T, expect ~ lambda*T failures *)
  let rng = Rng.create 11 in
  let lambda = 0.01 in
  let horizon = 1e5 in
  let total = ref 0 in
  let reps = 20 in
  for _ = 1 to reps do
    let tr = Failure.create rng ~lambda in
    total := !total + Failure.count_until tr horizon
  done;
  let mean = float_of_int !total /. float_of_int reps in
  let expected = lambda *. horizon in
  if abs_float (mean -. expected) > 0.05 *. expected then
    Alcotest.failf "failure count %f vs expected %f" mean expected

let test_sibling_traces_differ () =
  let rng = Rng.create 3 in
  let tr1 = Failure.create rng ~lambda:0.5 in
  let tr2 = Failure.create rng ~lambda:0.5 in
  Alcotest.(check bool) "independent" true
    (Failure.next_after tr1 0. <> Failure.next_after tr2 0.)

let suite =
  [
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "io time" `Quick test_io_time;
    Alcotest.test_case "pfail/lambda roundtrip" `Quick test_pfail_lambda_roundtrip;
    Alcotest.test_case "lambda formula" `Quick test_lambda_of_pfail_formula;
    Alcotest.test_case "bandwidth for CCR" `Quick test_bandwidth_for_ccr;
    Alcotest.test_case "heterogeneous platform" `Quick test_heterogeneous_platform;
    Alcotest.test_case "homogeneous rate_of" `Quick test_homogeneous_rate_of;
    Alcotest.test_case "heterogeneous rejections" `Quick test_heterogeneous_rejections;
    Alcotest.test_case "trace increasing" `Quick test_failure_trace_increasing;
    Alcotest.test_case "trace replay" `Quick test_failure_trace_replay;
    Alcotest.test_case "failure-free trace" `Quick test_failure_free;
    Alcotest.test_case "failure rate" `Quick test_failure_rate;
    Alcotest.test_case "sibling traces differ" `Quick test_sibling_traces_differ;
  ]
