(* Tests for Ckpt_prob.Dist: the distribution calculus used by Dodin's
   estimator and the exact SP evaluation. Includes QCheck properties
   on convolution/max moments. *)

module Dist = Ckpt_prob.Dist
module Rng = Ckpt_prob.Rng

let feq ?(eps = 1e-9) a b = abs_float (a -. b) <= eps *. (1. +. abs_float a)
let check_close ?(eps = 1e-9) msg a b = if not (feq ~eps a b) then Alcotest.failf "%s: %g vs %g" msg a b

let test_constant () =
  let d = Dist.constant 4.2 in
  check_close "mean" (Dist.mean d) 4.2;
  check_close "variance" (Dist.variance d) 0.;
  Alcotest.(check int) "size" 1 (Dist.size d)

let test_two_state_model () =
  (* the paper's Eq. 1 task model: r+w=10, p=0.05 *)
  let d = Dist.two_state ~p:0.05 10. 15. in
  check_close "mean" (Dist.mean d) ((0.95 *. 10.) +. (0.05 *. 15.));
  Alcotest.(check int) "two points" 2 (Dist.size d)

let test_two_state_degenerate () =
  Alcotest.(check int) "p=0 collapses" 1 (Dist.size (Dist.two_state ~p:0. 3. 5.));
  Alcotest.(check int) "p=1 collapses" 1 (Dist.size (Dist.two_state ~p:1. 3. 5.));
  check_close "p=1 value" (Dist.mean (Dist.two_state ~p:1. 3. 5.)) 5.;
  Alcotest.(check int) "equal values collapse" 1 (Dist.size (Dist.two_state ~p:0.5 3. 3.))

let test_of_list_merges_duplicates () =
  let d = Dist.of_list [ (1., 0.25); (1., 0.25); (2., 0.5) ] in
  Alcotest.(check int) "merged" 2 (Dist.size d);
  check_close "mass at 1" (Dist.cdf d 1.) 0.5

let test_of_list_renormalises () =
  let d = Dist.of_list [ (0., 2.); (1., 2.) ] in
  check_close "mean after renormalisation" (Dist.mean d) 0.5

let test_of_list_rejects_bad_input () =
  Alcotest.check_raises "empty" (Invalid_argument "Dist.of_list: empty support") (fun () ->
      ignore (Dist.of_list []));
  Alcotest.check_raises "negative" (Invalid_argument "Dist.of_list: negative probability")
    (fun () -> ignore (Dist.of_list [ (1., -0.5); (2., 1.5) ]))

let test_add_two_coins () =
  (* sum of two fair {0,1} coins = binomial(2, 1/2) *)
  let coin = Dist.two_state ~p:0.5 0. 1. in
  let s = Dist.add coin coin in
  Alcotest.(check int) "support {0,1,2}" 3 (Dist.size s);
  check_close "P(sum<=0)" (Dist.cdf s 0.) 0.25;
  check_close "P(sum<=1)" (Dist.cdf s 1.) 0.75;
  check_close "mean" (Dist.mean s) 1.

let test_max_two_coins () =
  let coin = Dist.two_state ~p:0.5 0. 1. in
  let m = Dist.max2 coin coin in
  check_close "P(max=0)" (Dist.cdf m 0.) 0.25;
  check_close "mean of max" (Dist.mean m) 0.75

let test_min_two_coins () =
  let coin = Dist.two_state ~p:0.5 0. 1. in
  let m = Dist.min2 coin coin in
  check_close "P(min=0)" (Dist.cdf m 0.) 0.75;
  check_close "mean of min" (Dist.mean m) 0.25

let test_shift_scale () =
  let d = Dist.two_state ~p:0.3 2. 4. in
  check_close "shift mean" (Dist.mean (Dist.shift d 10.)) (Dist.mean d +. 10.);
  check_close "scale mean" (Dist.mean (Dist.scale d 3.)) (3. *. Dist.mean d);
  check_close "scale variance" (Dist.variance (Dist.scale d 3.)) (9. *. Dist.variance d)

let test_quantile () =
  let d = Dist.of_list [ (1., 0.2); (2., 0.3); (5., 0.5) ] in
  check_close "q0.1" (Dist.quantile d 0.1) 1.;
  check_close "q0.2" (Dist.quantile d 0.2) 1.;
  check_close "q0.4" (Dist.quantile d 0.4) 2.;
  check_close "q1" (Dist.quantile d 1.0) 5.

let test_compact_preserves_mean () =
  let rng = Rng.create 3 in
  let pts = List.init 5000 (fun _ -> (Rng.float rng 100., Rng.float rng 1.)) in
  let d = Dist.of_list pts in
  let c = Dist.compact ~max_size:64 d in
  Alcotest.(check bool) "size bounded" true (Dist.size c <= 64);
  check_close ~eps:1e-9 "expectation preserved exactly" (Dist.mean d) (Dist.mean c)

let test_compact_noop_small () =
  let d = Dist.two_state ~p:0.5 1. 2. in
  Alcotest.(check bool) "already small" true (Dist.equal d (Dist.compact ~max_size:16 d))

let test_sample_matches_distribution () =
  let d = Dist.of_list [ (1., 0.25); (3., 0.5); (7., 0.25) ] in
  let rng = Rng.create 9 in
  let n = 100_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Dist.sample d rng
  done;
  let mean = !acc /. float_of_int n in
  check_close ~eps:0.02 "sampled mean" (Dist.mean d) mean

(* --- QCheck properties --- *)

let arb_dist =
  let open QCheck in
  let point = pair (float_bound_inclusive 50.) (float_range 0.01 1.) in
  map
    (fun pts -> Dist.of_list pts)
    (list_of_size Gen.(int_range 1 6) point |> map (fun l -> if l = [] then [ (1., 1.) ] else l))

let prop_add_mean_linear =
  QCheck.Test.make ~name:"E[X+Y] = E[X]+E[Y]" ~count:200 (QCheck.pair arb_dist arb_dist)
    (fun (a, b) -> feq ~eps:1e-6 (Dist.mean (Dist.add a b)) (Dist.mean a +. Dist.mean b))

let prop_add_variance_additive =
  QCheck.Test.make ~name:"Var[X+Y] = Var[X]+Var[Y]" ~count:200 (QCheck.pair arb_dist arb_dist)
    (fun (a, b) ->
      feq ~eps:1e-5 (Dist.variance (Dist.add a b)) (Dist.variance a +. Dist.variance b))

let prop_max_ge_means =
  QCheck.Test.make ~name:"E[max] >= max(E[X],E[Y])" ~count:200 (QCheck.pair arb_dist arb_dist)
    (fun (a, b) ->
      Dist.mean (Dist.max2 a b) >= Float.max (Dist.mean a) (Dist.mean b) -. 1e-9)

let prop_max_plus_min =
  QCheck.Test.make ~name:"E[max]+E[min] = E[X]+E[Y]" ~count:200 (QCheck.pair arb_dist arb_dist)
    (fun (a, b) ->
      feq ~eps:1e-6
        (Dist.mean (Dist.max2 a b) +. Dist.mean (Dist.min2 a b))
        (Dist.mean a +. Dist.mean b))

let prop_total_mass =
  QCheck.Test.make ~name:"total probability is 1" ~count:200 arb_dist (fun d ->
      let total = Array.fold_left (fun acc (_, p) -> acc +. p) 0. (Dist.support d) in
      feq ~eps:1e-9 total 1.)

let prop_max_commutative =
  QCheck.Test.make ~name:"max2 commutes" ~count:200 (QCheck.pair arb_dist arb_dist)
    (fun (a, b) -> Dist.equal ~eps:1e-7 (Dist.max2 a b) (Dist.max2 b a))

(* --- heavy-tailed samplers ------------------------------------------- *)

let sample_mean n f =
  let s = ref 0. in
  for _ = 1 to n do
    s := !s +. f ()
  done;
  !s /. float_of_int n

let test_weibull_moments () =
  (* k=2, λ=3: mean = 3·Γ(3/2) = 3·√π/2 *)
  check_close "closed-form mean" (Dist.weibull_mean ~shape:2. ~scale:3.)
    (3. *. sqrt Float.pi /. 2.);
  let rng = Rng.for_trial ~seed:11 0 in
  let m = sample_mean 60_000 (fun () -> Dist.weibull_sample rng ~shape:2. ~scale:3.) in
  check_close ~eps:0.02 "sample mean" m (Dist.weibull_mean ~shape:2. ~scale:3.);
  (* decreasing-hazard shape < 1 must not NaN (exercises the fractional
     power of -ln U) *)
  let m =
    sample_mean 60_000 (fun () -> Dist.weibull_sample rng ~shape:0.5 ~scale:1.)
  in
  check_close ~eps:0.1 "shape<1 sample mean" m (Dist.weibull_mean ~shape:0.5 ~scale:1.)

let test_weibull_cdf () =
  (* F(scale) = 1 - 1/e for every shape *)
  check_close "F(λ) k=2" (Dist.weibull_cdf ~shape:2. ~scale:3. 3.) (-.Float.expm1 (-1.));
  check_close "F(λ) k=0.7" (Dist.weibull_cdf ~shape:0.7 ~scale:5. 5.) (-.Float.expm1 (-1.));
  check_close "F(0)" (Dist.weibull_cdf ~shape:2. ~scale:3. 0.) 0.;
  check_close "F(-1)" (Dist.weibull_cdf ~shape:2. ~scale:3. (-1.)) 0.;
  (* empirical CDF matches at a couple of probes *)
  let rng = Rng.for_trial ~seed:12 0 in
  let n = 60_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Dist.weibull_sample rng ~shape:2. ~scale:3. <= 2.5 then incr hits
  done;
  check_close ~eps:0.02 "empirical CDF"
    (float_of_int !hits /. float_of_int n)
    (Dist.weibull_cdf ~shape:2. ~scale:3. 2.5)

let test_weibull_shape1_is_exponential () =
  (* k=1 degenerates to Exp(1/scale): same inversion, same trace *)
  let a = Rng.for_trial ~seed:13 0 and b = Rng.for_trial ~seed:13 0 in
  for _ = 1 to 100 do
    let w = Dist.weibull_sample a ~shape:1. ~scale:4. in
    let e = Rng.exponential b ~rate:0.25 in
    check_close ~eps:1e-12 "trace-identical to Exp" w e
  done

let test_pareto_moments () =
  check_close "closed-form mean" (Dist.pareto_mean ~alpha:3. ~xmin:2.) 3.;
  let rng = Rng.for_trial ~seed:14 0 in
  let m = sample_mean 60_000 (fun () -> Dist.pareto_sample rng ~alpha:3. ~xmin:2.) in
  check_close ~eps:0.02 "sample mean" m 3.;
  Alcotest.(check bool)
    "alpha<=1 mean infinite" true
    (Dist.pareto_mean ~alpha:1. ~xmin:2. = infinity
    && Dist.pareto_mean ~alpha:0.5 ~xmin:2. = infinity)

let test_pareto_cdf_and_support () =
  check_close "F(xmin)" (Dist.pareto_cdf ~alpha:3. ~xmin:2. 2.) 0.;
  check_close "F(4)" (Dist.pareto_cdf ~alpha:3. ~xmin:2. 4.) (1. -. 0.125);
  check_close "F below xmin" (Dist.pareto_cdf ~alpha:3. ~xmin:2. 1.) 0.;
  let rng = Rng.for_trial ~seed:15 0 in
  for _ = 1 to 1000 do
    if Dist.pareto_sample rng ~alpha:1.5 ~xmin:2. < 2. then
      Alcotest.fail "sample below xmin"
  done

let test_heavy_tail_seeded_determinism () =
  (* Rng.for_trial contract: same (seed, trial) -> bitwise same trace *)
  let draw () =
    let rng = Rng.for_trial ~seed:16 7 in
    List.init 50 (fun _ ->
        (Dist.weibull_sample rng ~shape:1.5 ~scale:2., Dist.pareto_sample rng ~alpha:2.5 ~xmin:1.))
  in
  Alcotest.(check bool) "replayed trace bitwise equal" true (draw () = draw ())

let test_heavy_tail_rejects_bad_params () =
  let rng = Rng.for_trial ~seed:17 0 in
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  Alcotest.(check bool)
    "invalid parameters rejected" true
    (raises (fun () -> Dist.weibull_sample rng ~shape:0. ~scale:1.)
    && raises (fun () -> Dist.weibull_sample rng ~shape:1. ~scale:(-1.))
    && raises (fun () -> Dist.weibull_mean ~shape:(-2.) ~scale:1.)
    && raises (fun () -> Dist.weibull_cdf ~shape:0. ~scale:1. 1.)
    && raises (fun () -> Dist.pareto_sample rng ~alpha:0. ~xmin:1.)
    && raises (fun () -> Dist.pareto_cdf ~alpha:1. ~xmin:0. 1.)
    && raises (fun () -> Dist.pareto_mean ~alpha:1. ~xmin:(-1.)))

let suite =
  [
    Alcotest.test_case "constant" `Quick test_constant;
    Alcotest.test_case "two-state task model" `Quick test_two_state_model;
    Alcotest.test_case "two-state degenerate" `Quick test_two_state_degenerate;
    Alcotest.test_case "of_list merges" `Quick test_of_list_merges_duplicates;
    Alcotest.test_case "of_list renormalises" `Quick test_of_list_renormalises;
    Alcotest.test_case "of_list rejects" `Quick test_of_list_rejects_bad_input;
    Alcotest.test_case "convolution of coins" `Quick test_add_two_coins;
    Alcotest.test_case "max of coins" `Quick test_max_two_coins;
    Alcotest.test_case "min of coins" `Quick test_min_two_coins;
    Alcotest.test_case "shift/scale" `Quick test_shift_scale;
    Alcotest.test_case "quantile" `Quick test_quantile;
    Alcotest.test_case "compact preserves mean" `Quick test_compact_preserves_mean;
    Alcotest.test_case "compact no-op when small" `Quick test_compact_noop_small;
    Alcotest.test_case "sampling matches" `Quick test_sample_matches_distribution;
    Alcotest.test_case "weibull moments" `Quick test_weibull_moments;
    Alcotest.test_case "weibull cdf" `Quick test_weibull_cdf;
    Alcotest.test_case "weibull shape=1 is exponential" `Quick
      test_weibull_shape1_is_exponential;
    Alcotest.test_case "pareto moments" `Quick test_pareto_moments;
    Alcotest.test_case "pareto cdf and support" `Quick test_pareto_cdf_and_support;
    Alcotest.test_case "heavy-tail seeded determinism" `Quick
      test_heavy_tail_seeded_determinism;
    Alcotest.test_case "heavy-tail rejects bad params" `Quick
      test_heavy_tail_rejects_bad_params;
    QCheck_alcotest.to_alcotest prop_add_mean_linear;
    QCheck_alcotest.to_alcotest prop_add_variance_additive;
    QCheck_alcotest.to_alcotest prop_max_ge_means;
    QCheck_alcotest.to_alcotest prop_max_plus_min;
    QCheck_alcotest.to_alcotest prop_total_mass;
    QCheck_alcotest.to_alcotest prop_max_commutative;
  ]
