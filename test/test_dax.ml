(* Tests for Ckpt_dax: the XML subset parser and the DAX workflow
   import/export, including round-trips of all generated workflows. *)

module Xml = Ckpt_dax.Xml
module Dax = Ckpt_dax.Dax
module Dag = Ckpt_dag.Dag
module Spec = Ckpt_workflows.Spec

(* --- Xml --- *)

let test_xml_basic () =
  let doc = Xml.parse "<a x=\"1\"><b/><c y='two'>text</c></a>" in
  Alcotest.(check string) "root" "a" (Xml.name doc);
  Alcotest.(check (option string)) "attr" (Some "1") (Xml.attr doc "x");
  Alcotest.(check int) "children" 2 (List.length (Xml.children doc));
  match Xml.children doc with
  | [ b; c ] ->
      Alcotest.(check string) "b" "b" (Xml.name b);
      Alcotest.(check (option string)) "c attr" (Some "two") (Xml.attr c "y")
  | _ -> Alcotest.fail "children"

let test_xml_declaration_and_comments () =
  let doc =
    Xml.parse
      "<?xml version=\"1.0\"?>\n<!-- hello -->\n<root><!-- inner --><kid/></root>\n<!-- post -->"
  in
  Alcotest.(check string) "root" "root" (Xml.name doc);
  Alcotest.(check int) "one child" 1 (List.length (Xml.children doc))

let test_xml_entities () =
  let doc = Xml.parse "<a name=\"x &amp; y &lt;z&gt;\"/>" in
  Alcotest.(check (option string)) "decoded" (Some "x & y <z>") (Xml.attr doc "name")

let test_xml_roundtrip () =
  let doc =
    Xml.Element
      ( "adag",
        [ ("name", "w&f") ],
        [ Xml.Element ("job", [ ("id", "ID0") ], [ Xml.Element ("uses", [], []) ]) ] )
  in
  let reparsed = Xml.parse (Xml.to_string doc) in
  Alcotest.(check (option string)) "escaped attr survives" (Some "w&f")
    (Xml.attr reparsed "name");
  Alcotest.(check int) "structure" 1 (List.length (Xml.children reparsed))

let expect_parse_error src =
  match Xml.parse src with
  | exception Xml.Parse_error _ -> ()
  | _ -> Alcotest.failf "accepted malformed %S" src

let test_xml_rejects_malformed () =
  List.iter expect_parse_error
    [ ""; "<a>"; "<a></b>"; "<a x=1/>"; "< a/>"; "<a/><b/>"; "<a x=\"1/>" ]

(* --- Dax --- *)

let sample_dax =
  {|<?xml version="1.0" encoding="UTF-8"?>
<!-- a tiny two-stage workflow -->
<adag xmlns="http://pegasus.isi.edu/schema/DAX" version="3.4" name="sample">
  <job id="ID00000" name="split" runtime="10.5">
    <uses file="raw.dat" link="input" size="1000"/>
    <uses file="chunk_a" link="output" size="400"/>
    <uses file="chunk_b" link="output" size="600"/>
  </job>
  <job id="ID00001" name="work" runtime="20">
    <uses file="chunk_a" link="input" size="400"/>
    <uses file="out_a" link="output" size="50"/>
  </job>
  <job id="ID00002" name="work" runtime="30">
    <uses file="chunk_b" link="input" size="600"/>
    <uses file="out_b" link="output" size="70"/>
  </job>
  <job id="ID00003" name="merge" runtime="5">
    <uses file="out_a" link="input" size="50"/>
    <uses file="out_b" link="input" size="70"/>
  </job>
  <child ref="ID00001"><parent ref="ID00000"/></child>
  <child ref="ID00002"><parent ref="ID00000"/></child>
  <child ref="ID00003"><parent ref="ID00001"/><parent ref="ID00002"/></child>
</adag>|}

let test_dax_import () =
  let dag = Dax.of_string sample_dax in
  Alcotest.(check int) "4 tasks" 4 (Dag.n_tasks dag);
  Alcotest.(check int) "4 data edges" 4 (Dag.n_edges dag);
  Alcotest.(check string) "name" "sample" (Dag.name dag);
  Alcotest.(check (float 1e-9)) "weights" 65.5 (Dag.total_weight dag);
  (* raw.dat has no producer: initial input of the split job *)
  Alcotest.(check (list (float 0.))) "initial input" [ 1000. ] (Dag.inputs dag 0);
  (* chunk sizes preserved *)
  Alcotest.(check (float 1e-9)) "data" (1000. +. 400. +. 600. +. 50. +. 70.)
    (Dag.total_data dag)

let test_dax_import_control_edge () =
  (* a child/parent pair with no shared file becomes a 0-size edge *)
  let src =
    {|<adag name="ctl">
       <job id="A" name="a" runtime="1"/>
       <job id="B" name="b" runtime="2"/>
       <child ref="B"><parent ref="A"/></child>
     </adag>|}
  in
  let dag = Dax.of_string src in
  Alcotest.(check int) "edge added" 1 (Dag.n_edges dag);
  Alcotest.(check (float 0.)) "zero size" 0. (Dag.total_data dag)

let test_dax_shared_file_identity () =
  (* one output consumed by two jobs: same file id on both edges *)
  let src =
    {|<adag name="share">
       <job id="A" name="a" runtime="1">
         <uses file="f" link="output" size="123"/>
       </job>
       <job id="B" name="b" runtime="2">
         <uses file="f" link="input" size="123"/>
       </job>
       <job id="C" name="c" runtime="3">
         <uses file="f" link="input" size="123"/>
       </job>
     </adag>|}
  in
  let dag = Dax.of_string src in
  Alcotest.(check (float 0.)) "counted once" 123. (Dag.total_data dag);
  match (Dag.succs dag 0 : (int * Dag.file) list) with
  | [ (_, f1); (_, f2) ] -> Alcotest.(check int) "same file" f1.Dag.file_id f2.Dag.file_id
  | _ -> Alcotest.fail "expected two consumers"

let expect_dax_error src =
  match Dax.of_string src with
  | exception Dax.Error _ -> ()
  | _ -> Alcotest.failf "accepted bad DAX"

let test_dax_rejects_bad_input () =
  (* duplicate job ids *)
  expect_dax_error
    {|<adag name="x"><job id="A" name="a" runtime="1"/><job id="A" name="b" runtime="1"/></adag>|};
  (* unknown ref *)
  expect_dax_error
    {|<adag name="x"><job id="A" name="a" runtime="1"/><child ref="Z"><parent ref="A"/></child></adag>|};
  (* two producers of one file *)
  expect_dax_error
    {|<adag name="x">
       <job id="A" name="a" runtime="1"><uses file="f" link="output" size="1"/></job>
       <job id="B" name="b" runtime="1"><uses file="f" link="output" size="1"/></job>
     </adag>|};
  (* cycle through control edges *)
  expect_dax_error
    {|<adag name="x">
       <job id="A" name="a" runtime="1"/><job id="B" name="b" runtime="1"/>
       <child ref="B"><parent ref="A"/></child>
       <child ref="A"><parent ref="B"/></child>
     </adag>|};
  (* no jobs *)
  expect_dax_error {|<adag name="x"/>|};
  (* wrong root *)
  expect_dax_error {|<dag name="x"><job id="A" name="a" runtime="1"/></dag>|}

let dags_equivalent a b =
  Dag.n_tasks a = Dag.n_tasks b
  && Dag.n_edges a = Dag.n_edges b
  && abs_float (Dag.total_weight a -. Dag.total_weight b) < 1e-3
  && abs_float (Dag.total_data a -. Dag.total_data b) < 1. +. (1e-6 *. Dag.total_data a)
  &&
  let ok = ref true in
  for t = 0 to Dag.n_tasks a - 1 do
    if Dag.succ_ids a t <> Dag.succ_ids b t then ok := false;
    if List.length (Dag.inputs a t) <> List.length (Dag.inputs b t) then ok := false;
    if (Dag.task a t).Ckpt_dag.Task.name <> (Dag.task b t).Ckpt_dag.Task.name then ok := false
  done;
  !ok

let test_dax_roundtrip_generators () =
  List.iter
    (fun kind ->
      let dag = Spec.generate kind ~seed:3 ~tasks:100 () in
      let rebuilt = Dax.of_string (Dax.to_string dag) in
      if not (dags_equivalent dag rebuilt) then
        Alcotest.failf "%s: DAX round-trip changed the workflow" (Spec.name kind))
    Spec.all

let test_dax_roundtrip_preserves_pipeline_results () =
  (* the real criterion: scheduling + checkpointing behave identically
     on the round-tripped workflow *)
  let dag = Spec.generate Spec.Montage ~seed:5 ~tasks:50 () in
  let rebuilt = Dax.of_string (Dax.to_string dag) in
  let run d =
    let setup = Ckpt_core.Pipeline.prepare ~dag:d ~processors:5 ~pfail:0.001 ~ccr:0.1 () in
    let cmp = Ckpt_core.Pipeline.compare_strategies setup in
    (cmp.Ckpt_core.Pipeline.em_some, cmp.Ckpt_core.Pipeline.ckpts_some)
  in
  let em1, ck1 = run dag in
  let em2, ck2 = run rebuilt in
  Alcotest.(check int) "same checkpoints" ck1 ck2;
  if abs_float (em1 -. em2) > 1e-6 *. em1 then
    Alcotest.failf "EM changed: %f vs %f" em1 em2

(* --- result-based API (the CLI's error boundary) --- *)

let test_dax_of_string_result () =
  (match Dax.of_string_result sample_dax with
  | Ok dag -> Alcotest.(check bool) "parses sample" true (Dag.n_tasks dag > 0)
  | Error e -> Alcotest.failf "sample rejected: %s" (Ckpt_resilience.Error.to_string e));
  match Dax.of_string_result ~source:"inline" "<adag name=\"x\"/>" with
  | Ok _ -> Alcotest.fail "empty adag accepted"
  | Error (Ckpt_resilience.Error.Parse { source; message }) ->
      Alcotest.(check string) "source threaded" "inline" source;
      Alcotest.(check bool) "message set" true (message <> "")
  | Error e -> Alcotest.failf "wrong error: %s" (Ckpt_resilience.Error.to_string e)

let test_dax_of_file_missing () =
  match Dax.of_file "/nonexistent/ckptwf.dax" with
  | Ok _ -> Alcotest.fail "missing file accepted"
  | Error (Ckpt_resilience.Error.Io _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Ckpt_resilience.Error.to_string e)

let test_dax_of_file_malformed () =
  let path = Filename.temp_file "ckptwf" ".dax" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "this is not XML";
      close_out oc;
      match Dax.of_file path with
      | Ok _ -> Alcotest.fail "garbage accepted"
      | Error (Ckpt_resilience.Error.Parse { source; _ }) ->
          Alcotest.(check string) "source is the path" path source
      | Error e -> Alcotest.failf "wrong error: %s" (Ckpt_resilience.Error.to_string e))

let test_dax_load_save () =
  let dag = Spec.generate Spec.Genome ~seed:7 ~tasks:50 () in
  let path = Filename.temp_file "ckptwf" ".dax" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dax.save path dag;
      let rebuilt = Dax.load path in
      Alcotest.(check bool) "load(save(x)) = x" true (dags_equivalent dag rebuilt))

let suite =
  [
    Alcotest.test_case "xml basics" `Quick test_xml_basic;
    Alcotest.test_case "xml declaration/comments" `Quick test_xml_declaration_and_comments;
    Alcotest.test_case "xml entities" `Quick test_xml_entities;
    Alcotest.test_case "xml roundtrip" `Quick test_xml_roundtrip;
    Alcotest.test_case "xml rejects malformed" `Quick test_xml_rejects_malformed;
    Alcotest.test_case "dax import" `Quick test_dax_import;
    Alcotest.test_case "dax control edges" `Quick test_dax_import_control_edge;
    Alcotest.test_case "dax shared files" `Quick test_dax_shared_file_identity;
    Alcotest.test_case "dax rejects bad input" `Quick test_dax_rejects_bad_input;
    Alcotest.test_case "dax roundtrip (generators)" `Quick test_dax_roundtrip_generators;
    Alcotest.test_case "dax roundtrip (pipeline)" `Quick test_dax_roundtrip_preserves_pipeline_results;
    Alcotest.test_case "dax load/save" `Quick test_dax_load_save;
    Alcotest.test_case "dax of_string_result" `Quick test_dax_of_string_result;
    Alcotest.test_case "dax of_file missing" `Quick test_dax_of_file_missing;
    Alcotest.test_case "dax of_file malformed" `Quick test_dax_of_file_malformed;
  ]
