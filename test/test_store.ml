(* The store-contract suite: every backend of Ckpt_storage.Store must
   honour the same commit/read/invalidate/stats contract —
   commit-then-read round-trips, invalidation is monotone, stats
   account every operation (QCheck) — plus the disk backend's own
   obligations: fingerprint-validated resume, rejection of stale
   records, torn-tail recovery, and crash-consistency under injected
   fail-stop errors mid-commit. *)

module Storage = Ckpt_storage.Storage
module Store = Ckpt_storage.Store
module Error = Ckpt_resilience.Error
module Faulty = Ckpt_resilience.Faulty
module Rng = Ckpt_prob.Rng

let fp = Store.fingerprint [ "test_store"; "contract" ]

type kind = Kmemory | Kdisk | Kreplicated | Kremote

let all_backends =
  [ ("memory", Kmemory); ("disk", Kdisk); ("replicated", Kreplicated); ("remote", Kremote) ]

let remote_commit_latency = 0.5
let remote_read_latency = 0.25

(* builds a fresh store of the given backend kind (a temp journal for
   disk), runs [f], and removes any file it created *)
let with_store ?(policy = Store.Every_segment) ?(faults = Storage.default) ?(seed = 7) kind f
    =
  let backend, persist, path =
    match kind with
    | Kmemory -> (Store.Memory, None, None)
    | Kdisk -> (
        let path = Filename.temp_file "test_store" ".journal" in
        match Store.open_persist ~path ~fingerprint:fp () with
        | Ok p -> (Store.Disk { path }, Some p, Some path)
        | Error _ -> Alcotest.fail "open_persist on a fresh temp file failed")
    | Kreplicated -> (Store.Replicated { k = 2 }, None, None)
    | Kremote ->
        ( Store.Remote
            { commit_latency = remote_commit_latency; read_latency = remote_read_latency },
          None,
          None )
  in
  let st = Store.create ?persist { Store.backend; policy; faults } (Rng.create seed) in
  Fun.protect
    ~finally:(fun () ->
      Option.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) path)
    (fun () -> f st)

let commit_ok ?interrupt name st ~seg ~at =
  match Store.commit ?interrupt st ~seg ~write:1. ~at with
  | Ok (done_at, h) -> (done_at, h)
  | Error _ -> Alcotest.failf "%s: reliable commit of seg %d failed" name seg

(* contract: a committed checkpoint reads back valid, at the backend's
   advertised latencies, and the counters see it *)
let test_roundtrip () =
  List.iter
    (fun (name, kind) ->
      with_store kind (fun st ->
          let clat = Store.commit_latency st in
          let rlat = match kind with Kremote -> remote_read_latency | _ -> 0. in
          (match kind with
          | Kremote ->
              Alcotest.(check (float 0.)) (name ^ ": remote commit latency")
                remote_commit_latency clat
          | _ -> Alcotest.(check (float 0.)) (name ^ ": free commit") 0. clat);
          for seg = 0 to 4 do
            let at = 10. *. float_of_int seg in
            let done_at, h = commit_ok name st ~seg ~at in
            Alcotest.(check (float 0.)) (name ^ ": commit instant") (at +. clat) done_at;
            Alcotest.(check int) (name ^ ": seg recorded") seg (Store.seg_of h);
            Alcotest.(check bool) (name ^ ": every-segment is durable") true
              (Store.durable h);
            match Store.read st h ~at:100. with
            | Ok ready ->
                Alcotest.(check (float 0.)) (name ^ ": read instant") (100. +. rlat) ready
            | Error _ -> Alcotest.failf "%s: round-trip read of seg %d failed" name seg
          done;
          let s = Store.stats st in
          Alcotest.(check int) (name ^ ": commits") 5 s.Store.commits;
          Alcotest.(check int) (name ^ ": reads") 5 s.Store.reads;
          Alcotest.(check int) (name ^ ": no retries") 0 s.Store.commit_retries;
          Alcotest.(check int) (name ^ ": no corrupt reads") 0 s.Store.corrupt_reads;
          Alcotest.(check int) (name ^ ": no rejected reads") 0 s.Store.rejected_reads;
          Alcotest.(check (list int)) (name ^ ": clean failed-read log") []
            (Store.failed_reads st)))
    all_backends

(* contract: invalidation evicts every handle committed so far and
   never un-happens — a later re-commit revives the segment through a
   fresh handle only *)
let test_invalidate_monotone () =
  List.iter
    (fun (name, kind) ->
      with_store kind (fun st ->
          let _, h1 = commit_ok name st ~seg:3 ~at:1. in
          (match Store.read st h1 ~at:2. with
          | Ok _ -> ()
          | Error _ -> Alcotest.failf "%s: fresh handle must read" name);
          Store.invalidate st ~seg:3;
          (match Store.read st h1 ~at:3. with
          | Error Store.Rejected -> ()
          | Ok _ | Error Store.Corrupt ->
              Alcotest.failf "%s: invalidated handle must read Rejected" name);
          let _, h2 = commit_ok name st ~seg:3 ~at:4. in
          (match Store.read st h2 ~at:5. with
          | Ok _ -> ()
          | Error _ -> Alcotest.failf "%s: re-committed handle must read" name);
          (match Store.read st h1 ~at:6. with
          | Error Store.Rejected -> ()
          | Ok _ | Error Store.Corrupt ->
              Alcotest.failf "%s: invalidation must be monotone for old handles" name);
          Alcotest.(check (list int))
            (name ^ ": failed-read log is chronological")
            [ 3; 3 ] (Store.failed_reads st);
          let s = Store.stats st in
          Alcotest.(check int) (name ^ ": evictions counted") 1 s.Store.evictions;
          Alcotest.(check int) (name ^ ": rejections counted") 2 s.Store.rejected_reads))
    all_backends

(* contract: the policy decides durability, never timing — every-k
   keeps exactly each k-th commit, on-interrupt keeps only rescue
   commits, and volatile handles still read within the run *)
let test_policy_durability () =
  List.iter
    (fun (name, kind) ->
      with_store ~policy:(Store.Every_k 3) kind (fun st ->
          let durables = ref 0 in
          for seg = 0 to 8 do
            let done_at, h = commit_ok name st ~seg ~at:(float_of_int seg) in
            if Store.durable h then incr durables
            else begin
              (* a policy-skipped commit is instant even on a priced
                 backend, and readable in-run *)
              Alcotest.(check (float 0.)) (name ^ ": volatile commit is instant")
                (float_of_int seg) done_at;
              match Store.read st h ~at:50. with
              | Ok ready ->
                  Alcotest.(check (float 0.)) (name ^ ": volatile read is free") 50. ready
              | Error _ -> Alcotest.failf "%s: volatile handle must read in-run" name
            end
          done;
          Alcotest.(check int) (name ^ ": every-3 keeps each 3rd") 3 !durables;
          let s = Store.stats st in
          Alcotest.(check int) (name ^ ": volatile commits still counted") 9
            s.Store.commits;
          Alcotest.(check int) (name ^ ": skips counted") 6 s.Store.skipped);
      with_store ~policy:Store.On_interrupt kind (fun st ->
          let _, regular = commit_ok name st ~seg:0 ~at:0. in
          let _, rescue = commit_ok ~interrupt:true name st ~seg:1 ~at:1. in
          Alcotest.(check bool) (name ^ ": regular commit is volatile") false
            (Store.durable regular);
          Alcotest.(check bool) (name ^ ": rescue commit is durable") true
            (Store.durable rescue)))
    all_backends

(* contract (QCheck): over a random interleaving of commits, reads and
   invalidations on any backend, the stats report exactly the model
   counts and reads fail exactly on evicted handles *)
let qcheck_stats_accounting =
  QCheck.Test.make ~count:40 ~name:"store contract: stats account every operation"
    QCheck.(pair (int_range 0 100_000) (int_bound 3))
    (fun (seed, which) ->
      let _, kind = List.nth all_backends which in
      with_store ~seed kind (fun st ->
          let rng = Rng.create (seed + 1) in
          let handles = ref [] (* (handle, evicted) newest first *) in
          let commits = ref 0 and reads = ref 0 in
          let evictions = ref 0 and rejected = ref 0 in
          let expected_log = ref [] in
          let ok = ref true in
          for step = 0 to 39 do
            match Rng.int rng 3 with
            | 0 ->
                let seg = Rng.int rng 5 in
                (match Store.commit st ~seg ~write:1. ~at:(float_of_int step) with
                | Ok (_, h) ->
                    incr commits;
                    handles := (h, ref false) :: !handles
                | Error _ -> ok := false)
            | 1 -> (
                match !handles with
                | [] -> ()
                | hs -> (
                    let h, evicted = List.nth hs (Rng.int rng (List.length hs)) in
                    incr reads;
                    match Store.read st h ~at:(float_of_int step) with
                    | Ok _ -> if !evicted then ok := false
                    | Error Store.Rejected ->
                        if not !evicted then ok := false;
                        incr rejected;
                        expected_log := Store.seg_of h :: !expected_log
                    | Error Store.Corrupt -> ok := false))
            | _ ->
                let seg = Rng.int rng 5 in
                Store.invalidate st ~seg;
                incr evictions;
                List.iter
                  (fun (h, evicted) -> if Store.seg_of h = seg then evicted := true)
                  !handles
          done;
          let s = Store.stats st in
          !ok
          && s.Store.commits = !commits
          && s.Store.reads = !reads
          && s.Store.evictions = !evictions
          && s.Store.rejected_reads = !rejected
          && s.Store.corrupt_reads = 0
          && s.Store.commit_retries = 0
          && Store.failed_reads st = List.rev !expected_log))

(* disk: commits persist, an identical re-run resumes every record
   without rewriting, and a drifted payload is fingerprint-stale —
   superseded by a fresh append, never silently resumed *)
let test_disk_resume () =
  let path = Filename.temp_file "test_store" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let open_p () =
        match Store.open_persist ~path ~fingerprint:fp () with
        | Ok p -> p
        | Error _ -> Alcotest.fail "open_persist failed"
      in
      let cfg = { Store.default with Store.backend = Store.Disk { path } } in
      let commit_all st =
        List.iter
          (fun seg -> ignore (commit_ok "disk" st ~seg ~at:(3. *. float_of_int seg)))
          [ 0; 1; 2; 3; 4 ]
      in
      let p1 = open_p () in
      commit_all (Store.create ~persist:p1 ~scope:"ckptsome" cfg (Rng.create 7));
      Alcotest.(check int) "first run appends everything" 5 (Store.persist_appended p1);
      let p2 = open_p () in
      Alcotest.(check bool) "clean file is not torn" false (Store.persist_torn p2);
      Alcotest.(check int) "all records load" 5 (Store.persist_loaded p2);
      Alcotest.(check int) "none rejected" 0 (Store.persist_rejected p2);
      let st2 = Store.create ~persist:p2 ~scope:"ckptsome" cfg (Rng.create 7) in
      commit_all st2;
      Alcotest.(check int) "identical re-run resumes all" 5 (Store.persist_resumed p2);
      Alcotest.(check int) "and rewrites nothing" 0 (Store.persist_appended p2);
      Alcotest.(check int) "store counts the resumes" 5 (Store.stats st2).Store.resumed;
      (* same key, different commit instant: stale payload *)
      let p3 = open_p () in
      let st3 = Store.create ~persist:p3 ~scope:"ckptsome" cfg (Rng.create 7) in
      ignore (commit_ok "disk" st3 ~seg:0 ~at:99.);
      Alcotest.(check int) "stale record counted rejected" 1 (Store.persist_rejected p3);
      Alcotest.(check int) "and superseded by a fresh append" 1 (Store.persist_appended p3);
      (* a different trial keys its own records: no collision *)
      let p4 = open_p () in
      let st4 = Store.create ~persist:p4 ~scope:"ckptsome" ~trial:1 cfg (Rng.create 7) in
      ignore (commit_ok "disk" st4 ~seg:0 ~at:123.);
      Alcotest.(check int) "other trial appends fresh" 1 (Store.persist_appended p4);
      Alcotest.(check int) "without rejecting trial 0's record" 0
        (Store.persist_rejected p4))

(* disk: a header from another workflow (or schema) refuses to open
   with the typed Store_fingerprint error — never a silent resume *)
let test_disk_fingerprint_refusal () =
  let path = Filename.temp_file "test_store" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (match Store.open_persist ~path ~fingerprint:fp () with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "first open failed");
      match
        Store.open_persist ~path ~fingerprint:(Store.fingerprint [ "another"; "dag" ]) ()
      with
      | Error (Error.Store_fingerprint { field = "dag"; found; expected; _ }) ->
          Alcotest.(check string) "found the on-disk hash" fp found;
          Alcotest.(check bool) "expected differs" true (expected <> found)
      | Ok _ -> Alcotest.fail "mismatched fingerprint must refuse to open"
      | Error _ -> Alcotest.fail "mismatch must be the typed Store_fingerprint error")

(* disk: a crash window between write and rename leaves a torn trailing
   record; the next open drops exactly that record and keeps the rest *)
let test_disk_torn_tail () =
  let path = Filename.temp_file "test_store" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let cfg = { Store.default with Store.backend = Store.Disk { path } } in
      (match Store.open_persist ~path ~fingerprint:fp () with
      | Ok p ->
          let st = Store.create ~persist:p cfg (Rng.create 7) in
          List.iter
            (fun seg -> ignore (commit_ok "disk" st ~seg ~at:(float_of_int seg)))
            [ 0; 1; 2 ]
      | Error _ -> Alcotest.fail "open failed");
      let len = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd (len - 4);
      Unix.close fd;
      match Store.open_persist ~path ~fingerprint:fp () with
      | Ok p ->
          Alcotest.(check bool) "torn tail detected" true (Store.persist_torn p);
          Alcotest.(check int) "intact records survive" 2 (Store.persist_loaded p);
          (* the re-run re-commits the lost segment and resumes the rest *)
          let st = Store.create ~persist:p cfg (Rng.create 7) in
          List.iter
            (fun seg -> ignore (commit_ok "disk" st ~seg ~at:(float_of_int seg)))
            [ 0; 1; 2 ];
          Alcotest.(check int) "survivors resumed" 2 (Store.persist_resumed p);
          Alcotest.(check int) "lost segment re-appended" 1 (Store.persist_appended p);
          (* the re-append must have repaired the file: the torn bytes
             were truncated away, not appended after — a third open
             loads every record cleanly *)
          (match Store.open_persist ~path ~fingerprint:fp () with
          | Ok p3 ->
              Alcotest.(check bool) "file repaired" false (Store.persist_torn p3);
              Alcotest.(check int) "all records clean" 3 (Store.persist_loaded p3)
          | Error _ -> Alcotest.fail "repaired file must open cleanly")
      | Error _ -> Alcotest.fail "torn tail must recover, not refuse")

(* disk: an injected fail-stop error mid-commit (the --store-fail-after
   hook) kills the run between records; the resumed run finds only
   fully-committed records and re-executes the rest *)
let test_disk_injected_crash () =
  let path = Filename.temp_file "test_store" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let cfg = { Store.default with Store.backend = Store.Disk { path } } in
      let faulty = Faulty.after 3 in
      let inject () = Faulty.inject faulty "store persist write" in
      (* write 1 is the header, writes 2-3 are segs 0-1; seg 2 crashes *)
      (match Store.open_persist ~inject ~path ~fingerprint:fp () with
      | Error _ -> Alcotest.fail "open failed"
      | Ok p -> (
          let st = Store.create ~persist:p cfg (Rng.create 7) in
          match
            List.iter
              (fun seg -> ignore (commit_ok "disk" st ~seg ~at:(float_of_int seg)))
              [ 0; 1; 2; 3 ]
          with
          | () -> Alcotest.fail "injected crash did not fire"
          | exception Faulty.Injected _ -> ()));
      match Store.open_persist ~path ~fingerprint:fp () with
      | Error _ -> Alcotest.fail "crashed file must reopen"
      | Ok p ->
          Alcotest.(check bool) "no torn record: the append was atomic" false
            (Store.persist_torn p);
          Alcotest.(check int) "exactly the pre-crash commits survive" 2
            (Store.persist_loaded p);
          let st = Store.create ~persist:p cfg (Rng.create 7) in
          List.iter
            (fun seg -> ignore (commit_ok "disk" st ~seg ~at:(float_of_int seg)))
            [ 0; 1; 2; 3 ];
          Alcotest.(check int) "survivors resumed" 2 (Store.persist_resumed p);
          Alcotest.(check int) "the rest re-committed" 2 (Store.persist_appended p))

(* config surface: passthrough gating, policy parsing, validation and
   the planner's replica pricing *)
let test_config_surface () =
  Alcotest.(check bool) "default is passthrough" true (Store.passthrough Store.default);
  List.iter
    (fun (msg, c) -> Alcotest.(check bool) msg false (Store.passthrough c))
    [
      ("every-k", { Store.default with Store.policy = Store.Every_k 2 });
      ("on-interrupt", { Store.default with Store.policy = Store.On_interrupt });
      ("replicated", { Store.default with Store.backend = Store.Replicated { k = 2 } });
      ( "remote",
        { Store.default with
          Store.backend = Store.Remote { commit_latency = 0.; read_latency = 0. } } );
      ( "disk",
        { Store.default with Store.backend = Store.Disk { path = "x.journal" } } );
      ( "faulty",
        { Store.default with
          Store.faults = { Storage.default with Storage.corrupt_prob = 0.1 } } );
    ];
  (match Store.parse_policy "every-segment" with
  | Ok Store.Every_segment -> ()
  | _ -> Alcotest.fail "every-segment must parse");
  (match Store.parse_policy "every-3" with
  | Ok (Store.Every_k 3) -> ()
  | _ -> Alcotest.fail "every-3 must parse");
  (match Store.parse_policy "on-interrupt" with
  | Ok Store.On_interrupt -> ()
  | _ -> Alcotest.fail "on-interrupt must parse");
  List.iter
    (fun s ->
      match Store.parse_policy s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S must not parse" s)
    [ "every-0"; "every-"; "sometimes"; "" ];
  let rejects msg c =
    Alcotest.(check bool) msg true
      (match Store.validate c with exception Invalid_argument _ -> true | () -> false)
  in
  rejects "every-k < 1" { Store.default with Store.policy = Store.Every_k 0 };
  rejects "replicated k < 1" { Store.default with Store.backend = Store.Replicated { k = 0 } };
  rejects "empty disk path" { Store.default with Store.backend = Store.Disk { path = "" } };
  rejects "negative remote latency"
    { Store.default with
      Store.backend = Store.Remote { commit_latency = -1.; read_latency = 0. } };
  Alcotest.(check int) "replicated prices k·C" 3
    (Store.plan_replicas { Store.default with Store.backend = Store.Replicated { k = 3 } });
  Alcotest.(check int) "otherwise the fault config's replicas" 2
    (Store.plan_replicas
       { Store.default with Store.faults = { Storage.default with Storage.replicas = 2 } });
  Alcotest.(check string) "fingerprint is deterministic"
    (Store.fingerprint [ "a"; "b" ])
    (Store.fingerprint [ "a"; "b" ]);
  Alcotest.(check bool) "fingerprint separates its parts" true
    (Store.fingerprint [ "ab" ] <> Store.fingerprint [ "a"; "b" ])

let suite =
  [
    Alcotest.test_case "config surface" `Quick test_config_surface;
    Alcotest.test_case "contract: commit-then-read round-trip" `Quick test_roundtrip;
    Alcotest.test_case "contract: invalidate is monotone" `Quick test_invalidate_monotone;
    Alcotest.test_case "contract: policy durability" `Quick test_policy_durability;
    QCheck_alcotest.to_alcotest qcheck_stats_accounting;
    Alcotest.test_case "disk: fingerprint-validated resume" `Quick test_disk_resume;
    Alcotest.test_case "disk: foreign fingerprint refused" `Quick
      test_disk_fingerprint_refusal;
    Alcotest.test_case "disk: torn tail recovered" `Quick test_disk_torn_tail;
    Alcotest.test_case "disk: crash-consistent under injection" `Quick
      test_disk_injected_crash;
  ]
