(* Heterogeneous failure rates (extension beyond the paper).

   The paper's platforms are homogeneous. Real clusters are not:
   aging nodes fail more often. This study builds a platform where
   half the processors are 50x flakier than the other half, and shows
   how Algorithm 2 reacts — superchains on flaky processors get denser
   checkpointing — plus the waste accounting of the simulator.

   Run with: dune exec examples/heterogeneous_study.exe *)

module Dag = Ckpt_dag.Dag
module Platform = Ckpt_platform.Platform
module Allocate = Ckpt_core.Allocate
module Schedule = Ckpt_core.Schedule
module Superchain = Ckpt_core.Superchain
module Placement = Ckpt_core.Placement
module Strategy = Ckpt_core.Strategy
module Engine = Ckpt_sim.Engine
module Runner = Ckpt_sim.Runner
module Failure = Ckpt_platform.Failure
module Rng = Ckpt_prob.Rng

(* a bag of identical 30-task pipelines (10 s per stage, 10 MB between
   stages): long uniform chains are exactly where checkpoint density
   responds to the failure rate *)
let pipelines ~count ~length =
  let open Ckpt_mspg.Mspg in
  let chain c =
    Bserial (List.init length (fun i -> Btask (Printf.sprintf "stage%d.%d" c i, 10.)))
  in
  let m = build ~name:"pipelines" ~edge_size:(fun _ _ -> 1e7)
      (Bparallel (List.init count chain))
  in
  m

let () =
  let processors = 10 in
  let mspg = pipelines ~count:processors ~length:30 in
  let dag = mspg.Ckpt_mspg.Mspg.dag in
  let schedule = Allocate.run mspg ~processors in
  let mean_weight = Dag.total_weight dag /. float_of_int (Dag.n_tasks dag) in
  let base_rate = Platform.lambda_of_pfail ~pfail:0.0005 ~mean_weight in
  (* even processors reliable, odd processors 50x flakier *)
  let rates =
    Array.init processors (fun p -> if p mod 2 = 0 then base_rate else 50. *. base_rate)
  in
  let bandwidth =
    Platform.bandwidth_for_ccr ~ccr:0.2 ~total_data:(Dag.total_data dag)
      ~total_weight:(Dag.total_weight dag)
  in
  let platform = Platform.make_heterogeneous ~rates ~bandwidth () in
  Format.printf "%a@.@." Platform.pp platform;

  let plan = Strategy.plan Strategy.Ckpt_some ~raw:dag ~schedule ~platform in
  (* checkpoints per processor *)
  let ckpts = Array.make processors 0 and tasks = Array.make processors 0 in
  Array.iter
    (fun (seg : Placement.segment) ->
      let proc = schedule.Schedule.superchains.(seg.Placement.chain).Superchain.processor in
      ckpts.(proc) <- ckpts.(proc) + 1)
    plan.Strategy.segments;
  Array.iter
    (fun (sc : Superchain.t) ->
      tasks.(sc.Superchain.processor) <-
        tasks.(sc.Superchain.processor) + Superchain.n_tasks sc)
    schedule.Schedule.superchains;
  Format.printf "checkpoint density per processor (Algorithm 2, per-processor rates):@.";
  for p = 0 to processors - 1 do
    Format.printf "  p%d (%-8s) %3d checkpoints / %3d tasks = %.2f@." p
      (if p mod 2 = 0 then "reliable" else "flaky")
      ckpts.(p) tasks.(p)
      (float_of_int ckpts.(p) /. float_of_int (max 1 tasks.(p)))
  done;

  (* waste accounting over simulated executions *)
  let segs = Runner.segs_of_plan plan in
  let rng = Rng.create 3 in
  let trials = 400 in
  let failures = ref 0 and wasted = ref 0. and useful = ref 0. in
  for _ = 1 to trials do
    let trial = Rng.split rng in
    let traces = Hashtbl.create 16 in
    let trace p =
      match Hashtbl.find_opt traces p with
      | Some t -> t
      | None ->
          let t = Failure.create trial ~lambda:(Platform.rate_of platform p) in
          Hashtbl.replace traces p t;
          t
    in
    let records, _ = Engine.execute segs trace in
    let s = Engine.summarize records in
    failures := !failures + s.Engine.failures;
    wasted := !wasted +. s.Engine.wasted_time;
    useful := !useful +. s.Engine.useful_time
  done;
  Format.printf "@.simulated over %d trials: %.2f failures/run, waste ratio %.3f%%@." trials
    (float_of_int !failures /. float_of_int trials)
    (100. *. !wasted /. (!wasted +. !useful));

  (* the homogeneous-DP counterfactual: plan with the MEAN rate
     everywhere, execute on the heterogeneous platform *)
  let homogeneous =
    Platform.make ~processors ~lambda:platform.Platform.lambda ~bandwidth
  in
  let naive_plan = Strategy.plan Strategy.Ckpt_some ~raw:dag ~schedule ~platform:homogeneous in
  let run p =
    (* simulate a plan against the TRUE heterogeneous rates *)
    let segs = Runner.segs_of_plan p in
    let stats = Ckpt_prob.Stats.create () in
    let rng = Rng.create 9 in
    for _ = 1 to trials do
      let trial = Rng.split rng in
      let traces = Hashtbl.create 16 in
      let trace q =
        match Hashtbl.find_opt traces q with
        | Some t -> t
        | None ->
            let t = Failure.create trial ~lambda:(Platform.rate_of platform q) in
            Hashtbl.replace traces q t;
            t
      in
      Ckpt_prob.Stats.add stats (Engine.makespan segs trace)
    done;
    Ckpt_prob.Stats.mean stats
  in
  let aware = run plan and naive = run naive_plan in
  Format.printf
    "@.rate-aware DP: %.1f s | mean-rate DP: %.1f s (rate-awareness saves %.2f%%)@." aware
    naive
    ((naive -. aware) /. naive *. 100.)
