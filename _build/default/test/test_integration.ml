(* End-to-end integration tests: the paper's qualitative claims
   (Section VI-C) must hold on our reproduction. *)

module Pipeline = Ckpt_core.Pipeline
module Strategy = Ckpt_core.Strategy
module Spec = Ckpt_workflows.Spec
module Evaluator = Ckpt_eval.Evaluator

let compare_at kind ~tasks ~processors ~pfail ~ccr =
  let dag = Spec.generate kind ~seed:1 ~tasks () in
  let setup = Pipeline.prepare ~dag ~processors ~pfail ~ccr () in
  Pipeline.compare_strategies setup

let test_ckptsome_vs_ckptall_genome () =
  (* CKPTSOME always at least matches CKPTALL on genome (strict M-SPG,
     no dummy-synchronisation artifacts) *)
  List.iter
    (fun ccr ->
      List.iter
        (fun pfail ->
          let cmp = compare_at Spec.Genome ~tasks:300 ~processors:35 ~pfail ~ccr in
          if cmp.Pipeline.rel_all < 1. -. 1e-9 then
            Alcotest.failf "ccr=%g pfail=%g: CKPTALL beat CKPTSOME (%f)" ccr pfail
              cmp.Pipeline.rel_all)
        [ 0.01; 0.001; 0.0001 ])
    [ 0.0001; 0.001; 0.01; 0.1; 1.0 ]

let test_ckptall_converges_to_one_low_ccr () =
  (* as CCR -> 0, checkpointing becomes free: CKPTSOME checkpoints
     everything and matches CKPTALL *)
  List.iter
    (fun kind ->
      let cmp = compare_at kind ~tasks:300 ~processors:35 ~pfail:0.01 ~ccr:1e-6 in
      if abs_float (cmp.Pipeline.rel_all -. 1.) > 0.02 then
        Alcotest.failf "%s: rel_all %f at tiny CCR" (Spec.name kind) cmp.Pipeline.rel_all)
    Spec.all

let test_ckptall_penalty_grows_with_ccr () =
  (* the CKPTALL overhead is monotone-ish: compare extremes *)
  List.iter
    (fun kind ->
      let low = compare_at kind ~tasks:300 ~processors:35 ~pfail:0.001 ~ccr:0.001 in
      let high = compare_at kind ~tasks:300 ~processors:35 ~pfail:0.001 ~ccr:1.0 in
      if high.Pipeline.rel_all < low.Pipeline.rel_all -. 0.02 then
        Alcotest.failf "%s: rel_all fell from %f to %f as CCR rose" (Spec.name kind)
          low.Pipeline.rel_all high.Pipeline.rel_all)
    Spec.all

let test_ckptnone_loses_at_high_failure_rate () =
  (* frequent failures and cheap checkpoints: CKPTNONE must lose badly *)
  List.iter
    (fun kind ->
      let cmp = compare_at kind ~tasks:300 ~processors:35 ~pfail:0.01 ~ccr:0.001 in
      if cmp.Pipeline.rel_none < 1.2 then
        Alcotest.failf "%s: CKPTNONE too good (%f)" (Spec.name kind) cmp.Pipeline.rel_none)
    Spec.all

let test_ckptnone_competitive_when_failures_rare_and_ckpt_dear () =
  (* rare failures + expensive checkpoints: CKPTNONE wins or nearly *)
  let cmp = compare_at Spec.Ligo ~tasks:300 ~processors:35 ~pfail:0.0001 ~ccr:1.0 in
  if cmp.Pipeline.rel_none > 1.0 +. 1e-6 then
    Alcotest.failf "CKPTNONE should win at pfail=1e-4, CCR=1 (got %f)" cmp.Pipeline.rel_none

let test_ckptnone_degrades_with_size () =
  (* more tasks, more re-execution on restart: relNONE grows with n *)
  let rel n p =
    (compare_at Spec.Genome ~tasks:n ~processors:p ~pfail:0.01 ~ccr:0.001).Pipeline.rel_none
  in
  Alcotest.(check bool) "monotone in n" true (rel 50 5 < rel 1000 61)

let test_ckptnone_degrades_with_failures () =
  let rel pfail =
    (compare_at Spec.Montage ~tasks:300 ~processors:35 ~pfail ~ccr:0.01).Pipeline.rel_none
  in
  Alcotest.(check bool) "monotone in pfail" true (rel 0.0001 < rel 0.01)

let test_paper_processor_grid_runs () =
  (* the full grid of Figures 5-7 processor counts must at least run *)
  let grid = [ (50, [ 3; 5; 7; 10 ]); (300, [ 18; 35; 52; 70 ]) ] in
  List.iter
    (fun kind ->
      List.iter
        (fun (tasks, procs) ->
          List.iter
            (fun p ->
              let cmp = compare_at kind ~tasks ~processors:p ~pfail:0.001 ~ccr:0.01 in
              if not (cmp.Pipeline.em_some > 0.) then
                Alcotest.failf "%s n=%d p=%d failed" (Spec.name kind) tasks p)
            procs)
        grid)
    Spec.all

let test_more_processors_not_slower () =
  (* proportional mapping should not make the failure-free schedule
     dramatically worse with more processors *)
  let em p =
    let dag = Spec.generate Spec.Genome ~seed:1 ~tasks:300 () in
    let setup = Pipeline.prepare ~dag ~processors:p ~pfail:0.0001 ~ccr:0.001 () in
    (Pipeline.plan setup Strategy.Ckpt_none).Strategy.wpar
  in
  Alcotest.(check bool) "wpar shrinks with processors" true (em 70 <= em 18 +. 1e-6)

let test_estimators_consistent_on_real_plans () =
  (* all four estimators agree within a few percent on a real
     CKPTSOME plan (Section VI-B conclusion) *)
  let dag = Spec.generate Spec.Ligo ~seed:1 ~tasks:300 () in
  let setup = Pipeline.prepare ~dag ~processors:35 ~pfail:0.001 ~ccr:0.01 () in
  let plan = Pipeline.plan setup Strategy.Ckpt_some in
  let mc =
    Strategy.expected_makespan ~method_:(Evaluator.Montecarlo { trials = 100_000; seed = 1 })
      plan
  in
  List.iter
    (fun m ->
      let v = Strategy.expected_makespan ~method_:m plan in
      let err = abs_float (v -. mc) /. mc in
      if err > 0.05 then
        Alcotest.failf "%s: %f vs MC %f (%.1f%%)" (Evaluator.name m) v mc (err *. 100.))
    Evaluator.all_fast

let test_simulation_validates_model_on_all_workflows () =
  (* the simulator (exact failure semantics) stays within ~5% of the
     first-order PATHAPPROX estimate in the paper's regime *)
  List.iter
    (fun kind ->
      let dag = Spec.generate kind ~seed:1 ~tasks:50 () in
      let setup = Pipeline.prepare ~dag ~processors:5 ~pfail:0.001 ~ccr:0.01 () in
      let plan = Pipeline.plan setup Strategy.Ckpt_some in
      let est = Strategy.expected_makespan plan in
      let sim = Ckpt_sim.Runner.simulated_expected_makespan ~trials:2000 plan in
      let err = abs_float (sim -. est) /. est in
      if err > 0.05 then
        Alcotest.failf "%s: sim %f vs est %f (%.1f%%)" (Spec.name kind) sim est (err *. 100.))
    Spec.all

let suite =
  [
    Alcotest.test_case "CKPTSOME >= CKPTALL (genome)" `Slow test_ckptsome_vs_ckptall_genome;
    Alcotest.test_case "rel_all -> 1 as CCR -> 0" `Slow test_ckptall_converges_to_one_low_ccr;
    Alcotest.test_case "rel_all grows with CCR" `Slow test_ckptall_penalty_grows_with_ccr;
    Alcotest.test_case "CKPTNONE loses at high pfail" `Slow test_ckptnone_loses_at_high_failure_rate;
    Alcotest.test_case "CKPTNONE wins when ckpt dear" `Quick test_ckptnone_competitive_when_failures_rare_and_ckpt_dear;
    Alcotest.test_case "CKPTNONE degrades with n" `Slow test_ckptnone_degrades_with_size;
    Alcotest.test_case "CKPTNONE degrades with pfail" `Quick test_ckptnone_degrades_with_failures;
    Alcotest.test_case "paper processor grid" `Slow test_paper_processor_grid_runs;
    Alcotest.test_case "wpar shrinks with procs" `Quick test_more_processors_not_slower;
    Alcotest.test_case "estimators agree on plans" `Slow test_estimators_consistent_on_real_plans;
    Alcotest.test_case "simulator validates model" `Slow test_simulation_validates_model_on_all_workflows;
  ]
