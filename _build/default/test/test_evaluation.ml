(* Tests for Ckpt_eval: the 2-state DAG and the four expected-makespan
   estimators of Section II-B, cross-validated against closed forms,
   each other, and the exact SP evaluation. *)

module Prob_dag = Ckpt_eval.Prob_dag
module Montecarlo = Ckpt_eval.Montecarlo
module Dodin = Ckpt_eval.Dodin
module Sculli = Ckpt_eval.Sculli
module Pathapprox = Ckpt_eval.Pathapprox
module Exact_sp = Ckpt_eval.Exact_sp
module Ckptnone = Ckpt_eval.Ckptnone
module Evaluator = Ckpt_eval.Evaluator
module Dist = Ckpt_prob.Dist
module Mspg = Ckpt_mspg.Mspg
module Rng = Ckpt_prob.Rng

let check_close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps *. (1. +. abs_float expected) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

(* a chain of two-state nodes: expectation = sum of node means *)
let chain nodes =
  let pd = Prob_dag.create () in
  let ids =
    List.map (fun (base, degraded, pfail) -> Prob_dag.add_node pd ~base ~degraded ~pfail) nodes
  in
  let rec link = function
    | a :: (b :: _ as tl) ->
        Prob_dag.add_edge pd a b;
        link tl
    | _ -> ()
  in
  link ids;
  pd

let two_parallel_chains () =
  (* two independent 2-node chains joined source/sink free: makespan =
     max of the two chain sums *)
  let pd = Prob_dag.create () in
  let a1 = Prob_dag.add_node pd ~base:4. ~degraded:6. ~pfail:0.5 in
  let a2 = Prob_dag.add_node pd ~base:4. ~degraded:6. ~pfail:0.5 in
  let b1 = Prob_dag.add_node pd ~base:5. ~degraded:7. ~pfail:0.5 in
  let b2 = Prob_dag.add_node pd ~base:3. ~degraded:5. ~pfail:0.5 in
  Prob_dag.add_edge pd a1 a2;
  Prob_dag.add_edge pd b1 b2;
  pd

let test_prob_dag_validation () =
  let pd = Prob_dag.create () in
  Alcotest.(check bool) "degraded < base rejected" true
    (match Prob_dag.add_node pd ~base:5. ~degraded:4. ~pfail:0.1 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "pfail > 1 rejected" true
    (match Prob_dag.add_node pd ~base:1. ~degraded:2. ~pfail:1.5 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_prob_dag_duplicate_edge_idempotent () =
  let pd = Prob_dag.create () in
  let a = Prob_dag.add_node pd ~base:1. ~degraded:1. ~pfail:0. in
  let b = Prob_dag.add_node pd ~base:1. ~degraded:1. ~pfail:0. in
  Prob_dag.add_edge pd a b;
  Prob_dag.add_edge pd a b;
  Alcotest.(check (list int)) "one edge" [ b ] (Prob_dag.succs pd a)

let test_deterministic_makespan () =
  let pd = chain [ (1., 1., 0.); (2., 2., 0.); (3., 3., 0.) ] in
  check_close "chain" 6. (Prob_dag.deterministic_makespan pd)

let test_expected_work () =
  let pd = chain [ (10., 15., 0.2) ] in
  check_close "E[X]" 11. (Prob_dag.expected_work pd)

(* closed form for a chain: E[makespan] = sum of means *)
let chain_mean nodes =
  List.fold_left
    (fun acc (b, d, p) -> acc +. ((1. -. p) *. b) +. (p *. d))
    0. nodes

let test_montecarlo_chain () =
  let nodes = [ (10., 15., 0.3); (5., 8., 0.1); (2., 3., 0.5) ] in
  let pd = chain nodes in
  check_close ~eps:0.01 "MC chain mean" (chain_mean nodes)
    (Montecarlo.estimate ~trials:200_000 pd)

let test_montecarlo_deterministic_exact () =
  let pd = chain [ (7., 7., 0.); (3., 3., 0.) ] in
  check_close "no randomness" 10. (Montecarlo.estimate ~trials:10 pd)

let test_dodin_exact_on_chain () =
  (* convolution is exact on chains *)
  let nodes = [ (10., 15., 0.3); (5., 8., 0.1); (2., 3., 0.5) ] in
  check_close "Dodin chain" (chain_mean nodes) (Dodin.estimate (chain nodes))

let test_dodin_exact_on_sp () =
  (* max of independent branches: exact for SP graphs *)
  let pd = two_parallel_chains () in
  let mc = Montecarlo.estimate ~trials:400_000 pd in
  check_close ~eps:0.01 "Dodin SP vs MC" mc (Dodin.estimate pd)

let test_dodin_distribution_mass () =
  let pd = two_parallel_chains () in
  let d = Dodin.distribution pd in
  let total = Array.fold_left (fun acc (_, p) -> acc +. p) 0. (Dist.support d) in
  check_close "mass 1" 1. total

let test_sculli_chain_mean_exact () =
  (* sums have exact means under Sculli; only maxima approximate *)
  let nodes = [ (10., 15., 0.3); (5., 8., 0.1) ] in
  check_close "Sculli chain mean" (chain_mean nodes) (Sculli.estimate (chain nodes))

let test_sculli_reasonable_on_sp () =
  let pd = two_parallel_chains () in
  let mc = Montecarlo.estimate ~trials:200_000 pd in
  let sculli = Sculli.estimate pd in
  if abs_float (sculli -. mc) > 0.05 *. mc then
    Alcotest.failf "Sculli %f too far from MC %f" sculli mc

let test_pathapprox_no_failures () =
  let pd = chain [ (4., 4., 0.); (6., 6., 0.) ] in
  check_close "L0" 10. (Pathapprox.estimate pd)

let test_pathapprox_single_node () =
  (* exact for one 2-state node *)
  let pd = chain [ (10., 15., 0.2) ] in
  check_close "single node" 11. (Pathapprox.estimate pd)

let test_pathapprox_first_order_chain () =
  (* small pfail: first-order expansion matches the exact mean *)
  let nodes = [ (10., 15., 0.001); (5., 8., 0.002); (2., 3., 0.001) ] in
  check_close ~eps:1e-5 "first order" (chain_mean nodes) (Pathapprox.estimate (chain nodes))

let test_pathapprox_close_to_mc_small_pfail () =
  let pd = two_parallel_chains () in
  (* rebuild with small pfail *)
  let pd2 = Prob_dag.create () in
  for i = 0 to Prob_dag.n_nodes pd - 1 do
    let nd = Prob_dag.node pd i in
    ignore
      (Prob_dag.add_node pd2 ~base:nd.Prob_dag.base ~degraded:nd.Prob_dag.degraded
         ~pfail:0.005)
  done;
  for i = 0 to Prob_dag.n_nodes pd - 1 do
    List.iter (fun j -> Prob_dag.add_edge pd2 i j) (Prob_dag.succs pd i)
  done;
  let mc = Montecarlo.estimate ~trials:400_000 pd2 in
  let pa = Pathapprox.estimate pd2 in
  if abs_float (pa -. mc) > 0.005 *. mc then Alcotest.failf "pathapprox %f vs mc %f" pa mc

let test_exact_sp_chain () =
  let tree = Mspg.serial [ Mspg.leaf 0; Mspg.leaf 1 ] in
  let node_dist = function
    | 0 -> Dist.two_state ~p:0.3 10. 15.
    | _ -> Dist.two_state ~p:0.1 5. 8.
  in
  check_close "exact chain"
    (chain_mean [ (10., 15., 0.3); (5., 8., 0.1) ])
    (Exact_sp.estimate tree ~node_dist)

let test_exact_sp_parallel () =
  (* max of two fair coins over {0,1}: mean 0.75 *)
  let tree = Mspg.parallel [ Mspg.leaf 0; Mspg.leaf 1 ] in
  let node_dist _ = Dist.two_state ~p:0.5 0. 1. in
  check_close "exact max" 0.75 (Exact_sp.estimate tree ~node_dist)

let test_exact_sp_matches_mc_forkjoin () =
  let tree =
    Mspg.serial
      [ Mspg.leaf 0;
        Mspg.parallel
          [ Mspg.serial [ Mspg.leaf 1; Mspg.leaf 2 ]; Mspg.serial [ Mspg.leaf 3; Mspg.leaf 4 ] ];
        Mspg.leaf 5 ]
  in
  let params =
    [| (3., 5., 0.3); (4., 6., 0.2); (2., 4., 0.4); (5., 6., 0.1); (1., 3., 0.5); (2., 2., 0.) |]
  in
  let node_dist i =
    let b, d, p = params.(i) in
    Dist.two_state ~p b d
  in
  (* equivalent Prob_dag *)
  let pd = Prob_dag.create () in
  Array.iter (fun (b, d, p) -> ignore (Prob_dag.add_node pd ~base:b ~degraded:d ~pfail:p)) params;
  List.iter (fun (u, v) -> Prob_dag.add_edge pd u v)
    [ (0, 1); (0, 3); (1, 2); (3, 4); (2, 5); (4, 5) ];
  let mc = Montecarlo.estimate ~trials:400_000 pd in
  check_close ~eps:0.01 "exact SP vs MC" mc (Exact_sp.estimate tree ~node_dist)

let test_dodin_matches_exact_sp () =
  (* Dodin's forward pass is exact on in-trees: two disjoint chains
     joining at a sink (no shared ancestors, so the independence
     assumption holds) *)
  let tree =
    Mspg.serial
      [ Mspg.parallel
          [ Mspg.serial [ Mspg.leaf 0; Mspg.leaf 1 ]; Mspg.serial [ Mspg.leaf 2; Mspg.leaf 3 ] ];
        Mspg.leaf 4 ]
  in
  let params =
    [| (3., 5., 0.3); (4., 6., 0.2); (2., 4., 0.4); (1., 3., 0.5); (2., 3., 0.25) |]
  in
  let node_dist i =
    let b, d, p = params.(i) in
    Dist.two_state ~p b d
  in
  let pd = Prob_dag.create () in
  Array.iter (fun (b, d, p) -> ignore (Prob_dag.add_node pd ~base:b ~degraded:d ~pfail:p)) params;
  List.iter (fun (u, v) -> Prob_dag.add_edge pd u v) [ (0, 1); (2, 3); (1, 4); (3, 4) ];
  check_close ~eps:1e-9 "dodin = exact on in-tree"
    (Exact_sp.estimate ~max_support:max_int tree ~node_dist)
    (Dodin.estimate ~max_support:max_int pd);
  (* and on a fork (shared ancestor) Dodin is an upper-biased
     approximation: verify the direction of the bias *)
  let fork_pd = Prob_dag.create () in
  let fork_params = [| (3., 5., 0.3); (4., 6., 0.2); (2., 4., 0.4); (1., 3., 0.5) |] in
  Array.iter
    (fun (b, d, p) -> ignore (Prob_dag.add_node fork_pd ~base:b ~degraded:d ~pfail:p))
    fork_params;
  List.iter (fun (u, v) -> Prob_dag.add_edge fork_pd u v) [ (0, 1); (0, 2); (1, 3); (2, 3) ];
  let fork_tree =
    Mspg.serial [ Mspg.leaf 0; Mspg.parallel [ Mspg.leaf 1; Mspg.leaf 2 ]; Mspg.leaf 3 ]
  in
  let fork_dist i =
    let b, d, p = fork_params.(i) in
    Dist.two_state ~p b d
  in
  let exact = Exact_sp.estimate ~max_support:max_int fork_tree ~node_dist:fork_dist in
  let dodin = Dodin.estimate ~max_support:max_int fork_pd in
  Alcotest.(check bool) "fork bias is upward" true (dodin >= exact -. 1e-9)

let test_ckptnone_formula () =
  (* EM = (1 - pλW) W + pλW (3/2 W) *)
  let wpar = 100. and processors = 4 and lambda = 1e-4 in
  let x = float_of_int processors *. lambda *. wpar in
  check_close "Theorem 1"
    (((1. -. x) *. wpar) +. (x *. 1.5 *. wpar))
    (Ckptnone.expected_makespan ~wpar ~processors ~lambda);
  check_close "failure-free" 100. (Ckptnone.expected_makespan ~wpar:100. ~processors:4 ~lambda:0.)

let test_evaluator_dispatch () =
  let pd = chain [ (10., 15., 0.01) ] in
  List.iter
    (fun m ->
      let v = Evaluator.estimate m pd in
      check_close ~eps:0.02 (Evaluator.name m) 10.05 v)
    (Evaluator.default_montecarlo :: Evaluator.all_fast)

let test_evaluator_of_name () =
  List.iter
    (fun n ->
      match Evaluator.of_name n with
      | Some _ -> ()
      | None -> Alcotest.failf "unknown method %s" n)
    [ "montecarlo"; "dodin"; "normal"; "pathapprox"; "sculli"; "mc" ];
  Alcotest.(check bool) "bogus rejected" true (Evaluator.of_name "bogus" = None)

(* --- estimator agreement on random 2-state DAGs (paper Section VI-B) --- *)

let random_prob_dag seed n =
  let rng = Rng.create seed in
  let pd = Prob_dag.create () in
  for _ = 1 to n do
    let base = 1. +. Rng.float rng 20. in
    ignore
      (Prob_dag.add_node pd ~base ~degraded:(1.5 *. base) ~pfail:(0.001 +. Rng.float rng 0.02))
  done;
  for u = 0 to n - 2 do
    for v = u + 1 to n - 1 do
      if Rng.uniform rng < 0.15 then Prob_dag.add_edge pd u v
    done
  done;
  pd

let test_bounds_on_chain () =
  (* on a chain both bounds are tight (no maxima) *)
  let nodes = [ (10., 15., 0.3); (5., 8., 0.1) ] in
  let pd = chain nodes in
  let lo, hi = Ckpt_eval.Bounds.bracket pd in
  check_close "lower tight" (chain_mean nodes) lo;
  check_close "upper tight" (chain_mean nodes) hi

let test_bounds_bracket_mc () =
  for seed = 11 to 16 do
    let pd = random_prob_dag seed 25 in
    let mc = Montecarlo.estimate ~trials:100_000 pd in
    let lo, hi = Ckpt_eval.Bounds.bracket pd in
    if lo > mc +. (0.01 *. mc) then Alcotest.failf "seed %d: lower %f > MC %f" seed lo mc;
    if hi < mc -. (0.01 *. mc) then Alcotest.failf "seed %d: upper %f < MC %f" seed hi mc;
    if lo > hi +. 1e-9 then Alcotest.failf "seed %d: crossing bounds" seed
  done

let test_bounds_fork () =
  (* max of two iid coins: truth 0.75, lower (means) 0.5, upper
     (independent product — actually exact here) 0.75 *)
  let pd = Prob_dag.create () in
  let a = Prob_dag.add_node pd ~base:0. ~degraded:1. ~pfail:0.5 in
  let b = Prob_dag.add_node pd ~base:0. ~degraded:1. ~pfail:0.5 in
  ignore a;
  ignore b;
  let lo, hi = Ckpt_eval.Bounds.bracket pd in
  check_close "lower = max of means" 0.5 lo;
  check_close "upper = exact for independent" 0.75 hi

let test_estimators_agree_with_mc () =
  for seed = 1 to 5 do
    let pd = random_prob_dag seed 25 in
    let mc = Montecarlo.estimate ~trials:100_000 pd in
    List.iter
      (fun m ->
        let v = Evaluator.estimate m pd in
        let err = abs_float (v -. mc) /. mc in
        if err > 0.05 then
          Alcotest.failf "seed %d: %s = %f vs MC %f (%.1f%%)" seed (Evaluator.name m) v mc
            (err *. 100.))
      Evaluator.all_fast
  done

let suite =
  [
    Alcotest.test_case "prob_dag validation" `Quick test_prob_dag_validation;
    Alcotest.test_case "duplicate edges idempotent" `Quick test_prob_dag_duplicate_edge_idempotent;
    Alcotest.test_case "deterministic makespan" `Quick test_deterministic_makespan;
    Alcotest.test_case "expected work" `Quick test_expected_work;
    Alcotest.test_case "MC chain" `Quick test_montecarlo_chain;
    Alcotest.test_case "MC deterministic" `Quick test_montecarlo_deterministic_exact;
    Alcotest.test_case "Dodin chain exact" `Quick test_dodin_exact_on_chain;
    Alcotest.test_case "Dodin SP vs MC" `Slow test_dodin_exact_on_sp;
    Alcotest.test_case "Dodin distribution mass" `Quick test_dodin_distribution_mass;
    Alcotest.test_case "Sculli chain mean" `Quick test_sculli_chain_mean_exact;
    Alcotest.test_case "Sculli on SP" `Slow test_sculli_reasonable_on_sp;
    Alcotest.test_case "PathApprox L0" `Quick test_pathapprox_no_failures;
    Alcotest.test_case "PathApprox single node" `Quick test_pathapprox_single_node;
    Alcotest.test_case "PathApprox first order" `Quick test_pathapprox_first_order_chain;
    Alcotest.test_case "PathApprox vs MC" `Slow test_pathapprox_close_to_mc_small_pfail;
    Alcotest.test_case "Exact SP chain" `Quick test_exact_sp_chain;
    Alcotest.test_case "Exact SP parallel" `Quick test_exact_sp_parallel;
    Alcotest.test_case "Exact SP vs MC" `Slow test_exact_sp_matches_mc_forkjoin;
    Alcotest.test_case "Dodin = Exact on SP" `Quick test_dodin_matches_exact_sp;
    Alcotest.test_case "Theorem 1 formula" `Quick test_ckptnone_formula;
    Alcotest.test_case "bounds on chain" `Quick test_bounds_on_chain;
    Alcotest.test_case "bounds bracket MC" `Slow test_bounds_bracket_mc;
    Alcotest.test_case "bounds on fork" `Quick test_bounds_fork;
    Alcotest.test_case "evaluator dispatch" `Quick test_evaluator_dispatch;
    Alcotest.test_case "evaluator of_name" `Quick test_evaluator_of_name;
    Alcotest.test_case "estimators vs MC (VI-B)" `Slow test_estimators_agree_with_mc;
  ]
