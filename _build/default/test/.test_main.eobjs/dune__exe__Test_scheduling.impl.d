test/test_scheduling.ml: Alcotest Array Ckpt_core Ckpt_dag Ckpt_mspg Ckpt_prob Ckpt_workflows Hashtbl List Printf
