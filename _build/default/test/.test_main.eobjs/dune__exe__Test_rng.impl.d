test/test_rng.ml: Alcotest Array Ckpt_prob List
