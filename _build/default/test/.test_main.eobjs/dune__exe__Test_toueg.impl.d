test/test_toueg.ml: Alcotest Array Ckpt_core Ckpt_prob List Printf
