test/test_recognize.ml: Alcotest Array Ckpt_core Ckpt_dag Ckpt_mspg Ckpt_platform Ckpt_workflows Format List QCheck QCheck_alcotest
