test/test_dist.ml: Alcotest Array Ckpt_prob Float Gen List QCheck QCheck_alcotest
