test/test_normal.ml: Alcotest Ckpt_prob Float List Printf
