test/test_simulation.ml: Alcotest Array Ckpt_core Ckpt_eval Ckpt_platform Ckpt_prob Ckpt_sim Ckpt_workflows List
