test/test_stats.ml: Alcotest Array Ckpt_prob Stdlib
