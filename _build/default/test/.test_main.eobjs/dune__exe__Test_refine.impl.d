test/test_refine.ml: Alcotest Array Ckpt_core Ckpt_workflows List
