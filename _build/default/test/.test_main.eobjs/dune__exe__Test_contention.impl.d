test/test_contention.ml: Alcotest Array Ckpt_core Ckpt_platform Ckpt_prob Ckpt_sim Ckpt_workflows Printf
