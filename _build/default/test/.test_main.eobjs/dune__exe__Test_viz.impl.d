test/test_viz.ml: Alcotest Array Ckpt_core Ckpt_platform Ckpt_prob Ckpt_sim Ckpt_viz Ckpt_workflows Filename Fun List String Sys
