test/test_platform.ml: Alcotest Ckpt_platform Ckpt_prob List
