test/test_dax.ml: Alcotest Ckpt_core Ckpt_dag Ckpt_dax Ckpt_workflows Filename Fun List Sys
