test/test_placement.ml: Alcotest Array Ckpt_core Ckpt_dag Ckpt_platform Ckpt_prob List Printf QCheck QCheck_alcotest
