test/test_dag.ml: Alcotest Array Ckpt_dag Ckpt_prob Float Hashtbl List Printf QCheck QCheck_alcotest String
