test/test_analysis.ml: Alcotest Ckpt_dag Ckpt_workflows List
