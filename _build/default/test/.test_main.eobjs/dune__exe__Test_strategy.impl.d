test/test_strategy.ml: Alcotest Array Ckpt_core Ckpt_dag Ckpt_eval Ckpt_mspg Ckpt_platform Ckpt_prob Ckpt_sim Ckpt_workflows Hashtbl List Option Printf QCheck QCheck_alcotest
