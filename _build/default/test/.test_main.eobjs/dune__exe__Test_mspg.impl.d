test/test_mspg.ml: Alcotest Ckpt_dag Ckpt_mspg Ckpt_prob Ckpt_workflows List QCheck QCheck_alcotest
