test/test_workflows.ml: Alcotest Array Ckpt_dag Ckpt_mspg Ckpt_workflows Float Hashtbl List Option
