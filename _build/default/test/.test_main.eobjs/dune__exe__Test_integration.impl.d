test/test_integration.ml: Alcotest Ckpt_core Ckpt_eval Ckpt_sim Ckpt_workflows List
