test/test_evaluation.ml: Alcotest Array Ckpt_eval Ckpt_mspg Ckpt_prob List
