(* Tests for Ckpt_dag.Analysis. *)

module Dag = Ckpt_dag.Dag
module Analysis = Ckpt_dag.Analysis
module Spec = Ckpt_workflows.Spec

let diamond () =
  let d = Dag.create ~name:"diamond" () in
  let a = Dag.add_task d ~name:"head" ~weight:1. in
  let b = Dag.add_task d ~name:"mid" ~weight:2. in
  let c = Dag.add_task d ~name:"mid" ~weight:3. in
  let e = Dag.add_task d ~name:"tail" ~weight:4. in
  Dag.add_edge d a b 10.;
  Dag.add_edge d a c 20.;
  Dag.add_edge d b e 30.;
  Dag.add_edge d c e 40.;
  Dag.add_input d a 100.;
  d

let test_profile_diamond () =
  let p = Analysis.profile (diamond ()) in
  Alcotest.(check int) "tasks" 4 p.Analysis.tasks;
  Alcotest.(check int) "edges" 4 p.Analysis.edges;
  Alcotest.(check int) "depth" 3 p.Analysis.depth;
  Alcotest.(check int) "max width" 2 p.Analysis.max_width;
  Alcotest.(check (float 1e-9)) "critical path" 8. p.Analysis.critical_path_length;
  Alcotest.(check int) "cp tasks" 3 p.Analysis.critical_path_tasks;
  Alcotest.(check (float 1e-9)) "parallelism" (10. /. 8.) p.Analysis.avg_parallelism;
  Alcotest.(check int) "sources" 1 p.Analysis.sources;
  Alcotest.(check int) "sinks" 1 p.Analysis.sinks;
  Alcotest.(check int) "max in" 2 p.Analysis.max_in_degree;
  Alcotest.(check int) "max out" 2 p.Analysis.max_out_degree;
  Alcotest.(check int) "inputs" 1 p.Analysis.initial_input_files;
  Alcotest.(check int) "no shared files" 0 p.Analysis.shared_files;
  Alcotest.(check (float 1e-6)) "data incl. input" 200. p.Analysis.total_data

let test_level_widths () =
  Alcotest.(check (array int)) "widths" [| 1; 2; 1 |] (Analysis.level_widths (diamond ()))

let test_shared_file_detection () =
  let d = Dag.create () in
  let a = Dag.add_task d ~name:"a" ~weight:1. in
  let b = Dag.add_task d ~name:"b" ~weight:1. in
  let c = Dag.add_task d ~name:"c" ~weight:1. in
  let f = Dag.add_file d ~producer:a ~size:5. in
  Dag.add_edge d ~file:f a b 0.;
  Dag.add_edge d ~file:f a c 0.;
  Alcotest.(check int) "one shared file" 1 (Analysis.profile d).Analysis.shared_files

let test_by_task_type () =
  match Analysis.by_task_type (diamond ()) with
  | [ ("mid", 2, w); ("tail", 1, 4.); ("head", 1, 1.) ] ->
      Alcotest.(check (float 1e-9)) "mid weight" 5. w
  | l -> Alcotest.failf "unexpected breakdown (%d entries)" (List.length l)

let test_bottleneck_tasks () =
  let tops = Analysis.bottleneck_tasks ~top:2 (diamond ()) in
  Alcotest.(check (list (float 1e-9))) "two heaviest" [ 4.; 3. ]
    (List.map (fun (t : Ckpt_dag.Task.t) -> t.Ckpt_dag.Task.weight) tops)

let test_profile_real_workflows () =
  List.iter
    (fun kind ->
      let dag = Spec.generate kind ~seed:2 ~tasks:300 () in
      let p = Analysis.profile dag in
      Alcotest.(check bool) (Spec.name kind ^ " parallelism >= 1") true
        (p.Analysis.avg_parallelism >= 1. -. 1e-9);
      Alcotest.(check bool) "depth sane" true (p.Analysis.depth >= 3);
      Alcotest.(check bool) "width sane" true
        (p.Analysis.max_width >= 1 && p.Analysis.max_width <= p.Analysis.tasks))
    Spec.all

let test_montage_shared_broadcast () =
  let dag = Spec.generate Spec.Montage ~seed:2 ~tasks:100 () in
  Alcotest.(check bool) "montage shares files" true
    ((Analysis.profile dag).Analysis.shared_files >= 1)

let test_empty_rejected () =
  Alcotest.(check bool) "empty rejected" true
    (match Analysis.profile (Dag.create ()) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "profile diamond" `Quick test_profile_diamond;
    Alcotest.test_case "level widths" `Quick test_level_widths;
    Alcotest.test_case "shared files" `Quick test_shared_file_detection;
    Alcotest.test_case "by task type" `Quick test_by_task_type;
    Alcotest.test_case "bottlenecks" `Quick test_bottleneck_tasks;
    Alcotest.test_case "real workflows" `Quick test_profile_real_workflows;
    Alcotest.test_case "montage broadcast" `Quick test_montage_shared_broadcast;
    Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
  ]
