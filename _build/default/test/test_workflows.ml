(* Tests for Ckpt_workflows: the three Pegasus-like generators must
   produce acyclic, connected-enough, M-SPG(-completable) workflows of
   the requested size, deterministically per seed. *)

module Dag = Ckpt_dag.Dag
module Spec = Ckpt_workflows.Spec
module Recognize = Ckpt_mspg.Recognize
module Mspg = Ckpt_mspg.Mspg

let sizes = [ 50; 300; 1000 ]

let test_task_counts () =
  List.iter
    (fun kind ->
      List.iter
        (fun n ->
          let dag = Spec.generate kind ~seed:1 ~tasks:n () in
          let actual = Dag.n_tasks dag in
          let tolerance = max 3 (n / 20) in
          if abs (actual - n) > tolerance then
            Alcotest.failf "%s: wanted ~%d tasks, got %d" (Spec.name kind) n actual)
        sizes)
    Spec.all

let test_acyclic () =
  List.iter
    (fun kind ->
      List.iter
        (fun n -> Dag.check_acyclic (Spec.generate kind ~seed:2 ~tasks:n ()))
        sizes)
    Spec.all

let test_deterministic_per_seed () =
  List.iter
    (fun kind ->
      let d1 = Spec.generate kind ~seed:9 ~tasks:100 () in
      let d2 = Spec.generate kind ~seed:9 ~tasks:100 () in
      Alcotest.(check int) "same tasks" (Dag.n_tasks d1) (Dag.n_tasks d2);
      Alcotest.(check int) "same edges" (Dag.n_edges d1) (Dag.n_edges d2);
      Alcotest.(check (float 1e-9)) "same weight" (Dag.total_weight d1) (Dag.total_weight d2);
      Alcotest.(check (float 1e-6)) "same data" (Dag.total_data d1) (Dag.total_data d2))
    Spec.all

let test_seed_changes_instance () =
  let d1 = Spec.generate Spec.Genome ~seed:1 ~tasks:100 () in
  let d2 = Spec.generate Spec.Genome ~seed:2 ~tasks:100 () in
  Alcotest.(check bool) "weights differ across seeds" true
    (Dag.total_weight d1 <> Dag.total_weight d2)

let test_positive_weights_and_sizes () =
  List.iter
    (fun kind ->
      let dag = Spec.generate kind ~seed:3 ~tasks:300 () in
      Array.iter
        (fun t ->
          if t.Ckpt_dag.Task.weight <= 0. then
            Alcotest.failf "%s: non-positive weight" (Spec.name kind))
        (Dag.tasks dag);
      Array.iter
        (fun (f : Dag.file) ->
          if f.Dag.size < 0. then Alcotest.failf "%s: negative file" (Spec.name kind))
        (Dag.files dag))
    Spec.all

let test_genome_strict_mspg () =
  List.iter
    (fun n ->
      let dag = Spec.generate Spec.Genome ~seed:4 ~tasks:n () in
      if not (Recognize.is_mspg dag) then Alcotest.failf "genome %d not a strict M-SPG" n)
    sizes

let test_all_workflows_completable () =
  List.iter
    (fun kind ->
      List.iter
        (fun n ->
          let dag = Spec.generate kind ~seed:5 ~tasks:n () in
          match Recognize.of_dag_completed dag with
          | Ok (m, _) -> (
              match Mspg.validate m with
              | Ok () -> ()
              | Error e -> Alcotest.failf "%s %d: %s" (Spec.name kind) n e)
          | Error e -> Alcotest.failf "%s %d not completable: %s" (Spec.name kind) n e)
        sizes)
    Spec.all

let test_montage_needs_completion () =
  let dag = Spec.generate Spec.Montage ~seed:6 ~tasks:50 () in
  Alcotest.(check bool) "overlap block is incomplete bipartite" false (Recognize.is_mspg dag)

let test_ligo_strict_without_crossings () =
  let dag = Ckpt_workflows.Ligo.generate ~seed:6 ~cross_group:0. ~tasks:300 () in
  Alcotest.(check bool) "no crossings -> strict M-SPG" true (Recognize.is_mspg dag)

let test_montage_has_shared_broadcast_file () =
  let dag = Spec.generate Spec.Montage ~seed:7 ~tasks:50 () in
  (* the mBgModel correction table is one file consumed by all
     mBackground tasks: find a file with many consumers *)
  let consumers = Hashtbl.create 64 in
  for u = 0 to Dag.n_tasks dag - 1 do
    List.iter
      (fun ((_ : int), (f : Dag.file)) ->
        Hashtbl.replace consumers f.Dag.file_id
          (1 + Option.value ~default:0 (Hashtbl.find_opt consumers f.Dag.file_id)))
      (Dag.preds dag u)
  done;
  let max_consumers = Hashtbl.fold (fun _ c acc -> max c acc) consumers 0 in
  Alcotest.(check bool) "broadcast file exists" true (max_consumers >= 10)

let test_workflows_have_initial_inputs () =
  List.iter
    (fun kind ->
      let dag = Spec.generate kind ~seed:8 ~tasks:50 () in
      let has_input = ref false in
      for t = 0 to Dag.n_tasks dag - 1 do
        if Dag.inputs dag t <> [] then has_input := true
      done;
      Alcotest.(check bool) (Spec.name kind ^ " reads initial inputs") true !has_input)
    Spec.all

let test_single_source_structurally () =
  (* every generated workflow's entry tasks have no predecessors *)
  List.iter
    (fun kind ->
      let dag = Spec.generate kind ~seed:8 ~tasks:50 () in
      Alcotest.(check bool) (Spec.name kind ^ " has sources") true (Dag.sources dag <> []))
    Spec.all

let test_cybershake_strict_mspg () =
  List.iter
    (fun n ->
      let dag = Spec.generate Spec.Cybershake ~seed:4 ~tasks:n () in
      if not (Recognize.is_mspg dag) then Alcotest.failf "cybershake %d not strict" n)
    sizes

let test_sipht_strict_mspg () =
  List.iter
    (fun n ->
      let dag = Spec.generate Spec.Sipht ~seed:4 ~tasks:n () in
      if not (Recognize.is_mspg dag) then Alcotest.failf "sipht %d not strict" n)
    sizes

let test_cybershake_data_intensive () =
  (* CyberShake must be the most data-heavy family per unit of
     compute: its base CCR at fixed bandwidth exceeds the others' *)
  let base_ccr kind =
    let dag = Spec.generate kind ~seed:4 ~tasks:300 () in
    Spec.ccr dag ~bandwidth:1e6
  in
  List.iter
    (fun kind ->
      if base_ccr Spec.Cybershake <= base_ccr kind then
        Alcotest.failf "cybershake not more data-intensive than %s" (Spec.name kind))
    [ Spec.Genome; Spec.Ligo; Spec.Sipht ]

let test_sipht_imbalanced_branches () =
  (* Findterm dominates: the heaviest task should be >10x the mean *)
  let dag = Spec.generate Spec.Sipht ~seed:4 ~tasks:300 () in
  let weights = Array.map (fun t -> t.Ckpt_dag.Task.weight) (Dag.tasks dag) in
  let mean = Array.fold_left ( +. ) 0. weights /. float_of_int (Array.length weights) in
  let heaviest = Array.fold_left Float.max 0. weights in
  Alcotest.(check bool) "imbalance" true (heaviest > 10. *. mean)

let test_paper_subset () =
  Alcotest.(check int) "three paper families" 3 (List.length Spec.paper);
  List.iter
    (fun k ->
      Alcotest.(check bool) "paper is a subset of all" true (List.mem k Spec.all))
    Spec.paper

let test_ccr_computation () =
  let dag = Spec.generate Spec.Genome ~seed:1 ~tasks:50 () in
  let bw = 1e6 in
  let expected = Dag.total_data dag /. bw /. Dag.total_weight dag in
  Alcotest.(check (float 1e-9)) "ccr" expected (Spec.ccr dag ~bandwidth:bw)

let test_of_name () =
  Alcotest.(check bool) "genome" true (Spec.of_name "GENOME" = Some Spec.Genome);
  Alcotest.(check bool) "epigenomics alias" true (Spec.of_name "epigenomics" = Some Spec.Genome);
  Alcotest.(check bool) "montage" true (Spec.of_name "montage" = Some Spec.Montage);
  Alcotest.(check bool) "inspiral alias" true (Spec.of_name "Inspiral" = Some Spec.Ligo);
  Alcotest.(check bool) "unknown" true (Spec.of_name "nope" = None)

let test_generator_rejects_tiny () =
  Alcotest.(check bool) "genome too small" true
    (match Ckpt_workflows.Genome.generate ~tasks:3 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "task counts near target" `Quick test_task_counts;
    Alcotest.test_case "acyclic" `Quick test_acyclic;
    Alcotest.test_case "deterministic per seed" `Quick test_deterministic_per_seed;
    Alcotest.test_case "seed changes instance" `Quick test_seed_changes_instance;
    Alcotest.test_case "positive weights/sizes" `Quick test_positive_weights_and_sizes;
    Alcotest.test_case "genome is strict M-SPG" `Quick test_genome_strict_mspg;
    Alcotest.test_case "all workflows completable" `Slow test_all_workflows_completable;
    Alcotest.test_case "montage needs completion" `Quick test_montage_needs_completion;
    Alcotest.test_case "ligo strict without crossings" `Quick test_ligo_strict_without_crossings;
    Alcotest.test_case "montage broadcast file" `Quick test_montage_has_shared_broadcast_file;
    Alcotest.test_case "initial inputs present" `Quick test_workflows_have_initial_inputs;
    Alcotest.test_case "sources exist" `Quick test_single_source_structurally;
    Alcotest.test_case "cybershake strict M-SPG" `Quick test_cybershake_strict_mspg;
    Alcotest.test_case "sipht strict M-SPG" `Quick test_sipht_strict_mspg;
    Alcotest.test_case "cybershake data-intensive" `Quick test_cybershake_data_intensive;
    Alcotest.test_case "sipht imbalanced" `Quick test_sipht_imbalanced_branches;
    Alcotest.test_case "paper subset" `Quick test_paper_subset;
    Alcotest.test_case "ccr computation" `Quick test_ccr_computation;
    Alcotest.test_case "kind of_name" `Quick test_of_name;
    Alcotest.test_case "rejects tiny workflows" `Quick test_generator_rejects_tiny;
  ]
