(* Tests for Ckpt_mspg.Mspg: smart constructors, decomposition,
   implied edges (Figure 1 structures), validation, blueprint builds,
   and QCheck round-trip properties on random M-SPGs. *)

module Mspg = Ckpt_mspg.Mspg
module Dag = Ckpt_dag.Dag
module Rng = Ckpt_prob.Rng
module Random_wf = Ckpt_workflows.Random_wf

let leaf = Mspg.leaf

let test_serial_flattens () =
  let t = Mspg.serial [ Mspg.serial [ leaf 0; leaf 1 ]; leaf 2 ] in
  match t with
  | Mspg.Serial [ Mspg.Leaf 0; Mspg.Leaf 1; Mspg.Leaf 2 ] -> ()
  | _ -> Alcotest.fail "serial did not flatten"

let test_parallel_flattens () =
  let t = Mspg.parallel [ Mspg.parallel [ leaf 0; leaf 1 ]; leaf 2 ] in
  match t with
  | Mspg.Parallel [ Mspg.Leaf 0; Mspg.Leaf 1; Mspg.Leaf 2 ] -> ()
  | _ -> Alcotest.fail "parallel did not flatten"

let test_singleton_collapses () =
  (match Mspg.serial [ leaf 3 ] with
  | Mspg.Leaf 3 -> ()
  | _ -> Alcotest.fail "serial singleton");
  match Mspg.parallel [ leaf 3 ] with
  | Mspg.Leaf 3 -> ()
  | _ -> Alcotest.fail "parallel singleton"

let test_empty_rejected () =
  Alcotest.check_raises "serial" (Invalid_argument "Mspg.serial: empty composition")
    (fun () -> ignore (Mspg.serial []));
  Alcotest.check_raises "parallel" (Invalid_argument "Mspg.parallel: empty composition")
    (fun () -> ignore (Mspg.parallel []))

let fork_join =
  (* Figure 1 fork+join: (g1 ; g2) ; (G1 || G2 || G3) ; (g3 ; g4) *)
  Mspg.serial
    [ leaf 0; leaf 1; Mspg.parallel [ leaf 2; leaf 3; leaf 4 ]; leaf 5; leaf 6 ]

let test_tasks_preorder () =
  Alcotest.(check (list int)) "preorder" [ 0; 1; 2; 3; 4; 5; 6 ] (Mspg.tree_tasks fork_join);
  Alcotest.(check int) "size" 7 (Mspg.tree_size fork_join)

let test_sources_sinks () =
  Alcotest.(check (list int)) "sources" [ 0 ] (Mspg.tree_sources fork_join);
  Alcotest.(check (list int)) "sinks" [ 6 ] (Mspg.tree_sinks fork_join);
  let bipartite =
    Mspg.serial [ Mspg.parallel [ leaf 0; leaf 1 ]; Mspg.parallel [ leaf 2; leaf 3 ] ]
  in
  Alcotest.(check (list int)) "bipartite sources" [ 0; 1 ] (Mspg.tree_sources bipartite);
  Alcotest.(check (list int)) "bipartite sinks" [ 2; 3 ] (Mspg.tree_sinks bipartite)

let test_implied_edges_fork () =
  (* Figure 1a fork: (g1 ; g2) ;-> (G1 || G2 || G3) *)
  let fork = Mspg.serial [ leaf 0; leaf 1; Mspg.parallel [ leaf 2; leaf 3; leaf 4 ] ] in
  let edges = List.sort compare (Mspg.implied_edges fork) in
  Alcotest.(check (list (pair int int)))
    "fork edges"
    [ (0, 1); (1, 2); (1, 3); (1, 4) ]
    edges

let test_implied_edges_join () =
  (* Figure 1b join: (G1 || G2 || G3) ;-> (g1 ; g2) *)
  let join = Mspg.serial [ Mspg.parallel [ leaf 0; leaf 1; leaf 2 ]; leaf 3; leaf 4 ] in
  let edges = List.sort compare (Mspg.implied_edges join) in
  Alcotest.(check (list (pair int int)))
    "join edges"
    [ (0, 3); (1, 3); (2, 3); (3, 4) ]
    edges

let test_implied_edges_bipartite () =
  (* Figure 1c bipartite: (G1 || G2) ;-> (G3 || G4): complete bipartite *)
  let bip =
    Mspg.serial [ Mspg.parallel [ leaf 0; leaf 1 ]; Mspg.parallel [ leaf 2; leaf 3 ] ]
  in
  let edges = List.sort compare (Mspg.implied_edges bip) in
  Alcotest.(check (list (pair int int)))
    "bipartite edges"
    [ (0, 2); (0, 3); (1, 2); (1, 3) ]
    edges

let test_decompose_chain_first () =
  let d = Mspg.decompose fork_join in
  Alcotest.(check (list int)) "chain" [ 0; 1 ] d.Mspg.chain;
  Alcotest.(check int) "branches" 3 (List.length d.Mspg.branches);
  match d.Mspg.rest with
  | Some (Mspg.Serial [ Mspg.Leaf 5; Mspg.Leaf 6 ]) -> ()
  | _ -> Alcotest.fail "rest should be the trailing chain"

let test_decompose_pure_chain () =
  let d = Mspg.decompose (Mspg.serial [ leaf 0; leaf 1; leaf 2 ]) in
  Alcotest.(check (list int)) "chain" [ 0; 1; 2 ] d.Mspg.chain;
  Alcotest.(check int) "no branches" 0 (List.length d.Mspg.branches);
  Alcotest.(check bool) "no rest" true (d.Mspg.rest = None)

let test_decompose_pure_parallel () =
  let d = Mspg.decompose (Mspg.parallel [ leaf 0; leaf 1 ]) in
  Alcotest.(check (list int)) "empty chain" [] d.Mspg.chain;
  Alcotest.(check int) "branches" 2 (List.length d.Mspg.branches);
  Alcotest.(check bool) "no rest" true (d.Mspg.rest = None)

let test_decompose_single_leaf () =
  let d = Mspg.decompose (leaf 9) in
  Alcotest.(check (list int)) "chain" [ 9 ] d.Mspg.chain;
  Alcotest.(check bool) "nothing else" true (d.Mspg.branches = [] && d.Mspg.rest = None)

let test_build_and_validate () =
  let bp =
    Mspg.Bserial
      [ Mspg.Btask ("a", 1.);
        Mspg.Bparallel [ Mspg.Btask ("b", 2.); Mspg.Btask ("c", 3.) ];
        Mspg.Btask ("d", 4.) ]
  in
  let m = Mspg.build ~edge_size:(fun _ _ -> 2.) bp in
  (match Mspg.validate m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate: %s" e);
  Alcotest.(check int) "4 tasks" 4 (Dag.n_tasks m.Mspg.dag);
  Alcotest.(check int) "4 edges" 4 (Dag.n_edges m.Mspg.dag);
  Alcotest.(check (float 0.)) "edge size" 8. (Dag.total_data m.Mspg.dag);
  Alcotest.(check (float 0.)) "weight" 10. (Dag.total_weight m.Mspg.dag)

let test_validate_detects_missing_task () =
  let m = Mspg.build (Mspg.Bserial [ Mspg.Btask ("a", 1.); Mspg.Btask ("b", 1.) ]) in
  let bad = { m with Mspg.tree = Mspg.leaf 0 } in
  match Mspg.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "missing task not detected"

let test_validate_detects_edge_mismatch () =
  let m = Mspg.build (Mspg.Bserial [ Mspg.Btask ("a", 1.); Mspg.Btask ("b", 1.) ]) in
  let bad = { m with Mspg.tree = Mspg.parallel [ Mspg.leaf 0; Mspg.leaf 1 ] } in
  match Mspg.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "edge mismatch not detected"

let test_tree_weight () =
  let m = Mspg.build (Mspg.Bparallel [ Mspg.Btask ("a", 1.5); Mspg.Btask ("b", 2.5) ]) in
  Alcotest.(check (float 0.)) "weight" 4. (Mspg.tree_weight m.Mspg.dag m.Mspg.tree)

let test_depth () =
  Alcotest.(check int) "leaf" 1 (Mspg.depth (leaf 0));
  Alcotest.(check int) "fork-join" 3 (Mspg.depth fork_join)

(* --- QCheck --- *)

let prop_random_blueprint_validates =
  QCheck.Test.make ~name:"random M-SPG validates" ~count:100 QCheck.small_nat (fun seed ->
      let m = Random_wf.generate ~seed ~max_tasks:40 () in
      match Mspg.validate m with Ok () -> true | Error _ -> false)

let prop_decompose_partitions_tasks =
  QCheck.Test.make ~name:"decompose partitions the tasks" ~count:100 QCheck.small_nat
    (fun seed ->
      let m = Random_wf.generate ~seed ~max_tasks:40 () in
      let d = Mspg.decompose m.Mspg.tree in
      let collected =
        d.Mspg.chain
        @ List.concat_map Mspg.tree_tasks d.Mspg.branches
        @ (match d.Mspg.rest with None -> [] | Some r -> Mspg.tree_tasks r)
      in
      List.sort compare collected = List.sort compare (Mspg.tree_tasks m.Mspg.tree))

let prop_implied_edges_acyclic =
  QCheck.Test.make ~name:"implied edges form a DAG" ~count:100 QCheck.small_nat (fun seed ->
      let m = Random_wf.generate ~seed ~max_tasks:40 () in
      match Dag.check_acyclic m.Mspg.dag with () -> true | exception _ -> false)

let suite =
  [
    Alcotest.test_case "serial flattens" `Quick test_serial_flattens;
    Alcotest.test_case "parallel flattens" `Quick test_parallel_flattens;
    Alcotest.test_case "singleton collapses" `Quick test_singleton_collapses;
    Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
    Alcotest.test_case "tasks preorder" `Quick test_tasks_preorder;
    Alcotest.test_case "sources/sinks" `Quick test_sources_sinks;
    Alcotest.test_case "Figure 1a fork edges" `Quick test_implied_edges_fork;
    Alcotest.test_case "Figure 1b join edges" `Quick test_implied_edges_join;
    Alcotest.test_case "Figure 1c bipartite edges" `Quick test_implied_edges_bipartite;
    Alcotest.test_case "decompose chain first" `Quick test_decompose_chain_first;
    Alcotest.test_case "decompose pure chain" `Quick test_decompose_pure_chain;
    Alcotest.test_case "decompose pure parallel" `Quick test_decompose_pure_parallel;
    Alcotest.test_case "decompose single leaf" `Quick test_decompose_single_leaf;
    Alcotest.test_case "build + validate" `Quick test_build_and_validate;
    Alcotest.test_case "validate missing task" `Quick test_validate_detects_missing_task;
    Alcotest.test_case "validate edge mismatch" `Quick test_validate_detects_edge_mismatch;
    Alcotest.test_case "tree weight" `Quick test_tree_weight;
    Alcotest.test_case "depth" `Quick test_depth;
    QCheck_alcotest.to_alcotest prop_random_blueprint_validates;
    QCheck_alcotest.to_alcotest prop_decompose_partitions_tasks;
    QCheck_alcotest.to_alcotest prop_implied_edges_acyclic;
  ]
