(* Tests for the contention-aware simulator: hand-computable fluid
   schedules, degeneration to the contention-free engine, and the
   qualitative effect on checkpoint-heavy strategies. *)

module Contention = Ckpt_sim.Contention
module Engine = Ckpt_sim.Engine
module Runner = Ckpt_sim.Runner
module Failure = Ckpt_platform.Failure
module Rng = Ckpt_prob.Rng
module Stats = Ckpt_prob.Stats
module Pipeline = Ckpt_core.Pipeline
module Strategy = Ckpt_core.Strategy
module Spec = Ckpt_workflows.Spec

let check_close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps *. (1. +. abs_float expected) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

let no_failures _ = Failure.create (Rng.create 1) ~lambda:0.

let seg ?(preds = []) processor read_bytes work write_bytes =
  { Contention.processor; read_bytes; work; write_bytes; preds }

let test_single_segment_phases () =
  (* 100 bytes at bw 10 = 10 s, compute 5 s, write 50 bytes = 5 s *)
  let segs = [| seg 0 100. 5. 50. |] in
  check_close "sum of phases" 20. (Contention.makespan ~bandwidth:10. segs no_failures)

let test_two_concurrent_readers_share_bandwidth () =
  (* two processors reading 100 bytes each at bw 10: fair sharing
     makes both take 20 s instead of 10 *)
  let segs = [| seg 0 100. 0. 0.; seg 1 100. 0. 0. |] in
  check_close "halved rate" 20. (Contention.makespan ~bandwidth:10. segs no_failures)

let test_io_and_compute_overlap () =
  (* a reader and a computer do not contend *)
  let segs = [| seg 0 100. 0. 0.; seg 1 0. 12. 0. |] in
  check_close "independent" 12. (Contention.makespan ~bandwidth:10. segs no_failures)

let test_staggered_release () =
  (* p0 reads 100B; p1 computes 5s then reads 100B. bw 10.
     Phase 1 (0-5s): p0 alone at 10 B/s -> 50B left.
     Phase 2 (5s-): both read at 5 B/s; p0 finishes its 50B at t=15;
     p1 has 50B left, alone again at 10 B/s -> t=20. *)
  let segs = [| seg 0 100. 0. 0.; seg 1 0. 5. 100. |] in
  check_close "fluid sharing" 20. (Contention.makespan ~bandwidth:10. segs no_failures)

let test_dependencies_respected () =
  let segs = [| seg 0 0. 10. 0.; seg ~preds:[ 0 ] 1 0. 3. 0. |] in
  check_close "waits" 13. (Contention.makespan ~bandwidth:10. segs no_failures)

let test_matches_engine_without_contention () =
  (* a single processor never contends with itself: the fluid model
     must agree with the contention-free engine *)
  let rng = Rng.create 3 in
  for _ = 1 to 20 do
    let n = 1 + Rng.int rng 6 in
    let bandwidth = 10. in
    let csegs =
      Array.init n (fun i ->
          seg
            ~preds:(if i > 0 then [ i - 1 ] else [])
            0 (Rng.float rng 100.) (Rng.float rng 10.) (Rng.float rng 100.))
    in
    let esegs =
      Array.map
        (fun (s : Contention.seg) ->
          {
            Engine.processor = s.Contention.processor;
            duration =
              (s.Contention.read_bytes /. bandwidth)
              +. s.Contention.work
              +. (s.Contention.write_bytes /. bandwidth);
            preds = s.Contention.preds;
          })
        csegs
    in
    let lambda = 0.01 in
    (* same seed -> same failure trace in both engines *)
    let m1 = Contention.makespan ~bandwidth csegs (fun _ -> Failure.create (Rng.create 77) ~lambda) in
    let m2 = Engine.makespan esegs (fun _ -> Failure.create (Rng.create 77) ~lambda) in
    check_close ~eps:1e-6 "one processor: fluid = engine" m2 m1
  done

let test_failure_restarts_segment () =
  (* deterministic check via statistics: with failures the mean grows *)
  let rng = Rng.create 5 in
  let segs = [| seg 0 100. 10. 100. |] in
  let mean lambda =
    let s = Stats.create () in
    for _ = 1 to 2000 do
      let trial = Rng.split rng in
      Stats.add s (Contention.makespan ~bandwidth:10. segs (fun _ -> Failure.create trial ~lambda))
    done;
    Stats.mean s
  in
  let m0 = mean 0. in
  check_close "failure-free" 30. m0;
  Alcotest.(check bool) "failures lengthen" true (mean 0.02 > m0 +. 1.)

let test_simulate_plan_close_to_engine_at_low_contention () =
  (* with mostly-compute workloads, contention barely matters. Use a
     (numerically) failure-free setting so both simulators are
     deterministic and the inequality is exact, not noise-dominated. *)
  let dag = Spec.generate Spec.Ligo ~seed:1 ~tasks:50 () in
  let setup = Pipeline.prepare ~dag ~processors:3 ~pfail:1e-12 ~ccr:0.001 () in
  let plan = Pipeline.plan setup Strategy.Ckpt_some in
  let nominal = Stats.mean (Runner.simulate ~trials:3 plan) in
  let contended = Stats.mean (Contention.simulate ~trials:3 plan) in
  if contended < nominal -. 1e-6 then
    Alcotest.failf "contention sped things up: %f vs %f" contended nominal;
  if contended > nominal *. 1.05 then
    Alcotest.failf "low-CCR contention too large: %f vs %f" contended nominal

let test_contention_hurts_ckptall_more () =
  (* at high CCR many concurrent checkpoints collide: CKPTALL (maximal
     I/O) must lose more from contention than CKPTSOME *)
  let dag = Spec.generate Spec.Genome ~seed:1 ~tasks:300 () in
  let setup = Pipeline.prepare ~dag ~processors:35 ~pfail:0.001 ~ccr:0.5 () in
  let penalty kind =
    let plan = Pipeline.plan setup kind in
    let nominal = Stats.mean (Runner.simulate ~trials:60 plan) in
    let contended = Stats.mean (Contention.simulate ~trials:60 plan) in
    contended /. nominal
  in
  let all = penalty Strategy.Ckpt_all in
  let some = penalty Strategy.Ckpt_some in
  Alcotest.(check bool)
    (Printf.sprintf "CKPTALL penalty %.3f >= CKPTSOME penalty %.3f" all some)
    true
    (all >= some -. 0.02)

let test_rejects_bad_input () =
  Alcotest.(check bool) "bad order" true
    (match
       Contention.makespan ~bandwidth:1. [| seg ~preds:[ 0 ] 0 1. 1. 1. |] no_failures
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "bad bandwidth" true
    (match Contention.makespan ~bandwidth:0. [| seg 0 1. 1. 1. |] no_failures with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "phase sequence" `Quick test_single_segment_phases;
    Alcotest.test_case "bandwidth sharing" `Quick test_two_concurrent_readers_share_bandwidth;
    Alcotest.test_case "io/compute overlap" `Quick test_io_and_compute_overlap;
    Alcotest.test_case "staggered release" `Quick test_staggered_release;
    Alcotest.test_case "dependencies" `Quick test_dependencies_respected;
    Alcotest.test_case "fluid = engine on one proc" `Quick test_matches_engine_without_contention;
    Alcotest.test_case "failure restarts" `Slow test_failure_restarts_segment;
    Alcotest.test_case "low contention ~ nominal" `Slow test_simulate_plan_close_to_engine_at_low_contention;
    Alcotest.test_case "contention hurts CKPTALL more" `Slow test_contention_hurts_ckptall_more;
    Alcotest.test_case "rejects bad input" `Quick test_rejects_bad_input;
  ]
