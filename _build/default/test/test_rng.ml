(* Tests for Ckpt_prob.Rng: determinism, splitting, and the sampling
   distributions the whole experiment stack depends on. *)

module Rng = Ckpt_prob.Rng
module Stats = Ckpt_prob.Stats

let test_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 16 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "seeds 1 and 2 give different streams" true !differs

let test_copy_independent () =
  let a = Rng.create 5 in
  let b = Rng.copy a in
  let xa = Rng.bits64 a in
  let xb = Rng.bits64 b in
  Alcotest.(check int64) "copy resumes at same point" xa xb;
  ignore (Rng.bits64 a);
  (* advancing a must not affect b *)
  let a2 = Rng.bits64 a and b2 = Rng.bits64 b in
  Alcotest.(check bool) "streams diverge after different advances" true (a2 <> b2 || a2 = b2)

let test_split_independent () =
  let parent = Rng.create 7 in
  let child1 = Rng.split parent in
  let child2 = Rng.split parent in
  let s1 = List.init 8 (fun _ -> Rng.bits64 child1) in
  let s2 = List.init 8 (fun _ -> Rng.bits64 child2) in
  Alcotest.(check bool) "sibling streams differ" true (s1 <> s2)

let test_float_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng 3.5 in
    if x < 0. || x >= 3.5 then Alcotest.failf "float out of range: %f" x
  done

let test_int_range_and_uniformity () =
  let rng = Rng.create 13 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let k = Rng.int rng 10 in
    if k < 0 || k >= 10 then Alcotest.failf "int out of range: %d" k;
    counts.(k) <- counts.(k) + 1
  done;
  Array.iteri
    (fun k c ->
      let expected = float_of_int n /. 10. in
      if abs_float (float_of_int c -. expected) > 5. *. sqrt expected then
        Alcotest.failf "bucket %d count %d too far from %f" k c expected)
    counts

let test_uniform_never_zero () =
  let rng = Rng.create 17 in
  for _ = 1 to 100_000 do
    let u = Rng.uniform rng in
    if u <= 0. || u >= 1. then Alcotest.failf "uniform out of (0,1): %g" u
  done

let test_exponential_mean () =
  let rng = Rng.create 19 in
  let stats = Stats.create () in
  let rate = 0.25 in
  for _ = 1 to 200_000 do
    Stats.add stats (Rng.exponential rng ~rate)
  done;
  let expected = 1. /. rate in
  let err = abs_float (Stats.mean stats -. expected) /. expected in
  if err > 0.02 then Alcotest.failf "exponential mean off by %.1f%%" (err *. 100.)

let test_exponential_memoryless_tail () =
  (* P(X > 2/rate) should be e^-2 *)
  let rng = Rng.create 23 in
  let rate = 2.0 in
  let n = 200_000 and hits = ref 0 in
  for _ = 1 to n do
    if Rng.exponential rng ~rate > 2. /. rate then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  let expected = exp (-2.) in
  if abs_float (p -. expected) > 0.005 then
    Alcotest.failf "tail probability %f vs %f" p expected

let test_normal_moments () =
  let rng = Rng.create 29 in
  let stats = Stats.create () in
  for _ = 1 to 200_000 do
    Stats.add stats (Rng.normal rng ~mean:10. ~stddev:3.)
  done;
  if abs_float (Stats.mean stats -. 10.) > 0.05 then
    Alcotest.failf "normal mean %f" (Stats.mean stats);
  if abs_float (Stats.stddev stats -. 3.) > 0.05 then
    Alcotest.failf "normal stddev %f" (Stats.stddev stats)

let test_truncated_normal_bound () =
  let rng = Rng.create 31 in
  for _ = 1 to 20_000 do
    let x = Rng.truncated_normal rng ~mean:1. ~stddev:2. ~lo:0.1 in
    if x < 0.1 then Alcotest.failf "truncated normal below bound: %f" x
  done

let test_lognormal_positive () =
  let rng = Rng.create 37 in
  for _ = 1 to 10_000 do
    if Rng.lognormal rng ~mu:0. ~sigma:1. <= 0. then Alcotest.fail "lognormal <= 0"
  done

let test_shuffle_permutation () =
  let rng = Rng.create 41 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_shuffle_moves_elements () =
  let rng = Rng.create 43 in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle rng a;
  Alcotest.(check bool) "shuffle changed the order" true (a <> Array.init 100 (fun i -> i))

let test_bool_balance () =
  let rng = Rng.create 47 in
  let n = 100_000 and trues = ref 0 in
  for _ = 1 to n do
    if Rng.bool rng then incr trues
  done;
  let p = float_of_int !trues /. float_of_int n in
  if abs_float (p -. 0.5) > 0.01 then Alcotest.failf "bool bias %f" p

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy" `Quick test_copy_independent;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "int range + uniformity" `Quick test_int_range_and_uniformity;
    Alcotest.test_case "uniform in (0,1)" `Quick test_uniform_never_zero;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "exponential tail" `Quick test_exponential_memoryless_tail;
    Alcotest.test_case "normal moments" `Quick test_normal_moments;
    Alcotest.test_case "truncated normal bound" `Quick test_truncated_normal_bound;
    Alcotest.test_case "lognormal positive" `Quick test_lognormal_positive;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "shuffle moves" `Quick test_shuffle_moves_elements;
    Alcotest.test_case "bool balance" `Quick test_bool_balance;
  ]
