(* Tests for Engine execution records and the Gantt SVG renderer. *)

module Engine = Ckpt_sim.Engine
module Gantt = Ckpt_viz.Gantt
module Failure = Ckpt_platform.Failure
module Rng = Ckpt_prob.Rng
module Pipeline = Ckpt_core.Pipeline
module Strategy = Ckpt_core.Strategy
module Spec = Ckpt_workflows.Spec

let no_failures _ = Failure.create (Rng.create 1) ~lambda:0.

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  scan 0

let test_execute_records_failure_free () =
  let segs =
    [| { Engine.processor = 0; duration = 3.; preds = [] };
       { Engine.processor = 0; duration = 4.; preds = [ 0 ] } |]
  in
  let records, makespan = Engine.execute segs no_failures in
  Alcotest.(check (float 1e-9)) "makespan" 7. makespan;
  Array.iteri
    (fun i (r : Engine.record) ->
      Alcotest.(check int) "index" i r.Engine.seg_index;
      Alcotest.(check int) "one attempt" 1 (List.length r.Engine.attempts);
      List.iter
        (fun (a : Engine.attempt) ->
          Alcotest.(check bool) "no failure" false a.Engine.failed)
        r.Engine.attempts)
    records

let test_execute_records_failures () =
  (* high failure rate: segments must show failed attempts, and the
     last attempt of every record must be successful with the exact
     segment duration *)
  let rng = Rng.create 5 in
  let segs = [| { Engine.processor = 0; duration = 20.; preds = [] } |] in
  let saw_failure = ref false in
  for _ = 1 to 50 do
    let trial = Rng.split rng in
    let records, makespan = Engine.execute segs (fun _ -> Failure.create trial ~lambda:0.05) in
    let r = records.(0) in
    let attempts = r.Engine.attempts in
    let last = List.nth attempts (List.length attempts - 1) in
    Alcotest.(check bool) "last attempt succeeds" false last.Engine.failed;
    Alcotest.(check (float 1e-9)) "last attempt spans the duration" 20.
      (last.Engine.attempt_end -. last.Engine.attempt_start);
    Alcotest.(check (float 1e-9)) "makespan = last end" makespan last.Engine.attempt_end;
    List.iteri
      (fun i (a : Engine.attempt) ->
        if i < List.length attempts - 1 then begin
          Alcotest.(check bool) "earlier attempts failed" true a.Engine.failed;
          saw_failure := true
        end)
      attempts
  done;
  Alcotest.(check bool) "failures were observed at lambda=0.05" true !saw_failure

let test_attempts_chronological () =
  let rng = Rng.create 9 in
  let segs =
    [| { Engine.processor = 0; duration = 10.; preds = [] };
       { Engine.processor = 1; duration = 12.; preds = [] };
       { Engine.processor = 0; duration = 5.; preds = [ 1 ] } |]
  in
  let records, _ = Engine.execute segs (fun _ -> Failure.create rng ~lambda:0.02) in
  Array.iter
    (fun (r : Engine.record) ->
      let rec check_order = function
        | (a : Engine.attempt) :: (b :: _ as tl) ->
            Alcotest.(check bool) "ordered" true (a.Engine.attempt_end <= b.Engine.attempt_start +. 1e-12);
            check_order tl
        | _ -> ()
      in
      check_order r.Engine.attempts)
    records

let test_gantt_svg_structure () =
  let segs =
    [| { Engine.processor = 0; duration = 3.; preds = [] };
       { Engine.processor = 1; duration = 5.; preds = [] } |]
  in
  let records, makespan = Engine.execute segs no_failures in
  let svg = Gantt.render ~processors:2 ~makespan records in
  Alcotest.(check bool) "svg root" true (contains svg "<svg");
  Alcotest.(check bool) "closes" true (contains svg "</svg>");
  Alcotest.(check bool) "two lanes" true (contains svg ">p1</text>");
  Alcotest.(check bool) "rectangles" true (contains svg "<rect")

let test_gantt_marks_failures () =
  let rng = Rng.create 13 in
  (* long segment + aggressive failures: the chart must show the
     failure marker *)
  let segs = [| { Engine.processor = 0; duration = 50.; preds = [] } |] in
  let records, makespan = Engine.execute segs (fun _ -> Failure.create rng ~lambda:0.1) in
  let svg = Gantt.render ~processors:1 ~makespan records in
  Alcotest.(check bool) "failure colour present" true (contains svg "#e15759")

let test_render_plan () =
  let dag = Spec.generate Spec.Genome ~seed:1 ~tasks:50 () in
  let setup = Pipeline.prepare ~dag ~processors:5 ~pfail:0.01 ~ccr:0.01 () in
  let plan = Pipeline.plan setup Strategy.Ckpt_some in
  let svg = Gantt.render_plan plan in
  Alcotest.(check bool) "renders" true (contains svg "</svg>");
  Alcotest.(check bool) "five lanes" true (contains svg ">p4</text>")

let test_summarize () =
  let rng = Rng.create 21 in
  let segs = [| { Engine.processor = 0; duration = 30.; preds = [] } |] in
  let records, makespan = Engine.execute segs (fun _ -> Failure.create rng ~lambda:0.05) in
  let s = Engine.summarize records in
  Alcotest.(check (float 1e-9)) "useful = duration" 30. s.Engine.useful_time;
  Alcotest.(check (float 1e-6)) "waste + useful = makespan" makespan
    (s.Engine.useful_time +. s.Engine.wasted_time);
  Alcotest.(check bool) "failure count matches attempts" true
    (s.Engine.failures = List.length records.(0).Engine.attempts - 1)

let test_save () =
  let path = Filename.temp_file "gantt" ".svg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Gantt.save path "<svg></svg>";
      let ic = open_in path in
      let line = input_line ic in
      close_in ic;
      Alcotest.(check string) "written" "<svg></svg>" line)

let suite =
  [
    Alcotest.test_case "execute records (no failures)" `Quick test_execute_records_failure_free;
    Alcotest.test_case "execute records (failures)" `Quick test_execute_records_failures;
    Alcotest.test_case "attempts chronological" `Quick test_attempts_chronological;
    Alcotest.test_case "svg structure" `Quick test_gantt_svg_structure;
    Alcotest.test_case "svg failure marks" `Quick test_gantt_marks_failures;
    Alcotest.test_case "render plan" `Quick test_render_plan;
    Alcotest.test_case "summarize" `Quick test_summarize;
    Alcotest.test_case "save" `Quick test_save;
  ]
