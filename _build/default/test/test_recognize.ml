(* Tests for Ckpt_mspg.Recognize: strict recognition on known and
   random M-SPGs, rejection of non-M-SPGs, and dummy-edge bipartite
   completion (paper footnote 2). *)

module Mspg = Ckpt_mspg.Mspg
module Recognize = Ckpt_mspg.Recognize
module Dag = Ckpt_dag.Dag
module Random_wf = Ckpt_workflows.Random_wf

let figure2 () =
  (* the 13-task example of Figure 2:
     T1 ; (T2||T3||T4) ; (T5..T9 bipartite) ; (T10||T11||T12) ; T13
     — built here as serial of parallels (complete bipartite blocks) *)
  Mspg.build ~name:"figure2"
    (Mspg.Bserial
       [ Mspg.Btask ("T1", 1.);
         Mspg.Bparallel [ Mspg.Btask ("T2", 1.); Mspg.Btask ("T3", 1.); Mspg.Btask ("T4", 1.) ];
         Mspg.Bparallel
           [ Mspg.Btask ("T5", 1.); Mspg.Btask ("T6", 1.); Mspg.Btask ("T7", 1.);
             Mspg.Btask ("T8", 1.); Mspg.Btask ("T9", 1.) ];
         Mspg.Bparallel
           [ Mspg.Btask ("T10", 1.); Mspg.Btask ("T11", 1.); Mspg.Btask ("T12", 1.) ];
         Mspg.Btask ("T13", 1.) ])

let test_recognizes_figure2 () =
  let m = figure2 () in
  match Recognize.of_dag m.Mspg.dag with
  | Error e -> Alcotest.failf "rejected Figure 2: %s" e
  | Ok m2 -> (
      match Mspg.validate m2 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "recognised tree invalid: %s" e)

let test_single_task () =
  let d = Dag.create () in
  ignore (Dag.add_task d ~name:"only" ~weight:1.);
  match Recognize.of_dag d with
  | Ok { Mspg.tree = Mspg.Leaf 0; _ } -> ()
  | Ok _ -> Alcotest.fail "expected a leaf"
  | Error e -> Alcotest.fail e

let test_independent_tasks_parallel () =
  let d = Dag.create () in
  for i = 0 to 3 do
    ignore (Dag.add_task d ~name:(string_of_int i) ~weight:1.)
  done;
  match Recognize.of_dag d with
  | Ok { Mspg.tree = Mspg.Parallel l; _ } -> Alcotest.(check int) "4 branches" 4 (List.length l)
  | Ok _ -> Alcotest.fail "expected parallel"
  | Error e -> Alcotest.fail e

let test_chain () =
  let d = Dag.create () in
  let ids = List.init 5 (fun i -> Dag.add_task d ~name:(string_of_int i) ~weight:1.) in
  let rec link = function
    | a :: (b :: _ as tl) ->
        Dag.add_edge d a b 1.;
        link tl
    | _ -> ()
  in
  link ids;
  match Recognize.of_dag d with
  | Ok { Mspg.tree = Mspg.Serial l; _ } -> Alcotest.(check int) "5 factors" 5 (List.length l)
  | Ok _ -> Alcotest.fail "expected serial chain"
  | Error e -> Alcotest.fail e

let incomplete_bipartite () =
  (* 2 sources, 2 targets, 3 of the 4 possible edges *)
  let d = Dag.create ~name:"incomplete" () in
  let a = Dag.add_task d ~name:"a" ~weight:1. in
  let b = Dag.add_task d ~name:"b" ~weight:1. in
  let c = Dag.add_task d ~name:"c" ~weight:1. in
  let e = Dag.add_task d ~name:"e" ~weight:1. in
  Dag.add_edge d a c 1.;
  Dag.add_edge d a e 1.;
  Dag.add_edge d b e 1.;
  d

let test_rejects_incomplete_bipartite () =
  match Recognize.of_dag (incomplete_bipartite ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "incomplete bipartite accepted as strict M-SPG"

let test_completion_fixes_incomplete_bipartite () =
  let d = incomplete_bipartite () in
  match Recognize.of_dag_completed d with
  | Error e -> Alcotest.failf "completion failed: %s" e
  | Ok (m, dummies) ->
      Alcotest.(check int) "one missing pair" 1 dummies;
      (match Mspg.validate m with
      | Ok () -> ()
      | Error e -> Alcotest.failf "completed tree invalid: %s" e);
      (* the original must not gain edges *)
      Alcotest.(check int) "original untouched" 3 (Dag.n_edges d);
      Alcotest.(check int) "copy has the dummy" 4 (Dag.n_edges m.Mspg.dag)

let test_completion_dummy_files_are_empty () =
  let d = incomplete_bipartite () in
  match Recognize.of_dag_completed d with
  | Error e -> Alcotest.fail e
  | Ok (m, _) ->
      Alcotest.(check (float 0.)) "no data added" (Dag.total_data d) (Dag.total_data m.Mspg.dag)

let test_completion_noop_on_mspg () =
  let m = figure2 () in
  match Recognize.of_dag_completed m.Mspg.dag with
  | Ok (_, dummies) -> Alcotest.(check int) "no dummies needed" 0 dummies
  | Error e -> Alcotest.fail e

let test_is_mspg () =
  Alcotest.(check bool) "figure2" true (Recognize.is_mspg (figure2 ()).Mspg.dag);
  Alcotest.(check bool) "incomplete" false (Recognize.is_mspg (incomplete_bipartite ()))

let test_rejects_skip_level () =
  (* a -> b -> c plus a -> c: the transitive edge breaks strictness,
     and no level cut can complete it *)
  let d = Dag.create () in
  let a = Dag.add_task d ~name:"a" ~weight:1. in
  let b = Dag.add_task d ~name:"b" ~weight:1. in
  let c = Dag.add_task d ~name:"c" ~weight:1. in
  Dag.add_edge d a b 1.;
  Dag.add_edge d b c 1.;
  Dag.add_edge d a c 1.;
  (match Recognize.of_dag d with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "triangle accepted");
  match Recognize.of_dag_completed d with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "triangle completed"

let test_recognizer_minimal_cut_order () =
  (* A;B;C must decompose with factors in order, not nested weirdly *)
  let m =
    Mspg.build
      (Mspg.Bserial
         [ Mspg.Bparallel [ Mspg.Btask ("a1", 1.); Mspg.Btask ("a2", 1.) ];
           Mspg.Bparallel [ Mspg.Btask ("b1", 1.); Mspg.Btask ("b2", 1.) ];
           Mspg.Btask ("c", 1.) ])
  in
  match Recognize.of_dag m.Mspg.dag with
  | Error e -> Alcotest.fail e
  | Ok m2 -> (
      match m2.Mspg.tree with
      | Mspg.Serial [ Mspg.Parallel _; Mspg.Parallel _; Mspg.Leaf _ ] -> ()
      | t -> Alcotest.failf "unexpected shape %s" (Format.asprintf "%a" Mspg.pp_tree t))

(* --- GSPG (future-work extension) --- *)

let triangle () =
  let d = Dag.create ~name:"triangle" () in
  let a = Dag.add_task d ~name:"a" ~weight:1. in
  let b = Dag.add_task d ~name:"b" ~weight:2. in
  let c = Dag.add_task d ~name:"c" ~weight:3. in
  Dag.add_edge d a b 1.;
  Dag.add_edge d b c 1.;
  Dag.add_edge d a c 5.;
  d

let test_gspg_accepts_triangle () =
  let d = triangle () in
  match Recognize.of_dag_gspg d with
  | Error e -> Alcotest.failf "triangle is a GSPG: %s" e
  | Ok (m, transitive) ->
      Alcotest.(check int) "one transitive edge" 1 transitive;
      (* the tree is a 3-chain over the ORIGINAL dag *)
      (match m.Mspg.tree with
      | Mspg.Serial [ Mspg.Leaf 0; Mspg.Leaf 1; Mspg.Leaf 2 ] -> ()
      | t -> Alcotest.failf "unexpected tree %s" (Format.asprintf "%a" Mspg.pp_tree t));
      Alcotest.(check bool) "backed by original dag" true (m.Mspg.dag == d)

let test_gspg_equals_strict_on_mspg () =
  let m = figure2 () in
  match Recognize.of_dag_gspg m.Mspg.dag with
  | Ok (_, transitive) -> Alcotest.(check int) "no transitive edges" 0 transitive
  | Error e -> Alcotest.fail e

let test_gspg_rejects_incomplete_bipartite () =
  (* reduction does not help an incomplete bipartite block *)
  Alcotest.(check bool) "still rejected" false (Recognize.is_gspg (incomplete_bipartite ()))

let test_gspg_pipeline_end_to_end () =
  (* the pipeline accepts a GSPG and checkpoints cover the transitive
     data edge: the a->c file must be read by c's segment *)
  let d = triangle () in
  let setup = Ckpt_core.Pipeline.prepare ~dag:d ~processors:1 ~pfail:0.01 ~ccr:0.5 () in
  let plan = Ckpt_core.Pipeline.plan setup Ckpt_core.Strategy.Ckpt_all in
  let em = Ckpt_core.Strategy.expected_makespan plan in
  Alcotest.(check bool) "positive makespan" true (em > 0.);
  (* with CKPTALL, task c's segment reads both the b->c and a->c files *)
  let seg = plan.Ckpt_core.Strategy.segments.(2) in
  let bandwidth = setup.Ckpt_core.Pipeline.platform.Ckpt_platform.Platform.bandwidth in
  let expected_read = 6. /. bandwidth in
  if abs_float (seg.Ckpt_core.Placement.read -. expected_read) > 1e-9 then
    Alcotest.failf "transitive file not read: %g vs %g" seg.Ckpt_core.Placement.read
      expected_read

(* --- QCheck round-trip: build random M-SPG, strip tree, recognise --- *)

let trees_equivalent t1 t2 =
  (* same task multiset and same implied edge sets *)
  List.sort compare (Mspg.tree_tasks t1) = List.sort compare (Mspg.tree_tasks t2)
  && List.sort_uniq compare (Mspg.implied_edges t1)
     = List.sort_uniq compare (Mspg.implied_edges t2)

let prop_roundtrip =
  QCheck.Test.make ~name:"random M-SPG round-trips through recognition" ~count:100
    QCheck.small_nat (fun seed ->
      let m = Random_wf.generate ~seed ~max_tasks:35 () in
      match Recognize.of_dag m.Mspg.dag with
      | Error _ -> false
      | Ok m2 -> trees_equivalent m.Mspg.tree m2.Mspg.tree && Mspg.validate m2 = Ok ())

let prop_completion_preserves_edges =
  QCheck.Test.make ~name:"completion only adds edges" ~count:50 QCheck.small_nat
    (fun seed ->
      let m = Random_wf.generate ~seed ~max_tasks:35 () in
      match Recognize.of_dag_completed m.Mspg.dag with
      | Error _ -> false
      | Ok (m2, dummies) ->
          dummies = 0 && Dag.n_edges m2.Mspg.dag = Dag.n_edges m.Mspg.dag)

let suite =
  [
    Alcotest.test_case "Figure 2 recognised" `Quick test_recognizes_figure2;
    Alcotest.test_case "single task" `Quick test_single_task;
    Alcotest.test_case "independent tasks" `Quick test_independent_tasks_parallel;
    Alcotest.test_case "chain" `Quick test_chain;
    Alcotest.test_case "rejects incomplete bipartite" `Quick test_rejects_incomplete_bipartite;
    Alcotest.test_case "completion fixes bipartite" `Quick test_completion_fixes_incomplete_bipartite;
    Alcotest.test_case "dummy files are empty" `Quick test_completion_dummy_files_are_empty;
    Alcotest.test_case "completion no-op on M-SPG" `Quick test_completion_noop_on_mspg;
    Alcotest.test_case "is_mspg" `Quick test_is_mspg;
    Alcotest.test_case "rejects skip-level triangle" `Quick test_rejects_skip_level;
    Alcotest.test_case "serial factor order" `Quick test_recognizer_minimal_cut_order;
    Alcotest.test_case "GSPG triangle" `Quick test_gspg_accepts_triangle;
    Alcotest.test_case "GSPG = strict on M-SPG" `Quick test_gspg_equals_strict_on_mspg;
    Alcotest.test_case "GSPG rejects bipartite" `Quick test_gspg_rejects_incomplete_bipartite;
    Alcotest.test_case "GSPG pipeline" `Quick test_gspg_pipeline_end_to_end;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_completion_preserves_edges;
  ]
