(* Tests for Ckpt_core.Placement: R/W/C segment accounting (including
   the Figure 4 extended-checkpoint semantics and shared-file
   deduplication), the incremental cost matrix, and Algorithm 2
   optimality against brute force. *)

module Dag = Ckpt_dag.Dag
module Platform = Ckpt_platform.Platform
module Superchain = Ckpt_core.Superchain
module Placement = Ckpt_core.Placement
module Toueg = Ckpt_core.Toueg
module Rng = Ckpt_prob.Rng

let check_close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps *. (1. +. abs_float expected) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

let unit_platform ?(lambda = 0.) () = Platform.make ~processors:1 ~lambda ~bandwidth:1.

(* Figure 4: chain-linearised M-SPG 1->2, 2->3, 2->4, 3->5, 4->5, 5->6
   with all six tasks on one processor (ids 0..5). *)
let fig4 () =
  let d = Dag.create ~name:"fig4" () in
  let t = Array.init 6 (fun i -> Dag.add_task d ~name:(Printf.sprintf "T%d" (i + 1)) ~weight:1.) in
  Dag.add_edge d t.(0) t.(1) 2.;
  (* T2 -> T3 and T2 -> T4 *)
  Dag.add_edge d t.(1) t.(2) 3.;
  Dag.add_edge d t.(1) t.(3) 4.;
  Dag.add_edge d t.(2) t.(4) 5.;
  Dag.add_edge d t.(3) t.(4) 6.;
  Dag.add_edge d t.(4) t.(5) 7.;
  (d, Superchain.make ~id:0 ~processor:0 ~order:[| 0; 1; 2; 3; 4; 5 |])

let test_whole_chain_segment () =
  let d, sc = fig4 () in
  let seg = Placement.segment_of (unit_platform ()) d sc ~first:0 ~last:5 in
  check_close "R: nothing external" 0. seg.Placement.read;
  check_close "W: all weights" 6. seg.Placement.work;
  check_close "C: nothing escapes" 0. seg.Placement.write

let test_figure4_segment_t3_t4 () =
  (* the paper's example: checkpoints after T2 and T4. Segment {T3,T4}
     reads T2's outputs for T3 (3) and for T4 (4); its checkpoint
     saves T3's output for T5 (5) AND T4's output for T5 (6) — the
     extended checkpoint includes the non-checkpointed T3 data. *)
  let d, sc = fig4 () in
  let seg = Placement.segment_of (unit_platform ()) d sc ~first:2 ~last:3 in
  check_close "R reads both T2 files" 7. seg.Placement.read;
  check_close "W" 2. seg.Placement.work;
  check_close "C saves T3->T5 and T4->T5" 11. seg.Placement.write

let test_figure4_segment_t5_t6 () =
  let d, sc = fig4 () in
  let seg = Placement.segment_of (unit_platform ()) d sc ~first:4 ~last:5 in
  check_close "R reads T3->T5 and T4->T5" 11. seg.Placement.read;
  check_close "C final" 0. seg.Placement.write

let test_single_task_segments () =
  let d, sc = fig4 () in
  (* per-task segment = CKPTALL accounting: T2 reads T1's file (2),
     writes both its outputs (3+4) *)
  let seg = Placement.segment_of (unit_platform ()) d sc ~first:1 ~last:1 in
  check_close "R" 2. seg.Placement.read;
  check_close "C" 7. seg.Placement.write

let test_shared_file_checkpointed_once () =
  (* one producer, one shared file consumed by two later tasks:
     the checkpoint saves it once (Section VI-A) *)
  let d = Dag.create () in
  let a = Dag.add_task d ~name:"a" ~weight:1. in
  let b = Dag.add_task d ~name:"b" ~weight:1. in
  let c = Dag.add_task d ~name:"c" ~weight:1. in
  let f = Dag.add_file d ~producer:a ~size:10. in
  Dag.add_edge d ~file:f a b 0.;
  Dag.add_edge d ~file:f a c 0.;
  let sc = Superchain.make ~id:0 ~processor:0 ~order:[| a; b; c |] in
  let seg = Placement.segment_of (unit_platform ()) d sc ~first:0 ~last:0 in
  check_close "shared file written once" 10. seg.Placement.write;
  (* and read once by a segment containing both consumers *)
  let seg_bc = Placement.segment_of (unit_platform ()) d sc ~first:1 ~last:2 in
  check_close "shared file read once" 10. seg_bc.Placement.read

let test_initial_inputs_in_read () =
  let d = Dag.create () in
  let a = Dag.add_task d ~name:"a" ~weight:1. in
  Dag.add_input d a 42.;
  let sc = Superchain.make ~id:0 ~processor:0 ~order:[| a |] in
  let seg = Placement.segment_of (unit_platform ()) d sc ~first:0 ~last:0 in
  check_close "initial input read" 42. seg.Placement.read

let test_cross_superchain_read_write () =
  (* producer in another superchain: the file enters R; consumer in
     another superchain: the file enters C *)
  let d = Dag.create () in
  let a = Dag.add_task d ~name:"a" ~weight:1. in
  let b = Dag.add_task d ~name:"b" ~weight:1. in
  let c = Dag.add_task d ~name:"c" ~weight:1. in
  Dag.add_edge d a b 5.;
  Dag.add_edge d b c 9.;
  let sc_b = Superchain.make ~id:1 ~processor:1 ~order:[| b |] in
  let seg = Placement.segment_of (unit_platform ()) d sc_b ~first:0 ~last:0 in
  check_close "reads from other chain" 5. seg.Placement.read;
  check_close "writes for other chain" 9. seg.Placement.write

let test_expected_time_eq2 () =
  let seg =
    { Placement.chain = 0; first = 0; last = 0; read = 1.; work = 2.; write = 3. }
  in
  let lambda = 0.01 in
  let s = 6. in
  check_close "Eq.2"
    (((1. -. (lambda *. s)) *. s) +. (lambda *. s *. 1.5 *. s))
    (Placement.expected_time ~lambda seg);
  (* clamped regime *)
  check_close "clamp at pfail=1" 9. (Placement.expected_time ~lambda:10. seg)

let test_cost_matrix_matches_direct () =
  let d, sc = fig4 () in
  Dag.add_input d 0 13.;
  let platform = unit_platform ~lambda:0.01 () in
  let matrix = Placement.cost_matrix platform d sc in
  for j = 0 to 5 do
    for i = 0 to j do
      let seg = Placement.segment_of platform d sc ~first:i ~last:j in
      check_close
        (Printf.sprintf "cost(%d,%d)" i j)
        (Placement.expected_time ~lambda:0.01 seg)
        matrix.(j).(i)
    done
  done

let random_superchain seed n =
  (* a random DAG linearised in id order, with inputs and shared files *)
  let rng = Rng.create seed in
  let d = Dag.create () in
  for i = 0 to n - 1 do
    ignore (Dag.add_task d ~name:(Printf.sprintf "t%d" i) ~weight:(0.5 +. Rng.float rng 4.))
  done;
  for u = 0 to n - 2 do
    (* one shared file per producer, consumed by a random subset *)
    let f = ref None in
    for v = u + 1 to n - 1 do
      if Rng.uniform rng < 0.35 then begin
        let file =
          match !f with
          | Some file -> file
          | None ->
              let file = Dag.add_file d ~producer:u ~size:(Rng.float rng 8.) in
              f := Some file;
              file
        in
        Dag.add_edge d ~file u v 0.
      end
    done;
    if Rng.uniform rng < 0.3 then Dag.add_input d u (Rng.float rng 5.)
  done;
  (d, Superchain.make ~id:0 ~processor:0 ~order:(Array.init n (fun i -> i)))

let test_cost_matrix_matches_direct_random () =
  for seed = 0 to 14 do
    let d, sc = random_superchain seed 12 in
    let platform = unit_platform ~lambda:0.02 () in
    let matrix = Placement.cost_matrix platform d sc in
    for j = 0 to 11 do
      for i = 0 to j do
        let seg = Placement.segment_of platform d sc ~first:i ~last:j in
        check_close ~eps:1e-9
          (Printf.sprintf "seed %d cost(%d,%d)" seed i j)
          (Placement.expected_time ~lambda:0.02 seg)
          matrix.(j).(i)
      done
    done
  done

let test_optimal_positions_match_brute_force () =
  for seed = 20 to 32 do
    let d, sc = random_superchain seed 9 in
    let platform = unit_platform ~lambda:0.05 () in
    let dp_value, dp_positions = Placement.optimal_positions platform d sc in
    let matrix = Placement.cost_matrix platform d sc in
    let bf_value, _ = Toueg.brute_force ~n:9 ~cost:(fun i j -> matrix.(j).(i)) in
    check_close (Printf.sprintf "seed %d optimal" seed) bf_value dp_value;
    Alcotest.(check int) "last position checkpointed" 8 (List.rev dp_positions |> List.hd)
  done

let test_segments_of_positions () =
  let d, sc = fig4 () in
  let platform = unit_platform () in
  let segs = Placement.segments_of_positions platform d sc ~positions:[ 1; 3; 5 ] in
  Alcotest.(check int) "3 segments" 3 (List.length segs);
  let bounds = List.map (fun (s : Placement.segment) -> (s.Placement.first, s.Placement.last)) segs in
  Alcotest.(check (list (pair int int))) "bounds" [ (0, 1); (2, 3); (4, 5) ] bounds

let test_segments_require_final_position () =
  let d, sc = fig4 () in
  Alcotest.(check bool) "missing final rejected" true
    (match Placement.segments_of_positions (unit_platform ()) d sc ~positions:[ 2 ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_every_position () =
  let _, sc = fig4 () in
  Alcotest.(check (list int)) "all" [ 0; 1; 2; 3; 4; 5 ] (Placement.every_position sc)

let test_zero_lambda_checkpoints_sparse () =
  (* with no failures and positive checkpoint costs, a single segment
     (only the forced final checkpoint) is optimal *)
  let d, sc = fig4 () in
  let platform = unit_platform ~lambda:0. () in
  let _, positions = Placement.optimal_positions platform d sc in
  Alcotest.(check (list int)) "single segment" [ 5 ] positions

let test_high_lambda_checkpoints_dense () =
  let d, sc = fig4 () in
  let cheap = Platform.make ~processors:1 ~lambda:0.3 ~bandwidth:1e6 in
  let _, positions = Placement.optimal_positions cheap d sc in
  Alcotest.(check int) "checkpoint everywhere" 6 (List.length positions)

(* --- QCheck invariants on random superchains --- *)

let arb_superchain =
  QCheck.make
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    QCheck.Gen.(pair (int_bound 10_000) (int_range 2 14))

let prop_segment_costs_nonnegative =
  QCheck.Test.make ~name:"segment R/W/C are non-negative" ~count:60 arb_superchain
    (fun (seed, n) ->
      let d, sc = random_superchain seed n in
      let platform = unit_platform ~lambda:0.01 () in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = i to n - 1 do
          let s = Placement.segment_of platform d sc ~first:i ~last:j in
          if s.Placement.read < 0. || s.Placement.work < 0. || s.Placement.write < 0. then
            ok := false
        done
      done;
      !ok)

let prop_segment_work_additive =
  QCheck.Test.make ~name:"adjacent segments' W adds up" ~count:60 arb_superchain
    (fun (seed, n) ->
      let d, sc = random_superchain seed n in
      let platform = unit_platform () in
      if n < 3 then true
      else begin
        let mid = n / 2 in
        let whole = Placement.segment_of platform d sc ~first:0 ~last:(n - 1) in
        let left = Placement.segment_of platform d sc ~first:0 ~last:(mid - 1) in
        let right = Placement.segment_of platform d sc ~first:mid ~last:(n - 1) in
        abs_float (whole.Placement.work -. (left.Placement.work +. right.Placement.work))
        < 1e-9
      end)

let prop_splitting_never_loses_data =
  (* cutting a segment in two can only move data through storage:
     the split's write+read costs at the boundary are at least the
     whole segment's (monotonicity of the extended checkpoint) *)
  QCheck.Test.make ~name:"splitting adds I/O, never removes it" ~count:60 arb_superchain
    (fun (seed, n) ->
      let d, sc = random_superchain seed n in
      let platform = unit_platform () in
      if n < 3 then true
      else begin
        let mid = n / 2 in
        let whole = Placement.segment_of platform d sc ~first:0 ~last:(n - 1) in
        let left = Placement.segment_of platform d sc ~first:0 ~last:(mid - 1) in
        let right = Placement.segment_of platform d sc ~first:mid ~last:(n - 1) in
        left.Placement.read +. left.Placement.write +. right.Placement.read
        +. right.Placement.write
        >= whole.Placement.read +. whole.Placement.write -. 1e-9
      end)

let prop_optimal_value_realised_by_positions =
  QCheck.Test.make ~name:"Algorithm 2 value matches its own positions" ~count:40
    arb_superchain (fun (seed, n) ->
      let d, sc = random_superchain seed n in
      let platform = unit_platform ~lambda:0.03 () in
      let value, positions = Placement.optimal_positions platform d sc in
      let lambda = 0.03 in
      let total =
        Placement.segments_of_positions platform d sc ~positions
        |> List.fold_left (fun acc s -> acc +. Placement.expected_time ~lambda s) 0.
      in
      abs_float (total -. value) < 1e-9 *. (1. +. value))

let suite =
  [
    Alcotest.test_case "whole chain" `Quick test_whole_chain_segment;
    Alcotest.test_case "Figure 4 segment T3-T4" `Quick test_figure4_segment_t3_t4;
    Alcotest.test_case "Figure 4 segment T5-T6" `Quick test_figure4_segment_t5_t6;
    Alcotest.test_case "single-task segments" `Quick test_single_task_segments;
    Alcotest.test_case "shared file once" `Quick test_shared_file_checkpointed_once;
    Alcotest.test_case "initial inputs in R" `Quick test_initial_inputs_in_read;
    Alcotest.test_case "cross-superchain R/C" `Quick test_cross_superchain_read_write;
    Alcotest.test_case "Eq.2 expected time" `Quick test_expected_time_eq2;
    Alcotest.test_case "cost matrix = direct (fig4)" `Quick test_cost_matrix_matches_direct;
    Alcotest.test_case "cost matrix = direct (random)" `Quick test_cost_matrix_matches_direct_random;
    Alcotest.test_case "Algorithm 2 optimal" `Quick test_optimal_positions_match_brute_force;
    Alcotest.test_case "segments of positions" `Quick test_segments_of_positions;
    Alcotest.test_case "final position required" `Quick test_segments_require_final_position;
    Alcotest.test_case "every position" `Quick test_every_position;
    Alcotest.test_case "lambda=0 sparse" `Quick test_zero_lambda_checkpoints_sparse;
    Alcotest.test_case "high lambda dense" `Quick test_high_lambda_checkpoints_dense;
    QCheck_alcotest.to_alcotest prop_segment_costs_nonnegative;
    QCheck_alcotest.to_alcotest prop_segment_work_additive;
    QCheck_alcotest.to_alcotest prop_splitting_never_loses_data;
    QCheck_alcotest.to_alcotest prop_optimal_value_realised_by_positions;
  ]
