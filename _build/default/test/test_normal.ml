(* Tests for Ckpt_prob.Normal: erf/cdf/quantile accuracy against
   published values, and Clark's max-of-normals moments against Monte
   Carlo. *)

module Normal = Ckpt_prob.Normal
module Rng = Ckpt_prob.Rng
module Stats = Ckpt_prob.Stats

let check_close ?(eps = 1e-7) msg expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let test_erf_reference_values () =
  (* reference values from Abramowitz & Stegun table 7.1 *)
  check_close "erf 0" 0. (Normal.erf 0.);
  check_close ~eps:1e-9 "erf 0.5" 0.5204998778 (Normal.erf 0.5);
  check_close ~eps:1e-9 "erf 1" 0.8427007929 (Normal.erf 1.);
  check_close ~eps:1e-9 "erf 2" 0.9953222650 (Normal.erf 2.);
  check_close ~eps:1e-10 "erf 3" 0.9999779095 (Normal.erf 3.);
  check_close ~eps:1e-9 "erf -1" (-0.8427007929) (Normal.erf (-1.))

let test_cdf_reference_values () =
  check_close "cdf 0" 0.5 (Normal.cdf 0.);
  check_close ~eps:1e-9 "cdf 1" 0.8413447461 (Normal.cdf 1.);
  check_close ~eps:1e-9 "cdf -1" 0.1586552539 (Normal.cdf (-1.));
  check_close ~eps:1e-9 "cdf 1.96" 0.9750021049 (Normal.cdf 1.96);
  check_close ~eps:1e-10 "cdf 4" 0.9999683288 (Normal.cdf 4.)

let test_pdf () =
  check_close ~eps:1e-12 "pdf 0" (1. /. sqrt (2. *. Float.pi)) (Normal.pdf 0.);
  check_close ~eps:1e-12 "pdf symmetric" (Normal.pdf 1.3) (Normal.pdf (-1.3))

let test_quantile_roundtrip () =
  List.iter
    (fun p ->
      let x = Normal.quantile p in
      check_close ~eps:1e-8 (Printf.sprintf "cdf(quantile %g)" p) p (Normal.cdf x))
    [ 0.001; 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999 ]

let test_quantile_known () =
  check_close ~eps:1e-8 "median" 0. (Normal.quantile 0.5);
  check_close ~eps:1e-6 "97.5%" 1.959963985 (Normal.quantile 0.975)

let test_quantile_rejects_bounds () =
  Alcotest.check_raises "p=0" (Invalid_argument "Normal.quantile: argument must be in (0,1)")
    (fun () -> ignore (Normal.quantile 0.));
  Alcotest.check_raises "p=1" (Invalid_argument "Normal.quantile: argument must be in (0,1)")
    (fun () -> ignore (Normal.quantile 1.))

let mc_max_moments ~mean1 ~var1 ~mean2 ~var2 trials =
  let rng = Rng.create 99 in
  let stats = Stats.create () in
  for _ = 1 to trials do
    let x1 = Rng.normal rng ~mean:mean1 ~stddev:(sqrt var1) in
    let x2 = Rng.normal rng ~mean:mean2 ~stddev:(sqrt var2) in
    Stats.add stats (Float.max x1 x2)
  done;
  (Stats.mean stats, Stats.variance stats)

let test_clark_vs_montecarlo () =
  List.iter
    (fun (m1, v1, m2, v2) ->
      let cm, cv = Normal.clark_max ~mean1:m1 ~var1:v1 ~mean2:m2 ~var2:v2 ~rho:0. in
      let mm, mv = mc_max_moments ~mean1:m1 ~var1:v1 ~mean2:m2 ~var2:v2 400_000 in
      if abs_float (cm -. mm) > 0.02 *. (1. +. abs_float mm) then
        Alcotest.failf "clark mean %f vs mc %f" cm mm;
      if abs_float (cv -. mv) > 0.05 *. (1. +. abs_float mv) then
        Alcotest.failf "clark var %f vs mc %f" cv mv)
    [ (0., 1., 0., 1.); (5., 2., 3., 1.); (10., 0.5, 10., 0.5); (0., 1., 4., 9.) ]

let test_clark_dominant_operand () =
  (* when X1 is far above X2, max ~ X1 *)
  let m, v = Normal.clark_max ~mean1:100. ~var1:1. ~mean2:0. ~var2:1. ~rho:0. in
  check_close ~eps:1e-6 "mean" 100. m;
  check_close ~eps:1e-4 "variance" 1. v

let test_clark_identical_degenerate () =
  (* identical deterministic variables: a=0 branch *)
  let m, v = Normal.clark_max ~mean1:5. ~var1:0. ~mean2:5. ~var2:0. ~rho:0. in
  check_close "mean" 5. m;
  check_close "variance" 0. v

let test_clark_max_of_standard_normals () =
  (* E[max(N(0,1),N(0,1))] = 1/sqrt(pi) for independent standard normals *)
  let m, _ = Normal.clark_max ~mean1:0. ~var1:1. ~mean2:0. ~var2:1. ~rho:0. in
  check_close ~eps:1e-9 "1/sqrt(pi)" (1. /. sqrt Float.pi) m

let suite =
  [
    Alcotest.test_case "erf reference values" `Quick test_erf_reference_values;
    Alcotest.test_case "cdf reference values" `Quick test_cdf_reference_values;
    Alcotest.test_case "pdf" `Quick test_pdf;
    Alcotest.test_case "quantile roundtrip" `Quick test_quantile_roundtrip;
    Alcotest.test_case "quantile known values" `Quick test_quantile_known;
    Alcotest.test_case "quantile bounds" `Quick test_quantile_rejects_bounds;
    Alcotest.test_case "Clark vs Monte Carlo" `Slow test_clark_vs_montecarlo;
    Alcotest.test_case "Clark dominant operand" `Quick test_clark_dominant_operand;
    Alcotest.test_case "Clark degenerate" `Quick test_clark_identical_degenerate;
    Alcotest.test_case "Clark standard normals" `Quick test_clark_max_of_standard_normals;
  ]
