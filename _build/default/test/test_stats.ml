(* Tests for Ckpt_prob.Stats (Welford accumulator). *)

module Stats = Ckpt_prob.Stats

let check_close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

let test_empty () =
  let s = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count s);
  check_close "variance" 0. (Stats.variance s)

let test_single () =
  let s = Stats.create () in
  Stats.add s 42.;
  check_close "mean" 42. (Stats.mean s);
  check_close "variance" 0. (Stats.variance s);
  check_close "min" 42. (Stats.min s);
  check_close "max" 42. (Stats.max s)

let test_known_sample () =
  (* sample 2,4,4,4,5,5,7,9: mean 5, population var 4, sample var 32/7 *)
  let s = Stats.of_array [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_close "mean" 5. (Stats.mean s);
  check_close "sample variance" (32. /. 7.) (Stats.variance s);
  check_close "min" 2. (Stats.min s);
  check_close "max" 9. (Stats.max s)

let test_matches_naive_two_pass () =
  let xs = Array.init 1000 (fun i -> sin (float_of_int i) *. 100.) in
  let s = Stats.of_array xs in
  let mean = Array.fold_left ( +. ) 0. xs /. 1000. in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. 999.
  in
  check_close ~eps:1e-6 "mean" mean (Stats.mean s);
  check_close ~eps:1e-6 "variance" var (Stats.variance s)

let test_numerical_stability_large_offset () =
  (* classic Welford motivation: tiny variance on a huge offset *)
  let xs = Array.init 1000 (fun i -> 1e9 +. float_of_int (i mod 2)) in
  let s = Stats.of_array xs in
  check_close ~eps:1e-4 "variance" (0.25 *. 1000. /. 999.) (Stats.variance s)

let test_ci_shrinks () =
  let s100 = Stats.of_array (Array.init 100 (fun i -> float_of_int (i mod 10))) in
  let s10000 = Stats.of_array (Array.init 10_000 (fun i -> float_of_int (i mod 10))) in
  Alcotest.(check bool) "ci shrinks with n" true
    (Stats.ci95_halfwidth s10000 < Stats.ci95_halfwidth s100)

let test_ks_perfect_fit () =
  (* sample 0.5/n, 1.5/n, ... vs uniform cdf: the optimal-fit grid has
     KS = 1/(2n) *)
  let n = 100 in
  let xs = Array.init n (fun i -> (float_of_int i +. 0.5) /. float_of_int n) in
  let cdf x = Stdlib.min 1. (Stdlib.max 0. x) in
  check_close ~eps:1e-6 "half-step grid" (0.5 /. float_of_int n)
    (Stats.ks_distance xs ~cdf)

let test_ks_detects_shift () =
  let xs = Array.init 100 (fun i -> (float_of_int i +. 0.5) /. 100.) in
  (* shifted uniform: cdf of U + 0.3 *)
  let cdf x = Stdlib.min 1. (Stdlib.max 0. (x -. 0.3)) in
  Alcotest.(check bool) "shift detected" true (Stats.ks_distance xs ~cdf > 0.25)

let test_ks_atom_alignment () =
  (* sample and distribution share an atom at (float-noisy) 10:
     distance must be the mass mismatch, not the whole atom *)
  let xs = Array.append (Array.make 70 (10. +. 1e-13)) (Array.make 30 20.) in
  let cdf x = if x < 10. then 0. else if x < 20. then 0.7 else 1. in
  Alcotest.(check bool) "atom aligned" true (Stats.ks_distance xs ~cdf < 0.01)

let test_ks_empty_rejected () =
  Alcotest.(check bool) "empty" true
    (match Stats.ks_distance [||] ~cdf:(fun _ -> 0.) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_quantiles () =
  let xs = Array.init 100 (fun i -> float_of_int (99 - i)) in
  check_close "median" 49. (Stats.quantile_of_array xs 0.5);
  check_close "q0" 0. (Stats.quantile_of_array xs 0.0);
  check_close "q1" 99. (Stats.quantile_of_array xs 1.0);
  check_close "q0.9" 89. (Stats.quantile_of_array xs 0.9)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "single" `Quick test_single;
    Alcotest.test_case "known sample" `Quick test_known_sample;
    Alcotest.test_case "matches two-pass" `Quick test_matches_naive_two_pass;
    Alcotest.test_case "stability" `Quick test_numerical_stability_large_offset;
    Alcotest.test_case "ci shrinks" `Quick test_ci_shrinks;
    Alcotest.test_case "ks perfect fit" `Quick test_ks_perfect_fit;
    Alcotest.test_case "ks detects shift" `Quick test_ks_detects_shift;
    Alcotest.test_case "ks atom alignment" `Quick test_ks_atom_alignment;
    Alcotest.test_case "ks empty" `Quick test_ks_empty_rejected;
    Alcotest.test_case "quantiles" `Quick test_quantiles;
  ]
