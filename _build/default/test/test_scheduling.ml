(* Tests for the scheduling half of the core library: Linearize,
   Superchain, Propmap, Allocate, Schedule. *)

module Dag = Ckpt_dag.Dag
module Mspg = Ckpt_mspg.Mspg
module Rng = Ckpt_prob.Rng
module Linearize = Ckpt_core.Linearize
module Superchain = Ckpt_core.Superchain
module Propmap = Ckpt_core.Propmap
module Allocate = Ckpt_core.Allocate
module Schedule = Ckpt_core.Schedule
module Random_wf = Ckpt_workflows.Random_wf
module Spec = Ckpt_workflows.Spec
module Recognize = Ckpt_mspg.Recognize

(* --- Linearize --- *)

let fig4 () =
  (* Figure 4 M-SPG: T1 -> T2 -> {T3 -> T5, T4 -> T5}? The paper's
     Figure 4(a): 1->2, 2->3, 2->4, 3->5, 4->5, 5->6 *)
  let d = Dag.create ~name:"fig4" () in
  let t = Array.init 6 (fun i -> Dag.add_task d ~name:(Printf.sprintf "T%d" (i + 1)) ~weight:1.) in
  Dag.add_edge d t.(0) t.(1) 1.;
  Dag.add_edge d t.(1) t.(2) 1.;
  Dag.add_edge d t.(1) t.(3) 1.;
  Dag.add_edge d t.(2) t.(4) 1.;
  Dag.add_edge d t.(3) t.(4) 1.;
  Dag.add_edge d t.(4) t.(5) 1.;
  d

let all_ids d = List.init (Dag.n_tasks d) (fun i -> i)

let check_valid_order d tasks order =
  Alcotest.(check int) "covers subset" (List.length tasks) (Array.length order);
  let pos = Hashtbl.create 16 in
  Array.iteri (fun k v -> Hashtbl.replace pos v k) order;
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          match (Hashtbl.find_opt pos u, Hashtbl.find_opt pos v) with
          | Some pu, Some pv ->
              if pu >= pv then Alcotest.failf "edge %d->%d violated" u v
          | _ -> ())
        (Dag.succ_ids d u))
    tasks

let test_linearize_deterministic () =
  let d = fig4 () in
  let order = Linearize.order d (all_ids d) Linearize.Deterministic in
  check_valid_order d (all_ids d) order;
  Alcotest.(check (array int)) "smallest-id first" [| 0; 1; 2; 3; 4; 5 |] order

let test_linearize_random_valid () =
  let d = fig4 () in
  let rng = Rng.create 3 in
  for _ = 1 to 30 do
    check_valid_order d (all_ids d) (Linearize.order d (all_ids d) (Linearize.Random rng))
  done

let test_linearize_subset () =
  let d = fig4 () in
  let order = Linearize.order d [ 2; 3; 4 ] Linearize.Deterministic in
  check_valid_order d [ 2; 3; 4 ] order

let test_linearize_min_volume_valid () =
  let d = fig4 () in
  check_valid_order d (all_ids d) (Linearize.order d (all_ids d) Linearize.Min_volume)

let test_linearize_min_volume_prefers_draining () =
  (* a produces a huge file for c; b is independent and tiny. After a,
     the min-volume policy should run c (freeing the huge file) before
     b. Deterministic order would pick b (smaller id) first. *)
  let d = Dag.create () in
  let a = Dag.add_task d ~name:"a" ~weight:1. in
  let b = Dag.add_task d ~name:"b" ~weight:1. in
  let c = Dag.add_task d ~name:"c" ~weight:1. in
  Dag.add_edge d a c 1e9;
  let order = Linearize.order d [ a; b; c ] Linearize.Min_volume in
  (* a and b both start ready with delta: a creates 1e9, b creates 0 ->
     b first, then a, then c. Check c immediately follows a. *)
  let pos v = Array.to_list order |> List.mapi (fun i x -> (x, i)) |> List.assoc v in
  Alcotest.(check bool) "c right after a" true (pos c = pos a + 1)

(* --- Superchain --- *)

let test_superchain_entry_exit () =
  let d = fig4 () in
  let sc = Superchain.make ~id:0 ~processor:0 ~order:[| 2; 4 |] in
  (* tasks T3 (id 2) and T5 (id 4) on one processor: T3 has pred T2
     outside; T5 has preds T3 (inside), T4 (outside) and succ T6 outside *)
  Alcotest.(check (list int)) "entries" [ 2; 4 ] (Superchain.entry_tasks d sc);
  Alcotest.(check (list int)) "exits" [ 4 ] (Superchain.exit_tasks d sc);
  Alcotest.(check int) "position" 1 (Superchain.position sc 4);
  Alcotest.(check bool) "mem" true (Superchain.mem sc 2);
  Alcotest.(check bool) "not mem" false (Superchain.mem sc 0)

let test_superchain_rejects_duplicates () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Superchain.make: duplicate task")
    (fun () -> ignore (Superchain.make ~id:0 ~processor:0 ~order:[| 1; 1 |]))

(* --- Propmap --- *)

let weighted_branches weights =
  let d = Dag.create () in
  let branches =
    List.map (fun w -> Mspg.leaf (Dag.add_task d ~name:"t" ~weight:w)) weights
  in
  (d, branches)

let test_propmap_more_processors_than_graphs () =
  let d, branches = weighted_branches [ 10.; 1. ] in
  let result = Propmap.run d branches 5 in
  Alcotest.(check int) "2 groups" 2 (List.length result);
  let counts = List.map snd result in
  Alcotest.(check int) "all processors used" 5 (List.fold_left ( + ) 0 counts);
  (* the heavy branch gets more processors *)
  (match result with
  | [ (g1, c1); (_, c2) ] ->
      Alcotest.(check bool) "heavy first (sorted)" true (Mspg.tree_weight d g1 = 10.);
      Alcotest.(check bool) "heavy gets more" true (c1 > c2)
  | _ -> Alcotest.fail "shape")

let test_propmap_more_graphs_than_processors () =
  let d, branches = weighted_branches [ 5.; 4.; 3.; 2.; 1. ] in
  let result = Propmap.run d branches 2 in
  Alcotest.(check int) "2 groups" 2 (List.length result);
  List.iter (fun (_, c) -> Alcotest.(check int) "1 proc each" 1 c) result;
  (* greedy balancing of 5,4,3,2,1 into two bins: {5,2,1}=8 and {4,3}=7 *)
  let weights = List.map (fun (g, _) -> Mspg.tree_weight d g) result |> List.sort compare in
  Alcotest.(check (list (float 1e-9))) "balanced bins" [ 7.; 8. ] weights;
  (* all tasks preserved *)
  let total_tasks =
    List.fold_left (fun acc (g, _) -> acc + Mspg.tree_size g) 0 result
  in
  Alcotest.(check int) "all tasks" 5 total_tasks

let test_propmap_equal_split () =
  let d, branches = weighted_branches [ 1.; 1.; 1.; 1. ] in
  let result = Propmap.run d branches 4 in
  Alcotest.(check int) "4 groups" 4 (List.length result);
  List.iter (fun (_, c) -> Alcotest.(check int) "1 each" 1 c) result

let test_propmap_rejects_bad_input () =
  let d, branches = weighted_branches [ 1. ] in
  Alcotest.check_raises "empty" (Invalid_argument "Propmap.run: no graphs") (fun () ->
      ignore (Propmap.run d [] 2));
  Alcotest.check_raises "no procs" (Invalid_argument "Propmap.run: p < 1") (fun () ->
      ignore (Propmap.run d branches 0))

(* --- Allocate / Schedule --- *)

let test_allocate_chain_single_superchain () =
  let m =
    Mspg.build (Mspg.Bserial [ Mspg.Btask ("a", 1.); Mspg.Btask ("b", 1.); Mspg.Btask ("c", 1.) ])
  in
  let s = Allocate.run m ~processors:4 in
  Alcotest.(check int) "one superchain" 1 (Array.length s.Schedule.superchains);
  Alcotest.(check int) "on processor 0" 0 s.Schedule.superchains.(0).Superchain.processor

let test_allocate_forkjoin_two_processors () =
  let m =
    Mspg.build
      (Mspg.Bserial
         [ Mspg.Btask ("head", 1.);
           Mspg.Bparallel
             [ Mspg.Bserial [ Mspg.Btask ("a1", 5.); Mspg.Btask ("a2", 5.) ];
               Mspg.Bserial [ Mspg.Btask ("b1", 5.); Mspg.Btask ("b2", 5.) ] ];
           Mspg.Btask ("tail", 1.) ])
  in
  let s = Allocate.run m ~processors:2 in
  (match Schedule.check s with Ok () -> () | Error e -> Alcotest.fail e);
  (* head, two branch superchains, tail *)
  Alcotest.(check int) "4 superchains" 4 (Array.length s.Schedule.superchains);
  (* the two branches land on different processors *)
  let branch_procs =
    Array.to_list s.Schedule.superchains
    |> List.filter (fun sc -> Superchain.n_tasks sc = 2)
    |> List.map (fun sc -> sc.Superchain.processor)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "branches spread" [ 0; 1 ] branch_procs

let test_allocate_covers_all_tasks_once () =
  for seed = 0 to 30 do
    let m = Random_wf.generate ~seed ~max_tasks:60 () in
    List.iter
      (fun p ->
        let s = Allocate.run m ~processors:p in
        (* Schedule.make already verifies the partition; run check too *)
        match Schedule.check s with
        | Ok () -> ()
        | Error e -> Alcotest.failf "seed %d p %d: %s" seed p e)
      [ 1; 2; 3; 7 ]
  done

let test_allocate_single_processor () =
  let m = Random_wf.generate ~seed:5 ~max_tasks:40 () in
  let s = Allocate.run m ~processors:1 in
  Array.iter
    (fun sc -> Alcotest.(check int) "all on p0" 0 sc.Superchain.processor)
    s.Schedule.superchains

let test_allocate_processor_bounds () =
  let m = Random_wf.generate ~seed:6 ~max_tasks:60 () in
  let s = Allocate.run m ~processors:4 in
  Array.iter
    (fun sc ->
      Alcotest.(check bool) "proc in range" true
        (sc.Superchain.processor >= 0 && sc.Superchain.processor < 4))
    s.Schedule.superchains

let test_allocate_respects_policy () =
  let m = Random_wf.generate ~seed:8 ~max_tasks:50 () in
  let s1 = Allocate.run ~policy:Linearize.Deterministic m ~processors:2 in
  let s2 = Allocate.run ~policy:Linearize.Deterministic m ~processors:2 in
  Alcotest.(check bool) "deterministic schedules equal" true
    (Array.for_all2
       (fun (a : Superchain.t) (b : Superchain.t) -> a.Superchain.order = b.Superchain.order)
       s1.Schedule.superchains s2.Schedule.superchains)

let test_allocate_real_workflows () =
  List.iter
    (fun kind ->
      let dag = Spec.generate kind ~seed:1 ~tasks:300 () in
      let m =
        match Recognize.of_dag_completed dag with
        | Ok (m, _) -> m
        | Error e -> Alcotest.fail e
      in
      List.iter
        (fun p ->
          let s = Allocate.run m ~processors:p in
          match Schedule.check s with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s p=%d: %s" (Spec.name kind) p e)
        [ 18; 35; 70 ])
    Spec.all

let test_macro_edges_cross_chains () =
  let m = Random_wf.generate ~seed:9 ~max_tasks:50 () in
  let s = Allocate.run m ~processors:3 in
  List.iter
    (fun (i, j) ->
      if i = j then Alcotest.fail "self macro edge";
      if i < 0 || j < 0 || i >= Array.length s.Schedule.superchains then
        Alcotest.fail "macro edge out of range")
    (Schedule.macro_edges s)

let test_chains_of_processor_ordered () =
  let m = Random_wf.generate ~seed:10 ~max_tasks:60 () in
  let s = Allocate.run m ~processors:2 in
  List.iter
    (fun p ->
      let ids =
        List.map (fun (sc : Superchain.t) -> sc.Superchain.id) (Schedule.chains_of_processor s p)
      in
      Alcotest.(check (list int)) "temporal order" (List.sort compare ids) ids)
    [ 0; 1 ]

let test_used_processors () =
  let m = Mspg.build (Mspg.Btask ("only", 1.)) in
  let s = Allocate.run m ~processors:8 in
  Alcotest.(check int) "one used" 1 (Schedule.used_processors s)

let suite =
  [
    Alcotest.test_case "linearize deterministic" `Quick test_linearize_deterministic;
    Alcotest.test_case "linearize random valid" `Quick test_linearize_random_valid;
    Alcotest.test_case "linearize subset" `Quick test_linearize_subset;
    Alcotest.test_case "linearize min-volume valid" `Quick test_linearize_min_volume_valid;
    Alcotest.test_case "min-volume drains" `Quick test_linearize_min_volume_prefers_draining;
    Alcotest.test_case "superchain entry/exit" `Quick test_superchain_entry_exit;
    Alcotest.test_case "superchain duplicates" `Quick test_superchain_rejects_duplicates;
    Alcotest.test_case "propmap surplus procs" `Quick test_propmap_more_processors_than_graphs;
    Alcotest.test_case "propmap packing" `Quick test_propmap_more_graphs_than_processors;
    Alcotest.test_case "propmap equal split" `Quick test_propmap_equal_split;
    Alcotest.test_case "propmap rejections" `Quick test_propmap_rejects_bad_input;
    Alcotest.test_case "allocate chain" `Quick test_allocate_chain_single_superchain;
    Alcotest.test_case "allocate fork-join" `Quick test_allocate_forkjoin_two_processors;
    Alcotest.test_case "allocate covers tasks" `Quick test_allocate_covers_all_tasks_once;
    Alcotest.test_case "allocate single proc" `Quick test_allocate_single_processor;
    Alcotest.test_case "allocate proc bounds" `Quick test_allocate_processor_bounds;
    Alcotest.test_case "allocate deterministic" `Quick test_allocate_respects_policy;
    Alcotest.test_case "allocate real workflows" `Slow test_allocate_real_workflows;
    Alcotest.test_case "macro edges sane" `Quick test_macro_edges_cross_chains;
    Alcotest.test_case "processor chains ordered" `Quick test_chains_of_processor_ordered;
    Alcotest.test_case "used processors" `Quick test_used_processors;
  ]
