(* Tests for Ckpt_core.Refine: the global hill-climbing refinement. *)

module Pipeline = Ckpt_core.Pipeline
module Strategy = Ckpt_core.Strategy
module Refine = Ckpt_core.Refine
module Spec = Ckpt_workflows.Spec

let setup () =
  let dag = Spec.generate Spec.Genome ~seed:1 ~tasks:50 () in
  Pipeline.prepare ~dag ~processors:5 ~pfail:0.01 ~ccr:0.1 ()

let test_never_worse () =
  let s = setup () in
  List.iter
    (fun kind ->
      let plan = Pipeline.plan s kind in
      let r = Refine.hill_climb ~max_rounds:5 plan in
      if r.Refine.final_em > r.Refine.initial_em +. 1e-9 then
        Alcotest.failf "%s: refinement degraded %f -> %f" (Strategy.kind_name kind)
          r.Refine.initial_em r.Refine.final_em)
    [ Strategy.Ckpt_some; Strategy.Ckpt_all; Strategy.Ckpt_every 5 ]

let test_ckptsome_near_global_optimum () =
  (* the headline: Algorithm 2's per-superchain optimum leaves almost
     nothing on the table globally *)
  let s = setup () in
  let r = Refine.hill_climb (Pipeline.plan s Strategy.Ckpt_some) in
  let gain = (r.Refine.initial_em -. r.Refine.final_em) /. r.Refine.initial_em in
  if gain > 0.01 then
    Alcotest.failf "refinement gained %.2f%% over Algorithm 2 — too much" (gain *. 100.)

let test_improves_bad_start () =
  (* from a poor fixed-period start the search must recover most of
     the gap to CKPTSOME *)
  let s = setup () in
  let some_em = Strategy.expected_makespan (Pipeline.plan s Strategy.Ckpt_some) in
  let r = Refine.hill_climb ~max_rounds:30 (Pipeline.plan s (Strategy.Ckpt_every 5)) in
  Alcotest.(check bool) "moves applied" true (r.Refine.moves > 0);
  if r.Refine.final_em > some_em *. 1.005 then
    Alcotest.failf "refined every-5 (%f) still far from CKPTSOME (%f)" r.Refine.final_em
      some_em

let test_final_positions_keep_exits () =
  (* the refined plan still checkpoints every superchain's end *)
  let s = setup () in
  let r = Refine.hill_climb ~max_rounds:5 (Pipeline.plan s (Strategy.Ckpt_every 3)) in
  List.iter
    (fun (chain, positions) ->
      let sc = s.Pipeline.schedule.Ckpt_core.Schedule.superchains.(chain) in
      Alcotest.(check int) "exit kept"
        (Ckpt_core.Superchain.n_tasks sc - 1)
        (List.rev positions |> List.hd))
    (Strategy.checkpoint_positions r.Refine.plan)

let test_rejects_ckptnone () =
  let s = setup () in
  Alcotest.(check bool) "rejected" true
    (match Refine.hill_climb (Pipeline.plan s Strategy.Ckpt_none) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_counts_consistent () =
  let s = setup () in
  let r = Refine.hill_climb ~max_rounds:3 (Pipeline.plan s (Strategy.Ckpt_every 4)) in
  Alcotest.(check bool) "evaluations >= moves" true (r.Refine.evaluations >= r.Refine.moves);
  Alcotest.(check bool) "moves bounded by rounds" true (r.Refine.moves <= 3)

let suite =
  [
    Alcotest.test_case "never worse" `Quick test_never_worse;
    Alcotest.test_case "Algorithm 2 near-optimal" `Quick test_ckptsome_near_global_optimum;
    Alcotest.test_case "improves bad start" `Quick test_improves_bad_start;
    Alcotest.test_case "exits kept" `Quick test_final_positions_keep_exits;
    Alcotest.test_case "rejects CKPTNONE" `Quick test_rejects_ckptnone;
    Alcotest.test_case "counters" `Quick test_counts_consistent;
  ]
