(* Tests for Ckpt_prob.Dist: the distribution calculus used by Dodin's
   estimator and the exact SP evaluation. Includes QCheck properties
   on convolution/max moments. *)

module Dist = Ckpt_prob.Dist
module Rng = Ckpt_prob.Rng

let feq ?(eps = 1e-9) a b = abs_float (a -. b) <= eps *. (1. +. abs_float a)
let check_close ?(eps = 1e-9) msg a b = if not (feq ~eps a b) then Alcotest.failf "%s: %g vs %g" msg a b

let test_constant () =
  let d = Dist.constant 4.2 in
  check_close "mean" (Dist.mean d) 4.2;
  check_close "variance" (Dist.variance d) 0.;
  Alcotest.(check int) "size" 1 (Dist.size d)

let test_two_state_model () =
  (* the paper's Eq. 1 task model: r+w=10, p=0.05 *)
  let d = Dist.two_state ~p:0.05 10. 15. in
  check_close "mean" (Dist.mean d) ((0.95 *. 10.) +. (0.05 *. 15.));
  Alcotest.(check int) "two points" 2 (Dist.size d)

let test_two_state_degenerate () =
  Alcotest.(check int) "p=0 collapses" 1 (Dist.size (Dist.two_state ~p:0. 3. 5.));
  Alcotest.(check int) "p=1 collapses" 1 (Dist.size (Dist.two_state ~p:1. 3. 5.));
  check_close "p=1 value" (Dist.mean (Dist.two_state ~p:1. 3. 5.)) 5.;
  Alcotest.(check int) "equal values collapse" 1 (Dist.size (Dist.two_state ~p:0.5 3. 3.))

let test_of_list_merges_duplicates () =
  let d = Dist.of_list [ (1., 0.25); (1., 0.25); (2., 0.5) ] in
  Alcotest.(check int) "merged" 2 (Dist.size d);
  check_close "mass at 1" (Dist.cdf d 1.) 0.5

let test_of_list_renormalises () =
  let d = Dist.of_list [ (0., 2.); (1., 2.) ] in
  check_close "mean after renormalisation" (Dist.mean d) 0.5

let test_of_list_rejects_bad_input () =
  Alcotest.check_raises "empty" (Invalid_argument "Dist.of_list: empty support") (fun () ->
      ignore (Dist.of_list []));
  Alcotest.check_raises "negative" (Invalid_argument "Dist.of_list: negative probability")
    (fun () -> ignore (Dist.of_list [ (1., -0.5); (2., 1.5) ]))

let test_add_two_coins () =
  (* sum of two fair {0,1} coins = binomial(2, 1/2) *)
  let coin = Dist.two_state ~p:0.5 0. 1. in
  let s = Dist.add coin coin in
  Alcotest.(check int) "support {0,1,2}" 3 (Dist.size s);
  check_close "P(sum<=0)" (Dist.cdf s 0.) 0.25;
  check_close "P(sum<=1)" (Dist.cdf s 1.) 0.75;
  check_close "mean" (Dist.mean s) 1.

let test_max_two_coins () =
  let coin = Dist.two_state ~p:0.5 0. 1. in
  let m = Dist.max2 coin coin in
  check_close "P(max=0)" (Dist.cdf m 0.) 0.25;
  check_close "mean of max" (Dist.mean m) 0.75

let test_min_two_coins () =
  let coin = Dist.two_state ~p:0.5 0. 1. in
  let m = Dist.min2 coin coin in
  check_close "P(min=0)" (Dist.cdf m 0.) 0.75;
  check_close "mean of min" (Dist.mean m) 0.25

let test_shift_scale () =
  let d = Dist.two_state ~p:0.3 2. 4. in
  check_close "shift mean" (Dist.mean (Dist.shift d 10.)) (Dist.mean d +. 10.);
  check_close "scale mean" (Dist.mean (Dist.scale d 3.)) (3. *. Dist.mean d);
  check_close "scale variance" (Dist.variance (Dist.scale d 3.)) (9. *. Dist.variance d)

let test_quantile () =
  let d = Dist.of_list [ (1., 0.2); (2., 0.3); (5., 0.5) ] in
  check_close "q0.1" (Dist.quantile d 0.1) 1.;
  check_close "q0.2" (Dist.quantile d 0.2) 1.;
  check_close "q0.4" (Dist.quantile d 0.4) 2.;
  check_close "q1" (Dist.quantile d 1.0) 5.

let test_compact_preserves_mean () =
  let rng = Rng.create 3 in
  let pts = List.init 5000 (fun _ -> (Rng.float rng 100., Rng.float rng 1.)) in
  let d = Dist.of_list pts in
  let c = Dist.compact ~max_size:64 d in
  Alcotest.(check bool) "size bounded" true (Dist.size c <= 64);
  check_close ~eps:1e-9 "expectation preserved exactly" (Dist.mean d) (Dist.mean c)

let test_compact_noop_small () =
  let d = Dist.two_state ~p:0.5 1. 2. in
  Alcotest.(check bool) "already small" true (Dist.equal d (Dist.compact ~max_size:16 d))

let test_sample_matches_distribution () =
  let d = Dist.of_list [ (1., 0.25); (3., 0.5); (7., 0.25) ] in
  let rng = Rng.create 9 in
  let n = 100_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Dist.sample d rng
  done;
  let mean = !acc /. float_of_int n in
  check_close ~eps:0.02 "sampled mean" (Dist.mean d) mean

(* --- QCheck properties --- *)

let arb_dist =
  let open QCheck in
  let point = pair (float_bound_inclusive 50.) (float_range 0.01 1.) in
  map
    (fun pts -> Dist.of_list pts)
    (list_of_size Gen.(int_range 1 6) point |> map (fun l -> if l = [] then [ (1., 1.) ] else l))

let prop_add_mean_linear =
  QCheck.Test.make ~name:"E[X+Y] = E[X]+E[Y]" ~count:200 (QCheck.pair arb_dist arb_dist)
    (fun (a, b) -> feq ~eps:1e-6 (Dist.mean (Dist.add a b)) (Dist.mean a +. Dist.mean b))

let prop_add_variance_additive =
  QCheck.Test.make ~name:"Var[X+Y] = Var[X]+Var[Y]" ~count:200 (QCheck.pair arb_dist arb_dist)
    (fun (a, b) ->
      feq ~eps:1e-5 (Dist.variance (Dist.add a b)) (Dist.variance a +. Dist.variance b))

let prop_max_ge_means =
  QCheck.Test.make ~name:"E[max] >= max(E[X],E[Y])" ~count:200 (QCheck.pair arb_dist arb_dist)
    (fun (a, b) ->
      Dist.mean (Dist.max2 a b) >= Float.max (Dist.mean a) (Dist.mean b) -. 1e-9)

let prop_max_plus_min =
  QCheck.Test.make ~name:"E[max]+E[min] = E[X]+E[Y]" ~count:200 (QCheck.pair arb_dist arb_dist)
    (fun (a, b) ->
      feq ~eps:1e-6
        (Dist.mean (Dist.max2 a b) +. Dist.mean (Dist.min2 a b))
        (Dist.mean a +. Dist.mean b))

let prop_total_mass =
  QCheck.Test.make ~name:"total probability is 1" ~count:200 arb_dist (fun d ->
      let total = Array.fold_left (fun acc (_, p) -> acc +. p) 0. (Dist.support d) in
      feq ~eps:1e-9 total 1.)

let prop_max_commutative =
  QCheck.Test.make ~name:"max2 commutes" ~count:200 (QCheck.pair arb_dist arb_dist)
    (fun (a, b) -> Dist.equal ~eps:1e-7 (Dist.max2 a b) (Dist.max2 b a))

let suite =
  [
    Alcotest.test_case "constant" `Quick test_constant;
    Alcotest.test_case "two-state task model" `Quick test_two_state_model;
    Alcotest.test_case "two-state degenerate" `Quick test_two_state_degenerate;
    Alcotest.test_case "of_list merges" `Quick test_of_list_merges_duplicates;
    Alcotest.test_case "of_list renormalises" `Quick test_of_list_renormalises;
    Alcotest.test_case "of_list rejects" `Quick test_of_list_rejects_bad_input;
    Alcotest.test_case "convolution of coins" `Quick test_add_two_coins;
    Alcotest.test_case "max of coins" `Quick test_max_two_coins;
    Alcotest.test_case "min of coins" `Quick test_min_two_coins;
    Alcotest.test_case "shift/scale" `Quick test_shift_scale;
    Alcotest.test_case "quantile" `Quick test_quantile;
    Alcotest.test_case "compact preserves mean" `Quick test_compact_preserves_mean;
    Alcotest.test_case "compact no-op when small" `Quick test_compact_noop_small;
    Alcotest.test_case "sampling matches" `Quick test_sample_matches_distribution;
    QCheck_alcotest.to_alcotest prop_add_mean_linear;
    QCheck_alcotest.to_alcotest prop_add_variance_additive;
    QCheck_alcotest.to_alcotest prop_max_ge_means;
    QCheck_alcotest.to_alcotest prop_max_plus_min;
    QCheck_alcotest.to_alcotest prop_total_mass;
    QCheck_alcotest.to_alcotest prop_max_commutative;
  ]
