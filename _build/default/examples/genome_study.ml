(* GENOME case study: the paper's motivating comparison on the
   Epigenomics workflow — how do CKPTALL and CKPTNONE fare against
   CKPTSOME across the failure-rate / CCR grid? (Figure 5's content,
   one sub-table per pfail.)

   Run with: dune exec examples/genome_study.exe *)

module Spec = Ckpt_workflows.Spec
module Pipeline = Ckpt_core.Pipeline

let ccrs = [ 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 1e-1 ]
let pfails = [ 0.01; 0.001; 0.0001 ]

let () =
  let tasks = 300 and processors = 35 in
  let dag = Spec.generate Spec.Genome ~seed:1 ~tasks () in
  Format.printf "GENOME, %d tasks on %d processors (cf. Figure 5, middle row)@.@." tasks
    processors;
  List.iter
    (fun pfail ->
      Format.printf "pfail = %g@." pfail;
      Format.printf "  %8s | %12s | %8s | %8s | %s@." "CCR" "EM(CKPTSOME)" "relALL"
        "relNONE" "ckpts";
      List.iter
        (fun ccr ->
          let setup = Pipeline.prepare ~dag ~processors ~pfail ~ccr () in
          let cmp = Pipeline.compare_strategies setup in
          Format.printf "  %8.4f | %12.1f | %8.4f | %8.4f | %d@." ccr cmp.Pipeline.em_some
            cmp.Pipeline.rel_all cmp.Pipeline.rel_none cmp.Pipeline.ckpts_some)
        ccrs;
      Format.printf "@.")
    pfails;
  Format.printf
    "reading: relALL >= 1 everywhere and -> 1 as CCR -> 0 (checkpoints become free);@.";
  Format.printf
    "relNONE is largest when failures are frequent and shrinks as checkpoints get dear.@."
