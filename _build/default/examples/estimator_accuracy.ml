(* Estimator accuracy study (Section VI-B): on CKPTSOME plans for all
   three workflow families, compare DODIN, NORMAL and PATHAPPROX
   against a large-trial Monte Carlo ground truth, in accuracy and
   speed. The paper's conclusion — PATHAPPROX is both faster and more
   accurate than DODIN and NORMAL — should be visible here.

   Run with: dune exec examples/estimator_accuracy.exe *)

module Spec = Ckpt_workflows.Spec
module Pipeline = Ckpt_core.Pipeline
module Strategy = Ckpt_core.Strategy
module Evaluator = Ckpt_eval.Evaluator

let time f =
  let t0 = Sys.time () in
  let v = f () in
  (v, (Sys.time () -. t0) *. 1000.)

let () =
  let trials = 200_000 in
  Format.printf "ground truth: Monte Carlo with %d trials@.@." trials;
  Format.printf "%-8s %-12s %12s %9s %9s@." "workflow" "method" "estimate" "error" "time";
  List.iter
    (fun kind ->
      let dag = Spec.generate kind ~seed:1 ~tasks:300 () in
      let setup = Pipeline.prepare ~dag ~processors:35 ~pfail:0.001 ~ccr:0.01 () in
      let plan = Pipeline.plan setup Strategy.Ckpt_some in
      let truth, mc_ms =
        time (fun () ->
            Strategy.expected_makespan ~method_:(Evaluator.Montecarlo { trials; seed = 1 })
              plan)
      in
      Format.printf "%-8s %-12s %12.2f %9s %8.1fms@." (Spec.name kind) "montecarlo" truth
        "--" mc_ms;
      List.iter
        (fun m ->
          let v, ms = time (fun () -> Strategy.expected_makespan ~method_:m plan) in
          Format.printf "%-8s %-12s %12.2f %+8.3f%% %8.1fms@." (Spec.name kind)
            (Evaluator.name m) v
            ((v -. truth) /. truth *. 100.)
            ms)
        Evaluator.all_fast;
      Format.printf "@.")
    Spec.all;
  Format.printf
    "PATHAPPROX matches Monte Carlo within a fraction of a percent at negligible cost,@.";
  Format.printf "matching the paper's choice of estimator for the experiments.@."
