(* LIGO failure-rate sweep with simulation cross-validation: for each
   pfail, compare the analytical expected makespans (first-order model
   + PATHAPPROX) with the discrete-event simulator's ground truth.

   Run with: dune exec examples/ligo_sweep.exe *)

module Spec = Ckpt_workflows.Spec
module Pipeline = Ckpt_core.Pipeline
module Strategy = Ckpt_core.Strategy
module Runner = Ckpt_sim.Runner
module Stats = Ckpt_prob.Stats

let () =
  let tasks = 300 and processors = 18 and ccr = 0.01 and trials = 1500 in
  let dag = Spec.generate Spec.Ligo ~seed:1 ~tasks () in
  Format.printf "LIGO, %d tasks on %d processors, CCR=%g, %d simulation trials@.@." tasks
    processors ccr trials;
  Format.printf "%8s | %-10s | %12s | %12s | %7s@." "pfail" "strategy" "analytical"
    "simulated" "error";
  List.iter
    (fun pfail ->
      let setup = Pipeline.prepare ~dag ~processors ~pfail ~ccr () in
      List.iter
        (fun kind ->
          let plan = Pipeline.plan setup kind in
          let est = Strategy.expected_makespan plan in
          let sim = Stats.mean (Runner.simulate ~trials plan) in
          Format.printf "%8g | %-10s | %12.1f | %12.1f | %+6.2f%%@." pfail
            (Strategy.kind_name kind) est sim
            ((est -. sim) /. sim *. 100.))
        [ Strategy.Ckpt_some; Strategy.Ckpt_all; Strategy.Ckpt_none ];
      Format.printf "---@.")
    [ 0.0001; 0.001; 0.01 ];
  Format.printf
    "note: the CKPTNONE closed form (Theorem 1) is first-order and drifts at high pfail —@.";
  Format.printf "exactly the inaccuracy the paper acknowledges in Section V.@.";
  Format.printf
    "(beyond pfail ~ 0.01 the restart process needs e^(rate x Wpar) attempts per run:@.";
  Format.printf "simulating it is as hopeless as the formula is inaccurate.)@."
