examples/genome_study.mli:
