examples/estimator_accuracy.ml: Ckpt_core Ckpt_eval Ckpt_workflows Format List Sys
