examples/ligo_sweep.mli:
