examples/heterogeneous_study.mli:
