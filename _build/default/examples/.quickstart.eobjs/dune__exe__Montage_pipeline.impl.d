examples/montage_pipeline.ml: Array Ckpt_core Ckpt_dag Ckpt_mspg Ckpt_platform Ckpt_prob Ckpt_workflows Format Hashtbl List Option Printf String
