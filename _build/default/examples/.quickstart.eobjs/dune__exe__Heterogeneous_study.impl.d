examples/heterogeneous_study.ml: Array Ckpt_core Ckpt_dag Ckpt_mspg Ckpt_platform Ckpt_prob Ckpt_sim Format Hashtbl List Printf
