examples/estimator_accuracy.mli:
