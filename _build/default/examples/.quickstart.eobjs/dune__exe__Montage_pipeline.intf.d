examples/montage_pipeline.mli:
