examples/ligo_sweep.ml: Ckpt_core Ckpt_prob Ckpt_sim Ckpt_workflows Format List
