examples/quickstart.mli:
