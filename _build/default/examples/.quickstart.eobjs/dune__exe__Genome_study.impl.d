examples/genome_study.ml: Ckpt_core Ckpt_workflows Format List
