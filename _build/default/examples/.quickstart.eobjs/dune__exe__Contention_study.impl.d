examples/contention_study.ml: Ckpt_core Ckpt_prob Ckpt_sim Ckpt_viz Ckpt_workflows Format List Printf
