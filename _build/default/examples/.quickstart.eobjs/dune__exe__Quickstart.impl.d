examples/quickstart.ml: Array Ckpt_core Ckpt_dag Ckpt_prob Ckpt_sim Format List String
