(* Storage-contention study (extension beyond the paper).

   The paper prices every byte of checkpoint I/O at full stable-storage
   bandwidth. Under a shared parallel file system, simultaneous
   checkpoints contend: this study simulates both worlds for CKPTALL,
   CKPTSOME and the periodic baselines across CCR, showing that
   checkpoint-sparse strategies degrade far more gracefully — which
   *strengthens* the paper's case for CKPTSOME under realistic storage.

   Also writes one Gantt chart per strategy (SVG, open in a browser).

   Run with: dune exec examples/contention_study.exe *)

module Spec = Ckpt_workflows.Spec
module Pipeline = Ckpt_core.Pipeline
module Strategy = Ckpt_core.Strategy
module Runner = Ckpt_sim.Runner
module Contention = Ckpt_sim.Contention
module Gantt = Ckpt_viz.Gantt
module Stats = Ckpt_prob.Stats

let strategies =
  [ Strategy.Ckpt_some; Strategy.Ckpt_all; Strategy.Ckpt_every 2; Strategy.Ckpt_budget 2 ]

let () =
  let tasks = 300 and processors = 35 and pfail = 0.001 and trials = 200 in
  let dag = Spec.generate Spec.Genome ~seed:1 ~tasks () in
  Format.printf "GENOME %d tasks on %d processors, pfail=%g, %d trials@.@." tasks processors
    pfail trials;
  Format.printf "%8s | %-14s | %10s | %10s | %8s@." "CCR" "strategy" "nominal" "contended"
    "penalty";
  List.iter
    (fun ccr ->
      let setup = Pipeline.prepare ~dag ~processors ~pfail ~ccr () in
      List.iter
        (fun kind ->
          let plan = Pipeline.plan setup kind in
          let nominal = Stats.mean (Runner.simulate ~trials plan) in
          let contended = Stats.mean (Contention.simulate ~trials plan) in
          Format.printf "%8.3f | %-14s | %10.1f | %10.1f | %7.3fx@." ccr
            (Strategy.kind_name kind) nominal contended (contended /. nominal))
        strategies;
      Format.printf "---@.")
    [ 0.01; 0.1; 0.5 ];

  (* one simulated execution per strategy, rendered as a Gantt chart *)
  let setup = Pipeline.prepare ~dag:(Spec.generate Spec.Genome ~seed:1 ~tasks:50 ())
      ~processors:5 ~pfail:0.02 ~ccr:0.1 ()
  in
  List.iter
    (fun kind ->
      let plan = Pipeline.plan setup kind in
      let path = Printf.sprintf "gantt-%s.svg" (Strategy.kind_name kind) in
      Gantt.save path (Gantt.render_plan ~seed:5 plan);
      Format.printf "wrote %s@." path)
    [ Strategy.Ckpt_some; Strategy.Ckpt_all ];
  Format.printf
    "@.reading: at CCR 0.5 the contention penalty of CKPTALL dwarfs CKPTSOME's —@.";
  Format.printf "fewer checkpoints also means fewer I/O collisions.@."
