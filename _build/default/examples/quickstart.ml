(* Quickstart: build a small workflow by hand, schedule it, place
   checkpoints, and compare the three strategies.

   Run with: dune exec examples/quickstart.exe *)

module Dag = Ckpt_dag.Dag
module Pipeline = Ckpt_core.Pipeline
module Strategy = Ckpt_core.Strategy
module Schedule = Ckpt_core.Schedule
module Superchain = Ckpt_core.Superchain

let () =
  (* 1. Describe a workflow: a fork-join of two 3-task chains.
     Weights are seconds; edge sizes are bytes. *)
  let dag = Dag.create ~name:"quickstart" () in
  let split = Dag.add_task dag ~name:"split" ~weight:10. in
  Dag.add_input dag split 1e9 (* reads a 1 GB input from storage *);
  let join = Dag.add_task dag ~name:"join" ~weight:5. in
  for _ = 1 to 2 do
    let prep = Dag.add_task dag ~name:"prepare" ~weight:30. in
    let solve = Dag.add_task dag ~name:"solve" ~weight:120. in
    let reduce = Dag.add_task dag ~name:"reduce" ~weight:15. in
    Dag.add_edge dag split prep 2e8;
    Dag.add_edge dag prep solve 3e8;
    Dag.add_edge dag solve reduce 1e8;
    Dag.add_edge dag reduce join 5e7
  done;

  (* 2. Prepare the pipeline: 2 processors, one task in a thousand
     fails, checkpoint traffic worth 5% of the compute time. *)
  let setup = Pipeline.prepare ~dag ~processors:2 ~pfail:0.001 ~ccr:0.05 () in
  Format.printf "workflow: %a@." Dag.pp_stats dag;
  Format.printf "schedule: %d superchains@."
    (Array.length setup.Pipeline.schedule.Schedule.superchains);

  (* 3. Inspect the CKPTSOME plan: which tasks checkpoint? *)
  let plan = Pipeline.plan setup Strategy.Ckpt_some in
  List.iter
    (fun (chain, positions) ->
      let sc = setup.Pipeline.schedule.Schedule.superchains.(chain) in
      let names =
        List.map
          (fun k -> (Dag.task dag (Superchain.task_at sc k)).Ckpt_dag.Task.name)
          positions
      in
      Format.printf "superchain %d (processor %d) checkpoints after: %s@." chain
        sc.Superchain.processor (String.concat ", " names))
    (Strategy.checkpoint_positions plan);

  (* 4. Compare the three strategies. *)
  let cmp = Pipeline.compare_strategies setup in
  Format.printf "@[<v 2>expected makespans:@,";
  Format.printf "CKPTSOME: %8.1f s with %d checkpoints@," cmp.Pipeline.em_some
    cmp.Pipeline.ckpts_some;
  Format.printf "CKPTALL:  %8.1f s with %d checkpoints (%.2fx)@," cmp.Pipeline.em_all
    cmp.Pipeline.ckpts_all cmp.Pipeline.rel_all;
  Format.printf "CKPTNONE: %8.1f s with no checkpoints (%.2fx)@]@." cmp.Pipeline.em_none
    cmp.Pipeline.rel_none;

  (* 5. Validate the analytical estimate against simulation. *)
  let sim = Ckpt_sim.Runner.simulate ~trials:2000 plan in
  Format.printf "CKPTSOME simulated: %.1f s (analytical %.1f s)@."
    (Ckpt_prob.Stats.mean sim) cmp.Pipeline.em_some
